package gpufs_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"gpufs"
	"gpufs/internal/workloads"
)

const itScale = 1.0 / 128

func newSys(t *testing.T) *gpufs.System {
	t.Helper()
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(itScale))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidationSurfaced(t *testing.T) {
	cfg := gpufs.ScaledConfig(itScale)
	cfg.PageSize = 12345 // not a power of two
	if _, err := gpufs.NewSystem(cfg); err == nil {
		t.Fatalf("invalid config accepted")
	}
	cfg = gpufs.ScaledConfig(itScale)
	cfg.NumGPUs = 0
	if _, err := gpufs.NewSystem(cfg); err == nil {
		t.Fatalf("zero GPUs accepted")
	}
}

// TestCrossGPUConsistencyProtocol exercises the full locality-optimized
// consistency story of §3.1: a writer GPU's updates become visible to a
// reader GPU only after the writer synchronizes AND the reader re-opens.
func TestCrossGPUConsistencyProtocol(t *testing.T) {
	sys := newSys(t)
	orig := bytes.Repeat([]byte{0xAA}, 32<<10)
	if err := sys.WriteHostFile("/shared.bin", orig); err != nil {
		t.Fatal(err)
	}

	// GPU 1 reads and caches the file.
	readFirst := func() byte {
		var got byte
		_, err := sys.GPU(1).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
			fd, err := c.Gopen("/shared.bin", gpufs.O_RDONLY)
			if err != nil {
				return err
			}
			defer c.Gclose(fd)
			buf := make([]byte, 1)
			if _, err := c.Gread(fd, buf, 0); err != nil {
				return err
			}
			got = buf[0]
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if b := readFirst(); b != 0xAA {
		t.Fatalf("initial read: %x", b)
	}

	// GPU 0 writes and synchronizes.
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/shared.bin", gpufs.O_RDWR)
		if err != nil {
			return err
		}
		if _, err := c.Gwrite(fd, []byte{0xBB}, 0); err != nil {
			return err
		}
		if err := c.Gfsync(fd); err != nil {
			return err
		}
		return c.Gclose(fd)
	})
	if err != nil {
		t.Fatal(err)
	}

	// GPU 1 re-opens: lazy invalidation discovers the change.
	if b := readFirst(); b != 0xBB {
		t.Fatalf("after writer sync + reader reopen, read %x, want BB", b)
	}
}

func TestSingleWriterAcrossGPUsPublicAPI(t *testing.T) {
	sys := newSys(t)
	if err := sys.WriteHostFile("/excl.bin", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		if _, err := c.Gopen("/excl.bin", gpufs.O_RDWR); err != nil {
			return err
		}
		// While GPU 0 holds the write open, GPU 1 is rejected.
		_, err := sys.GPU(1).Launch(0, 1, 64, func(c2 *gpufs.BlockCtx) error {
			_, err := c2.Gopen("/excl.bin", gpufs.O_RDWR)
			errCh <- err
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatalf("second GPU writer was admitted")
	}
}

func TestWriteSharedMergePublicAPI(t *testing.T) {
	// O_GWRSHARED: both GPUs write halves of one falsely-shared page.
	sys := newSys(t)
	ps := sys.Config().PageSize
	if err := sys.WriteHostFile("/merge.bin", make([]byte, ps)); err != nil {
		t.Fatal(err)
	}

	write := func(g int, off int64, val byte) {
		_, err := sys.GPU(g).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
			fd, err := c.Gopen("/merge.bin", gpufs.O_RDWR|gpufs.O_GWRSHARED)
			if err != nil {
				return err
			}
			data := bytes.Repeat([]byte{val}, int(ps/2))
			if _, err := c.Gwrite(fd, data, off); err != nil {
				return err
			}
			if err := c.Gfsync(fd); err != nil {
				return err
			}
			return c.Gclose(fd)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	write(0, 0, 0x11)
	write(1, ps/2, 0x22)

	got, err := sys.ReadHostFile("/merge.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < ps/2; i++ {
		if got[i] != 0x11 {
			t.Fatalf("GPU 0's bytes reverted at %d", i)
		}
	}
	for i := ps / 2; i < ps; i++ {
		if got[i] != 0x22 {
			t.Fatalf("GPU 1's bytes reverted at %d", i)
		}
	}
}

func TestKernelFaultSurfacesAndSticks(t *testing.T) {
	sys := newSys(t)
	_, err := sys.GPU(0).Launch(0, 4, 64, func(c *gpufs.BlockCtx) error {
		if c.Idx == 2 {
			_, err := c.Gopen("/does-not-exist", gpufs.O_RDONLY)
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatalf("fault not surfaced")
	}
	if _, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error { return nil }); err == nil {
		t.Fatalf("faulted device accepted a new kernel (the paper: failures may require a GPU restart)")
	}
	sys.GPU(0).Device().ResetFault()
	if _, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error { return nil }); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestGmmapPublicAPI(t *testing.T) {
	sys := newSys(t)
	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := sys.WriteHostFile("/m.bin", want); err != nil {
		t.Fatal(err)
	}
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/m.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		// Map the whole file page by page (prefix semantics).
		var off int64
		for off < int64(len(want)) {
			m, err := c.Gmmap(fd, off, int64(len(want))-off)
			if err != nil {
				return err
			}
			if !bytes.Equal(m.Data, want[off:off+int64(len(m.Data))]) {
				t.Errorf("mapping at %d content mismatch", off)
			}
			off += int64(len(m.Data))
			if err := c.Gmunmap(m); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGfstatAndGftruncatePublicAPI(t *testing.T) {
	sys := newSys(t)
	if err := sys.WriteHostFile("/t.bin", make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/t.bin", gpufs.O_RDWR)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		info, err := c.Gfstat(fd)
		if err != nil {
			return err
		}
		if info.Size != 10000 {
			t.Errorf("size %d", info.Size)
		}
		if err := c.Gftruncate(fd, 100); err != nil {
			return err
		}
		info, _ = c.Gfstat(fd)
		if info.Size != 100 {
			t.Errorf("size after truncate %d", info.Size)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.ReadHostFile("/t.bin"); len(got) != 100 {
		t.Fatalf("host size %d", len(got))
	}
}

func TestGunlinkPublicAPI(t *testing.T) {
	sys := newSys(t)
	if err := sys.WriteHostFile("/u.bin", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		return c.Gunlink("/u.bin")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ReadHostFile("/u.bin"); err == nil {
		t.Fatalf("file survived gunlink")
	}
}

func TestConcurrentKernelsAcrossGPUs(t *testing.T) {
	// All four GPUs hammer the shared daemon at once; results must be
	// correct and each GPU's cache independent.
	sys := newSys(t)
	want := make([]byte, 128<<10)
	for i := range want {
		want[i] = byte(i)
	}
	if err := sys.WriteHostFile("/all.bin", want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, sys.NumGPUs())
	for g := 0; g < sys.NumGPUs(); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = sys.GPU(g).Launch(0, 8, 64, func(c *gpufs.BlockCtx) error {
				fd, err := c.Gopen("/all.bin", gpufs.O_RDONLY)
				if err != nil {
					return err
				}
				defer c.Gclose(fd)
				got := make([]byte, 16<<10)
				off := int64(c.Idx) * int64(len(got))
				if _, err := c.Gread(fd, got, off); err != nil {
					return err
				}
				if !bytes.Equal(got, want[off:off+int64(len(got))]) {
					return errors.New("content mismatch")
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("GPU %d: %v", g, err)
		}
	}
}

func TestResetTimeClearsTimelines(t *testing.T) {
	sys := newSys(t)
	if err := sys.WriteHostFile("/r.bin", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	// A real kernel leaves every slot's timeline advanced.
	blocks := 2 * sys.GPU(0).Device().MaxResidentBlocks()
	_, err := sys.GPU(0).Launch(0, blocks, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/r.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 8<<10)
		_, err = c.Gread(fd, buf, int64(c.Idx)*int64(len(buf)))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	trivial := func() gpufs.Time {
		end, err := sys.GPU(0).Launch(0, blocks, 64, func(c *gpufs.BlockCtx) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	before := trivial() // queues behind the real kernel's slot times
	sys.ResetTime()
	after := trivial() // fresh timelines: ends almost immediately
	if after >= before {
		t.Fatalf("ResetTime did not rewind timelines: trivial kernel ends at %v before reset, %v after", before, after)
	}
}

// TestShapeGrepGPUBeatsCPU is an end-to-end shape check kept cheap enough
// for the regular test suite (Table 4's direction, not its magnitude).
func TestShapeGrepGPUBeatsCPU(t *testing.T) {
	sys := newSys(t)
	cfg := sys.Config()
	dict := workloads.MakeDictionary(400)
	if err := sys.WriteHostFile("/g/dict", dict.Encode()); err != nil {
		t.Fatal(err)
	}
	tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
		Dir: "/g/src", NumFiles: 30, TotalBytes: 512 << 10,
		Text: workloads.TextSpec{Dict: dict, DictFraction: 0.4, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTime()
	gpu, err := workloads.GrepGPUfs(sys, 0, "/g/dict", tree.ListPath, "/g/out", cfg.GrepGPURate, 16, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTime()
	cpu, err := workloads.GrepCPU(sys.Host(), dict, tree.Files, cfg.NumCPUCores, cfg.GrepCPURate)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Elapsed >= cpu.Elapsed {
		t.Fatalf("GPU (%v) should beat the 8-core CPU (%v)", gpu.Elapsed, cpu.Elapsed)
	}
}

func TestTracingPublicAPI(t *testing.T) {
	sys := newSys(t)
	tr := sys.EnableTracing(1024)
	if sys.Tracer() != tr {
		t.Fatalf("tracer accessor")
	}
	if err := sys.WriteHostFile("/tr.bin", make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	_, err := sys.GPU(0).Launch(0, 2, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/tr.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 16<<10)
		_, err = c.Gread(fd, buf, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Snapshot()
	if len(evs) == 0 {
		t.Fatalf("no events recorded")
	}
	ops := map[string]bool{}
	for _, e := range evs {
		ops[e.Op.String()] = true
		if e.End < e.Start {
			t.Fatalf("event with negative span: %+v", e)
		}
	}
	for _, want := range []string{"gopen", "gread", "gclose"} {
		if !ops[want] {
			t.Fatalf("missing traced op %q (have %v)", want, ops)
		}
	}
}

func TestHostFileHelpers(t *testing.T) {
	sys := newSys(t)
	// Deeply nested path: parents are created.
	if err := sys.WriteHostFile("/a/b/c/d/file.bin", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadHostFile("/a/b/c/d/file.bin")
	if err != nil || string(got) != "deep" {
		t.Fatalf("round trip: %q %v", got, err)
	}
	// Root-level file.
	if err := sys.WriteHostFile("/top.bin", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Missing file.
	if _, err := sys.ReadHostFile("/missing"); err == nil {
		t.Fatalf("missing file read succeeded")
	}
	if sys.NumGPUs() != sys.Config().NumGPUs {
		t.Fatalf("NumGPUs mismatch")
	}
	if sys.Server() == nil || sys.Bus() == nil || sys.Host() == nil || sys.HostClock() == nil {
		t.Fatalf("accessor returned nil")
	}
	sys.DropHostCaches()
	if sys.Host().CacheResident() != 0 {
		t.Fatalf("drop caches")
	}
}

func TestResetTimeClearsFrameReadyAt(t *testing.T) {
	// Regression: a cache hit after ResetTime must not drag the reader
	// back onto the pre-reset timeline through the frame's transfer
	// timestamp.
	sys := newSys(t)
	if err := sys.WriteHostFile("/ra.bin", make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	read := func() gpufs.Time {
		end, err := sys.GPU(0).Launch(0, 4, 64, func(c *gpufs.BlockCtx) error {
			fd, err := c.Gopen("/ra.bin", gpufs.O_RDONLY)
			if err != nil {
				return err
			}
			defer c.Gclose(fd)
			buf := make([]byte, 64<<10)
			_, err = c.Gread(fd, buf, int64(c.Idx)*int64(len(buf)))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	cold := read() // faults pages in, stamping ReadyAt
	sys.ResetTime()
	warm := read() // pure cache hits on a fresh timeline
	if warm >= cold {
		t.Fatalf("post-reset cache hits (%v) dragged back to the old timeline (cold %v)", warm, cold)
	}
}

func TestGPURestartLosesUnsyncedState(t *testing.T) {
	sys := newSys(t)
	if err := sys.WriteHostFile("/crash.bin", make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}

	// Write two regions; sync only the first; then fault the kernel.
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/crash.bin", gpufs.O_RDWR)
		if err != nil {
			return err
		}
		if _, err := c.Gwrite(fd, bytes.Repeat([]byte{0xAA}, 1024), 0); err != nil {
			return err
		}
		if err := c.GfsyncRange(fd, 0, 1024); err != nil {
			return err
		}
		if _, err := c.Gwrite(fd, bytes.Repeat([]byte{0xBB}, 1024), 32<<10); err != nil {
			return err
		}
		return errors.New("simulated invalid memory access")
	})
	if err == nil {
		t.Fatalf("fault not reported")
	}

	sys.GPU(0).Restart()

	// The restart reclaimed every frame (nothing leaked with the lost
	// state).
	if fs := sys.GPU(0).FS(); fs.Cache().FreeFrames() != fs.Cache().NumFrames() {
		t.Fatalf("restart leaked frames: %d free of %d",
			fs.Cache().FreeFrames(), fs.Cache().NumFrames())
	}

	// The device accepts kernels again and sees the HOST's state: the
	// synced region survived, the un-synced region is gone.
	var first, second byte
	_, err = sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/crash.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 1)
		if _, err := c.Gread(fd, buf, 0); err != nil {
			return err
		}
		first = buf[0]
		if _, err := c.Gread(fd, buf, 32<<10); err != nil {
			return err
		}
		second = buf[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0xAA {
		t.Fatalf("synced data lost across restart: %x", first)
	}
	if second != 0 {
		t.Fatalf("un-synced data survived the restart: %x", second)
	}
}
