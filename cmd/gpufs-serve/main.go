// Command gpufs-serve soaks the multi-tenant serving frontend
// (internal/serve) with a closed-loop workload: N tenants each keep M
// jobs outstanding against a simulated multi-GPU machine, and the run
// reports virtual-time throughput, latency percentiles, batching factor,
// and cache-affinity hit rates.
//
// Usage:
//
//	gpufs-serve [-hosts 1] [-tenants 8] [-outstanding 8] [-jobs 125]
//	            [-gpus 2] [-files 16] [-batch 16] [-policy affinity|rr]
//	            [-scale 0.00390625] [-seed 1] [-faults]
//	            [-metrics -|PATH] [-metrics-ndjson -|PATH]
//
// -metrics enables the virtual-time metrics registry and writes a
// Prometheus text exposition to PATH at exit ("-" for stdout), along with
// an end-of-run summary table; -metrics-ndjson additionally (or instead)
// writes one JSON object per series.
//
// -hosts N with N > 1 switches to fleet mode (see fleet.go): the same
// workload runs against an internal/fleet control plane over N simulated
// hosts, a fatal XID is injected mid-run, and the run demonstrates
// cordon/drain/replace remediation with zero admitted jobs lost.
//
// -migrate (fleet mode only) turns the middle phase into a live-migration
// demo: host 0 is cordoned for planned maintenance, checkpointed while
// its in-flight batches finish, and the image is restored onto its
// replacement, which enters rotation warm. The run exits non-zero unless
// the migration happened, no admitted job was lost, and at least 80% of
// the jobs in flight at cordon time completed without resubmission.
//
// -pipeline runs the pipe-connected two-stage kernel workload instead of
// the closed-loop soak: a producer kernel on GPU 0 uppercases the corpus
// through the GPUfs API and streams it over a gpipe to a consumer kernel
// on GPU 1, which assembles and fsyncs the output. -pipeline-gran picks
// the producer's read granularity (thread, warp, or block); -ordering
// sets the syscall layer's default ordering class for every kernel.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"

	"gpufs"
	"gpufs/internal/gsys"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
	"gpufs/internal/workloads"
)

func main() {
	hosts := flag.Int("hosts", 1, "serving hosts; > 1 runs the fleet-mode remediation demo")
	tenants := flag.Int("tenants", 8, "number of concurrent tenants")
	outstanding := flag.Int("outstanding", 8, "closed-loop jobs in flight per tenant")
	jobs := flag.Int("jobs", 125, "jobs per tenant")
	gpus := flag.Int("gpus", 2, "GPUs in the simulated machine")
	files := flag.Int("files", 16, "corpus files")
	batch := flag.Int("batch", 16, "max jobs coalesced per kernel launch")
	policy := flag.String("policy", "affinity", "placement policy: affinity or rr")
	scale := flag.Float64("scale", 1.0/256, "uniform scale factor for capacities")
	seed := flag.Int64("seed", 1, "workload seed")
	faults := flag.Bool("faults", false, "inject the standard RPC/host fault mix")
	migrate := flag.Bool("migrate", false, "fleet mode: live-migration demo — checkpoint host 0 and restore onto its replacement instead of a cold replace")
	ordering := flag.String("ordering", "", `syscall ordering class: "strong" or "relaxed" (empty = config default)`)
	pipeline := flag.Bool("pipeline", false, "run the two-stage gpipe pipeline workload instead of the soak")
	pipelineGran := flag.String("pipeline-gran", "thread", "pipeline producer read granularity: thread, warp, or block")
	pipeCap := flag.Int("pipe-cap", 16<<10, "pipeline gpipe buffer capacity in bytes")
	metricsOut := flag.String("metrics", "", `write a Prometheus text exposition to this path at exit ("-" = stdout)`)
	metricsNDJSON := flag.String("metrics-ndjson", "", `write metrics as NDJSON (one object per series) to this path at exit ("-" = stdout)`)
	flag.Parse()

	switch {
	case *hosts < 1:
		usageError("-hosts must be >= 1, got %d", *hosts)
	case *tenants < 1:
		usageError("-tenants must be >= 1, got %d", *tenants)
	case *outstanding < 1:
		usageError("-outstanding must be >= 1, got %d", *outstanding)
	case *jobs < 1:
		usageError("-jobs must be >= 1, got %d", *jobs)
	case *gpus < 1:
		usageError("-gpus must be >= 1, got %d", *gpus)
	case *files < 1:
		usageError("-files must be >= 1, got %d", *files)
	case *batch < 1:
		usageError("-batch must be >= 1, got %d", *batch)
	case *scale <= 0:
		usageError("-scale must be > 0, got %g", *scale)
	}
	if _, err := gsys.ParseOrdering(*ordering); err != nil {
		usageError("-ordering: %v", err)
	}
	if _, err := gsys.ParseGranularity(*pipelineGran); err != nil {
		usageError("-pipeline-gran: %v", err)
	}
	if *pipeline && *gpus < 2 {
		usageError("-pipeline needs at least 2 GPUs (producer and consumer run concurrently), got -gpus %d", *gpus)
	}
	if *pipeCap < 512 {
		usageError("-pipe-cap must be >= 512 bytes, got %d", *pipeCap)
	}
	var pol serve.Policy
	switch *policy {
	case "affinity":
		pol = serve.PlaceAffinity
	case "rr":
		pol = serve.PlaceRoundRobin
	default:
		usageError("-policy must be affinity or rr, got %q", *policy)
	}

	if *migrate && *hosts < 2 {
		usageError("-migrate needs fleet mode (-hosts >= 2), got -hosts %d", *hosts)
	}
	if *hosts > 1 {
		runFleet(fleetParams{
			hosts: *hosts, tenants: *tenants, outstanding: *outstanding,
			jobs: *jobs, gpus: *gpus, files: *files, batch: *batch,
			pol: pol, scale: *scale, seed: *seed, faults: *faults,
			migrate:    *migrate,
			metricsOut: *metricsOut, metricsNDJSON: *metricsNDJSON,
		})
		return
	}

	cfg := gpufs.ScaledConfig(*scale)
	cfg.NumGPUs = *gpus
	cfg.SyscallOrdering = *ordering
	cfg.MetricsEnabled = *metricsOut != "" || *metricsNDJSON != ""
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}

	dict := workloads.MakeDictionary(300)
	paths := make([]string, *files)
	words := make([]string, 8)
	for i := range words {
		words[i] = workloads.MakeWord(i * 13)
	}
	for i := range paths {
		paths[i] = fmt.Sprintf("/serve/f%03d.txt", i)
		text := workloads.MakeText(8<<10, workloads.TextSpec{
			Dict: dict, DictFraction: 0.8, Seed: *seed*1000 + int64(i),
		})
		if err := sys.WriteHostFile(paths[i], text); err != nil {
			fatal(err)
		}
	}
	if *faults {
		sys.EnableFaults(gpufs.FaultConfig{
			Seed:                *seed,
			RPCPollDelayProb:    0.05,
			RPCDropResponseProb: 0.02,
			RPCTransientProb:    0.05,
			HostShortReadProb:   0.05,
			HostReadEIOProb:     0.02,
			DiskStallProb:       0.05,
			DMAStallProb:        0.05,
		})
	}

	if *pipeline {
		runPipeline(sys, paths, *pipelineGran, *pipeCap)
		return
	}

	srv := serve.New(sys, serve.Config{
		QueueDepth: *outstanding,
		MaxBatch:   *batch,
		Policy:     pol,
	})

	total := *tenants * *jobs
	fmt.Printf("gpufs-serve: %d tenants × %d jobs (%d outstanding each) over %d GPU(s), policy %v, batch %d, faults %v\n",
		*tenants, *jobs, *outstanding, *gpus, pol, *batch, *faults)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures int
	for ti := 0; ti < *tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", ti)
			rng := rand.New(rand.NewSource(*seed*100 + int64(ti)))
			sem := make(chan struct{}, *outstanding)
			var inner sync.WaitGroup
			for ji := 0; ji < *jobs; ji++ {
				sem <- struct{}{}
				spec := randomJob(rng, paths, words)
				var fut *serve.Future
				for {
					var err error
					fut, err = srv.Submit(name, spec)
					if err == nil {
						break
					}
					if !errors.Is(err, serve.ErrOverloaded) {
						fatal(err)
					}
					runtime.Gosched()
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					if res := fut.Wait(); res.Err != nil {
						mu.Lock()
						failures++
						mu.Unlock()
					}
					<-sem
				}()
			}
			inner.Wait()
		}(ti)
	}
	wg.Wait()
	srv.Drain()

	st := srv.Stats()
	fmt.Println()
	fmt.Print(st)
	if secs := st.Now.Seconds(); secs > 0 {
		fmt.Printf("throughput: %.0f jobs/s virtual (%d jobs in %.3fs)\n",
			float64(total)/secs, total, secs)
	}
	if failures > 0 {
		fmt.Printf("%d job(s) failed with explicit errors\n", failures)
	}

	if reg := sys.Metrics(); reg != nil {
		if err := exportMetrics(reg, *metricsOut, (*metrics.Registry).WritePrometheus); err != nil {
			fatal(err)
		}
		if err := exportMetrics(reg, *metricsNDJSON, (*metrics.Registry).WriteNDJSON); err != nil {
			fatal(err)
		}
		fmt.Println("\nmetrics summary (virtual time):")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runPipeline drives the two-stage gpipe workload over the staged corpus
// and reports its virtual-time result.
func runPipeline(sys *gpufs.System, paths []string, gran string, pipeCap int) {
	fmt.Printf("gpufs-serve: pipeline over %d input(s), granularity %s, pipe %d bytes\n",
		len(paths), gran, pipeCap)
	res, err := serve.RunPipeline(sys, serve.PipelineConfig{
		Inputs:      paths,
		Output:      "/serve/pipeline.out",
		ConsumerGPU: 1,
		PipeCap:     pipeCap,
		Blocks:      2,
		Threads:     64,
		Granularity: gran,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline: %d bytes through the pipe in %d records, output verified\n",
		res.BytesConsumed, res.Records)
	if res.WarpDescriptors > 0 {
		fmt.Printf("pipeline: %d coalesced warp read descriptors\n", res.WarpDescriptors)
	}
	fmt.Printf("pipeline: virtual makespan %.3fs\n", res.Elapsed.Seconds())
}

// exportMetrics writes one exposition format to path ("-" = stdout; empty =
// skip).
func exportMetrics(reg *metrics.Registry, path string, write func(*metrics.Registry, io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(reg, os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(reg, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func randomJob(rng *rand.Rand, paths, words []string) serve.Job {
	var pi int
	if rng.Intn(100) < 70 {
		pi = rng.Intn(minInt(4, len(paths))) // skewed hot set
	} else {
		pi = rng.Intn(len(paths))
	}
	w := words[rng.Intn(len(words))]
	switch rng.Intn(3) {
	case 0:
		return serve.Job{Kind: serve.JobGrep, Path: paths[pi], Word: w}
	case 1:
		return serve.Job{Kind: serve.JobSearch, Path: paths[pi], Word: w}
	default:
		return serve.Job{Kind: serve.JobTransform, Path: paths[pi], MaxOutput: 256}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpufs-serve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpufs-serve:", err)
	os.Exit(1)
}
