// Fleet mode: -hosts N (N > 1) runs the closed-loop workload against an
// internal/fleet control plane instead of a single server. The run is a
// remediation demo in three equal phases:
//
//	steady    — all hosts healthy; baseline served-jobs/s
//	fault     — a fatal XID is injected on host 0 at phase start; the
//	            health monitor cordons it, the remediator drains and
//	            replaces it while traffic keeps flowing
//	recovered — after AwaitRemediation; the rebuilt fleet's rate
//
// The run then prints the remediation event timeline, the per-host state
// table, and the phase throughput ratio, and exits non-zero if any
// admitted job was lost, no remediation happened, or the fault-phase rate
// fell below 60% of steady state.
//
// -migrate swaps the middle phase for a live-migration demo: instead of a
// fatal XID, host 0 is cordoned for planned maintenance (a fatal XID
// would rightly make the remediator distrust the device's memory and
// refuse to migrate), the remediator checkpoints it while its in-flight
// batches finish, and the image is restored onto the replacement. Extra
// exit gates: at least one migration completed, and at least 80% of the
// jobs in flight at cordon time finished in place without resubmission.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpufs"
	"gpufs/internal/faults"
	"gpufs/internal/fleet"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// fleetParams carries the parsed flags into fleet mode.
type fleetParams struct {
	hosts, tenants, outstanding, jobs int
	gpus, files, batch                int
	pol                               serve.Policy
	scale                             float64
	seed                              int64
	faults                            bool
	migrate                           bool
	metricsOut, metricsNDJSON         string
}

func runFleet(p fleetParams) {
	// Shared deterministic corpus, written into every host (and every
	// replacement host) by the factory's Setup hook.
	dict := workloads.MakeDictionary(300)
	paths := make([]string, p.files)
	texts := make([][]byte, p.files)
	words := make([]string, 8)
	for i := range words {
		words[i] = workloads.MakeWord(i * 13)
	}
	for i := range paths {
		paths[i] = fmt.Sprintf("/serve/f%03d.txt", i)
		texts[i] = workloads.MakeText(8<<10, workloads.TextSpec{
			Dict: dict, DictFraction: 0.8, Seed: p.seed*1000 + int64(i),
		})
	}

	var reg *metrics.Registry
	if p.metricsOut != "" || p.metricsNDJSON != "" {
		reg = metrics.New()
	}

	// Every host gets a fault layer (the XID path needs an injector); the
	// -faults flag adds the standard background mix on top.
	fc := &faults.Config{Seed: p.seed}
	if p.faults {
		fc = &faults.Config{
			Seed:                p.seed,
			RPCPollDelayProb:    0.05,
			RPCDropResponseProb: 0.02,
			RPCTransientProb:    0.05,
			HostShortReadProb:   0.05,
			HostReadEIOProb:     0.02,
			DiskStallProb:       0.05,
			DMAStallProb:        0.05,
		}
	}

	// Wrap the factory to retain each slot's current injector and backend,
	// so the demo can attack (or observe) the machine actually in the slot.
	var injMu sync.Mutex
	injs := make(map[int]*faults.Injector)
	backends := make(map[int]serve.Backend)
	inner := fleet.SimHostFactory(fleet.SimHostConfig{
		Scale:   p.scale,
		NumGPUs: p.gpus,
		Serve: serve.Config{
			QueueDepth: p.outstanding,
			MaxBatch:   p.batch,
			Policy:     p.pol,
		},
		Faults: fc,
		Setup: func(hostID, incarnation int, sys *gpufs.System) error {
			for i, path := range paths {
				if err := sys.WriteHostFile(path, texts[i]); err != nil {
					return err
				}
			}
			return nil
		},
		Metrics: reg,
	})
	factory := func(hostID, incarnation int) (serve.Backend, *faults.Injector, error) {
		b, inj, err := inner(hostID, incarnation)
		if err == nil {
			injMu.Lock()
			injs[hostID] = inj
			backends[hostID] = b
			injMu.Unlock()
		}
		return b, inj, err
	}

	// The latency detector's defaults are tuned for homogeneous load; this
	// demo's skewed hot set legitimately makes affinity-home hosts ~8x
	// slower than idle peers, so widen the factor to keep the timeline
	// about the injected fault.
	cp, err := fleet.New(fleet.Config{
		Metrics:           reg,
		LatencyFactor:     32,
		LatencyMinSamples: 128,
		MigrateOnDrain:    p.migrate,
	}, p.hosts, factory)
	if err != nil {
		fatal(err)
	}

	jobsPerPhase := p.jobs / 3
	if jobsPerPhase < 1 {
		jobsPerPhase = 1
	}
	mode := "faults"
	if p.migrate {
		mode = "migrate"
	}
	fmt.Printf("gpufs-serve fleet: %d hosts × %d GPU(s), %d tenants × 3×%d jobs (%d outstanding each), policy %v, batch %d, %s demo\n",
		p.hosts, p.gpus, p.tenants, jobsPerPhase, p.outstanding, p.pol, p.batch, mode)

	// strikeSample is host 0's serving state the instant before the demo
	// strikes it, plus the (soon to be replaced) backend so the survival
	// fraction can be measured against the same incarnation afterwards.
	type strikeSample struct {
		backend  serve.Backend
		inflight int
		final    int64 // Completed()+Failed() at strike time
	}
	strikeCh := make(chan strikeSample, 1)

	phases := []string{"steady", "fault", "recovered"}
	if p.migrate {
		phases[1] = "migrate"
	}
	type phaseStat struct {
		name              string
		completed, failed int64
		elapsed           time.Duration
	}
	var stats []phaseStat
	for pi, name := range phases {
		switch name {
		case "fault":
			// Strike mid-phase, while host 0 holds a queue: the drain then
			// hands real jobs back for re-routing, with traffic still
			// flowing.
			go func(at simtime.Time) {
				time.Sleep(3 * time.Millisecond)
				injMu.Lock()
				inj := injs[0]
				injMu.Unlock()
				inj.InjectXID(0, 79, at)
			}(simtime.Time(pi))
			fmt.Println("\n>> injecting XID 79 (GPU has fallen off the bus) on host 0 mid-phase")
		case "migrate":
			// Cordon mid-phase for planned maintenance. Deliberately not an
			// XID: a fatal XID taints the device's memory and the remediator
			// would (correctly) refuse to trust a checkpoint taken from it.
			go func() {
				time.Sleep(3 * time.Millisecond)
				injMu.Lock()
				b := backends[0]
				injMu.Unlock()
				st := b.Stats()
				strikeCh <- strikeSample{
					backend:  b,
					inflight: st.Inflight,
					final:    st.Completed() + st.Failed(),
				}
				cp.Cordon(0, "planned migration (demo)")
			}()
			fmt.Println("\n>> cordoning host 0 for planned live migration mid-phase")
		}
		start := time.Now()
		completed, failed := runFleetPhase(cp, p, paths, words, jobsPerPhase, pi)
		st := phaseStat{name: name, completed: completed, failed: failed, elapsed: time.Since(start)}
		stats = append(stats, st)
		rate := float64(st.completed) / st.elapsed.Seconds()
		fmt.Printf("phase %-9s %5d jobs, %d failed, %8.3fms wall, %8.0f jobs/s\n",
			st.name, st.completed, st.failed, float64(st.elapsed.Microseconds())/1000, rate)
		if pi == 1 {
			// Let the replacement finish before measuring the recovered
			// rate, so phase 3 demonstrates the rebuilt fleet.
			cp.AwaitRemediation()
		}
	}
	cp.Drain()

	snap := cp.Snapshot()
	fmt.Println("\nremediation timeline:")
	for _, ev := range cp.Events() {
		fmt.Println("  ", ev)
	}
	fmt.Println("\nhosts:")
	for _, h := range snap.Hosts {
		fmt.Printf("  host %d inc %d  %-9s warn/crit/fatal XIDs %d/%d/%d",
			h.ID, h.Incarnation, h.State, h.WarnXIDs, h.CriticalXIDs, h.FatalXIDs)
		if h.Reason != "" {
			fmt.Printf("  (last cordon: %s)", h.Reason)
		}
		fmt.Println()
	}

	lost := snap.Admitted - snap.Delivered()
	fmt.Printf("\nfleet: %d admitted, %d succeeded, %d failed, %d re-routed, %d remediations (%d migrations), %d dead hosts\n",
		snap.Admitted, snap.Succeeded, snap.Failed, snap.Rebalanced, snap.Remediations, snap.Migrations, snap.DeadHosts)

	// In-flight survival: of the jobs host 0 was actively running at
	// cordon time, how many finished in place on the old incarnation
	// (rather than dying and being resubmitted elsewhere)?
	survival := 1.0
	if p.migrate {
		s := <-strikeCh
		end := s.backend.Stats()
		finishedInPlace := end.Completed() + end.Failed() - s.final
		if s.inflight > 0 {
			survival = float64(finishedInPlace) / float64(s.inflight)
			if survival > 1 {
				survival = 1
			}
		}
		fmt.Printf("migration: %d jobs in flight at cordon, %d finished in place on the old host (%.0f%% survival)\n",
			s.inflight, finishedInPlace, survival*100)
	}

	steadyRate := float64(stats[0].completed) / stats[0].elapsed.Seconds()
	faultRate := float64(stats[1].completed) / stats[1].elapsed.Seconds()
	ratio := faultRate / steadyRate
	fmt.Printf("fault-phase throughput: %.0f%% of steady state\n", ratio*100)

	ok := true
	if lost != 0 {
		fmt.Fprintf(os.Stderr, "gpufs-serve fleet: FAIL: %d admitted job(s) lost\n", lost)
		ok = false
	}
	if snap.Remediations < 1 {
		fmt.Fprintln(os.Stderr, "gpufs-serve fleet: FAIL: the injected fault caused no remediation")
		ok = false
	}
	if ratio < 0.6 {
		fmt.Fprintf(os.Stderr, "gpufs-serve fleet: FAIL: fault-phase throughput %.0f%% of steady state (need >= 60%%)\n", ratio*100)
		ok = false
	}
	if p.migrate {
		if snap.Migrations < 1 {
			fmt.Fprintln(os.Stderr, "gpufs-serve fleet: FAIL: no live migration completed (checkpoint fell back to cold restart)")
			ok = false
		}
		if survival < 0.8 {
			fmt.Fprintf(os.Stderr, "gpufs-serve fleet: FAIL: only %.0f%% of in-flight jobs survived migration without resubmission (need >= 80%%)\n", survival*100)
			ok = false
		}
	}
	if ok {
		if p.migrate {
			fmt.Println("fleet demo OK: host checkpointed and live-migrated onto its replacement; zero admitted jobs lost")
		} else {
			fmt.Println("fleet demo OK: host cordoned, drained, and replaced; zero admitted jobs lost")
		}
	}

	if reg != nil {
		if err := exportMetrics(reg, p.metricsOut, (*metrics.Registry).WritePrometheus); err != nil {
			fatal(err)
		}
		if err := exportMetrics(reg, p.metricsNDJSON, (*metrics.Registry).WriteNDJSON); err != nil {
			fatal(err)
		}
		fmt.Println("\nmetrics summary (virtual time):")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// runFleetPhase drives one closed-loop traffic phase: every tenant keeps
// p.outstanding jobs in flight until it has submitted jobsPerPhase, then
// waits for its tail. Overload and transient no-capacity rejections retry;
// admitted jobs are all waited on, so completed+failed == admitted.
func runFleetPhase(cp *fleet.ControlPlane, p fleetParams, paths, words []string, jobsPerPhase, phase int) (completed, failed int64) {
	var cdone, cfail atomic.Int64
	var wg sync.WaitGroup
	for ti := 0; ti < p.tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", ti)
			rng := rand.New(rand.NewSource(p.seed*100 + int64(ti)*7 + int64(phase)))
			sem := make(chan struct{}, p.outstanding)
			var inner sync.WaitGroup
			for ji := 0; ji < jobsPerPhase; ji++ {
				spec := randomJob(rng, paths, words)
				sem <- struct{}{}
				var fut *fleet.Future
				for {
					var err error
					fut, err = cp.Submit(name, spec)
					if err == nil {
						break
					}
					if errors.Is(err, serve.ErrOverloaded) || errors.Is(err, fleet.ErrNoHealthyHosts) {
						// Queues full, or the fleet is mid-remediation:
						// back off and retry.
						runtime.Gosched()
						continue
					}
					fatal(err)
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					if res := fut.Wait(); res.Err != nil {
						cfail.Add(1)
					} else {
						cdone.Add(1)
					}
					<-sem
				}()
			}
			inner.Wait()
		}(ti)
	}
	wg.Wait()
	return cdone.Load(), cfail.Load()
}
