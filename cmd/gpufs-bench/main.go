// Command gpufs-bench regenerates the tables and figures of the GPUfs
// paper's evaluation (§5) against the simulated machine.
//
// Usage:
//
//	gpufs-bench [-scale 0.03125] [-exp all|fig4|fig5|fig6|fig7|fig8|table2|
//	    table3|table4|readahead|ablation|serve|daemon|ordering|contention|
//	    saturation]
//
// -scale 1 runs at the paper's full input sizes (needs several GB of RAM
// and minutes of wall time); the default 1/32 preserves every
// capacity-driven crossover while running in seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gpufs/internal/bench"
	"gpufs/internal/gsys"
	"gpufs/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 1.0/32, "uniform scale factor for capacities and input sizes")
	exp := flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, table2, table3, table4, readahead, ablation, serve, daemon, ordering, contention, saturation")
	reps := flag.Int("reps", 3, "runs averaged per measured cell (the paper averages 5)")
	ordering := flag.String("ordering", "", `default syscall ordering for every experiment: "strong" or "relaxed" (empty = config default; the ordering sweep pins its own)`)
	jsonOut := flag.Bool("json", false, "emit machine-readable NDJSON (one object per table row) instead of text tables")
	metricsOut := flag.String("metrics", "", `collect metrics across every run and write a Prometheus text exposition to this path at exit ("-" = stderr)`)
	metricsNDJSON := flag.String("metrics-ndjson", "", `collect metrics and write them as NDJSON to this path at exit ("-" = stderr)`)
	flag.Parse()
	if *scale <= 0 {
		usageError("-scale must be > 0, got %g", *scale)
	}
	if *reps < 1 {
		usageError("-reps must be >= 1, got %d", *reps)
	}
	if _, err := gsys.ParseOrdering(*ordering); err != nil {
		usageError("-ordering: %v", err)
	}
	bench.SetDefaultOrdering(*ordering)
	bench.SetReps(*reps)
	var reg *metrics.Registry
	if *metricsOut != "" || *metricsNDJSON != "" {
		// One registry spans the whole sweep: per-system collectors on the
		// same series identity are summed, so the export aggregates every
		// run of the invocation.
		reg = metrics.New()
		bench.SetMetricsRegistry(reg)
	}

	runners := map[string]func(float64) (*bench.Table, error){
		"fig4":       bench.Fig4,
		"fig5":       bench.Fig5,
		"fig6":       bench.Fig6,
		"fig7":       bench.Fig7,
		"fig8":       bench.Fig8,
		"table2":     bench.Table2,
		"table3":     bench.Table3,
		"table4":     bench.Table4,
		"readahead":  bench.Readahead,
		"ablation":   bench.Ablation,
		"serve":      bench.Serve,
		"daemon":     bench.DaemonScaling,
		"ordering":   bench.Ordering,
		"contention": bench.Contention,
		"saturation": bench.Saturation,
	}

	if !*jsonOut {
		fmt.Printf("GPUfs reproduction benchmarks (scale %g; virtual-time results)\n\n", *scale)
	}

	var tables []*bench.Table
	switch key := strings.ToLower(*exp); key {
	case "all":
		all, err := bench.All(*scale)
		if err != nil {
			fatal(err)
		}
		tables = all
	default:
		r, ok := runners[key]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		tb, err := r(*scale)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, tb)
	}

	for _, tb := range tables {
		if *jsonOut {
			if err := tb.WriteJSONRows(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println(tb)
		}
	}

	if reg != nil {
		if err := exportMetrics(reg, *metricsOut, (*metrics.Registry).WritePrometheus); err != nil {
			fatal(err)
		}
		if err := exportMetrics(reg, *metricsNDJSON, (*metrics.Registry).WriteNDJSON); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Println("metrics summary (virtual time, whole sweep):")
			if err := reg.WriteSummary(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

// exportMetrics writes one exposition format to path ("-" = stderr, keeping
// stdout clean for table output; empty = skip).
func exportMetrics(reg *metrics.Registry, path string, write func(*metrics.Registry, io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(reg, os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(reg, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpufs-bench:", err)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpufs-bench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
