// Command gpufs-trace runs a small representative GPUfs workload with
// operation tracing enabled and prints the event timeline and a per-op
// summary — a quick way to see where a kernel's virtual time goes (RPC
// round trips, buffer-cache hits, paging).
//
// With -json FILE the full timeline is also written in Chrome's
// trace_event format, loadable in chrome://tracing or Perfetto.
//
// Usage:
//
//	gpufs-trace [-n 40] [-blocks 8] [-mb 4] [-json FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpufs"
)

func main() {
	n := flag.Int("n", 40, "number of events to print (0 = none, just the summary)")
	blocks := flag.Int("blocks", 8, "threadblocks")
	mb := flag.Int64("mb", 4, "working set in MiB")
	jsonPath := flag.String("json", "", "write the timeline as Chrome trace_event JSON to this file")
	flag.Parse()
	if *n < 0 {
		usageError("-n must be >= 0, got %d", *n)
	}
	if *blocks < 1 {
		usageError("-blocks must be >= 1, got %d", *blocks)
	}
	if *mb < 1 {
		usageError("-mb must be >= 1, got %d", *mb)
	}

	cfg := gpufs.ScaledConfig(1.0 / 32)
	// A deliberately small buffer cache so the trace shows paging too.
	cfg.BufferCacheBytes = (*mb << 20) / 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr := sys.EnableTracing(1 << 16)

	total := *mb << 20
	if err := sys.WriteHostFile("/trace/in.bin", make([]byte, total)); err != nil {
		log.Fatal(err)
	}
	sys.ResetTime()

	chunk := total / int64(*blocks)
	end, err := sys.GPU(0).Launch(0, *blocks, 256, func(c *gpufs.BlockCtx) error {
		in, err := c.Gopen("/trace/in.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(in)
		out, err := c.Gopen("/trace/out.bin", gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		defer c.Gclose(out)

		buf := make([]byte, 64<<10)
		base := int64(c.Idx) * chunk
		for off := base; off < base+chunk; off += int64(len(buf)) {
			if _, err := c.Gread(in, buf, off); err != nil {
				return err
			}
			if _, err := c.Gwrite(out, buf, off); err != nil {
				return err
			}
		}
		return c.Gfsync(out)
	})
	if err != nil {
		log.Fatal(err)
	}

	events := tr.Snapshot()
	fmt.Printf("workload: %d blocks copying %d MiB through a %d MiB buffer cache; kernel end %v\n\n",
		*blocks, *mb, cfg.BufferCacheBytes>>20, gpufs.Duration(end))
	if *n > 0 {
		fmt.Printf("first %d of %d events:\n", min(*n, len(events)), len(events))
		for _, e := range events[:min(*n, len(events))] {
			fmt.Println("  " + e.String())
		}
		fmt.Println()
	}
	fmt.Print(tr.FormatSummary())

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d events to %s (chrome://tracing)\n", len(events), *jsonPath)
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpufs-trace: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
