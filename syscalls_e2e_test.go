// End-to-end tests for the generic syscall surface of ISSUE 7 beyond the
// pipe family (covered by pipe_conformance_test.go): paginated directory
// enumeration, warp-granularity coalesced reads, and open-ahead.
package gpufs_test

import (
	"bytes"
	"fmt"
	"testing"

	"gpufs"
	"gpufs/internal/simtime"
)

func syscallTestSystem(t *testing.T) *gpufs.System {
	t.Helper()
	cfg := gpufs.ScaledConfig(1.0 / 256)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestGreaddirPagination enumerates a staged directory in small pages
// from a kernel: every entry appears exactly once across pages, cookies
// chain until the -1 terminator, sizes and the directory bit are
// faithful, and a fresh enumeration is bit-identical.
func TestGreaddirPagination(t *testing.T) {
	sys := syscallTestSystem(t)
	const files = 10
	wantSize := make(map[string]int64, files)
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%02d.txt", i)
		data := bytes.Repeat([]byte{'a'}, 100+i*11)
		if err := sys.WriteHostFile("/dir/"+name, data); err != nil {
			t.Fatal(err)
		}
		wantSize[name] = int64(len(data))
	}
	if err := sys.WriteHostFile("/dir/sub/leaf.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}

	enumerate := func() ([]gpufs.Dirent, int) {
		var all []gpufs.Dirent
		pages := 0
		_, err := sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			if c.Idx != 0 {
				return nil
			}
			cookie := int64(0)
			for {
				ents, next, err := c.Greaddir("/dir", cookie, 3)
				if err != nil {
					return err
				}
				if len(ents) > 3 {
					return fmt.Errorf("page of %d entries exceeds max 3", len(ents))
				}
				all = append(all, ents...)
				pages++
				if next == -1 {
					return nil
				}
				if next <= cookie {
					return fmt.Errorf("cookie did not advance: %d -> %d", cookie, next)
				}
				cookie = next
			}
		})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		return all, pages
	}

	all, pages := enumerate()
	if len(all) != files+1 {
		t.Fatalf("enumerated %d entries, want %d", len(all), files+1)
	}
	if pages < 4 {
		t.Fatalf("enumeration took %d pages; max 3 per page over %d entries must paginate", pages, files+1)
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if seen[e.Name] {
			t.Fatalf("entry %q appeared twice across pages", e.Name)
		}
		seen[e.Name] = true
		if e.Name == "sub" {
			if !e.IsDir {
				t.Fatalf("subdirectory %q not flagged IsDir", e.Name)
			}
			continue
		}
		if e.IsDir {
			t.Fatalf("file %q flagged IsDir", e.Name)
		}
		if want, ok := wantSize[e.Name]; !ok || e.Size != want {
			t.Fatalf("entry %q size %d, want %d", e.Name, e.Size, want)
		}
	}

	again, _ := enumerate()
	for i := range all {
		if all[i] != again[i] {
			t.Fatalf("re-enumeration differs at %d: %+v vs %+v", i, all[i], again[i])
		}
	}

	// Error paths: non-positive page size and a missing directory.
	_, err := sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		if c.Idx != 0 {
			return nil
		}
		if _, _, err := c.Greaddir("/dir", 0, 0); err == nil {
			return fmt.Errorf("greaddir with max 0 succeeded")
		}
		if _, _, err := c.Greaddir("/no/such/dir", 0, 4); err == nil {
			return fmt.Errorf("greaddir of a missing directory succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// warpReadRun launches one warp of threads reading against a staged
// file, one PAGE per thread so the coalesced span covers many pages and
// the vectored relaxed prefetch actually runs. Offsets are chosen by
// layout ("coalesced" = a contiguous ascending span; "divergent" = the
// same offsets reversed within the warp), and the run returns the virtual
// end time plus the system's warp stats.
func warpReadRun(t *testing.T, layout string) (simtime.Time, int64, int64, int64) {
	t.Helper()
	cfg := gpufs.ScaledConfig(1.0 / 256)
	// One (partial) warp, one page per thread, and a span that fits the
	// paging layer's batch-fetch budget so the whole tail rides a single
	// vectored warp-granularity RPC. (A wider span falls back to demand
	// misses past the budget, which the per-thread path's adaptive
	// read-ahead — it ramps on stride ±1 — would beat; that trade-off is
	// the read-ahead engine's test, not this one.)
	const threads = 16
	chunk := cfg.PageSize
	// Hold the whole corpus on both sides of the bus so timing reflects
	// transport, not eviction.
	if need := (threads + 16) * chunk; cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	if need := 2 * cfg.BufferCacheBytes; cfg.GPUMemBytes < need {
		cfg.GPUMemBytes = need
	}
	if need := 4 * cfg.BufferCacheBytes; cfg.CPURAMBytes < need {
		cfg.CPURAMBytes = need
	}
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, int(chunk)*threads)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := sys.WriteHostFile("/warp/in.bin", data); err != nil {
		t.Fatal(err)
	}

	dsts := make([][]byte, threads)
	for i := range dsts {
		dsts[i] = make([]byte, chunk)
	}
	end, err := sys.GPU(0).Launch(0, 1, threads, func(c *gpufs.BlockCtx) error {
		if c.Idx != 0 {
			return nil
		}
		fd, err := c.Gopen("/warp/in.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		reqs := make([]gpufs.WarpReq, threads)
		for i := range reqs {
			reqs[i] = gpufs.WarpReq{Dst: dsts[i], Off: int64(i) * chunk}
		}
		if layout == "divergent" {
			// Reverse offsets within the warp: same bytes, same
			// per-thread sizes, but a descending span the coalescer
			// must reject.
			for a, b := 0, threads-1; a < b; a, b = a+1, b-1 {
				reqs[a].Off, reqs[b].Off = reqs[b].Off, reqs[a].Off
			}
		}
		n, err := c.GpreadWarp(fd, reqs)
		if err != nil {
			return err
		}
		if n != int64(len(data)) {
			return fmt.Errorf("gpread_warp read %d bytes, want %d", n, len(data))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch(%s): %v", layout, err)
	}

	// Every thread's buffer must hold the bytes at ITS offset, whichever
	// thread's request that was after the in-warp shuffle.
	for i := range dsts {
		off := int64(i) * chunk
		if layout == "divergent" {
			off = int64(threads-1-i) * chunk
		}
		if !bytes.Equal(dsts[i], data[off:off+chunk]) {
			t.Fatalf("%s: thread %d bytes differ from file at offset %d", layout, i, off)
		}
	}
	calls, coalesced, descriptors := sys.GPU(0).FS().WarpStats()
	return end, calls, coalesced, descriptors
}

// TestGpreadWarpCoalescing pins the descriptor accounting and the
// performance claim of warp-granularity reads: a contiguous warp costs
// ONE syscall descriptor, a divergent warp one per thread, and the
// coalesced layout finishes sooner in virtual time for identical bytes.
func TestGpreadWarpCoalescing(t *testing.T) {
	endCo, callsCo, coalescedCo, descCo := warpReadRun(t, "coalesced")
	endDiv, callsDiv, coalescedDiv, descDiv := warpReadRun(t, "divergent")

	if callsCo != 1 || callsDiv != 1 {
		t.Fatalf("warp read calls = %d/%d, want 1/1", callsCo, callsDiv)
	}
	if coalescedCo != 1 || descCo != 1 { // one warp, one descriptor
		t.Fatalf("coalesced run: %d warps coalesced, %d descriptors; want 1, 1", coalescedCo, descCo)
	}
	if coalescedDiv != 0 || descDiv != 16 { // per-thread fallback
		t.Fatalf("divergent run: %d warps coalesced, %d descriptors; want 0, 16", coalescedDiv, descDiv)
	}
	if endCo >= endDiv {
		t.Fatalf("coalesced run (%v) not faster than divergent (%v)", endCo, endDiv)
	}
}

// TestGopenAheadPipelinesOpens checks open-ahead semantics end to end:
// futures joined by Gwait return descriptors that read correct bytes, a
// warm-path future (file already open on the GPU) falls back cleanly, and
// pipelining K cold opens ahead of their reads beats the strong serial
// open chain in virtual time on the same corpus.
func TestGopenAheadPipelinesOpens(t *testing.T) {
	const (
		files     = 8
		fileBytes = 2048
	)
	stage := func(sys *gpufs.System) [][]byte {
		contents := make([][]byte, files)
		for i := range contents {
			data := bytes.Repeat([]byte{byte('a' + i)}, fileBytes)
			contents[i] = data
			if err := sys.WriteHostFile(fmt.Sprintf("/oa/f%d.bin", i), data); err != nil {
				t.Fatal(err)
			}
		}
		return contents
	}
	readAll := func(c *gpufs.BlockCtx, fd int, want []byte) error {
		buf := make([]byte, fileBytes)
		if _, err := c.Gread(fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("read bytes differ")
		}
		return c.Gclose(fd)
	}

	// Strong chain: open, read, close each file in turn.
	strongSys := syscallTestSystem(t)
	contents := stage(strongSys)
	strongEnd, err := strongSys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		if c.Idx != 0 {
			return nil
		}
		for i := 0; i < files; i++ {
			fd, err := c.Gopen(fmt.Sprintf("/oa/f%d.bin", i), gpufs.O_RDONLY)
			if err != nil {
				return err
			}
			if err := readAll(c, fd, contents[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("strong chain: %v", err)
	}

	// Pipelined chain: issue every open ahead, then join and read.
	aheadSys := syscallTestSystem(t)
	contents = stage(aheadSys)
	aheadEnd, err := aheadSys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		if c.Idx != 0 {
			return nil
		}
		futs := make([]*gpufs.OpenFuture, files)
		for i := range futs {
			futs[i] = c.GopenAhead(fmt.Sprintf("/oa/f%d.bin", i), gpufs.O_RDONLY)
		}
		for i, of := range futs {
			fd, err := c.Gwait(of)
			if err != nil {
				return err
			}
			if err := readAll(c, fd, contents[i]); err != nil {
				return err
			}
		}
		// Warm path: the file's cache entry survives gclose, so a second
		// open-ahead must fall back to the plain open and still work.
		fd, err := c.Gwait(c.GopenAhead("/oa/f0.bin", gpufs.O_RDONLY))
		if err != nil {
			return err
		}
		return readAll(c, fd, contents[0])
	})
	if err != nil {
		t.Fatalf("open-ahead chain: %v", err)
	}
	if aheadEnd >= strongEnd {
		t.Fatalf("open-ahead chain (%v) not faster than the strong chain (%v) despite the extra warm open", aheadEnd, strongEnd)
	}
}
