package gpufs

import (
	"bytes"
	"testing"
)

func testSystem(t *testing.T, scale float64) *System {
	t.Helper()
	cfg := ScaledConfig(scale)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestSmokeReadBack(t *testing.T) {
	sys := testSystem(t, 1.0/64)

	content := make([]byte, 1<<20)
	for i := range content {
		content[i] = byte(i * 7)
	}
	if err := sys.WriteHostFile("/data/in.bin", content); err != nil {
		t.Fatalf("WriteHostFile: %v", err)
	}

	got := make([]byte, len(content))
	end, err := sys.GPU(0).Launch(0, 8, 256, func(c *BlockCtx) error {
		fd, err := c.Gopen("/data/in.bin", O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		chunk := len(content) / c.Blocks
		off := c.Idx * chunk
		_, err = c.Gread(fd, got[off:off+chunk], int64(off))
		return err
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if end <= 0 {
		t.Fatalf("kernel completed at non-positive virtual time %v", end)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("read-back mismatch")
	}
}

func TestSmokeWriteSync(t *testing.T) {
	sys := testSystem(t, 1.0/64)

	out := make([]byte, 256<<10)
	for i := range out {
		out[i] = byte(i ^ 0x5a)
	}
	_, err := sys.GPU(0).Launch(0, 4, 256, func(c *BlockCtx) error {
		fd, err := c.Gopen("/out.bin", O_GWRONCE)
		if err != nil {
			return err
		}
		chunk := len(out) / c.Blocks
		off := c.Idx * chunk
		if _, err := c.Gwrite(fd, out[off:off+chunk], int64(off)); err != nil {
			return err
		}
		if err := c.Gfsync(fd); err != nil {
			return err
		}
		return c.Gclose(fd)
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}

	got, err := sys.ReadHostFile("/out.bin")
	if err != nil {
		t.Fatalf("ReadHostFile: %v", err)
	}
	if len(got) != len(out) {
		t.Fatalf("host file size %d, want %d", len(got), len(out))
	}
	if !bytes.Equal(got, out) {
		t.Fatalf("write-back mismatch")
	}
}

// TestSmokeWriteSyncRaced hammers the TestSmokeWriteSync shape — several
// blocks writing disjoint chunks of ONE buffer-cache page, each gfsyncing
// its own chunk — where gfsync used to skip any page referenced by a
// concurrent access. A block whose gfsync raced another block's in-flight
// write-back would return success while its bytes silently stayed dirty
// in the cache; gfsync now writes back through transient references
// (only gmmap'd pages are exempt), so every chunk must reach the host.
func TestSmokeWriteSyncRaced(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		sys := testSystem(t, 1.0/64)
		out := make([]byte, 256<<10)
		for i := range out {
			out[i] = byte(i ^ 0x5a)
		}
		_, err := sys.GPU(0).Launch(0, 4, 256, func(c *BlockCtx) error {
			fd, err := c.Gopen("/out.bin", O_GWRONCE)
			if err != nil {
				return err
			}
			chunk := len(out) / c.Blocks
			off := c.Idx * chunk
			if _, err := c.Gwrite(fd, out[off:off+chunk], int64(off)); err != nil {
				return err
			}
			if err := c.Gfsync(fd); err != nil {
				return err
			}
			return c.Gclose(fd)
		})
		if err != nil {
			t.Fatalf("iter %d: Launch: %v", iter, err)
		}
		got, err := sys.ReadHostFile("/out.bin")
		if err != nil {
			t.Fatalf("iter %d: ReadHostFile: %v", iter, err)
		}
		if !bytes.Equal(got, out) {
			lo := -1
			for i := range got {
				if i >= len(out) || got[i] != out[i] {
					lo = i
					break
				}
			}
			t.Fatalf("iter %d: write-back mismatch from byte %d: a gfsync dropped a concurrently-referenced page", iter, lo)
		}
	}
}
