// Benchmarks regenerating the GPUfs paper's evaluation artifacts (one per
// table and figure of §5) plus library micro-benchmarks. The experiment
// benchmarks report *virtual-time* metrics from the simulation; run
//
//	go test -bench=. -benchmem
//
// for the whole set, or `go run ./cmd/gpufs-bench` for the full formatted
// tables. benchScale trades fidelity for wall-clock time; the shapes hold
// from 1/64 up to full scale.
package gpufs_test

import (
	"strconv"
	"strings"
	"testing"

	"gpufs"
	"gpufs/internal/bench"
	"gpufs/internal/workloads"
)

const benchScale = 1.0 / 64

// cell parses a numeric table cell such as "2248" or "1.08 (2.0x)".
func cell(tb *bench.Table, row, col int) float64 {
	s := tb.Rows[row][col]
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkFig4SequentialRead regenerates Figure 4 (sequential read
// throughput vs page size: GPUfs, CUDA pipeline, whole-file transfer).
func BenchmarkFig4SequentialRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last := len(tb.Rows) - 1
		b.ReportMetric(cell(tb, 0, 1), "gpufs-16K-MB/s")
		b.ReportMetric(cell(tb, last, 1), "gpufs-16M-MB/s")
		b.ReportMetric(cell(tb, last, 2), "pipeline-16M-MB/s")
	}
}

// BenchmarkFig5Breakdown regenerates Figure 5 (cost-component breakdown of
// sequential reads via DMA / host-file-I/O exclusion toggles).
func BenchmarkFig5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last := len(tb.Rows) - 1
		b.ReportMetric(cell(tb, 0, 4), "pure-cache-code-16K-ms")
		b.ReportMetric(cell(tb, last, 4), "pure-cache-code-16M-ms")
	}
}

// BenchmarkFig6RandomRead regenerates Figure 6 (random 32 KB greads:
// unique pages faulted and effective bandwidth vs page size).
func BenchmarkFig6RandomRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		// Peak effective bandwidth across the sweep, and the large-page
		// floor where unread data dominates.
		var peak float64
		for r := range tb.Rows {
			if v := cell(tb, r, 2); v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak, "peak-effective-MB/s")
		b.ReportMetric(cell(tb, len(tb.Rows)-1, 2), "16M-effective-MB/s")
	}
}

// BenchmarkFig7BufferCache regenerates Figure 7 (in-cache gread bandwidth
// normalized to raw memory access; lock-free vs locked radix traversal).
func BenchmarkFig7BufferCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		mid := len(tb.Rows) / 2
		b.ReportMetric(cell(tb, mid, 1), "lockfree-frac-of-raw")
		b.ReportMetric(cell(tb, mid, 2), "locked-frac-of-raw")
	}
}

// BenchmarkFig8MatVec regenerates Figure 8 (matrix-vector product
// throughput: GPUfs vs naive and optimized CUDA double buffering, up to
// the disk-bound 11.2 GB point).
func BenchmarkFig8MatVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last := len(tb.Rows) - 1
		b.ReportMetric(cell(tb, last, 1), "gpufs-11G-MB/s")
		b.ReportMetric(cell(tb, last, 2), "naive-11G-MB/s")
	}
}

// BenchmarkTable2CacheSize regenerates Table 2 (image search under 2 G /
// 1 G / 0.5 G GPU buffer caches: time, pages reclaimed, lock-free vs
// locked accesses).
func BenchmarkTable2CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(tb, 0, 2), "reclaimed-at-2G")
		b.ReportMetric(cell(tb, 2, 2), "reclaimed-at-0.5G")
		b.ReportMetric(cell(tb, 2, 1), "time-at-0.5G-s")
	}
}

// BenchmarkTable3MultiGPU regenerates Table 3 (image matching on the
// 8-core CPU versus 1-4 GPUs, no-match and exact-match inputs).
func BenchmarkTable3MultiGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Table3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		cpu := cell(tb, 0, 1)
		one := cell(tb, 0, 2)
		four := cell(tb, 0, 5)
		if one > 0 {
			b.ReportMetric(cpu/one, "cpu-over-1gpu")
			b.ReportMetric(one/four, "scaling-4gpu")
		}
	}
}

// BenchmarkTable4Grep regenerates Table 4 (exact string match over a
// Linux-source-like tree and a Shakespeare-like file: CPUx8 vs GPUfs vs
// vanilla GPU).
func BenchmarkTable4Grep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		linuxCPU := cell(tb, 0, 1)
		linuxGPU := cell(tb, 0, 2)
		if linuxGPU > 0 {
			b.ReportMetric(linuxCPU/linuxGPU, "gpu-speedup-linux")
		}
	}
}

// ---- Library micro-benchmarks (real wall-clock, not virtual time) ----

// BenchmarkGreadCacheHit measures the real Go-side cost of the gread fast
// path on resident pages: lock-free radix lookup + frame copy.
func BenchmarkGreadCacheHit(b *testing.B) {
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	const size = 4 << 20
	if err := sys.WriteHostFile("/bench.bin", make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	if _, err := workloads.PrefetchGPUfs(sys, 0, "/bench.bin", size, 8, 64); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	b.ResetTimer()
	_, err = sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/bench.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		for i := 0; i < b.N; i++ {
			off := int64(i) % (size - int64(len(buf)))
			if _, err := c.Gread(fd, buf, off); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkGwrite measures the gwrite path into cached pages.
func BenchmarkGwrite(b *testing.B) {
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	b.ResetTimer()
	_, err = sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/w.bin", gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		span := sys.Config().BufferCacheBytes / 2
		for i := 0; i < b.N; i++ {
			off := (int64(i) * int64(len(buf))) % span
			if _, err := c.Gwrite(fd, buf, off); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkAblation runs the design-choice ablations (read-ahead, DMA
// channel count, closed-table fast reopen) from DESIGN.md.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := bench.Ablation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) != 4 {
			b.Fatalf("ablation rows: %d", len(tb.Rows))
		}
	}
}
