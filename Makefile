# Verification tiers.
#
#   tier1      — the commit gate: everything builds, all tests pass.
#   tier2      — the merge gate: gofmt-clean, vet clean, the full
#                suite under the race detector (the stress/oracle tests
#                run 500 seeds concurrently, so this is where sync bugs
#                die), the bench guardrail pinning the Fig4 16K/32K
#                throughputs, daemon-scaling speedup, contention
#                speedup, and open-loop saturation throughput to
#                BENCH_6.json, mutex/block profiles harvested from the
#                contention benchmark into artifacts/, and the 4-host
#                fleet remediation demo end to end.
#   fuzz-smoke — 30s coverage-guided runs of the radix-tree fuzzer and
#                the syscall wire-frame round-trip fuzzer; CI budget, not
#                a soak. Extend -fuzztime for real hunts.
#   stress     — the fault-injection oracle at full depth (500 seeds),
#                race-enabled, on its own for quick iteration.
#   soak       — the serving-layer soak (internal/serve): 1,000+ jobs from
#                8 tenants over 2 GPUs, race-enabled, fixed seeds; also
#                the fault and GPU-restart variants.
#   fleet      — the multi-host control plane pack on its own: the
#                300-seed fleet chaos oracle (plain and migrate-first
#                variants) plus the model-based scheduler conformance
#                suite, race-enabled. GPUFS_MIGRATE_ON_DRAIN=1 (the
#                nightly CI setting) flips the plain sweep to
#                migrate-first too.
#   fleet-demo — gpufs-serve -hosts 4: inject a fatal XID mid-traffic,
#                show cordon/drain/replace, fail if any admitted job is
#                lost or fault-phase throughput drops below 60% of
#                steady state.
#   migrate    — gpufs-serve -hosts 4 -migrate: cordon a healthy host
#                mid-traffic and live-migrate it (checkpoint, restore,
#                warm replacement); fail if any admitted job is lost, no
#                migration happened, or fewer than 80% of the jobs in
#                flight at the cordon finish in place on the old host.
#   bench-smoke — the Readahead policy, syscall Ordering, hot-path
#                Contention, and open-loop Saturation experiments at
#                1/256 scale, one rep: a seconds-long CI check that the
#                bench harness, the adaptive read-ahead engine, the
#                ordering-aware transport, the lock-free read path, and
#                the open-loop serving driver still run end to end.

GO ?= go

.PHONY: tier1 tier2 fuzz-smoke stress bench bench-smoke soak fleet fleet-demo migrate

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	GPUFS_BENCH_GUARDRAIL=1 $(GO) test -count=1 -run TestBenchGuardrail ./internal/bench
	mkdir -p artifacts
	$(GO) test -run '^$$' -bench BenchmarkContention -benchtime 1x \
		-outputdir $(CURDIR)/artifacts \
		-mutexprofile contention-mutex.pprof \
		-blockprofile contention-block.pprof ./internal/bench
	$(GO) run ./cmd/gpufs-serve -hosts 4 >/dev/null
	$(GO) run ./cmd/gpufs-serve -hosts 4 -migrate >/dev/null

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRadixTree -fuzztime 30s ./internal/core/radix
	$(GO) test -run '^$$' -fuzz FuzzSyscallFrame -fuzztime 30s ./internal/gsys
	$(GO) test -run '^$$' -fuzz FuzzCkptImage -fuzztime 30s ./internal/ckpt

stress:
	$(GO) test -race -count=1 -run TestFaultStressOracle ./internal/core

soak:
	$(GO) test -race -count=1 -run 'TestServeSoak' ./internal/serve

fleet:
	$(GO) test -race -count=1 -run 'TestFleetChaosOracle|TestFleetModelConformance' ./internal/fleet

fleet-demo:
	$(GO) run ./cmd/gpufs-serve -hosts 4

migrate:
	$(GO) run ./cmd/gpufs-serve -hosts 4 -migrate

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-smoke:
	$(GO) run ./cmd/gpufs-bench -exp readahead -scale 0.00390625 -reps 1
	$(GO) run ./cmd/gpufs-bench -exp ordering -scale 0.00390625 -reps 1
	$(GO) run ./cmd/gpufs-bench -exp contention -scale 0.00390625 -reps 1
	$(GO) run ./cmd/gpufs-bench -exp saturation -scale 0.00390625 -reps 1
