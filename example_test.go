package gpufs_test

import (
	"fmt"
	"log"

	"gpufs"
)

// ExampleSystem shows the paper's headline programming model: a GPU kernel
// that is entirely self-contained — the only CPU-side application code is
// the kernel launch.
func ExampleSystem() {
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(1.0 / 64))
	if err != nil {
		log.Fatal(err)
	}
	sys.WriteHostFile("/in.txt", []byte("gpufs says hello"))

	var got [16]byte
	_, err = sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/in.txt", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		_, err = c.Gread(fd, got[:], 0)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(got[:]))
	// Output: gpufs says hello
}

// ExampleBlockCtx_Gwrite demonstrates the write-once output pattern: many
// threadblocks each write their byte range exactly once (O_GWRONCE), and a
// gfsync publishes the merged result to the host file system.
func ExampleBlockCtx_Gwrite() {
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(1.0 / 64))
	if err != nil {
		log.Fatal(err)
	}

	const blocks = 4
	_, err = sys.GPU(0).Launch(0, blocks, 32, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/out.txt", gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		piece := []byte(fmt.Sprintf("[part %d]", c.Idx))
		if _, err := c.Gwrite(fd, piece, int64(c.Idx)*int64(len(piece))); err != nil {
			return err
		}
		return c.Gfsync(fd)
	})
	if err != nil {
		log.Fatal(err)
	}

	out, _ := sys.ReadHostFile("/out.txt")
	fmt.Println(string(out))
	// Output: [part 0][part 1][part 2][part 3]
}

// ExampleBlockCtx_Gmmap maps a file region directly into the GPU buffer
// cache; the mapping never crosses a cache page, so callers loop over
// prefixes.
func ExampleBlockCtx_Gmmap() {
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(1.0 / 64))
	if err != nil {
		log.Fatal(err)
	}
	sys.WriteHostFile("/m.txt", []byte("zero-copy window"))

	_, err = sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/m.txt", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		m, err := c.Gmmap(fd, 0, 16)
		if err != nil {
			return err
		}
		defer c.Gmunmap(m)
		fmt.Println(string(m.Data))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: zero-copy window
}
