// Matrix–vector product over a file-resident matrix (the paper's §5.1.4):
// the GPUfs kernel gmmaps matrix pages as it needs them, so nothing changes
// when the matrix outgrows GPU memory — compare with the hand-coded CUDA
// double-buffering pipeline that needs explicit chunking.
//
// Run with:
//
//	go run ./examples/matvec [-rows 512] [-cols 16384]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"gpufs"
	"gpufs/internal/workloads"
)

func main() {
	rows := flag.Int("rows", 512, "matrix rows")
	cols := flag.Int("cols", 16384, "matrix columns (vector length)")
	flag.Parse()

	cfg := gpufs.ScaledConfig(1.0 / 32)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	f, err := workloads.MakeMatVec(sys.Host(), sys.HostClock(), "/mv", *rows, *cols, 3)
	if err != nil {
		log.Fatal(err)
	}
	want, err := workloads.MatVecCPUReference(sys.Host(), sys.HostClock(), f)
	if err != nil {
		log.Fatal(err)
	}
	sys.ResetTime()

	blocks := 2 * cfg.MPsPerGPU
	gp, err := workloads.MatVecGPUfs(sys, 0, f, blocks, 256)
	if err != nil {
		log.Fatal(err)
	}

	sys.ResetTime()
	cu, err := workloads.MatVecCUDA(sys, 1, f, f.MatrixBytes/4, 2, blocks, 256)
	if err != nil {
		log.Fatal(err)
	}

	check := func(name string, y []float32) {
		var worst float64
		for r := range want {
			if d := math.Abs(float64(y[r] - want[r])); d > worst {
				worst = d
			}
		}
		fmt.Printf("  %-14s max error vs reference: %.2e\n", name, worst)
	}

	fmt.Printf("matrix: %d x %d (%.1f MiB), buffer cache %.0f MiB, page %s\n",
		*rows, *cols, float64(f.MatrixBytes)/(1<<20),
		float64(cfg.BufferCacheBytes)/(1<<20), byteLabel(cfg.PageSize))
	fmt.Printf("GPUfs (gmmap, self-contained kernel): %v virtual, %.0f MB/s\n",
		gp.Elapsed, float64(gp.Throughput)/1e6)
	fmt.Printf("CUDA naive (4-chunk double buffering): %v virtual, %.0f MB/s\n",
		cu.Elapsed, float64(cu.Throughput)/1e6)
	check("GPUfs", gp.Y)
	check("CUDA", cu.Y)

	// The GPUfs version also left the result on the host file system.
	out, err := sys.ReadHostFile(f.OutPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result file %s: %d bytes\n", f.OutPath, len(out))
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
