// Quickstart: a self-contained GPU kernel that reads a host file through
// the GPUfs API, transforms it, and writes the result back — with no
// CPU-side data movement code at all, the paper's headline programming
// model (§5: "the CPU code is identical, save the name of the GPU kernel").
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"gpufs"
)

func main() {
	// A machine scaled to 1/32 of the paper's testbed: 4 GPUs, each with
	// a 64 MB GPUfs buffer cache over 256 KB pages.
	sys, err := gpufs.NewSystem(gpufs.ScaledConfig(1.0 / 32))
	if err != nil {
		log.Fatal(err)
	}

	// Host side: create the input file. This is the only "application"
	// work the CPU does.
	input := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog\n"), 4096)
	if err := sys.WriteHostFile("/data/input.txt", input); err != nil {
		log.Fatal(err)
	}

	// GPU side: 28 threadblocks of 256 threads uppercase the file
	// collaboratively. Each block opens the shared input (the opens
	// coalesce into ONE host open), reads its stripe with gread, writes
	// the transformed stripe with gwrite under O_GWRONCE (each byte
	// written exactly once), and synchronizes.
	const blocks, threads = 28, 256
	chunk := (len(input) + blocks - 1) / blocks

	end, err := sys.GPU(0).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		in, err := c.Gopen("/data/input.txt", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(in)
		out, err := c.Gopen("/data/output.txt", gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		defer c.Gclose(out)

		off := c.Idx * chunk
		n := chunk
		if off+n > len(input) {
			n = len(input) - off
		}
		if n <= 0 {
			return nil
		}

		buf := make([]byte, n)
		if _, err := c.Gread(in, buf, int64(off)); err != nil {
			return err
		}
		for i, ch := range buf {
			if ch >= 'a' && ch <= 'z' {
				buf[i] = ch - 'a' + 'A'
			}
		}
		c.Compute(float64(n)) // one op per byte
		if _, err := c.Gwrite(out, buf, int64(off)); err != nil {
			return err
		}
		return c.Gfsync(out)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Host side: the result is an ordinary file.
	output, err := sys.ReadHostFile("/data/output.txt")
	if err != nil {
		log.Fatal(err)
	}

	st := sys.GPU(0).Stats()
	fmt.Printf("uppercased %d bytes on the GPU in %v (virtual)\n",
		len(output), gpufs.Duration(end))
	fmt.Printf("first line: %q\n", output[:44])
	fmt.Printf("gopen calls: %d (host opens: %d — the rest coalesced)\n", st.Opens, st.HostOpens)
	fmt.Printf("buffer-cache lookups: %d lock-free, %d locked\n",
		st.LockFreeAccesses, st.LockedAccesses)
	fmt.Printf("RPC requests to the CPU daemon: %d\n", st.RPCRequests)
}
