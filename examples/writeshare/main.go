// Cross-GPU write sharing with the diff-and-merge protocol — the paper's
// §3.1 design that the original prototype left unimplemented ("does not
// yet implement the diff-and-merge protocol required to support general
// write-sharing"). This reproduction includes it, behind O_GWRSHARED.
//
// Four GPUs concurrently fill disjoint stripes of ONE output file whose
// stripe boundaries deliberately do not align with buffer-cache pages, so
// pages are falsely shared between GPUs. Each GPU keeps pristine copies of
// the pages it writes and propagates only its own byte diffs at gfsync, so
// no GPU's sync reverts another's bytes.
//
// Run with:
//
//	go run ./examples/writeshare [-mb 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"gpufs"
)

func main() {
	mb := flag.Int64("mb", 2, "output size in MiB")
	flag.Parse()

	cfg := gpufs.ScaledConfig(1.0 / 32)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	total := *mb << 20
	// A stripe per GPU, deliberately NOT page-aligned.
	stripe := total / int64(sys.NumGPUs())
	if err := sys.WriteHostFile("/shared/out.bin", make([]byte, total)); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, sys.NumGPUs())
	for g := 0; g < sys.NumGPUs(); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = sys.GPU(g).Launch(0, 8, 256, func(c *gpufs.BlockCtx) error {
				fd, err := c.Gopen("/shared/out.bin", gpufs.O_RDWR|gpufs.O_GWRSHARED)
				if err != nil {
					return err
				}
				defer c.Gclose(fd)

				// This block's slice of this GPU's stripe.
				per := stripe / int64(c.Blocks)
				off := int64(g)*stripe + int64(c.Idx)*per
				buf := make([]byte, per)
				for i := range buf {
					buf[i] = byte(g + 1) // GPU fingerprint
				}
				if _, err := c.Gwrite(fd, buf, off); err != nil {
					return err
				}
				return c.Gfsync(fd)
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			log.Fatalf("GPU %d: %v", g, err)
		}
	}

	// Verify on the host: every stripe carries its owner's fingerprint —
	// nothing was reverted by a neighbour's sync of a falsely-shared page.
	out, err := sys.ReadHostFile("/shared/out.bin")
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for i, b := range out {
		if want := byte(int64(i)/stripe + 1); b != want {
			bad++
		}
	}
	fmt.Printf("%d GPUs wrote %d MiB through falsely-shared pages (page size %dK, stripe %d bytes)\n",
		sys.NumGPUs(), *mb, cfg.PageSize>>10, stripe)
	if bad == 0 {
		fmt.Println("merge verified: every byte carries its writer's fingerprint")
	} else {
		fmt.Printf("MERGE FAILED: %d corrupted bytes\n", bad)
	}
	st := sys.GPU(0).Stats()
	fmt.Printf("GPU 0 stats: %d opens (%d host), %d lock-free lookups\n",
		st.Opens, st.HostOpens, st.LockFreeAccesses)
}
