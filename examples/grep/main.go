// GPU grep: the exact string matching application of the paper's §5.2.2
// ("grep -w"): count, for every dictionary word, how often and in which
// files it appears across a source tree — entirely from GPU kernel code.
//
// Run with:
//
//	go run ./examples/grep [-files 200] [-words 2000] [-mb 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpufs"
	"gpufs/internal/workloads"
)

func main() {
	files := flag.Int("files", 200, "number of source files to generate")
	words := flag.Int("words", 2000, "dictionary size")
	mb := flag.Int64("mb", 4, "total corpus size in MiB")
	flag.Parse()

	cfg := gpufs.ScaledConfig(1.0 / 32)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a synthetic source tree and an aligned dictionary file
	// (every word on a 32-byte boundary, as the paper formats it).
	dict := workloads.MakeDictionary(*words)
	if err := sys.WriteHostFile("/grep/dict.txt", dict.Encode()); err != nil {
		log.Fatal(err)
	}
	tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
		Dir:        "/grep/src",
		NumFiles:   *files,
		TotalBytes: *mb << 20,
		Text:       workloads.TextSpec{Dict: dict, DictFraction: 0.4, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.ResetTime()

	blocks := 8 * cfg.MPsPerGPU
	gpuRes, err := workloads.GrepGPUfs(sys, 0, "/grep/dict.txt", tree.ListPath,
		"/grep/out.txt", cfg.GrepGPURate, blocks, 512, 0)
	if err != nil {
		log.Fatal(err)
	}

	sys.ResetTime()
	cpuRes, err := workloads.GrepCPU(sys.Host(), dict, tree.Files, cfg.NumCPUCores, cfg.GrepCPURate)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d files, %.1f MiB; dictionary: %d words\n",
		len(tree.Files), float64(tree.Bytes)/(1<<20), len(dict.Words))
	fmt.Printf("GPU (GPUfs, %d blocks): %v virtual, %d (word,file) matches\n",
		blocks, gpuRes.Elapsed, len(gpuRes.Counts))
	fmt.Printf("CPU (%d cores):         %v virtual\n", cfg.NumCPUCores, cpuRes.Elapsed)
	fmt.Printf("speedup: %.1fx (the paper reports ~7x on its testbed)\n",
		float64(cpuRes.Elapsed)/float64(gpuRes.Elapsed))

	lines := gpuRes.SortedCounts()
	fmt.Println("\nfirst matches (word file count):")
	for i := 0; i < 5 && i < len(lines); i++ {
		fmt.Println("  " + lines[i])
	}

	// The GPU also wrote its results to /grep/out.txt with write-once
	// semantics; show that the output file exists on the host.
	out, err := sys.ReadHostFile("/grep/out.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGPU-written output file: %d bytes\n", len(out))
}
