// Approximate image matching (the paper's §5.2.1): find, for each query
// image, the first database containing it, scanning the databases in
// priority order and stopping early on a match. The working set is
// data-dependent and unbounded — the kind of workload that is painful to
// hand-stage onto a GPU but trivial with GPUfs.
//
// Run with:
//
//	go run ./examples/imagesearch [-gpus 4] [-queries 256] [-dbimages 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpufs"
	"gpufs/internal/workloads"
)

func main() {
	gpus := flag.Int("gpus", 4, "GPUs to spread the query list over")
	queries := flag.Int("queries", 256, "query images")
	dbImages := flag.Int("dbimages", 400, "images per database")
	flag.Parse()

	cfg := gpufs.ScaledConfig(1.0 / 32)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *gpus > sys.NumGPUs() {
		*gpus = sys.NumGPUs()
	}

	// Three databases scanned in priority order; half the queries are
	// injected at random locations, half match nothing.
	w, err := workloads.MakeImageWorkload(sys.Host(), sys.HostClock(), workloads.ImageSpec{
		Dir:      "/img",
		DBImages: []int{*dbImages, *dbImages, *dbImages},
		Queries:  *queries,
		Plan:     workloads.MatchRandom,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.DropHostCaches()
	sys.ResetTime()

	blocks := 2 * cfg.MPsPerGPU
	res, err := workloads.ImageSearchGPUfs(sys, w, *gpus, blocks, 512, "/img/out.bin")
	if err != nil {
		log.Fatal(err)
	}

	matched, correct := 0, 0
	for q, m := range res.Matches {
		if m != workloads.NoMatch {
			matched++
		}
		if m == w.Truth[q] {
			correct++
		}
	}
	fmt.Printf("databases: 3 x %d images (%.1f MiB total); queries: %d\n",
		*dbImages, float64(w.DBBytes)/(1<<20), *queries)
	fmt.Printf("GPUs: %d x %d threadblocks\n", *gpus, blocks)
	fmt.Printf("elapsed: %v virtual\n", res.Elapsed)
	fmt.Printf("matches found: %d/%d (all %d verified against ground truth)\n",
		matched, *queries, correct)

	// Show a few matches (db, index) and the GPU-written result file.
	shown := 0
	for q, m := range res.Matches {
		if m != workloads.NoMatch && shown < 5 {
			fmt.Printf("  query %3d -> db%d image %d\n", q, m.DB, m.Index)
			shown++
		}
	}
	out, err := sys.ReadHostFile("/img/out.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU-written result file: %d bytes (8 per query, write-once)\n", len(out))
}
