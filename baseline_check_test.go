package gpufs_test

import (
	"testing"

	"gpufs"
	"gpufs/internal/workloads"
)

// TestStrongOrderingBitIdenticalBaseline pins the generic syscall
// subsystem's compatibility contract: under strong ordering (the config
// default) on a 1-shard, 1-worker machine, the single-block grep workload
// must reproduce the pre-subsystem virtual timeline EXACTLY — same
// elapsed tick count, same RPC total. Routing every call through the
// typed descriptor path, the per-lane FIFO fence, and the syscall-table
// dispatch must be invisible when the ordering class is strong; any drift
// in these two numbers means the refactor changed semantics, not just
// structure. (The numbers are deterministic because a single block issues
// a serial request chain — multi-block runs race on daemon arrival order
// and are pinned elsewhere, by the conformance suites.)
func TestStrongOrderingBitIdenticalBaseline(t *testing.T) {
	const (
		wantElapsed = 18089863 // virtual ns, pinned before the gsys layer landed
		wantTotal   = 135      // RPC requests end to end
	)
	for _, ordering := range []string{"", "strong"} {
		cfg := gpufs.ScaledConfig(1.0 / 256)
		cfg.RPCShards = 1
		cfg.DaemonWorkers = 1
		cfg.SyscallOrdering = ordering
		// The lock-free hot path (ISSUE 8) must be a pure superset: with
		// zero-copy off and a single allocator shard, the pre-ISSUE-8
		// timeline reproduces exactly.
		cfg.ZeroCopyRead = false
		cfg.FrameShards = 1
		// Likewise the history-prefetch engine (ISSUE 9): with the knob off
		// no recorder or replay state is allocated and the timeline must be
		// bit-identical to the pre-history build.
		cfg.HistoryPrefetch = false
		// And the checkpoint engine (ISSUE 10): with no capture installed
		// its entire hot-path footprint is one nil atomic load on the
		// gwrite path, and the zero-default byte budget allocates nothing.
		// Migration is a fleet-level policy (MigrateOnDrain, default off)
		// that never engages single-host — this timeline must not move.
		cfg.CkptMaxBytes = 0
		sys, err := gpufs.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dict := workloads.MakeDictionary(50)
		if err := sys.WriteHostFile("/base/dict.txt", dict.Encode()); err != nil {
			t.Fatal(err)
		}
		tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
			Dir: "/base/src", NumFiles: 64, TotalBytes: 64 * 2048,
			Text: workloads.TextSpec{Dict: dict, DictFraction: 0.35, Seed: 31},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.ResetTime()
		res, err := workloads.GrepGPUfs(sys, 0, "/base/dict.txt", tree.ListPath,
			"/base/out.txt", cfg.GrepGPURate, 1, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.Elapsed) != wantElapsed || sys.Server().TotalRequests() != wantTotal {
			t.Fatalf("ordering %q drifted from the pinned baseline: elapsed=%d (want %d) requests=%d (want %d)",
				ordering, int64(res.Elapsed), wantElapsed, sys.Server().TotalRequests(), wantTotal)
		}
	}
}
