module gpufs

go 1.22
