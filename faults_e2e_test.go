package gpufs

import (
	"bytes"
	"errors"
	"testing"

	"gpufs/internal/hostfs"
	"gpufs/internal/trace"
)

// TestFaultsEndToEnd drives the public API with a hostile fault schedule:
// the workload must stay correct, the retry machinery must be visibly
// exercised through Stats, and the tracer must record both the injected
// faults and the recovery retries.
func TestFaultsEndToEnd(t *testing.T) {
	sys := testSystem(t, 1.0/64)
	tr := sys.EnableTracing(1 << 14)
	sys.EnableFaults(FaultConfig{
		Seed:                1,
		RPCTransientProb:    0.25,
		RPCDropResponseProb: 0.10,
		RPCDupResponseProb:  0.10,
		HostShortReadProb:   0.30,
		DiskStallProb:       0.20,
		DMAStallProb:        0.20,
	})

	content := make([]byte, 512<<10)
	for i := range content {
		content[i] = byte(i*13 + 7)
	}
	sys.FaultInjector().SetEnabled(false)
	if err := sys.WriteHostFile("/data/in.bin", content); err != nil {
		t.Fatal(err)
	}
	sys.FaultInjector().SetEnabled(true)

	got := make([]byte, len(content))
	_, err := sys.GPU(0).Launch(0, 4, 256, func(c *BlockCtx) error {
		fd, err := c.Gopen("/data/in.bin", O_RDWR)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		chunk := len(content) / c.Blocks
		off := c.Idx * chunk
		if _, err := c.Gread(fd, got[off:off+chunk], int64(off)); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch under faults: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content corrupted by fault recovery")
	}

	st := sys.GPU(0).Stats()
	if st.FaultsInjected == 0 {
		t.Fatalf("injector installed but no faults recorded")
	}
	if st.RPCRetries == 0 {
		t.Fatalf("0.25 transient + 0.1 drop rates caused no retries")
	}

	var sawFault, sawRetry bool
	for _, ev := range tr.Snapshot() {
		switch ev.Op {
		case trace.OpFault:
			sawFault = true
		case trace.OpRetry:
			sawRetry = true
		}
	}
	if !sawFault || !sawRetry {
		t.Fatalf("trace missing fault/retry events (fault=%v retry=%v)", sawFault, sawRetry)
	}
}

// TestFaultsWriteErrorSurfacesAtFsync: a host-side write failure must come
// back through Gfsync as EIO — not crash the kernel, not vanish — and a
// later clean sync must deliver the data.
func TestFaultsWriteErrorSurfacesAtFsync(t *testing.T) {
	sys := testSystem(t, 1.0/64)
	inj := sys.EnableFaults(FaultConfig{Seed: 2, HostWriteEIOProb: 1.0})

	want := []byte("must reach the host eventually")
	_, err := sys.GPU(0).Launch(0, 1, 64, func(c *BlockCtx) error {
		fd, err := c.Gopen("/out.bin", O_RDWR|O_CREATE)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		// The write lands in the GPU buffer cache regardless of host state.
		if _, err := c.Gwrite(fd, want, 0); err != nil {
			return err
		}
		if err := c.Gfsync(fd); !errors.Is(err, hostfs.ErrIO) {
			t.Errorf("Gfsync under 100%% write EIO: %v, want ErrIO", err)
		}
		// Faults clear; the dirty page is still cached and syncs cleanly.
		inj.SetEnabled(false)
		if err := c.Gfsync(fd); err != nil {
			t.Errorf("clean Gfsync after recovery: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadHostFile("/out.bin")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data lost after recovery: %q err=%v", got, err)
	}
}

// TestRestartUnderFaults: prefetch-heavy streaming under an active fault
// schedule, then a card restart through the public API. The buffer cache
// must come back empty (no leaked frames) and the GPU must keep working.
func TestRestartUnderFaults(t *testing.T) {
	cfg := ScaledConfig(1.0 / 64)
	cfg.ReadAheadPages = 4
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableFaults(FaultConfig{
		Seed:              3,
		RPCTransientProb:  0.15,
		HostShortReadProb: 0.25,
		DMAStallProb:      0.15,
	})
	sys.FaultInjector().SetEnabled(false)
	content := make([]byte, 1<<20)
	for i := range content {
		content[i] = byte(i * 31)
	}
	if err := sys.WriteHostFile("/stream.bin", content); err != nil {
		t.Fatal(err)
	}
	sys.FaultInjector().SetEnabled(true)

	gpu := sys.GPU(0)
	_, err = gpu.Launch(0, 2, 128, func(c *BlockCtx) error {
		fd, err := c.Gopen("/stream.bin", O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 32<<10)
		chunk := len(content) / c.Blocks
		for off := c.Idx * chunk; off < (c.Idx+1)*chunk; off += len(buf) {
			if _, err := c.Gread(fd, buf, int64(off)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("streaming under faults: %v", err)
	}

	gpu.Restart()
	cache := gpu.FS().Cache()
	if free, num := cache.FreeFrames(), cache.NumFrames(); free != num {
		t.Fatalf("restart leaked %d frames (%d/%d free)", num-free, free, num)
	}

	// Still alive: re-read a slice after the restart, faults still on.
	_, err = gpu.Launch(0, 1, 64, func(c *BlockCtx) error {
		fd, err := c.Gopen("/stream.bin", O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 4096)
		if _, err := c.Gread(fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, content[:4096]) {
			t.Errorf("post-restart read corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("post-restart launch: %v", err)
	}
}
