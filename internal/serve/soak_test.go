package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpufs"
	"gpufs/internal/workloads"
)

// soakCorpus writes files for the soak runs and precomputes every
// (kind, path, word) oracle so verification is O(1) per result.
type soakCorpus struct {
	paths []string
	words []string
	grep  map[string]int64 // path+word -> count
	srch  map[string]int64
}

func makeSoakCorpus(t *testing.T, sys *gpufs.System, numFiles int) *soakCorpus {
	t.Helper()
	dict := workloads.MakeDictionary(300)
	c := &soakCorpus{
		grep: make(map[string]int64),
		srch: make(map[string]int64),
	}
	for i := 0; i < 8; i++ {
		c.words = append(c.words, workloads.MakeWord(i*13))
	}
	for i := 0; i < numFiles; i++ {
		path := fmt.Sprintf("/soak/f%03d.txt", i)
		text := workloads.MakeText(4<<10, workloads.TextSpec{
			Dict: dict, DictFraction: 0.8, Seed: int64(5000 + i),
		})
		if err := sys.WriteHostFile(path, text); err != nil {
			t.Fatalf("WriteHostFile: %v", err)
		}
		c.paths = append(c.paths, path)
		for _, w := range c.words {
			c.grep[path+"\x00"+w] = int64(workloads.CountWord(text, w))
			c.srch[path+"\x00"+w] = int64(bytes.Count(text, []byte(w)))
		}
	}
	return c
}

// jobFor derives tenant ti's ji-th job deterministically, with a zipf-ish
// skew toward the first few files so cache affinity has something to win.
func (c *soakCorpus) jobFor(rng *rand.Rand) Job {
	var pi int
	if rng.Intn(100) < 70 {
		pi = rng.Intn(4) // hot set
	} else {
		pi = rng.Intn(len(c.paths))
	}
	w := c.words[rng.Intn(len(c.words))]
	switch rng.Intn(3) {
	case 0:
		return Job{Kind: JobGrep, Path: c.paths[pi], Word: w}
	case 1:
		return Job{Kind: JobSearch, Path: c.paths[pi], Word: w}
	default:
		return Job{Kind: JobTransform, Path: c.paths[pi], MaxOutput: 256}
	}
}

// check verifies one result against the precomputed oracles.
func (c *soakCorpus) check(t *testing.T, res Result) {
	t.Helper()
	key := res.Job.Path + "\x00" + res.Job.Word
	switch res.Job.Kind {
	case JobGrep:
		if res.Count != c.grep[key] {
			t.Errorf("job %d: grep %q in %s = %d, want %d",
				res.ID, res.Job.Word, res.Job.Path, res.Count, c.grep[key])
		}
	case JobSearch:
		if res.Count != c.srch[key] {
			t.Errorf("job %d: search %q in %s = %d, want %d",
				res.ID, res.Job.Word, res.Job.Path, res.Count, c.srch[key])
		}
	case JobTransform:
		if int64(len(res.Output)) > res.Job.MaxOutput {
			t.Errorf("job %d: transform output %d bytes exceeds cap %d",
				res.ID, len(res.Output), res.Job.MaxOutput)
		}
	}
}

// runSoak drives the closed-loop load: tenants × jobsPerTenant jobs, at
// most `outstanding` in flight per tenant, retrying on overload. Returns
// all results, exactly one per submitted job.
func runSoak(t *testing.T, srv *Server, c *soakCorpus, tenants, jobsPerTenant, outstanding int) []Result {
	t.Helper()
	results := make(chan Result, tenants*jobsPerTenant)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", ti)
			rng := rand.New(rand.NewSource(int64(7700 + ti)))
			sem := make(chan struct{}, outstanding)
			var inner sync.WaitGroup
			for ji := 0; ji < jobsPerTenant; ji++ {
				sem <- struct{}{}
				spec := c.jobFor(rng)
				var fut *Future
				for {
					var err error
					fut, err = srv.Submit(name, spec)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("tenant %s: submit: %v", name, err)
						<-sem
						return
					}
					runtime.Gosched()
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					results <- fut.Wait()
					<-sem
				}()
			}
			inner.Wait()
		}(ti)
	}
	wg.Wait()
	close(results)

	var all []Result
	for res := range results {
		all = append(all, res)
	}
	return all
}

// verifySoak asserts the hard serving invariants: every job accounted for
// exactly once, no duplicated ids, stats consistent with results.
func verifySoak(t *testing.T, srv *Server, all []Result, wantJobs int) {
	t.Helper()
	if len(all) != wantJobs {
		t.Fatalf("got %d results, want %d (lost or duplicated jobs)", len(all), wantJobs)
	}
	seen := make(map[uint64]bool, len(all))
	var failed int64
	for _, res := range all {
		if seen[res.ID] {
			t.Fatalf("job id %d delivered twice", res.ID)
		}
		seen[res.ID] = true
		if res.Err != nil {
			failed++
		}
	}
	st := srv.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("after drain: queued=%d inflight=%d", st.Queued, st.Inflight)
	}
	if got := st.Completed() + st.Failed(); got != int64(wantJobs) {
		t.Fatalf("stats account for %d jobs, want %d", got, wantJobs)
	}
	if st.Failed() != failed {
		t.Fatalf("stats report %d failures, results show %d", st.Failed(), failed)
	}
}

// TestServeSoak is the acceptance soak: ≥1,000 jobs from 8 tenants over
// 2 GPUs, closed loop, race-detector clean, zero lost or duplicated
// results, every answer matching the host-side oracle, clean drain.
func TestServeSoak(t *testing.T) {
	const (
		numTenants    = 8
		jobsPerTenant = 128 // 1,024 jobs total
		outstanding   = 16
	)
	cfg := gpufs.ScaledConfig(testScale)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := makeSoakCorpus(t, sys, 16)
	srv := New(sys, Config{QueueDepth: outstanding, MaxBatch: 16})

	all := runSoak(t, srv, c, numTenants, jobsPerTenant, outstanding)
	srv.Drain()
	verifySoak(t, srv, all, numTenants*jobsPerTenant)

	for _, res := range all {
		if res.Err != nil {
			t.Fatalf("job %d failed in fault-free soak: %v", res.ID, res.Err)
		}
		c.check(t, res)
	}

	st := srv.Stats()
	if bf := st.BatchFactor(); bf <= 1.0 {
		t.Errorf("batch factor %.2f: continuous batching never coalesced", bf)
	}
	for g, gs := range st.GPUs {
		if gs.Launched == 0 {
			t.Errorf("gpu %d never ran a job", g)
		}
	}
	t.Logf("soak:\n%s", st)
}

// TestServeSoakWithFaults injects the full RPC/host fault mix and checks
// the serving contract under fire: every job still completes exactly once
// — successfully or with an explicit error — and successes are correct.
func TestServeSoakWithFaults(t *testing.T) {
	const (
		numTenants    = 8
		jobsPerTenant = 32
		outstanding   = 8
	)
	cfg := gpufs.ScaledConfig(testScale)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := makeSoakCorpus(t, sys, 8)
	sys.EnableFaults(gpufs.FaultConfig{
		Seed:                1,
		RPCPollDelayProb:    0.05,
		RPCDropResponseProb: 0.02,
		RPCDupResponseProb:  0.02,
		RPCTransientProb:    0.05,
		HostShortReadProb:   0.05,
		HostReadEIOProb:     0.02,
		DiskStallProb:       0.05,
		DMAStallProb:        0.05,
	})

	srv := New(sys, Config{QueueDepth: outstanding, MaxBatch: 8})
	all := runSoak(t, srv, c, numTenants, jobsPerTenant, outstanding)
	srv.Drain()
	verifySoak(t, srv, all, numTenants*jobsPerTenant)

	var failed int
	for _, res := range all {
		if res.Err != nil {
			// Explicit, classified failure — never a silent wrong answer.
			failed++
			continue
		}
		c.check(t, res)
	}
	t.Logf("faulty soak: %d/%d failed explicitly", failed, len(all))
}

// TestServeSoakSurvivesRestart fires GPU restarts while the load runs;
// restarts wipe device caches but must never lose or duplicate a job.
func TestServeSoakSurvivesRestart(t *testing.T) {
	const (
		numTenants    = 8
		jobsPerTenant = 24
		outstanding   = 8
	)
	cfg := gpufs.ScaledConfig(testScale)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := makeSoakCorpus(t, sys, 8)
	srv := New(sys, Config{QueueDepth: outstanding})

	stop := make(chan struct{})
	var restarter sync.WaitGroup
	restarter.Add(1)
	go func() {
		defer restarter.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.GPU(i % 2).Restart()
			time.Sleep(time.Millisecond)
		}
	}()

	all := runSoak(t, srv, c, numTenants, jobsPerTenant, outstanding)
	close(stop)
	restarter.Wait()
	srv.Drain()
	verifySoak(t, srv, all, numTenants*jobsPerTenant)

	for _, res := range all {
		if res.Err != nil {
			t.Fatalf("job %d failed across restarts: %v", res.ID, res.Err)
		}
		c.check(t, res)
	}
}
