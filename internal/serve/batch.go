package serve

import (
	"errors"
	"fmt"

	"gpufs"
	"gpufs/internal/hostfs"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// gpuQueue is one GPU's pending work, organized per tenant so the batcher
// can pop fairly (round-robin across tenants) instead of letting one
// chatty tenant monopolize a device.
type gpuQueue struct {
	byTenant map[string][]*job
	rr       []string // tenant rotation order
	size     int
}

func newGPUQueue() *gpuQueue {
	return &gpuQueue{byTenant: make(map[string][]*job)}
}

func (q *gpuQueue) push(j *job) {
	if _, ok := q.byTenant[j.tenant]; !ok {
		q.rr = append(q.rr, j.tenant)
	}
	q.byTenant[j.tenant] = append(q.byTenant[j.tenant], j)
	q.size++
}

// pop removes up to n jobs, visiting tenants round-robin so each
// scheduling round interleaves tenants rather than draining one at a time.
func (q *gpuQueue) pop(n int) []*job {
	var out []*job
	for len(out) < n && q.size > 0 {
		tn := q.rr[0]
		jobs := q.byTenant[tn]
		out = append(out, jobs[0])
		q.size--
		if len(jobs) == 1 {
			delete(q.byTenant, tn)
			q.rr = q.rr[1:]
		} else {
			q.byTenant[tn] = jobs[1:]
			// Rotate so the next pop starts at the following tenant.
			q.rr = append(q.rr[1:], tn)
		}
	}
	return out
}

// worker is GPU g's scheduling loop: one goroutine per device that
// repeatedly assembles a batch from the queue (stealing when its own is
// empty), runs it as a single kernel launch, completes or requeues each
// job, and sleeps when there is nothing to do.
func (s *Server) worker(g int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		batch := s.takeLocked(g)
		for batch == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			batch = s.takeLocked(g)
		}
		s.inflight[g] += len(batch)
		s.mu.Unlock()

		retries := s.runBatch(g, batch)

		s.mu.Lock()
		// Requeue retries and release the in-flight count in one critical
		// section so Drain never observes a moment where a retrying job
		// is neither queued nor in flight.
		for _, j := range retries {
			s.queues[g].push(j)
			s.gstats[g].Requeued++
		}
		if len(retries) > 0 {
			s.met.noteQueueDepth(g, s.queues[g].size)
		}
		s.inflight[g] -= len(batch)
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// takeLocked assembles GPU g's next batch: up to MaxBatch jobs popped
// fairly from its own queue, or — when that is empty — stolen from the
// longest SATURATED queue (≥ StealThreshold), so an idle device helps an
// overwhelmed one without breaking cache locality under light load.
// Returns nil when there is nothing to take.
func (s *Server) takeLocked(g int) []*job {
	if s.handoff {
		// A handoff freeze is flushing the queues: anything still queued
		// (including retries requeued by in-flight batches) belongs to the
		// flush, not to one more launch. Without this gate a worker waking
		// between a retry's requeue and the drain loop's next pop could
		// re-execute a job the freeze is about to hand off — the job would
		// be dispatched here AND appear queued in a checkpoint image.
		return nil
	}
	if q := s.queues[g]; q.size > 0 {
		batch := q.pop(s.cfg.MaxBatch)
		s.met.noteQueueDepth(g, q.size)
		return batch
	}
	victim, longest := -1, s.cfg.StealThreshold-1
	for i, q := range s.queues {
		if i != g && q.size > longest {
			victim, longest = i, q.size
		}
	}
	if victim < 0 {
		return nil
	}
	batch := s.queues[victim].pop(s.cfg.MaxBatch)
	s.met.noteQueueDepth(victim, s.queues[victim].size)
	s.gstats[g].Stolen += int64(len(batch))
	return batch
}

// runBatch executes one scheduling round on GPU g: fail jobs whose
// deadline already passed, coalesce the rest into a single kernel launch
// whose blocks stride over the jobs, recover from device faults by
// restarting the GPU, and sort each job into completed vs retry. It
// returns the jobs to requeue.
func (s *Server) runBatch(g int, batch []*job) (retries []*job) {
	s.mu.Lock()
	start := s.cursors[g]
	batchID := s.batchSeq
	s.batchSeq++
	s.mu.Unlock()
	if now := simtime.Time(s.vnow.Load()); now > start {
		// The device was idle past its last launch: batches never start
		// before the server-wide virtual now that stamped their arrivals.
		start = now
	}

	// Deadline triage before spending GPU time.
	run := batch[:0:len(batch)]
	for _, j := range batch {
		if j.deadline != 0 && start > j.deadline {
			s.completeJob(j, g, batchID, start, start, fmt.Errorf("%w: queued past deadline (last error: %v)",
				ErrDeadlineExceeded, j.lastErr))
			continue
		}
		run = append(run, j)
	}
	if len(run) == 0 {
		return nil
	}

	gpu := s.sys.GPU(g)
	// Affinity accounting happens at assembly time, before the launch
	// itself populates the cache; every job in the launch consumes one
	// attempt whether or not the device survives it.
	for _, j := range run {
		j.hit = gpu.ResidentPages(j.spec.Path) > 0
		j.attempts++
	}

	if s.tr.Enabled() {
		s.tr.Record(trace.Event{
			GPU: g, Op: trace.OpBatch, Path: fmt.Sprintf("batch-%d", batchID),
			Bytes: int64(len(run)), Start: start, End: start,
		})
	}
	if m := s.met; m != nil {
		m.batchJobs[g].Observe(int64(len(run)))
	}

	blocks := len(run)
	if blocks > s.cfg.MaxBlocks {
		blocks = s.cfg.MaxBlocks
	}
	// The round's blocks fan out across the GPU's RPC ring shards by the
	// blocks' stable lane hash; record how wide this dispatch spreads.
	lanes := make(map[int]bool, blocks)
	for blockIdx := 0; blockIdx < blocks; blockIdx++ {
		lanes[gpu.FS().Client().ShardFor(blockIdx)] = true
	}
	s.mu.Lock()
	if len(lanes) > s.gstats[g].ShardLanes {
		s.gstats[g].ShardLanes = len(lanes)
	}
	s.mu.Unlock()
	end, lerr := gpu.Launch(start, blocks, s.cfg.ThreadsPerBlock, func(c *gpufs.BlockCtx) error {
		for ji := c.Idx; ji < len(run); ji += blocks {
			s.execJob(c, run[ji])
		}
		return nil
	})
	if lerr != nil {
		// The device faulted (e.g. injected kernel fault): its buffer
		// cache and open-file state are gone. Restart it and retry the
		// whole batch within each job's budget.
		gpu.Restart()
		s.mu.Lock()
		s.gstats[g].Restarts++
		s.cursors[g] = start
		s.mu.Unlock()
		if m := s.met; m != nil {
			m.restarts[g].Inc()
		}
		for _, j := range run {
			j.lastErr = lerr
			if j.attempts >= s.cfg.MaxAttempts {
				s.completeJob(j, g, batchID, start, start,
					fmt.Errorf("serve: gpu %d faulted %d times running job: %w", g, j.attempts, lerr))
			} else {
				retries = append(retries, j)
			}
		}
		return retries
	}

	if s.tr.Enabled() {
		s.tr.Record(trace.Event{
			GPU: g, Op: trace.OpDispatch, Path: fmt.Sprintf("batch-%d", batchID),
			Bytes: int64(len(run)), Start: start, End: end,
		})
	}

	s.mu.Lock()
	s.cursors[g] = end
	s.gstats[g].Batches++
	s.gstats[g].Launched += int64(len(run))
	if len(run) > s.gstats[g].MaxBatch {
		s.gstats[g].MaxBatch = len(run)
	}
	s.mu.Unlock()
	for {
		v := s.vnow.Load()
		if int64(end) <= v || s.vnow.CompareAndSwap(v, int64(end)) {
			break
		}
	}

	for _, j := range run {
		switch {
		case j.deadline != 0 && end > j.deadline:
			// A late result is a dead result, even a correct one.
			s.completeJob(j, g, batchID, start, end,
				fmt.Errorf("%w (finished %v late, last error: %v)",
					ErrDeadlineExceeded, end.Sub(j.deadline), j.err))
		case j.err == nil:
			s.completeJob(j, g, batchID, start, end, nil)
		case retryable(j.err) && j.attempts < s.cfg.MaxAttempts:
			j.lastErr = j.err
			retries = append(retries, j)
		default:
			s.completeJob(j, g, batchID, start, end,
				fmt.Errorf("serve: job failed after %d attempt(s): %w", j.attempts, j.err))
		}
	}
	return retries
}

// retryable classifies a job error as transient. EAGAIN from the host
// daemon is always worth retrying; EIO may be a per-call injected fault
// (transient) or a persistent bad sector — retrying within the attempt
// budget handles the first and converts the second into an explicit
// failure.
func retryable(err error) bool {
	return rpc.Retryable(err) || errors.Is(err, hostfs.ErrIO)
}

// completeJob delivers a job's result exactly once, releases the tenant's
// admission slot, and folds the outcome into the stats.
func (s *Server) completeJob(j *job, g int, batchID int64, started, done simtime.Time, err error) {
	res := Result{
		Tenant:      j.tenant,
		Job:         j.spec,
		ID:          j.id,
		Count:       j.count,
		Output:      j.output,
		Err:         err,
		GPU:         g,
		Batch:       batchID,
		Attempts:    j.attempts,
		Enqueued:    j.arrival,
		Started:     started,
		Done:        done,
		AffinityHit: j.hit,
	}
	if err != nil {
		res.Count, res.Output = 0, nil
	}

	s.mu.Lock()
	tn := s.tenants[j.tenant]
	tn.open--
	if errors.Is(err, ErrHandedOff) {
		// The job never launched here and will run elsewhere: a routing
		// outcome, not a failure.
		tn.stats.HandedOff++
		s.gstats[g].HandedOff++
	} else if err != nil {
		tn.stats.Failed++
		s.gstats[g].Failed++
	} else {
		tn.stats.Completed++
		s.gstats[g].Completed++
		if j.hit {
			s.gstats[g].AffinityHits++
		}
	}
	lat := done.Sub(j.arrival)
	if !errors.Is(err, ErrHandedOff) {
		// Handed-off jobs never ran here: their queue-only dwell time
		// would pollute the service estimate and the latency series.
		s.lat = append(s.lat, lat)
		// EWMA of per-job service time feeds the overload retry-after hint.
		s.svcEst = (s.svcEst*7 + lat) / 8
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	if m := s.met; m != nil && !errors.Is(err, ErrHandedOff) {
		m.jobLatency[g].ObserveDuration(lat)
		if errors.Is(err, ErrDeadlineExceeded) {
			m.deadlineMiss[g].Inc()
		}
	}

	j.fut.ch <- res
}
