package serve

import (
	"strings"
	"testing"

	"gpufs"
)

// pipelineSystem builds a 2-GPU machine with lowercase input files sized
// so records, pages, and warp chunks all misalign.
func pipelineSystem(t *testing.T, numFiles int, fileBytes int) (*gpufs.System, []string) {
	t.Helper()
	sys, _ := testSystem(t, 2, 0)
	paths := make([]string, numFiles)
	for i := range paths {
		paths[i] = "/in/f" + string(rune('a'+i)) + ".txt"
		data := make([]byte, fileBytes+i*37)
		for j := range data {
			data[j] = byte('a' + (i+j)%26)
		}
		if err := sys.WriteHostFile(paths[i], data); err != nil {
			t.Fatalf("WriteHostFile: %v", err)
		}
	}
	return sys, paths
}

func TestPipelineEndToEnd(t *testing.T) {
	sys, paths := pipelineSystem(t, 4, 5000)
	res, err := RunPipeline(sys, PipelineConfig{
		Inputs:      paths,
		Output:      "/out/up.txt",
		ConsumerGPU: 1,
		PipeCap:     8 << 10,
		Blocks:      2,
		Threads:     32,
	})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if res.BytesProduced != res.BytesConsumed {
		t.Fatalf("produced %d != consumed %d", res.BytesProduced, res.BytesConsumed)
	}
	if res.Records == 0 || res.Elapsed <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	// RunPipeline verifies the output internally; double-check one slice.
	out, err := sys.ReadHostFile("/out/up.txt")
	if err != nil {
		t.Fatalf("ReadHostFile: %v", err)
	}
	in, _ := sys.ReadHostFile(paths[0])
	if string(out[:len(in)]) != strings.ToUpper(string(in)) {
		t.Fatal("output prefix is not the uppercased first input")
	}
}

func TestPipelineWarpGranularity(t *testing.T) {
	sys, paths := pipelineSystem(t, 2, 9000)
	res, err := RunPipeline(sys, PipelineConfig{
		Inputs:      paths,
		Output:      "/out/warp.txt",
		ConsumerGPU: 1,
		PipeCap:     8 << 10,
		Blocks:      1,
		Threads:     64,
		Granularity: "warp",
	})
	if err != nil {
		t.Fatalf("RunPipeline(warp): %v", err)
	}
	if res.WarpDescriptors == 0 {
		t.Fatal("warp granularity produced no coalesced descriptors")
	}
	// 64 threads = 2 warps per file read; coalescing must beat one
	// descriptor per thread by a wide margin.
	if res.WarpDescriptors >= int64(len(paths))*64 {
		t.Fatalf("warp reads did not coalesce: %d descriptors", res.WarpDescriptors)
	}
}

// TestPipelineBackpressure checks that a small pipe really throttles the
// producer in virtual time: the producer cannot finish before the
// consumer has drained all but one pipe's worth of its output.
func TestPipelineBackpressure(t *testing.T) {
	run := func(pipeCap int) *PipelineResult {
		sys, paths := pipelineSystem(t, 2, 20000)
		res, err := RunPipeline(sys, PipelineConfig{
			Inputs:      paths,
			Output:      "/out/bp.txt",
			ConsumerGPU: 1,
			PipeCap:     pipeCap,
			Blocks:      1,
			Threads:     32,
		})
		if err != nil {
			t.Fatalf("RunPipeline(cap=%d): %v", pipeCap, err)
		}
		return res
	}
	tight := run(1 << 10)
	roomy := run(1 << 20)
	if tight.Elapsed < roomy.Elapsed {
		t.Fatalf("tight pipe (%v) finished before roomy pipe (%v)", tight.Elapsed, roomy.Elapsed)
	}
}

func TestPipelineValidation(t *testing.T) {
	sys, paths := pipelineSystem(t, 1, 1000)
	base := PipelineConfig{
		Inputs: paths, Output: "/out/x", ConsumerGPU: 1,
		PipeCap: 4096, Blocks: 1, Threads: 32,
	}
	bad := []PipelineConfig{
		{Inputs: paths, Output: "/out/x", PipeCap: 4096, Blocks: 1, Threads: 32},                                   // same GPU
		{Inputs: nil, Output: "/out/x", ConsumerGPU: 1, PipeCap: 4096, Blocks: 1, Threads: 32},                     // no inputs
		{Inputs: paths, Output: "/out/x", ConsumerGPU: 1, PipeCap: 16, Blocks: 1, Threads: 32},                     // tiny pipe
		{Inputs: paths, Output: "/out/x", ConsumerGPU: 1, PipeCap: 4096, Blocks: 0, Threads: 32},                   // no blocks
		{Inputs: paths, Output: "/out/x", ConsumerGPU: 1, PipeCap: 4096, Blocks: 1, Threads: 32, Granularity: "z"}, // bad gran
	}
	for i, cfg := range bad {
		if _, err := RunPipeline(sys, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := RunPipeline(sys, base); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}
