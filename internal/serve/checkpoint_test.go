package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestHandoffGateFreezesDispatch is the regression pin for the latent
// drain double-delivery race (ISSUE 10 satellite): once the handoff flag
// is up, takeLocked must not launch ANOTHER batch — a job popped by a
// worker after the freeze but before the flush would execute AND be
// handed back, appearing twice. With the gate, everything admitted after
// the freeze is flushed with ErrHandedOff at Attempts == 0: it appears
// exactly once in the handoff, as never-executed.
func TestHandoffGateFreezesDispatch(t *testing.T) {
	sys, paths := testSystem(t, 2, 2)
	srv := New(sys, Config{QueueDepth: 256, MaxBatch: 4})

	// Freeze dispatch WITHOUT stopping admission — the window Checkpoint
	// opens while the snapshot walk overlaps in-flight work.
	srv.mu.Lock()
	srv.handoff = true
	srv.mu.Unlock()

	const n = 32
	var futs []*Future
	for i := 0; i < n; i++ {
		fut, err := srv.Submit("tenant", Job{Kind: JobGrep, Path: paths[i%len(paths)], Word: "the"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	// Give the workers every chance to (wrongly) take a batch.
	time.Sleep(2 * time.Millisecond)
	runtime.Gosched()
	st := srv.Stats()
	if st.Inflight != 0 || st.Completed() != 0 {
		t.Fatalf("dispatch not frozen under handoff: %d in flight, %d completed", st.Inflight, st.Completed())
	}
	if st.Queued != n {
		t.Fatalf("queue holds %d jobs, want all %d", st.Queued, n)
	}

	handed := srv.DrainForHandoff()
	if handed != n {
		t.Fatalf("DrainForHandoff flushed %d jobs, want %d", handed, n)
	}
	for i, fut := range futs {
		select {
		case res := <-fut.Done():
			if !errors.Is(res.Err, ErrHandedOff) {
				t.Fatalf("job %d resolved %v, want ErrHandedOff", i, res.Err)
			}
			if res.Attempts != 0 {
				t.Fatalf("job %d handed off after %d attempts: it was executed AND handed back (double delivery)", i, res.Attempts)
			}
		default:
			t.Fatalf("job %d unresolved after DrainForHandoff", i)
		}
	}
}

// TestCheckpointExactlyOnce races Checkpoint against live submitters and
// accounts for every admitted job exactly once: completed in flight,
// handed off in the image's Queued manifest, or rejected with ErrDraining
// and no Future. Run under -race this certifies the freeze protocol.
func TestCheckpointExactlyOnce(t *testing.T) {
	const (
		rounds     = 10
		submitters = 8
	)
	for round := 0; round < rounds; round++ {
		sys, paths := testSystem(t, 2, 2)
		srv := New(sys, Config{QueueDepth: 64, MaxBatch: 8})

		type outcome struct {
			fut *Future
			err error
		}
		outcomes := make(chan outcome, submitters*8)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					fut, err := srv.Submit(fmt.Sprintf("t%d", s),
						Job{Kind: JobGrep, Path: paths[i%len(paths)], Word: "the"})
					outcomes <- outcome{fut, err}
					if err != nil {
						return
					}
				}
			}(s)
		}
		close(start)
		runtime.Gosched()
		img, err := srv.Checkpoint()
		if err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		wg.Wait()
		close(outcomes)

		var completed, handed, rejected int
		for o := range outcomes {
			switch {
			case o.err == nil:
				select {
				case res := <-o.fut.Done():
					switch {
					case res.Err == nil:
						completed++
					case errors.Is(res.Err, ErrHandedOff):
						handed++
						if res.Attempts != 0 {
							t.Fatalf("round %d: handed-off job ran %d attempts (double delivery)", round, res.Attempts)
						}
					default:
						t.Fatalf("round %d: admitted job failed: %v", round, res.Err)
					}
				default:
					t.Fatalf("round %d: admitted Future unresolved after Checkpoint returned", round)
				}
			case errors.Is(o.err, ErrDraining):
				rejected++
			default:
				t.Fatalf("round %d: unexpected submit error: %v", round, o.err)
			}
		}
		if len(img.Queued) != handed {
			t.Fatalf("round %d: image manifests %d queued jobs, futures show %d handed off",
				round, len(img.Queued), handed)
		}
		_ = completed
		_ = rejected
	}
}

// TestCheckpointRestoreRoundTrip moves a live server's state onto a fresh
// host: the image carries the cache (the replacement answers warm), the
// queued-job manifest re-submits cleanly, and the restored server's
// virtual clock accounts for the restore work.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	sysA, pathsA := testSystem(t, 2, 4)
	srvA := New(sysA, Config{QueueDepth: 256, MaxBatch: 4})

	var futs []*Future
	for i := 0; i < 64; i++ {
		fut, err := srvA.Submit("tenant", Job{Kind: JobGrep, Path: pathsA[i%len(pathsA)], Word: "the"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	time.Sleep(2 * time.Millisecond) // let some batches dispatch
	img, err := srvA.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i, fut := range futs {
		select {
		case <-fut.Done():
		default:
			t.Fatalf("job %d unresolved after Checkpoint", i)
		}
	}
	if len(img.GPUs) != sysA.NumGPUs() {
		t.Fatalf("image carries %d GPU states, want %d", len(img.GPUs), sysA.NumGPUs())
	}
	if img.CaptureEnd < img.CaptureStart {
		t.Fatalf("capture window inverted: [%d, %d]", img.CaptureStart, img.CaptureEnd)
	}
	// The workload read real pages; something must have been captured.
	var pages int64
	for _, g := range img.GPUs {
		for _, f := range g.Files {
			pages += int64(len(f.Dirty) + len(f.Clean))
		}
	}
	if pages == 0 {
		t.Fatal("image captured zero pages from a warmed server")
	}

	// A second Checkpoint (or drain) on the now-drained server must not
	// find new work: the host's one drain call is spent.
	if _, err := srvA.Checkpoint(); !errors.Is(err, ErrDraining) {
		t.Fatalf("second checkpoint: err=%v, want ErrDraining", err)
	}
	if n := srvA.DrainForHandoff(); n != 0 {
		t.Fatalf("DrainForHandoff after Checkpoint flushed %d jobs, want 0", n)
	}

	sysB, pathsB := testSystem(t, 2, 4)
	srvB := New(sysB, Config{QueueDepth: 256, MaxBatch: 4})
	if err := srvB.Restore(img); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if srvB.Now() == 0 {
		t.Fatal("restore charged no virtual time")
	}
	var resident int64
	for _, p := range pathsB {
		resident += srvB.ResidentPages(p)
	}
	if resident == 0 {
		t.Fatal("restored server is cold: no resident corpus pages")
	}

	// Restore is only legal onto a factory-fresh host.
	if err := srvB.Restore(img); !errors.Is(err, ErrNotRestorable) {
		t.Fatalf("second restore: err=%v, want ErrNotRestorable", err)
	}

	// Replay the manifest: the handed-off tail completes on the new host.
	for i, q := range img.Queued {
		fut, err := srvB.Submit(q.Tenant, Job{Kind: JobKind(q.Kind), Path: q.Path, Word: q.Word})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if res := fut.Wait(); res.Err != nil {
			t.Fatalf("replayed job %d failed on the restored host: %v", i, res.Err)
		}
	}
	srvB.Drain()
}
