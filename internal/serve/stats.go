package serve

import (
	"fmt"
	"sort"
	"strings"

	"gpufs/internal/simtime"
)

// TenantStats is one tenant's admission-control and completion counters.
type TenantStats struct {
	// Submitted counts admitted jobs; Rejected counts OverloadError
	// refusals; MaxQueued is the high-water mark of jobs in the system.
	Submitted, Rejected int64
	MaxQueued           int
	// Completed and Failed partition finished jobs; HandedOff counts jobs
	// DrainForHandoff returned unexecuted for resubmission elsewhere.
	Completed, Failed, HandedOff int64
}

// GPUStats is one device's serving counters.
type GPUStats struct {
	// Routed counts jobs the placement layer sent here; Stolen counts
	// jobs this worker took from another GPU's queue; Spilled counts
	// jobs routed AWAY because this (affine) queue was saturated;
	// Requeued counts retry re-insertions.
	Routed, Stolen, Spilled, Requeued int64
	// Batches counts kernel launches; Launched counts jobs across them
	// (Launched/Batches is the realized batching factor); MaxBatch is
	// the largest single launch.
	Batches, Launched int64
	MaxBatch          int
	// Completed and Failed partition jobs finalized on this device;
	// AffinityHits counts completed jobs whose file was buffer-cache
	// resident here at batch assembly.
	Completed, Failed, AffinityHits int64
	// Restarts counts fault-driven GPU.Restart recoveries.
	Restarts int64
	// HandedOff counts jobs flushed from this device's queue by
	// DrainForHandoff — never launched here, resubmitted elsewhere.
	HandedOff int64
	// PrefetchIssued/PrefetchUsed/PrefetchWasted are this device's
	// buffer-cache read-ahead counters (core.CacheStats): speculative
	// pages launched, consumed by a demand access, and reclaimed unused.
	PrefetchIssued, PrefetchUsed, PrefetchWasted int64
	// ReplayIssued/ReplayUsed/ReplayWasted are the history-prefetch
	// subset of the counters above (pages issued by profile replay);
	// HistoryReplays counts opens that replayed a recorded profile and
	// HistoryInvalidations counts profiles dropped because the host copy
	// changed between opens. All 0 with HistoryPrefetch off.
	ReplayIssued, ReplayUsed, ReplayWasted int64
	HistoryReplays, HistoryInvalidations   int64
	// CleanedPages counts pages the background writeback cleaner wrote
	// back or pre-evicted off the fault critical path.
	CleanedPages int64
	// ZeroCopyReads counts cache-hit reads served in place from the
	// pinned frame (one device-memory pass instead of a copy);
	// FrameSteals counts allocations that took a frame from another
	// shard's free list. Both are 0 with the ISSUE 8 knobs off.
	ZeroCopyReads, FrameSteals int64
	// ShardLanes is the largest number of distinct RPC ring shards one
	// batch's blocks spanned on this device — how wide a dispatch round
	// spread across the sharded host-service rings (1 with a single
	// ring).
	ShardLanes int
}

// Stats is a consistent snapshot of the server's counters.
type Stats struct {
	// Tenants maps tenant name to its counters.
	Tenants map[string]TenantStats
	// GPUs holds per-device counters, indexed by GPU id.
	GPUs []GPUStats
	// Queued and Inflight are the instantaneous backlog.
	Queued, Inflight int
	// Latencies are the virtual admission-to-completion times of all
	// finished jobs, in completion order.
	Latencies []simtime.Duration
	// Now is the server's virtual time.
	Now simtime.Time
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Tenants: make(map[string]TenantStats, len(s.tenants)),
		GPUs:    append([]GPUStats(nil), s.gstats...),
		Now:     simtime.Time(s.vnow.Load()),
	}
	for name, tn := range s.tenants {
		st.Tenants[name] = tn.stats
	}
	for g, q := range s.queues {
		st.Queued += q.size
		st.Inflight += s.inflight[g]
	}
	for g := range st.GPUs {
		cs := s.sys.GPU(g).FS().CacheStats()
		st.GPUs[g].PrefetchIssued = cs.PrefetchIssued
		st.GPUs[g].PrefetchUsed = cs.PrefetchUsed
		st.GPUs[g].PrefetchWasted = cs.PrefetchWasted
		st.GPUs[g].CleanedPages = cs.CleanedPages
		st.GPUs[g].ReplayIssued = cs.ReplayIssued
		st.GPUs[g].ReplayUsed = cs.ReplayUsed
		st.GPUs[g].ReplayWasted = cs.ReplayWasted
		st.GPUs[g].HistoryReplays = cs.HistoryReplays
		st.GPUs[g].HistoryInvalidations = cs.HistoryInvalidations
		st.GPUs[g].ZeroCopyReads = s.sys.GPU(g).FS().ZeroCopyReads()
		st.GPUs[g].FrameSteals = s.sys.GPU(g).FS().FrameSteals()
	}
	st.Latencies = append([]simtime.Duration(nil), s.lat...)
	return st
}

// Completed sums completed jobs across GPUs.
func (st Stats) Completed() int64 {
	var n int64
	for _, g := range st.GPUs {
		n += g.Completed
	}
	return n
}

// Failed sums failed jobs across GPUs.
func (st Stats) Failed() int64 {
	var n int64
	for _, g := range st.GPUs {
		n += g.Failed
	}
	return n
}

// HandedOff sums jobs DrainForHandoff flushed across GPUs.
func (st Stats) HandedOff() int64 {
	var n int64
	for _, g := range st.GPUs {
		n += g.HandedOff
	}
	return n
}

// AffinityHitRate is the fraction of completed jobs that found their file
// resident in the executing GPU's buffer cache.
func (st Stats) AffinityHitRate() float64 {
	var hits, done int64
	for _, g := range st.GPUs {
		hits += g.AffinityHits
		done += g.Completed
	}
	if done == 0 {
		return 0
	}
	return float64(hits) / float64(done)
}

// PrefetchHitRate is the fraction of resolved speculative pages that a
// demand access consumed (used / (used + wasted)) across all GPUs, or 0
// with no resolved speculation.
func (st Stats) PrefetchHitRate() float64 {
	var used, wasted int64
	for _, g := range st.GPUs {
		used += g.PrefetchUsed
		wasted += g.PrefetchWasted
	}
	if used+wasted == 0 {
		return 0
	}
	return float64(used) / float64(used+wasted)
}

// BatchFactor is the mean jobs per kernel launch.
func (st Stats) BatchFactor() float64 {
	var jobs, batches int64
	for _, g := range st.GPUs {
		jobs += g.Launched
		batches += g.Batches
	}
	if batches == 0 {
		return 0
	}
	return float64(jobs) / float64(batches)
}

// LatencyPercentile returns the p-th percentile (0 < p ≤ 100) of finished
// jobs' virtual latencies, or 0 with no samples.
func (st Stats) LatencyPercentile(p float64) simtime.Duration {
	if len(st.Latencies) == 0 {
		return 0
	}
	sorted := append([]simtime.Duration(nil), st.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders a human-readable report: totals, latency percentiles,
// and per-GPU / per-tenant tables.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve: %d completed, %d failed in %.3fs virtual (%.1f jobs/launch, %.0f%% affinity hits)\n",
		st.Completed(), st.Failed(), st.Now.Seconds(), st.BatchFactor(), 100*st.AffinityHitRate())
	var pfIssued, pfUsed, pfWasted, cleaned int64
	for _, g := range st.GPUs {
		pfIssued += g.PrefetchIssued
		pfUsed += g.PrefetchUsed
		pfWasted += g.PrefetchWasted
		cleaned += g.CleanedPages
	}
	fmt.Fprintf(&b, "cache: %d pages prefetched, %.0f%% hit rate (%d wasted), %d cleaned in background\n",
		pfIssued, 100*st.PrefetchHitRate(), pfWasted, cleaned)
	var zc, steals int64
	for _, g := range st.GPUs {
		zc += g.ZeroCopyReads
		steals += g.FrameSteals
	}
	if zc > 0 || steals > 0 {
		fmt.Fprintf(&b, "hot path: %d zero-copy hit reads, %d cross-shard frame steals\n", zc, steals)
	}
	var rIssued, rUsed, rWasted, hReplays, hInval int64
	for _, g := range st.GPUs {
		rIssued += g.ReplayIssued
		rUsed += g.ReplayUsed
		rWasted += g.ReplayWasted
		hReplays += g.HistoryReplays
		hInval += g.HistoryInvalidations
	}
	if hReplays > 0 || hInval > 0 {
		fmt.Fprintf(&b, "history: %d profile replays (%d pages, %d used, %d wasted), %d invalidations\n",
			hReplays, rIssued, rUsed, rWasted, hInval)
	}
	if len(st.Latencies) > 0 {
		fmt.Fprintf(&b, "latency: p50 %v  p90 %v  p99 %v  max %v\n",
			st.LatencyPercentile(50), st.LatencyPercentile(90),
			st.LatencyPercentile(99), st.LatencyPercentile(100))
	}
	for g, gs := range st.GPUs {
		fmt.Fprintf(&b, "gpu %d: %d launches / %d jobs (max batch %d), %d stolen, %d spilled, %d requeued, %d restarts\n",
			g, gs.Batches, gs.Launched, gs.MaxBatch, gs.Stolen, gs.Spilled, gs.Requeued, gs.Restarts)
	}
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := st.Tenants[name]
		fmt.Fprintf(&b, "tenant %s: %d submitted, %d rejected, %d completed, %d failed, %d handed off (max queued %d)\n",
			name, ts.Submitted, ts.Rejected, ts.Completed, ts.Failed, ts.HandedOff, ts.MaxQueued)
	}
	return b.String()
}
