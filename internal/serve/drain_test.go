package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSubmitDrainRace pins the documented Submit/Drain contract: a Submit
// racing Drain either wins admission — and its Future is serviced before
// Drain returns — or loses with ErrDraining and no Future. A Future is
// NEVER abandoned. Run under -race this also certifies the drain path
// data-race-clean.
func TestSubmitDrainRace(t *testing.T) {
	const (
		rounds     = 25
		submitters = 8
	)
	for round := 0; round < rounds; round++ {
		sys, paths := testSystem(t, 2, 2)
		srv := New(sys, Config{QueueDepth: 64, MaxBatch: 8})

		type outcome struct {
			fut *Future
			err error
		}
		outcomes := make(chan outcome, submitters*8)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					fut, err := srv.Submit(fmt.Sprintf("t%d", s),
						Job{Kind: JobGrep, Path: paths[i%len(paths)], Word: "the"})
					outcomes <- outcome{fut, err}
					if err != nil {
						return // draining: every later submit loses too
					}
				}
			}(s)
		}
		close(start)
		runtime.Gosched()
		srv.Drain()
		wg.Wait()
		close(outcomes)

		admitted, rejected := 0, 0
		for o := range outcomes {
			switch {
			case o.err == nil:
				admitted++
				// Drain returned, so a won admission must already be
				// serviced: the Future resolves without further help.
				select {
				case res := <-o.fut.Done():
					if res.Err != nil {
						t.Fatalf("round %d: admitted job failed: %v", round, res.Err)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("round %d: admitted Future never resolved — lost Future", round)
				}
			case errors.Is(o.err, ErrDraining):
				rejected++
				if o.fut != nil {
					t.Fatalf("round %d: ErrDraining came with a non-nil Future", round)
				}
			default:
				t.Fatalf("round %d: unexpected submit error: %v", round, o.err)
			}
		}
		st := srv.Stats()
		if got := st.Completed() + st.Failed(); got != int64(admitted) {
			t.Fatalf("round %d: stats account for %d jobs, %d admitted", round, got, admitted)
		}
		_ = rejected // zero is legal: the race has no guaranteed loser
	}
}

// TestDrainForHandoffFlushesQueued checks the handoff contract: after
// DrainForHandoff returns, every admitted job's Future has resolved —
// either normally (it was in flight) or with ErrHandedOff (it was queued
// and never executed) — and the handed-off count matches exactly. The
// server's stats must classify handoffs separately from failures.
func TestDrainForHandoffFlushesQueued(t *testing.T) {
	sys, paths := testSystem(t, 2, 4)
	srv := New(sys, Config{QueueDepth: 256, MaxBatch: 4})

	var futs []*Future
	for i := 0; i < 96; i++ {
		fut, err := srv.Submit("tenant", Job{Kind: JobSearch, Path: paths[i%len(paths)], Word: "a"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	// Let the workers pick up some batches so both populations — completed
	// in flight and handed off from the queue — are represented.
	time.Sleep(2 * time.Millisecond)
	handed := srv.DrainForHandoff()

	var completed, handedOff int
	for i, fut := range futs {
		select {
		case res := <-fut.Done():
			switch {
			case res.Err == nil:
				completed++
			case errors.Is(res.Err, ErrHandedOff):
				handedOff++
				if res.Attempts != 0 {
					t.Fatalf("job %d handed off after %d attempts: handoff must mean never-executed", i, res.Attempts)
				}
			default:
				t.Fatalf("job %d: unexpected error %v", i, res.Err)
			}
		default:
			t.Fatalf("job %d: Future unresolved after DrainForHandoff returned", i)
		}
	}
	if handedOff != handed {
		t.Fatalf("DrainForHandoff reported %d, futures show %d", handed, handedOff)
	}
	if completed+handedOff != len(futs) {
		t.Fatalf("%d completed + %d handed off != %d admitted", completed, handedOff, len(futs))
	}
	st := srv.Stats()
	if st.HandedOff() != int64(handedOff) {
		t.Fatalf("stats report %d handed off, futures show %d", st.HandedOff(), handedOff)
	}
	if st.Failed() != 0 {
		t.Fatalf("handoffs leaked into failure stats: %d failed", st.Failed())
	}
	if _, err := srv.Submit("tenant", Job{Kind: JobGrep, Path: paths[0], Word: "x"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after DrainForHandoff: err=%v, want ErrDraining", err)
	}
	t.Logf("drain-for-handoff: %d completed in flight, %d handed off", completed, handedOff)
}

// TestHandoffResubmitByteIdentical is the determinism half of the drain
// story: a run disturbed by DrainForHandoff — with the handed-off tail
// re-submitted to a second server over the same corpus — must produce
// byte-identical payloads (counts and transform output) to an undisturbed
// run. The kernels are deterministic functions of the file contents, so
// re-routing must be invisible in the answers. Race-clean under -race.
func TestHandoffResubmitByteIdentical(t *testing.T) {
	mkJobs := func(paths []string) []Job {
		var jobs []Job
		for i := 0; i < 64; i++ {
			switch i % 3 {
			case 0:
				jobs = append(jobs, Job{Kind: JobGrep, Path: paths[i%len(paths)], Word: "the"})
			case 1:
				jobs = append(jobs, Job{Kind: JobSearch, Path: paths[i%len(paths)], Word: "an"})
			default:
				jobs = append(jobs, Job{Kind: JobTransform, Path: paths[i%len(paths)], MaxOutput: 512})
			}
		}
		return jobs
	}
	payload := func(res Result) string {
		return fmt.Sprintf("%d|%x", res.Count, res.Output)
	}

	// Reference: one server, no disturbance.
	refSys, refPaths := testSystem(t, 2, 4)
	refSrv := New(refSys, Config{QueueDepth: 256, MaxBatch: 4})
	jobs := mkJobs(refPaths)
	want := make([]string, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		fut, err := refSrv.Submit("tenant", j)
		if err != nil {
			t.Fatalf("reference submit %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, fut *Future) {
			defer wg.Done()
			res := fut.Wait()
			if res.Err != nil {
				t.Errorf("reference job %d failed: %v", i, res.Err)
			}
			want[i] = payload(res)
		}(i, fut)
	}
	wg.Wait()
	refSrv.Drain()

	// Disturbed: same corpus on two fresh servers; drain the first
	// mid-stream and re-submit its handed-off tail to the second.
	sysA, pathsA := testSystem(t, 2, 4)
	srvA := New(sysA, Config{QueueDepth: 256, MaxBatch: 4})
	jobsA := mkJobs(pathsA)
	futsA := make([]*Future, len(jobsA))
	for i, j := range jobsA {
		fut, err := srvA.Submit("tenant", j)
		if err != nil {
			t.Fatalf("disturbed submit %d: %v", i, err)
		}
		futsA[i] = fut
	}
	srvA.DrainForHandoff()

	sysB, pathsB := testSystem(t, 2, 4)
	srvB := New(sysB, Config{QueueDepth: 256, MaxBatch: 4})
	if len(pathsB) != len(pathsA) {
		t.Fatal("corpus mismatch between servers")
	}
	got := make([]string, len(jobsA))
	var handed int
	for i, fut := range futsA {
		res := <-fut.Done()
		switch {
		case res.Err == nil:
			got[i] = payload(res)
		case errors.Is(res.Err, ErrHandedOff):
			handed++
			fut2, err := srvB.Submit("tenant", jobsA[i])
			if err != nil {
				t.Fatalf("resubmit %d: %v", i, err)
			}
			wg.Add(1)
			go func(i int, fut *Future) {
				defer wg.Done()
				res := fut.Wait()
				if res.Err != nil {
					t.Errorf("resubmitted job %d failed: %v", i, res.Err)
				}
				got[i] = payload(res)
			}(i, fut2)
		default:
			t.Fatalf("disturbed job %d: unexpected error %v", i, res.Err)
		}
	}
	wg.Wait()
	srvB.Drain()

	if handed == 0 {
		t.Log("note: no jobs were queued at drain time; disturbance was a no-op this run")
	}
	for i := range jobs {
		if got[i] != want[i] {
			t.Fatalf("job %d (%s %s %q): disturbed payload %q != undisturbed %q",
				i, jobs[i].Kind, jobs[i].Path, jobs[i].Word, got[i], want[i])
		}
	}
	t.Logf("byte-identical across handoff: %d jobs, %d re-routed", len(jobs), handed)
}
