package serve

import (
	"strconv"

	"gpufs/internal/metrics"
)

// serveMetrics holds the server's pre-resolved instrument handles; nil when
// the underlying gpufs.System carries no registry. The handles are plain
// atomics, so they are safe to touch inside or outside s.mu — but the
// server never registers func collectors over mutex-protected state, so the
// registry can never call back into serve and lock order stays one-way
// (s.mu → registry.mu on tenant creation, nothing in the other direction).
type serveMetrics struct {
	reg *metrics.Registry

	// Per-GPU handles, indexed by device id.
	queueDepth   []*metrics.Gauge
	batchJobs    []*metrics.Histogram
	jobLatency   []*metrics.Histogram
	deadlineMiss []*metrics.Counter
	restarts     []*metrics.Counter
}

// newServeMetrics registers the serving layer's families and resolves the
// per-GPU handles. Per-tenant counters are resolved lazily when a tenant
// first appears (see enqueueLocked).
func newServeMetrics(reg *metrics.Registry, numGPUs int) *serveMetrics {
	reg.SetHelp("gpufs_serve_admitted_total", "Jobs admitted past admission control, per tenant")
	reg.SetHelp("gpufs_serve_rejected_total", "Jobs rejected with OverloadError, per tenant")
	reg.SetHelp("gpufs_serve_queue_depth", "Jobs pending in a GPU's queue")
	reg.SetHelp("gpufs_serve_batch_jobs", "Jobs coalesced into one kernel launch")
	reg.SetHelp("gpufs_serve_job_latency_seconds", "Virtual admission-to-completion job latency")
	reg.SetHelp("gpufs_serve_deadline_miss_total", "Jobs failed because their virtual deadline passed")
	reg.SetHelp("gpufs_serve_restarts_total", "Fault-driven GPU restarts during serving")

	m := &serveMetrics{
		reg:          reg,
		queueDepth:   make([]*metrics.Gauge, numGPUs),
		batchJobs:    make([]*metrics.Histogram, numGPUs),
		jobLatency:   make([]*metrics.Histogram, numGPUs),
		deadlineMiss: make([]*metrics.Counter, numGPUs),
		restarts:     make([]*metrics.Counter, numGPUs),
	}
	for g := 0; g < numGPUs; g++ {
		gpuL := strconv.Itoa(g)
		m.queueDepth[g] = reg.Gauge("gpufs_serve_queue_depth", "gpu", gpuL)
		m.batchJobs[g] = reg.Histogram("gpufs_serve_batch_jobs", "gpu", gpuL)
		m.jobLatency[g] = reg.DurationHistogram("gpufs_serve_job_latency_seconds", "gpu", gpuL)
		m.deadlineMiss[g] = reg.Counter("gpufs_serve_deadline_miss_total", "gpu", gpuL)
		m.restarts[g] = reg.Counter("gpufs_serve_restarts_total", "gpu", gpuL)
	}
	return m
}

// tenantCounters resolves (or re-resolves) a tenant's admission counters;
// both return values are nil when metrics are off.
func (m *serveMetrics) tenantCounters(tenantName string) (admitted, rejected *metrics.Counter) {
	if m == nil {
		return nil, nil
	}
	return m.reg.Counter("gpufs_serve_admitted_total", "tenant", tenantName),
		m.reg.Counter("gpufs_serve_rejected_total", "tenant", tenantName)
}

// noteQueueDepth publishes GPU g's instantaneous queue depth.
func (m *serveMetrics) noteQueueDepth(g, depth int) {
	if m == nil {
		return
	}
	m.queueDepth[g].Set(int64(depth))
}
