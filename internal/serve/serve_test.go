package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gpufs"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
	"gpufs/internal/workloads"
)

const testScale = 1.0 / 256

// testSystem builds a small machine with the given GPU count and a seeded
// word corpus, returning the system and the corpus paths.
func testSystem(t *testing.T, numGPUs, numFiles int) (*gpufs.System, []string) {
	t.Helper()
	cfg := gpufs.ScaledConfig(testScale)
	cfg.NumGPUs = numGPUs
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	dict := workloads.MakeDictionary(200)
	paths := make([]string, numFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/corpus/f%02d.txt", i)
		text := workloads.MakeText(8<<10, workloads.TextSpec{
			Dict: dict, DictFraction: 0.7, Seed: int64(1000 + i),
		})
		if err := sys.WriteHostFile(paths[i], text); err != nil {
			t.Fatalf("WriteHostFile: %v", err)
		}
	}
	return sys, paths
}

// oracle computes the expected result of a job directly on the host file.
func oracle(t *testing.T, sys *gpufs.System, spec Job, maxOut int64) Result {
	t.Helper()
	data, err := sys.ReadHostFile(spec.Path)
	if err != nil {
		t.Fatalf("oracle read %s: %v", spec.Path, err)
	}
	var want Result
	switch spec.Kind {
	case JobGrep:
		want.Count = int64(workloads.CountWord(data, spec.Word))
	case JobSearch:
		want.Count = int64(bytes.Count(data, []byte(spec.Word)))
	case JobTransform:
		limit := spec.MaxOutput
		if limit <= 0 || limit > maxOut {
			limit = maxOut
		}
		if limit > int64(len(data)) {
			limit = int64(len(data))
		}
		want.Output = bytes.ToUpper(data[:limit])
	}
	return want
}

func checkResult(t *testing.T, got Result, want Result) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("job %d (%s %s %q): unexpected error: %v",
			got.ID, got.Job.Kind, got.Job.Path, got.Job.Word, got.Err)
	}
	if got.Count != want.Count {
		t.Fatalf("job %d (%s %s %q): count %d, want %d",
			got.ID, got.Job.Kind, got.Job.Path, got.Job.Word, got.Count, want.Count)
	}
	if !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("job %d: output mismatch (%d bytes, want %d)",
			got.ID, len(got.Output), len(want.Output))
	}
}

func TestServeCorrectnessAllKinds(t *testing.T) {
	sys, paths := testSystem(t, 2, 4)
	srv := New(sys, Config{})
	defer srv.Drain()

	specs := []Job{
		{Kind: JobGrep, Path: paths[0], Word: workloads.MakeWord(3)},
		{Kind: JobGrep, Path: paths[1], Word: workloads.MakeWord(7)},
		{Kind: JobSearch, Path: paths[2], Word: "aa"},
		{Kind: JobSearch, Path: paths[0], Word: "the"},
		{Kind: JobTransform, Path: paths[3]},
		{Kind: JobTransform, Path: paths[1], MaxOutput: 100},
	}
	futs := make([]*Future, len(specs))
	for i, spec := range specs {
		fut, err := srv.Submit(fmt.Sprintf("tenant-%d", i%3), spec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		futs[i] = fut
	}
	seen := make(map[uint64]bool)
	for i, fut := range futs {
		res := fut.Wait()
		checkResult(t, res, oracle(t, sys, specs[i], srv.Config().MaxOutputBytes))
		if seen[res.ID] {
			t.Fatalf("duplicate job id %d", res.ID)
		}
		seen[res.ID] = true
		if res.Done < res.Started || res.Started < res.Enqueued {
			t.Fatalf("job %d: time stamps out of order: %v %v %v",
				res.ID, res.Enqueued, res.Started, res.Done)
		}
		if res.Latency() <= 0 {
			t.Fatalf("job %d: non-positive latency %v", res.ID, res.Latency())
		}
	}
}

func TestServeBadJobRejected(t *testing.T) {
	sys, paths := testSystem(t, 1, 1)
	srv := New(sys, Config{})
	defer srv.Drain()

	cases := []Job{
		{Kind: JobGrep, Path: "", Word: "x"},
		{Kind: JobGrep, Path: paths[0]},
		{Kind: JobSearch, Path: paths[0]},
		{Kind: JobKind(42), Path: paths[0]},
	}
	for _, spec := range cases {
		if _, err := srv.Submit("t", spec); !errors.Is(err, ErrBadJob) {
			t.Fatalf("Submit(%+v) error = %v, want ErrBadJob", spec, err)
		}
	}
}

func TestServeAdmissionControl(t *testing.T) {
	sys, paths := testSystem(t, 1, 1)
	srv := New(sys, Config{QueueDepth: 4})
	defer srv.Drain()

	// Fill the tenant's admission window by hand so the rejection is
	// deterministic regardless of worker scheduling.
	srv.mu.Lock()
	srv.tenants["full"] = &tenant{open: srv.cfg.QueueDepth}
	srv.mu.Unlock()

	_, err := srv.Submit("full", Job{Kind: JobSearch, Path: paths[0], Word: "a"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit on full tenant = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an *OverloadError", err)
	}
	if oe.Tenant != "full" || oe.RetryAfter <= 0 {
		t.Fatalf("overload hint: %+v", oe)
	}

	// A different tenant is unaffected — admission is per tenant.
	fut, err := srv.Submit("other", Job{Kind: JobSearch, Path: paths[0], Word: "a"})
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if res := fut.Wait(); res.Err != nil {
		t.Fatalf("other tenant job failed: %v", res.Err)
	}

	st := srv.Stats()
	if st.Tenants["full"].Rejected != 1 {
		t.Fatalf("rejected count = %d, want 1", st.Tenants["full"].Rejected)
	}

	// Release the artificial slots so Drain's bookkeeping stays sane.
	srv.mu.Lock()
	srv.tenants["full"].open = 0
	srv.mu.Unlock()
}

func TestServeQueueFairness(t *testing.T) {
	q := newGPUQueue()
	for i := 0; i < 6; i++ {
		q.push(&job{id: uint64(i), tenant: "a"})
	}
	q.push(&job{id: 100, tenant: "b"})
	q.push(&job{id: 200, tenant: "c"})

	got := q.pop(4)
	if len(got) != 4 || q.size != 4 {
		t.Fatalf("pop(4) returned %d jobs, size now %d", len(got), q.size)
	}
	// Round-robin must interleave all three tenants in the first round.
	tenants := map[string]bool{}
	for _, j := range got[:3] {
		tenants[j.tenant] = true
	}
	if len(tenants) != 3 {
		t.Fatalf("first three pops cover %d tenants, want 3: %v", len(tenants), got)
	}
	rest := q.pop(10)
	if len(rest) != 4 || q.size != 0 {
		t.Fatalf("drain returned %d jobs, size %d", len(rest), q.size)
	}
}

func TestServePathHomeStable(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		for _, p := range []string{"/a", "/b", "/corpus/f00.txt"} {
			h := pathHome(p, n)
			if h < 0 || h >= n {
				t.Fatalf("pathHome(%q, %d) = %d out of range", p, n, h)
			}
			if h != pathHome(p, n) {
				t.Fatalf("pathHome(%q, %d) unstable", p, n)
			}
		}
	}
}

func TestServeAffinityRouting(t *testing.T) {
	sys, paths := testSystem(t, 2, 2)
	srv := New(sys, Config{Policy: PlaceAffinity})
	defer srv.Drain()

	// The first job over a cold file lands on its hash home and warms
	// that GPU's cache; every later job must follow it there.
	spec := Job{Kind: JobSearch, Path: paths[0], Word: "a"}
	first := mustSubmit(t, srv, "t", spec).Wait()
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if want := pathHome(paths[0], 2); first.GPU != want {
		t.Fatalf("cold job ran on gpu %d, want hash home %d", first.GPU, want)
	}
	for i := 0; i < 8; i++ {
		res := mustSubmit(t, srv, "t", spec).Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.GPU != first.GPU {
			t.Fatalf("warm job %d ran on gpu %d, want affine gpu %d", i, res.GPU, first.GPU)
		}
		if !res.AffinityHit {
			t.Fatalf("warm job %d missed the cache", i)
		}
	}
	if hits := srv.Stats().AffinityHitRate(); hits < 0.8 {
		t.Fatalf("affinity hit rate = %.2f, want ≥0.8", hits)
	}
}

func TestServeRoundRobinRouting(t *testing.T) {
	sys, paths := testSystem(t, 2, 1)
	srv := New(sys, Config{Policy: PlaceRoundRobin})
	defer srv.Drain()

	// Routing (not execution) is what the policy controls; check it
	// directly so work-stealing cannot blur the assertion.
	srv.mu.Lock()
	for i := 0; i < 6; i++ {
		if g := srv.routeLocked(&job{spec: Job{Kind: JobSearch, Path: paths[0], Word: "a"}}); g != i%2 {
			srv.mu.Unlock()
			t.Fatalf("round-robin route %d = gpu %d, want %d", i, g, i%2)
		}
	}
	srv.mu.Unlock()

	// End to end, both GPUs share the load.
	var futs []*Future
	for i := 0; i < 12; i++ {
		futs = append(futs, mustSubmit(t, srv, "t", Job{Kind: JobSearch, Path: paths[0], Word: "a"}))
	}
	for _, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := srv.Stats()
	if st.GPUs[0].Routed == 0 || st.GPUs[1].Routed == 0 {
		t.Fatalf("round-robin left a gpu unrouted: %+v", st.GPUs)
	}
}

func TestServeSaturationSpill(t *testing.T) {
	sys, paths := testSystem(t, 2, 1)
	srv := New(sys, Config{Policy: PlaceAffinity, StealThreshold: 2, QueueDepth: 64})
	defer srv.Drain()

	home := pathHome(paths[0], 2)
	other := 1 - home

	// With the affine queue artificially saturated, routing must spill
	// to the less-loaded GPU.
	srv.mu.Lock()
	srv.inflight[home] = srv.cfg.StealThreshold
	j := &job{spec: Job{Kind: JobSearch, Path: paths[0], Word: "a"}}
	got := srv.routeLocked(j)
	spilled := srv.gstats[home].Spilled
	srv.inflight[home] = 0
	srv.mu.Unlock()

	if got != other {
		t.Fatalf("saturated routing sent job to gpu %d, want spill to %d", got, other)
	}
	if spilled != 1 {
		t.Fatalf("spill counter = %d, want 1", spilled)
	}
}

func TestServeBatching(t *testing.T) {
	sys, paths := testSystem(t, 1, 2)
	srv := New(sys, Config{MaxBatch: 8})

	// Enqueue 16 jobs atomically so the single worker's first round sees
	// a full queue and must coalesce MaxBatch of them into one launch.
	var futs []*Future
	srv.mu.Lock()
	for i := 0; i < 16; i++ {
		fut, _, err := srv.enqueueLocked("t", Job{Kind: JobSearch, Path: paths[i%2], Word: "a"})
		if err != nil {
			srv.mu.Unlock()
			t.Fatalf("enqueue: %v", err)
		}
		futs = append(futs, fut)
	}
	srv.mu.Unlock()

	for _, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	srv.Drain()

	st := srv.Stats()
	if st.GPUs[0].MaxBatch < 2 {
		t.Fatalf("max batch = %d, want ≥2 (no coalescing happened)", st.GPUs[0].MaxBatch)
	}
	if st.GPUs[0].Batches >= st.GPUs[0].Launched {
		t.Fatalf("batches %d ≥ jobs %d: dispatch was one-launch-per-request",
			st.GPUs[0].Batches, st.GPUs[0].Launched)
	}
}

func TestServeDeadlineExceeded(t *testing.T) {
	sys, paths := testSystem(t, 1, 1)
	srv := New(sys, Config{})
	defer srv.Drain()

	// One virtual nanosecond is less than any kernel launch takes.
	fut := mustSubmit(t, srv, "t", Job{
		Kind: JobSearch, Path: paths[0], Word: "a", Deadline: 1,
	})
	res := fut.Wait()
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("result error = %v, want ErrDeadlineExceeded", res.Err)
	}
}

func TestServeDrain(t *testing.T) {
	sys, paths := testSystem(t, 2, 2)
	srv := New(sys, Config{})

	var futs []*Future
	for i := 0; i < 24; i++ {
		futs = append(futs, mustSubmit(t, srv, fmt.Sprintf("t%d", i%4),
			Job{Kind: JobSearch, Path: paths[i%2], Word: "a"}))
	}
	srv.Drain()

	// Every job completed before Drain returned.
	for i, fut := range futs {
		select {
		case res := <-fut.Done():
			if res.Err != nil {
				t.Fatalf("job %d failed: %v", i, res.Err)
			}
		default:
			t.Fatalf("job %d not complete after Drain", i)
		}
	}
	if _, err := srv.Submit("t0", Job{Kind: JobSearch, Path: paths[0], Word: "a"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
	st := srv.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("after drain: queued %d inflight %d", st.Queued, st.Inflight)
	}
	if st.Completed() != 24 {
		t.Fatalf("completed = %d, want 24", st.Completed())
	}
}

func TestServeRecoversFromDeviceFault(t *testing.T) {
	sys, paths := testSystem(t, 1, 1)

	// Latch a fault on the device before the server's first launch, the
	// way a crashed kernel would (§3.3).
	if _, err := sys.GPU(0).Launch(0, 1, 1, func(c *gpufs.BlockCtx) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("fault-latching launch did not fail")
	}

	srv := New(sys, Config{})
	defer srv.Drain()

	res := mustSubmit(t, srv, "t", Job{Kind: JobSearch, Path: paths[0], Word: "a"}).Wait()
	if res.Err != nil {
		t.Fatalf("job did not recover from device fault: %v", res.Err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥2 (first launch hit the latched fault)", res.Attempts)
	}
	if restarts := srv.Stats().GPUs[0].Restarts; restarts < 1 {
		t.Fatalf("restarts = %d, want ≥1", restarts)
	}
	checkResult(t, res, oracle(t, sys, res.Job, srv.Config().MaxOutputBytes))
}

func TestServeStatsString(t *testing.T) {
	sys, paths := testSystem(t, 2, 1)
	srv := New(sys, Config{})
	for i := 0; i < 4; i++ {
		mustSubmit(t, srv, "alice", Job{Kind: JobSearch, Path: paths[0], Word: "a"})
	}
	srv.Drain()

	out := srv.Stats().String()
	for _, want := range []string{"completed", "latency", "cache:", "gpu 0", "gpu 1", "tenant alice"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats report missing %q:\n%s", want, out)
		}
	}
	st := srv.Stats()
	if p50, p99 := st.LatencyPercentile(50), st.LatencyPercentile(99); p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles: p50=%v p99=%v", p50, p99)
	}
}

func TestServeEnqueueTraceOps(t *testing.T) {
	sys, paths := testSystem(t, 1, 1)
	tr := sys.EnableTracing(1 << 12)
	srv := New(sys, Config{})
	res := mustSubmit(t, srv, "t", Job{Kind: JobSearch, Path: paths[0], Word: "a"}).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	srv.Drain()

	var haveEnq, haveBatch, haveDispatch bool
	for _, e := range tr.Snapshot() {
		switch e.Op {
		case trace.OpEnqueue:
			haveEnq = true
		case trace.OpBatch:
			haveBatch = true
		case trace.OpDispatch:
			haveDispatch = true
			if e.End <= e.Start {
				t.Fatalf("dispatch span empty: %+v", e)
			}
		}
	}
	if !haveEnq || !haveBatch || !haveDispatch {
		t.Fatalf("missing serve trace ops: enqueue=%v batch=%v dispatch=%v",
			haveEnq, haveBatch, haveDispatch)
	}
}

func mustSubmit(t *testing.T, srv *Server, tenant string, spec Job) *Future {
	t.Helper()
	fut, err := srv.Submit(tenant, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return fut
}

func TestServeVirtualDurationEstimate(t *testing.T) {
	// Sanity on the retry-after estimator: more backlog, longer hint.
	sys, _ := testSystem(t, 2, 1)
	srv := New(sys, Config{})
	defer srv.Drain()

	srv.mu.Lock()
	idle := srv.retryAfterLocked()
	srv.inflight[0] = 10 * srv.cfg.MaxBatch
	loaded := srv.retryAfterLocked()
	srv.inflight[0] = 0
	srv.mu.Unlock()

	if idle <= 0 || loaded < idle {
		t.Fatalf("retry-after estimates: idle=%v loaded=%v", idle, loaded)
	}
	if idle < 100*simtime.Microsecond {
		t.Fatalf("idle estimate below floor: %v", idle)
	}
}

func TestServeShardLanesFanOut(t *testing.T) {
	// On a sharded-transport system, one batch's blocks must hash across
	// multiple RPC ring shards, and the stats must record the spread.
	cfg := gpufs.ScaledConfig(testScale)
	cfg.NumGPUs = 1
	cfg.RPCShards = 4
	cfg.DaemonWorkers = 4
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	dict := workloads.MakeDictionary(100)
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("/lanes/f%02d.txt", i)
		text := workloads.MakeText(4<<10, workloads.TextSpec{
			Dict: dict, DictFraction: 0.7, Seed: int64(2000 + i),
		})
		if err := sys.WriteHostFile(paths[i], text); err != nil {
			t.Fatalf("WriteHostFile: %v", err)
		}
	}

	srv := New(sys, Config{MaxBatch: 8})
	futs := make([]*Future, len(paths))
	for i, p := range paths {
		fut, err := srv.Submit("tenant", Job{Kind: JobSearch, Path: p, Word: "aa"})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		futs[i] = fut
	}
	for _, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatalf("job %d: %v", res.ID, res.Err)
		}
	}
	srv.Drain()

	st := srv.Stats()
	if lanes := st.GPUs[0].ShardLanes; lanes < 2 {
		t.Fatalf("ShardLanes = %d on a 4-shard transport, want >= 2", lanes)
	}
	if lanes := st.GPUs[0].ShardLanes; lanes > 4 {
		t.Fatalf("ShardLanes = %d exceeds the shard count 4", lanes)
	}
}
