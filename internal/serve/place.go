package serve

import "hash/fnv"

// routeLocked picks the GPU queue for a freshly admitted job.
//
// Under PlaceAffinity the job goes to the GPU whose buffer cache holds
// the most pages of its file; a file no GPU holds goes to its stable
// hash home, so repeated jobs over the same cold file all warm the SAME
// device and affinity emerges. When the chosen queue is saturated
// (≥ StealThreshold) the job spills to the least-loaded GPU instead —
// cache locality is a preference, not a bottleneck.
//
// Under PlaceRoundRobin jobs rotate across GPUs in admission order.
func (s *Server) routeLocked(j *job) int {
	n := len(s.queues)
	if n == 1 {
		return 0
	}
	if s.cfg.Policy == PlaceRoundRobin {
		g := s.rr % n
		s.rr++
		return g
	}

	best, bestPages := -1, int64(0)
	for g := 0; g < n; g++ {
		if p := s.sys.GPU(g).ResidentPages(j.spec.Path); p > bestPages {
			best, bestPages = g, p
		}
	}
	if best < 0 {
		best = pathHome(j.spec.Path, n)
	}
	if s.queues[best].size+s.inflight[best] >= s.cfg.StealThreshold {
		spill := best
		load := s.queues[best].size + s.inflight[best]
		for g := 0; g < n; g++ {
			if l := s.queues[g].size + s.inflight[g]; l < load {
				spill, load = g, l
			}
		}
		if spill != best {
			s.gstats[best].Spilled++
			best = spill
		}
	}
	return best
}

// pathHome is the stable cold-file partition: a path always hashes to the
// same GPU, independent of submission order or server state.
func pathHome(path string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(path))
	return int(h.Sum32() % uint32(n))
}
