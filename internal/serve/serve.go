// Package serve is a multi-tenant GPU file-service frontend over
// gpufs.System: the layer that turns many concurrent client requests into
// few, well-batched kernel launches — the shape of an inference-serving
// stack, applied to the paper's self-contained GPU file applications (§5).
//
// The pipeline is queues → batcher → placement → launch:
//
//   - Admission. Submit(tenant, job) admits a job only while the tenant
//     has fewer than QueueDepth jobs in the system; beyond that it rejects
//     with an OverloadError carrying a virtual-time retry-after hint.
//     Memory is bounded by tenants × QueueDepth, never by offered load.
//   - Placement. Each admitted job is routed to a GPU: by cache affinity
//     (the GPU whose buffer cache already holds pages of the job's file;
//     cold files hash to a stable home so a partition emerges), falling
//     back to the least-loaded GPU when the affine queue is saturated —
//     or by round-robin, the baseline policy the bench table compares.
//   - Continuous batching. One worker per GPU drains its queue: whenever
//     the GPU falls idle the worker coalesces up to MaxBatch queued jobs
//     (round-robin across tenants for fairness) into ONE kernel launch
//     whose threadblocks stride over the jobs — not one launch per
//     request. An idle worker with an empty queue steals work from the
//     longest queue.
//   - Completion. Every job completes or fails exactly once through its
//     Future. Failed attempts retry within the job's MaxAttempts budget
//     and virtual-time deadline (fault-injected EIO/EAGAIN survivors fail
//     with explicit errors; nothing hangs). A device fault restarts the
//     GPU (losing its caches, §3.3) and re-runs the interrupted batch.
//
// All timing is virtual (internal/simtime): each GPU worker carries a
// virtual cursor that advances with its launches, and job latency is
// measured from admission stamp to batch completion.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gpufs"
	"gpufs/internal/ckpt"
	"gpufs/internal/metrics"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
	"gpufs/internal/workloads"
)

// JobKind selects the file-processing kernel a job runs.
type JobKind uint8

// Job kinds, all read-only over one host file (reusing the
// internal/workloads matchers so results check against the same oracle).
const (
	// JobGrep counts whole-word occurrences of Word ([a-z] tokens), the
	// matching rule of the paper's grep application (§5.2.2).
	JobGrep JobKind = iota
	// JobSearch counts raw substring occurrences of Word.
	JobSearch
	// JobTransform returns the uppercased prefix of the file (bounded by
	// MaxOutput / Config.MaxOutputBytes).
	JobTransform
)

// String names the job kind.
func (k JobKind) String() string {
	switch k {
	case JobGrep:
		return "grep"
	case JobSearch:
		return "search"
	case JobTransform:
		return "transform"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// Job is one client request: a file-processing operation over a host file.
type Job struct {
	// Kind selects the kernel.
	Kind JobKind
	// Path is the host file the job processes.
	Path string
	// Word is the needle for JobGrep and JobSearch.
	Word string
	// MaxOutput caps JobTransform's returned bytes; 0 uses the server's
	// MaxOutputBytes.
	MaxOutput int64
	// Deadline is the job's virtual-time budget measured from admission;
	// 0 uses the server's DefaultDeadline (0 = no deadline). A job whose
	// deadline passes before or during execution fails with
	// ErrDeadlineExceeded (wrapping the last attempt's error, if any).
	Deadline simtime.Duration
}

// Result is a completed (or failed) job's outcome.
type Result struct {
	// Tenant and Job echo the submission; ID is the server-wide job id.
	Tenant string
	Job    Job
	ID     uint64
	// Count is the match count for JobGrep/JobSearch.
	Count int64
	// Output is JobTransform's (bounded) output.
	Output []byte
	// Err is the job's explicit failure, nil on success.
	Err error
	// GPU is the device the final attempt ran on; Batch is that launch's
	// sequence number; Attempts counts kernel executions of this job.
	GPU      int
	Batch    int64
	Attempts int
	// Enqueued, Started, Done are the job's virtual-time admission,
	// final-attempt launch, and completion stamps.
	Enqueued, Started, Done simtime.Time
	// AffinityHit reports whether the executing GPU's buffer cache held
	// pages of the job's file when the batch was assembled.
	AffinityHit bool
}

// Latency is the job's virtual admission-to-completion time.
func (r Result) Latency() simtime.Duration { return r.Done.Sub(r.Enqueued) }

// Future is the pending result of a submitted job.
type Future struct{ ch chan Result }

// Done returns a channel that receives the result exactly once.
func (f *Future) Done() <-chan Result { return f.ch }

// Wait blocks for the result.
func (f *Future) Wait() Result { return <-f.ch }

// NewFuture returns an unresolved Future plus the function that completes
// it. Alternative Backend implementations (fakes, remote proxies) use it to
// mint futures with the same exactly-once delivery contract the Server
// provides; the resolve function must be called exactly once.
func NewFuture() (*Future, func(Result)) {
	f := &Future{ch: make(chan Result, 1)}
	return f, func(r Result) { f.ch <- r }
}

// Backend is the seam between one serving host and a cluster control plane
// (internal/fleet): everything the fleet needs to route, observe, and
// remediate a host, with the host's implementation hidden behind it. The
// *Server over a simulated gpufs.System is the implementation of record
// ("real" hardware would slot in the same way); internal/fleet carries a
// FakeBackend for control-plane tests that need scripted completions.
type Backend interface {
	// Submit admits one job for tenant (see Server.Submit).
	Submit(tenant string, job Job) (*Future, error)
	// Drain stops admission and waits for every admitted job to complete.
	Drain()
	// DrainForHandoff stops admission, completes every job that has not
	// yet launched with ErrHandedOff (so the caller can requeue it
	// elsewhere), waits for in-flight work, and shuts the host down. It
	// returns the number of jobs handed off.
	DrainForHandoff() int
	// Checkpoint captures the host into a migratable image: it freezes the
	// queues (handing queued jobs back exactly as DrainForHandoff does),
	// snapshots every GPU's buffer-cache and file-table state copy-on-write
	// while in-flight batches finish, and shuts the host down. On error the
	// host is still fully drained — the caller falls back to replacing it
	// cold. Counts as the host's one drain call.
	Checkpoint() (*ckpt.Image, error)
	// Restore materializes a checkpoint image onto this host. It must be
	// called on a freshly built host before it takes traffic.
	Restore(img *ckpt.Image) error
	// Load reports the host's instantaneous backlog: queued plus
	// in-flight jobs.
	Load() int
	// ResidentPages reports the most buffer-cache pages of path any of
	// the host's GPUs holds — the fleet's cache-affinity signal.
	ResidentPages(path string) int64
	// Now is the host's virtual time (latest observed batch completion).
	Now() simtime.Time
	// NumGPUs reports the host's device count (capacity accounting).
	NumGPUs() int
	// Stats snapshots the host's serving counters.
	Stats() Stats
}

// Policy selects the placement layer's routing.
type Policy uint8

// Placement policies.
const (
	// PlaceAffinity routes jobs to the GPU whose buffer cache holds their
	// file (stable-hash home for cold files), with least-loaded spill
	// when the affine queue is saturated and idle-worker stealing.
	PlaceAffinity Policy = iota
	// PlaceRoundRobin distributes jobs across GPUs in submission order,
	// ignoring cache residency (the baseline the bench table compares).
	PlaceRoundRobin
)

// String names the policy.
func (p Policy) String() string {
	if p == PlaceRoundRobin {
		return "round-robin"
	}
	return "affinity"
}

// Config tunes the server. The zero value gets sensible defaults from New.
type Config struct {
	// QueueDepth bounds each tenant's jobs in the system (queued plus
	// in-flight); Submit rejects beyond it. Default 32.
	QueueDepth int
	// MaxBatch is the most jobs one scheduling round coalesces into a
	// single kernel launch. 1 degenerates to one-launch-per-request (the
	// bench baseline). Default 16.
	MaxBatch int
	// ThreadsPerBlock is the launch geometry's block width. Default 256.
	ThreadsPerBlock int
	// MaxBlocks caps a batched launch's grid; jobs beyond it stride.
	// Default 64.
	MaxBlocks int
	// Policy is the placement policy. Default PlaceAffinity.
	Policy Policy
	// StealThreshold is the queue length at which the affine GPU counts
	// as saturated and new jobs spill to the least-loaded GPU. Default
	// 4×MaxBatch.
	StealThreshold int
	// MaxAttempts is the per-job execution budget under failures.
	// Default 3.
	MaxAttempts int
	// DefaultDeadline applies to jobs that set none; 0 means no deadline.
	DefaultDeadline simtime.Duration
	// ScanRate is the virtual per-GPU processing rate (bytes/s) charged
	// for a job's scan over its file. Default 8.7 GB/s (the paper's grep
	// rate).
	ScanRate float64
	// MaxOutputBytes bounds JobTransform outputs. Default 64 KiB.
	MaxOutputBytes int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueDepth <= 0 {
		out.QueueDepth = 32
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 16
	}
	if out.ThreadsPerBlock <= 0 {
		out.ThreadsPerBlock = 256
	}
	if out.MaxBlocks <= 0 {
		out.MaxBlocks = 64
	}
	if out.StealThreshold <= 0 {
		out.StealThreshold = 4 * out.MaxBatch
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.ScanRate <= 0 {
		out.ScanRate = 8.7e9
	}
	if out.MaxOutputBytes <= 0 {
		out.MaxOutputBytes = 64 << 10
	}
	return out
}

// Sentinel errors.
var (
	// ErrDraining rejects submissions after Drain began.
	ErrDraining = errors.New("serve: server is draining")
	// ErrHandedOff completes a job that DrainForHandoff flushed before it
	// ever launched: the job was NOT executed here and is safe to resubmit
	// verbatim on another server. A control plane treats this result as a
	// re-routing signal, never as a client-visible failure.
	ErrHandedOff = errors.New("serve: job handed off during drain")
	// ErrOverloaded is wrapped by OverloadError on admission rejection.
	ErrOverloaded = errors.New("serve: tenant queue full")
	// ErrDeadlineExceeded fails a job whose virtual deadline passed.
	ErrDeadlineExceeded = errors.New("serve: virtual deadline exceeded")
	// ErrBadJob rejects a malformed job at submission.
	ErrBadJob = errors.New("serve: invalid job")
)

// OverloadError is the admission-control rejection: the tenant's queue is
// full. RetryAfter is the server's virtual-time estimate of when capacity
// frees; a well-behaved client backs off that long before resubmitting.
type OverloadError struct {
	Tenant     string
	RetryAfter simtime.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %q queue full, retry after %v", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// job is the server-internal state of one submitted request.
type job struct {
	id       uint64
	tenant   string
	spec     Job
	fut      *Future
	arrival  simtime.Time
	deadline simtime.Time // zero = none
	attempts int
	lastErr  error

	// Per-attempt execution scratch, written by exactly one threadblock
	// during a launch and read by the worker after Launch returns.
	err    error
	count  int64
	output []byte
	hit    bool
}

// tenant is one client's admission-control state.
type tenant struct {
	open  int // jobs admitted and not yet completed
	stats TenantStats

	// mAdmitted and mRejected are the tenant's pre-resolved metrics
	// handles; nil when metrics are off.
	mAdmitted, mRejected *metrics.Counter
}

// Server is the multi-tenant serving frontend over one gpufs.System.
type Server struct {
	sys *gpufs.System
	cfg Config
	tr  *trace.Tracer
	met *serveMetrics // nil when the system carries no registry

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	queues   []*gpuQueue // per-GPU pending jobs
	inflight []int       // per-GPU jobs inside a running batch
	cursors  []simtime.Time
	gstats   []GPUStats
	lat      []simtime.Duration
	svcEst   simtime.Duration // EWMA of per-job service time
	rr       int
	batchSeq int64
	draining bool
	// handoff freezes dispatch: takeLocked assembles no new batches while
	// it is set, so every queued job — including a retry requeued by an
	// in-flight batch — is flushed with ErrHandedOff instead of being
	// raced into one last launch. DrainForHandoff and Checkpoint set it;
	// plain Drain does not (its queued jobs must still execute here).
	handoff bool
	closed  bool

	vnow atomic.Int64 // server virtual now: max observed batch end
	ids  atomic.Uint64
	wg   sync.WaitGroup
}

// New starts a server over sys with one batching worker per GPU. Enable
// tracing on sys before calling New if serve events should be traced.
func New(sys *gpufs.System, cfg Config) *Server {
	s := &Server{
		sys:     sys,
		cfg:     cfg.withDefaults(),
		tr:      sys.Tracer(),
		tenants: make(map[string]*tenant),
		svcEst:  500 * simtime.Microsecond,
	}
	s.cond = sync.NewCond(&s.mu)
	n := sys.NumGPUs()
	s.queues = make([]*gpuQueue, n)
	for i := range s.queues {
		s.queues[i] = newGPUQueue()
	}
	s.inflight = make([]int, n)
	s.cursors = make([]simtime.Time, n)
	s.gstats = make([]GPUStats, n)
	if reg := sys.Metrics(); reg != nil {
		s.met = newServeMetrics(reg, n)
	}
	for g := 0; g < n; g++ {
		s.wg.Add(1)
		go s.worker(g)
	}
	return s
}

// Config returns the server's defaulted configuration.
func (s *Server) Config() Config { return s.cfg }

// Now reports the server's virtual time: the latest batch completion
// observed on any GPU.
func (s *Server) Now() simtime.Time { return simtime.Time(s.vnow.Load()) }

// Submit admits one job for tenant. It never blocks: the job is either
// admitted (returning its Future) or rejected — with an OverloadError
// carrying a retry-after hint when the tenant's queue is full, or
// ErrDraining after Drain began.
func (s *Server) Submit(tenantName string, spec Job) (*Future, error) {
	if err := validateJob(spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	fut, g, err := s.enqueueLocked(tenantName, spec)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if s.tr.Enabled() {
		s.tr.Record(trace.Event{
			GPU: g, Op: trace.OpEnqueue, Path: spec.Path,
			Start: simtime.Time(s.vnow.Load()), End: simtime.Time(s.vnow.Load()),
		})
	}
	return fut, nil
}

// SubmitAt is Submit with an explicit virtual arrival instant, for
// open-loop drivers whose arrival schedule is generated independently of
// the server's progress (Poisson arrivals, ISSUE 9's saturation bench).
// The job's latency — and its deadline, if any — is measured from at, so
// when the machine has fallen behind the arrival process (vnow past at),
// the time spent waiting to be submitted counts as queueing delay, which
// is exactly the signal a saturation sweep is after. Callers generate
// arrivals in nondecreasing order and pace them with WaitUntil.
func (s *Server) SubmitAt(tenantName string, spec Job, at simtime.Time) (*Future, error) {
	if err := validateJob(spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	fut, g, err := s.enqueueAtLocked(tenantName, spec, at)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if s.tr.Enabled() {
		s.tr.Record(trace.Event{
			GPU: g, Op: trace.OpEnqueue, Path: spec.Path,
			Start: at, End: at,
		})
	}
	return fut, nil
}

// WaitUntil blocks until the server's virtual time reaches at. While work
// is queued or in flight it waits for completions to advance the clock;
// once the machine goes idle short of at, virtual time leaps forward —
// an idle gap between open-loop arrivals costs no simulated work, like a
// sleeping load generator.
func (s *Server) WaitUntil(at simtime.Time) {
	s.mu.Lock()
	for simtime.Time(s.vnow.Load()) < at {
		if s.idleLocked() {
			for {
				cur := s.vnow.Load()
				if int64(at) <= cur || s.vnow.CompareAndSwap(cur, int64(at)) {
					break
				}
			}
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// validateJob is the Submit-time spec check shared by Submit and SubmitAt.
func validateJob(spec Job) error {
	if spec.Path == "" {
		return fmt.Errorf("%w: empty path", ErrBadJob)
	}
	if (spec.Kind == JobGrep || spec.Kind == JobSearch) && spec.Word == "" {
		return fmt.Errorf("%w: %s needs a word", ErrBadJob, spec.Kind)
	}
	if spec.Kind > JobTransform {
		return fmt.Errorf("%w: unknown kind %d", ErrBadJob, int(spec.Kind))
	}
	return nil
}

// enqueueLocked is Submit's admission + placement step, callable with
// s.mu held so several jobs can be enqueued atomically (one scheduling
// round sees them all). It broadcasts to wake workers on success.
func (s *Server) enqueueLocked(tenantName string, spec Job) (*Future, int, error) {
	return s.enqueueAtLocked(tenantName, spec, simtime.Time(s.vnow.Load()))
}

// enqueueAtLocked is enqueueLocked with an explicit arrival stamp (see
// SubmitAt).
func (s *Server) enqueueAtLocked(tenantName string, spec Job, arrival simtime.Time) (*Future, int, error) {
	if s.draining || s.closed {
		return nil, -1, ErrDraining
	}
	tn := s.tenants[tenantName]
	if tn == nil {
		tn = &tenant{}
		tn.mAdmitted, tn.mRejected = s.met.tenantCounters(tenantName)
		s.tenants[tenantName] = tn
	}
	if tn.open >= s.cfg.QueueDepth {
		tn.stats.Rejected++
		tn.mRejected.Inc()
		return nil, -1, &OverloadError{Tenant: tenantName, RetryAfter: s.retryAfterLocked()}
	}
	tn.open++
	tn.stats.Submitted++
	tn.mAdmitted.Inc()
	if tn.open > tn.stats.MaxQueued {
		tn.stats.MaxQueued = tn.open
	}

	j := &job{
		id:      s.ids.Add(1),
		tenant:  tenantName,
		spec:    spec,
		fut:     &Future{ch: make(chan Result, 1)},
		arrival: arrival,
	}
	if d := spec.Deadline; d > 0 {
		j.deadline = j.arrival.Add(d)
	} else if d := s.cfg.DefaultDeadline; d > 0 {
		j.deadline = j.arrival.Add(d)
	}

	g := s.routeLocked(j)
	s.queues[g].push(j)
	s.gstats[g].Routed++
	s.met.noteQueueDepth(g, s.queues[g].size)
	s.cond.Broadcast()
	return j.fut, g, nil
}

// retryAfterLocked estimates the virtual time until admission capacity
// frees: the per-job service estimate scaled by how deep the backlog is
// relative to one scheduling round across the machine.
func (s *Server) retryAfterLocked() simtime.Duration {
	queued := 0
	for _, q := range s.queues {
		queued += q.size
	}
	for _, n := range s.inflight {
		queued += n
	}
	round := s.cfg.MaxBatch * len(s.queues)
	est := s.svcEst * simtime.Duration(1+queued/round)
	if est < 100*simtime.Microsecond {
		est = 100 * simtime.Microsecond
	}
	return est
}

// Drain stops admission, waits for every queued and in-flight job to
// complete (including fault-driven retries), and shuts the workers down.
// It is the graceful-shutdown path and is safe to call exactly once.
//
// The admission race is first-come-first-served on the server lock, and
// there is no in-between outcome: a Submit that wins the lock before Drain
// is admitted, its Future is serviced to completion before Drain returns; a
// Submit that loses fails with ErrDraining and returns no Future. A Future
// Submit returned is NEVER abandoned (TestSubmitDrainRace pins this).
// Exactly one of Drain / DrainForHandoff may be called, once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for !s.idleLocked() {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// DrainForHandoff is the remediation-path drain: it stops admission,
// flushes every job that has not yet been taken into a kernel launch —
// completing each with ErrHandedOff so the caller can resubmit it on
// another host — waits for in-flight batches (whose jobs complete or fail
// normally, retries included; a retry requeued mid-drain is flushed, not
// re-executed here), and shuts the workers down. It returns the number of
// jobs handed off. Like Drain it may be called once, and every admitted
// Future still completes exactly once. (Checkpoint runs this same freeze
// internally; calling DrainForHandoff after a Checkpoint attempt is a
// harmless no-op returning 0 — the fallback path relies on that.)
func (s *Server) DrainForHandoff() int {
	flushed := s.freezeAndFlush()
	now := simtime.Time(s.vnow.Load())
	for _, f := range flushed {
		s.completeJob(f.j, f.g, -1, now, now, ErrHandedOff)
	}
	return len(flushed)
}

// flushedJob is one queued job popped by a handoff freeze, tagged with
// the GPU queue it came from.
type flushedJob struct {
	j *job
	g int
}

// freezeAndFlush is the shared handoff freeze: stop admission AND
// dispatch (the handoff flag gates takeLocked, so a retry requeued by an
// in-flight batch mid-drain can never be raced into one last launch —
// it is flushed like everything else), pop every queued job, wait for
// in-flight batches, and shut the workers down. The caller completes the
// flushed jobs with ErrHandedOff.
func (s *Server) freezeAndFlush() []flushedJob {
	var flushed []flushedJob
	s.mu.Lock()
	s.draining = true
	s.handoff = true
	s.cond.Broadcast()
	for {
		for g, q := range s.queues {
			if q.size == 0 {
				continue
			}
			for _, j := range q.pop(q.size) {
				flushed = append(flushed, flushedJob{j, g})
			}
			s.met.noteQueueDepth(g, 0)
		}
		if s.idleLocked() {
			break
		}
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return flushed
}

// Load reports the instantaneous backlog: queued plus in-flight jobs.
func (s *Server) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for g, q := range s.queues {
		n += q.size + s.inflight[g]
	}
	return n
}

// ResidentPages reports the most buffer-cache pages of path any GPU on
// this host holds — the cross-host cache-affinity signal the fleet
// scheduler routes on.
func (s *Server) ResidentPages(path string) int64 {
	var best int64
	for g := 0; g < s.sys.NumGPUs(); g++ {
		if p := s.sys.GPU(g).ResidentPages(path); p > best {
			best = p
		}
	}
	return best
}

// NumGPUs reports the underlying machine's device count.
func (s *Server) NumGPUs() int { return s.sys.NumGPUs() }

// Server implements Backend.
var _ Backend = (*Server)(nil)

// idleLocked reports whether no work is queued or in flight anywhere.
func (s *Server) idleLocked() bool {
	for g := range s.queues {
		if s.queues[g].size > 0 || s.inflight[g] > 0 {
			return false
		}
	}
	return true
}

// execJob runs one job's kernel inside a threadblock: read the file
// through the GPUfs API (hitting this GPU's buffer cache when resident),
// charge the scan, and compute the real answer. Errors are captured into
// the job — never returned — so one faulted job cannot abort the whole
// batch or latch the device.
func (s *Server) execJob(c *gpufs.BlockCtx, j *job) {
	j.err, j.count, j.output = nil, 0, nil

	fd, err := c.Gopen(j.spec.Path, gpufs.O_RDONLY)
	if err != nil {
		j.err = err
		return
	}
	info, err := c.Gfstat(fd)
	if err != nil {
		c.Gclose(fd)
		j.err = err
		return
	}
	buf := make([]byte, info.Size)
	if _, err := c.Gread(fd, buf, 0); err != nil {
		c.Gclose(fd)
		j.err = err
		return
	}
	if err := c.Gclose(fd); err != nil {
		j.err = err
		return
	}
	c.ComputeBytes(info.Size, simtime.Rate(s.cfg.ScanRate))

	switch j.spec.Kind {
	case JobGrep:
		j.count = int64(workloads.CountWord(buf, j.spec.Word))
	case JobSearch:
		j.count = int64(bytes.Count(buf, []byte(j.spec.Word)))
	case JobTransform:
		limit := j.spec.MaxOutput
		if limit <= 0 || limit > s.cfg.MaxOutputBytes {
			limit = s.cfg.MaxOutputBytes
		}
		if limit > info.Size {
			limit = info.Size
		}
		j.output = bytes.ToUpper(buf[:limit])
	}
}
