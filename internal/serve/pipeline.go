package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"

	"gpufs"
	"gpufs/internal/simtime"
)

// The pipe-connected two-stage pipeline workload of ISSUE 7: a producer
// kernel on one GPU reads and transforms input files through the GPUfs
// API, streaming records through a gpipe (host-brokered, so the stages sit
// on DIFFERENT GPUs and run concurrently), while a consumer kernel on a
// second GPU assembles the records into one output file and syncs it.
// The pipe's bounded buffer provides backpressure in virtual time: a fast
// producer blocks once it is PipeCap bytes ahead of the consumer.

// PipelineConfig parameterizes RunPipeline.
type PipelineConfig struct {
	// Inputs are the producer's input files; Output is the consumer's
	// output path.
	Inputs []string
	Output string
	// ProducerGPU and ConsumerGPU are the two stages' devices; they must
	// differ (kernel launches on one device serialize).
	ProducerGPU, ConsumerGPU int
	// PipeCap is the pipe's buffer capacity in bytes.
	PipeCap int
	// Blocks and Threads shape the producer kernel (the consumer runs one
	// assembly block).
	Blocks, Threads int
	// Granularity selects how producer blocks read their input: "warp"
	// issues one gpread_warp per block with one contiguous request per
	// thread (coalesced to one descriptor per warp); "thread" or "block"
	// (the default) issue plain greads.
	Granularity string
	// TransformRate is the virtual uppercasing throughput (bytes/s).
	TransformRate float64
}

// PipelineResult is one pipeline run's outcome.
type PipelineResult struct {
	// BytesProduced and BytesConsumed are the payload volumes through the
	// pipe (equal on success).
	BytesProduced int64
	BytesConsumed int64
	// Records is the number of pipe records the consumer assembled.
	Records int64
	// WarpDescriptors is the producer GPU's gpread_warp descriptor count
	// (0 unless Granularity is "warp").
	WarpDescriptors int64
	// Elapsed is the virtual makespan over both kernels.
	Elapsed simtime.Duration
}

// pipeline record framing: offset into the output file + payload length,
// then the payload, all little-endian. Records are atomic in the pipe, so
// the consumer reassembles a clean stream regardless of producer
// interleaving.
const pipeRecHeader = 12

// maxPipeRecPayload bounds one record so several records fit in the pipe
// at once (backpressure stays fine-grained).
func maxPipeRecPayload(pipeCap int) int {
	p := pipeCap/4 - pipeRecHeader
	if p > 4096 {
		p = 4096
	}
	if p < 256 {
		p = 256
	}
	if p+pipeRecHeader > pipeCap {
		p = pipeCap - pipeRecHeader
	}
	return p
}

// RunPipeline executes the two-stage workload and verifies the output:
// the output file must be exactly the uppercased concatenation of the
// inputs.
func RunPipeline(sys *gpufs.System, cfg PipelineConfig) (*PipelineResult, error) {
	if sys.NumGPUs() < 2 {
		return nil, fmt.Errorf("serve: pipeline needs 2 GPUs, have %d", sys.NumGPUs())
	}
	if cfg.ProducerGPU == cfg.ConsumerGPU {
		return nil, fmt.Errorf("serve: pipeline stages must run on different GPUs (both %d)", cfg.ProducerGPU)
	}
	if len(cfg.Inputs) == 0 {
		return nil, fmt.Errorf("serve: pipeline needs at least one input")
	}
	if cfg.PipeCap < 512 {
		return nil, fmt.Errorf("serve: pipe capacity %d too small (min 512)", cfg.PipeCap)
	}
	if cfg.Blocks < 1 || cfg.Threads < 1 {
		return nil, fmt.Errorf("serve: invalid producer geometry %dx%d", cfg.Blocks, cfg.Threads)
	}
	switch cfg.Granularity {
	case "", "thread", "warp", "block":
	default:
		return nil, fmt.Errorf("serve: unknown pipeline granularity %q", cfg.Granularity)
	}

	// Precompute each input's offset in the concatenated output, host-side
	// (the launcher knows its inputs, as any CPU dispatcher would).
	offsets := make([]int64, len(cfg.Inputs)+1)
	for i, p := range cfg.Inputs {
		info, err := sys.Host().Stat(p)
		if err != nil {
			return nil, err
		}
		offsets[i+1] = offsets[i] + info.Size
	}
	total := offsets[len(cfg.Inputs)]

	// Pre-create the (empty) output so its parent directory exists before
	// the consumer's gopen(O_GWRONCE) — host-side setup, like staging the
	// inputs.
	if err := sys.WriteHostFile(cfg.Output, nil); err != nil {
		return nil, err
	}

	pipeName := "pipe:" + cfg.Output
	maxPayload := maxPipeRecPayload(cfg.PipeCap)
	res := &PipelineResult{}
	var mu sync.Mutex

	var wg sync.WaitGroup
	var prodEnd, consEnd simtime.Time
	var prodErr, consErr error

	// Producer: blocks stripe over the inputs; each block reads its files,
	// uppercases them, and streams framed records into the pipe. Every
	// producer block is one declared pipe writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prodEnd, prodErr = sys.GPU(cfg.ProducerGPU).Launch(0, cfg.Blocks, cfg.Threads,
			func(c *gpufs.BlockCtx) error {
				pd, err := c.GpipeOpen(pipeName, gpufs.PipeWriter, cfg.PipeCap, cfg.Blocks)
				if err != nil {
					return err
				}
				var produced int64
				for fi := c.Idx; fi < len(cfg.Inputs); fi += c.Blocks {
					n, err := pipelineProduceFile(c, cfg, cfg.Inputs[fi], offsets[fi], maxPayload, pd)
					if err != nil {
						return err
					}
					produced += n
				}
				if err := c.GpipeClose(pd, gpufs.PipeWriter); err != nil {
					return err
				}
				mu.Lock()
				res.BytesProduced += produced
				mu.Unlock()
				return nil
			})
		if prodErr != nil {
			// Unblock a consumer waiting on records that will never come.
			sys.Syscalls().BreakPipe(pipeName, prodErr)
		}
	}()

	// Consumer: one assembly block drains the pipe until EOF, writing each
	// record's payload at its framed offset (write-once, disjoint), then
	// syncs the output.
	wg.Add(1)
	go func() {
		defer wg.Done()
		consEnd, consErr = sys.GPU(cfg.ConsumerGPU).Launch(0, 1, cfg.Threads,
			func(c *gpufs.BlockCtx) error {
				pd, err := c.GpipeOpen(pipeName, gpufs.PipeReader, cfg.PipeCap, cfg.Blocks)
				if err != nil {
					return err
				}
				ofd, err := c.Gopen(cfg.Output, gpufs.O_GWRONCE)
				if err != nil {
					return err
				}
				scratch := make([]byte, 64<<10)
				var pending []byte
				var consumed, records int64
				for {
					n, err := c.GpipeRead(pd, scratch)
					if err == io.EOF {
						break
					}
					if err != nil {
						return err
					}
					pending = append(pending, scratch[:n]...)
					for len(pending) >= pipeRecHeader {
						off := int64(binary.LittleEndian.Uint64(pending[0:8]))
						plen := int(binary.LittleEndian.Uint32(pending[8:12]))
						if len(pending) < pipeRecHeader+plen {
							break
						}
						payload := pending[pipeRecHeader : pipeRecHeader+plen]
						if _, err := c.Gwrite(ofd, payload, off); err != nil {
							return err
						}
						consumed += int64(plen)
						records++
						pending = pending[pipeRecHeader+plen:]
					}
				}
				if len(pending) != 0 {
					return fmt.Errorf("serve: pipeline stream ended mid-record (%d stray bytes)", len(pending))
				}
				if err := c.GpipeClose(pd, gpufs.PipeReader); err != nil {
					return err
				}
				if err := c.Gfsync(ofd); err != nil {
					return err
				}
				if err := c.Gclose(ofd); err != nil {
					return err
				}
				mu.Lock()
				res.BytesConsumed += consumed
				res.Records += records
				mu.Unlock()
				return nil
			})
		if consErr != nil {
			// Unblock producers waiting on space that will never free.
			sys.Syscalls().BreakPipe(pipeName, consErr)
		}
	}()
	wg.Wait()
	if prodErr != nil {
		return nil, fmt.Errorf("serve: pipeline producer: %w", prodErr)
	}
	if consErr != nil {
		return nil, fmt.Errorf("serve: pipeline consumer: %w", consErr)
	}
	if res.BytesProduced != total || res.BytesConsumed != total {
		return nil, fmt.Errorf("serve: pipeline moved %d produced / %d consumed bytes, want %d",
			res.BytesProduced, res.BytesConsumed, total)
	}
	_, _, res.WarpDescriptors = sys.GPU(cfg.ProducerGPU).FS().WarpStats()
	res.Elapsed = simtime.Duration(prodEnd)
	if consEnd > prodEnd {
		res.Elapsed = simtime.Duration(consEnd)
	}

	// Verify end to end: the output is the uppercased concatenation of the
	// inputs, byte for byte.
	out, err := sys.ReadHostFile(cfg.Output)
	if err != nil {
		return nil, err
	}
	if int64(len(out)) != total {
		return nil, fmt.Errorf("serve: pipeline output is %d bytes, want %d", len(out), total)
	}
	at := int64(0)
	for _, p := range cfg.Inputs {
		in, err := sys.ReadHostFile(p)
		if err != nil {
			return nil, err
		}
		want := strings.ToUpper(string(in))
		if string(out[at:at+int64(len(in))]) != want {
			return nil, fmt.Errorf("serve: pipeline output mismatch for input %q", p)
		}
		at += int64(len(in))
	}
	return res, nil
}

// pipelineProduceFile reads one input (at the configured granularity),
// uppercases it, and streams it into the pipe as framed records.
func pipelineProduceFile(c *gpufs.BlockCtx, cfg PipelineConfig, path string, base int64, maxPayload int, pd int64) (int64, error) {
	fd, err := c.Gopen(path, gpufs.O_RDONLY)
	if err != nil {
		return 0, err
	}
	info, err := c.Gfstat(fd)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, info.Size)
	if cfg.Granularity == "warp" {
		// One contiguous request per thread: warps coalesce to one
		// descriptor each.
		chunk := (info.Size + int64(c.Threads) - 1) / int64(c.Threads)
		var reqs []gpufs.WarpReq
		for t := 0; t < c.Threads; t++ {
			lo := int64(t) * chunk
			if lo >= info.Size {
				break
			}
			hi := lo + chunk
			if hi > info.Size {
				hi = info.Size
			}
			reqs = append(reqs, gpufs.WarpReq{Dst: buf[lo:hi], Off: lo})
		}
		if _, err := c.GpreadWarp(fd, reqs); err != nil {
			return 0, err
		}
	} else {
		if _, err := c.Gread(fd, buf, 0); err != nil {
			return 0, err
		}
	}
	if err := c.Gclose(fd); err != nil {
		return 0, err
	}

	// The transform: uppercase, at the calibrated streaming rate.
	for i, b := range buf {
		if b >= 'a' && b <= 'z' {
			buf[i] = b - 'a' + 'A'
		}
	}
	c.ComputeBytes(info.Size, simtime.Rate(cfg.TransformRate))

	rec := make([]byte, pipeRecHeader+maxPayload)
	var sent int64
	for sent < info.Size {
		n := int64(maxPayload)
		if n > info.Size-sent {
			n = info.Size - sent
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(base+sent))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(n))
		copy(rec[pipeRecHeader:], buf[sent:sent+n])
		if _, err := c.GpipeWrite(pd, rec[:pipeRecHeader+n]); err != nil {
			return sent, err
		}
		sent += n
	}
	return sent, nil
}
