package serve

import (
	"errors"
	"fmt"

	"gpufs/internal/ckpt"
	"gpufs/internal/core"
	"gpufs/internal/simtime"
)

// Host checkpoint and restore (ISSUE 10): the serving layer's half of
// live migration. Checkpoint overlaps the expensive part of the capture
// — the per-GPU buffer-cache walk — with the in-flight batches it has to
// wait out anyway:
//
//	1. Stop admission and dispatch (the handoff freeze begins). Batches
//	   already launched keep running.
//	2. BeginCheckpoint on every GPU: from here, copy-on-write preserves
//	   the pre-write content of any page an in-flight kernel overwrites.
//	3. Walk every GPU's cache concurrently with those kernels.
//	4. Flush the queues (jobs complete with ErrHandedOff, exactly as
//	   DrainForHandoff), wait for in-flight work, stop the workers.
//	5. Commit: validate speculated clean pages against the live host,
//	   merge the write-fault copies, export the pipe table.
//
// The serving kernels are read-only (execJob), so nothing an in-flight
// batch does after its page's cut can invalidate the image; general
// writer workloads get the same guarantee from the CoW protocol itself.
//
// A failed Checkpoint still leaves the host fully drained with every
// admitted Future resolved — the caller's fallback (drain + cold
// replace) needs no second drain, and DrainForHandoff stays a safe
// no-op afterwards.

// ErrNotRestorable rejects a Restore on a host that has already served
// traffic or begun draining.
var ErrNotRestorable = errors.New("serve: restore requires a fresh host")

// Checkpoint implements Backend: capture this host into a migratable
// image while finishing its in-flight work. See the package notes above
// for the protocol. Counts as the host's one drain call.
func (s *Server) Checkpoint() (*ckpt.Image, error) {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.draining = true
	s.handoff = true
	s.cond.Broadcast()
	s.mu.Unlock()

	start := simtime.Time(s.vnow.Load())
	n := s.sys.NumGPUs()
	cks := make([]*core.Ckpt, n)
	var beginErr error
	for g := 0; g < n; g++ {
		ck, err := s.sys.GPU(g).FS().BeginCheckpoint(start)
		if err != nil {
			beginErr = fmt.Errorf("serve: checkpoint gpu %d: %w", g, err)
			break
		}
		cks[g] = ck
	}
	if beginErr == nil {
		// The walk runs while in-flight batches execute; their writes
		// fault pre-write copies into the capture.
		for _, ck := range cks {
			ck.Walk()
		}
	}

	// Freeze: flush the queues, wait out in-flight batches, stop workers.
	// (draining/handoff are already set; freezeAndFlush re-setting them
	// is idempotent.)
	flushed := s.freezeAndFlush()

	img := &ckpt.Image{SourceHost: -1, CaptureStart: int64(start)}
	end := start
	var commitErr error
	for g, ck := range cks {
		if ck == nil {
			continue
		}
		if beginErr != nil || commitErr != nil {
			ck.Abort()
			continue
		}
		fsImg, err := ck.Commit()
		if err != nil {
			commitErr = fmt.Errorf("serve: checkpoint gpu %d: %w", g, err)
			continue
		}
		img.GPUs = append(img.GPUs, *fsImg)
		if t := ck.Now(); t > end {
			end = t
		}
	}

	// The flushed jobs complete with ErrHandedOff whether or not the
	// capture succeeded: the freeze already stopped this host from ever
	// running them, and their watchers must re-route them exactly once.
	now := simtime.Time(s.vnow.Load())
	for _, f := range flushed {
		s.completeJob(f.j, f.g, -1, now, now, ErrHandedOff)
	}

	if beginErr != nil {
		return nil, beginErr
	}
	if commitErr != nil {
		return nil, commitErr
	}

	img.Pipes = s.sys.Syscalls().ExportPipes()
	for _, f := range flushed {
		img.Queued = append(img.Queued, ckpt.JobImage{
			ID:       int64(f.j.id),
			Tenant:   f.j.tenant,
			Kind:     int64(f.j.spec.Kind),
			Path:     f.j.spec.Path,
			Word:     f.j.spec.Word,
			Deadline: int64(f.j.spec.Deadline),
		})
	}
	if end < now {
		end = now
	}
	img.CaptureEnd = int64(end)
	return img, nil
}

// Restore implements Backend: materialize img onto this freshly built
// host — per-GPU cache contents and file tables via the core restore
// engine, then the host-brokered pipe table. The restore's virtual cost
// advances the server clock, so migration latency is visible in Now().
// Best-effort per GPU image: a file that no longer restores leaves its
// tenants with a cold miss, not a dead host; the first error is
// reported after everything restorable is in place.
func (s *Server) Restore(img *ckpt.Image) error {
	s.mu.Lock()
	fresh := !s.draining && !s.closed && s.idleLocked() && s.vnow.Load() == 0
	s.mu.Unlock()
	if !fresh {
		return ErrNotRestorable
	}
	var firstErr error
	for i := range img.GPUs {
		fi := &img.GPUs[i]
		g := int(fi.GPU)
		if g < 0 || g >= s.sys.NumGPUs() {
			// The replacement host is smaller than the source; that GPU's
			// cache state has nowhere to land. Skip it — its files reopen
			// cold on whichever device the placement layer picks.
			continue
		}
		end, err := s.sys.GPU(g).RestoreImage(fi)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for {
			v := s.vnow.Load()
			if int64(end) <= v || s.vnow.CompareAndSwap(v, int64(end)) {
				break
			}
		}
	}
	s.sys.Syscalls().RestorePipes(img.Pipes)
	return firstErr
}
