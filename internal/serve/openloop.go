package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"gpufs/internal/simtime"
)

// Open-loop load generation (ISSUE 9): unlike the closed-loop drivers
// elsewhere in this package — which submit the next job only after the
// previous one completes, so offered load self-throttles to whatever the
// machine sustains — an open-loop generator draws arrival instants from a
// Poisson process on VIRTUAL time and submits on schedule regardless of
// the server's progress. Past the saturation point the backlog (and the
// measured queueing latency) grows without bound, which is precisely how
// a saturation sweep finds the max sustainable jobs/s: closed loops hide
// the knee, open loops expose it.

// OpenLoopConfig parameterizes one open-loop run.
type OpenLoopConfig struct {
	// Jobs is the number of arrivals to generate.
	Jobs int
	// Rate is the offered load in jobs per virtual second, across all
	// tenants (arrival gaps are Exp(1/Rate)).
	Rate float64
	// Seed feeds the arrival-process PRNG; equal seeds generate equal
	// schedules, so two sweeps at the same rate are comparable.
	Seed int64
	// Job maps the i-th arrival to its tenant and spec (the caller
	// decides the tenant population and the job mix).
	Job func(i int) (tenant string, spec Job)
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	// Offered counts generated arrivals; Admitted and Rejected partition
	// them at admission control (an open loop sheds rejected jobs — no
	// retry — so Rejected is the overload signal).
	Offered, Admitted, Rejected int
	// Completed and Failed partition admitted jobs by outcome.
	Completed, Failed int64
	// Horizon is the last arrival's scheduled instant; End is the
	// server's virtual time once every admitted job finished. Achieved
	// throughput is Completed over max(Horizon, End).
	Horizon, End simtime.Time
}

// AchievedRate is the realized throughput in jobs per virtual second:
// completions over the span from time zero to the later of the arrival
// horizon and the last completion.
func (r OpenLoopResult) AchievedRate() float64 {
	span := r.Horizon
	if r.End > span {
		span = r.End
	}
	if span <= 0 {
		return 0
	}
	return float64(r.Completed) / span.Seconds()
}

// RunOpenLoop drives srv with cfg.Jobs Poisson arrivals at cfg.Rate,
// blocking until every admitted job completes. Arrivals are paced with
// WaitUntil — virtual time leaps across idle gaps and queues behind busy
// ones — and submitted with SubmitAt, so each job's measured latency
// starts at its scheduled arrival instant even when the machine has
// fallen behind the schedule.
func RunOpenLoop(srv *Server, cfg OpenLoopConfig) (OpenLoopResult, error) {
	if cfg.Jobs <= 0 || cfg.Rate <= 0 || cfg.Job == nil {
		return OpenLoopResult{}, fmt.Errorf("serve: open loop needs Jobs, Rate, and Job")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		res       OpenLoopResult
		wg        sync.WaitGroup
		completed atomic.Int64
		failed    atomic.Int64
	)
	at := simtime.Time(0)
	for i := 0; i < cfg.Jobs; i++ {
		at = at.Add(simtime.Duration(rng.ExpFloat64() / cfg.Rate * 1e9))
		srv.WaitUntil(at)
		tenant, spec := cfg.Job(i)
		res.Offered++
		fut, err := srv.SubmitAt(tenant, spec, at)
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				res.Rejected++
				continue
			}
			return res, err
		}
		res.Admitted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r := fut.Wait(); r.Err != nil {
				failed.Add(1)
			} else {
				completed.Add(1)
			}
		}()
	}
	res.Horizon = at
	wg.Wait()
	res.Completed = completed.Load()
	res.Failed = failed.Load()
	res.End = srv.Now()
	return res, nil
}
