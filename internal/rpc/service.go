package rpc

// The host service layer: the pool of daemon worker threads that drain
// the request rings. The paper's GPUfs daemon runs multiple CPU threads,
// each polling a subset of the per-GPU rings (§4.2); here each worker is
// one simtime.Resource, and ring shard s is statically pinned to worker
// s mod Workers. Static affinity keeps each ring's requests FIFO on one
// host timeline (so single-shard behaviour is bit-identical to the old
// single-daemon model) while distinct rings overlap in virtual time.

import "gpufs/internal/simtime"

// hostService owns the daemon worker pool shared by every GPU's rings.
type hostService struct {
	pool *simtime.WorkerPool
}

func newHostService(workers int) *hostService {
	return &hostService{pool: simtime.NewWorkerPool("gpufs-cpu-daemon", workers)}
}

// workerFor returns the daemon worker that polls ring shard s.
func (s *hostService) workerFor(shard int) *simtime.Resource {
	return s.pool.Worker(shard)
}

// Workers reports the pool size.
func (s *hostService) Workers() int { return s.pool.Size() }

// Busy reports total busy virtual time summed over all workers.
func (s *hostService) Busy() simtime.Duration { return s.pool.Busy() }

// Reset clears all worker calendars for timing-isolated runs.
func (s *hostService) Reset() { s.pool.Reset() }
