package rpc

import (
	"testing"

	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

// shardedHarness is harness with an explicit ring-shard and daemon-worker
// count, for exercising the layered transport beyond the single-ring
// prototype shape.
func shardedHarness(t *testing.T, shards, workers int) (*Server, *Client, *hostfs.FS) {
	t.Helper()
	host := hostfs.New(hostfs.Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      64 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
	layer := wrapfs.New(host)
	bus := pcie.New(pcie.Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, host.MemBus())
	srv := NewServer(Config{
		PollInterval:  10 * simtime.Microsecond,
		HandleCost:    12 * simtime.Microsecond,
		ReturnLatency: 2 * simtime.Microsecond,
		Shards:        shards,
		Workers:       workers,
	}, layer)
	return srv, srv.NewClient(0, bus.NewLink(0, nil, 0)), host
}

// TestOpNamesUnique checks every op renders a distinct wire name. The
// enum-to-name drift itself is caught at compile time by the knownOps
// array guard next to String() — adding an op without a name no longer
// builds — so only name collisions remain a runtime concern.
func TestOpNamesUnique(t *testing.T) {
	seen := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("op %d has an empty name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("ops %d and %d share the name %q", prev, op, name)
		}
		seen[name] = op
	}
}

// TestShardRoutingStableAndCovering checks the lane→shard hash: in range,
// deterministic across clients, identical on every call, and spread over
// all shards for a realistic block count.
func TestShardRoutingStableAndCovering(t *testing.T) {
	const shards = 4
	srv, cl, _ := shardedHarness(t, shards, shards)
	if cl.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", cl.Shards(), shards)
	}

	other := srv.NewClient(1, cl.Link())
	covered := make(map[int]bool)
	for lane := -8; lane < 56; lane++ {
		s := cl.ShardFor(lane)
		if s < 0 || s >= shards {
			t.Fatalf("lane %d routed to shard %d, out of [0,%d)", lane, s, shards)
		}
		if again := cl.ShardFor(lane); again != s {
			t.Fatalf("lane %d unstable: %d then %d", lane, s, again)
		}
		if os := other.ShardFor(lane); os != s {
			t.Fatalf("lane %d differs across clients: %d vs %d", lane, s, os)
		}
		if bs := cl.Bind(lane).Shard(); bs != s {
			t.Fatalf("Bind(%d) landed on shard %d, ShardFor says %d", lane, bs, s)
		}
		covered[s] = true
	}
	if len(covered) != shards {
		t.Fatalf("56 lanes covered only %d of %d shards", len(covered), shards)
	}

	// Bind to the already-bound shard must return the same view, not a copy.
	for lane := 0; lane < 64; lane++ {
		if cl.ShardFor(lane) == cl.Shard() {
			if cl.Bind(lane) != cl {
				t.Fatalf("Bind(%d) to the current shard allocated a new view", lane)
			}
			break
		}
	}

	// A single-ring transport routes everything to shard 0.
	_, one, _ := shardedHarness(t, 1, 1)
	for lane := -3; lane < 40; lane++ {
		if s := one.ShardFor(lane); s != 0 {
			t.Fatalf("single-ring transport routed lane %d to shard %d", lane, s)
		}
	}
}

// TestDedupIsolationAcrossShards pins the per-ring dedup contract: a
// sequence number applied on one ring must be invisible to every other
// ring, so a fault burst on shard A can never satisfy (or poison) a retry
// on shard B.
func TestDedupIsolationAcrossShards(t *testing.T) {
	_, cl, _ := shardedHarness(t, 4, 4)
	sh0, sh1 := cl.t.shards[0], cl.t.shards[1]

	sh0.dedupStore(7, nil)
	if hit, _ := sh1.dedupLookup(7); hit {
		t.Fatalf("seq applied on shard 0 visible to shard 1's dedup table")
	}
	if hit, _ := sh0.dedupLookup(7); !hit {
		t.Fatalf("seq applied on shard 0 not found on its own ring")
	}
}

// TestOutOfOrderCompletions drives a slow multi-page read on one ring and
// a metadata stat on another: the stat is sent later but must be delivered
// first, and the completion queue must match every response to its frame.
func TestOutOfOrderCompletions(t *testing.T) {
	_, cl, host := shardedHarness(t, 4, 4)

	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := host.WriteFile(simtime.NewClock(0), "/big", big, rwMode); err != nil {
		t.Fatal(err)
	}

	c0 := simtime.NewClock(0)
	fd, _, err := cl.Open(c0, "/big", hostfs.O_RDONLY, hostfs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}

	// Two lanes on distinct rings.
	slowLane, fastLane := 0, 1
	for cl.ShardFor(fastLane) == cl.ShardFor(slowLane) {
		fastLane++
	}
	base := c0.Now().Add(simtime.Millisecond)

	slow := cl.Bind(slowLane)
	slowClk := simtime.NewClock(base)
	dst := make([]byte, len(big))
	if n, err := slow.ReadPages(slowClk, fd, 0, dst); err != nil || n != len(big) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}

	fast := cl.Bind(fastLane)
	fastClk := simtime.NewClock(base.Add(simtime.Microsecond))
	if _, err := fast.Stat(fastClk, fd); err != nil {
		t.Fatal(err)
	}

	if fastClk.Now() >= slowClk.Now() {
		t.Fatalf("stat (done %v) did not overtake the big read (done %v)",
			fastClk.Now(), slowClk.Now())
	}
	if ooo := cl.OutOfOrderCompletions(); ooo < 1 {
		t.Fatalf("OutOfOrderCompletions = %d, want >= 1", ooo)
	}
	if un := cl.UnmatchedCompletions(); un != 0 {
		t.Fatalf("UnmatchedCompletions = %d, want 0", un)
	}
	if m := cl.Completions(); m < 3 {
		t.Fatalf("Completions = %d, want >= 3 (open + read + stat)", m)
	}
}

// TestWorkerPoolOverlap launches the same burst of metadata ops on a
// four-worker and a one-worker host service (ring count held fixed): the
// pool must finish strictly earlier, and the single worker must reproduce
// the serialized daemon.
func TestWorkerPoolOverlap(t *testing.T) {
	finish := func(workers int) simtime.Time {
		_, cl, host := shardedHarness(t, 4, workers)
		if err := host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode); err != nil {
			t.Fatal(err)
		}
		c0 := simtime.NewClock(0)
		fd, _, err := cl.Open(c0, "/f", hostfs.O_RDONLY, hostfs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		base := c0.Now().Add(simtime.Millisecond)
		var last simtime.Time
		for lane := 0; lane < 8; lane++ {
			clk := simtime.NewClock(base)
			if _, err := cl.Bind(lane).Stat(clk, fd); err != nil {
				t.Fatal(err)
			}
			if clk.Now() > last {
				last = clk.Now()
			}
		}
		return last
	}

	serial, pooled := finish(1), finish(4)
	if pooled >= serial {
		t.Fatalf("4-worker burst finished at %v, not earlier than 1-worker %v", pooled, serial)
	}
}
