// Package rpc implements the GPU→CPU remote procedure call infrastructure
// of GPUfs (§4.3). The GPU acts as the *client* — reversing the traditional
// GPU-as-coprocessor roles — and the host CPU runs a file server daemon.
//
// The protocol is synchronous and stateless: a threadblock writes a request
// into one of its GPU's FIFO rings in write-shared host memory, a CPU daemon
// worker discovers it by polling (today's GPUs offer no GPU-to-CPU signal),
// handles it, and the block spins on the response slot. Because PCIe offers
// no cross-bus atomics, there is no one-sided locking anywhere in the
// protocol: every interaction is a message exchange.
//
// The package is layered (ISSUE 3):
//
//   - protocol (this file): the typed operations — Open, ReadPages,
//     WritePages, Stat, … — that marshal arguments into request slots and
//     capture results. A Client is one GPU's endpoint, optionally Bind-ed
//     to a lane so a threadblock's traffic rides its home ring shard.
//   - transport (transport.go): N sharded rings per GPU behind the
//     Transport interface. Blocks hash to shards; the retry/timeout
//     protocol, sequence-number dedup, and fault-injection hooks all live
//     here, so every shard inherits the failure handling unchanged. A
//     completion queue matches responses back by (shard, seq) and records
//     out-of-order delivery.
//   - host service (service.go): the daemon worker pool. Ring shard s is
//     statically pinned to worker s mod Workers, so each ring keeps FIFO
//     order on one host timeline while distinct rings overlap in virtual
//     time — the paper's multi-threaded daemon (§4.2).
//
// Bulk data never travels through the rings; the CPU DMAs it directly to
// or from the GPU buffer-cache pages whose device pointers the GPU
// supplied, on the link's asynchronous channels, overlapping with
// subsequent request handling.
//
// # Failure handling
//
// With a fault injector installed (internal/faults), the transport grows
// the robustness a production daemon needs:
//
//   - Per-request timeouts in virtual time: a block spinning on a response
//     slot gives up Timeout after the request was sent and re-enqueues.
//   - Bounded exponential backoff between attempts, with a MaxAttempts
//     retry budget; only transient failures (EAGAIN, lost responses) are
//     retried — real I/O errors are returned immediately.
//   - Idempotent re-execution: every logical request carries a sequence
//     number assigned once and reused across retries. Each ring shard
//     keeps its own dedup table keyed by sequence number; a retry of a
//     request whose response was lost is answered from the table without
//     re-applying the operation, so non-idempotent requests (open with
//     O_TRUNC, close, pwrite) are applied exactly once. Dedup state is
//     per-shard: faults on one ring cannot corrupt another.
//
// With no injector the happy path is byte-identical to the fault-free
// protocol: one atomic pointer load per request.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gpufs/internal/faults"
	"gpufs/internal/hostfs"
	"gpufs/internal/metrics"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

// Op identifies a request type, mirroring the GPUfs calls that must be
// forwarded to the host.
type Op int

// Request operations.
const (
	OpOpen Op = iota
	OpClose
	OpReadPages
	OpWritePages
	OpTruncate
	OpUnlink
	OpStat
	OpFsync
	OpValidate
	OpReaddir
	OpPipeOpen
	OpPipeRead
	OpPipeWrite
	OpPipeClose
	numOps
)

// knownOps is the compile-time drift guard companion of numOps: adding an
// Op without extending String() below (and this constant) fails the
// array-length assignment instead of rendering as "Op(14)" at runtime.
const knownOps = 14

var _ [knownOps]struct{} = [numOps]struct{}{}

// String names the request operation. The switch is exhaustive over the
// enum; the drift guard above forces an update when an Op is added.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpReadPages:
		return "read"
	case OpWritePages:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpUnlink:
		return "unlink"
	case OpStat:
		return "stat"
	case OpFsync:
		return "fsync"
	case OpValidate:
		return "validate"
	case OpReaddir:
		return "readdir"
	case OpPipeOpen:
		return "pipe_open"
	case OpPipeRead:
		return "pipe_read"
	case OpPipeWrite:
		return "pipe_write"
	case OpPipeClose:
		return "pipe_close"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Errors introduced by the failure model.
var (
	// ErrAgain is the transient, retryable failure the daemon returns
	// when overloaded (injected); clients back off and retry it.
	ErrAgain = errors.New("rpc: resource temporarily unavailable (EAGAIN)")
	// ErrTimeout is returned when a request exhausts its retry budget
	// without observing a response.
	ErrTimeout = errors.New("rpc: request timed out")
)

// Retryable reports whether err is a transient failure worth retrying.
// Real I/O errors (EIO and friends) are not.
func Retryable(err error) bool { return errors.Is(err, ErrAgain) }

// Config parameterizes the RPC timing model, topology, and retry policy.
type Config struct {
	// PollInterval is the mean delay before a polling daemon worker
	// notices a newly enqueued request.
	PollInterval simtime.Duration
	// HandleCost is the CPU cost of dequeuing and dispatching a request.
	HandleCost simtime.Duration
	// ReturnLatency is the delay before the spinning GPU block observes
	// the response in write-shared memory.
	ReturnLatency simtime.Duration

	// Shards is the number of request rings per GPU; threadblocks hash
	// to rings. Zero selects 1 (the original single-ring layout).
	Shards int
	// Workers is the number of daemon worker threads draining the rings;
	// ring shard s is pinned to worker s mod Workers. Zero selects 1
	// (the original single-threaded daemon).
	Workers int

	// Timeout is how long (virtual) a block spins on its response slot
	// before declaring the response lost and retrying. Zero selects the
	// default (2ms).
	Timeout simtime.Duration
	// RetryBase and RetryMax bound the exponential backoff between
	// attempts: base<<(attempt-1), capped at max. Zeros select defaults
	// (20µs base, 1ms cap).
	RetryBase simtime.Duration
	RetryMax  simtime.Duration
	// MaxAttempts is the per-request retry budget, counting the first
	// attempt. Zero selects the default (8).
	MaxAttempts int
}

// Server is the CPU-side GPUfs daemon process: the host service worker
// pool plus the file-descriptor table and consistency layer shared by
// every GPU's rings. One Server serves every GPU of the process.
type Server struct {
	cfg   Config
	layer *wrapfs.Layer
	svc   *hostService

	inj atomic.Pointer[faults.Injector]
	met *metrics.Registry

	// zeroCopy makes read handlers (here and in the gsys syscall table)
	// pread file data directly into the pinned device destination and
	// charge the DMA without the staging pass (pcie.ChargePinned),
	// instead of copying through a per-request staging buffer.
	zeroCopy atomic.Bool

	mu     sync.Mutex
	fds    map[int64]*hostfs.File
	nextFd int64

	reqCount [numOps]atomic.Int64
}

// NewServer creates the host daemon over the given consistency layer.
func NewServer(cfg Config, layer *wrapfs.Layer) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * simtime.Millisecond
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 20 * simtime.Microsecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = simtime.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	return &Server{
		cfg:    cfg,
		layer:  layer,
		svc:    newHostService(cfg.Workers),
		fds:    make(map[int64]*hostfs.File),
		nextFd: 3,
	}
}

// SetFaultInjector installs (or, with nil, removes) the fault injector
// governing this daemon's request handling.
func (s *Server) SetFaultInjector(inj *faults.Injector) { s.inj.Store(inj) }

// SetZeroCopyRead toggles the daemon's zero-copy read path: handlers read
// file data straight into the pinned DMA destination, skipping both the
// staging buffer and its host-memory-bus pass. Off (the default) keeps
// the PR-7 staging behavior bit-identically.
func (s *Server) SetZeroCopyRead(on bool) { s.zeroCopy.Store(on) }

// ZeroCopyRead reports whether the zero-copy read path is enabled; the
// gsys syscall table consults it so both protocol layers stay in step.
func (s *Server) ZeroCopyRead() bool { return s.zeroCopy.Load() }

// SetMetrics attaches a metrics registry to the daemon. It must be called
// before NewClient: each client's ring transport resolves per-shard
// instrument handles at creation. A nil registry (the default) keeps the
// per-request hooks at a single pointer test.
func (s *Server) SetMetrics(reg *metrics.Registry) { s.met = reg }

// Layer returns the consistency layer the server manages.
func (s *Server) Layer() *wrapfs.Layer { return s.layer }

// Metrics returns the registry attached via SetMetrics (nil when metrics
// are disabled). The gsys syscall layer resolves its ordering-class
// latency instruments from it.
func (s *Server) Metrics() *metrics.Registry { return s.met }

// AllocFD registers an open host file in the daemon's descriptor table
// and returns its handle. Syscall-table handlers outside this package
// (internal/gsys) use it where the in-package handlers touch s.fds
// directly.
func (s *Server) AllocFD(f *hostfs.File) int64 {
	s.mu.Lock()
	h := s.nextFd
	s.nextFd++
	s.fds[h] = f
	s.mu.Unlock()
	return h
}

// FileByFD resolves a descriptor handle to its host file.
func (s *Server) FileByFD(fd int64) (*hostfs.File, error) { return s.file(fd) }

// ReleaseFD removes a descriptor handle from the table, returning the
// host file (nil if the handle was unknown). The caller closes the file.
func (s *Server) ReleaseFD(fd int64) *hostfs.File {
	s.mu.Lock()
	f := s.fds[fd]
	delete(s.fds, fd)
	s.mu.Unlock()
	return f
}

// Requests reports how many requests of the given op have been served
// (each retry attempt is a separate ring transaction and counts).
func (s *Server) Requests(op Op) int64 { return s.reqCount[op].Load() }

// TotalRequests reports the total request count across all ops.
func (s *Server) TotalRequests() int64 {
	var n int64
	for i := range s.reqCount {
		n += s.reqCount[i].Load()
	}
	return n
}

// Workers reports the daemon worker-pool size.
func (s *Server) Workers() int { return s.svc.Workers() }

// ResetTime returns every daemon worker's timeline to idle (benchmark
// harness use).
func (s *Server) ResetTime() { s.svc.Reset() }

// DaemonBusy reports the daemon workers' accumulated busy time, summed
// over the pool.
func (s *Server) DaemonBusy() simtime.Duration { return s.svc.Busy() }

// dedupSlots is the server-side dedup table size per ring shard. Sequence
// numbers index it modulo the size; a slot is only consulted by retries of
// the exact sequence number it holds, and concurrent in-flight requests per
// ring are far fewer than the slot count, so collisions cannot alias.
const dedupSlots = 256

// dedupEntry caches the outcome of an applied request so a retry whose
// response was lost re-delivers the reply instead of re-applying the
// operation. The reply payload itself lives in the caller's captured
// result variables, which the first execution already filled.
type dedupEntry struct {
	seq     uint64
	applied bool
	err     error
}

// Client is a GPU's protocol endpoint: typed operations over the GPU's
// ring transport plus the device's DMA link. The zero lane (an unbound
// client) routes to ring shard 0; Bind derives per-lane views that route
// a threadblock's traffic to its home shard.
type Client struct {
	srv   *Server
	gpuID int
	link  *pcie.Link

	t     *ringTransport
	shard int
}

// NewClient creates the RPC endpoint for one GPU, with the server's
// configured number of ring shards.
func (s *Server) NewClient(gpuID int, link *pcie.Link) *Client {
	return &Client{srv: s, gpuID: gpuID, link: link, t: newRingTransport(s, gpuID)}
}

// Bind returns a view of the client whose requests ride the ring shard
// that lane (a threadblock index) hashes to. Views share the transport —
// rings, dedup tables, counters — so Bind is cheap and safe to call per
// operation.
func (c *Client) Bind(lane int) *Client {
	shard := c.t.ShardFor(lane)
	if shard == c.shard {
		return c
	}
	view := *c
	view.shard = shard
	return &view
}

// GPUID reports the owning GPU's index.
func (c *Client) GPUID() int { return c.gpuID }

// Link returns the client's DMA link.
func (c *Client) Link() *pcie.Link { return c.link }

// Shards reports the number of request rings on this client's transport.
func (c *Client) Shards() int { return c.t.Shards() }

// Shard reports the ring shard this client view is bound to.
func (c *Client) Shard() int { return c.shard }

// ShardFor reports the ring shard the given lane hashes to. The mapping
// is stable across clients and runs.
func (c *Client) ShardFor(lane int) int { return c.t.ShardFor(lane) }

// MaxQueueDepth reports the maximum number of concurrently outstanding
// requests observed across this GPU's rings.
func (c *Client) MaxQueueDepth() int64 { return c.t.maxDepth.Load() }

// Retries reports how many retry attempts this GPU's transport has issued.
func (c *Client) Retries() int64 { return c.t.retries.Load() }

// Timeouts reports how many response timeouts this GPU's transport has
// observed.
func (c *Client) Timeouts() int64 { return c.t.timeouts.Load() }

// Completions reports how many responses the completion queue matched
// back to their request frames.
func (c *Client) Completions() int64 { return c.t.cq.Matched() }

// OutOfOrderCompletions reports how many responses were overtaken by a
// response to a later-sent request — the signature of sharded rings and
// parallel daemon workers. Always zero with one shard and one worker.
func (c *Client) OutOfOrderCompletions() int64 { return c.t.cq.OutOfOrder() }

// UnmatchedCompletions reports responses that arrived for no pending
// frame; nonzero values indicate a transport bug.
func (c *Client) UnmatchedCompletions() int64 { return c.t.cq.Unmatched() }

// invoke runs one logical request on this view's ring shard. handler
// performs the server-side work on a daemon worker's clock and returns the
// completion time of any asynchronous DMA plus the operation's error; its
// result values land in variables the caller captured.
func (c *Client) invoke(blk *simtime.Clock, op Op, handler Handler) error {
	return c.t.Submit(blk, c.shard, op, handler)
}

// Server returns the daemon this client talks to.
func (c *Client) Server() *Server { return c.srv }

// Do runs one blocking request on this view's ring shard: the block's
// clock advances to response delivery. It is the exported form of invoke
// for syscall-table handlers layered above this package (internal/gsys);
// the in-package typed operations are unchanged clients of the same path.
func (c *Client) Do(blk *simtime.Clock, op Op, handler Handler) error {
	return c.invoke(blk, op, handler)
}

// DoAsync runs one non-blocking request: it is enqueued at the block's
// current time and handled identically, but the block's clock is
// untouched and the returned time says when the response lands. Like all
// detached submissions it is never retried.
func (c *Client) DoAsync(blk *simtime.Clock, op Op, handler Handler) (simtime.Time, error) {
	return c.t.SubmitAsync(blk, c.shard, op, handler)
}

// ReadFull is the exported form of readFull for handlers layered above
// this package: it reads into staging at off, looping past injected short
// reads (n == 0 is true EOF).
func (c *Client) ReadFull(cclk *simtime.Clock, f *hostfs.File, staging []byte, off int64) (int, error) {
	return c.readFull(cclk, f, staging, off)
}

// Open opens the host file and returns a server-side descriptor handle and
// the file's metadata (size is captured at open time, per gfstat semantics).
func (c *Client) Open(blk *simtime.Clock, path string, flags int, mode hostfs.Mode) (int64, hostfs.FileInfo, error) {
	var fd int64 = -1
	var info hostfs.FileInfo
	err := c.invoke(blk, OpOpen, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.layer.FS().Open(cclk, path, flags, mode)
		if err != nil {
			return 0, err
		}
		fi, err := f.Fstat(cclk)
		if err != nil {
			f.Close()
			return 0, err
		}
		c.srv.mu.Lock()
		h := c.srv.nextFd
		c.srv.nextFd++
		c.srv.fds[h] = f
		c.srv.mu.Unlock()
		fd, info = h, fi
		return 0, nil
	})
	if err != nil {
		return -1, hostfs.FileInfo{}, err
	}
	return fd, info, nil
}

func (s *Server) file(fd int64) (*hostfs.File, error) {
	s.mu.Lock()
	f, ok := s.fds[fd]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: unknown host fd %d", fd)
	}
	return f, nil
}

// Close closes a host descriptor.
func (c *Client) Close(blk *simtime.Clock, fd int64) error {
	return c.invoke(blk, OpClose, func(cclk *simtime.Clock) (simtime.Time, error) {
		c.srv.mu.Lock()
		f, ok := c.srv.fds[fd]
		delete(c.srv.fds, fd)
		c.srv.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("rpc: unknown host fd %d", fd)
		}
		return 0, f.Close()
	})
}

// readFull reads into staging at off, looping past injected short reads
// (n == 0 is true EOF). With no injector the single pread below is already
// full-or-EOF, so the loop never iterates and the happy-path timing is
// untouched.
func (c *Client) readFull(cclk *simtime.Clock, f *hostfs.File, staging []byte, off int64) (int, error) {
	n, err := f.Pread(cclk, staging, off)
	if err != nil || n == len(staging) || !c.srv.inj.Load().Enabled() {
		return n, err
	}
	for n < len(staging) {
		m, err := f.Pread(cclk, staging[n:], off+int64(n))
		if err != nil {
			return n, err
		}
		if m == 0 {
			break // true EOF
		}
		n += m
	}
	return n, nil
}

// ReadPages reads len(dst) bytes from the host file at off and DMAs them
// into the device memory slice dst. The daemon worker performs the file
// read synchronously (ordering file accesses per ring) and then hands the
// bulk transfer to an asynchronous DMA channel; the caller's clock advances
// to DMA completion, while the worker is free as soon as the read finishes.
func (c *Client) ReadPages(blk *simtime.Clock, fd int64, off int64, dst []byte) (int, error) {
	var got int
	err := c.invoke(blk, OpReadPages, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		if c.srv.zeroCopy.Load() {
			// Zero-copy: pread lands directly in the pinned frame; the
			// DMA skips the staging pass.
			n, err := c.readFull(cclk, f, dst, off)
			if err != nil {
				return 0, err
			}
			got = n
			return c.link.ChargePinned(cclk.Now(), pcie.HostToDevice, int64(n)), nil
		}
		staging := make([]byte, len(dst)) // pinned staging buffer
		n, err := c.readFull(cclk, f, staging, off)
		if err != nil {
			return 0, err
		}
		copy(dst[:n], staging[:n])
		got = n
		return c.link.Charge(cclk.Now(), pcie.HostToDevice, int64(n)), nil
	})
	if err != nil {
		return 0, err
	}
	return got, nil
}

// ReadPagesAsync is ReadPages for prefetching: the request is enqueued at
// the block's current time and handled by a daemon worker identically, but
// the BLOCK DOES NOT WAIT — its clock is untouched and the returned
// completion time says when the prefetched page becomes usable. This is the
// buffer-cache read-ahead the paper lists among the optimizations a GPU
// buffer cache enables (§3.3). Speculative reads are not retried: there is
// no block waiting on the result, and a lost prefetch costs only the
// optimization.
func (c *Client) ReadPagesAsync(blk *simtime.Clock, fd int64, off int64, dst []byte) (int, simtime.Time, error) {
	var got int
	done, err := c.t.SubmitAsync(blk, c.shard, OpReadPages, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		if c.srv.zeroCopy.Load() {
			n, err := c.readFull(cclk, f, dst, off)
			if err != nil {
				return 0, err
			}
			got = n
			return c.link.ChargePinned(cclk.Now(), pcie.HostToDevice, int64(n)), nil
		}
		staging := make([]byte, len(dst))
		n, err := c.readFull(cclk, f, staging, off)
		if err != nil {
			return 0, err
		}
		copy(dst[:n], staging[:n])
		got = n
		return c.link.Charge(cclk.Now(), pcie.HostToDevice, int64(n)), nil
	})
	if err != nil {
		return 0, 0, err
	}
	return got, done, nil
}

// ReadPagesVecAsync is ReadPagesAsync over several CONTIGUOUS pages: one
// ring transaction, one host read covering the whole extent, and one DMA
// whose completion time every page shares. This is the coalescing that
// lets small-page sequential read-ahead amortize the per-transaction PCIe
// cost (ISSUE 4): N pages cost one poll/handle/return cycle instead of N.
// dsts are the destination frames of consecutive pages starting at off;
// the returned slice holds per-page byte counts (short at EOF). Like all
// speculative reads, the request is never retried.
func (c *Client) ReadPagesVecAsync(blk *simtime.Clock, fd int64, off int64, dsts [][]byte) ([]int, simtime.Time, error) {
	total := 0
	for _, d := range dsts {
		total += len(d)
	}
	ns := make([]int, len(dsts))
	done, err := c.t.SubmitAsync(blk, c.shard, OpReadPages, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		staging := make([]byte, total)
		n, err := c.readFull(cclk, f, staging, off)
		if err != nil {
			return 0, err
		}
		got := 0
		for i, d := range dsts {
			take := n - got
			if take > len(d) {
				take = len(d)
			}
			if take < 0 {
				take = 0
			}
			copy(d[:take], staging[got:got+take])
			ns[i] = take
			got += take
		}
		if c.srv.zeroCopy.Load() {
			// Zero-copy: the host read is a preadv over an iovec of pinned
			// frames (the staging slice above is only this simulation's
			// scattering mechanism, not a modelled copy), so the DMA skips
			// the staging pass.
			return c.link.ChargeScatterPinned(cclk.Now(), pcie.HostToDevice, int64(n), len(dsts)), nil
		}
		return c.link.ChargeScatter(cclk.Now(), pcie.HostToDevice, int64(n), len(dsts)), nil
	})
	if err != nil {
		return nil, 0, err
	}
	return ns, done, nil
}

// WritePages DMAs len(src) bytes out of device memory and writes them to
// the host file at off. The D2H transfer must complete before the file
// write begins (the daemon worker needs the bytes), so the worker's file
// access is ordered after the DMA.
func (c *Client) WritePages(blk *simtime.Clock, fd int64, off int64, src []byte) (int, error) {
	var wrote int
	err := c.invoke(blk, OpWritePages, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		staging := make([]byte, len(src))
		copy(staging, src)
		done := c.link.Charge(cclk.Now(), pcie.DeviceToHost, int64(len(src)))
		cclk.AdvanceTo(done)
		n, err := f.Pwrite(cclk, staging, off)
		wrote = n
		return 0, err
	})
	if err != nil {
		return 0, err
	}
	return wrote, nil
}

// Truncate truncates the host file behind fd.
func (c *Client) Truncate(blk *simtime.Clock, fd int64, size int64) error {
	return c.invoke(blk, OpTruncate, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		return 0, f.Ftruncate(cclk, size)
	})
}

// Unlink removes the file at path on the host.
func (c *Client) Unlink(blk *simtime.Clock, path string) error {
	return c.invoke(blk, OpUnlink, func(cclk *simtime.Clock) (simtime.Time, error) {
		return 0, c.srv.layer.FS().Unlink(path)
	})
}

// Stat returns host metadata for fd.
func (c *Client) Stat(blk *simtime.Clock, fd int64) (hostfs.FileInfo, error) {
	var info hostfs.FileInfo
	err := c.invoke(blk, OpStat, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		fi, err := f.Fstat(cclk)
		info = fi
		return 0, err
	})
	if err != nil {
		return hostfs.FileInfo{}, err
	}
	return info, nil
}

// Fsync forces the host file to stable storage (the disk), providing the
// "equivalent to fsync on CPUs" strong flush of §3.3.
func (c *Client) Fsync(blk *simtime.Clock, fd int64) error {
	return c.invoke(blk, OpFsync, func(cclk *simtime.Clock) (simtime.Time, error) {
		f, err := c.srv.file(fd)
		if err != nil {
			return 0, err
		}
		return 0, f.Fsync(cclk)
	})
}

// Validate asks the consistency layer whether the GPU's cached copy of ino
// at generation gen is still current (lazy invalidation check at gopen).
// Under fault injection a request that exhausts its retry budget reports
// "not valid" — the conservative answer, costing only a refetch.
func (c *Client) Validate(blk *simtime.Clock, ino, gen int64) bool {
	var valid bool
	err := c.invoke(blk, OpValidate, func(cclk *simtime.Clock) (simtime.Time, error) {
		valid = c.srv.layer.Validate(c.gpuID, ino, gen)
		return 0, nil
	})
	return err == nil && valid
}

// PeekValid checks the GPU's cached copy of ino against the host through
// the generation table the consistency module keeps in write-shared memory
// — a single PCIe read, with no daemon involvement (this is what makes
// reopening a closed-file-table entry cheap, §4.1/§5.1.3).
func (c *Client) PeekValid(blk *simtime.Clock, ino, gen int64) bool {
	blk.Advance(2 * simtime.Microsecond) // uncached read over the bus
	return c.srv.layer.PeekValid(c.gpuID, ino, gen)
}

// RecordCached registers this GPU as caching ino at generation gen with the
// consistency layer. Metadata-only; piggybacked on other traffic in the
// real system, so it costs no separate round trip here.
func (c *Client) RecordCached(ino, gen int64) {
	c.srv.layer.RecordCached(c.gpuID, ino, gen)
}

// Forget drops the consistency layer's record of this GPU caching ino.
func (c *Client) Forget(ino int64) {
	c.srv.layer.Forget(c.gpuID, ino)
}

// BeginWrite registers this GPU as a writer of ino (single-writer unless
// multiWriter).
func (c *Client) BeginWrite(ino int64, multiWriter bool) error {
	return c.srv.layer.BeginWrite(c.gpuID, ino, multiWriter)
}

// EndWrite releases the writer registration.
func (c *Client) EndWrite(ino int64) {
	c.srv.layer.EndWrite(c.gpuID, ino)
}
