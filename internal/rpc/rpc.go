// Package rpc implements the GPU→CPU remote procedure call infrastructure
// of GPUfs (§4.3). The GPU acts as the *client* — reversing the traditional
// GPU-as-coprocessor roles — and the host CPU runs a file server daemon.
//
// The protocol is synchronous and stateless: a threadblock writes a request
// into its GPU's FIFO ring in write-shared host memory, the CPU daemon
// discovers it by polling (today's GPUs offer no GPU-to-CPU signal), handles
// it, and the block spins on the response slot. Because PCIe offers no
// cross-bus atomics, there is no one-sided locking anywhere in the protocol:
// every interaction is a message exchange.
//
// The host side is a single-threaded, event-based daemon (modelled by a
// serialized virtual-time resource): file accesses are ordered, while bulk
// DMA transfers proceed on the link's asynchronous channels and overlap with
// subsequent request handling — exactly the paper's design. Bulk data never
// travels through the ring; the CPU DMAs it directly to or from the GPU
// buffer-cache pages whose device pointers the GPU supplied.
package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

// Op identifies a request type, mirroring the GPUfs calls that must be
// forwarded to the host.
type Op int

// Request operations.
const (
	OpOpen Op = iota
	OpClose
	OpReadPages
	OpWritePages
	OpTruncate
	OpUnlink
	OpStat
	OpFsync
	OpValidate
	numOps
)

var opNames = [...]string{"open", "close", "read", "write", "truncate", "unlink", "stat", "fsync", "validate"}

// String names the request operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Config parameterizes the RPC timing model.
type Config struct {
	// PollInterval is the mean delay before the polling CPU daemon
	// notices a newly enqueued request.
	PollInterval simtime.Duration
	// HandleCost is the CPU cost of dequeuing and dispatching a request.
	HandleCost simtime.Duration
	// ReturnLatency is the delay before the spinning GPU block observes
	// the response in write-shared memory.
	ReturnLatency simtime.Duration
}

// Server is the CPU-side GPUfs daemon: a user-level thread in the host
// application with access to the host file system and the consistency
// layer. One Server serves every GPU of the process.
type Server struct {
	cfg    Config
	layer  *wrapfs.Layer
	daemon *simtime.Resource

	mu     sync.Mutex
	fds    map[int64]*hostfs.File
	nextFd int64

	reqCount [numOps]atomic.Int64
}

// NewServer creates the host daemon over the given consistency layer.
func NewServer(cfg Config, layer *wrapfs.Layer) *Server {
	return &Server{
		cfg:    cfg,
		layer:  layer,
		daemon: simtime.NewResource("gpufs-cpu-daemon"),
		fds:    make(map[int64]*hostfs.File),
		nextFd: 3,
	}
}

// Layer returns the consistency layer the server manages.
func (s *Server) Layer() *wrapfs.Layer { return s.layer }

// Requests reports how many requests of the given op have been served.
func (s *Server) Requests(op Op) int64 { return s.reqCount[op].Load() }

// TotalRequests reports the total request count across all ops.
func (s *Server) TotalRequests() int64 {
	var n int64
	for i := range s.reqCount {
		n += s.reqCount[i].Load()
	}
	return n
}

// ResetTime returns the daemon's timeline to idle (benchmark harness use).
func (s *Server) ResetTime() { s.daemon.Reset() }

// DaemonBusy reports the daemon thread's accumulated busy time.
func (s *Server) DaemonBusy() simtime.Duration { return s.daemon.Busy() }

// Client is a GPU's endpoint: the request ring plus the device's DMA link.
type Client struct {
	srv   *Server
	gpuID int
	link  *pcie.Link

	inflight atomic.Int64
	maxDepth atomic.Int64
}

// NewClient creates the RPC endpoint for one GPU.
func (s *Server) NewClient(gpuID int, link *pcie.Link) *Client {
	return &Client{srv: s, gpuID: gpuID, link: link}
}

// GPUID reports the owning GPU's index.
func (c *Client) GPUID() int { return c.gpuID }

// Link returns the client's DMA link.
func (c *Client) Link() *pcie.Link { return c.link }

// MaxQueueDepth reports the maximum number of concurrently outstanding
// requests observed on this client's ring.
func (c *Client) MaxQueueDepth() int64 { return c.maxDepth.Load() }

// begin models enqueue + poll + dispatch: the request sent at the block's
// current time is noticed by the daemon after the poll interval, then waits
// for the single daemon thread. It returns the daemon-side clock positioned
// at the start of request handling.
func (c *Client) begin(blk *simtime.Clock, op Op) *simtime.Clock {
	c.srv.reqCount[op].Add(1)
	d := c.inflight.Add(1)
	for {
		m := c.maxDepth.Load()
		if d <= m || c.maxDepth.CompareAndSwap(m, d) {
			break
		}
	}
	arrive := blk.Now().Add(c.srv.cfg.PollInterval)
	_, end := c.srv.daemon.Acquire(arrive, c.srv.cfg.HandleCost)
	return simtime.NewClock(end)
}

// finish releases the daemon (it stays occupied from the handling slot
// through the end of the host work) and advances the block's clock to when
// it observes the response; done is the completion time of any asynchronous
// DMA belonging to the request.
func (c *Client) finish(blk, cclk *simtime.Clock, handleEnd simtime.Time, done simtime.Time) {
	c.inflight.Add(-1)
	c.srv.daemon.Occupy(handleEnd, cclk.Now())
	if cclk.Now() > done {
		done = cclk.Now()
	}
	blk.AdvanceTo(done.Add(c.srv.cfg.ReturnLatency))
}

// Open opens the host file and returns a server-side descriptor handle and
// the file's metadata (size is captured at open time, per gfstat semantics).
func (c *Client) Open(blk *simtime.Clock, path string, flags int, mode hostfs.Mode) (int64, hostfs.FileInfo, error) {
	cclk := c.begin(blk, OpOpen)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	f, err := c.srv.layer.FS().Open(cclk, path, flags, mode)
	if err != nil {
		return -1, hostfs.FileInfo{}, err
	}
	info, err := f.Fstat(cclk)
	if err != nil {
		f.Close()
		return -1, hostfs.FileInfo{}, err
	}
	c.srv.mu.Lock()
	fd := c.srv.nextFd
	c.srv.nextFd++
	c.srv.fds[fd] = f
	c.srv.mu.Unlock()
	return fd, info, nil
}

func (s *Server) file(fd int64) (*hostfs.File, error) {
	s.mu.Lock()
	f, ok := s.fds[fd]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: unknown host fd %d", fd)
	}
	return f, nil
}

// Close closes a host descriptor.
func (c *Client) Close(blk *simtime.Clock, fd int64) error {
	cclk := c.begin(blk, OpClose)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	c.srv.mu.Lock()
	f, ok := c.srv.fds[fd]
	delete(c.srv.fds, fd)
	c.srv.mu.Unlock()
	if !ok {
		return fmt.Errorf("rpc: unknown host fd %d", fd)
	}
	return f.Close()
}

// ReadPages reads len(dst) bytes from the host file at off and DMAs them
// into the device memory slice dst. The daemon performs the file read
// synchronously (ordering file accesses) and then hands the bulk transfer
// to an asynchronous DMA channel; the caller's clock advances to DMA
// completion, while the daemon is free as soon as the read finishes.
func (c *Client) ReadPages(blk *simtime.Clock, fd int64, off int64, dst []byte) (int, error) {
	cclk := c.begin(blk, OpReadPages)
	handleEnd := cclk.Now()
	var done simtime.Time
	defer func() { c.finish(blk, cclk, handleEnd, done) }()

	f, err := c.srv.file(fd)
	if err != nil {
		return 0, err
	}
	staging := make([]byte, len(dst)) // pinned staging buffer
	n, err := f.Pread(cclk, staging, off)
	if err != nil {
		return 0, err
	}
	copy(dst[:n], staging[:n])
	done = c.link.Charge(cclk.Now(), pcie.HostToDevice, int64(n))
	return n, nil
}

// ReadPagesAsync is ReadPages for prefetching: the request is enqueued at
// the block's current time and handled by the daemon identically, but the
// BLOCK DOES NOT WAIT — its clock is untouched and the returned completion
// time says when the prefetched page becomes usable. This is the
// buffer-cache read-ahead the paper lists among the optimizations a GPU
// buffer cache enables (§3.3).
func (c *Client) ReadPagesAsync(blk *simtime.Clock, fd int64, off int64, dst []byte) (int, simtime.Time, error) {
	cclk := c.begin(blk, OpReadPages)
	handleEnd := cclk.Now()
	defer func() {
		c.inflight.Add(-1)
		c.srv.daemon.Occupy(handleEnd, cclk.Now())
	}()

	f, err := c.srv.file(fd)
	if err != nil {
		return 0, 0, err
	}
	staging := make([]byte, len(dst))
	n, err := f.Pread(cclk, staging, off)
	if err != nil {
		return 0, 0, err
	}
	copy(dst[:n], staging[:n])
	done := c.link.Charge(cclk.Now(), pcie.HostToDevice, int64(n))
	return n, done, nil
}

// WritePages DMAs len(src) bytes out of device memory and writes them to
// the host file at off. The D2H transfer must complete before the file
// write begins (the daemon needs the bytes), so the daemon's file access is
// ordered after the DMA.
func (c *Client) WritePages(blk *simtime.Clock, fd int64, off int64, src []byte) (int, error) {
	cclk := c.begin(blk, OpWritePages)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	f, err := c.srv.file(fd)
	if err != nil {
		return 0, err
	}
	staging := make([]byte, len(src))
	copy(staging, src)
	done := c.link.Charge(cclk.Now(), pcie.DeviceToHost, int64(len(src)))
	cclk.AdvanceTo(done)
	return f.Pwrite(cclk, staging, off)
}

// Truncate truncates the host file behind fd.
func (c *Client) Truncate(blk *simtime.Clock, fd int64, size int64) error {
	cclk := c.begin(blk, OpTruncate)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	f, err := c.srv.file(fd)
	if err != nil {
		return err
	}
	return f.Ftruncate(cclk, size)
}

// Unlink removes the file at path on the host.
func (c *Client) Unlink(blk *simtime.Clock, path string) error {
	cclk := c.begin(blk, OpUnlink)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()
	return c.srv.layer.FS().Unlink(path)
}

// Stat returns host metadata for fd.
func (c *Client) Stat(blk *simtime.Clock, fd int64) (hostfs.FileInfo, error) {
	cclk := c.begin(blk, OpStat)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	f, err := c.srv.file(fd)
	if err != nil {
		return hostfs.FileInfo{}, err
	}
	return f.Fstat(cclk)
}

// Fsync forces the host file to stable storage (the disk), providing the
// "equivalent to fsync on CPUs" strong flush of §3.3.
func (c *Client) Fsync(blk *simtime.Clock, fd int64) error {
	cclk := c.begin(blk, OpFsync)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()

	f, err := c.srv.file(fd)
	if err != nil {
		return err
	}
	return f.Fsync(cclk)
}

// Validate asks the consistency layer whether the GPU's cached copy of ino
// at generation gen is still current (lazy invalidation check at gopen).
func (c *Client) Validate(blk *simtime.Clock, ino, gen int64) bool {
	cclk := c.begin(blk, OpValidate)
	handleEnd := cclk.Now()
	defer func() { c.finish(blk, cclk, handleEnd, 0) }()
	return c.srv.layer.Validate(c.gpuID, ino, gen)
}

// PeekValid checks the GPU's cached copy of ino against the host through
// the generation table the consistency module keeps in write-shared memory
// — a single PCIe read, with no daemon involvement (this is what makes
// reopening a closed-file-table entry cheap, §4.1/§5.1.3).
func (c *Client) PeekValid(blk *simtime.Clock, ino, gen int64) bool {
	blk.Advance(2 * simtime.Microsecond) // uncached read over the bus
	return c.srv.layer.PeekValid(c.gpuID, ino, gen)
}

// RecordCached registers this GPU as caching ino at generation gen with the
// consistency layer. Metadata-only; piggybacked on other traffic in the
// real system, so it costs no separate round trip here.
func (c *Client) RecordCached(ino, gen int64) {
	c.srv.layer.RecordCached(c.gpuID, ino, gen)
}

// Forget drops the consistency layer's record of this GPU caching ino.
func (c *Client) Forget(ino int64) {
	c.srv.layer.Forget(c.gpuID, ino)
}

// BeginWrite registers this GPU as a writer of ino (single-writer unless
// multiWriter).
func (c *Client) BeginWrite(ino int64, multiWriter bool) error {
	return c.srv.layer.BeginWrite(c.gpuID, ino, multiWriter)
}

// EndWrite releases the writer registration.
func (c *Client) EndWrite(ino int64) {
	c.srv.layer.EndWrite(c.gpuID, ino)
}
