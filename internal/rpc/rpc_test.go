package rpc

import (
	"bytes"
	"testing"

	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

func harness(t *testing.T) (*Server, *Client, *hostfs.FS) {
	t.Helper()
	host := hostfs.New(hostfs.Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      64 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
	layer := wrapfs.New(host)
	bus := pcie.New(pcie.Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, host.MemBus())
	srv := NewServer(Config{
		PollInterval:  10 * simtime.Microsecond,
		HandleCost:    12 * simtime.Microsecond,
		ReturnLatency: 2 * simtime.Microsecond,
	}, layer)
	return srv, srv.NewClient(0, bus.NewLink(0, nil, 0)), host
}

const rwMode = hostfs.ModeRead | hostfs.ModeWrite

func TestOpenReadWriteRoundTrip(t *testing.T) {
	srv, cl, host := harness(t)
	c := simtime.NewClock(0)
	want := []byte("through the ring and back")
	if err := host.WriteFile(simtime.NewClock(0), "/f", want, rwMode); err != nil {
		t.Fatal(err)
	}

	fd, info, err := cl.Open(c, "/f", hostfs.O_RDWR, rwMode)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(want)) {
		t.Fatalf("size %d", info.Size)
	}

	dst := make([]byte, len(want))
	n, err := cl.ReadPages(c, fd, 0, dst)
	if err != nil || n != len(want) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatalf("payload mismatch")
	}

	if _, err := cl.WritePages(c, fd, int64(len(want)), []byte("!")); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stat(c, fd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(want))+1 {
		t.Fatalf("after write, size %d", st.Size)
	}
	if err := cl.Close(c, fd); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(c, fd); err == nil {
		t.Fatalf("double close should fail")
	}
	if srv.Requests(OpOpen) != 1 || srv.Requests(OpReadPages) != 1 || srv.Requests(OpWritePages) != 1 {
		t.Fatalf("request counts wrong: %d %d %d",
			srv.Requests(OpOpen), srv.Requests(OpReadPages), srv.Requests(OpWritePages))
	}
	if c.Now() == 0 {
		t.Fatalf("RPCs should cost virtual time")
	}
}

func TestUnknownFd(t *testing.T) {
	_, cl, _ := harness(t)
	c := simtime.NewClock(0)
	if _, err := cl.ReadPages(c, 999, 0, make([]byte, 8)); err == nil {
		t.Fatalf("unknown fd read must fail")
	}
	if _, err := cl.Stat(c, 999); err == nil {
		t.Fatalf("unknown fd stat must fail")
	}
}

func TestTruncateAndUnlink(t *testing.T) {
	_, cl, host := harness(t)
	c := simtime.NewClock(0)
	host.WriteFile(simtime.NewClock(0), "/f", make([]byte, 100), rwMode)

	fd, _, err := cl.Open(c, "/f", hostfs.O_RDWR, rwMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Truncate(c, fd, 10); err != nil {
		t.Fatal(err)
	}
	st, _ := cl.Stat(c, fd)
	if st.Size != 10 {
		t.Fatalf("truncate: size %d", st.Size)
	}
	cl.Close(c, fd)
	if err := cl.Unlink(c, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := host.Stat("/f"); err == nil {
		t.Fatalf("file survived unlink")
	}
}

func TestDaemonSerializesRequests(t *testing.T) {
	srv, cl, host := harness(t)
	host.WriteFile(simtime.NewClock(0), "/f", make([]byte, 1<<20), rwMode)

	// Two concurrent clients issue requests at t=0; the single-threaded
	// daemon must order them.
	c1, c2 := simtime.NewClock(0), simtime.NewClock(0)
	fd1, _, _ := cl.Open(c1, "/f", hostfs.O_RDONLY, 0)
	fd2, _, _ := cl.Open(c2, "/f", hostfs.O_RDONLY, 0)
	if c1.Now() == c2.Now() {
		t.Fatalf("concurrent opens completed at the same instant: daemon not serialized")
	}
	_ = fd1
	_ = fd2
	if srv.DaemonBusy() == 0 {
		t.Fatalf("daemon busy time not accounted")
	}
}

func TestValidatePiggybacksConsistency(t *testing.T) {
	srv, cl, host := harness(t)
	c := simtime.NewClock(0)
	host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
	info, _ := host.Stat("/f")

	cl.RecordCached(info.Ino, info.Generation)
	if !cl.Validate(c, info.Ino, info.Generation) {
		t.Fatalf("validate failed for fresh record")
	}
	if srv.Requests(OpValidate) != 1 {
		t.Fatalf("validate should be a daemon request")
	}
	// PeekValid costs no daemon request.
	before := srv.TotalRequests()
	if !cl.PeekValid(c, info.Ino, info.Generation) {
		t.Fatalf("peek failed")
	}
	if srv.TotalRequests() != before {
		t.Fatalf("peek must not go through the daemon")
	}
	cl.Forget(info.Ino)
	if cl.PeekValid(c, info.Ino, info.Generation) {
		t.Fatalf("peek after forget")
	}
}

func TestWriterRegistration(t *testing.T) {
	srv, cl, host := harness(t)
	host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
	info, _ := host.Stat("/f")
	cl2 := srv.NewClient(1, cl.Link())

	if err := cl.BeginWrite(info.Ino, false); err != nil {
		t.Fatal(err)
	}
	if err := cl2.BeginWrite(info.Ino, false); err == nil {
		t.Fatalf("second exclusive writer allowed")
	}
	cl.EndWrite(info.Ino)
	if err := cl2.BeginWrite(info.Ino, false); err != nil {
		t.Fatal(err)
	}
	cl2.EndWrite(info.Ino)
}

func TestQueueDepthTracking(t *testing.T) {
	_, cl, host := harness(t)
	host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
	c := simtime.NewClock(0)
	fd, _, _ := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	cl.Close(c, fd)
	if cl.MaxQueueDepth() < 1 {
		t.Fatalf("queue depth never recorded")
	}
	if cl.GPUID() != 0 {
		t.Fatalf("gpu id")
	}
}

func TestOpString(t *testing.T) {
	if OpOpen.String() != "open" || OpReadPages.String() != "read" {
		t.Fatalf("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatalf("unknown op must render")
	}
}

func TestReadPagesAsync(t *testing.T) {
	srv, cl, host := harness(t)
	want := []byte("prefetch me")
	host.WriteFile(simtime.NewClock(0), "/f", want, rwMode)

	c := simtime.NewClock(0)
	fd, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	dst := make([]byte, len(want))
	n, done, err := cl.ReadPagesAsync(c, fd, 0, dst)
	if err != nil || n != len(want) {
		t.Fatalf("async read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatalf("payload")
	}
	if c.Now() != before {
		t.Fatalf("async read must not advance the caller's clock (moved %v)", c.Now()-before)
	}
	if done <= before {
		t.Fatalf("completion time %v not in the future of %v", done, before)
	}
	if _, _, err := cl.ReadPagesAsync(c, 999, 0, dst); err == nil {
		t.Fatalf("unknown fd must fail")
	}
	_ = srv
}
