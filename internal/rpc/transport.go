package rpc

// The transport layer: framed request/response slots over N sharded rings
// per GPU. This is layer (1) of the RPC stack —
//
//	protocol (typed ops on Client)          rpc.go
//	transport (rings, retry, dedup)         this file
//	host service (daemon worker pool)       service.go
//
// Each ring shard is an independent FIFO in write-shared host memory with
// its own sequence-number space, its own server-side dedup table, and its
// own daemon worker affinity; blocks hash to shards. Because the retry,
// timeout, and dedup protocol lives HERE rather than in the protocol
// layer, every shard inherits the failure handling unchanged, and a fault
// injected on one shard's ring (a lost response, a transient bounce)
// cannot corrupt another shard: dedup state is never shared across rings.
//
// Responses are delivered through a completion queue that matches each
// response back to its waiting request by (shard, sequence-number) frame
// id. With several shards and daemon workers, responses complete out of
// order in virtual time — a slow read on one ring does not delay a stat on
// another — and the queue keeps the evidence (see completionLog).

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gpufs/internal/faults"
	"gpufs/internal/metrics"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// Handler performs the server-side work of one request on a daemon
// worker's clock. It returns the completion time of any asynchronous DMA
// belonging to the request plus the operation's error; result payloads
// land in variables the protocol layer captured.
type Handler func(cclk *simtime.Clock) (simtime.Time, error)

// Transport moves framed request/response slots between one GPU and the
// host service. A Submit is one LOGICAL request: implementations own the
// per-request timeout, bounded-backoff retry, and sequence-number dedup,
// so the operation is applied exactly once regardless of injected faults.
type Transport interface {
	// Shards reports the number of request rings.
	Shards() int
	// ShardFor reports the ring that the given lane (threadblock index)
	// hashes to. The mapping is stable: the same lane always routes to
	// the same shard, on every client and every run.
	ShardFor(lane int) int
	// Submit sends one logical request on the given ring shard and spins
	// on its response slot: the block's clock advances to response
	// delivery.
	Submit(blk *simtime.Clock, shard int, op Op, h Handler) error
	// SubmitAsync enqueues a request without waiting (prefetch): the
	// block's clock is untouched and the returned time says when the
	// response lands. Speculative requests are never retried.
	SubmitAsync(blk *simtime.Clock, shard int, op Op, h Handler) (simtime.Time, error)
}

// ringTransport is the per-GPU transport: Shards independent rings sharing
// one DMA link and one host service.
type ringTransport struct {
	srv    *Server
	gpuID  int
	shards []*ringShard

	// inflight/maxDepth aggregate across shards: the device-wide count of
	// outstanding ring slots, which is what bounds GPU-side slot memory.
	inflight atomic.Int64
	maxDepth atomic.Int64

	retries  atomic.Int64
	timeouts atomic.Int64

	cq completionLog
}

// ringShard is one request ring: a framed FIFO with its own sequence
// space, dedup table, and daemon worker.
type ringShard struct {
	t      *ringTransport
	id     int
	worker *simtime.Resource

	// seq numbers this ring's logical requests; retries reuse the number.
	seq      atomic.Uint64
	requests atomic.Int64

	// svcTime holds this ring's per-op service-time histograms (send to
	// response observation, in virtual time); nil entries when metrics
	// are disabled.
	svcTime [numOps]*metrics.Histogram

	dedupMu sync.Mutex
	dedup   [dedupSlots]dedupEntry
}

func newRingTransport(srv *Server, gpuID int) *ringTransport {
	t := &ringTransport{srv: srv, gpuID: gpuID}
	for i := 0; i < srv.cfg.Shards; i++ {
		t.shards = append(t.shards, &ringShard{
			t: t, id: i, worker: srv.svc.workerFor(i),
		})
	}
	t.cq.init()
	if reg := srv.met; reg != nil {
		t.attachMetrics(reg)
	}
	return t
}

// attachMetrics resolves the transport's instrument handles: per-ring
// per-op service-time histograms (inline, observation-only) and snapshot
// collectors over the counters the transport already keeps.
func (t *ringTransport) attachMetrics(reg *metrics.Registry) {
	gpu := strconv.Itoa(t.gpuID)
	reg.SetHelp("gpufs_rpc_service_time_seconds",
		"Virtual send-to-response latency of one logical RPC per ring shard and op")
	reg.SetHelp("gpufs_rpc_requests_total", "Ring transactions enqueued per shard (retries count)")
	reg.SetHelp("gpufs_rpc_retries_total", "Retry attempts issued by the transport")
	reg.SetHelp("gpufs_rpc_timeouts_total", "Response timeouts observed by spinning blocks")
	reg.SetHelp("gpufs_rpc_inflight_peak", "High-water mark of concurrently outstanding ring slots")
	reg.SetHelp("gpufs_rpc_out_of_order_total", "Responses overtaken by a later-sent request's response")
	reg.SetHelp("gpufs_rpc_unmatched_total", "Responses that matched no pending frame (transport bugs)")
	for _, sh := range t.shards {
		shard := strconv.Itoa(sh.id)
		for op := Op(0); op < numOps; op++ {
			sh.svcTime[op] = reg.DurationHistogram("gpufs_rpc_service_time_seconds",
				"gpu", gpu, "shard", shard, "op", op.String())
		}
		reg.CounterFunc("gpufs_rpc_requests_total", sh.requests.Load, "gpu", gpu, "shard", shard)
	}
	reg.CounterFunc("gpufs_rpc_retries_total", t.retries.Load, "gpu", gpu)
	reg.CounterFunc("gpufs_rpc_timeouts_total", t.timeouts.Load, "gpu", gpu)
	reg.GaugeFunc("gpufs_rpc_inflight_peak", t.maxDepth.Load, "gpu", gpu)
	reg.CounterFunc("gpufs_rpc_out_of_order_total", t.cq.OutOfOrder, "gpu", gpu)
	reg.CounterFunc("gpufs_rpc_unmatched_total", t.cq.Unmatched, "gpu", gpu)
}

func (t *ringTransport) Shards() int { return len(t.shards) }

// shardMix is a splitmix64-style avalanche of the lane id, so consecutive
// block indices spread across shards instead of striping.
func shardMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *ringTransport) ShardFor(lane int) int {
	n := len(t.shards)
	if n == 1 {
		return 0
	}
	if lane < 0 {
		lane = -lane
	}
	return int(shardMix(uint64(lane)) % uint64(n))
}

// begin models enqueue + poll + dispatch on this shard's ring: the request
// sent at the block's current time is noticed by the shard's daemon worker
// after the poll interval (plus any injected extra), then waits for that
// worker. It returns the worker-side clock positioned at the start of
// request handling.
func (sh *ringShard) begin(blk *simtime.Clock, op Op, extra simtime.Duration) *simtime.Clock {
	t := sh.t
	t.srv.reqCount[op].Add(1)
	sh.requests.Add(1)
	d := t.inflight.Add(1)
	for {
		m := t.maxDepth.Load()
		if d <= m || t.maxDepth.CompareAndSwap(m, d) {
			break
		}
	}
	arrive := blk.Now().Add(t.srv.cfg.PollInterval + extra)
	_, end := sh.worker.Acquire(arrive, t.srv.cfg.HandleCost)
	return simtime.NewClock(end)
}

// finish releases the ring slot (the worker stays occupied from the
// handling slot through the end of the host work) and advances the block's
// clock to when it observes the response; done is the completion time of
// any asynchronous DMA belonging to the request.
func (sh *ringShard) finish(blk, cclk *simtime.Clock, handleEnd, done simtime.Time) {
	sh.t.inflight.Add(-1)
	sh.worker.Occupy(handleEnd, cclk.Now())
	if cclk.Now() > done {
		done = cclk.Now()
	}
	blk.AdvanceTo(done.Add(sh.t.srv.cfg.ReturnLatency))
}

// dedupLookup consults this ring's dedup table for seq.
func (sh *ringShard) dedupLookup(seq uint64) (hit bool, err error) {
	sh.dedupMu.Lock()
	e := &sh.dedup[seq%dedupSlots]
	hit, err = e.applied && e.seq == seq, e.err
	sh.dedupMu.Unlock()
	return hit, err
}

// dedupStore records that seq was applied on this ring with the given
// outcome.
func (sh *ringShard) dedupStore(seq uint64, err error) {
	sh.dedupMu.Lock()
	sh.dedup[seq%dedupSlots] = dedupEntry{seq: seq, applied: true, err: err}
	sh.dedupMu.Unlock()
}

// Submit runs one logical request on the shard. With no (enabled) fault
// injector the fast path is the plain one-attempt exchange; otherwise the
// retry protocol of the package comment applies.
func (t *ringTransport) Submit(blk *simtime.Clock, shard int, op Op, h Handler) error {
	sh := t.shards[shard]
	seq := sh.seq.Add(1)
	inj := t.srv.inj.Load()
	// Service-time observation is a pure read of the block's clock before
	// and after the exchange — never a resource acquisition — so metrics
	// cannot shift virtual timing. ObserveSpan on a nil histogram (metrics
	// disabled) is a single pointer test.
	sent := blk.Now()
	if !inj.Enabled() {
		t.cq.send(sh.id, seq, sent)
		cclk := sh.begin(blk, op, 0)
		handleEnd := cclk.Now()
		done, err := h(cclk)
		sh.finish(blk, cclk, handleEnd, done)
		t.cq.deliver(sh.id, seq, blk.Now())
		sh.svcTime[op].ObserveSpan(sent, blk.Now())
		return err
	}
	err := t.submitFaulty(blk, sh, seq, op, inj, h)
	sh.svcTime[op].ObserveSpan(sent, blk.Now())
	return err
}

// submitFaulty is Submit's slow path: timeouts, backoff, and per-shard
// dedup under fault injection.
func (t *ringTransport) submitFaulty(blk *simtime.Clock, sh *ringShard, seq uint64, op Op,
	inj *faults.Injector, h Handler) error {

	cfg := &t.srv.cfg
	t.cq.send(sh.id, seq, blk.Now())
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			t.retries.Add(1)
			// Bounded exponential backoff in virtual time before
			// re-enqueuing on the same ring with the same seq.
			d := cfg.RetryBase << uint(attempt-1)
			if d <= 0 || d > cfg.RetryMax {
				d = cfg.RetryMax
			}
			blk.Advance(d)
			inj.RecordEvent(trace.Event{
				GPU: t.gpuID, Shard: sh.id + 1, Op: trace.OpRetry, Path: op.String(),
				Start: blk.Now(), End: blk.Now(),
			})
		}
		sent := blk.Now()

		// Injected slow poll: this shard's worker notices the request
		// late.
		var extra simtime.Duration
		if inj.ShouldOn(faults.RPCPollDelay, sent, t.gpuID, sh.id+1) {
			extra = inj.Delay(faults.RPCPollDelay)
		}
		cclk := sh.begin(blk, op, extra)
		handleEnd := cclk.Now()

		if inj.ShouldOn(faults.RPCTransient, cclk.Now(), t.gpuID, sh.id+1) {
			// EAGAIN: the worker bounces the request before touching
			// the dedup table or the file system — nothing applied.
			sh.finish(blk, cclk, handleEnd, 0)
			lastErr = ErrAgain
			continue
		}

		var done simtime.Time
		var err error
		if hit, cachedErr := sh.dedupLookup(seq); hit {
			// A previous attempt applied this request but its
			// response was lost; re-deliver the cached reply without
			// re-executing (exactly-once application).
			err = cachedErr
		} else {
			done, err = h(cclk)
			sh.dedupStore(seq, err)
		}

		if inj.ShouldOn(faults.RPCDropResponse, cclk.Now(), t.gpuID, sh.id+1) {
			// The work is done but the response never reaches the
			// spinning block: the worker is still charged, the block
			// spins until its timeout, then retries.
			t.inflight.Add(-1)
			sh.worker.Occupy(handleEnd, cclk.Now())
			t.timeouts.Add(1)
			blk.AdvanceTo(sent.Add(cfg.Timeout))
			lastErr = fmt.Errorf("%w: %s shard %d seq %d", ErrTimeout, op, sh.id, seq)
			continue
		}
		if inj.ShouldOn(faults.RPCDupResponse, cclk.Now(), t.gpuID, sh.id+1) {
			// The response is delivered twice; the block consumed the
			// first copy, and the duplicate — arriving for a frame id
			// already matched by the completion queue — is discarded
			// on arrival. Counted by the injector; no semantic
			// effect, which is the point.
			_ = seq
		}
		sh.finish(blk, cclk, handleEnd, done)
		t.cq.deliver(sh.id, seq, blk.Now())
		return err
	}
	t.cq.deliver(sh.id, seq, blk.Now())
	return fmt.Errorf("%w: %s gave up after %d attempts: %v", ErrTimeout, op, cfg.MaxAttempts, lastErr)
}

// SubmitAsync enqueues a request at the block's current time without
// advancing the block's clock; the returned time says when the response
// lands. Speculative requests are never retried: no block waits on the
// result, and a lost prefetch costs only the optimization.
func (t *ringTransport) SubmitAsync(blk *simtime.Clock, shard int, op Op, h Handler) (simtime.Time, error) {
	sh := t.shards[shard]
	seq := sh.seq.Add(1)
	inj := t.srv.inj.Load()
	var extra simtime.Duration
	if inj.Enabled() && inj.ShouldOn(faults.RPCPollDelay, blk.Now(), t.gpuID, sh.id+1) {
		extra = inj.Delay(faults.RPCPollDelay)
	}
	t.cq.send(sh.id, seq, blk.Now())
	cclk := sh.begin(blk, op, extra)
	handleEnd := cclk.Now()
	var done simtime.Time
	var err error
	defer func() {
		t.inflight.Add(-1)
		sh.worker.Occupy(handleEnd, cclk.Now())
		at := done
		if at < cclk.Now() {
			at = cclk.Now()
		}
		t.cq.deliver(sh.id, seq, at)
	}()

	if inj.Enabled() && inj.ShouldOn(faults.RPCTransient, cclk.Now(), t.gpuID, sh.id+1) {
		return 0, ErrAgain
	}
	done, err = h(cclk)
	if err != nil {
		return 0, err
	}
	at := done
	if at < cclk.Now() {
		at = cclk.Now()
	}
	// Speculative requests: observe enqueue-to-response-landing.
	sh.svcTime[op].ObserveSpan(blk.Now(), at)
	return done, nil
}

// ---- Completion queue ----

// completionLog is the response side of the rings: every logical request
// registers a pending frame at send time, and its response — whenever and
// in whatever order it arrives — is matched back by (shard, seq). The log
// keeps a bounded record of (sent, delivered) pairs so out-of-order
// delivery (a later-sent request observed before an earlier-sent one) is
// measurable; see OutOfOrder.
type completionLog struct {
	mu        sync.Mutex
	pending   map[uint64]simtime.Time
	recs      []completionRec
	delivered int64
	matched   int64
	unmatched int64 // responses with no pending frame: protocol bugs
}

type completionRec struct{ sent, delivered simtime.Time }

// completionLogCap bounds the retained delivery records; totals keep
// counting beyond it.
const completionLogCap = 1 << 14

func (l *completionLog) init() { l.pending = make(map[uint64]simtime.Time) }

func frameKey(shard int, seq uint64) uint64 {
	return uint64(shard)<<48 ^ seq&(1<<48-1)
}

func (l *completionLog) send(shard int, seq uint64, at simtime.Time) {
	l.mu.Lock()
	l.pending[frameKey(shard, seq)] = at
	l.mu.Unlock()
}

func (l *completionLog) deliver(shard int, seq uint64, at simtime.Time) {
	l.mu.Lock()
	l.delivered++
	key := frameKey(shard, seq)
	sent, ok := l.pending[key]
	if !ok {
		l.unmatched++
		l.mu.Unlock()
		return
	}
	delete(l.pending, key)
	l.matched++
	if len(l.recs) < completionLogCap {
		l.recs = append(l.recs, completionRec{sent: sent, delivered: at})
	}
	l.mu.Unlock()
}

// Matched reports how many responses were matched back to their frames.
func (l *completionLog) Matched() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.matched
}

// Unmatched reports responses that arrived for no pending frame.
func (l *completionLog) Unmatched() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.unmatched
}

// OutOfOrder counts deliveries that were overtaken: responses observed at
// a virtual time LATER than some response whose request was sent strictly
// after theirs. Zero means responses arrived in send order (the serialized
// single-ring behaviour); a positive count is the signature of sharded
// rings and parallel workers.
func (l *completionLog) OutOfOrder() int64 {
	l.mu.Lock()
	recs := append([]completionRec(nil), l.recs...)
	l.mu.Unlock()

	sort.Slice(recs, func(i, j int) bool {
		if recs[i].sent != recs[j].sent {
			return recs[i].sent < recs[j].sent
		}
		return recs[i].delivered < recs[j].delivered
	})
	var ooo int64
	maxPrev := simtime.Time(-1) // max delivered among strictly-earlier sends
	groupMax := simtime.Time(-1)
	for i, r := range recs {
		if i > 0 && r.sent != recs[i-1].sent && groupMax > maxPrev {
			maxPrev = groupMax
		}
		if maxPrev >= 0 && r.delivered < maxPrev {
			ooo++
		}
		if r.delivered > groupMax {
			groupMax = r.delivered
		}
	}
	return ooo
}
