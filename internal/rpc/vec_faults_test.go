package rpc

import (
	"bytes"
	"testing"

	"gpufs/internal/faults"
	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

// vecFile stages /vec with size bytes of a deterministic pattern and
// returns its content and an open descriptor.
func vecFile(t *testing.T, cl *Client, host *hostfs.FS, size int) (int64, []byte) {
	t.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if err := host.WriteFile(simtime.NewClock(0), "/vec", data, rwMode); err != nil {
		t.Fatal(err)
	}
	fd, _, err := cl.Open(simtime.NewClock(0), "/vec", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fd, data
}

// sentinelVec builds pages destination frames of pageBytes each, filled
// with a sentinel so an untouched byte is distinguishable from a copied
// zero.
func sentinelVec(pages, pageBytes int) [][]byte {
	dsts := make([][]byte, pages)
	for i := range dsts {
		dsts[i] = bytes.Repeat([]byte{0xEE}, pageBytes)
	}
	return dsts
}

// TestReadPagesVecShortAtEOF pins the per-page count contract when the
// vector runs past end of file: full counts for covered pages, a short
// count for the page straddling EOF, zero for pages wholly past it — and
// the bytes of every untouched tail still hold the caller's sentinel.
func TestReadPagesVecShortAtEOF(t *testing.T) {
	_, cl, host := harness(t)
	const page = 1024
	fd, data := vecFile(t, cl, host, 2*page+512) // 2.5 pages

	dsts := sentinelVec(4, page)
	c := simtime.NewClock(0)
	ns, done, err := cl.ReadPagesVecAsync(c, fd, 0, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatalf("completion time %v not in the future", done)
	}
	want := []int{page, page, 512, 0}
	for i, n := range ns {
		if n != want[i] {
			t.Fatalf("page %d count = %d, want %d (ns=%v)", i, n, want[i], ns)
		}
		if n > 0 && !bytes.Equal(dsts[i][:n], data[i*page:i*page+n]) {
			t.Fatalf("page %d bytes differ from file content", i)
		}
		for j := n; j < page; j++ {
			if dsts[i][j] != 0xEE {
				t.Fatalf("page %d byte %d overwritten past the short count", i, j)
			}
		}
	}
	// Speculative reads must not advance the issuing block's clock.
	if c.Now() != 0 {
		t.Fatalf("async vec read advanced the block clock to %v", c.Now())
	}
}

// TestReadPagesVecPersistentShortReads forces EVERY host pread short
// (probability 1) and checks the daemon's reassembly loop still delivers
// the full extent: short reads are a host artifact the vec op must hide,
// not a result the GPU ever sees.
func TestReadPagesVecPersistentShortReads(t *testing.T) {
	srv, cl, host := harness(t)
	inj := faults.New(faults.Config{Seed: 7, HostShortReadProb: 1})
	srv.SetFaultInjector(inj)
	host.SetFaultInjector(inj)

	const page = 1024
	fd, data := vecFile(t, cl, host, 4*page)

	dsts := sentinelVec(4, page)
	ns, _, err := cl.ReadPagesVecAsync(simtime.NewClock(0), fd, 0, dsts)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if n != page {
			t.Fatalf("page %d count = %d under short reads, want %d", i, n, page)
		}
		if !bytes.Equal(dsts[i], data[i*page:(i+1)*page]) {
			t.Fatalf("page %d bytes differ after short-read reassembly", i)
		}
	}
	if inj.Injected(faults.HostShortRead) < 2 {
		t.Fatalf("only %d short reads injected; the reassembly loop never ran",
			inj.Injected(faults.HostShortRead))
	}
}

// TestReadPagesVecMidVectorEIO is the partial-failure oracle: short reads
// at probability 1 force the daemon's reassembly loop to issue several
// preads per vec op, and a 30% EIO rate makes some of those CONTINUATION
// preads fail — an error striking after part of the extent has already
// been read. The contract under any such fault is all-or-nothing: either
// the call succeeds with exact per-page counts and bytes, or it returns
// the error with every count zero and every destination frame untouched.
// No seed may leak a partially filled vector.
func TestReadPagesVecMidVectorEIO(t *testing.T) {
	const (
		page  = 1024
		pages = 4
		seeds = 120
	)
	var sawClean, sawFirst, sawMid int
	for seed := int64(1); seed <= seeds; seed++ {
		srv, cl, host := harness(t)
		inj := faults.New(faults.Config{
			Seed:              seed,
			HostShortReadProb: 1,
			HostReadEIOProb:   0.3,
		})
		srv.SetFaultInjector(inj)
		host.SetFaultInjector(inj)
		fd, data := vecFile(t, cl, host, pages*page)

		dsts := sentinelVec(pages, page)
		ns, _, err := cl.ReadPagesVecAsync(simtime.NewClock(0), fd, 0, dsts)
		if err == nil {
			sawClean++
			for i, n := range ns {
				if n != page {
					t.Fatalf("seed %d: clean run page %d count = %d, want %d", seed, i, n, page)
				}
				if !bytes.Equal(dsts[i], data[i*page:(i+1)*page]) {
					t.Fatalf("seed %d: clean run page %d bytes differ", seed, i)
				}
			}
			continue
		}
		// Failed run: the fault may have hit the first pread or a
		// continuation pread after bytes were already staged; the
		// caller-visible result must be identical either way.
		if inj.Injected(faults.HostReadEIO) == 0 {
			t.Fatalf("seed %d: vec read failed without an injected EIO: %v", seed, err)
		}
		if inj.Injected(faults.HostShortRead) > 0 {
			sawMid++ // a short pread landed before the EIO: mid-vector failure
		} else {
			sawFirst++
		}
		for i, n := range ns {
			if n != 0 {
				t.Fatalf("seed %d: failed vec read leaked count %d for page %d", seed, n, i)
			}
			if !bytes.Equal(dsts[i], bytes.Repeat([]byte{0xEE}, page)) {
				t.Fatalf("seed %d: failed vec read wrote into page %d", seed, i)
			}
		}
	}
	t.Logf("vec EIO oracle: %d clean, %d failed on first pread, %d failed mid-vector", sawClean, sawFirst, sawMid)
	if sawClean == 0 || sawMid == 0 {
		t.Fatalf("seed sweep unbalanced (clean=%d first=%d mid=%d); faults not exercising the mid-vector path",
			sawClean, sawFirst, sawMid)
	}
}
