package rpc

import (
	"bytes"
	"errors"
	"testing"

	"gpufs/internal/faults"
	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

// TestServerErrorPaths drives the daemon's error returns table-style:
// unknown descriptors across every fd-taking op, double close, and a
// truncation racing an in-flight read.
func TestServerErrorPaths(t *testing.T) {
	t.Run("unknown fd", func(t *testing.T) {
		_, cl, _ := harness(t)
		c := simtime.NewClock(0)
		cases := []struct {
			name string
			call func() error
		}{
			{"close", func() error { return cl.Close(c, 404) }},
			{"read", func() error { _, err := cl.ReadPages(c, 404, 0, make([]byte, 8)); return err }},
			{"readAsync", func() error { _, _, err := cl.ReadPagesAsync(c, 404, 0, make([]byte, 8)); return err }},
			{"write", func() error { _, err := cl.WritePages(c, 404, 0, []byte("x")); return err }},
			{"truncate", func() error { return cl.Truncate(c, 404, 0) }},
			{"stat", func() error { _, err := cl.Stat(c, 404); return err }},
			{"fsync", func() error { return cl.Fsync(c, 404) }},
		}
		for _, tc := range cases {
			err := tc.call()
			if err == nil {
				t.Errorf("%s on unknown fd succeeded", tc.name)
			} else if Retryable(err) || errors.Is(err, ErrTimeout) {
				t.Errorf("%s: unknown fd classified transient: %v", tc.name, err)
			}
		}
	})

	t.Run("double close", func(t *testing.T) {
		_, cl, host := harness(t)
		c := simtime.NewClock(0)
		host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
		fd, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(c, fd); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(c, fd); err == nil {
			t.Fatalf("second close of %d succeeded", fd)
		}
	})

	t.Run("truncate while read in flight", func(t *testing.T) {
		_, cl, host := harness(t)
		host.WriteFile(simtime.NewClock(0), "/f", bytes.Repeat([]byte("ab"), 4096), rwMode)
		cr, ct := simtime.NewClock(0), simtime.NewClock(0)
		fd, _, err := cl.Open(cr, "/f", hostfs.O_RDWR, rwMode)
		if err != nil {
			t.Fatal(err)
		}
		// Both requests enter the ring at the same instant; the
		// single-threaded daemon serializes them in either order. The
		// read must return a prefix of the original content (full or
		// truncated), never garbage, and never a protocol error.
		type res struct {
			n   int
			err error
		}
		readDone := make(chan res)
		dst := make([]byte, 8192)
		go func() {
			n, err := cl.ReadPages(cr, fd, 0, dst)
			readDone <- res{n, err}
		}()
		if err := cl.Truncate(ct, fd, 16); err != nil {
			t.Fatal(err)
		}
		r := <-readDone
		if r.err != nil {
			t.Fatalf("in-flight read failed: %v", r.err)
		}
		if r.n != 16 && r.n != 8192 {
			t.Fatalf("read observed a partial truncate: n=%d", r.n)
		}
		want := bytes.Repeat([]byte("ab"), 4096)
		if !bytes.Equal(dst[:r.n], want[:r.n]) {
			t.Fatalf("read returned corrupt data")
		}
	})
}

// faultyHarness is harness with an injector installed on the server.
func faultyHarness(t *testing.T, cfg faults.Config) (*Server, *Client, *hostfs.FS, *faults.Injector) {
	t.Helper()
	srv, cl, host := harness(t)
	inj := faults.New(cfg)
	srv.SetFaultInjector(inj)
	host.SetFaultInjector(inj)
	return srv, cl, host, inj
}

func TestTransientFailuresAreRetried(t *testing.T) {
	srv, cl, host, inj := faultyHarness(t, faults.Config{Seed: 1, RPCTransientProb: 0.5})
	host.WriteFile(simtime.NewClock(0), "/f", bytes.Repeat([]byte("z"), 1024), rwMode)
	c := simtime.NewClock(0)

	fd, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1024)
	for i := 0; i < 50; i++ {
		n, err := cl.ReadPages(c, fd, 0, dst)
		if err != nil || n != 1024 {
			t.Fatalf("read %d under 0.5 transient rate: n=%d err=%v", i, n, err)
		}
	}
	if cl.Retries() == 0 {
		t.Fatalf("0.5 transient rate over 50 reads caused no retries")
	}
	if inj.Injected(faults.RPCTransient) == 0 {
		t.Fatalf("injector never fired")
	}
	// Each bounced attempt is a separate ring transaction.
	if srv.Requests(OpReadPages) <= 50 {
		t.Fatalf("request count %d does not include retries", srv.Requests(OpReadPages))
	}
}

func TestDroppedResponsesDedupExactlyOnce(t *testing.T) {
	// Every write's response has a 40% chance of being lost. The client
	// retries; the server's dedup table must keep retries from re-applying
	// the pwrite. The host inode's generation counts every applied
	// mutation, so N logical writes must move it by exactly N.
	srv, cl, host, _ := faultyHarness(t, faults.Config{Seed: 2, RPCDropResponseProb: 0.4})
	srv.cfg.MaxAttempts = 12 // drive per-op give-up odds to ~0
	host.WriteFile(simtime.NewClock(0), "/f", nil, rwMode)
	before, _ := host.Stat("/f")
	c := simtime.NewClock(0)

	fd, _, err := cl.Open(c, "/f", hostfs.O_RDWR, rwMode)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 40
	for i := 0; i < writes; i++ {
		if _, err := cl.WritePages(c, fd, int64(i), []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	after, _ := host.Stat("/f")
	if got := after.Generation - before.Generation; got != writes {
		t.Fatalf("%d writes moved generation by %d: dedup broken", writes, got)
	}
	if cl.Timeouts() == 0 {
		t.Fatalf("0.4 drop rate over %d writes caused no timeouts", writes)
	}
	// Lost responses cost virtual time: each timeout spins for cfg.Timeout.
	if c.Now() < simtime.Time(srv.cfg.Timeout) {
		t.Fatalf("timeouts cost no virtual time")
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	srv, cl, host, _ := faultyHarness(t, faults.Config{Seed: 3, RPCDropResponseProb: 1.0})
	host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
	c := simtime.NewClock(0)

	_, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	if err == nil {
		t.Fatalf("open with every response dropped succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhaustion error is %v, want ErrTimeout", err)
	}
	if got := cl.Retries(); got != int64(srv.cfg.MaxAttempts-1) {
		t.Fatalf("retries = %d, want MaxAttempts-1 = %d", got, srv.cfg.MaxAttempts-1)
	}
}

func TestEIOIsNotRetried(t *testing.T) {
	// A real I/O error is a valid reply: it must come back on the first
	// attempt, not burn the retry budget.
	srv, cl, host, _ := faultyHarness(t, faults.Config{Seed: 4, HostReadEIOProb: 1.0})
	host.WriteFile(simtime.NewClock(0), "/f", []byte("data"), rwMode)
	c := simtime.NewClock(0)

	fd, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := cl.Retries()
	_, err = cl.ReadPages(c, fd, 0, make([]byte, 4))
	if !errors.Is(err, hostfs.ErrIO) {
		t.Fatalf("read error = %v, want ErrIO", err)
	}
	if cl.Retries() != base {
		t.Fatalf("EIO consumed retries")
	}
	_ = srv
}

func TestShortReadsAreCompleted(t *testing.T) {
	// The daemon's read loop must assemble full pages despite injected
	// short reads, or fillPage would zero-fill mid-file data.
	_, cl, host, inj := faultyHarness(t, faults.Config{Seed: 5, HostShortReadProb: 0.7})
	want := bytes.Repeat([]byte{0xA5, 0x5A, 0x33}, 3000)
	host.WriteFile(simtime.NewClock(0), "/f", want, rwMode)
	c := simtime.NewClock(0)

	fd, _, err := cl.Open(c, "/f", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		dst := make([]byte, len(want))
		n, err := cl.ReadPages(c, fd, 0, dst)
		if err != nil || n != len(want) {
			t.Fatalf("read %d: n=%d err=%v", i, n, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("short-read completion returned corrupt data")
		}
	}
	if inj.Injected(faults.HostShortRead) == 0 {
		t.Fatalf("short reads never fired")
	}
}

func TestHappyPathUnchangedByDisabledInjector(t *testing.T) {
	// With the injector disabled, request counts AND virtual timing must be
	// bit-identical to a server with no injector at all.
	run := func(install bool) (simtime.Time, int64) {
		srv, cl, host := harness(t)
		if install {
			inj := faults.New(faults.Config{Seed: 9, RPCDropResponseProb: 0.5})
			inj.SetEnabled(false)
			srv.SetFaultInjector(inj)
			host.SetFaultInjector(inj)
		}
		host.WriteFile(simtime.NewClock(0), "/f", bytes.Repeat([]byte("q"), 1<<16), rwMode)
		c := simtime.NewClock(0)
		fd, _, err := cl.Open(c, "/f", hostfs.O_RDWR, rwMode)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		for i := int64(0); i < 16; i++ {
			if _, err := cl.ReadPages(c, fd, i*4096, buf); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cl.WritePages(c, fd, 0, buf); err != nil {
			t.Fatal(err)
		}
		cl.Close(c, fd)
		return c.Now(), srv.TotalRequests()
	}
	bareT, bareN := run(false)
	injT, injN := run(true)
	if bareT != injT || bareN != injN {
		t.Fatalf("disabled injector perturbed the happy path: time %v vs %v, requests %d vs %d",
			bareT, injT, bareN, injN)
	}
}

func TestValidateConservativeUnderTimeout(t *testing.T) {
	_, cl, host, _ := faultyHarness(t, faults.Config{Seed: 6, RPCDropResponseProb: 1.0})
	host.WriteFile(simtime.NewClock(0), "/f", []byte("x"), rwMode)
	info, _ := host.Stat("/f")
	cl.RecordCached(info.Ino, info.Generation)
	c := simtime.NewClock(0)
	if cl.Validate(c, info.Ino, info.Generation) {
		t.Fatalf("validate with all responses lost reported valid")
	}
}
