package ckpt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randImage builds a structurally rich image from a seed, exercising
// every field including the empty/nil corners.
func randImage(seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	rs := func(n int) string {
		b := make([]byte, rng.Intn(n+1))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	rb := func(n int) []byte {
		if rng.Intn(4) == 0 {
			return nil
		}
		b := make([]byte, 1+rng.Intn(n))
		rng.Read(b)
		return b
	}
	ri64s := func(n int) []int64 {
		if rng.Intn(4) == 0 {
			return nil
		}
		vs := make([]int64, 1+rng.Intn(n))
		for i := range vs {
			vs[i] = rng.Int63n(1 << 30)
		}
		return vs
	}
	img := &Image{
		SourceHost:   int64(rng.Intn(8)) - 1,
		CaptureStart: rng.Int63n(1 << 40),
	}
	img.CaptureEnd = img.CaptureStart + rng.Int63n(1<<30)
	for g := 0; g < rng.Intn(3); g++ {
		fi := FSImage{GPU: int64(g)}
		for f := 0; f < rng.Intn(4); f++ {
			file := FileImage{
				Path:  "/data/" + rs(12),
				Ino:   rng.Int63(),
				Gen:   rng.Int63n(100),
				Size:  rng.Int63n(1 << 20),
				Flags: int64(rng.Intn(1 << 18)),
				Clean: ri64s(8),
			}
			if rng.Intn(3) == 0 {
				file.WbErr = "io: " + rs(8)
			}
			for p := 0; p < rng.Intn(4); p++ {
				file.Dirty = append(file.Dirty, PageImage{
					Index: rng.Int63n(256),
					Valid: rng.Int63n(4096),
					Data:  rb(256),
				})
			}
			fi.Files = append(fi.Files, file)
		}
		for p := 0; p < rng.Intn(3); p++ {
			prof := ProfileImage{
				Path:  "/data/" + rs(12),
				Size:  rng.Int63n(1 << 20),
				Gen:   rng.Int63n(100),
				Burst: ri64s(16),
			}
			for s := 0; s < rng.Intn(3); s++ {
				prof.Strides = append(prof.Strides, StrideImage{
					Slot:   int64(rng.Intn(4)),
					Stride: int64(rng.Intn(9) - 4),
					Window: int64(1 + rng.Intn(32)),
				})
			}
			fi.Profiles = append(fi.Profiles, prof)
		}
		img.GPUs = append(img.GPUs, fi)
	}
	for p := 0; p < rng.Intn(3); p++ {
		pipe := PipeImage{
			Name:            "pipe-" + rs(6),
			Cap:             int64(1 + rng.Intn(1<<16)),
			WritersDeclared: int64(1 + rng.Intn(4)),
			ReaderClosed:    rng.Intn(4) == 0,
			BytesIn:         rng.Int63n(1 << 20),
		}
		pipe.WritersAttached = pipe.WritersDeclared
		pipe.WritersClosed = int64(rng.Intn(int(pipe.WritersDeclared) + 1))
		pipe.BytesOut = pipe.BytesIn - rng.Int63n(pipe.BytesIn+1)
		if rng.Intn(3) == 0 {
			pipe.Broken = "checkpoint severed live writer"
		}
		for c := 0; c < rng.Intn(4); c++ {
			pipe.Chunks = append(pipe.Chunks, rb(128))
		}
		img.Pipes = append(img.Pipes, pipe)
	}
	for q := 0; q < rng.Intn(5); q++ {
		img.Queued = append(img.Queued, JobImage{
			ID:       rng.Int63n(1 << 20),
			Tenant:   "tenant-" + rs(4),
			Kind:     int64(rng.Intn(3)),
			Path:     "/data/" + rs(12),
			Word:     rs(8),
			Deadline: rng.Int63n(1 << 40),
		})
	}
	return img
}

func TestCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		img := randImage(seed)
		got, err := Decode(img.Encode())
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(img, got) {
			t.Fatalf("seed %d: round trip mismatch:\n in: %+v\nout: %+v", seed, img, got)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("not a checkpoint"),
		(&Image{}).Encode()[:3],
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: decode of garbage succeeded", i)
		}
	}
	// Trailing junk after a valid image must be rejected too.
	good := randImage(1).Encode()
	if _, err := Decode(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Error("decode accepted trailing bytes")
	}
}

func TestCodecTruncationNeverPanics(t *testing.T) {
	enc := randImage(7).Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(enc))
		}
	}
}

func TestImageAccounting(t *testing.T) {
	img := &Image{
		GPUs: []FSImage{{Files: []FileImage{{
			Dirty: []PageImage{{Data: make([]byte, 100)}, {Data: make([]byte, 28)}},
			Clean: []int64{1, 2, 3},
		}}}},
		Pipes: []PipeImage{{Chunks: [][]byte{make([]byte, 10)}}},
	}
	if got := img.Bytes(); got != 138 {
		t.Errorf("Bytes() = %d, want 138", got)
	}
	if got := img.DirtyPages(); got != 2 {
		t.Errorf("DirtyPages() = %d, want 2", got)
	}
	if got := img.CleanPages(); got != 3 {
		t.Errorf("CleanPages() = %d, want 3", got)
	}
}

// FuzzCkptImage drives the decoder with arbitrary bytes. Anything that
// decodes must re-encode and re-decode to the identical structure
// (round-trip stability) — and nothing may panic or over-allocate.
func FuzzCkptImage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GCKP"))
	for seed := int64(0); seed < 8; seed++ {
		f.Add(randImage(seed).Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		enc := img.Encode()
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded image failed: %v", err)
		}
		if !reflect.DeepEqual(img, again) {
			t.Fatalf("round trip unstable:\n first: %+v\nsecond: %+v", img, again)
		}
		if !bytes.Equal(enc, again.Encode()) {
			t.Fatal("encoding not canonical")
		}
	})
}
