package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire format: a fixed header (magic + version), then the Image
// fields in declaration order — unsigned varints for counts and
// identities, zigzag varints for signed quantities, length-prefixed raw
// bytes for strings and page payloads.
//
// Decode is hardened for fuzzing: every count is bounds-checked against
// the bytes actually remaining (an element costs at least one byte), so
// a hostile header cannot make the decoder allocate unbounded memory,
// and every truncation path returns ErrTruncated instead of panicking.

const (
	codecMagic   = 0x47434B50 // "GCKP"
	codecVersion = 1
)

// ErrTruncated is returned when the image ends mid-field.
var ErrTruncated = errors.New("ckpt: truncated image")

// ErrCorrupt is returned for a bad magic, version, or implausible count.
var ErrCorrupt = errors.New("ckpt: corrupt image")

// Encode serializes the image.
func (img *Image) Encode() []byte {
	var e enc
	e.u64(codecMagic)
	e.u64(codecVersion)
	e.i64(img.SourceHost)
	e.i64(img.CaptureStart)
	e.i64(img.CaptureEnd)

	e.u64(uint64(len(img.GPUs)))
	for i := range img.GPUs {
		g := &img.GPUs[i]
		e.i64(g.GPU)
		e.u64(uint64(len(g.Files)))
		for j := range g.Files {
			f := &g.Files[j]
			e.str(f.Path)
			e.i64(f.Ino)
			e.i64(f.Gen)
			e.i64(f.Size)
			e.i64(f.Flags)
			e.str(f.WbErr)
			e.u64(uint64(len(f.Dirty)))
			for k := range f.Dirty {
				p := &f.Dirty[k]
				e.i64(p.Index)
				e.i64(p.Valid)
				e.bytes(p.Data)
			}
			e.i64s(f.Clean)
		}
		e.u64(uint64(len(g.Profiles)))
		for j := range g.Profiles {
			p := &g.Profiles[j]
			e.str(p.Path)
			e.i64(p.Size)
			e.i64(p.Gen)
			e.i64s(p.Burst)
			e.u64(uint64(len(p.Strides)))
			for k := range p.Strides {
				s := &p.Strides[k]
				e.i64(s.Slot)
				e.i64(s.Stride)
				e.i64(s.Window)
			}
		}
	}

	e.u64(uint64(len(img.Pipes)))
	for i := range img.Pipes {
		p := &img.Pipes[i]
		e.str(p.Name)
		e.i64(p.Cap)
		e.i64(p.WritersDeclared)
		e.i64(p.WritersAttached)
		e.i64(p.WritersClosed)
		e.bool(p.ReaderClosed)
		e.str(p.Broken)
		e.u64(uint64(len(p.Chunks)))
		for _, c := range p.Chunks {
			e.bytes(c)
		}
		e.i64(p.BytesIn)
		e.i64(p.BytesOut)
	}

	e.u64(uint64(len(img.Queued)))
	for i := range img.Queued {
		j := &img.Queued[i]
		e.i64(j.ID)
		e.str(j.Tenant)
		e.i64(j.Kind)
		e.str(j.Path)
		e.str(j.Word)
		e.i64(j.Deadline)
	}
	return e.buf
}

// Decode parses an encoded image.
func Decode(data []byte) (*Image, error) {
	d := dec{buf: data}
	if d.u64() != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.u64(); v != codecVersion {
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	img := &Image{
		SourceHost:   d.i64(),
		CaptureStart: d.i64(),
		CaptureEnd:   d.i64(),
	}

	ng := d.count()
	for i := uint64(0); i < ng && d.err == nil; i++ {
		var g FSImage
		g.GPU = d.i64()
		nf := d.count()
		for j := uint64(0); j < nf && d.err == nil; j++ {
			var f FileImage
			f.Path = d.str()
			f.Ino = d.i64()
			f.Gen = d.i64()
			f.Size = d.i64()
			f.Flags = d.i64()
			f.WbErr = d.str()
			np := d.count()
			for k := uint64(0); k < np && d.err == nil; k++ {
				f.Dirty = append(f.Dirty, PageImage{
					Index: d.i64(),
					Valid: d.i64(),
					Data:  d.bytes(),
				})
			}
			f.Clean = d.i64s()
			g.Files = append(g.Files, f)
		}
		nprof := d.count()
		for j := uint64(0); j < nprof && d.err == nil; j++ {
			var p ProfileImage
			p.Path = d.str()
			p.Size = d.i64()
			p.Gen = d.i64()
			p.Burst = d.i64s()
			ns := d.count()
			for k := uint64(0); k < ns && d.err == nil; k++ {
				p.Strides = append(p.Strides, StrideImage{
					Slot:   d.i64(),
					Stride: d.i64(),
					Window: d.i64(),
				})
			}
			g.Profiles = append(g.Profiles, p)
		}
		img.GPUs = append(img.GPUs, g)
	}

	npipe := d.count()
	for i := uint64(0); i < npipe && d.err == nil; i++ {
		var p PipeImage
		p.Name = d.str()
		p.Cap = d.i64()
		p.WritersDeclared = d.i64()
		p.WritersAttached = d.i64()
		p.WritersClosed = d.i64()
		p.ReaderClosed = d.bool()
		p.Broken = d.str()
		nc := d.count()
		for j := uint64(0); j < nc && d.err == nil; j++ {
			p.Chunks = append(p.Chunks, d.bytes())
		}
		p.BytesIn = d.i64()
		p.BytesOut = d.i64()
		img.Pipes = append(img.Pipes, p)
	}

	nq := d.count()
	for i := uint64(0); i < nq && d.err == nil; i++ {
		img.Queued = append(img.Queued, JobImage{
			ID:       d.i64(),
			Tenant:   d.str(),
			Kind:     d.i64(),
			Path:     d.str(),
			Word:     d.str(),
			Deadline: d.i64(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return img, nil
}

type enc struct{ buf []byte }

func (e *enc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) str(s string) { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) bool(v bool) {
	if v {
		e.u64(1)
	} else {
		e.u64(0)
	}
}
func (e *enc) i64s(vs []int64) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.i64(v)
	}
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrTruncated
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrTruncated
		return 0
	}
	d.off += n
	return v
}

// count reads an element count, rejecting any value the remaining bytes
// cannot possibly back (each element costs at least one encoded byte).
func (d *dec) count() uint64 {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("%w: count %d exceeds remaining %d bytes",
			ErrCorrupt, n, len(d.buf)-d.off)
		return 0
	}
	return n
}

func (d *dec) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *dec) str() string { return string(d.take(d.u64())) }

func (d *dec) bytes() []byte {
	b := d.take(d.u64())
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *dec) bool() bool { return d.u64() != 0 }

func (d *dec) i64s() []int64 {
	n := d.count()
	var vs []int64
	for i := uint64(0); i < n && d.err == nil; i++ {
		vs = append(vs, d.i64())
	}
	if d.err != nil {
		return nil
	}
	return vs
}
