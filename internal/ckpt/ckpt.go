// Package ckpt defines the checkpoint image for a live gpufs host stack
// and a self-contained binary codec for it (ISSUE 10).
//
// An Image is everything a replacement host needs to impersonate a
// draining one without the tenants noticing: per-GPU buffer-cache
// contents (dirty pages by value, clean pages by reference), the
// closed-file fast-reopen table with its sticky errseq write errors, the
// history-prefetch profiles, the host-brokered pipe table, and the
// queued-job manifest handed to the fleet's exactly-once watchers.
//
// The capture protocol that fills an Image lives in internal/core (the
// copy-on-write walk) and internal/serve (the queue freeze); this package
// is deliberately leaf-level — plain data plus a codec — so that the
// image can cross any boundary (fleet node, file on disk, fuzzer corpus)
// without dragging the simulator along.
//
// Speculation rules (PhoenixOS-style validated speculation):
//
//   - Dirty pages are the correctness payload: they hold device writes
//     the host file does not have yet. They are always copied by value
//     and always restored.
//   - Clean pages are an optimization: the host file holds the same
//     bytes, so the image records only their indices and the restore
//     re-fetches them through the new host's descriptor. At commit each
//     file's (ino, generation) is validated against the live host; if
//     the host moved underneath, the clean set is dropped (restore
//     simply starts cold for that file) — never served stale.
package ckpt

import "errors"

// ErrBudget is returned by a checkpoint whose captured bytes exceed the
// configured CkptMaxBytes budget. The caller is expected to fall back to
// drain+restart.
var ErrBudget = errors.New("ckpt: image exceeds checkpoint byte budget")

// Image is a whole-host checkpoint.
type Image struct {
	// SourceHost is the fleet slot the image was captured from (-1 when
	// captured outside a fleet).
	SourceHost int64
	// CaptureStart and CaptureEnd bound the copy-on-write capture window
	// in virtual nanoseconds on the source host's timeline.
	CaptureStart int64
	CaptureEnd   int64
	// GPUs holds one FS image per GPU, index-aligned with the source
	// host's GPU numbering.
	GPUs []FSImage
	// Pipes is the host-brokered pipe table. Pipes whose writers were
	// still live at capture are marked Broken: restoring them replays the
	// declared-writer EOF protocol's failure arm (clean EPIPE), never a
	// silent truncation.
	Pipes []PipeImage
	// Queued is the manifest of jobs that were admitted but never
	// dispatched on the source. They are NOT re-executed at restore: the
	// source completed them with ErrHandedOff, and the fleet's
	// exactly-once watchers re-route each one (affinity steers them to
	// the restored host). The manifest exists for audit and metrics.
	Queued []JobImage
}

// FSImage is one GPU's buffer-cache and open-file state.
type FSImage struct {
	GPU      int64
	Files    []FileImage
	Profiles []ProfileImage
}

// FileImage is one file's cached state: identity for validation, the
// fast-reopen flags, the sticky deferred write error, and the page sets.
type FileImage struct {
	Path  string
	Ino   int64
	Gen   int64
	Size  int64
	Flags int64
	// WbErr is the file's sticky errseq write-back error ("" = none),
	// restored verbatim so the next gfsync/gclose on the new host still
	// surfaces it.
	WbErr string
	// Dirty pages carry their bytes (value capture).
	Dirty []PageImage
	// Clean holds page indices captured by reference; dropped at commit
	// if the host (ino, gen) validation fails.
	Clean []int64
}

// PageImage is one dirty page's payload.
type PageImage struct {
	Index int64
	Valid int64
	Data  []byte
}

// ProfileImage is one history-prefetch profile (ISSUE 9 detector state).
type ProfileImage struct {
	Path    string
	Size    int64
	Gen     int64
	Burst   []int64
	Strides []StrideImage
}

// StrideImage is one confirmed read-ahead detector slot.
type StrideImage struct {
	Slot   int64
	Stride int64
	Window int64
}

// PipeImage is one host-brokered pipe's state.
type PipeImage struct {
	Name            string
	Cap             int64
	WritersDeclared int64
	WritersAttached int64
	WritersClosed   int64
	ReaderClosed    bool
	// Broken, when non-empty, restores the pipe in the broken state: the
	// next read observes EPIPE before any buffered data. Live writers at
	// capture force this — their unwritten tail cannot be reconstructed,
	// and a pipe must fail loudly rather than deliver a truncated stream.
	Broken   string
	Chunks   [][]byte
	BytesIn  int64
	BytesOut int64
}

// JobImage is one queued job's manifest entry.
type JobImage struct {
	ID       int64
	Tenant   string
	Kind     int64
	Path     string
	Word     string
	Deadline int64
}

// Bytes reports the page payload captured by value across the image —
// the number the CkptMaxBytes budget is enforced against.
func (img *Image) Bytes() int64 {
	var n int64
	for i := range img.GPUs {
		for j := range img.GPUs[i].Files {
			for k := range img.GPUs[i].Files[j].Dirty {
				n += int64(len(img.GPUs[i].Files[j].Dirty[k].Data))
			}
		}
	}
	for i := range img.Pipes {
		for _, c := range img.Pipes[i].Chunks {
			n += int64(len(c))
		}
	}
	return n
}

// DirtyPages counts value-captured pages across the image.
func (img *Image) DirtyPages() int {
	n := 0
	for i := range img.GPUs {
		for j := range img.GPUs[i].Files {
			n += len(img.GPUs[i].Files[j].Dirty)
		}
	}
	return n
}

// CleanPages counts by-reference pages that survived commit validation.
func (img *Image) CleanPages() int {
	n := 0
	for i := range img.GPUs {
		for j := range img.GPUs[i].Files {
			n += len(img.GPUs[i].Files[j].Clean)
		}
	}
	return n
}
