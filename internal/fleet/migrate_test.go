package fleet

import (
	"errors"
	"strings"
	"testing"

	"gpufs"
	"gpufs/internal/ckpt"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
)

// Migration remediation tests: the migrate-first drain path and every one
// of its fallbacks. The invariant under all of them is the one the chaos
// oracle enforces statistically — no admitted job is ever lost, duplicated,
// or leaked ErrHandedOff — plus the migration-specific rules: an image is
// restored onto the replacement exactly when the capture was trustworthy,
// and every failure (capture error, byte-budget overrun, mid-snapshot
// fatal XID, restore failure) degrades to plain drain+restart, never to a
// dead slot or a cold loss.

// hostEventKinds returns the ordered event kinds logged for hostID.
func hostEventKinds(cp *ControlPlane, hostID int) []string {
	var kinds []string
	for _, ev := range cp.Events() {
		if ev.Host == hostID {
			kinds = append(kinds, ev.Kind)
		}
	}
	return kinds
}

func wantEventKinds(t *testing.T, cp *ControlPlane, hostID int, want []string) {
	t.Helper()
	kinds := hostEventKinds(cp, hostID)
	if len(kinds) != len(want) {
		t.Fatalf("host %d events %v, want %v", hostID, kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("host %d events %v, want %v", hostID, kinds, want)
		}
	}
}

// TestFleetMigrateWarmHandoff walks the happy path: a cordoned host is
// checkpointed (not just drained), the queued jobs are handed off exactly
// once via the checkpoint's freeze, and the replacement enters rotation
// with the image restored — warm — while the handed-off jobs complete
// elsewhere with one rehome each.
func TestFleetMigrateWarmHandoff(t *testing.T) {
	ff := newFakeFleet(false)
	reg := metrics.New()
	cp, err := New(Config{MigrateOnDrain: true, Metrics: reg}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	sick := ff.fake(0, 0)
	sick.AdvanceTo(simtime.Time(1000)) // a non-zero capture timestamp
	sick.SetResident("/pinned", 64)    // draw the jobs to host 0
	var futs []*Future
	for i := 0; i < 5; i++ {
		fut, err := cp.Submit("t", job("/pinned"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	if a, _, _ := sick.Counts(); a != 5 {
		t.Fatalf("affinity routed %d/5 jobs to host 0", a)
	}

	if !cp.Cordon(0, "planned migration") {
		t.Fatal("Cordon(0) refused")
	}
	cp.AwaitRemediation()

	// The old machine executed nothing: all five came back through the
	// checkpoint's handoff, exactly once.
	if _, resolved, handed := sick.Counts(); resolved != 0 || handed != 5 {
		t.Fatalf("checkpointed host resolved=%d handed=%d, want 0/5", resolved, handed)
	}
	// The replacement was restored from the image before entering rotation,
	// and the image manifests the handed-off jobs with their provenance.
	nb := ff.fake(0, 1)
	if nb == nil {
		t.Fatal("no replacement was built")
	}
	img := nb.Restored()
	if img == nil {
		t.Fatal("replacement entered rotation cold: Restore never ran")
	}
	if img.SourceHost != 0 {
		t.Fatalf("image SourceHost = %d, want 0", img.SourceHost)
	}
	if len(img.Queued) != 5 {
		t.Fatalf("image manifests %d queued jobs, want 5", len(img.Queued))
	}

	// The handed-off jobs were re-routed by their watchers and complete on
	// whichever healthy machine they landed on.
	waitFor(t, "rerouted jobs to queue", func() bool {
		n := ff.fake(1, 0).Load() + ff.fake(2, 0).Load() + nb.Load()
		return n == 5
	})
	for _, k := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
		if b := ff.fake(k[0], k[1]); b != nil {
			b.Complete(-1)
		}
	}
	for i, fut := range futs {
		res := fut.Wait()
		if res.Err != nil {
			t.Fatalf("job %d failed across migration: %v", i, res.Err)
		}
		if res.Rehomes != 1 {
			t.Fatalf("job %d rehomed %d times, want 1", i, res.Rehomes)
		}
	}

	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Migrations != 1 {
		t.Fatalf("remediations=%d migrations=%d, want 1/1", snap.Remediations, snap.Migrations)
	}
	wantEventKinds(t, cp, 0, []string{"cordon", "drain", "checkpoint", "handoff", "migrate", "replace"})
	// Metrics: one migration, no fallback, non-negative latency accounted.
	var mig, fb int64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "gpufs_fleet_migrations_total":
			mig = s.Value
		case "gpufs_fleet_ckpt_fallbacks_total":
			fb = s.Value
		}
	}
	if mig != 1 || fb != 0 {
		t.Fatalf("metrics: migrations=%d fallbacks=%d, want 1/0", mig, fb)
	}
	cp.Drain()
}

// TestFleetMigrateFallbackCheckpointError wedges the capture itself: the
// backend's Checkpoint fails before freezing anything, and the remediator
// must fall back to the plain drain — same handoff guarantees, replacement
// enters rotation cold, and the slot is healthy again. A checkpoint bug
// costs warmth, never jobs.
func TestFleetMigrateFallbackCheckpointError(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{MigrateOnDrain: true}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	sick := ff.fake(0, 0)
	sick.SetResident("/pinned", 64)
	sick.SetCheckpointErr(errors.New("capture wedged: CoW arena exhausted"))
	var futs []*Future
	for i := 0; i < 5; i++ {
		fut, err := cp.Submit("t", job("/pinned"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}

	cp.Cordon(0, "planned migration")
	cp.AwaitRemediation()

	// Fallback drained: nothing executed on the sick host, everything
	// handed off — via DrainForHandoff this time, not the checkpoint.
	if _, resolved, handed := sick.Counts(); resolved != 0 || handed != 5 {
		t.Fatalf("fallback host resolved=%d handed=%d, want 0/5", resolved, handed)
	}
	nb := ff.fake(0, 1)
	if nb == nil {
		t.Fatal("no replacement was built")
	}
	if nb.Restored() != nil {
		t.Fatal("replacement was restored from a failed capture")
	}
	waitFor(t, "rerouted jobs to queue", func() bool {
		return ff.fake(1, 0).Load()+ff.fake(2, 0).Load()+nb.Load() == 5
	})
	for _, k := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
		if b := ff.fake(k[0], k[1]); b != nil {
			b.Complete(-1)
		}
	}
	for i, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatalf("job %d lost to a checkpoint failure: %v", i, res.Err)
		}
	}
	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Migrations != 0 {
		t.Fatalf("remediations=%d migrations=%d, want 1/0", snap.Remediations, snap.Migrations)
	}
	wantEventKinds(t, cp, 0, []string{"cordon", "drain", "ckpt-failed", "handoff", "replace"})
	cp.Drain()
}

// TestFleetMigrateFatalXIDSkipsCheckpoint pins the trust gate: a host
// cordoned BY a fatal XID is never checkpointed at all — its device memory
// is suspect, so the image would be too. The remediation is the plain
// drain+restart, with no checkpoint attempt and no fallback event (there
// was nothing to fall back from).
func TestFleetMigrateFatalXIDSkipsCheckpoint(t *testing.T) {
	ff := newFakeFleet(true)
	cp, err := New(Config{MigrateOnDrain: true}, 2, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	ff.inj(0, 0).InjectXID(0, 79, 100) // fallen off the bus
	cp.AwaitRemediation()

	nb := ff.fake(0, 1)
	if nb == nil {
		t.Fatal("no replacement was built")
	}
	if nb.Restored() != nil {
		t.Fatal("an image captured from a fatally faulted device was restored")
	}
	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Migrations != 0 {
		t.Fatalf("remediations=%d migrations=%d, want 1/0", snap.Remediations, snap.Migrations)
	}
	wantEventKinds(t, cp, 0, []string{"cordon", "drain", "handoff", "replace"})
	cp.Drain()
}

// TestFleetMigrateDiscardMidSnapshotXID lands the fatal XID INSIDE the
// capture window: the cordon was benign (migration proceeds), but by the
// time the image is complete the device has fallen off the bus. The image
// overlaps memory whose integrity just failed, so it must be discarded —
// the handoff it performed still stands (exactly-once is not renegotiable)
// and the replacement enters rotation cold.
func TestFleetMigrateDiscardMidSnapshotXID(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{MigrateOnDrain: true}, 2, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	sick := ff.fake(0, 0)
	sick.SetResident("/pinned", 64)
	var futs []*Future
	for i := 0; i < 3; i++ {
		fut, err := cp.Submit("t", job("/pinned"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	// The hook fires between the checkpoint's freeze and its return: the
	// fatal XID lands mid-snapshot, and the hook does not return until the
	// health monitor has recorded it against the draining incarnation.
	inj := ff.inj(0, 0)
	sick.SetCheckpointHook(func() {
		inj.InjectXID(0, 79, 500)
		waitFor(t, "mid-snapshot XID recorded", func() bool {
			return cp.Snapshot().Hosts[0].FatalXIDs > 0
		})
	})

	cp.Cordon(0, "planned migration")
	cp.AwaitRemediation()

	nb := ff.fake(0, 1)
	if nb == nil {
		t.Fatal("no replacement was built")
	}
	if nb.Restored() != nil {
		t.Fatal("image tainted by a mid-snapshot fatal XID was restored")
	}
	// The handoff the checkpoint performed before the discard still counts:
	// the jobs re-route and complete, exactly once.
	if _, resolved, handed := sick.Counts(); resolved != 0 || handed != 3 {
		t.Fatalf("host resolved=%d handed=%d, want 0/3", resolved, handed)
	}
	waitFor(t, "rerouted jobs to queue", func() bool {
		return ff.fake(1, 0).Load()+nb.Load() == 3
	})
	for _, k := range [][2]int{{0, 1}, {1, 0}} {
		if b := ff.fake(k[0], k[1]); b != nil {
			b.Complete(-1)
		}
	}
	for i, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatalf("job %d lost to the discard: %v", i, res.Err)
		}
	}
	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Migrations != 0 {
		t.Fatalf("remediations=%d migrations=%d, want 1/0", snap.Remediations, snap.Migrations)
	}
	wantEventKinds(t, cp, 0, []string{"cordon", "drain", "ckpt-discard", "handoff", "replace"})
	cp.Drain()
}

// TestFleetMigrateBudgetWedgeRealHost wedges a REAL host's checkpoint: the
// per-host config pins CkptMaxBytes to one byte, the test dirties device
// pages with a write kernel, and the cordon's capture dies with
// ckpt.ErrBudget mid-walk. The remediator must surface the budget error in
// the fallback event and still complete the remediation — the wedged
// capture has already frozen and handed off the queue, so the fallback
// DrainForHandoff finds nothing, and no job is lost either way.
func TestFleetMigrateBudgetWedgeRealHost(t *testing.T) {
	var syss [2]*gpufs.System
	factory := SimHostFactory(SimHostConfig{
		NumGPUs: 1,
		Serve:   serve.Config{QueueDepth: 64, MaxBatch: 4},
		Tune: func(cfg *gpufs.Config) {
			cfg.CkptMaxBytes = 1 // any real page capture overruns
		},
		Setup: func(hostID, incarnation int, sys *gpufs.System) error {
			if incarnation == 0 {
				syss[hostID] = sys
			}
			return sys.WriteHostFile("/wedge", []byte("budget wedge corpus, long enough to span a page of capture"))
		},
	})
	cp, err := New(Config{MigrateOnDrain: true}, 2, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty device pages on host 0 so the capture has bytes to copy: a
	// write kernel through the full GPUfs path, left unsynced.
	if _, err := syss[0].GPU(0).Launch(0, 1, 8, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/wedge", gpufs.O_RDWR)
		if err != nil {
			return err
		}
		if _, err := c.Gwrite(fd, []byte("DIRTY"), 0); err != nil {
			return err
		}
		return c.Gclose(fd)
	}); err != nil {
		t.Fatalf("write kernel: %v", err)
	}

	cp.Cordon(0, "planned migration into a wedged budget")
	cp.AwaitRemediation()

	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Migrations != 0 {
		t.Fatalf("remediations=%d migrations=%d, want 1/0", snap.Remediations, snap.Migrations)
	}
	if h := snap.Hosts[0]; h.State != HostHealthy || h.Incarnation != 1 {
		t.Fatalf("host 0 after budget wedge: %v inc %d, want healthy inc 1", h.State, h.Incarnation)
	}
	var fallback string
	for _, ev := range cp.Events() {
		if ev.Host == 0 && ev.Kind == "ckpt-failed" {
			fallback = ev.Detail
		}
	}
	if fallback == "" {
		t.Fatalf("no ckpt-failed event; host 0 events: %v", hostEventKinds(cp, 0))
	}
	if !strings.Contains(fallback, ckpt.ErrBudget.Error()) {
		t.Fatalf("fallback event %q does not cite the budget error", fallback)
	}
	// The replaced fleet still serves: the corpus answer survives on the
	// cold replacement.
	fut, err := cp.Submit("t", serve.Job{Kind: serve.JobSearch, Path: "/wedge", Word: "corpus"})
	if err != nil {
		t.Fatalf("post-remediation submit: %v", err)
	}
	if res := fut.Wait(); res.Err != nil || res.Count != 1 {
		t.Fatalf("post-remediation job: count=%d err=%v, want 1/nil", res.Count, res.Err)
	}
	cp.Drain()
}
