package fleet

import (
	"errors"
	"hash/fnv"

	"gpufs/internal/serve"
)

// The fleet scheduler extends the per-host placement story (serve/place.go:
// jobs follow their file's pages to the GPU whose buffer cache holds them,
// spilling when the affine GPU saturates) one level up, across machines:
//
//  1. Cache affinity: the healthy host whose GPUs hold the most resident
//     pages of the job's file goes first — re-reading a warm file on the
//     host that already paid for it is the cross-machine analogue of
//     GPUfs's buffer-cache hit.
//  2. Stable home: a cold file hashes to a deterministic home host, so
//     repeated traffic for one file converges on one cache instead of
//     smearing the working set across the fleet.
//  3. Spill: a host already carrying SpillLoad outstanding fleet jobs is
//     demoted from preferred target; remaining healthy hosts are tried in
//     ascending load order, so hot files cannot capsize one machine while
//     others idle.
//
// Only Healthy hosts are ever candidates: a cordoned, draining, replacing,
// or dead host receives no traffic (the model-based conformance test pins
// this invariant).

// pathHash gives a path's stable home index basis.
func pathHash(path string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(path))
	return h.Sum32()
}

// routeOrderLocked returns the healthy hosts in placement-preference order
// for path: affinity target, then the path's stable home, then everyone
// else by ascending outstanding load (ties by id, so the order — and thus
// the whole fleet schedule — is deterministic). Nil when no host is
// healthy. cp.mu held.
func (cp *ControlPlane) routeOrderLocked(path string) []*host {
	healthy := make([]*host, 0, len(cp.hosts))
	for _, h := range cp.hosts {
		if h.state == HostHealthy {
			healthy = append(healthy, h)
		}
	}
	if len(healthy) == 0 {
		return nil
	}

	// Insertion sort by (open, id): fleets are small and the slice is
	// rebuilt per placement.
	for i := 1; i < len(healthy); i++ {
		for k := i; k > 0; k-- {
			a, b := healthy[k-1], healthy[k]
			if a.open < b.open || (a.open == b.open && a.id < b.id) {
				break
			}
			healthy[k-1], healthy[k] = b, a
		}
	}

	var preferred []*host
	// Affinity: most resident pages wins (ties keep the least-loaded,
	// which the base order already provides).
	var affine *host
	var bestPages int64
	for _, h := range healthy {
		if p := h.backend.ResidentPages(path); p > bestPages {
			affine, bestPages = h, p
		}
	}
	if affine != nil && affine.open < cp.cfg.SpillLoad {
		preferred = append(preferred, affine)
	}
	// Stable home for cold (or evicted-everywhere) files.
	home := healthy[int(pathHash(path))%len(healthy)]
	if home.open < cp.cfg.SpillLoad {
		preferred = append(preferred, home)
	}

	order := make([]*host, 0, len(healthy))
	seen := make(map[int]bool, len(healthy))
	for _, h := range append(preferred, healthy...) {
		if !seen[h.id] {
			seen[h.id] = true
			order = append(order, h)
		}
	}
	return order
}

// placeLocked routes one job: it tries each healthy host in preference
// order and returns the first admission. A host rejecting with serve's
// OverloadError (that tenant's queue is full there) just moves the probe
// along; if every healthy host is overloaded the first such rejection —
// from the host the job actually wanted — is returned with its RetryAfter
// hint intact. Non-overload rejections (malformed job, a host caught
// mid-drain) are returned immediately. cp.mu held; backend Submit never
// calls back into the control plane, so holding the lock across it is
// safe.
func (cp *ControlPlane) placeLocked(j *fleetJob) (*host, *serve.Future, error) {
	order := cp.routeOrderLocked(j.spec.Path)
	if len(order) == 0 {
		return nil, nil, ErrNoHealthyHosts
	}
	var overload error
	for _, h := range order {
		sfut, err := h.backend.Submit(j.tenant, j.spec)
		if err == nil {
			h.open++
			cp.met.openJobs.Add(1)
			return h, sfut, nil
		}
		if errors.Is(err, serve.ErrOverloaded) {
			if overload == nil {
				overload = err
			}
			continue
		}
		if errors.Is(err, serve.ErrDraining) {
			// The monitor cordoned this host between our state check and
			// the submit — treat as not-a-candidate and move on.
			continue
		}
		return nil, nil, err
	}
	if overload == nil {
		// Every candidate vanished mid-probe (all caught draining).
		return nil, nil, ErrNoHealthyHosts
	}
	return nil, nil, overload
}
