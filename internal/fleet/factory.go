package fleet

import (
	"fmt"

	"gpufs"
	"gpufs/internal/faults"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
)

// SimHostConfig describes how SimHostFactory builds each simulated host:
// one gpufs.System (the machine) wrapped by one serve.Server (the serving
// frontend), exactly the stack cmd/gpufs-serve runs single-host.
type SimHostConfig struct {
	// Scale is the gpufs.ScaledConfig factor per host. Default 1/256 (the
	// test scale: hosts are cheap enough to build fleets of).
	Scale float64
	// NumGPUs per host; 0 keeps the scaled config's default.
	NumGPUs int
	// Serve tunes each host's server.
	Serve serve.Config
	// Tune, when non-nil, adjusts the scaled per-host gpufs.Config just
	// before the system is built (after Scale and NumGPUs are applied).
	// Chaos tests use it to pin pathological knobs — e.g. a CkptMaxBytes
	// of a few bytes to wedge every checkpoint mid-capture.
	Tune func(cfg *gpufs.Config)
	// Faults, when non-nil, enables fault injection on every host, with
	// the seed re-derived per (host, incarnation) so each machine — and
	// each replacement machine — lives its own deterministic fault
	// history. A replaced host does not replay its predecessor's faults.
	Faults *faults.Config
	// Setup populates a freshly built host (corpus files, warmup) before
	// it takes traffic. Replacement hosts run it too: a real replacement
	// re-syncs its data from durable storage; the simulated one rewrites
	// its corpus.
	Setup func(hostID, incarnation int, sys *gpufs.System) error
	// Metrics, when non-nil, is attached to every host system and server,
	// aggregating the whole fleet's serving metrics into one registry
	// (the multi-System idiom from internal/metrics). Fleet-level gauges
	// come from Config.Metrics on the control plane, typically the same
	// registry.
	Metrics *metrics.Registry
}

// hostFaultSeed derives a host incarnation's fault seed from the base:
// distinct per slot and per replacement, stable across runs.
func hostFaultSeed(base int64, hostID, incarnation int) int64 {
	return base + int64(hostID)*1_000_003 + int64(incarnation)*7_919
}

// SimHostFactory returns a HostFactory that builds full simulated hosts.
// The factory is deterministic: (hostID, incarnation) fixes the machine's
// configuration, corpus, and fault schedule.
func SimHostFactory(hc SimHostConfig) HostFactory {
	return func(hostID, incarnation int) (serve.Backend, *faults.Injector, error) {
		scale := hc.Scale
		if scale <= 0 {
			scale = 1.0 / 256
		}
		cfg := gpufs.ScaledConfig(scale)
		if hc.NumGPUs > 0 {
			cfg.NumGPUs = hc.NumGPUs
		}
		if hc.Tune != nil {
			hc.Tune(&cfg)
		}
		sys, err := gpufs.NewSystemWithMetrics(cfg, hc.Metrics)
		if err != nil {
			return nil, nil, fmt.Errorf("host %d inc %d: %w", hostID, incarnation, err)
		}
		var inj *faults.Injector
		if hc.Faults != nil {
			fc := *hc.Faults
			fc.Seed = hostFaultSeed(fc.Seed, hostID, incarnation)
			inj = sys.EnableFaults(fc)
		}
		if hc.Setup != nil {
			if err := hc.Setup(hostID, incarnation, sys); err != nil {
				return nil, nil, fmt.Errorf("host %d inc %d setup: %w", hostID, incarnation, err)
			}
		}
		return serve.New(sys, hc.Serve), inj, nil
	}
}
