package fleet

import (
	"gpufs/internal/faults"
	"gpufs/internal/metrics"
)

// fleetMetrics are the control plane's instrument handles (gpufs_fleet_*,
// DESIGN.md §11). Built once at New; every handle is nil when no registry
// was configured, and the instruments are nil-safe, so the hooks cost one
// pointer test in that case — the same idiom as serveMetrics.
type fleetMetrics struct {
	admitted   *metrics.Counter // gpufs_fleet_jobs_total{outcome=admitted}
	succeeded  *metrics.Counter // gpufs_fleet_jobs_total{outcome=succeeded}
	failedJobs *metrics.Counter // gpufs_fleet_jobs_total{outcome=failed}
	rebalanced *metrics.Counter // jobs re-routed across hosts
	cordons    *metrics.Counter // hosts condemned by the monitor or operator
	handoffs   *metrics.Counter // queued jobs returned by draining hosts
	// remediations counts completed cordon→drain→replace cycles.
	remediations *metrics.Counter
	// migrations counts replacements that entered rotation warm from a
	// restored checkpoint image; ckptFallbacks counts remediations that
	// intended to migrate but fell back to drain+restart (capture error,
	// budget overrun, mid-snapshot fatal XID, or restore failure).
	migrations    *metrics.Counter
	ckptFallbacks *metrics.Counter
	// migrationNs accumulates virtual migration latency (capture window
	// plus restore time) in nanoseconds across successful migrations.
	migrationNs *metrics.Counter
	// xidEvents counts device error events by severity.
	xidEvents map[faults.XIDSeverity]*metrics.Counter
	// openJobs tracks fleet jobs currently placed on some host.
	openJobs *metrics.Gauge
}

// newFleetMetrics resolves the fleet instrument handles in reg and
// registers the per-state host gauges, which read the control plane's
// live host table at snapshot time. A nil reg yields all-nil handles.
func newFleetMetrics(reg *metrics.Registry, cp *ControlPlane) *fleetMetrics {
	m := &fleetMetrics{xidEvents: make(map[faults.XIDSeverity]*metrics.Counter)}
	if reg == nil {
		return m
	}
	reg.SetHelp("gpufs_fleet_hosts", "Hosts by remediation state.")
	reg.SetHelp("gpufs_fleet_jobs_total", "Fleet job admissions and outcomes.")
	reg.SetHelp("gpufs_fleet_rebalanced_total", "Jobs re-routed across hosts (handoffs plus sick-host retries).")
	reg.SetHelp("gpufs_fleet_cordons_total", "Hosts removed from rotation by the health monitor or operator.")
	reg.SetHelp("gpufs_fleet_handoffs_total", "Queued jobs handed back by draining hosts for re-routing.")
	reg.SetHelp("gpufs_fleet_remediations_total", "Completed cordon-drain-replace cycles.")
	reg.SetHelp("gpufs_fleet_migrations_total", "Replacements restored warm from a checkpoint image.")
	reg.SetHelp("gpufs_fleet_ckpt_fallbacks_total", "Migrate-first remediations that fell back to drain+restart.")
	reg.SetHelp("gpufs_fleet_migration_latency_ns_total", "Virtual migration latency (capture + restore), summed.")
	reg.SetHelp("gpufs_fleet_xid_events_total", "Device XID error events by severity.")
	reg.SetHelp("gpufs_fleet_open_jobs", "Fleet jobs currently placed on a host.")

	for st := HostHealthy; st < numHostStates; st++ {
		st := st
		reg.GaugeFunc("gpufs_fleet_hosts",
			func() int64 { return cp.countState(st) }, "state", st.String())
	}
	m.admitted = reg.Counter("gpufs_fleet_jobs_total", "outcome", "admitted")
	m.succeeded = reg.Counter("gpufs_fleet_jobs_total", "outcome", "succeeded")
	m.failedJobs = reg.Counter("gpufs_fleet_jobs_total", "outcome", "failed")
	m.rebalanced = reg.Counter("gpufs_fleet_rebalanced_total")
	m.cordons = reg.Counter("gpufs_fleet_cordons_total")
	m.handoffs = reg.Counter("gpufs_fleet_handoffs_total")
	m.remediations = reg.Counter("gpufs_fleet_remediations_total")
	m.migrations = reg.Counter("gpufs_fleet_migrations_total")
	m.ckptFallbacks = reg.Counter("gpufs_fleet_ckpt_fallbacks_total")
	m.migrationNs = reg.Counter("gpufs_fleet_migration_latency_ns_total")
	for _, sev := range []faults.XIDSeverity{faults.XIDWarn, faults.XIDCritical, faults.XIDFatal} {
		m.xidEvents[sev] = reg.Counter("gpufs_fleet_xid_events_total", "severity", sev.String())
	}
	m.openJobs = reg.Gauge("gpufs_fleet_open_jobs")
	return m
}
