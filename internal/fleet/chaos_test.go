package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpufs"
	"gpufs/internal/faults"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// The fleet chaos oracle (the PR-1 many-seed harness, lifted to the
// cluster): real simulated hosts serve real kernels while a seeded chaos
// driver kills and degrades random machines mid-traffic — fatal XIDs,
// critical-XID bursts, wedged devices, plus each host's own background
// fault schedule. The contract under fire:
//
//   - Every admitted job is delivered exactly once: success with the
//     oracle's answer, or a classified error. Never a hang (per-seed
//     watchdog), never a silent loss, never a double delivery, and never
//     an internal routing signal (ErrHandedOff) leaking to a client.
//   - Dedup holds across re-routing: handed-off jobs re-execute on their
//     new host only; in-flight jobs finish where they started.
//   - The fleet always settles: Drain terminates with the books balanced.

// chaosCorpus is built once (deterministic texts + expected counts) and
// written into every host the factory builds.
type chaosCorpus struct {
	paths []string
	texts [][]byte
	words []string
	grep  map[string]int64
}

var (
	chaosOnce sync.Once
	chaosData *chaosCorpus
)

func getChaosCorpus() *chaosCorpus {
	chaosOnce.Do(func() {
		dict := workloads.MakeDictionary(200)
		c := &chaosCorpus{grep: make(map[string]int64)}
		for i := 0; i < 6; i++ {
			c.words = append(c.words, workloads.MakeWord(i*17))
		}
		for i := 0; i < 6; i++ {
			path := fmt.Sprintf("/chaos/f%d.txt", i)
			text := workloads.MakeText(4<<10, workloads.TextSpec{
				Dict: dict, DictFraction: 0.8, Seed: int64(9000 + i),
			})
			c.paths = append(c.paths, path)
			c.texts = append(c.texts, text)
			for _, w := range c.words {
				c.grep[path+"\x00"+w] = int64(workloads.CountWord(text, w))
			}
		}
		chaosData = c
	})
	return chaosData
}

// chaosHosts wraps SimHostFactory, retaining each incarnation's system and
// injector so the chaos driver can attack the machine currently in the
// slot.
type chaosHosts struct {
	mu   sync.Mutex
	injs map[int]*faults.Injector
	syss map[int]*gpufs.System
}

func (ch *chaosHosts) factory(seed int64) HostFactory {
	c := getChaosCorpus()
	inner := SimHostFactory(SimHostConfig{
		NumGPUs: 1,
		Serve:   serve.Config{QueueDepth: 32, MaxBatch: 8, MaxAttempts: 3},
		Faults: &faults.Config{
			Seed:              seed,
			RPCTransientProb:  0.01,
			RPCPollDelayProb:  0.02,
			HostShortReadProb: 0.01,
			DiskStallProb:     0.02,
			GPUXIDProb:        0.02, // organic background XID noise
		},
		Setup: func(hostID, incarnation int, sys *gpufs.System) error {
			for i, p := range c.paths {
				if err := sys.WriteHostFile(p, c.texts[i]); err != nil {
					return err
				}
			}
			ch.mu.Lock()
			ch.syss[hostID] = sys
			ch.mu.Unlock()
			return nil
		},
	})
	return func(hostID, incarnation int) (serve.Backend, *faults.Injector, error) {
		b, inj, err := inner(hostID, incarnation)
		if err == nil {
			ch.mu.Lock()
			ch.injs[hostID] = inj
			ch.mu.Unlock()
		}
		return b, inj, err
	}
}

func (ch *chaosHosts) attack(rng *rand.Rand, hostID int) string {
	ch.mu.Lock()
	inj := ch.injs[hostID]
	sys := ch.syss[hostID]
	ch.mu.Unlock()
	switch rng.Intn(3) {
	case 0: // kill: the device falls off the bus
		inj.InjectXID(0, 79, simtime.Time(rng.Int63n(1e9)))
		return "fatal-xid"
	case 1: // erode: a burst of critical GSP timeouts
		for i := 0; i < 4; i++ {
			inj.InjectXID(0, 119, simtime.Time(rng.Int63n(1e9)))
		}
		return "critical-burst"
	default: // degrade: wedge the device so launches fault
		if sys != nil {
			sys.GPU(0).Device().InjectFault(errors.New("chaos: wedged device"))
		}
		return "wedge"
	}
}

// TestFleetChaosOracle runs the many-seed sweep. With
// GPUFS_MIGRATE_ON_DRAIN=1 in the environment (the nightly CI
// configuration) every seed runs migrate-first — the same exactly-once
// contract must hold with live checkpoint/restore on the drain path.
func TestFleetChaosOracle(t *testing.T) {
	runChaosSweep(t, os.Getenv("GPUFS_MIGRATE_ON_DRAIN") == "1")
}

// TestFleetChaosOracleMigrate is the migrate-first sweep, always on: every
// remediation of a host without a fatal XID checkpoints the live server
// mid-traffic (copy-on-write capture racing in-flight batches) and
// restores the image onto the replacement. The oracle is unchanged — the
// answers a migrated fleet delivers must equal the undisturbed corpus
// counts, exactly once per admitted job — so any page the migration
// corrupted, lost, or resurrected stale shows up as a wrong grep count.
func TestFleetChaosOracleMigrate(t *testing.T) {
	runChaosSweep(t, true)
}

func runChaosSweep(t *testing.T, migrate bool) {
	seeds := 300
	if testing.Short() {
		seeds = 25
	}
	// GPUFS_FLEET_SEEDS overrides the sweep depth; nightly CI runs the
	// migrate-first oracle at 500 seeds.
	if v := os.Getenv("GPUFS_FLEET_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			seeds = n
		}
	}
	var totalRemediations, totalRebalanced, totalFailed, totalMigrations atomic.Int64
	t.Run("seeds", func(t *testing.T) {
		for seed := 0; seed < seeds; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				rem, reb, failed, mig := runChaosSeed(t, int64(seed), migrate)
				totalRemediations.Add(rem)
				totalRebalanced.Add(reb)
				totalFailed.Add(failed)
				totalMigrations.Add(mig)
			})
		}
	})
	// Vacuousness guard: across the sweep the chaos must actually have
	// forced remediations and re-routing, or the oracle proved nothing.
	if totalRemediations.Load() == 0 {
		t.Fatal("no remediation across the whole sweep; chaos is vacuous")
	}
	if totalRebalanced.Load() == 0 {
		t.Fatal("no job was ever re-routed; handoff path untested")
	}
	if migrate && totalMigrations.Load() == 0 {
		t.Fatal("migrate-first sweep never migrated; checkpoint path untested")
	}
	t.Logf("chaos sweep: %d seeds, %d remediations (%d migrations), %d jobs re-routed, %d classified failures",
		seeds, totalRemediations.Load(), totalMigrations.Load(), totalRebalanced.Load(), totalFailed.Load())
}

func runChaosSeed(t *testing.T, seed int64, migrate bool) (remediations, rebalanced, failed, migrations int64) {
	const (
		numHosts      = 3
		numTenants    = 3
		jobsPerTenant = 12
		outstanding   = 6
	)
	c := getChaosCorpus()
	rng := rand.New(rand.NewSource(seed))
	ch := &chaosHosts{injs: make(map[int]*faults.Injector), syss: make(map[int]*gpufs.System)}
	cp, err := New(Config{
		MaxRehomes:       6,
		CriticalXIDLimit: 3,
		MigrateOnDrain:   migrate,
	}, numHosts, ch.factory(seed))
	if err != nil {
		t.Fatal(err)
	}

	type delivery struct {
		spec serve.Job
		res  Result
	}
	deliveries := make(chan delivery, numTenants*jobsPerTenant)
	var admitted atomic.Int64

	var traffic sync.WaitGroup
	for ti := 0; ti < numTenants; ti++ {
		traffic.Add(1)
		go func(ti int) {
			defer traffic.Done()
			trng := rand.New(rand.NewSource(seed*1000 + int64(ti)))
			tenant := fmt.Sprintf("t%d", ti)
			sem := make(chan struct{}, outstanding)
			var inner sync.WaitGroup
			for ji := 0; ji < jobsPerTenant; ji++ {
				spec := serve.Job{
					Kind: serve.JobGrep,
					Path: c.paths[trng.Intn(len(c.paths))],
					Word: c.words[trng.Intn(len(c.words))],
				}
				sem <- struct{}{}
				var fut *Future
				for {
					var err error
					fut, err = cp.Submit(tenant, spec)
					if err == nil {
						break
					}
					if errors.Is(err, ErrNoHealthyHosts) || errors.Is(err, serve.ErrOverloaded) {
						// Transient no-capacity window (mid-remediation)
						// or queue full: back off and retry. These jobs
						// were never admitted, so they are not owed a
						// result.
						runtime.Gosched()
						continue
					}
					t.Errorf("seed %d: submit: %v", seed, err)
					<-sem
					return
				}
				admitted.Add(1)
				inner.Add(1)
				go func(spec serve.Job, fut *Future) {
					defer inner.Done()
					deliveries <- delivery{spec, fut.Wait()}
					<-sem
				}(spec, fut)
			}
			inner.Wait()
		}(ti)
	}

	// The chaos driver: a few attacks spread across the traffic window.
	var chaos sync.WaitGroup
	chaos.Add(1)
	attacks := 1 + rng.Intn(3)
	go func() {
		defer chaos.Done()
		for i := 0; i < attacks; i++ {
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			ch.attack(rng, rng.Intn(numHosts))
			// Tick the organic schedule too, against random hosts.
			cp.PumpXID(rng.Intn(numHosts), 4)
		}
	}()

	// Never hangs: the whole seed — traffic, chaos, drain — under a
	// watchdog.
	done := make(chan struct{})
	go func() {
		traffic.Wait()
		chaos.Wait()
		cp.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("seed %d: fleet hung (traffic or drain never finished)", seed)
	}
	close(deliveries)

	// Exactly-once, classified, correct.
	var delivered, failures int64
	for d := range deliveries {
		delivered++
		if d.res.Err != nil {
			failures++
			if errors.Is(d.res.Err, serve.ErrHandedOff) {
				t.Errorf("seed %d: ErrHandedOff leaked to a client", seed)
			}
			continue
		}
		want := c.grep[d.spec.Path+"\x00"+d.spec.Word]
		if d.res.Count != want {
			t.Errorf("seed %d: grep %q in %s = %d, want %d (host %d, %d rehomes)",
				seed, d.spec.Word, d.spec.Path, d.res.Count, want, d.res.Host, d.res.Rehomes)
		}
	}
	if delivered != admitted.Load() {
		t.Errorf("seed %d: %d admitted, %d delivered — jobs lost or duplicated",
			seed, admitted.Load(), delivered)
	}
	snap := cp.Snapshot()
	if snap.Delivered() != snap.Admitted {
		t.Errorf("seed %d: fleet books unbalanced: admitted=%d delivered=%d",
			seed, snap.Admitted, snap.Delivered())
	}
	return snap.Remediations, snap.Rebalanced, failures, snap.Migrations
}
