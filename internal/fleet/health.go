package fleet

import (
	"fmt"
	"sort"

	"gpufs/internal/faults"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
)

// The health monitor condemns hosts from three signal families, all on
// virtual time (no wall-clock timers — a paused simulation never
// false-positives):
//
//   - XID events, pushed by each host's fault layer. Fatal codes (GPU off
//     the bus, uncontained ECC) cordon immediately; critical codes (GSP
//     timeouts, contained ECC) cordon after CriticalXIDLimit on one
//     incarnation; warnings only count.
//   - Latency: a per-host EWMA of job admission→completion time. A host
//     whose smoothed latency exceeds LatencyFactor× the median of its
//     healthy peers is degraded — still answering, but so slowly it drags
//     every tenant routed to it.
//   - Heartbeat: each completion anywhere is one fleet heartbeat. A host
//     holding outstanding jobs that misses StallProbes consecutive beats
//     has stopped making progress and is cordoned as stalled.
//
// Every signal is tagged with the host incarnation it was observed on;
// signals from a machine that has since been replaced are dropped, so a
// fresh incarnation starts with a clean record and cannot be condemned by
// its predecessor's sins.

// onXID is the injector subscription callback: classify, count, condemn.
func (cp *ControlPlane) onXID(hostID, incarnation int, ev faults.XIDEvent) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	h := cp.hosts[hostID]
	if h.incarnation != incarnation {
		return // straggler from a replaced machine
	}
	sev := ev.Severity()
	cp.met.xidEvents[sev].Inc()
	switch sev {
	case faults.XIDWarn:
		h.health.warnXIDs++
	case faults.XIDCritical:
		h.health.criticalXIDs++
		if h.state == HostHealthy && h.health.criticalXIDs >= int64(cp.cfg.CriticalXIDLimit) {
			cp.cordonLocked(h, fmt.Sprintf("%d critical XIDs, last: %v", h.health.criticalXIDs, ev))
		}
	default: // fatal
		h.health.fatalXIDs++
		if h.state == HostHealthy {
			cp.cordonLocked(h, ev.String())
		}
	}
}

// noteCompletion feeds one successful-or-failed host completion into the
// latency EWMA and the fleet heartbeat. Handed-off jobs never reach here
// (they did not execute), so the signals measure real service.
func (cp *ControlPlane) noteCompletion(h *host, incarnation int, res serve.Result) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if h.incarnation != incarnation {
		return
	}
	hh := &h.health
	if lat := res.Done.Sub(res.Enqueued); lat > 0 {
		if hh.latSamples == 0 {
			hh.latEWMA = lat
		} else {
			hh.latEWMA = (hh.latEWMA*7 + lat) / 8
		}
		hh.latSamples++
	}
	hh.beatsMissed = 0

	if cp.cfg.StallProbes > 0 {
		for _, o := range cp.hosts {
			if o == h || o.state != HostHealthy || o.open == 0 {
				continue
			}
			o.health.beatsMissed++
			if o.health.beatsMissed >= cp.cfg.StallProbes {
				cp.cordonLocked(o, fmt.Sprintf(
					"stalled: %d outstanding jobs, no completion in %d fleet beats",
					o.open, o.health.beatsMissed))
			}
		}
	}
	cp.checkLatencyLocked(h)
}

// PumpXID consumes n ticks of hostID's organic XID schedule against the
// host's current virtual time — the hook chaos drivers and the demo loop
// use to let seeded device errors surface between batches. Events fan out
// to the health monitor through the normal subscription path. No-op for
// hosts without an injector, or dead hosts.
func (cp *ControlPlane) PumpXID(hostID, n int) {
	cp.mu.Lock()
	if hostID < 0 || hostID >= len(cp.hosts) {
		cp.mu.Unlock()
		return
	}
	h := cp.hosts[hostID]
	inj := h.inj
	if h.state == HostDead || inj == nil {
		cp.mu.Unlock()
		return
	}
	now := h.backend.Now()
	gpus := h.backend.NumGPUs()
	cp.mu.Unlock()
	// Unlocked: delivery re-enters the control plane via onXID.
	for i := 0; i < n; i++ {
		inj.MaybeXID(i%gpus, now)
	}
}

// checkLatencyLocked cordons h as degraded if its latency EWMA is an
// extreme outlier against the healthy-peer median. Both h and enough
// peers must have LatencyMinSamples observations — one slow job on a
// cold host proves nothing.
func (cp *ControlPlane) checkLatencyLocked(h *host) {
	if h.state != HostHealthy || h.health.latSamples < cp.cfg.LatencyMinSamples {
		return
	}
	var peers []simtime.Duration
	for _, o := range cp.hosts {
		if o == h || o.state != HostHealthy || o.health.latSamples < cp.cfg.LatencyMinSamples {
			continue
		}
		peers = append(peers, o.health.latEWMA)
	}
	if len(peers) == 0 {
		return // nothing to compare against; a one-host fleet is its own normal
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	median := peers[len(peers)/2]
	if median > 0 && float64(h.health.latEWMA) > cp.cfg.LatencyFactor*float64(median) {
		cp.cordonLocked(h, fmt.Sprintf("degraded: latency EWMA %v > %gx fleet median %v",
			h.health.latEWMA, cp.cfg.LatencyFactor, median))
	}
}
