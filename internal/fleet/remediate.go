package fleet

import "fmt"

// The remediation loop. One goroutine walks cordoned hosts through
//
//	Cordoned ─▶ Draining ─▶ Replacing ─▶ Healthy (or Dead)
//
// while the frontend keeps admitting traffic to the rest of the fleet:
//
//   - Draining calls the backend's DrainForHandoff WITHOUT the control
//     plane lock — admission, routing, and snapshots proceed throughout.
//     Jobs the host had queued but never launched come back completed
//     with serve.ErrHandedOff; their fleet watchers re-route each one to
//     a healthy host. Jobs already in flight finish where they are (their
//     results are valid — the kernels are read-only — and re-executing
//     them elsewhere would double-run work the exactly-once story
//     forbids).
//   - Replacing calls the host factory, also without the lock (a real
//     factory provisions a machine; even the simulated one builds a whole
//     gpufs.System). Success installs the new backend under a bumped
//     incarnation with a clean health record; failure marks the slot
//     Dead, and the fleet runs on at reduced capacity.
//
// Cordoning is a one-way door per incarnation: once a host leaves
// Healthy, only a successful replacement brings traffic back to the slot.

// Cordon manually cordons a healthy host (the operator's knob; the chaos
// tests' kill switch). It reports false if the id is out of range or the
// host already left Healthy.
func (cp *ControlPlane) Cordon(hostID int, reason string) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if hostID < 0 || hostID >= len(cp.hosts) {
		return false
	}
	h := cp.hosts[hostID]
	if h.state != HostHealthy {
		return false
	}
	cp.cordonLocked(h, reason)
	return true
}

// cordonLocked moves h out of the traffic rotation and wakes the
// remediator. cp.mu held.
func (cp *ControlPlane) cordonLocked(h *host, reason string) {
	h.state = HostCordoned
	h.reason = reason
	cp.met.cordons.Inc()
	cp.eventLocked(h.id, "cordon", "%s", reason)
	cp.cond.Broadcast()
}

// remediator is the control plane's single remediation worker. Serializing
// replacements is deliberate: remediation capacity is itself a resource,
// and draining every sick host at once could empty the fleet.
func (cp *ControlPlane) remediator() {
	defer cp.remWG.Done()
	for {
		cp.mu.Lock()
		var h *host
		for {
			h = nil
			for _, c := range cp.hosts {
				if c.state == HostCordoned {
					h = c
					break
				}
			}
			if h != nil || cp.stopping {
				break
			}
			cp.cond.Wait()
		}
		if h == nil {
			cp.mu.Unlock()
			return // stopping, and no cordoned host left behind
		}
		h.state = HostDraining
		oldInc := h.incarnation
		backend := h.backend
		cp.eventLocked(h.id, "drain", "incarnation %d draining: %s", oldInc, h.reason)
		cp.cond.Broadcast()
		cp.mu.Unlock()

		// Unlocked: queued jobs come back ErrHandedOff (watchers re-route
		// them concurrently with this call), in-flight jobs finish.
		handed := backend.DrainForHandoff()

		cp.mu.Lock()
		cp.met.handoffs.Add(int64(handed))
		cp.eventLocked(h.id, "handoff", "%d queued jobs handed off, in-flight complete", handed)
		h.state = HostReplacing
		cp.cond.Broadcast()
		cp.mu.Unlock()

		// Unlocked: provisioning a replacement can be slow.
		nb, inj, err := cp.factory(h.id, oldInc+1)

		cp.mu.Lock()
		if err != nil {
			h.state = HostDead
			h.reason = fmt.Sprintf("replacement failed: %v", err)
			cp.eventLocked(h.id, "replace-failed", "%v", err)
			cp.eventLocked(h.id, "dead", "slot retired, fleet capacity reduced")
		} else {
			h.backend = nb
			h.inj = inj
			h.incarnation = oldInc + 1
			h.state = HostHealthy
			h.reason = ""
			h.open = 0
			h.health = hostHealth{}
			cp.remediations++
			cp.met.remediations.Inc()
			cp.eventLocked(h.id, "replace", "incarnation %d in rotation", h.incarnation)
			cp.subscribeXID(h.id, h.incarnation, inj)
		}
		cp.cond.Broadcast()
		cp.mu.Unlock()
	}
}
