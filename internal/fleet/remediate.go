package fleet

import (
	"fmt"

	"gpufs/internal/ckpt"
	"gpufs/internal/simtime"
)

// The remediation loop. One goroutine walks cordoned hosts through
//
//	Cordoned ─▶ Draining ─▶ Replacing ─▶ Healthy (or Dead)
//
// while the frontend keeps admitting traffic to the rest of the fleet:
//
//   - Draining calls the backend's DrainForHandoff WITHOUT the control
//     plane lock — admission, routing, and snapshots proceed throughout.
//     Jobs the host had queued but never launched come back completed
//     with serve.ErrHandedOff; their fleet watchers re-route each one to
//     a healthy host. Jobs already in flight finish where they are (their
//     results are valid — the kernels are read-only — and re-executing
//     them elsewhere would double-run work the exactly-once story
//     forbids).
//   - With Config.MigrateOnDrain set, the drain step is migrate-first:
//     the backend is Checkpointed instead (the same queue freeze and
//     handoff semantics, plus a copy-on-write capture of every GPU's
//     cache and file tables concurrent with the in-flight batches), and
//     the image is restored onto the replacement so it enters rotation
//     warm. The fallback to plain drain+restart is automatic and total:
//     a capture error or budget overrun, a fatal XID before or during
//     the snapshot (the device's memory — and therefore the image — is
//     suspect), or a failed restore each degrade to exactly the
//     non-migrating path, never to a lost job or a stale page.
//   - Replacing calls the host factory, also without the lock (a real
//     factory provisions a machine; even the simulated one builds a whole
//     gpufs.System). Success installs the new backend under a bumped
//     incarnation with a clean health record; failure marks the slot
//     Dead, and the fleet runs on at reduced capacity.
//
// Cordoning is a one-way door per incarnation: once a host leaves
// Healthy, only a successful replacement brings traffic back to the slot.

// Cordon manually cordons a healthy host (the operator's knob; the chaos
// tests' kill switch). It reports false if the id is out of range or the
// host already left Healthy.
func (cp *ControlPlane) Cordon(hostID int, reason string) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if hostID < 0 || hostID >= len(cp.hosts) {
		return false
	}
	h := cp.hosts[hostID]
	if h.state != HostHealthy {
		return false
	}
	cp.cordonLocked(h, reason)
	return true
}

// cordonLocked moves h out of the traffic rotation and wakes the
// remediator. cp.mu held.
func (cp *ControlPlane) cordonLocked(h *host, reason string) {
	h.state = HostCordoned
	h.reason = reason
	cp.met.cordons.Inc()
	cp.eventLocked(h.id, "cordon", "%s", reason)
	cp.cond.Broadcast()
}

// remediator is the control plane's single remediation worker. Serializing
// replacements is deliberate: remediation capacity is itself a resource,
// and draining every sick host at once could empty the fleet.
func (cp *ControlPlane) remediator() {
	defer cp.remWG.Done()
	for {
		cp.mu.Lock()
		var h *host
		for {
			h = nil
			for _, c := range cp.hosts {
				if c.state == HostCordoned {
					h = c
					break
				}
			}
			if h != nil || cp.stopping {
				break
			}
			cp.cond.Wait()
		}
		if h == nil {
			cp.mu.Unlock()
			return // stopping, and no cordoned host left behind
		}
		h.state = HostDraining
		oldInc := h.incarnation
		backend := h.backend
		// A fatal XID means the device fell off the bus or its memory is
		// uncontained — an image captured from it cannot be trusted.
		migrate := cp.cfg.MigrateOnDrain && h.health.fatalXIDs == 0
		cp.eventLocked(h.id, "drain", "incarnation %d draining: %s", oldInc, h.reason)
		cp.cond.Broadcast()
		cp.mu.Unlock()

		// Unlocked: queued jobs come back ErrHandedOff (watchers re-route
		// them concurrently with this call), in-flight jobs finish. The
		// migrate-first path checkpoints instead — same freeze, plus the
		// copy-on-write capture — and a failed checkpoint still drains,
		// so the DrainForHandoff fallback below is a no-op returning 0.
		var img *ckpt.Image
		if migrate {
			var err error
			img, err = backend.Checkpoint()
			if err != nil {
				img = nil
				cp.mu.Lock()
				cp.met.ckptFallbacks.Inc()
				cp.eventLocked(h.id, "ckpt-failed", "%v; falling back to drain+restart", err)
				cp.mu.Unlock()
			}
		}
		handed := 0
		if img != nil {
			img.SourceHost = int64(h.id)
			handed = len(img.Queued)
		} else {
			handed = backend.DrainForHandoff()
		}

		cp.mu.Lock()
		if img != nil && h.health.fatalXIDs > 0 {
			// The fatal XID landed mid-snapshot: the capture window
			// overlaps a device whose memory integrity just failed.
			cp.met.ckptFallbacks.Inc()
			cp.eventLocked(h.id, "ckpt-discard", "fatal XID during snapshot; image discarded")
			img = nil
		}
		if img != nil {
			cp.eventLocked(h.id, "checkpoint", "image captured: %d dirty pages, %d clean refs, %d bytes",
				img.DirtyPages(), img.CleanPages(), img.Bytes())
		}
		cp.met.handoffs.Add(int64(handed))
		cp.eventLocked(h.id, "handoff", "%d queued jobs handed off, in-flight complete", handed)
		h.state = HostReplacing
		cp.cond.Broadcast()
		cp.mu.Unlock()

		// Unlocked: provisioning a replacement can be slow.
		nb, inj, err := cp.factory(h.id, oldInc+1)

		if err == nil && img != nil {
			// Unlocked too: the restore replays cache contents through the
			// new machine's full RPC path.
			if rerr := nb.Restore(img); rerr != nil {
				cp.mu.Lock()
				cp.met.ckptFallbacks.Inc()
				cp.eventLocked(h.id, "restore-failed", "%v; replacement enters rotation cold", rerr)
				cp.mu.Unlock()
			} else {
				lat := simtime.Duration(img.CaptureEnd-img.CaptureStart) +
					nb.Now().Sub(simtime.Time(0))
				cp.mu.Lock()
				cp.migrations++
				cp.met.migrations.Inc()
				cp.met.migrationNs.Add(int64(lat))
				cp.eventLocked(h.id, "migrate",
					"incarnation %d enters rotation warm (%v virtual capture+restore)", oldInc+1, lat)
				cp.mu.Unlock()
			}
		}

		cp.mu.Lock()
		if err != nil {
			h.state = HostDead
			h.reason = fmt.Sprintf("replacement failed: %v", err)
			cp.eventLocked(h.id, "replace-failed", "%v", err)
			cp.eventLocked(h.id, "dead", "slot retired, fleet capacity reduced")
		} else {
			h.backend = nb
			h.inj = inj
			h.incarnation = oldInc + 1
			h.state = HostHealthy
			h.reason = ""
			h.open = 0
			h.health = hostHealth{}
			cp.remediations++
			cp.met.remediations.Inc()
			cp.eventLocked(h.id, "replace", "incarnation %d in rotation", h.incarnation)
			cp.subscribeXID(h.id, h.incarnation, inj)
		}
		cp.cond.Broadcast()
		cp.mu.Unlock()
	}
}
