// Package fleet is the multi-host control plane over the serving layer:
// the step from "a machine" (one gpufs.System behind a serve.Server) to a
// pool of machines behind one admission frontend. GPUfs (§2) argued the
// file system API should follow the GPU; this layer argues the *fleet
// manager* should too — hosts are cattle whose GPUs fail in XID-shaped
// ways, and the control plane's job is to keep client traffic flowing
// while a sick host is cordoned, drained, and replaced.
//
// The pieces, one file each:
//
//   - pool.go: the capacity pool — host records, the
//     Healthy→Cordoned→Draining→Replacing→{Healthy,Dead} state machine,
//     exact per-host accounting of outstanding jobs, snapshots and the
//     remediation event log.
//   - scheduler.go: tenant-aware placement — jobs route to the healthy
//     host whose GPU buffer caches already hold their file (cache
//     affinity across machines), cold files hash to a stable home, and
//     saturated hosts spill to the least-loaded one.
//   - health.go: the monitor — consumes XID-style device-error events
//     from each host's fault layer (fatal ⇒ cordon now; a burst of
//     criticals ⇒ cordon), plus virtual-time heartbeat and latency
//     signals (a loaded host that stops completing, or whose smoothed
//     latency blows past the fleet median, is cordoned as degraded).
//   - remediate.go: the remediation loop — cordoned hosts are drained
//     via serve.Backend.DrainForHandoff (queued jobs come back unexecuted
//     and re-route to healthy hosts), then rebuilt by the host factory.
//
// Every fleet-admitted job completes exactly once: a watcher goroutine per
// job re-routes handed-off and sick-host failures within a bounded rehome
// budget, and delivers success or a classified error — never silence, and
// never a double delivery (the serve layer's Future is single-shot, and a
// job is only resubmitted after its previous attempt's Future resolved).
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"gpufs/internal/faults"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
)

// Sentinel errors.
var (
	// ErrClosed rejects submissions after Drain began.
	ErrClosed = errors.New("fleet: control plane is draining")
	// ErrNoHealthyHosts rejects a submission (or fails a re-routed job)
	// when no host can take traffic and none will come back.
	ErrNoHealthyHosts = errors.New("fleet: no healthy hosts")
	// ErrRehomedTooOften fails a job whose re-routing budget ran out.
	ErrRehomedTooOften = errors.New("fleet: job re-routed too many times")
)

// HostFactory builds (or rebuilds) one serving host. It is called with
// incarnation 0 for the initial fleet and incarnation n+1 when the
// remediator replaces a host. The returned injector is the host's fault
// layer, used for XID subscription and organic XID scheduling; nil is
// legal for backends without one (fakes).
type HostFactory func(hostID, incarnation int) (serve.Backend, *faults.Injector, error)

// Config tunes the control plane. The zero value gets defaults from New.
type Config struct {
	// MaxRehomes bounds how many times one job may be re-routed across
	// hosts (handoffs plus sick-host retries) before it fails with
	// ErrRehomedTooOften. Default 8.
	MaxRehomes int
	// SpillLoad is the outstanding-job count at which a host stops being
	// the affinity target and jobs spill to the least-loaded healthy
	// host. Default 64.
	SpillLoad int
	// CriticalXIDLimit cordons a host after this many critical XID
	// events on one incarnation. Default 3.
	CriticalXIDLimit int
	// LatencyFactor cordons a host whose latency EWMA exceeds this
	// multiple of the median EWMA of the other healthy hosts (with at
	// least LatencyMinSamples jobs observed everywhere). Default 8.
	LatencyFactor float64
	// LatencyMinSamples is the minimum per-host completions before the
	// latency detector may fire. Default 16.
	LatencyMinSamples int
	// StallProbes cordons a loaded host after this many fleet-wide
	// completions without a completion of its own — the virtual-time
	// heartbeat. 0 disables; default 4096 (generous: it catches a truly
	// wedged host in a soak without false-firing on batching skew).
	StallProbes int
	// MigrateOnDrain switches the remediator to migrate-first: a
	// cordoned host is checkpointed and the image restored onto its
	// replacement, so the new incarnation enters rotation with the old
	// one's buffer caches, fast-reopen tables, prefetch history, and
	// pipes. The remediator falls back to plain drain+restart when the
	// checkpoint fails (budget overrun, capture error), when a fatal
	// XID fired before or during the snapshot (the device's memory
	// integrity — and therefore the image — is suspect), or when the
	// restore fails (the replacement then enters rotation cold).
	// Default false: bit-identical to the pre-migration control plane.
	MigrateOnDrain bool
	// Metrics, when non-nil, receives the fleet metric families
	// (gpufs_fleet_*).
	Metrics *metrics.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxRehomes <= 0 {
		out.MaxRehomes = 8
	}
	if out.SpillLoad <= 0 {
		out.SpillLoad = 64
	}
	if out.CriticalXIDLimit <= 0 {
		out.CriticalXIDLimit = 3
	}
	if out.LatencyFactor <= 0 {
		out.LatencyFactor = 8
	}
	if out.LatencyMinSamples <= 0 {
		out.LatencyMinSamples = 16
	}
	if out.StallProbes == 0 {
		out.StallProbes = 4096
	} else if out.StallProbes < 0 {
		out.StallProbes = 0 // explicit disable
	}
	return out
}

// Result is a fleet job's outcome: the serving result plus where it
// finally ran and how often the fleet had to move it.
type Result struct {
	serve.Result
	// Host is the id of the host that delivered the final attempt, -1 if
	// the job never reached a host.
	Host int
	// Rehomes counts cross-host re-routings this job survived.
	Rehomes int
}

// Future is the pending result of a fleet-submitted job.
type Future struct{ ch chan Result }

// Done returns a channel receiving the result exactly once.
func (f *Future) Done() <-chan Result { return f.ch }

// Wait blocks for the result.
func (f *Future) Wait() Result { return <-f.ch }

// fleetJob is the control plane's record of one admitted job.
type fleetJob struct {
	tenant  string
	spec    serve.Job
	fut     *Future
	rehomes int
}

// ControlPlane owns the fleet: N hosts, the scheduler, the health monitor,
// and the remediation loop.
type ControlPlane struct {
	cfg     Config
	factory HostFactory

	mu       sync.Mutex
	cond     *sync.Cond
	hosts    []*host
	events   []Event
	closed   bool // no new admissions
	stopping bool // remediator should exit once no host is cordoned

	admitted, succeeded, failed int64
	rebalanced, remediations    int64
	migrations                  int64

	met *fleetMetrics

	wg    sync.WaitGroup // job watchers
	remWG sync.WaitGroup // remediator
}

// New builds a control plane over numHosts hosts created by factory
// (incarnation 0 each) and starts the remediation loop. The factory is
// retained to rebuild hosts the health monitor condemns.
func New(cfg Config, numHosts int, factory HostFactory) (*ControlPlane, error) {
	if numHosts < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 host, got %d", numHosts)
	}
	if factory == nil {
		return nil, errors.New("fleet: nil host factory")
	}
	cp := &ControlPlane{cfg: cfg.withDefaults(), factory: factory}
	cp.cond = sync.NewCond(&cp.mu)
	for i := 0; i < numHosts; i++ {
		b, inj, err := factory(i, 0)
		if err != nil {
			return nil, fmt.Errorf("fleet: building host %d: %w", i, err)
		}
		h := &host{id: i, backend: b, inj: inj, state: HostHealthy}
		cp.hosts = append(cp.hosts, h)
		cp.subscribeXID(i, 0, inj)
	}
	cp.met = newFleetMetrics(cp.cfg.Metrics, cp)
	cp.remWG.Add(1)
	go cp.remediator()
	return cp, nil
}

// Config returns the control plane's defaulted configuration.
func (cp *ControlPlane) Config() Config { return cp.cfg }

// NumHosts reports the fleet size (including dead hosts).
func (cp *ControlPlane) NumHosts() int { return len(cp.hosts) }

// subscribeXID routes the injector's XID events into the health monitor,
// tagged with the incarnation so a replaced machine's stragglers are
// ignored.
func (cp *ControlPlane) subscribeXID(hostID, incarnation int, inj *faults.Injector) {
	if inj == nil {
		return
	}
	inj.SubscribeXID(func(ev faults.XIDEvent) { cp.onXID(hostID, incarnation, ev) })
}

// Submit admits one job for tenant and routes it to a healthy host. Like
// serve.Server.Submit it never blocks: the job is admitted (returning its
// Future) or rejected — with serve's OverloadError when every eligible
// host's tenant queue is full, ErrNoHealthyHosts when no host can take
// traffic, or ErrClosed after Drain began. Once admitted, the job's Future
// completes exactly once even if its host is killed mid-flight: the
// control plane re-routes it within the rehome budget and otherwise fails
// it with a classified error.
func (cp *ControlPlane) Submit(tenant string, spec serve.Job) (*Future, error) {
	cp.mu.Lock()
	if cp.closed {
		cp.mu.Unlock()
		return nil, ErrClosed
	}
	j := &fleetJob{tenant: tenant, spec: spec, fut: &Future{ch: make(chan Result, 1)}}
	h, sfut, err := cp.placeLocked(j)
	if err != nil {
		cp.mu.Unlock()
		return nil, err
	}
	cp.admitted++
	cp.met.admitted.Inc()
	cp.wg.Add(1)
	inc := h.incarnation
	cp.mu.Unlock()
	go cp.watch(j, h, inc, sfut)
	return j.fut, nil
}

// watch shepherds one admitted job: it waits for the host-level Future,
// re-routes handoffs and sick-host failures, and delivers the final
// result exactly once.
func (cp *ControlPlane) watch(j *fleetJob, h *host, incarnation int, sfut *serve.Future) {
	defer cp.wg.Done()
	for {
		res := sfut.Wait()

		cp.mu.Lock()
		cp.met.openJobs.Add(-1)
		if h.incarnation == incarnation {
			h.open--
		}
		hostHealthy := h.state == HostHealthy && h.incarnation == incarnation
		cp.cond.Broadcast()
		cp.mu.Unlock()

		switch {
		case res.Err == nil:
			cp.noteCompletion(h, incarnation, res)
			cp.deliver(j, res, h.id)
			return
		case errors.Is(res.Err, serve.ErrHandedOff):
			// Never executed on h; move it wholesale.
		case !hostHealthy && j.rehomes < cp.cfg.MaxRehomes:
			// The job failed on a host the monitor has since condemned
			// (or that was already being drained): the failure is more
			// likely the host's fault than the job's. Re-run elsewhere —
			// safe for these read-only kernels, and delivery stays
			// exactly-once because this attempt's Future resolved without
			// reaching the client.
		default:
			cp.noteCompletion(h, incarnation, res)
			cp.deliver(j, res, h.id)
			return
		}

		j.rehomes++
		var ok bool
		h, incarnation, sfut, ok = cp.resubmit(j)
		if !ok {
			return // resubmit delivered a classified failure
		}
	}
}

// resubmit places an already-admitted job on a new host, waiting out
// transient no-capacity windows (every wait is bounded by fleet progress:
// a completion, a state transition, or shutdown re-checks the condition).
// It returns ok=false after delivering a terminal failure itself.
func (cp *ControlPlane) resubmit(j *fleetJob) (*host, int, *serve.Future, bool) {
	if j.rehomes > cp.cfg.MaxRehomes {
		cp.deliver(j, serve.Result{
			Tenant: j.tenant, Job: j.spec,
			Err: fmt.Errorf("%w (%d rehomes)", ErrRehomedTooOften, j.rehomes),
		}, -1)
		return nil, 0, nil, false
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.rebalanced++
	cp.met.rebalanced.Inc()
	for {
		h, sfut, err := cp.placeLocked(j)
		if err == nil {
			return h, h.incarnation, sfut, true
		}
		if errors.Is(err, ErrNoHealthyHosts) && !cp.remediationPendingLocked() {
			// Capacity is gone and nothing is coming back: fail loudly.
			cp.deliverLocked(j, serve.Result{
				Tenant: j.tenant, Job: j.spec, Err: err,
			}, -1)
			return nil, 0, nil, false
		}
		// Overloaded everywhere, or hosts mid-remediation: progress is
		// guaranteed (admitted jobs complete; the remediator always
		// reaches Healthy or Dead), so wait for the next fleet event.
		cp.cond.Wait()
	}
}

// remediationPendingLocked reports whether any host will change state
// without external input (cp.mu held).
func (cp *ControlPlane) remediationPendingLocked() bool {
	for _, h := range cp.hosts {
		switch h.state {
		case HostCordoned, HostDraining, HostReplacing:
			return true
		}
	}
	return false
}

// deliver completes the fleet Future exactly once and folds the outcome
// into the fleet counters.
func (cp *ControlPlane) deliver(j *fleetJob, res serve.Result, hostID int) {
	cp.mu.Lock()
	cp.deliverLocked(j, res, hostID)
	cp.mu.Unlock()
}

func (cp *ControlPlane) deliverLocked(j *fleetJob, res serve.Result, hostID int) {
	if res.Err == nil {
		cp.succeeded++
		cp.met.succeeded.Inc()
	} else {
		cp.failed++
		cp.met.failedJobs.Inc()
	}
	cp.cond.Broadcast()
	j.fut.ch <- Result{Result: res, Host: hostID, Rehomes: j.rehomes}
}

// Drain stops admission, waits for every admitted job to deliver, winds
// down the remediator (finishing any in-progress replacement), and drains
// the surviving hosts. Call once.
func (cp *ControlPlane) Drain() {
	cp.mu.Lock()
	cp.closed = true
	cp.cond.Broadcast()
	cp.mu.Unlock()

	cp.wg.Wait() // every admitted job delivered

	cp.mu.Lock()
	cp.stopping = true
	cp.cond.Broadcast()
	cp.mu.Unlock()
	cp.remWG.Wait()

	cp.mu.Lock()
	backends := make([]serve.Backend, 0, len(cp.hosts))
	for _, h := range cp.hosts {
		if h.state == HostHealthy {
			backends = append(backends, h.backend)
		}
	}
	cp.mu.Unlock()
	for _, b := range backends {
		b.Drain()
	}
}

// AwaitRemediation blocks until no host is cordoned, draining, or
// replacing — the fleet is quiescent (every host Healthy or Dead).
func (cp *ControlPlane) AwaitRemediation() {
	cp.mu.Lock()
	for cp.remediationPendingLocked() {
		cp.cond.Wait()
	}
	cp.mu.Unlock()
}
