package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpufs/internal/faults"
	"gpufs/internal/serve"
)

// Model-based scheduler conformance (the PR-5 POSIX-model idiom, lifted to
// the fleet): randomized submit / complete / cordon / replace schedules run
// against the control plane, with an in-memory model predicting the
// accounting after every step. Checked invariants:
//
//   - No job routed to a condemned host: a backend that has begun draining
//     never sees another Submit (counted by a recording wrapper).
//   - Capacity accounting exact: admitted − delivered == Σ host Open, and
//     each healthy host's Open equals its backend's queue length, at every
//     quiescent point.
//   - Drain always terminates: every remediation reaches Healthy or Dead
//     under a watchdog, and the final ControlPlane.Drain returns with every
//     admitted job delivered exactly once.

// recordingBackend wraps a FakeBackend and counts Submit calls that arrive
// after the backend began draining — the scheduler conformance violation.
type recordingBackend struct {
	*FakeBackend
	lateSubmits atomic.Int64
}

func (r *recordingBackend) Submit(tenant string, spec serve.Job) (*serve.Future, error) {
	fut, err := r.FakeBackend.Submit(tenant, spec)
	if errors.Is(err, serve.ErrDraining) {
		r.lateSubmits.Add(1)
	}
	return fut, err
}

// modelFleet is the in-memory model plus the per-incarnation backends.
type modelFleet struct {
	mu       sync.Mutex
	backends map[[2]int]*recordingBackend
	failNext map[int]bool
	admitted int64
	dead     map[int]bool
	incs     map[int]int
}

func (m *modelFleet) factory(hostID, incarnation int) (serve.Backend, *faults.Injector, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failNext[hostID] {
		delete(m.failNext, hostID)
		return nil, nil, fmt.Errorf("model: scripted provisioning failure for host %d", hostID)
	}
	b := &recordingBackend{FakeBackend: NewFakeBackend()}
	m.backends[[2]int{hostID, incarnation}] = b
	m.incs[hostID] = incarnation
	return b, nil, nil
}

func (m *modelFleet) current(hostID int) *recordingBackend {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backends[[2]int{hostID, m.incs[hostID]}]
}

func (m *modelFleet) all() []*recordingBackend {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*recordingBackend, 0, len(m.backends))
	for _, b := range m.backends {
		out = append(out, b)
	}
	return out
}

// TestFleetModelConformance runs the randomized schedules.
func TestFleetModelConformance(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runModelSchedule(t, int64(seed))
		})
	}
}

func runModelSchedule(t *testing.T, seed int64) {
	const numHosts = 4
	rng := rand.New(rand.NewSource(seed))
	m := &modelFleet{
		backends: make(map[[2]int]*recordingBackend),
		failNext: make(map[int]bool),
		dead:     make(map[int]bool),
		incs:     make(map[int]int),
	}
	cp, err := New(Config{
		StallProbes:       -1,      // the model drives completions arbitrarily slowly
		LatencyMinSamples: 1 << 30, // zero-latency fakes carry no latency signal anyway
	}, numHosts, m.factory)
	if err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Int64
	var failed atomic.Int64
	var handoffLeaks atomic.Int64
	var wg sync.WaitGroup
	collect := func(fut *Future) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := fut.Wait()
			delivered.Add(1)
			if res.Err != nil {
				failed.Add(1)
				if errors.Is(res.Err, serve.ErrHandedOff) {
					handoffLeaks.Add(1)
				}
				if !errors.Is(res.Err, ErrNoHealthyHosts) && !errors.Is(res.Err, ErrRehomedTooOften) {
					t.Errorf("seed %d: unclassified failure: %v", seed, res.Err)
				}
			}
		}()
	}

	// settle waits for the quiescent point: no remediation in progress and
	// every admitted-but-undelivered job placed on some host.
	settle := func(step int) Snapshot {
		cp.AwaitRemediation()
		deadline := time.Now().Add(10 * time.Second)
		for {
			snap := cp.Snapshot()
			var open, openHealthy int64
			matched := true
			for _, h := range snap.Hosts {
				open += int64(h.Open)
				if h.State == HostHealthy {
					openHealthy += int64(h.Open)
					// Watchers of resolved-but-unprocessed completions lag
					// the backend's queue; quiescence means they caught up.
					if b := m.current(h.ID); b != nil && b.Load() != h.Open {
						matched = false
					}
				}
			}
			// Quiescent means every undelivered job is placed — and placed
			// on a live machine (re-routing off a dead host is async).
			if matched && snap.Admitted == delivered.Load()+open && open == openHealthy &&
				snap.Admitted == m.admitted {
				return snap
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d step %d: never settled: admitted=%d delivered=%d open=%d",
					seed, step, snap.Admitted, delivered.Load(), open)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	checkInvariants := func(step int, snap Snapshot) {
		var open int64
		for _, h := range snap.Hosts {
			if h.Open < 0 {
				t.Fatalf("seed %d step %d: host %d open %d < 0", seed, step, h.ID, h.Open)
			}
			open += int64(h.Open)
			switch h.State {
			case HostHealthy:
				if b := m.current(h.ID); b != nil && b.Load() != h.Open {
					t.Fatalf("seed %d step %d: host %d accounting: fleet open=%d backend load=%d",
						seed, step, h.ID, h.Open, b.Load())
				}
			case HostDead:
				if h.Open != 0 {
					t.Fatalf("seed %d step %d: dead host %d holds %d open jobs", seed, step, h.ID, h.Open)
				}
			default:
				t.Fatalf("seed %d step %d: host %d in transient state %v at quiescent point",
					seed, step, h.ID, h.State)
			}
		}
		if snap.Admitted-delivered.Load() != open {
			t.Fatalf("seed %d step %d: capacity accounting: admitted=%d delivered=%d Σopen=%d",
				seed, step, snap.Admitted, delivered.Load(), open)
		}
		for _, b := range m.all() {
			if n := b.lateSubmits.Load(); n != 0 {
				t.Fatalf("seed %d step %d: %d submissions routed to a draining host", seed, step, n)
			}
		}
	}

	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("/model/f%d", i)
	}
	healthyCount := func() int {
		n := 0
		for _, h := range cp.Snapshot().Hosts {
			if h.State == HostHealthy {
				n++
			}
		}
		return n
	}

	steps := 150
	if testing.Short() {
		steps = 60
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // submit
			fut, err := cp.Submit(fmt.Sprintf("t%d", rng.Intn(3)), job(paths[rng.Intn(len(paths))]))
			if healthyCount() == 0 {
				if !errors.Is(err, ErrNoHealthyHosts) {
					t.Fatalf("seed %d step %d: submit to empty fleet: %v", seed, step, err)
				}
				continue
			}
			if err != nil {
				// A host may have been condemned between the count and the
				// submit only by this goroutine — ops are sequential — so
				// rejection with healthy capacity is a conformance bug.
				t.Fatalf("seed %d step %d: submit rejected with healthy hosts: %v", seed, step, err)
			}
			m.admitted++
			collect(fut)
		case op < 80: // complete some jobs on a random host
			h := rng.Intn(numHosts)
			if b := m.current(h); b != nil {
				b.Complete(rng.Intn(4) + 1)
			}
		case op < 90: // cordon a random host, maybe with a failing factory
			h := rng.Intn(numHosts)
			if m.dead[h] {
				continue
			}
			if rng.Intn(100) < 25 {
				m.mu.Lock()
				m.failNext[h] = true
				m.mu.Unlock()
				m.dead[h] = true
			}
			cp.Cordon(h, fmt.Sprintf("model step %d", step))
			snap := settle(step)
			checkInvariants(step, snap)
		default: // quiesce and audit
			snap := settle(step)
			checkInvariants(step, snap)
		}
	}

	// Drain terminates: flush every backlog, then Drain under a watchdog.
	snap := settle(steps)
	checkInvariants(steps, snap)
	for _, b := range m.all() {
		b.Complete(-1)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		cp.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("seed %d: Drain did not terminate", seed)
	}

	if delivered.Load() != m.admitted {
		t.Fatalf("seed %d: %d delivered, %d admitted", seed, delivered.Load(), m.admitted)
	}
	if handoffLeaks.Load() != 0 {
		t.Fatalf("seed %d: %d ErrHandedOff results leaked to clients", seed, handoffLeaks.Load())
	}
	final := cp.Snapshot()
	if final.Delivered() != final.Admitted {
		t.Fatalf("seed %d: fleet accounts %d delivered of %d admitted", seed, final.Delivered(), final.Admitted)
	}
	if int64(len(m.dead)) != final.DeadHosts {
		t.Fatalf("seed %d: model predicts %d dead hosts, fleet reports %d", seed, len(m.dead), final.DeadHosts)
	}
	// Remediation event grammar per host: (cordon drain handoff
	// (replace | replace-failed dead))*
	perHost := make(map[int][]string)
	for _, ev := range cp.Events() {
		perHost[ev.Host] = append(perHost[ev.Host], ev.Kind)
	}
	for h, kinds := range perHost {
		for i := 0; i < len(kinds); {
			if len(kinds)-i < 4 || kinds[i] != "cordon" || kinds[i+1] != "drain" || kinds[i+2] != "handoff" {
				t.Fatalf("seed %d: host %d event grammar violation at %d: %v", seed, h, i, kinds)
			}
			switch kinds[i+3] {
			case "replace":
				i += 4
			case "replace-failed":
				if len(kinds)-i < 5 || kinds[i+4] != "dead" {
					t.Fatalf("seed %d: host %d replace-failed not followed by dead: %v", seed, h, kinds)
				}
				i += 5
			default:
				t.Fatalf("seed %d: host %d unexpected event %q: %v", seed, h, kinds[i+3], kinds)
			}
		}
	}
}
