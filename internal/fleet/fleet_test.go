package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gpufs/internal/faults"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
)

// fakeFleet is the unit-test host factory: a FakeBackend (plus a real
// fault injector for the XID channel) per (host, incarnation), all
// retained so tests can script and inspect any machine ever built.
type fakeFleet struct {
	mu       sync.Mutex
	auto     bool
	fakes    map[[2]int]*FakeBackend
	injs     map[[2]int]*faults.Injector
	failNext map[int]error // hostID → error the next build returns
	builds   int
}

func newFakeFleet(auto bool) *fakeFleet {
	return &fakeFleet{
		auto:     auto,
		fakes:    make(map[[2]int]*FakeBackend),
		injs:     make(map[[2]int]*faults.Injector),
		failNext: make(map[int]error),
	}
}

func (ff *fakeFleet) factory(hostID, incarnation int) (serve.Backend, *faults.Injector, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if err := ff.failNext[hostID]; err != nil {
		delete(ff.failNext, hostID)
		return nil, nil, err
	}
	ff.builds++
	b := NewFakeBackend()
	b.SetAuto(ff.auto)
	inj := faults.New(faults.Config{Seed: int64(1000*hostID + incarnation)})
	ff.fakes[[2]int{hostID, incarnation}] = b
	ff.injs[[2]int{hostID, incarnation}] = inj
	return b, inj, nil
}

func (ff *fakeFleet) fake(hostID, inc int) *FakeBackend {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.fakes[[2]int{hostID, inc}]
}

func (ff *fakeFleet) inj(hostID, inc int) *faults.Injector {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.injs[[2]int{hostID, inc}]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func job(path string) serve.Job { return serve.Job{Kind: serve.JobGrep, Path: path, Word: "w"} }

// TestFleetSubmitComplete drives the basic path: jobs route across hosts,
// complete, and the fleet accounts for every one exactly once.
func TestFleetSubmitComplete(t *testing.T) {
	ff := newFakeFleet(true)
	reg := metrics.New()
	cp, err := New(Config{Metrics: reg}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 60
	var futs []*Future
	for i := 0; i < jobs; i++ {
		fut, err := cp.Submit(fmt.Sprintf("t%d", i%4), job(fmt.Sprintf("/f/%d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	for i, fut := range futs {
		res := fut.Wait()
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Err)
		}
		if res.Host < 0 || res.Host > 2 {
			t.Fatalf("job %d reports host %d", i, res.Host)
		}
		if res.Rehomes != 0 {
			t.Fatalf("job %d rehomed %d times in a healthy fleet", i, res.Rehomes)
		}
	}
	cp.Drain()
	snap := cp.Snapshot()
	if snap.Admitted != jobs || snap.Succeeded != jobs || snap.Failed != 0 {
		t.Fatalf("accounting: admitted=%d succeeded=%d failed=%d, want %d/%d/0",
			snap.Admitted, snap.Succeeded, snap.Failed, jobs, jobs)
	}
	for _, h := range snap.Hosts {
		if h.Open != 0 {
			t.Fatalf("host %d still reports %d open after drain", h.ID, h.Open)
		}
	}
	// Fleet metrics made it into the registry.
	var sawHosts, sawJobs bool
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "gpufs_fleet_hosts":
			sawHosts = true
		case "gpufs_fleet_jobs_total":
			sawJobs = true
		}
	}
	if !sawHosts || !sawJobs {
		t.Fatalf("fleet metric families missing: hosts=%v jobs=%v", sawHosts, sawJobs)
	}
}

// TestFleetSchedulerAffinityAndSpill pins the routing order: resident
// pages draw a job to its warm host; a saturated warm host spills to the
// least-loaded one.
func TestFleetSchedulerAffinityAndSpill(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{SpillLoad: 4}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	warm := ff.fake(2, 0)
	warm.SetResident("/hot", 512)

	for i := 0; i < 4; i++ {
		if _, err := cp.Submit("t", job("/hot")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if a, _, _ := warm.Counts(); a != 4 {
		t.Fatalf("warm host admitted %d, want all 4 (affinity)", a)
	}
	// Host 2 is at SpillLoad: the next /hot job must go elsewhere.
	if _, err := cp.Submit("t", job("/hot")); err != nil {
		t.Fatalf("spill submit: %v", err)
	}
	if a, _, _ := warm.Counts(); a != 4 {
		t.Fatalf("warm host admitted %d after saturation, want 4 (spill)", a)
	}
	if got := ff.fake(0, 0).Load() + ff.fake(1, 0).Load(); got != 1 {
		t.Fatalf("spilled job not on a cold host (loads sum to %d)", got)
	}
	for _, h := range []int{0, 1, 2} {
		ff.fake(h, 0).Complete(-1)
	}
	cp.Drain()
}

// TestFleetCordonDrainReplace walks one full remediation: a cordoned host
// hands its queued jobs off unexecuted (the dedup half of the chaos
// invariant), the jobs land on healthy hosts and complete, and the slot
// returns with a new incarnation and a clean record.
func TestFleetCordonDrainReplace(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	sick := ff.fake(0, 0)
	sick.SetResident("/pinned", 64) // draw the jobs to host 0
	var futs []*Future
	for i := 0; i < 5; i++ {
		fut, err := cp.Submit("t", job("/pinned"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	if a, _, _ := sick.Counts(); a != 5 {
		t.Fatalf("affinity routed %d/5 jobs to host 0", a)
	}

	if !cp.Cordon(0, "test kill") {
		t.Fatal("Cordon(0) refused")
	}
	if cp.Cordon(0, "again") {
		t.Fatal("Cordon(0) accepted twice")
	}
	cp.AwaitRemediation()

	// The drained machine handed everything off and executed nothing.
	if _, resolved, handed := sick.Counts(); resolved != 0 || handed != 5 {
		t.Fatalf("sick host resolved=%d handed=%d, want 0/5", resolved, handed)
	}
	// The jobs were re-routed and are queued on the survivors (or the
	// replaced host 0, which is healthy again).
	waitFor(t, "rerouted jobs to queue", func() bool {
		n := ff.fake(1, 0).Load() + ff.fake(2, 0).Load()
		if nb := ff.fake(0, 1); nb != nil {
			n += nb.Load()
		}
		return n == 5
	})
	for _, k := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
		if b := ff.fake(k[0], k[1]); b != nil {
			b.Complete(-1)
		}
	}
	for i, fut := range futs {
		res := fut.Wait()
		if res.Err != nil {
			t.Fatalf("job %d failed across remediation: %v", i, res.Err)
		}
		if errors.Is(res.Err, serve.ErrHandedOff) {
			t.Fatalf("job %d leaked ErrHandedOff to the client", i)
		}
		if res.Rehomes != 1 {
			t.Fatalf("job %d rehomed %d times, want 1", i, res.Rehomes)
		}
	}

	snap := cp.Snapshot()
	if snap.Remediations != 1 || snap.Rebalanced != 5 {
		t.Fatalf("remediations=%d rebalanced=%d, want 1/5", snap.Remediations, snap.Rebalanced)
	}
	if h := snap.Hosts[0]; h.State != HostHealthy || h.Incarnation != 1 {
		t.Fatalf("host 0 after remediation: %v inc %d, want healthy inc 1", h.State, h.Incarnation)
	}
	// Event log tells the full story in order.
	var kinds []string
	for _, ev := range cp.Events() {
		if ev.Host == 0 {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []string{"cordon", "drain", "handoff", "replace"}
	if len(kinds) != len(want) {
		t.Fatalf("host 0 events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("host 0 events %v, want %v", kinds, want)
		}
	}
	cp.Drain()
}

// TestFleetXIDHealth checks the XID policy: warnings are counted only, a
// fatal code cordons immediately, and criticals cordon at the threshold —
// all ignoring stragglers from replaced incarnations.
func TestFleetXIDHealth(t *testing.T) {
	ff := newFakeFleet(true)
	cp, err := New(Config{CriticalXIDLimit: 3}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}

	// Warnings: no state change.
	inj0 := ff.inj(0, 0)
	for i := 0; i < 10; i++ {
		inj0.InjectXID(0, 31, simtime.Time(i)) // page fault: warn
	}
	if snap := cp.Snapshot(); snap.Hosts[0].State != HostHealthy || snap.Hosts[0].WarnXIDs != 10 {
		t.Fatalf("after warnings: %v warn=%d", snap.Hosts[0].State, snap.Hosts[0].WarnXIDs)
	}

	// Fatal: immediate cordon, then remediation.
	inj0.InjectXID(0, 79, 100) // fallen off the bus
	cp.AwaitRemediation()
	snap := cp.Snapshot()
	if h := snap.Hosts[0]; h.State != HostHealthy || h.Incarnation != 1 {
		t.Fatalf("host 0 after fatal XID: %v inc %d", h.State, h.Incarnation)
	}
	// The new incarnation's record is clean, and the old injector's
	// stragglers no longer count.
	inj0.InjectXID(0, 79, 200)
	if snap := cp.Snapshot(); snap.Hosts[0].FatalXIDs != 0 || snap.Hosts[0].State != HostHealthy {
		t.Fatalf("stale-incarnation XID leaked into fresh record: %+v", snap.Hosts[0])
	}

	// Criticals: two are tolerated, the third condemns.
	inj1 := ff.inj(1, 0)
	inj1.InjectXID(0, 119, 300)
	inj1.InjectXID(0, 119, 301)
	if snap := cp.Snapshot(); snap.Hosts[1].State != HostHealthy {
		t.Fatalf("host 1 cordoned below critical threshold: %+v", snap.Hosts[1])
	}
	inj1.InjectXID(0, 119, 302)
	cp.AwaitRemediation()
	if snap := cp.Snapshot(); snap.Hosts[1].Incarnation != 1 {
		t.Fatalf("host 1 not remediated after %d criticals", 3)
	}
	cp.Drain()
}

// TestFleetReplaceFailureAndExhaustion kills every host with a factory
// that cannot rebuild: slots go Dead, and once no capacity remains Submit
// fails fast with ErrNoHealthyHosts.
func TestFleetReplaceFailureAndExhaustion(t *testing.T) {
	ff := newFakeFleet(true)
	cp, err := New(Config{}, 2, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	ff.mu.Lock()
	ff.failNext[0] = errors.New("no spares")
	ff.failNext[1] = errors.New("no spares")
	ff.mu.Unlock()

	cp.Cordon(0, "kill")
	cp.Cordon(1, "kill")
	cp.AwaitRemediation()

	snap := cp.Snapshot()
	if snap.DeadHosts != 2 {
		t.Fatalf("dead hosts = %d, want 2", snap.DeadHosts)
	}
	if _, err := cp.Submit("t", job("/f")); !errors.Is(err, ErrNoHealthyHosts) {
		t.Fatalf("submit to dead fleet: %v, want ErrNoHealthyHosts", err)
	}
	cp.Drain()
}

// TestFleetLatencyDegradation cordons a host that answers, but an order of
// magnitude slower than its peers, via the EWMA-vs-median detector.
func TestFleetLatencyDegradation(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{
		LatencyFactor:     4,
		LatencyMinSamples: 8,
		StallProbes:       -1, // isolate the latency signal
	}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	clocks := make(map[int]simtime.Time)
	complete := func(hostID int, lat simtime.Duration) {
		b := ff.fake(hostID, 0)
		b.SetResident("/only-here", 1)
		fut, err := cp.Submit("t", job("/only-here"))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		b.SetResident("/only-here", 0)
		clocks[hostID] = clocks[hostID].Add(lat)
		b.AdvanceTo(clocks[hostID])
		b.Complete(1)
		fut.Wait()
	}
	// Interleave: peers answer in 1ms, host 0 in 100ms. Stop driving the
	// slow host once the detector condemns it (its cordon happens inside
	// its own completion, before the result is delivered, so checking at
	// the loop top cannot race a pending completion).
	for i := 0; i < 40; i++ {
		// Stop once host 0 leaves Healthy — or has already been condemned
		// AND replaced (healthy again, but at a new incarnation).
		if h := cp.Snapshot().Hosts[0]; h.State != HostHealthy || h.Incarnation != 0 {
			break
		}
		complete(1, simtime.Millisecond)
		complete(2, simtime.Millisecond)
		complete(0, 100*simtime.Millisecond)
	}
	cp.AwaitRemediation()
	snap := cp.Snapshot()
	if snap.Hosts[0].Incarnation != 1 {
		t.Fatalf("slow host not remediated; snapshot: %+v", snap.Hosts[0])
	}
	if snap.Hosts[1].Incarnation != 0 || snap.Hosts[2].Incarnation != 0 {
		t.Fatal("healthy peer was condemned by the latency detector")
	}
	var reason string
	for _, ev := range cp.Events() {
		if ev.Host == 0 && ev.Kind == "cordon" {
			reason = ev.Detail
		}
	}
	if !strings.Contains(reason, "degraded") {
		t.Fatalf("cordon reason %q does not cite degradation", reason)
	}
	cp.Drain()
}

// TestFleetStallDetection cordons a host that holds jobs but stops
// completing them while the rest of the fleet makes progress; the wedged
// host's jobs come back and finish elsewhere.
func TestFleetStallDetection(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{
		StallProbes:       6,
		LatencyMinSamples: 1 << 30, // isolate the heartbeat signal
	}, 3, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	wedged := ff.fake(0, 0)
	wedged.SetResident("/stuck", 1)
	stuck, err := cp.Submit("t", job("/stuck"))
	if err != nil {
		t.Fatal(err)
	}
	wedged.SetResident("/stuck", 0)
	if a, _, _ := wedged.Counts(); a != 1 {
		t.Fatalf("wedged host admitted %d, want 1", a)
	}

	// Fleet heartbeats: completions on the healthy hosts. Flush host 1
	// wholesale each beat — once host 0 is condemned its handed-off job
	// may requeue ahead of the beat job in the same FIFO.
	other := ff.fake(1, 0)
	other.SetResident("/beat", 1)
	for i := 0; i < 8; i++ {
		fut, err := cp.Submit("t", job("/beat"))
		if err != nil {
			t.Fatalf("beat submit %d: %v", i, err)
		}
		waitFor(t, "beat delivery", func() bool {
			other.Complete(-1)
			select {
			case res := <-fut.Done():
				if res.Err != nil {
					t.Fatalf("beat job %d failed: %v", i, res.Err)
				}
				return true
			default:
				return false
			}
		})
	}
	cp.AwaitRemediation()
	if snap := cp.Snapshot(); snap.Hosts[0].Incarnation != 1 {
		t.Fatalf("wedged host not remediated: %+v", snap.Hosts[0])
	}
	// The stuck job was handed off and re-routed; keep flushing every
	// machine ever built until it delivers.
	var res Result
	waitFor(t, "stuck job delivery", func() bool {
		for _, k := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
			if b := ff.fake(k[0], k[1]); b != nil {
				b.Complete(-1)
			}
		}
		select {
		case res = <-stuck.Done():
			return true
		default:
			return false
		}
	})
	if res.Err != nil {
		t.Fatalf("stuck job failed: %v", res.Err)
	}
	if res.Rehomes != 1 {
		t.Fatalf("stuck job rehomes = %d, want 1", res.Rehomes)
	}
	cp.Drain()
}

// TestFleetSickHostRetry re-runs a job that failed on a host condemned
// while it was in flight: the failure is charged to the machine, not the
// job, and the retry succeeds elsewhere.
func TestFleetSickHostRetry(t *testing.T) {
	ff := newFakeFleet(false)
	cp, err := New(Config{}, 2, ff.factory)
	if err != nil {
		t.Fatal(err)
	}
	sick := ff.fake(0, 0)
	sick.SetResident("/f", 1)
	fut, err := cp.Submit("t", job("/f"))
	if err != nil {
		t.Fatal(err)
	}
	sick.SetResident("/f", 0)

	// Condemn the host, then fail the in-flight job (the order a dying
	// machine produces: monitor fires, straggling completions error out).
	// FakeBackend.Fail resolves the future normally — from the fleet's
	// view this job completed with an error on a host that has since left
	// Healthy, which must trigger a re-route rather than a client error.
	cp.Cordon(0, "dying")
	sick.Fail(1, errors.New("device wedged"))
	cp.AwaitRemediation()

	waitFor(t, "retry queued elsewhere", func() bool {
		n := ff.fake(1, 0).Load()
		if nb := ff.fake(0, 1); nb != nil {
			n += nb.Load()
		}
		return n == 1
	})
	if b := ff.fake(0, 1); b != nil {
		b.Complete(-1)
	}
	ff.fake(1, 0).Complete(-1)
	res := fut.Wait()
	if res.Err != nil {
		t.Fatalf("job failed despite healthy capacity: %v", res.Err)
	}
	if res.Rehomes == 0 {
		t.Fatal("job reports zero rehomes after a sick-host retry")
	}
	cp.Drain()
}
