package fleet

import (
	"fmt"

	"gpufs/internal/faults"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
)

// HostState is one host's position in the remediation state machine:
//
//	Healthy ──cordon──▶ Cordoned ──▶ Draining ──▶ Replacing ──▶ Healthy
//	                                                   └──────▶ Dead
//
// Only Healthy hosts take traffic. Cordoned hosts await the remediator;
// Draining hosts are handing queued jobs back for re-routing while their
// in-flight batches finish; Replacing hosts are being rebuilt by the host
// factory; Dead hosts are capacity the factory failed to restore.
type HostState int

// Host states.
const (
	HostHealthy HostState = iota
	HostCordoned
	HostDraining
	HostReplacing
	HostDead
	numHostStates
)

// String names the state (also the metrics label value).
func (s HostState) String() string {
	switch s {
	case HostHealthy:
		return "healthy"
	case HostCordoned:
		return "cordoned"
	case HostDraining:
		return "draining"
	case HostReplacing:
		return "replacing"
	case HostDead:
		return "dead"
	}
	return fmt.Sprintf("HostState(%d)", int(s))
}

// hostHealth is the monitor's per-host signal accumulators, reset on
// replacement (a fresh machine gets a clean record).
type hostHealth struct {
	warnXIDs     int64
	criticalXIDs int64
	fatalXIDs    int64
	// latEWMA is the exponentially weighted moving average of job
	// latencies completed on this host; latSamples counts observations.
	latEWMA    simtime.Duration
	latSamples int
	// beatsMissed counts fleet-wide completions since this host, while
	// loaded, last completed a job — the virtual-time heartbeat.
	beatsMissed int
}

// host is one managed serving host.
type host struct {
	id          int
	incarnation int
	backend     serve.Backend
	inj         *faults.Injector // nil for backends without a fault layer
	state       HostState
	reason      string // why the host left Healthy
	// open counts fleet-admitted jobs outstanding on the CURRENT
	// incarnation; watchers for a replaced incarnation do not touch it.
	open   int
	health hostHealth
}

// HostInfo is one host's externally visible status.
type HostInfo struct {
	ID          int
	Incarnation int
	State       HostState
	Reason      string
	// Open is the fleet's outstanding-job count on the host; Load is the
	// backend's own queued+inflight figure at snapshot time.
	Open, Load int
	// WarnXIDs/CriticalXIDs/FatalXIDs are the health monitor's event
	// counters for the current incarnation.
	WarnXIDs, CriticalXIDs, FatalXIDs int64
	// LatencyEWMA is the monitor's smoothed job latency on this host.
	LatencyEWMA simtime.Duration
}

// Event is one entry in the control plane's remediation log.
type Event struct {
	Seq  int
	Host int
	// Kind is the transition: "cordon", "drain", "handoff", "replace",
	// "replace-failed", "dead" — plus, on the migrate-first path,
	// "checkpoint", "migrate", "ckpt-failed", "ckpt-discard", and
	// "restore-failed".
	Kind   string
	Detail string
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("[%d] host %d: %s (%s)", e.Seq, e.Host, e.Kind, e.Detail)
}

// Snapshot is a consistent view of the fleet.
type Snapshot struct {
	Hosts []HostInfo
	// States counts hosts by state.
	States map[HostState]int
	// Admitted counts fleet-admitted jobs; Delivered = Succeeded+Failed
	// counts results handed to clients; Rebalanced counts job re-routings
	// across hosts (handoffs plus failure rehomes); Remediations counts
	// completed cordon→drain→replace cycles; Migrations counts the subset
	// whose replacement entered rotation warm from a restored checkpoint;
	// DeadHosts counts capacity the factory could not restore.
	Admitted, Succeeded, Failed, Rebalanced int64
	Remediations, Migrations, DeadHosts     int64
}

// Delivered sums results handed to clients.
func (s Snapshot) Delivered() int64 { return s.Succeeded + s.Failed }

// Snapshot captures the fleet's current state.
func (cp *ControlPlane) Snapshot() Snapshot {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	snap := Snapshot{
		States:       make(map[HostState]int, int(numHostStates)),
		Admitted:     cp.admitted,
		Succeeded:    cp.succeeded,
		Failed:       cp.failed,
		Rebalanced:   cp.rebalanced,
		Remediations: cp.remediations,
		Migrations:   cp.migrations,
	}
	for _, h := range cp.hosts {
		info := HostInfo{
			ID:           h.id,
			Incarnation:  h.incarnation,
			State:        h.state,
			Reason:       h.reason,
			Open:         h.open,
			WarnXIDs:     h.health.warnXIDs,
			CriticalXIDs: h.health.criticalXIDs,
			FatalXIDs:    h.health.fatalXIDs,
			LatencyEWMA:  h.health.latEWMA,
		}
		if h.state != HostDead {
			info.Load = h.backend.Load()
		}
		snap.Hosts = append(snap.Hosts, info)
		snap.States[h.state]++
		if h.state == HostDead {
			snap.DeadHosts++
		}
	}
	return snap
}

// Events returns a copy of the remediation log in append order.
func (cp *ControlPlane) Events() []Event {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return append([]Event(nil), cp.events...)
}

// eventLocked appends to the remediation log (cp.mu held).
func (cp *ControlPlane) eventLocked(hostID int, kind, format string, args ...any) {
	cp.events = append(cp.events, Event{
		Seq:    len(cp.events),
		Host:   hostID,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// statesLocked counts hosts by state (cp.mu held); the metrics gauge
// functions read through it.
func (cp *ControlPlane) countState(want HostState) int64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	var n int64
	for _, h := range cp.hosts {
		if h.state == want {
			n++
		}
	}
	return n
}
