package fleet

import (
	"errors"
	"sync"

	"gpufs/internal/ckpt"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
)

// FakeBackend is a scripted serve.Backend for control-plane tests: jobs
// queue until the test resolves them, so a test can hold the fleet in any
// intermediate state (jobs in flight while a host is condemned, a drain
// racing a submit) that the real timing-driven Server would rush through.
// It honors the Backend contract exactly — exactly-once futures via
// serve.NewFuture, ErrDraining after either drain, handoff semantics — so
// control-plane logic exercised against it transfers to real hosts.
type FakeBackend struct {
	mu       sync.Mutex
	queued   []fakeJob
	auto     bool
	failWith error
	draining bool
	now      simtime.Time
	resident map[string]int64
	nextID   uint64
	admitted int64
	resolved int64 // completions that were real (not handoffs)
	handed   int64 // jobs returned via DrainForHandoff or Checkpoint

	ckptErr  error       // scripted Checkpoint failure
	ckptHook func()      // runs mid-Checkpoint, between freeze and image
	restored *ckpt.Image // image the last Restore received
}

// Counts reports (admitted, resolved, handed off) — resolved counts real
// completions only, so a test can assert a drained host never executed
// the jobs it handed back.
func (b *FakeBackend) Counts() (admitted, resolved, handed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.admitted, b.resolved, b.handed
}

type fakeJob struct {
	id      uint64
	tenant  string
	spec    serve.Job
	resolve func(serve.Result)
	arrival simtime.Time
}

// NewFakeBackend returns an empty fake with manual completion (jobs queue
// until Complete or Fail).
func NewFakeBackend() *FakeBackend {
	return &FakeBackend{resident: make(map[string]int64)}
}

// SetAuto switches the fake to resolve each submission immediately at
// submit time (with SetFailWith's error, if set).
func (b *FakeBackend) SetAuto(on bool) {
	b.mu.Lock()
	b.auto = on
	b.mu.Unlock()
}

// SetFailWith makes subsequently resolved jobs fail with err (nil
// restores success).
func (b *FakeBackend) SetFailWith(err error) {
	b.mu.Lock()
	b.failWith = err
	b.mu.Unlock()
}

// SetResident scripts ResidentPages(path).
func (b *FakeBackend) SetResident(path string, pages int64) {
	b.mu.Lock()
	b.resident[path] = pages
	b.mu.Unlock()
}

// AdvanceTo moves the fake's virtual clock forward.
func (b *FakeBackend) AdvanceTo(t simtime.Time) {
	b.mu.Lock()
	if t > b.now {
		b.now = t
	}
	b.mu.Unlock()
}

// Submit implements serve.Backend. Queue-depth admission is not modeled;
// overload behavior is scripted via SetFailWith if a test needs it.
func (b *FakeBackend) Submit(tenant string, spec serve.Job) (*serve.Future, error) {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return nil, serve.ErrDraining
	}
	b.nextID++
	b.admitted++
	fut, resolve := serve.NewFuture()
	j := fakeJob{id: b.nextID, tenant: tenant, spec: spec, resolve: resolve, arrival: b.now}
	if b.auto {
		res := b.resultLocked(j, b.failWith)
		b.resolved++
		b.mu.Unlock()
		resolve(res)
		return fut, nil
	}
	b.queued = append(b.queued, j)
	b.mu.Unlock()
	return fut, nil
}

// resultLocked builds a completion for j (b.mu held).
func (b *FakeBackend) resultLocked(j fakeJob, err error) serve.Result {
	return serve.Result{
		Tenant: j.tenant, Job: j.spec, ID: j.id, Err: err,
		Enqueued: j.arrival, Started: j.arrival, Done: b.now,
		Attempts: 1,
	}
}

// Complete resolves up to n queued jobs (FIFO) successfully, returning how
// many it resolved. n < 0 resolves everything.
func (b *FakeBackend) Complete(n int) int { return b.finish(n, nil) }

// Fail resolves up to n queued jobs (FIFO) with err.
func (b *FakeBackend) Fail(n int, err error) int { return b.finish(n, err) }

func (b *FakeBackend) finish(n int, err error) int {
	b.mu.Lock()
	if n < 0 || n > len(b.queued) {
		n = len(b.queued)
	}
	batch := b.queued[:n]
	b.queued = b.queued[n:]
	results := make([]serve.Result, len(batch))
	resolvers := make([]func(serve.Result), len(batch))
	for i, j := range batch {
		results[i] = b.resultLocked(j, err)
		resolvers[i] = j.resolve
	}
	if errors.Is(err, serve.ErrHandedOff) {
		b.handed += int64(len(batch))
	} else {
		b.resolved += int64(len(batch))
	}
	b.mu.Unlock()
	for i := range resolvers {
		resolvers[i](results[i])
	}
	return len(resolvers)
}

// Drain implements serve.Backend: stop admission, complete the backlog.
func (b *FakeBackend) Drain() {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	b.Complete(-1)
}

// DrainForHandoff implements serve.Backend: stop admission and hand every
// queued job back (the fake has no in-flight notion — queued is queued).
func (b *FakeBackend) DrainForHandoff() int {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	return b.finish(-1, serve.ErrHandedOff)
}

// SetCheckpointErr scripts the next Checkpoint calls to fail with err
// WITHOUT draining — modeling a capture that dies before the freeze, so
// the remediator's DrainForHandoff fallback still has work to do.
func (b *FakeBackend) SetCheckpointErr(err error) {
	b.mu.Lock()
	b.ckptErr = err
	b.mu.Unlock()
}

// SetCheckpointHook scripts a callback that runs inside Checkpoint, after
// the freeze but before the image is returned — the window a mid-snapshot
// fault (a fatal XID landing while the capture walks device memory) would
// occupy on a real host. The hook runs without b.mu held, so it may
// re-enter the control plane (injecting XIDs, polling snapshots).
func (b *FakeBackend) SetCheckpointHook(fn func()) {
	b.mu.Lock()
	b.ckptHook = fn
	b.mu.Unlock()
}

// Checkpoint implements serve.Backend: with no scripted error it drains
// like DrainForHandoff and returns an image whose Queued manifest lists
// the handed-off jobs.
func (b *FakeBackend) Checkpoint() (*ckpt.Image, error) {
	b.mu.Lock()
	if err := b.ckptErr; err != nil {
		b.mu.Unlock()
		return nil, err
	}
	b.draining = true
	queued := append([]fakeJob(nil), b.queued...)
	now := b.now
	hook := b.ckptHook
	b.mu.Unlock()
	if hook != nil {
		hook()
	}

	img := &ckpt.Image{SourceHost: -1, CaptureStart: int64(now), CaptureEnd: int64(now)}
	for _, j := range queued {
		img.Queued = append(img.Queued, ckpt.JobImage{
			ID: int64(j.id), Tenant: j.tenant,
			Kind: int64(j.spec.Kind), Path: j.spec.Path, Word: j.spec.Word,
		})
	}
	b.finish(-1, serve.ErrHandedOff)
	return img, nil
}

// Restore implements serve.Backend, recording the image for inspection.
func (b *FakeBackend) Restore(img *ckpt.Image) error {
	b.mu.Lock()
	b.restored = img
	b.mu.Unlock()
	return nil
}

// Restored returns the image the last Restore received, or nil.
func (b *FakeBackend) Restored() *ckpt.Image {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.restored
}

// Load implements serve.Backend.
func (b *FakeBackend) Load() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queued)
}

// ResidentPages implements serve.Backend from the scripted table.
func (b *FakeBackend) ResidentPages(path string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.resident[path]
}

// Now implements serve.Backend.
func (b *FakeBackend) Now() simtime.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}

// NumGPUs implements serve.Backend.
func (b *FakeBackend) NumGPUs() int { return 1 }

// Stats implements serve.Backend (admission count only).
func (b *FakeBackend) Stats() serve.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return serve.Stats{Queued: len(b.queued), Now: b.now}
}

var _ serve.Backend = (*FakeBackend)(nil)
