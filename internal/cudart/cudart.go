// Package cudart is a small host-side GPU runtime modelled on the CUDA
// driver API surface the paper's *baseline* implementations use: pinned
// host memory (cudaHostMalloc), device allocations (cudaMalloc),
// synchronous and asynchronous memcpy, and streams. The GPUfs comparisons
// in the evaluation — "CUDA pipeline", "whole file transfer", "CUDA
// naïve/optimized double-buffering", the "vanilla" grep — are hand-coded
// host programs; reproducing them against the same simulated bus and
// device keeps the GPUfs-versus-baseline comparisons apples-to-apples.
package cudart

import (
	"fmt"

	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/memsys"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

// apiOverhead is the host-side cost of one CUDA runtime call (enqueue,
// driver entry). Real cudaMemcpyAsync invocations cost several
// microseconds, which is what degrades small-chunk pipelines (Figure 4's
// left edge).
const apiOverhead = 8 * simtime.Microsecond

// Runtime binds a host thread (with its clock) to one device.
type Runtime struct {
	host  *hostfs.FS
	link  *pcie.Link
	dev   *gpu.Device
	clock *simtime.Clock

	pinned int64
}

// New creates a runtime whose host-thread clock starts at the given time.
func New(host *hostfs.FS, link *pcie.Link, dev *gpu.Device, start simtime.Time) *Runtime {
	return &Runtime{host: host, link: link, dev: dev, clock: simtime.NewClock(start)}
}

// Clock is the host thread's virtual clock.
func (r *Runtime) Clock() *simtime.Clock { return r.clock }

// Host returns the host file system.
func (r *Runtime) Host() *hostfs.FS { return r.host }

// Device returns the bound device.
func (r *Runtime) Device() *gpu.Device { return r.dev }

// HostMalloc allocates pinned (page-locked) host memory. Pinned memory is
// not pageable, so it competes with the OS page cache for RAM — the effect
// that degrades the double-buffering baselines once inputs approach RAM
// size (§5.1.4).
func (r *Runtime) HostMalloc(n int64) []byte {
	r.host.ReservePinned(n)
	r.pinned += n
	return make([]byte, n)
}

// HostFree releases pinned memory accounting (the Go slice is left to the
// garbage collector).
func (r *Runtime) HostFree(n int64) {
	r.host.ReservePinned(-n)
	r.pinned -= n
}

// Close releases all pinned-memory accounting held by the runtime.
func (r *Runtime) Close() {
	if r.pinned > 0 {
		r.host.ReservePinned(-r.pinned)
		r.pinned = 0
	}
}

// Malloc allocates device memory.
func (r *Runtime) Malloc(n int64) (*memsys.Block, error) {
	b, err := r.dev.Mem.Alloc(n, 256)
	if err != nil {
		return nil, fmt.Errorf("cudart: cudaMalloc(%d): %w", n, err)
	}
	return b, nil
}

// Memcpy is the synchronous cudaMemcpy: the host thread blocks until the
// transfer completes.
func (r *Runtime) Memcpy(dst, src []byte, dir pcie.Direction) error {
	r.clock.Advance(apiOverhead)
	done, err := r.link.Copy(r.clock.Now(), dir, dst, src)
	if err != nil {
		return err
	}
	r.clock.AdvanceTo(done)
	return nil
}

// Pread reads from a host file into a (pinned) buffer on the host thread's
// clock, charging page-cache or disk time.
func (r *Runtime) Pread(f *hostfs.File, buf []byte, off int64) (int, error) {
	return f.Pread(r.clock, buf, off)
}

// Stream is an asynchronous command queue: operations are ordered within
// the stream but overlap the host thread and other streams, which is how
// the baselines pipeline file reads, DMA, and kernel execution.
type Stream struct {
	r   *Runtime
	pos simtime.Time
}

// NewStream creates a stream whose first operation may begin no earlier
// than the host thread's current time.
func (r *Runtime) NewStream() *Stream {
	return &Stream{r: r, pos: r.clock.Now()}
}

// MemcpyAsync enqueues a transfer on the stream (cudaMemcpyAsync): the host
// thread continues immediately; the stream's position advances to the
// transfer's completion.
func (s *Stream) MemcpyAsync(dst, src []byte, dir pcie.Direction) error {
	// Enqueueing costs host time; the transfer cannot start before the
	// host thread issued it.
	s.r.clock.Advance(apiOverhead)
	start := s.pos
	if now := s.r.clock.Now(); now > start {
		start = now
	}
	done, err := s.r.link.Copy(start, dir, dst, src)
	if err != nil {
		return err
	}
	s.pos = done
	return nil
}

// Launch enqueues a kernel on the stream and advances the stream position
// to its completion. (The simulated kernel body executes on the calling
// goroutine; only its virtual timing is stream-ordered.)
func (s *Stream) Launch(blocks, threads int, fn gpu.BlockFunc) error {
	s.r.clock.Advance(apiOverhead)
	start := s.pos
	if now := s.r.clock.Now(); now > start {
		start = now
	}
	end, err := s.r.dev.Launch(start, blocks, threads, fn)
	if err != nil {
		return err
	}
	s.pos = end
	return nil
}

// Pos reports the stream's current completion frontier.
func (s *Stream) Pos() simtime.Time { return s.pos }

// Synchronize blocks the host thread until the stream drains
// (cudaStreamSynchronize).
func (s *Stream) Synchronize() {
	s.r.clock.AdvanceTo(s.pos)
}
