package cudart

import (
	"bytes"
	"testing"

	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

func harness() (*Runtime, *hostfs.FS) {
	host := hostfs.New(hostfs.Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      64 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
	bus := pcie.New(pcie.Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, host.MemBus())
	dev := gpu.New(gpu.Config{
		ID: 0, MPs: 4, BlocksPerMP: 2, MemBytes: 32 << 20,
		MemBandwidth: 100_000 * simtime.MBps, Flops: 1e9,
	})
	return New(host, bus.NewLink(0, dev.MemBandwidthResource(), 100_000*simtime.MBps), dev, 0), host
}

func TestMemcpyRoundTrip(t *testing.T) {
	rt, _ := harness()
	defer rt.Close()
	dev, err := rt.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Free()
	src := bytes.Repeat([]byte{0xAB}, 1<<10)
	if err := rt.Memcpy(dev.Data, src, pcie.HostToDevice); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 1<<10)
	if err := rt.Memcpy(back, dev.Data, pcie.DeviceToHost); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("payload corrupted")
	}
	if rt.Clock().Now() == 0 {
		t.Fatalf("synchronous memcpy must block the host clock")
	}
}

func TestMallocExhaustsDevice(t *testing.T) {
	rt, _ := harness()
	defer rt.Close()
	if _, err := rt.Malloc(1 << 30); err == nil {
		t.Fatalf("over-allocation should fail like cudaMalloc")
	}
}

func TestPinnedAccounting(t *testing.T) {
	rt, host := harness()
	buf := rt.HostMalloc(8 << 20)
	if int64(len(buf)) != 8<<20 {
		t.Fatalf("pinned size")
	}
	// Pinning shrinks the page cache; verified indirectly through hostfs.
	rt.HostFree(8 << 20)
	rt.HostMalloc(4 << 20)
	rt.Close() // releases remaining reservations
	_ = host
}

func TestStreamOverlapsHost(t *testing.T) {
	rt, host := harness()
	defer rt.Close()
	c := simtime.NewClock(0)
	if err := host.WriteFile(c, "/f", make([]byte, 8<<20), hostfs.ModeRead|hostfs.ModeWrite); err != nil {
		t.Fatal(err)
	}
	dev, _ := rt.Malloc(8 << 20)
	defer dev.Free()
	pin := rt.HostMalloc(8 << 20)
	defer rt.HostFree(8 << 20)

	f, err := host.Open(rt.Clock(), "/f", hostfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := rt.Pread(f, pin, 0); err != nil {
		t.Fatal(err)
	}
	st := rt.NewStream()
	hostBefore := rt.Clock().Now()
	if err := st.MemcpyAsync(dev.Data, pin, pcie.HostToDevice); err != nil {
		t.Fatal(err)
	}
	// Async: host advances only by the API overhead, not the transfer.
	if rt.Clock().Now() > hostBefore+simtime.Time(20*simtime.Microsecond) {
		t.Fatalf("async memcpy blocked the host: %v", rt.Clock().Now()-hostBefore)
	}
	if st.Pos() <= rt.Clock().Now() {
		t.Fatalf("stream frontier should be in the future")
	}
	st.Synchronize()
	if rt.Clock().Now() < st.Pos() {
		t.Fatalf("synchronize should advance the host to the stream frontier")
	}
}

func TestStreamKernelOrdering(t *testing.T) {
	rt, _ := harness()
	defer rt.Close()
	st := rt.NewStream()
	dev, _ := rt.Malloc(1 << 10)
	defer dev.Free()
	pin := rt.HostMalloc(1 << 10)
	defer rt.HostFree(1 << 10)

	if err := st.MemcpyAsync(dev.Data, pin, pcie.HostToDevice); err != nil {
		t.Fatal(err)
	}
	afterCopy := st.Pos()
	var kernelStart simtime.Time
	err := st.Launch(1, 32, func(b *gpu.Block) error {
		kernelStart = b.Clock.Now()
		b.Compute(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if kernelStart < afterCopy {
		t.Fatalf("kernel started at %v before its input transfer finished at %v", kernelStart, afterCopy)
	}
	if st.Pos() <= afterCopy {
		t.Fatalf("stream frontier must advance past the kernel")
	}
}
