// Package gpu simulates a discrete FERMI-class GPU closely enough to host
// the GPUfs library: a set of multiprocessors (MPs), kernels made of
// threadblocks, a hardware scheduler that dispatches blocks in
// non-deterministic order and never preempts them, per-block on-die
// scratchpad memory, device memory with finite bandwidth, and memory fences
// with the weak consistency the paper's RPC layer must work around (§2, §4.3).
//
// Threadblocks execute as real goroutines, so GPUfs's lock-free data
// structures are contended by genuine concurrency. Virtual time is tracked
// per block: a block's clock starts when an execution slot frees up and
// advances as the block charges compute and memory costs; the kernel's
// completion time is the maximum over its blocks.
//
// Threads within a block are modelled logically, as the GPUfs prototype
// itself does for API calls: the library is invoked at block granularity and
// data movement "by all threads collaboratively" is expressed through
// ForEachThread, whose cost model reflects coalesced parallel access.
package gpu

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"gpufs/internal/memsys"
	"gpufs/internal/simtime"
)

// ErrKernelFault is wrapped by errors returned from faulting kernels. The
// paper notes a GPU program failure may require restarting the whole card,
// losing device memory (§3.3); Device.Faulted models that sticky state.
var ErrKernelFault = errors.New("gpu: kernel fault")

// Config holds the device-model parameters.
type Config struct {
	// ID is the device's index in the system.
	ID int
	// MPs is the number of multiprocessors.
	MPs int
	// BlocksPerMP is the residency limit per MP.
	BlocksPerMP int
	// WarpSize is the number of lockstep threads per warp.
	WarpSize int
	// MemBytes is the device memory capacity.
	MemBytes int64
	// MemBandwidth is the aggregate device memory bandwidth.
	MemBandwidth simtime.Rate
	// Flops is the device's achieved arithmetic throughput, used by
	// Block.Compute.
	Flops float64
	// ScratchpadBytes is the per-block on-die scratchpad size.
	ScratchpadBytes int64
	// LaunchOverhead is the fixed virtual cost of a kernel launch.
	LaunchOverhead simtime.Duration
	// SchedSeed seeds the non-deterministic block dispatch order. Zero
	// selects a fixed default so runs are reproducible unless varied
	// explicitly.
	SchedSeed int64
}

// Device is one simulated GPU.
type Device struct {
	cfg Config

	// Mem is the device's global memory.
	Mem *memsys.Arena

	membw *simtime.Resource
	slots []slot

	// launchMu serializes kernel launches; slots persist virtual
	// availability across launches.
	launchMu sync.Mutex
	slotMu   sync.Mutex // guards slot.at / slot.assigned

	mu        sync.Mutex
	rng       *rand.Rand
	launchSeq int64
	faulted   error

	blocksRun atomic.Int64
	kernels   atomic.Int64
}

type slot struct {
	mp       *simtime.Resource // the MP this slot executes on
	at       simtime.Time      // virtual time the slot becomes free (freeMu)
	assigned int64             // blocks dispatched to this slot (freeMu)
}

// New creates a device.
func New(cfg Config) *Device {
	if cfg.MPs < 1 {
		cfg.MPs = 1
	}
	if cfg.BlocksPerMP < 1 {
		cfg.BlocksPerMP = 1
	}
	if cfg.WarpSize < 1 {
		cfg.WarpSize = 32
	}
	seed := cfg.SchedSeed
	if seed == 0 {
		seed = 0x6702 + int64(cfg.ID)
	}
	d := &Device{
		cfg:   cfg,
		Mem:   memsys.NewArena(fmt.Sprintf("gpu%d", cfg.ID), memsys.DeviceMemory, cfg.MemBytes),
		membw: simtime.NewResource(fmt.Sprintf("gpu%d-membw", cfg.ID)),
		rng:   rand.New(rand.NewSource(seed)),
	}
	mps := make([]*simtime.Resource, cfg.MPs)
	for i := range mps {
		mps[i] = simtime.NewResource(fmt.Sprintf("gpu%d-mp%d", cfg.ID, i))
	}
	n := cfg.MPs * cfg.BlocksPerMP
	d.slots = make([]slot, n)
	for i := 0; i < n; i++ {
		d.slots[i].mp = mps[i%cfg.MPs]
	}
	return d
}

// ID reports the device index.
func (d *Device) ID() int { return d.cfg.ID }

// WarpSize reports the number of lockstep threads per warp.
func (d *Device) WarpSize() int { return d.cfg.WarpSize }

// MaxResidentBlocks reports how many blocks can execute concurrently.
func (d *Device) MaxResidentBlocks() int { return len(d.slots) }

// MemBandwidthResource exposes the device memory bandwidth timeline so the
// DMA engine can charge transfers into device memory against it.
func (d *Device) MemBandwidthResource() *simtime.Resource { return d.membw }

// Faulted reports the sticky fault recorded by a failed kernel, if any.
func (d *Device) Faulted() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faulted
}

// InjectFault latches a device fault from the outside, modelling a
// hardware-level failure (an XID-class error) rather than a kernel bug:
// subsequent Launches fail until ResetFault, exactly as if a kernel had
// faulted. An already-faulted device keeps its original error.
func (d *Device) InjectFault(cause error) {
	d.mu.Lock()
	if d.faulted == nil {
		d.faulted = fmt.Errorf("%w: injected: %v", ErrKernelFault, cause)
	}
	d.mu.Unlock()
}

// ResetFault clears the fault state, modelling a GPU restart. Device memory
// contents survive here (unlike real hardware) so tests can inspect state.
func (d *Device) ResetFault() {
	d.mu.Lock()
	d.faulted = nil
	d.mu.Unlock()
}

// ResetTime returns the device's execution-slot and bandwidth timelines to
// idle. Memory contents and fault state are untouched.
func (d *Device) ResetTime() {
	seen := make(map[*simtime.Resource]bool)
	d.slotMu.Lock()
	for i := range d.slots {
		d.slots[i].at = 0
		if !seen[d.slots[i].mp] {
			seen[d.slots[i].mp] = true
			d.slots[i].mp.Reset()
		}
	}
	d.slotMu.Unlock()
	d.membw.Reset()
}

// BlocksRun reports the total number of threadblocks executed.
func (d *Device) BlocksRun() int64 { return d.blocksRun.Load() }

// KernelsRun reports the total number of kernels launched.
func (d *Device) KernelsRun() int64 { return d.kernels.Load() }

// BlockFunc is the body of a threadblock. It runs to completion without
// preemption. A returned error models a kernel fault (invalid access,
// assertion); it aborts dispatch of not-yet-started blocks and is reported
// by Launch.
type BlockFunc func(b *Block) error

// Launch enqueues blocks threadblocks of threads threads each and executes
// them, dispatching in a non-deterministic (seeded-random) order onto
// execution slots, like the hardware scheduler of §2: blocks run to
// completion and dispatch is driven only by slot availability. One
// persistent worker goroutine drains the queue per slot, so real-time Go
// scheduling quirks cannot skew which slot a block lands on.
//
// Launch blocks the calling goroutine until the kernel completes and
// returns the kernel's virtual completion time. Launches on one device
// serialize (we do not model FERMI's concurrent-kernel execution; the
// workloads in this repository never need it on a single device).
func (d *Device) Launch(start simtime.Time, blocks, threads int, fn BlockFunc) (simtime.Time, error) {
	if blocks < 1 || threads < 1 {
		return start, fmt.Errorf("gpu: invalid launch geometry %dx%d", blocks, threads)
	}
	if err := d.Faulted(); err != nil {
		return start, fmt.Errorf("gpu%d: device faulted: %w", d.cfg.ID, err)
	}
	d.launchMu.Lock()
	defer d.launchMu.Unlock()

	d.mu.Lock()
	seq := d.launchSeq
	d.launchSeq++
	order := d.rng.Perm(blocks)
	d.mu.Unlock()
	d.kernels.Add(1)

	launchAt := start.Add(d.cfg.LaunchOverhead)

	var (
		wg      sync.WaitGroup
		meter   simtime.Meter
		errOnce sync.Once
		kerr    error
		aborted atomic.Bool
	)
	meter.Observe(launchAt)

	// One persistent worker per execution slot drains the block queue.
	// Pulls are ordered by VIRTUAL slot availability through a turnstile
	// (see pullTurn): the slot that frees earliest in virtual time takes
	// the next block, exactly like the hardware scheduler — real-time Go
	// scheduling (which on one OS core is heavily biased) cannot skew
	// block placement.
	ds := &dispatchState{
		order: order,
		busy:  make([]bool, len(d.slots)),
	}
	ds.cond = sync.NewCond(&ds.mu)

	for si := range d.slots {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s := &d.slots[si]
			for {
				idx, startAt, ok := d.pullTurn(ds, si, launchAt, &aborted)
				if !ok {
					return
				}

				b := &Block{
					Idx:     idx,
					Blocks:  blocks,
					Threads: threads,
					Clock:   simtime.NewClock(startAt),
					Rand:    rand.New(rand.NewSource(seq<<20 ^ int64(idx)*0x9e3779b9)),
					dev:     d,
					mp:      s.mp,
				}
				if d.cfg.ScratchpadBytes > 0 {
					b.Scratch = make([]byte, d.cfg.ScratchpadBytes)
				}

				err := runBlock(b, fn)
				end := b.Clock.Now()
				meter.Observe(end)

				ds.mu.Lock()
				d.slotMu.Lock()
				if end > s.at {
					s.at = end
				}
				d.slotMu.Unlock()
				ds.busy[si] = false
				ds.mu.Unlock()
				ds.cond.Broadcast()

				d.blocksRun.Add(1)
				if err != nil {
					aborted.Store(true)
					errOnce.Do(func() {
						kerr = fmt.Errorf("%w: block %d: %v", ErrKernelFault, b.Idx, err)
						d.mu.Lock()
						d.faulted = kerr
						d.mu.Unlock()
					})
					ds.cond.Broadcast()
					return
				}
			}
		}(si)
	}
	wg.Wait()
	return meter.Max(), kerr
}

// dispatchState coordinates virtual-availability-ordered block pulls.
type dispatchState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	order []int // remaining block indices
	next  int
	busy  []bool
}

// pullTurn blocks until slot si is the virtually-earliest available slot,
// then takes the next block index. A slot may pull when no idle slot has a
// (smaller, or equal with lower index) availability and no busy slot's
// last-known availability is strictly smaller (a busy slot can only become
// available later than that bound, so if the bound is not smaller it cannot
// beat us).
func (d *Device) pullTurn(ds *dispatchState, si int, launchAt simtime.Time, aborted *atomic.Bool) (idx int, startAt simtime.Time, ok bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for {
		if ds.next >= len(ds.order) || aborted.Load() {
			ds.cond.Broadcast()
			return 0, 0, false
		}
		d.slotMu.Lock()
		myAt := d.slots[si].at
		turn := true
		for j := range d.slots {
			if j == si {
				continue
			}
			at := d.slots[j].at
			if ds.busy[j] {
				if at < myAt {
					turn = false
					break
				}
			} else if at < myAt || (at == myAt && j < si) {
				turn = false
				break
			}
		}
		d.slotMu.Unlock()
		if turn {
			idx = ds.order[ds.next]
			ds.next++
			ds.busy[si] = true
			d.slotMu.Lock()
			d.slots[si].assigned++
			startAt = launchAt
			if d.slots[si].at > startAt {
				startAt = d.slots[si].at
			}
			d.slotMu.Unlock()
			ds.cond.Broadcast()
			return idx, startAt, true
		}
		ds.cond.Wait()
	}
}

func runBlock(b *Block, fn BlockFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(b)
}

// Block is the execution context handed to a BlockFunc: the simulated
// threadblock.
type Block struct {
	// Idx is the block's index within the kernel grid.
	Idx int
	// Blocks is the kernel's total block count.
	Blocks int
	// Threads is the number of threads in this block.
	Threads int
	// Clock is the block's local virtual clock.
	Clock *simtime.Clock
	// Scratch is the block's on-die scratchpad memory.
	Scratch []byte
	// Rand is a per-block deterministic random source.
	Rand *rand.Rand

	dev *Device
	mp  *simtime.Resource
}

// Device returns the device executing the block.
func (b *Block) Device() *Device { return b.dev }

// Warps reports the number of warps in the block.
func (b *Block) Warps() int {
	ws := b.dev.cfg.WarpSize
	return (b.Threads + ws - 1) / ws
}

// SyncThreads is the block-wide barrier (__syncthreads). All simulated
// threads are already in lockstep at block granularity, so this only
// charges the barrier's virtual cost.
func (b *Block) SyncThreads() {
	b.Clock.Use(b.mp, 50*simtime.Nanosecond)
}

// MemFence issues a device-wide memory fence (__threadfence_system). GPUfs
// requires one after gwrite so that data paged back by a CPU-initiated DMA
// is not left behind in the GPU's L1 (§4.1).
func (b *Block) MemFence() {
	b.Clock.Use(b.mp, 200*simtime.Nanosecond)
}

// ForEachThread runs fn once per thread in the block, modelling code that
// all threads execute in lockstep. fn must be cheap and side-effect-local;
// its virtual cost is charged by the caller via Compute/CopyBytes.
func (b *Block) ForEachThread(fn func(tid int)) {
	for t := 0; t < b.Threads; t++ {
		fn(t)
	}
}

// ForEachWarp runs fn once per warp with the warp's first thread id.
func (b *Block) ForEachWarp(fn func(warp, firstTid int)) {
	ws := b.dev.cfg.WarpSize
	for w, t := 0, 0; t < b.Threads; w, t = w+1, t+ws {
		fn(w, t)
	}
}

// Busy charges d of execution time on the block's MP timeline. Library
// code (GPUfs) uses it to account its own instruction footprint.
func (b *Block) Busy(d simtime.Duration) {
	if d > 0 {
		b.Clock.Use(b.mp, d)
	}
}

// UseMemory charges d of device-memory occupancy to the block, modelling
// library metadata traffic (for example radix-tree node reads during
// lock-free buffer-cache traversal) that competes with data copies for
// memory bandwidth.
func (b *Block) UseMemory(d simtime.Duration) {
	if d > 0 {
		b.Clock.Use(b.dev.membw, d)
	}
}

// Compute charges flops of arithmetic to the block's MP. The per-MP rate is
// the device's aggregate rate divided across MPs; blocks co-resident on one
// MP serialize on its timeline, which models hardware multiplexing.
func (b *Block) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	perMP := b.dev.cfg.Flops / float64(b.dev.cfg.MPs)
	if perMP <= 0 {
		return
	}
	d := simtime.Duration(flops / perMP * float64(simtime.Second))
	b.Clock.Use(b.mp, d)
}

// ComputeBytes charges a streaming computation over n bytes at the given
// per-device processing rate (bytes/s), divided across MPs like Compute.
func (b *Block) ComputeBytes(n int64, rate simtime.Rate) {
	if n <= 0 || rate <= 0 {
		return
	}
	perMP := simtime.Rate(float64(rate) / float64(b.dev.cfg.MPs))
	b.Clock.Use(b.mp, simtime.TransferTime(n, perMP))
}

// CopyBytes performs a real copy between device-resident slices and charges
// the device memory bandwidth (two passes: read + write). This is the
// primitive behind collaborative page copies in gread/gwrite.
func (b *Block) CopyBytes(dst, src []byte) int {
	n := copy(dst, src)
	b.chargeMem(int64(n) * 2)
	return n
}

// ZeroBytes zeroes a device-resident slice collaboratively and charges one
// bandwidth pass.
func (b *Block) ZeroBytes(p []byte) {
	for i := range p {
		p[i] = 0
	}
	b.chargeMem(int64(len(p)))
}

// TouchBytes charges n bytes of device-memory traffic without moving real
// data; used when a workload reads a mapped page without copying it.
func (b *Block) TouchBytes(n int64) { b.chargeMem(n) }

func (b *Block) chargeMem(n int64) {
	if n <= 0 {
		return
	}
	b.Clock.Use(b.dev.membw, simtime.TransferTime(n, b.dev.cfg.MemBandwidth))
}

// SlotAssignments reports how many blocks each slot has executed
// (diagnostics).
func (d *Device) SlotAssignments() []int64 {
	d.slotMu.Lock()
	defer d.slotMu.Unlock()
	out := make([]int64, len(d.slots))
	for i := range d.slots {
		out[i] = d.slots[i].assigned
	}
	return out
}

// MPBusy reports each multiprocessor's accumulated busy time (diagnostics).
func (d *Device) MPBusy() []simtime.Duration {
	seen := make(map[*simtime.Resource]bool)
	var out []simtime.Duration
	for i := range d.slots {
		if !seen[d.slots[i].mp] {
			seen[d.slots[i].mp] = true
			out = append(out, d.slots[i].mp.Busy())
		}
	}
	return out
}
