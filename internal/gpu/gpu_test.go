package gpu

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gpufs/internal/simtime"
)

func testDevice() *Device {
	return New(Config{
		ID:              0,
		MPs:             4,
		BlocksPerMP:     2,
		WarpSize:        32,
		MemBytes:        64 << 20,
		MemBandwidth:    100_000 * simtime.MBps,
		Flops:           8e9,
		ScratchpadBytes: 48 << 10,
		LaunchOverhead:  10 * simtime.Microsecond,
	})
}

func TestLaunchGeometry(t *testing.T) {
	d := testDevice()
	if _, err := d.Launch(0, 0, 32, func(b *Block) error { return nil }); err == nil {
		t.Fatalf("zero blocks must fail")
	}
	if _, err := d.Launch(0, 4, 0, func(b *Block) error { return nil }); err == nil {
		t.Fatalf("zero threads must fail")
	}
	if d.MaxResidentBlocks() != 8 {
		t.Fatalf("resident = %d", d.MaxResidentBlocks())
	}
	if d.WarpSize() != 32 {
		t.Fatalf("warp size")
	}
}

func TestAllBlocksRunExactlyOnce(t *testing.T) {
	d := testDevice()
	var mu sync.Mutex
	seen := make(map[int]int)
	end, err := d.Launch(0, 100, 64, func(b *Block) error {
		mu.Lock()
		seen[b.Idx]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("blocks seen: %d", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("block %d ran %d times", idx, n)
		}
	}
	if end < simtime.Time(10*simtime.Microsecond) {
		t.Fatalf("end %v earlier than launch overhead", end)
	}
	if d.BlocksRun() != 100 || d.KernelsRun() != 1 {
		t.Fatalf("counters: %d %d", d.BlocksRun(), d.KernelsRun())
	}
}

func TestComputeMakespanMatchesIdeal(t *testing.T) {
	// Uniform compute across many blocks should use every MP: makespan ≈
	// total flops / device rate.
	d := testDevice()
	const blocks = 64
	const flopsPerBlock = 1e9 / 8
	end, err := d.Launch(0, blocks, 128, func(b *Block) error {
		b.Compute(flopsPerBlock)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal := simtime.Duration(blocks * flopsPerBlock / 8e9 * float64(simtime.Second))
	got := simtime.Duration(end)
	if got < ideal || got > ideal+ideal/10+simtime.Millisecond {
		t.Fatalf("makespan %v, ideal %v: scheduling must balance MPs", got, ideal)
	}
}

func TestDispatchBalanced(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(0, 80, 64, func(b *Block) error {
		b.Compute(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range d.SlotAssignments() {
		if n != 10 {
			t.Fatalf("slot %d ran %d blocks; uniform work must balance to 10", i, n)
		}
	}
}

func TestNonDeterministicOrderBySeed(t *testing.T) {
	run := func(seed int64) []int {
		d := New(Config{ID: 0, MPs: 1, BlocksPerMP: 1, MemBytes: 1 << 20, SchedSeed: seed})
		var order []int
		var mu sync.Mutex
		d.Launch(0, 16, 32, func(b *Block) error {
			mu.Lock()
			order = append(order, b.Idx)
			mu.Unlock()
			return nil
		})
		return order
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds should give different dispatch orders")
	}
	// Single slot: order is strictly the dispatch order, a permutation.
	seen := make(map[int]bool)
	for _, idx := range a {
		seen[idx] = true
	}
	if len(seen) != 16 {
		t.Fatalf("not a permutation: %v", a)
	}
}

func TestKernelFaultStickiness(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(0, 8, 32, func(b *Block) error {
		if b.Idx == 3 {
			return fmt.Errorf("bad memory access")
		}
		return nil
	})
	if !errors.Is(err, ErrKernelFault) {
		t.Fatalf("want ErrKernelFault, got %v", err)
	}
	if d.Faulted() == nil {
		t.Fatalf("fault should stick (the paper: GPU failures may require a card restart)")
	}
	if _, err := d.Launch(0, 1, 1, func(b *Block) error { return nil }); err == nil {
		t.Fatalf("launch on faulted device must fail")
	}
	d.ResetFault()
	if _, err := d.Launch(0, 1, 1, func(b *Block) error { return nil }); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestPanicBecomesFault(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(0, 2, 32, func(b *Block) error {
		if b.Idx == 1 {
			panic("assertion failure")
		}
		return nil
	})
	if !errors.Is(err, ErrKernelFault) {
		t.Fatalf("panic should surface as kernel fault: %v", err)
	}
	d.ResetFault()
}

func TestBlockContext(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(0, 1, 100, func(b *Block) error {
		if b.Warps() != 4 {
			return fmt.Errorf("warps = %d, want 4 (100 threads / 32)", b.Warps())
		}
		if len(b.Scratch) != 48<<10 {
			return fmt.Errorf("scratchpad %d", len(b.Scratch))
		}
		count := 0
		b.ForEachThread(func(tid int) { count++ })
		if count != 100 {
			return fmt.Errorf("ForEachThread ran %d", count)
		}
		warps := 0
		b.ForEachWarp(func(w, first int) { warps++ })
		if warps != 4 {
			return fmt.Errorf("ForEachWarp ran %d", warps)
		}
		if b.Device() != d {
			return fmt.Errorf("device accessor")
		}
		b.SyncThreads()
		b.MemFence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCopyAndZeroCharges(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(0, 1, 32, func(b *Block) error {
		src := make([]byte, 64<<10)
		src[2] = 3
		dst := make([]byte, 64<<10)
		before := b.Clock.Now()
		if n := b.CopyBytes(dst, src); n != 64<<10 {
			return fmt.Errorf("copy n=%d", n)
		}
		if dst[2] != 3 {
			return fmt.Errorf("copy payload")
		}
		if b.Clock.Now() <= before {
			return fmt.Errorf("copy should cost time")
		}
		b.ZeroBytes(dst)
		if dst[2] != 0 {
			return fmt.Errorf("zero payload")
		}
		b.TouchBytes(1 << 20)
		b.UseMemory(simtime.Microsecond)
		b.Busy(simtime.Microsecond)
		b.ComputeBytes(1<<20, 1e9)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBandwidthResource().Busy() == 0 {
		t.Fatalf("memory traffic not accounted")
	}
}

func TestSlotAvailabilityPersistsAcrossLaunches(t *testing.T) {
	d := testDevice()
	end1, _ := d.Launch(0, 8, 32, func(b *Block) error {
		b.Compute(1e8)
		return nil
	})
	// A second kernel launched at time 0 still waits for slots to free:
	// the earliest slot frees halfway through the first kernel (two
	// blocks share each MP), so no second-kernel block may start before
	// then.
	var earliest simtime.Time = 1 << 62
	var mu sync.Mutex
	d.Launch(0, 8, 32, func(b *Block) error {
		mu.Lock()
		if b.Clock.Now() < earliest {
			earliest = b.Clock.Now()
		}
		mu.Unlock()
		return nil
	})
	if earliest < end1/2-simtime.Time(simtime.Millisecond) {
		t.Fatalf("second kernel started at %v before any slot freed (first kernel ended %v)", earliest, end1)
	}
	d.ResetTime()
	end3, _ := d.Launch(0, 1, 32, func(b *Block) error { return nil })
	if end3 > simtime.Time(simtime.Millisecond) {
		t.Fatalf("after ResetTime, kernel should start immediately: %v", end3)
	}
}

func TestBlockRandDeterministicPerLaunch(t *testing.T) {
	collect := func() []int64 {
		d := New(Config{ID: 0, MPs: 2, BlocksPerMP: 2, MemBytes: 1 << 20})
		out := make([]int64, 8)
		var mu sync.Mutex
		d.Launch(0, 8, 32, func(b *Block) error {
			v := b.Rand.Int63()
			mu.Lock()
			out[b.Idx] = v
			mu.Unlock()
			return nil
		})
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("block RNG must be deterministic per (launch, block): %d", i)
		}
	}
}

func TestConcurrentLaunchesSerializePerDevice(t *testing.T) {
	// Launches on one device serialize (documented simplification); both
	// kernels must still run all their blocks exactly once.
	d := testDevice()
	var mu sync.Mutex
	counts := map[string]int{}
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			d.Launch(0, 20, 32, func(b *Block) error {
				mu.Lock()
				counts[fmt.Sprintf("%d/%d", k, b.Idx)]++
				mu.Unlock()
				b.Compute(1e5)
				return nil
			})
		}(k)
	}
	wg.Wait()
	if len(counts) != 40 {
		t.Fatalf("blocks ran: %d, want 40", len(counts))
	}
	for key, n := range counts {
		if n != 1 {
			t.Fatalf("block %s ran %d times", key, n)
		}
	}
	if d.KernelsRun() != 2 {
		t.Fatalf("kernels: %d", d.KernelsRun())
	}
}

// TestSchedulerQualityProperty: for random per-block compute durations,
// the kernel makespan must sit between the trivial lower bounds (critical
// block; total work over all MPs) and the greedy list-scheduling upper
// bound (2x optimal for uniform machines).
func TestSchedulerQualityProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := New(Config{
			ID: 0, MPs: 4, BlocksPerMP: 2, MemBytes: 1 << 20,
			Flops: 4e9, // 1e9 per MP
		})
		nBlocks := 24 + rng.Intn(40)
		durs := make([]float64, nBlocks) // flops per block
		var total float64
		var longest float64
		for i := range durs {
			durs[i] = float64(rng.Intn(1e8) + 1e6)
			total += durs[i]
			if durs[i] > longest {
				longest = durs[i]
			}
		}
		end, err := d.Launch(0, nBlocks, 32, func(b *Block) error {
			b.Compute(durs[b.Idx])
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		makespan := simtime.Duration(end).Seconds()
		perMP := 1e9
		lower := total / (4 * perMP)
		if c := longest / perMP; c > lower {
			lower = c
		}
		upper := 2 * lower * 1.2 // list scheduling bound + model slack
		if makespan < lower*0.99 {
			t.Fatalf("seed %d: makespan %.4fs below lower bound %.4fs", seed, makespan, lower)
		}
		if makespan > upper {
			t.Fatalf("seed %d: makespan %.4fs exceeds list-scheduling bound %.4fs", seed, makespan, upper)
		}
	}
}
