// Package disk models the rotational disk backing the host file system:
// a WDC WD5003 (7200RPM) whose raw sequential read bandwidth the paper
// measured at 132 MB/s via `hdparm -t`.
//
// The model is deliberately simple — a serialized bandwidth resource plus a
// fixed seek penalty for non-contiguous accesses — because GPUfs experiments
// depend only on the three-orders-of-magnitude gap between cached and
// uncached file access, not on detailed disk geometry.
package disk

import (
	"sync"
	"sync/atomic"

	"gpufs/internal/faults"
	"gpufs/internal/simtime"
)

// Disk is a virtual-time model of a single rotational disk. It is safe for
// concurrent use; concurrent requests serialize on the disk head, as they
// would in reality.
type Disk struct {
	res  *simtime.Resource
	bw   simtime.Rate
	seek simtime.Duration

	// inj injects latency spikes (stalls); nil means none.
	inj atomic.Pointer[faults.Injector]

	mu        sync.Mutex
	lastIno   int64
	lastEnd   int64
	bytesRead int64
	bytesWrit int64
	seeks     int64
}

// New creates a disk with the given sequential bandwidth and average
// seek + rotational latency.
func New(bw simtime.Rate, seek simtime.Duration) *Disk {
	return &Disk{
		res:  simtime.NewResource("disk"),
		bw:   bw,
		seek: seek,
	}
}

// Read charges a read of n bytes of file ino starting at off and returns the
// completion time. Contiguity with the previous access is detected
// automatically: a read that continues where the head left off pays no seek.
func (d *Disk) Read(now simtime.Time, ino, off, n int64) simtime.Time {
	return d.access(now, ino, off, n, false)
}

// Write charges a write of n bytes and returns the completion time.
func (d *Disk) Write(now simtime.Time, ino, off, n int64) simtime.Time {
	return d.access(now, ino, off, n, true)
}

func (d *Disk) access(now simtime.Time, ino, off, n int64, write bool) simtime.Time {
	if n <= 0 {
		return now
	}
	d.mu.Lock()
	cost := simtime.TransferTime(n, d.bw)
	if ino != d.lastIno || off != d.lastEnd {
		cost += d.seek
		d.seeks++
	}
	if inj := d.inj.Load(); inj.Should(faults.DiskStall, now) {
		// A latency spike: bad-block remap, thermal recalibration, or a
		// firmware hiccup. The head keeps the request; everything behind
		// it queues.
		cost += inj.Delay(faults.DiskStall)
	}
	d.lastIno, d.lastEnd = ino, off+n
	if write {
		d.bytesWrit += n
	} else {
		d.bytesRead += n
	}
	_, end := d.res.Acquire(now, cost)
	d.mu.Unlock()
	return end
}

// SetFaultInjector installs (or, with nil, removes) the disk's fault
// injector.
func (d *Disk) SetFaultInjector(inj *faults.Injector) { d.inj.Store(inj) }

// Stats reports cumulative byte and seek counts.
func (d *Disk) Stats() (read, written, seeks int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesRead, d.bytesWrit, d.seeks
}

// Busy reports total busy time accumulated on the disk.
func (d *Disk) Busy() simtime.Duration { return d.res.Busy() }

// Reset returns the disk to its initial idle state.
func (d *Disk) Reset() {
	d.mu.Lock()
	d.lastIno, d.lastEnd = 0, 0
	d.bytesRead, d.bytesWrit, d.seeks = 0, 0, 0
	d.mu.Unlock()
	d.res.Reset()
}
