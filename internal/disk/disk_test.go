package disk

import (
	"testing"

	"gpufs/internal/simtime"
)

func TestSequentialReadsPayOneSeek(t *testing.T) {
	d := New(100*simtime.MBps, 10*simtime.Millisecond)
	end1 := d.Read(0, 1, 0, 1e6)      // seek + 10ms transfer
	end2 := d.Read(end1, 1, 1e6, 1e6) // contiguous: transfer only
	if want := simtime.Time(10*simtime.Millisecond + 10*simtime.Millisecond); end1 != want {
		t.Fatalf("first read end %v, want %v", end1, want)
	}
	if got := end2 - end1; got != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("sequential read cost %v, want 10ms", simtime.Duration(got))
	}
	if _, _, seeks := d.Stats(); seeks != 1 {
		t.Fatalf("seeks = %d, want 1", seeks)
	}
}

func TestRandomReadsSeek(t *testing.T) {
	d := New(100*simtime.MBps, 10*simtime.Millisecond)
	d.Read(0, 1, 0, 1000)
	d.Read(0, 1, 5_000_000, 1000) // discontiguous: seek
	d.Read(0, 2, 0, 1000)         // different inode: seek
	if _, _, seeks := d.Stats(); seeks != 3 {
		t.Fatalf("seeks = %d, want 3", seeks)
	}
}

func TestWriteAccounting(t *testing.T) {
	d := New(100*simtime.MBps, simtime.Millisecond)
	d.Write(0, 1, 0, 4096)
	read, written, _ := d.Stats()
	if read != 0 || written != 4096 {
		t.Fatalf("stats: read=%d written=%d", read, written)
	}
}

func TestZeroByteAccessFree(t *testing.T) {
	d := New(100*simtime.MBps, simtime.Millisecond)
	if end := d.Read(42, 1, 0, 0); end != 42 {
		t.Fatalf("zero-byte read should be free, end=%v", end)
	}
}

func TestReset(t *testing.T) {
	d := New(100*simtime.MBps, simtime.Millisecond)
	d.Read(0, 1, 0, 1e6)
	d.Reset()
	if r, w, s := d.Stats(); r != 0 || w != 0 || s != 0 {
		t.Fatalf("reset did not clear stats")
	}
	if d.Busy() != 0 {
		t.Fatalf("reset did not clear timeline")
	}
}

func TestConcurrentRequestsSerialize(t *testing.T) {
	d := New(100*simtime.MBps, 0)
	// Two 10ms reads issued at t=0 must serialize on the head.
	e1 := d.Read(0, 1, 0, 1e6)
	e2 := d.Read(0, 1, 1e6, 1e6)
	if e1 == e2 {
		t.Fatalf("disk must serialize: %v %v", e1, e2)
	}
	if later := max64(int64(e1), int64(e2)); later != int64(20*simtime.Millisecond) {
		t.Fatalf("total %v, want 20ms", simtime.Duration(later))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
