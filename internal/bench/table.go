// Package bench regenerates every table and figure of the GPUfs paper's
// evaluation (§5) against the simulated machine: Figures 4–8 and Tables
// 2–4. Each experiment builds its own System(s) from a scaled
// configuration, runs the GPUfs workload and its baselines, and renders a
// text table whose rows mirror what the paper reports.
//
// Absolute numbers are virtual-time estimates and will not match the
// paper's testbed exactly; the claims under reproduction are the *shapes*:
// who wins, by roughly what factor, and where the crossovers fall.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gpufs/internal/simtime"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact ("Figure 4", "Table 2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data cells.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteJSONRows emits the table as machine-readable NDJSON: one object
// per data row, keyed by experiment id, title, row index, and a
// header→cell map, so the growth loop's perf trajectory can diff runs
// without parsing aligned text.
func (t *Table) WriteJSONRows(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i, row := range t.Rows {
		cells := make(map[string]string, len(row))
		for j, c := range row {
			if j < len(t.Header) {
				cells[t.Header[j]] = c
			}
		}
		obj := map[string]any{
			"experiment": t.ID,
			"title":      t.Title,
			"row":        i,
			"cells":      cells,
		}
		if err := enc.Encode(obj); err != nil {
			return err
		}
	}
	return nil
}

// mbps renders a throughput in MB/s.
func mbps(r simtime.Rate) string {
	return fmt.Sprintf("%.0f", float64(r)/1e6)
}

// msec renders a duration in milliseconds.
func msec(d simtime.Duration) string {
	return fmt.Sprintf("%.1f", d.Milliseconds())
}

// secs renders a duration in seconds.
func secs(d simtime.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// sizeLabel renders a byte count compactly (16K, 2M, ...).
func sizeLabel(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
