package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/params"
	"gpufs/internal/workloads"
)

// Ablation quantifies the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//  1. GPU-side buffer-cache read-ahead (§3.3 lists it among the
//     optimizations a buffer cache enables; the prototype ships without
//     it) — measured on sequential AND random greads, since greedy
//     read-ahead must help the former and tax the latter.
//  2. The number of asynchronous DMA channels per direction (§4.3 uses
//     "multiple" channels to overlap transfers with disk access).
//  3. The closed-file-table fast reopen (§4.1): reopening files that a
//     GPU already caches without any CPU communication, priced on a
//     gopen/gclose-heavy many-small-files workload.
func Ablation(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Ablation",
		Title:  "design-choice ablations (virtual time; lower is better unless noted)",
		Header: []string{"experiment", "baseline", "variant", "effect"},
	}

	if err := ablateReadAhead(scale, t); err != nil {
		return nil, err
	}
	if err := ablateDMAChannels(scale, t); err != nil {
		return nil, err
	}
	if err := ablateFastReopen(scale, t); err != nil {
		return nil, err
	}
	return t, nil
}

func ablateReadAhead(scale float64, t *Table) error {
	base := params.Scaled(scale)
	fileBytes := seqFileBytes(&base)
	blocks := 2 * base.MPsPerGPU

	seq := func(ra int) (*workloads.MicroResult, error) {
		return meanMicro(reps, func() (*workloads.MicroResult, error) {
			sys, err := seqSystemRA(scale, 256<<10, fileBytes, ra)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/abl/seq.bin", fileBytes, 21); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.SeqReadGPUfsGread(sys, 0, "/abl/seq.bin", fileBytes, blocks, 256, 64<<10)
		})
	}
	off, err := seq(0)
	if err != nil {
		return fmt.Errorf("ablation seq ra=0: %w", err)
	}
	on, err := seq(4)
	if err != nil {
		return fmt.Errorf("ablation seq ra=4: %w", err)
	}
	t.AddRow("read-ahead, sequential gread (64K chunks)",
		fmt.Sprintf("off: %s MB/s", mbps(off.Throughput)),
		fmt.Sprintf("4 pages: %s MB/s", mbps(on.Throughput)),
		fmt.Sprintf("%+.0f%%", 100*(float64(on.Throughput)/float64(off.Throughput)-1)))

	// Random reads: greedy read-ahead fetches pages nobody wants.
	rnd := func(ra int) (*workloads.MicroResult, error) {
		return meanMicro(reps, func() (*workloads.MicroResult, error) {
			sys, err := seqSystemRA(scale, 256<<10, fileBytes, ra)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/abl/rand.bin", fileBytes, 22); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.RandReadGPUfs(sys, 0, "/abl/rand.bin", fileBytes, 4*base.MPsPerGPU, 128, 4, 32<<10)
		})
	}
	roff, err := rnd(0)
	if err != nil {
		return fmt.Errorf("ablation rand ra=0: %w", err)
	}
	ron, err := rnd(4)
	if err != nil {
		return fmt.Errorf("ablation rand ra=4: %w", err)
	}
	t.AddRow("read-ahead, random 32K greads",
		fmt.Sprintf("off: %s MB/s eff.", mbps(roff.Throughput)),
		fmt.Sprintf("4 pages: %s MB/s eff.", mbps(ron.Throughput)),
		fmt.Sprintf("%+.0f%%", 100*(float64(ron.Throughput)/float64(roff.Throughput)-1)))
	t.AddNote("read-ahead helps streaming greads and taxes random ones — why it is off by default, like the prototype")
	return nil
}

func ablateDMAChannels(scale float64, t *Table) error {
	base := params.Scaled(scale)
	fileBytes := seqFileBytes(&base)
	blocks := 2 * base.MPsPerGPU

	// Small pages make per-transfer latency visible: that is where the
	// channel count matters (at large pages the host memory bus is the
	// bottleneck and extra channels buy nothing).
	run := func(channels int) (*workloads.MicroResult, error) {
		return meanMicro(reps, func() (*workloads.MicroResult, error) {
			cfg := gpufs.ScaledConfig(scale)
			cfg.PageSize = 16 << 10
			cfg.DMAChannels = channels
			if cfg.BufferCacheBytes < fileBytes+16*cfg.PageSize {
				cfg.BufferCacheBytes = fileBytes + 16*cfg.PageSize
			}
			if cfg.GPUMemBytes < cfg.BufferCacheBytes+fileBytes {
				cfg.GPUMemBytes = cfg.BufferCacheBytes + fileBytes
			}
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/abl/dma.bin", fileBytes, 23); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.SeqReadGPUfs(sys, 0, "/abl/dma.bin", fileBytes, blocks, 256)
		})
	}
	one, err := run(1)
	if err != nil {
		return fmt.Errorf("ablation dma=1: %w", err)
	}
	four, err := run(4)
	if err != nil {
		return fmt.Errorf("ablation dma=4: %w", err)
	}
	t.AddRow("DMA channels, sequential read (16K pages)",
		fmt.Sprintf("1 channel: %s MB/s", mbps(one.Throughput)),
		fmt.Sprintf("4 channels: %s MB/s", mbps(four.Throughput)),
		fmt.Sprintf("%+.0f%%", 100*(float64(four.Throughput)/float64(one.Throughput)-1)))
	return nil
}

func ablateFastReopen(scale float64, t *Table) error {
	base := params.Scaled(scale)
	blocks := 2 * base.MPsPerGPU
	const nFiles = 96
	const rounds = 4

	run := func(disable bool) (*workloads.MicroResult, error) {
		return meanMicro(reps, func() (*workloads.MicroResult, error) {
			cfg := gpufs.ScaledConfig(scale)
			cfg.DisableFastReopen = disable
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			files := make([]string, nFiles)
			for i := range files {
				files[i] = fmt.Sprintf("/abl/files/f%03d", i)
				if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), files[i], 8<<10, int64(30+i)); err != nil {
					return nil, err
				}
			}
			sys.ResetTime()
			return workloads.ReopenStorm(sys, 0, files, blocks, 128, rounds)
		})
	}
	fast, err := run(false)
	if err != nil {
		return fmt.Errorf("ablation reopen fast: %w", err)
	}
	slow, err := run(true)
	if err != nil {
		return fmt.Errorf("ablation reopen slow: %w", err)
	}
	t.AddRow(fmt.Sprintf("closed-table fast reopen (%d files x %d rounds)", nFiles, rounds),
		fmt.Sprintf("with: %s", msec(fast.Elapsed)+"ms"),
		fmt.Sprintf("without: %s", msec(slow.Elapsed)+"ms"),
		fmt.Sprintf("%.1fx slower without", float64(slow.Elapsed)/float64(fast.Elapsed)))
	return nil
}

// seqSystemRA is seqSystem plus a read-ahead setting. The adaptive engine
// and the cleaner are pinned off so the greedy window under test (ra) is
// the only speculation in play — PR-3 behavior, bit for bit.
func seqSystemRA(scale float64, pageSize, fileBytes int64, ra int) (*gpufs.System, error) {
	cfg := gpufs.ScaledConfig(scale)
	cfg.PageSize = pageSize
	cfg.ReadAheadPages = ra
	cfg.ReadAheadAdaptive = false
	cfg.CleanerWorkers = 0
	need := fileBytes + 16*pageSize
	if cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	if cfg.GPUMemBytes < cfg.BufferCacheBytes+fileBytes {
		cfg.GPUMemBytes = cfg.BufferCacheBytes + fileBytes
	}
	return newSystem(cfg)
}
