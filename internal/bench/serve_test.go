package bench

import (
	"testing"

	"gpufs/internal/serve"
)

// TestServeShapes checks the serving bench's headline claims at test
// scale: cache-affinity placement beats round-robin on buffer-cache hit
// rate (and page faults), and continuous batching beats
// one-launch-per-request on virtual-time throughput.
func TestServeShapes(t *testing.T) {
	// Much lighter than the real table — fewer tenants, jobs, and pages —
	// but the same capacity crossover: half the corpus fits one GPU's
	// cache, the whole corpus does not.
	const scale = 1.0 / 256
	sc := serveCase{
		numGPUs:    2,
		files:      16,
		pagesEach:  6,  // corpus: 96 pages
		cachePages: 60, // half corpus (48) fits, whole corpus does not
		tenants:    4,
		jobsEach:   24,
		depth:      8,
	}

	affinity, err := runServe(scale, sc, serve.PlaceAffinity, 16)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := runServe(scale, sc, serve.PlaceRoundRobin, 16)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := runServe(scale, sc, serve.PlaceAffinity, 1)
	if err != nil {
		t.Fatal(err)
	}

	if affinity.hitRate <= rr.hitRate {
		t.Errorf("affinity hit rate %.2f not above round-robin %.2f",
			affinity.hitRate, rr.hitRate)
	}
	if affinity.pageFaults >= rr.pageFaults {
		t.Errorf("affinity page faults %d not below round-robin %d",
			affinity.pageFaults, rr.pageFaults)
	}
	if affinity.throughput <= serial.throughput {
		t.Errorf("batched throughput %.0f not above one-launch-per-request %.0f",
			affinity.throughput, serial.throughput)
	}
	if serial.batchMean != 1.0 {
		t.Errorf("batch-1 run averaged %.2f jobs/launch, want exactly 1", serial.batchMean)
	}
	if affinity.batchMean <= 1.5 {
		t.Errorf("batch-16 run averaged %.2f jobs/launch: batching never engaged", affinity.batchMean)
	}
}
