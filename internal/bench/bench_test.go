package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "Table X",
		Title:  "demo",
		Header: []string{"a", "bb", "ccc"},
	}
	tb.AddRow("1", "22", "333")
	tb.AddRow("longer", "2", "3")
	tb.AddNote("hello %d", 7)

	out := tb.String()
	if !strings.Contains(out, "Table X — demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "note: hello 7") {
		t.Fatalf("missing note: %q", out)
	}
	lines := strings.Split(out, "\n")
	// Header and all rows must align: the second column starts at the
	// same offset everywhere.
	idx := strings.Index(lines[1], "bb")
	if idx < 0 {
		t.Fatalf("header: %q", lines[1])
	}
	if lines[3][idx:idx+2] != "22" {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := sizeLabel(16 << 10); got != "16K" {
		t.Fatalf("sizeLabel 16K: %q", got)
	}
	if got := sizeLabel(2 << 20); got != "2M" {
		t.Fatalf("sizeLabel 2M: %q", got)
	}
	if got := sizeLabel(3 << 30); got != "3G" {
		t.Fatalf("sizeLabel 3G: %q", got)
	}
	if got := sizeLabel(1000); got != "1000" {
		t.Fatalf("sizeLabel odd: %q", got)
	}
	if got := mbps(1e9); got != "1000" {
		t.Fatalf("mbps: %q", got)
	}
	if got := pow2AtMost(100); got != 64 {
		t.Fatalf("pow2AtMost: %d", got)
	}
	if got := pow2AtMost(1); got != 1 {
		t.Fatalf("pow2AtMost(1): %d", got)
	}
}

// numericCell parses a leading float out of a cell.
func numericCell(t *testing.T, s string) float64 {
	t.Helper()
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// TestFig4ShapeTiny runs the Figure 4 harness at a tiny scale and checks
// the structural claims that must hold at any scale.
func TestFig4ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Fig4(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(pageSweep) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	small := numericCell(t, tb.Rows[0][1])
	big := numericCell(t, tb.Rows[len(tb.Rows)-1][1])
	if big <= small {
		t.Fatalf("GPUfs throughput must grow with page size: %v -> %v", small, big)
	}
	// At large pages GPUfs is within 25%% of the pipeline.
	pipe := numericCell(t, tb.Rows[len(tb.Rows)-1][2])
	if big < 0.75*pipe {
		t.Fatalf("GPUfs %v too far below pipeline %v at 16M pages", big, pipe)
	}
}

// TestTable3ShapeTiny checks multi-GPU scaling monotonicity at tiny scale.
func TestTable3ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Table3(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		one := numericCell(t, row[2])
		four := numericCell(t, row[5])
		if four >= one {
			t.Fatalf("%s: 4 GPUs (%v) not faster than 1 (%v)", row[0], four, one)
		}
		cpu := numericCell(t, row[1])
		if one >= cpu {
			t.Fatalf("%s: 1 GPU (%v) not faster than CPUx8 (%v)", row[0], one, cpu)
		}
	}
}

// TestAblationShapeTiny checks the ablation harness's directional claims.
func TestAblationShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Ablation(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("ablation rows: %d", len(tb.Rows))
	}
	// Fast reopen must win on the reopen-storm row.
	last := tb.Rows[len(tb.Rows)-1]
	if !strings.Contains(last[3], "slower without") {
		t.Fatalf("fast-reopen row: %v", last)
	}
}

// TestReadaheadShapeTiny checks the read-ahead policy table's directional
// claims: adaptive wins sequential streams outright (coalescing), matches
// the detector to strides greedy cannot follow, and issues nothing on
// random reads where greedy's fixed window is mostly waste.
func TestReadaheadShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Readahead(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("readahead rows: %d", len(tb.Rows))
	}
	usedPct := func(cell string) float64 {
		var issued int64
		var pct float64
		if _, err := fmt.Sscanf(cell, "%d (%f%%)", &issued, &pct); err != nil {
			t.Fatalf("prefetch cell %q: %v", cell, err)
		}
		return pct
	}
	seq, stride, random := tb.Rows[0], tb.Rows[1], tb.Rows[2]
	// Sequential: coalesced speculation must clearly beat no read-ahead.
	if ad, off := numericCell(t, seq[1]), numericCell(t, seq[3]); ad < 1.5*off {
		t.Fatalf("sequential adaptive %v not >1.5x off %v", ad, off)
	}
	// Strided: the detector's hit rate must beat the greedy window's (which
	// fetches the skipped pages for nothing).
	if ap, gp := usedPct(stride[4]), usedPct(stride[5]); ap <= gp {
		t.Fatalf("stride adaptive used%% %v not above greedy %v", ap, gp)
	}
	// Random: the confidence gate keeps the detector silent.
	if issued := numericCell(t, random[4]); issued != 0 {
		t.Fatalf("random adaptive speculated %v pages", issued)
	}
}

func TestFig5ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Fig5(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	// The both-excluded column (pure page-cache code) must fall
	// monotonically-ish: last < first/8.
	first := numericCell(t, tb.Rows[0][4])
	last := numericCell(t, tb.Rows[len(tb.Rows)-1][4])
	if last*8 > first {
		t.Fatalf("pure cache code should shrink with page size: %v -> %v", first, last)
	}
	// Excluding components never makes a run slower than the total by
	// more than jitter.
	for _, row := range tb.Rows {
		total := numericCell(t, row[1])
		both := numericCell(t, row[4])
		if both > total*1.5 {
			t.Fatalf("page %s: both-excluded (%v) exceeds total (%v)", row[0], both, total)
		}
	}
}

func TestFig8ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Fig8(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	gpufsLast := numericCell(t, last[1])
	naiveLast := numericCell(t, last[2])
	if gpufsLast <= naiveLast {
		t.Fatalf("at the RAM-exceeding point GPUfs (%v) must beat naive CUDA (%v)", gpufsLast, naiveLast)
	}
	// In the cached regime all three are within the same order of
	// magnitude.
	first := tb.Rows[0]
	g, n := numericCell(t, first[1]), numericCell(t, first[2])
	if g < n/4 || g > n*4 {
		t.Fatalf("cached regime out of family: gpufs %v vs naive %v", g, n)
	}
}

func TestTable2ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Table2(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	// Reclamation pressure grows as the cache shrinks.
	big := numericCell(t, tb.Rows[0][2])
	small := numericCell(t, tb.Rows[2][2])
	if small <= big {
		t.Fatalf("smaller cache should reclaim more: %v (2G) vs %v (0.5G)", big, small)
	}
}

func TestTable4ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	tb, err := Table4(1.0 / 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		cpu := numericCell(t, row[1])
		gpu := numericCell(t, row[2])
		if gpu >= cpu {
			t.Fatalf("%s: GPUfs (%v) must beat the 8-core CPU (%v)", row[0], gpu, cpu)
		}
	}
}

// TestDaemonScalingTiny pins the PR's acceptance shape: with 4 daemon
// workers and 4 ring shards the 56-block grep must beat the serialized
// single-worker daemon in virtual time.
func TestDaemonScalingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	g1, _, err := daemonScalingPoint(1.0/32, 1, 480, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	g4, _, err := daemonScalingPoint(1.0/32, 4, 480, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if g4 >= g1 {
		t.Fatalf("grep with 4 workers took %v, not faster than 1 worker's %v", g4, g1)
	}
}
