package bench

import (
	"bufio"
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"gpufs/internal/params"
	"gpufs/internal/workloads"
)

// TestBenchGuardrail pins headline numbers against the committed
// reference run (BENCH_6.json at the repo root, generated at the default
// -scale 1/32 with -reps 3):
//
//   - the Figure 4 sequential-read throughput at 16K AND 32K pages, the
//     paper's most page-fault-intensive points — any slowdown in the
//     open/fault/DMA pipeline shows up here first, and the 32K row is
//     where the PR-8 pinned-fill path must stay ahead of the BENCH_4
//     era (the cross-reference check below);
//   - the daemon-scaling grep speedup at 4 workers over the serialized
//     single-worker daemon — the parallel-RPC-stack win this repo's PR 2
//     introduced;
//   - the contention speedup at 8 workers — the PR-8 lock-free hot
//     path's win, floored at the 1.3x acceptance bar; and
//   - the open-loop saturation throughput (ISSUE 9): re-offered at the
//     reference max-sustainable rate, the serving stack must still
//     achieve 85% of the reference's achieved jobs/s.
//
// Costs ~30s of wall time, so it is opt-in: `make tier2` exports
// GPUFS_BENCH_GUARDRAIL=1; plain `go test` skips it.
func TestBenchGuardrail(t *testing.T) {
	if os.Getenv("GPUFS_BENCH_GUARDRAIL") == "" {
		t.Skip("set GPUFS_BENCH_GUARDRAIL=1 to run the reference-pinned bench guardrail")
	}
	ref := loadBenchReference(t, "../../BENCH_6.json")
	const scale = 1.0 / 32 // the scale BENCH_6.json was generated at

	fig4 := func(t *testing.T, pageSize int64, label string) {
		want := ref.float(t, "Figure 4", "page", label, "GPUfs MB/s")

		base := params.Scaled(scale)
		fileBytes := seqFileBytes(&base)
		blocks := 2 * base.MPsPerGPU
		res, err := meanMicro(3, func() (*workloads.MicroResult, error) {
			sys, err := seqSystem(scale, pageSize, fileBytes)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/seq.bin", fileBytes, 4); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.SeqReadGPUfs(sys, 0, "/bench/seq.bin", fileBytes, blocks, 256)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(res.Throughput) / 1e6
		if got < 0.90*want {
			t.Errorf("Fig4 %s sequential read regressed: %.0f MB/s, reference %.0f MB/s (floor 90%%)", label, got, want)
		}
		if got > 1.25*want {
			t.Errorf("Fig4 %s sequential read implausibly fast: %.0f MB/s vs reference %.0f MB/s — timing model change? regenerate BENCH_6.json", label, got, want)
		}
	}
	t.Run("Fig4-16K", func(t *testing.T) { fig4(t, 16<<10, "16K") })
	t.Run("Fig4-32K", func(t *testing.T) { fig4(t, 32<<10, "32K") })

	t.Run("Fig4-32K-vs-BENCH4", func(t *testing.T) {
		// Cross-reference: the PR-8 zero-copy fill path must leave the 32K
		// row strictly faster than the committed PR-7 era reference. This
		// compares the two committed files, so it costs nothing to run.
		old := loadBenchReference(t, "../../BENCH_4.json")
		was := old.float(t, "Figure 4", "page", "32K", "GPUfs MB/s")
		now := ref.float(t, "Figure 4", "page", "32K", "GPUfs MB/s")
		if now <= was {
			t.Errorf("Fig4 32K did not improve over the BENCH_4 era: %.0f MB/s now vs %.0f MB/s then", now, was)
		}
	})

	t.Run("Contention-8w", func(t *testing.T) {
		refSpeed := ref.speedup(t, "Contention", "workers×shards", "8", "speedup")
		floor := 1.3
		if f := 0.85 * refSpeed; f > floor {
			floor = f
		}
		base, err := contentionPoint(scale, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := contentionPoint(scale, 8, true)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(base) / float64(fast)
		if got < floor {
			t.Errorf("contention 8-worker lock-free speedup regressed: %.2fx, floor %.2fx (reference %.2fx)", got, floor, refSpeed)
		}
	})

	t.Run("Saturation-max", func(t *testing.T) {
		// Re-offer the reference's max sustainable load and require the
		// achieved throughput to stay within 85% of the reference. One
		// open-loop run, not the whole sweep: the pinned quantity is what
		// the machine delivers at the known knee, not where the knee is.
		refOffered := ref.float(t, "Saturation", "load", "max", "offered jobs/s")
		refAchieved := ref.float(t, "Saturation", "load", "max", "achieved jobs/s")
		pt, err := saturationPoint(scale, refOffered, 100)
		if err != nil {
			t.Fatal(err)
		}
		got := pt.res.AchievedRate()
		if got < 0.85*refAchieved {
			t.Errorf("saturation throughput regressed: %.0f jobs/s at the reference max-sustainable offer of %.0f, reference achieved %.0f (floor 85%%)",
				got, refOffered, refAchieved)
		}
	})

	t.Run("DaemonScaling-4w", func(t *testing.T) {
		want := ref.speedup(t, "Daemon", "workers×shards", "4", "grep speedup")

		g1, _, err := daemonScalingPoint(scale, 1, daemonGrepFiles, daemonReadBytes)
		if err != nil {
			t.Fatal(err)
		}
		g4, _, err := daemonScalingPoint(scale, 4, daemonGrepFiles, daemonReadBytes)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g1) / float64(g4)
		if got < 0.85*want {
			t.Errorf("daemon 4-worker grep speedup regressed: %.2fx, reference %.2fx (floor 85%%)", got, want)
		}
	})
}

// benchReference is the parsed NDJSON reference: one row per table row.
type benchReference struct {
	rows []benchRefRow
}

type benchRefRow struct {
	Experiment string            `json:"experiment"`
	Cells      map[string]string `json:"cells"`
}

func loadBenchReference(t *testing.T, path string) *benchReference {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("reference run missing: %v", err)
	}
	defer f.Close()
	ref := &benchReference{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row benchRefRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad reference row %q: %v", sc.Text(), err)
		}
		ref.rows = append(ref.rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// cell finds the row of experiment where keyCol == keyVal and returns valCol.
func (r *benchReference) cell(t *testing.T, experiment, keyCol, keyVal, valCol string) string {
	t.Helper()
	for _, row := range r.rows {
		if row.Experiment == experiment && row.Cells[keyCol] == keyVal {
			if v, ok := row.Cells[valCol]; ok {
				return v
			}
		}
	}
	t.Fatalf("reference has no %s row with %s=%s and column %s", experiment, keyCol, keyVal, valCol)
	return ""
}

func (r *benchReference) float(t *testing.T, experiment, keyCol, keyVal, valCol string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.cell(t, experiment, keyCol, keyVal, valCol), 64)
	if err != nil {
		t.Fatalf("reference cell not numeric: %v", err)
	}
	return v
}

// speedup parses a "2.32x" cell.
func (r *benchReference) speedup(t *testing.T, experiment, keyCol, keyVal, valCol string) float64 {
	t.Helper()
	s := r.cell(t, experiment, keyCol, keyVal, valCol)
	if len(s) > 0 && s[len(s)-1] == 'x' {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("reference speedup cell %q: %v", s, err)
	}
	return v
}
