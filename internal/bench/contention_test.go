package bench

import "testing"

// TestContentionLockFreeWins pins the ISSUE 8 acceptance criterion: on the
// mixed reader/writer point with 8 daemon workers, the lock-free
// configuration (zero-copy hits + sharded allocator) must beat the
// pre-ISSUE-8 one by at least 1.3x. Run at 1/32 scale — the scale the
// committed reference was generated at — because that is the regime the
// guardrail pins.
func TestContentionLockFreeWins(t *testing.T) {
	if testing.Short() {
		t.Skip("contention point sweep skipped in -short mode")
	}
	const scale = 1.0 / 32
	base, err := contentionPoint(scale, 8, false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	fast, err := contentionPoint(scale, 8, true)
	if err != nil {
		t.Fatalf("lock-free: %v", err)
	}
	if got := float64(base) / float64(fast); got < 1.3 {
		t.Fatalf("lock-free speedup %.2fx at 8 workers, want >= 1.3x (base %v, lock-free %v)",
			got, base, fast)
	}
}

// BenchmarkContention runs one lock-free contention point so `make tier2`
// can harvest mutex and block profiles from the epoch-guarded radix
// lookups, the sharded allocator, and the RPC rings under real
// reader/writer pressure. Virtual-time elapsed is NOT the quantity here —
// the profiles of the real goroutine synchronization underneath are.
func BenchmarkContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := contentionPoint(1.0/256, 8, true); err != nil {
			b.Fatal(err)
		}
	}
}
