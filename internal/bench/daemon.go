package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// daemonWorkerSteps are the worker/shard counts the scaling experiment
// sweeps, mirroring the paper's observation that the GPUfs daemon services
// its RPC queues with parallel CPU threads (§4.2).
var daemonWorkerSteps = []int{1, 2, 4, 8}

// DaemonScaling measures how virtual-time makespan responds to the number
// of daemon workers and RPC ring shards, on two RPC-bound workloads:
//
//   - grep over many small files with a 56-block kernel — the
//     gopen/gread/gclose storm of §5.2.2, where every block funnels its
//     metadata traffic through the host daemon; and
//   - a big sequential read issued as multi-page greads, whose page
//     fetches pipeline on each block's ring and fan out across shards.
//
// The single-worker rows reproduce the original serialized daemon; the
// speedup columns show the parallel-daemon win.
func DaemonScaling(scale float64) (*Table, error) {
	return daemonScaling(scale, daemonGrepFiles, daemonReadBytes)
}

// Corpus sizing: enough small files that daemon occupancy — not GPU
// compute — bounds the grep makespan (the dictionary is kept tiny: match
// work is dictionary × text, and a big dictionary turns the run
// compute-bound, hiding the daemon entirely), and a read large enough to
// keep tens of page fetches in flight while staying resident in the
// scaled buffer cache.
const (
	daemonGrepFiles = 960
	daemonGrepBytes = 2 << 10 // per file
	daemonDictWords = 100
	daemonReadBytes = 48 << 20
)

func daemonScaling(scale float64, grepFiles int, readBytes int64) (*Table, error) {
	t := &Table{
		ID:    "Daemon",
		Title: "daemon workers × RPC ring shards: 56-block grep and big-read makespan",
		Header: []string{"workers×shards", "grep 56blk", "grep speedup",
			"big-read", "read speedup", "read MB/s"},
	}

	var grepBase, readBase simtime.Duration
	for _, w := range daemonWorkerSteps {
		grepEl, readEl, err := daemonScalingPoint(scale, w, grepFiles, readBytes)
		if err != nil {
			return nil, fmt.Errorf("daemon scaling at %d workers: %w", w, err)
		}
		if w == 1 {
			grepBase, readBase = grepEl, readEl
		}
		rate := simtime.Rate(float64(readBytes) / readEl.Seconds())
		t.AddRow(fmt.Sprintf("%d", w),
			secs(grepEl), fmt.Sprintf("%.2fx", float64(grepBase)/float64(grepEl)),
			secs(readEl), fmt.Sprintf("%.2fx", float64(readBase)/float64(readEl)),
			mbps(rate))
	}
	t.AddNote("workers = daemon threads = ring shards; blocks hash to shards, shard s pinned to worker s mod W")
	t.AddNote("grep (metadata-heavy) scales with workers; the big read saturates host memory + DMA with batched fetches, so extra workers cannot add bandwidth")
	t.AddNote("grep: %d files × %s, %d-word dictionary; read: %s in %s greads (4-page batched fetches)",
		grepFiles, sizeLabel(daemonGrepBytes), daemonDictWords,
		sizeLabel(readBytes), sizeLabel(4*(256<<10)))
	return t, nil
}

// daemonScalingPoint builds a fresh machine with the given worker/shard
// count, regenerates the identical corpus, and measures both workloads
// cold-cache. Returns (grep elapsed, big-read elapsed).
func daemonScalingPoint(scale float64, workers, grepFiles int, readBytes int64) (simtime.Duration, simtime.Duration, error) {
	cfg := gpufs.ScaledConfig(scale)
	cfg.RPCShards = workers
	cfg.DaemonWorkers = workers
	sys, err := newSystem(cfg)
	if err != nil {
		return 0, 0, err
	}

	dict := workloads.MakeDictionary(daemonDictWords)
	if err := sys.WriteHostFile("/bench/daemon/dict.txt", dict.Encode()); err != nil {
		return 0, 0, err
	}
	tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
		Dir:        "/bench/daemon/src",
		NumFiles:   grepFiles,
		TotalBytes: int64(grepFiles) * daemonGrepBytes,
		Text:       workloads.TextSpec{Dict: dict, DictFraction: 0.35, Seed: 31},
	})
	if err != nil {
		return 0, 0, err
	}
	if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/daemon/big.bin", readBytes, 32); err != nil {
		return 0, 0, err
	}

	// Both workloads run with a WARM host page cache (the corpus was just
	// written): cold runs are disk-seek-bound, which hides the daemon
	// entirely. The quantity under test is host-service parallelism, so
	// the host I/O must come from memory.
	blocks := 4 * cfg.MPsPerGPU // 56 at the paper's 14-MP GPU
	sys.ResetTime()
	gres, err := workloads.GrepGPUfs(sys, 0, "/bench/daemon/dict.txt", tree.ListPath,
		"/bench/daemon/out.txt", cfg.GrepGPURate, blocks, 512, 0)
	if err != nil {
		return 0, 0, err
	}

	// The big read runs on a second GPU so grep's residual buffer-cache
	// state cannot skew it; chunk = 4 pages exercises the batched
	// multi-page fetch path.
	sys.ResetTime()
	rres, err := workloads.SeqReadGPUfsGread(sys, 1, "/bench/daemon/big.bin", readBytes,
		blocks, 512, 4*cfg.PageSize)
	if err != nil {
		return 0, 0, err
	}
	return gres.Elapsed, rres.Elapsed, nil
}
