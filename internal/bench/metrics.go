package bench

import (
	"gpufs"
	"gpufs/internal/metrics"
)

// benchReg is the registry shared by every system a bench run builds; nil
// (the default) keeps metrics off. Counter collectors registered by several
// systems on the same series identity are summed at snapshot time, so a
// sweep's aggregate export reflects the whole run.
var benchReg *metrics.Registry

// SetMetricsRegistry attaches a metrics registry to every system the bench
// suite constructs from now on (nil detaches). Not safe to call while a
// benchmark is running.
func SetMetricsRegistry(reg *metrics.Registry) { benchReg = reg }

// benchOrdering is the default syscall ordering stamped on every system
// the bench suite builds, unless an experiment pins its own (the Ordering
// sweep does). Empty keeps the config default (strong).
var benchOrdering string

// SetDefaultOrdering sets the syscall ordering (""/"strong"/"relaxed")
// applied to subsequently constructed bench systems that do not choose
// one themselves. Not safe to call while a benchmark is running.
func SetDefaultOrdering(ordering string) { benchOrdering = ordering }

// newSystem is the bench suite's system constructor: gpufs.NewSystem plus
// the shared registry and default ordering, when attached.
func newSystem(cfg gpufs.Config) (*gpufs.System, error) {
	if cfg.SyscallOrdering == "" {
		cfg.SyscallOrdering = benchOrdering
	}
	return gpufs.NewSystemWithMetrics(cfg, benchReg)
}
