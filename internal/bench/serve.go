package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"gpufs"
	"gpufs/internal/serve"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// serveRow is one serving configuration's measured outcome.
type serveRow struct {
	label      string
	makespan   simtime.Duration
	throughput float64 // jobs per virtual second
	hitRate    float64 // affinity hit fraction of completed jobs
	pageFaults int64   // buffer-cache frame allocations across GPUs
	batchMean  float64 // jobs per kernel launch
}

// serveCase fixes the experiment shape: a 2-GPU machine whose per-GPU
// buffer cache holds well over half the corpus but not all of it, so a
// placement policy that partitions files across devices keeps every hot
// file resident while one that sprays requests pulls the whole corpus
// through both caches.
type serveCase struct {
	numGPUs    int
	files      int
	pagesEach  int64
	cachePages int64
	tenants    int
	jobsEach   int
	depth      int
}

func defaultServeCase() serveCase {
	return serveCase{
		numGPUs:    2,
		files:      32,
		pagesEach:  12,  // corpus: 384 pages
		cachePages: 240, // half corpus (192) fits, whole corpus does not
		tenants:    8,
		jobsEach:   50,
		depth:      8,
	}
}

// runServe measures one (policy, batch) configuration on a fresh machine.
func runServe(scale float64, sc serveCase, policy serve.Policy, maxBatch int) (serveRow, error) {
	row := serveRow{label: fmt.Sprintf("%v, batch %d", policy, maxBatch)}

	cfg := gpufs.ScaledConfig(scale)
	cfg.NumGPUs = sc.numGPUs
	cfg.BufferCacheBytes = sc.cachePages * cfg.PageSize
	if cfg.GPUMemBytes < 2*cfg.BufferCacheBytes {
		cfg.GPUMemBytes = 2 * cfg.BufferCacheBytes
	}
	sys, err := newSystem(cfg)
	if err != nil {
		return row, err
	}

	dict := workloads.MakeDictionary(200)
	paths := make([]string, sc.files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/servebench/f%03d.txt", i)
		text := workloads.MakeText(sc.pagesEach*cfg.PageSize, workloads.TextSpec{
			Dict: dict, DictFraction: 0.8, Seed: int64(9000 + i),
		})
		if err := sys.WriteHostFile(paths[i], text); err != nil {
			return row, err
		}
	}

	srv := serve.New(sys, serve.Config{
		Policy:     policy,
		MaxBatch:   maxBatch,
		QueueDepth: sc.depth,
	})

	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	for ti := 0; ti < sc.tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", ti)
			rng := rand.New(rand.NewSource(int64(31 + ti)))
			sem := make(chan struct{}, sc.depth)
			var inner sync.WaitGroup
			for ji := 0; ji < sc.jobsEach; ji++ {
				sem <- struct{}{}
				// Zipf-ish skew: most requests land on a hot few files.
				var pi int
				if rng.Intn(100) < 70 {
					pi = rng.Intn(8)
				} else {
					pi = rng.Intn(len(paths))
				}
				spec := serve.Job{Kind: serve.JobSearch, Path: paths[pi], Word: "th"}
				var fut *serve.Future
				for {
					var err error
					fut, err = srv.Submit(name, spec)
					if err == nil {
						break
					}
					if !errors.Is(err, serve.ErrOverloaded) {
						errOnce.Do(func() { submitErr = err })
						<-sem
						return
					}
					runtime.Gosched()
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					fut.Wait()
					<-sem
				}()
			}
			inner.Wait()
		}(ti)
	}
	wg.Wait()
	srv.Drain()
	if submitErr != nil {
		return row, submitErr
	}

	st := srv.Stats()
	total := st.Completed() + st.Failed()
	row.makespan = st.Now.Sub(0)
	if secs := st.Now.Seconds(); secs > 0 {
		row.throughput = float64(total) / secs
	}
	row.hitRate = st.AffinityHitRate()
	row.batchMean = st.BatchFactor()
	for g := 0; g < sc.numGPUs; g++ {
		row.pageFaults += sys.GPU(g).FS().Cache().Allocs()
	}
	return row, nil
}

// Serve compares the serving layer's placement and batching policies on a
// skewed hot-file workload: cache-affinity routing against round-robin,
// and continuous batching against one-launch-per-request. It is the bench
// artifact for the internal/serve subsystem rather than a paper figure.
func Serve(scale float64) (*Table, error) {
	sc := defaultServeCase()
	t := &Table{
		ID: "Serve",
		Title: fmt.Sprintf("multi-tenant serving: %d tenants × %d jobs over %d GPUs, %d-file corpus (hot-8 skew)",
			sc.tenants, sc.jobsEach, sc.numGPUs, sc.files),
		Header: []string{"policy", "makespan (ms)", "jobs/s (virtual)", "affinity hits", "page faults", "jobs/launch"},
	}

	configs := []struct {
		policy serve.Policy
		batch  int
	}{
		{serve.PlaceAffinity, 16},
		{serve.PlaceRoundRobin, 16},
		{serve.PlaceAffinity, 1},
	}
	for _, c := range configs {
		row, err := runServe(scale, sc, c.policy, c.batch)
		if err != nil {
			return nil, fmt.Errorf("serve bench (%v, batch %d): %w", c.policy, c.batch, err)
		}
		t.AddRow(row.label,
			msec(row.makespan),
			fmt.Sprintf("%.0f", row.throughput),
			fmt.Sprintf("%.0f%%", 100*row.hitRate),
			fmt.Sprintf("%d", row.pageFaults),
			fmt.Sprintf("%.1f", row.batchMean))
	}
	t.AddNote("affinity keeps each file's pages on one GPU: higher hit rate and fewer faults than round-robin")
	t.AddNote("batch 1 dispatches one launch per request: per-launch overhead and no cross-job overlap cut throughput")
	return t, nil
}
