package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// orderingWorkerSteps are the daemon worker/shard counts the ordering
// experiment sweeps.
var orderingWorkerSteps = []int{1, 4, 8}

// Ordering measures the generic syscall layer's ordering classes (ISSUE
// 7) on the metadata-heavy grep workload: strong routes every call
// through the per-lane FIFO fence (the PR-6 semantics), relaxed lets the
// open-ahead window pipeline opens past the fence, overlapping RPC
// round-trips with reads and compute. Each point is a fresh machine with
// an identical corpus; rows sweep daemon workers = RPC shards. The
// speedup column holding steady across worker counts is the point: the
// win comes from unserializing the lane — hiding round-trips the strong
// class forces into a serial chain — not from adding daemon occupancy,
// which cannot shorten a chain whose requests arrive one at a time.
func Ordering(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Ordering",
		Title:  "syscall ordering: strong (FIFO fence) vs relaxed (open-ahead) grep makespan",
		Header: []string{"workers×shards", "strong", "relaxed", "relaxed speedup"},
	}
	for _, w := range orderingWorkerSteps {
		strong, err := orderingPoint(scale, w, "strong")
		if err != nil {
			return nil, fmt.Errorf("ordering strong at %d workers: %w", w, err)
		}
		relaxed, err := orderingPoint(scale, w, "relaxed")
		if err != nil {
			return nil, fmt.Errorf("ordering relaxed at %d workers: %w", w, err)
		}
		t.AddRow(fmt.Sprintf("%d", w),
			msec(strong), msec(relaxed),
			fmt.Sprintf("%.2fx", float64(strong)/float64(relaxed)))
	}
	t.AddNote("strong = every syscall retires through the per-lane FIFO fence (baseline semantics); times in ms")
	t.AddNote("relaxed = opens issue ahead of the fence (window %d), overlapping open round-trips with reads and compute on the same lane", orderingOpenAhead)
	t.AddNote("the speedup is worker-independent by design: a single-lane serial chain gains nothing from daemon parallelism, only from relaxing its order")
	t.AddNote("grep: 1 block × 64 threads, %d files × %s, %d-word dictionary, cache-resident corpus", orderingGrepFiles,
		sizeLabel(orderingGrepBytes), orderingDictWords)
	return t, nil
}

// orderingOpenAhead mirrors the open-ahead window in the grep workload
// (see workloads.GrepGPUfs) for the table note.
const orderingOpenAhead = 4

// Corpus sizing: ordering policy moves the makespan only while the open
// round-trip is on the critical path, so the corpus is many TINY files
// with a near-empty dictionary — per-file compute shrinks toward zero and
// the gopen/gread/gclose storm dominates. (Contrast the daemon experiment,
// which keeps enough match work to measure worker occupancy.)
// The corpus and machine are shaped so ONLY transport ordering moves the
// makespan. Many tiny files with a near-empty dictionary make the serial
// open→fstat→read→close round-trip chain the critical path; both the GPU
// buffer cache and the host page cache are grown to hold every file (each
// pins one page frame on both sides — at the stock scaled capacities the
// run degenerates into eviction thrash and disk seeks, drowning the
// signal). The kernel is ONE block: grep stripes every file's shards
// across all blocks, so with more blocks concurrent opens coalesce and
// the open round-trip amortizes away — the single-lane serial chain is
// where ordering class decides the makespan, and it is also fully
// deterministic, run to run and across worker counts.
const (
	orderingGrepFiles  = 768
	orderingGrepBytes  = 256
	orderingDictWords  = 8
	orderingGrepBlocks = 1
)

// orderingPoint builds a fresh machine with the given worker/shard count
// and syscall ordering, regenerates the identical corpus, and measures
// grep warm-cache.
func orderingPoint(scale float64, workers int, ordering string) (simtime.Duration, error) {
	cfg := gpufs.ScaledConfig(scale)
	cfg.RPCShards = workers
	cfg.DaemonWorkers = workers
	cfg.SyscallOrdering = ordering
	// Cache-resident corpus on both sides of the bus (see the sizing
	// comment above): one frame per file plus headroom.
	frames := int64(orderingGrepFiles + 64)
	if need := frames * cfg.PageSize; cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	if need := 2 * cfg.BufferCacheBytes; cfg.GPUMemBytes < need {
		cfg.GPUMemBytes = need
	}
	if need := 4 * cfg.BufferCacheBytes; cfg.CPURAMBytes < need {
		cfg.CPURAMBytes = need
	}
	sys, err := newSystem(cfg)
	if err != nil {
		return 0, err
	}

	dict := workloads.MakeDictionary(orderingDictWords)
	if err := sys.WriteHostFile("/bench/ordering/dict.txt", dict.Encode()); err != nil {
		return 0, err
	}
	tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
		Dir:        "/bench/ordering/src",
		NumFiles:   orderingGrepFiles,
		TotalBytes: int64(orderingGrepFiles) * orderingGrepBytes,
		Text:       workloads.TextSpec{Dict: dict, DictFraction: 0.35, Seed: 31},
	})
	if err != nil {
		return 0, err
	}

	sys.ResetTime()
	res, err := workloads.GrepGPUfs(sys, 0, "/bench/ordering/dict.txt", tree.ListPath,
		"/bench/ordering/out.txt", cfg.GrepGPURate, orderingGrepBlocks, 64, 0)
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}
