package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
	"gpufs/internal/workloads"
)

// Saturation is the ISSUE 9 open-loop capacity experiment: a Poisson
// arrival process over thousands of tenants sweeps offered load across
// the serving stack's knee, reporting the achieved jobs/s and the
// p50/p99/p999 virtual latency (from the metrics layer's
// gpufs_serve_job_latency_seconds histograms) at each point. Unlike the
// closed-loop Serve experiment — whose tenants wait for completions, so
// offered load self-throttles — an open loop keeps submitting on
// schedule, which is what exposes the max sustainable rate: below the
// knee latency is flat, at the knee queueing delay takes off, beyond it
// admission control sheds load.
//
// A point is "sustainable" when achieved throughput kept within 90% of
// the offered rate with at most 5% of arrivals shed (the 10% slack
// absorbs the drain tail: the span includes the last admitted job's
// completion, which trails the arrival horizon by a few service times
// even far below capacity). The final "max" row repeats the fastest
// sustainable point — the headline max sustainable jobs/s the BENCH
// guardrail pins.

// satCase fixes the workload shape: a cache-resident corpus of small
// files (the quantity under test is the serving stack — admission,
// placement, batching, kernel dispatch — not paging), a tenant population
// in the thousands at full scale, and one search kernel per job.
type satCase struct {
	numGPUs   int
	files     int
	pagesEach int64
	tenants   int
	jobs      int // arrivals per sweep point
	depth     int
}

func defaultSatCase(cfg *gpufs.Config) satCase {
	tenants := cfg.ScaleCount(65536)
	return satCase{
		numGPUs:   2,
		files:     16,
		pagesEach: 2,
		tenants:   tenants,
		jobs:      2 * tenants,
		depth:     8,
	}
}

// satPoint is one measured sweep point.
type satPoint struct {
	offered float64 // jobs per virtual second
	res     serve.OpenLoopResult
	p50ms   float64
	p99ms   float64
	p999ms  float64
}

// sustainable reports whether the point kept up with its offered load.
func (p satPoint) sustainable() bool {
	if p.res.Offered == 0 {
		return false
	}
	shed := float64(p.res.Rejected) / float64(p.res.Offered)
	return p.res.AchievedRate() >= 0.90*p.offered && shed <= 0.05
}

// saturationPoint builds a fresh machine with its own metrics registry,
// loads the corpus, and drives one open-loop run at the given rate.
func saturationPoint(scale float64, rate float64, seed int64) (satPoint, error) {
	pt := satPoint{offered: rate}

	cfg := gpufs.ScaledConfig(scale)
	sc := defaultSatCase(&cfg)
	cfg.NumGPUs = sc.numGPUs
	// Whole corpus resident per GPU with slack: the sweep measures the
	// serving stack, not eviction.
	if need := (int64(sc.files)*sc.pagesEach + 16) * cfg.PageSize; cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	if cfg.GPUMemBytes < 2*cfg.BufferCacheBytes {
		cfg.GPUMemBytes = 2 * cfg.BufferCacheBytes
	}
	if cfg.SyscallOrdering == "" {
		cfg.SyscallOrdering = benchOrdering
	}
	// A private registry per point: the latency histograms must describe
	// this offered load alone, not the sweep's accumulation (the shared
	// benchReg, when attached, keeps aggregating counters system-wide).
	reg := metrics.New()
	sys, err := gpufs.NewSystemWithMetrics(cfg, reg)
	if err != nil {
		return pt, err
	}

	dict := workloads.MakeDictionary(200)
	paths := make([]string, sc.files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/satbench/f%03d.txt", i)
		text := workloads.MakeText(sc.pagesEach*cfg.PageSize, workloads.TextSpec{
			Dict: dict, DictFraction: 0.8, Seed: int64(7000 + i),
		})
		if err := sys.WriteHostFile(paths[i], text); err != nil {
			return pt, err
		}
	}

	srv := serve.New(sys, serve.Config{
		Policy:     serve.PlaceAffinity,
		MaxBatch:   16,
		QueueDepth: sc.depth,
	})
	res, err := serve.RunOpenLoop(srv, serve.OpenLoopConfig{
		Jobs: sc.jobs,
		Rate: rate,
		Seed: seed,
		Job: func(i int) (string, serve.Job) {
			// Tenant and file derive from the arrival index via fixed
			// mixing, so a sweep's points sample the same population.
			tenant := fmt.Sprintf("t%05d", i%sc.tenants)
			path := paths[(i*2654435761)%sc.files]
			return tenant, serve.Job{Kind: serve.JobSearch, Path: path, Word: "th"}
		},
	})
	if err != nil {
		return pt, err
	}
	srv.Drain()
	pt.res = res
	p50, _ := reg.Quantile("gpufs_serve_job_latency_seconds", 0.50)
	p99, _ := reg.Quantile("gpufs_serve_job_latency_seconds", 0.99)
	p999, _ := reg.Quantile("gpufs_serve_job_latency_seconds", 0.999)
	pt.p50ms, pt.p99ms, pt.p999ms = p50*1e3, p99*1e3, p999*1e3
	return pt, nil
}

// saturationCapacity probes the machine's service capacity: an effectively
// infinite arrival rate turns the open loop into a backlogged batch run,
// and completions over the makespan are the ceiling the sweep brackets.
func saturationCapacity(scale float64) (float64, error) {
	pt, err := saturationPoint(scale, 1e9, 1)
	if err != nil {
		return 0, err
	}
	cap := pt.res.AchievedRate()
	if cap <= 0 {
		return 0, fmt.Errorf("saturation capacity probe completed nothing")
	}
	return cap, nil
}

// saturationFracs are the offered loads swept, as fractions of the probed
// capacity: two comfortably under the knee, one at it, and three past it.
// The probe's backlogged rate understates what continuous batching reaches
// under a live queue, so the knee typically falls between 1.25x and 2x —
// the sweep must extend past it or the "max" row would just be the sweep
// edge, not a measured saturation point.
var saturationFracs = []float64{0.5, 0.75, 1.0, 1.25, 1.5, 2.0}

// Saturation runs the open-loop sweep and emits the table.
func Saturation(scale float64) (*Table, error) {
	cfg := gpufs.ScaledConfig(scale)
	sc := defaultSatCase(&cfg)
	t := &Table{
		ID: "Saturation",
		Title: fmt.Sprintf("open-loop saturation: Poisson arrivals over %d tenants, %d jobs/point, %d GPUs",
			sc.tenants, sc.jobs, sc.numGPUs),
		Header: []string{"load", "offered jobs/s", "achieved jobs/s", "shed", "p50 ms", "p99 ms", "p999 ms"},
	}

	capacity, err := saturationCapacity(scale)
	if err != nil {
		return nil, fmt.Errorf("saturation capacity probe: %w", err)
	}

	var best satPoint
	haveBest := false
	points := make([]satPoint, 0, len(saturationFracs))
	for i, frac := range saturationFracs {
		pt, err := saturationPoint(scale, frac*capacity, int64(100+i))
		if err != nil {
			return nil, fmt.Errorf("saturation at %.2fx capacity: %w", frac, err)
		}
		points = append(points, pt)
		mark := ""
		if pt.sustainable() {
			mark = " *"
			if !haveBest || pt.offered > best.offered {
				best, haveBest = pt, true
			}
		}
		t.AddRow(append([]string{fmt.Sprintf("%.2fx%s", frac, mark)}, satCells(pt)...)...)
	}
	if !haveBest {
		// Every point missed the bar (possible at tiny smoke scales where
		// the drain tail dominates short runs): report the highest achieved
		// point rather than failing the whole sweep.
		for _, pt := range points {
			if !haveBest || pt.res.AchievedRate() > best.res.AchievedRate() {
				best, haveBest = pt, true
			}
		}
		t.AddNote("no swept point met the sustainability bar; max row shows the highest achieved point")
	}
	t.AddRow(append([]string{"max"}, satCells(best)...)...)
	t.AddNote("open loop: Poisson virtual-time arrivals submitted on schedule; rejected jobs are shed, not retried")
	t.AddNote("* sustainable: achieved ≥ 90%% of offered with ≤ 5%% shed; the max row repeats the fastest such point")
	t.AddNote("capacity probe (backlogged run) measured %.0f jobs/s; latency percentiles from gpufs_serve_job_latency_seconds", capacity)
	return t, nil
}

// satCells renders one point's table cells.
func satCells(pt satPoint) []string {
	return []string{
		fmt.Sprintf("%.0f", pt.offered),
		fmt.Sprintf("%.0f", pt.res.AchievedRate()),
		fmt.Sprintf("%d/%d", pt.res.Rejected, pt.res.Offered),
		fmt.Sprintf("%.3f", pt.p50ms),
		fmt.Sprintf("%.3f", pt.p99ms),
		fmt.Sprintf("%.3f", pt.p999ms),
	}
}
