package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/params"
	"gpufs/internal/workloads"
)

// Readahead quantifies the adaptive read-ahead engine (the PR-4 tentpole)
// against the greedy fixed window and no read-ahead at all, across the
// three access patterns that separate them: sequential streams (both
// speculate usefully; adaptive also coalesces), fixed-stride scans (only
// the detector follows the stride — the greedy window fetches the skipped
// pages for nothing), and random reads (any speculation is waste; the
// detector's confidence gate keeps it quiet). Cells report effective
// throughput; prefetch columns report pages speculated and the fraction a
// demand access actually consumed.
func Readahead(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	fileBytes := seqFileBytes(&base)
	blocks := 2 * base.MPsPerGPU
	// A fixed mid-sweep page size: small enough that per-transaction
	// costs matter (where coalescing pays), large enough to stay off
	// Figure 4's degenerate left edge.
	ps := pow2AtMost(base.ScaleBytes(256 << 10))
	if ps < 4<<10 {
		ps = 4 << 10
	}
	const readBytes = 32 << 10
	const stridePages = 4

	t := &Table{
		ID: "Readahead",
		Title: fmt.Sprintf("read-ahead policy vs access pattern (file %s, %s pages, %d threadblocks)",
			sizeLabel(fileBytes), sizeLabel(ps), blocks),
		Header: []string{"pattern", "adaptive MB/s", "greedy MB/s", "off MB/s", "adaptive pf (used%)", "greedy pf (used%)"},
	}

	type mode struct {
		name string
		tune func(*gpufs.Config)
	}
	modes := []mode{
		{"adaptive", func(cfg *gpufs.Config) {}}, // the defaults
		{"greedy", func(cfg *gpufs.Config) {
			cfg.ReadAheadAdaptive = false
			cfg.CleanerWorkers = 0
			cfg.ReadAheadPages = 8
		}},
		{"off", func(cfg *gpufs.Config) {
			cfg.ReadAheadAdaptive = false
			cfg.CleanerWorkers = 0
		}},
	}

	patterns := []struct {
		name string
		run  func(sys *gpufs.System) (*workloads.MicroResult, error)
	}{
		{"sequential", func(sys *gpufs.System) (*workloads.MicroResult, error) {
			return workloads.SeqReadGPUfsGread(sys, 0, "/bench/ra.bin", fileBytes, blocks, 256, readBytes)
		}},
		{fmt.Sprintf("stride-%d", stridePages), func(sys *gpufs.System) (*workloads.MicroResult, error) {
			// One page per strided touch: a longer read would overlap
			// the skipped pages and degenerate into a sequential scan.
			sr := int64(readBytes)
			if sr > ps {
				sr = ps
			}
			return workloads.StrideReadGPUfs(sys, 0, "/bench/ra.bin", fileBytes, blocks, 256, stridePages, sr)
		}},
		{"random", func(sys *gpufs.System) (*workloads.MicroResult, error) {
			reads := int(fileBytes / 4 / readBytes / int64(blocks))
			if reads < 2 {
				reads = 2
			}
			return workloads.RandReadGPUfs(sys, 0, "/bench/ra.bin", fileBytes, blocks, 128, reads, readBytes)
		}},
	}

	for _, p := range patterns {
		row := []string{p.name}
		var pf [2]string
		for mi, m := range modes {
			var issued, used int64
			res, err := meanMicro(reps, func() (*workloads.MicroResult, error) {
				cfg := gpufs.ScaledConfig(scale)
				cfg.PageSize = ps
				if need := fileBytes + 16*ps; cfg.BufferCacheBytes < need {
					cfg.BufferCacheBytes = need
				}
				if cfg.GPUMemBytes < 2*cfg.BufferCacheBytes {
					cfg.GPUMemBytes = 2 * cfg.BufferCacheBytes
				}
				m.tune(&cfg)
				sys, err := newSystem(cfg)
				if err != nil {
					return nil, err
				}
				if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/ra.bin", fileBytes, 11); err != nil {
					return nil, err
				}
				sys.ResetTime()
				r, err := p.run(sys)
				if err != nil {
					return nil, err
				}
				cs := sys.GPU(0).FS().CacheStats()
				issued, used = cs.PrefetchIssued, cs.PrefetchUsed
				return r, nil
			})
			if err != nil {
				return nil, fmt.Errorf("readahead %s/%s: %w", p.name, m.name, err)
			}
			row = append(row, mbps(res.Throughput))
			if mi < 2 {
				rate := 0.0
				if issued > 0 {
					rate = 100 * float64(used) / float64(issued)
				}
				pf[mi] = fmt.Sprintf("%d (%.0f%%)", issued, rate)
			}
		}
		row = append(row, pf[0], pf[1])
		t.AddRow(row...)
	}
	t.AddNote("adaptive matches greedy on sequential streams (and beats it at small pages via coalescing), follows strides greedy cannot, and stays quiet on random reads where greedy's window is pure waste")
	return t, nil
}
