package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// contentionWorkerSteps are the daemon worker/shard counts the contention
// experiment sweeps.
var contentionWorkerSteps = []int{1, 4, 8}

// Contention measures the ISSUE 8 lock-free hot path under mixed
// reader/writer load on one hot file: reader blocks stream a
// cache-resident region (pure buffer-cache hits), while writer blocks
// dirty their own region of the same file and gfsync it through the host
// daemon. Each row compares the pre-ISSUE-8 configuration (copying hit
// path, single-shard frame allocator) against the lock-free one
// (zero-copy hits, per-MP sharded allocator) on an otherwise identical
// machine, sweeping daemon workers = RPC shards.
//
// The speedup column GROWS with workers: at one worker the writers'
// serialized fsync round-trips dominate the makespan and mask the GPU-side
// win, but as daemon parallelism absorbs the write-back traffic the
// machine becomes device-memory-bound — exactly where the zero-copy hit
// path (one bandwidth pass per byte instead of two) pays off.
func Contention(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Contention",
		Title:  "readers × writers over one hot file: locked/copying vs lock-free/zero-copy hit path",
		Header: []string{"workers×shards", "baseline", "lock-free+zero-copy", "speedup"},
	}
	for _, w := range contentionWorkerSteps {
		base, err := meanContention(reps, scale, w, false)
		if err != nil {
			return nil, fmt.Errorf("contention baseline at %d workers: %w", w, err)
		}
		fast, err := meanContention(reps, scale, w, true)
		if err != nil {
			return nil, fmt.Errorf("contention lock-free at %d workers: %w", w, err)
		}
		t.AddRow(fmt.Sprintf("%d", w),
			msec(base), msec(fast),
			fmt.Sprintf("%.2fx", float64(base)/float64(fast)))
	}
	t.AddNote("baseline = ZeroCopyRead off + FrameShards 1 (the pre-ISSUE-8 hot path); times in ms")
	t.AddNote("lock-free = zero-copy cache hits (one device-memory pass per byte) + per-MP sharded frame allocator")
	t.AddNote("kernel per point: 2×W reader blocks × %d passes over a hot %s region in %s greads, W writer blocks × %d passes dirtying %s each + gfsync",
		contentionReadPasses, sizeLabel(contentionReadBytes), sizeLabel(contentionChunk), contentionWritePasses, sizeLabel(contentionWriteBytes))
	t.AddNote("the speedup rises with workers: daemon parallelism drains the write-back traffic until device memory bandwidth bounds the run")
	return t, nil
}

// Workload sizing: the hot read region and every writer's slice stay
// buffer-cache-resident (the quantity under test is the HIT path, not
// paging), the gread chunk fits the 48 KB scratchpad, and the writers
// carry enough dirty data that their fsync truly contends with readers on
// the device memory bus and the daemon.
const (
	contentionReadBytes   = 4 << 20   // hot region every reader streams
	contentionWriteBytes  = 256 << 10 // per-writer private slice of the same file
	contentionChunk       = 32 << 10  // gread/gwrite granularity
	contentionReadPasses  = 16
	contentionWritePasses = 3
)

// meanContention averages n fresh runs of one contention point.
func meanContention(n int, scale float64, workers int, lockfree bool) (simtime.Duration, error) {
	var sum simtime.Duration
	for i := 0; i < n; i++ {
		el, err := contentionPoint(scale, workers, lockfree)
		if err != nil {
			return 0, err
		}
		sum += el
	}
	return sum / simtime.Duration(n), nil
}

// contentionPoint builds a fresh machine with the given daemon
// worker/shard count and hot-path configuration, warms one shared file,
// and measures the mixed reader/writer kernel.
func contentionPoint(scale float64, workers int, lockfree bool) (simtime.Duration, error) {
	readers := 2 * workers
	writers := workers
	fileBytes := int64(contentionReadBytes) + int64(writers)*contentionWriteBytes

	cfg := gpufs.ScaledConfig(scale)
	cfg.RPCShards = workers
	cfg.DaemonWorkers = workers
	if lockfree {
		cfg.ZeroCopyRead = true
		cfg.FrameShards = 0 // auto: one shard per MP
	} else {
		cfg.ZeroCopyRead = false
		cfg.FrameShards = 1
	}
	// Whole file resident on both sides of the bus: misses and host disk
	// seeks would drown the hit-path signal under test.
	if need := fileBytes + 64*cfg.PageSize; cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	if need := 2 * cfg.BufferCacheBytes; cfg.GPUMemBytes < need {
		cfg.GPUMemBytes = need
	}
	if need := 4 * cfg.BufferCacheBytes; cfg.CPURAMBytes < need {
		cfg.CPURAMBytes = need
	}
	sys, err := newSystem(cfg)
	if err != nil {
		return 0, err
	}

	const path = "/bench/contention/hot.bin"
	if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), path, fileBytes, 9); err != nil {
		return 0, err
	}

	// Warm pass: one block faults the whole file into the buffer cache so
	// the measured kernel's reads are hits and its writes are in-place.
	_, err = sys.GPU(0).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		for off := int64(0); off < fileBytes; off += contentionChunk {
			if _, err := c.Gread(fd, c.Scratch[:contentionChunk], off); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return 0, err
	}

	sys.ResetTime()
	end, err := sys.GPU(0).Launch(0, readers+writers, 64, func(c *gpufs.BlockCtx) error {
		if c.Idx < readers {
			// Reader: stream the hot region, all cache hits. Opened
			// O_RDWR like the writers: descriptors denote files, so
			// concurrent opens coalesce and their flags must agree.
			fd, err := c.Gopen(path, gpufs.O_RDWR)
			if err != nil {
				return err
			}
			for pass := 0; pass < contentionReadPasses; pass++ {
				for off := int64(0); off < contentionReadBytes; off += contentionChunk {
					if _, err := c.Gread(fd, c.Scratch[:contentionChunk], off); err != nil {
						return err
					}
				}
			}
			return c.Gclose(fd)
		}
		// Writer: dirty a private slice of the same file, then push it
		// through the daemon with gfsync, every pass.
		w := c.Idx - readers
		base := int64(contentionReadBytes) + int64(w)*contentionWriteBytes
		fd, err := c.Gopen(path, gpufs.O_RDWR)
		if err != nil {
			return err
		}
		src := c.Scratch[:contentionChunk]
		for i := range src {
			src[i] = byte(w + i)
		}
		for pass := 0; pass < contentionWritePasses; pass++ {
			for off := int64(0); off < contentionWriteBytes; off += contentionChunk {
				if _, err := c.Gwrite(fd, src, base+off); err != nil {
					return err
				}
			}
			if err := c.Gfsync(fd); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return 0, err
	}
	return simtime.Duration(end), nil
}
