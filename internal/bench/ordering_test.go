package bench

import "testing"

// TestOrderingRelaxedBeatsStrong pins the ISSUE 7 acceptance criterion:
// with RPCShards > 1 and DaemonWorkers >= 4, relaxed ordering beats
// strong on the metadata-heavy grep point. The point is single-block and
// cache-resident, so both measurements are deterministic.
func TestOrderingRelaxedBeatsStrong(t *testing.T) {
	const scale = 1.0 / 256
	strong, err := orderingPoint(scale, 4, "strong")
	if err != nil {
		t.Fatalf("strong: %v", err)
	}
	relaxed, err := orderingPoint(scale, 4, "relaxed")
	if err != nil {
		t.Fatalf("relaxed: %v", err)
	}
	if float64(relaxed) > 0.95*float64(strong) {
		t.Fatalf("relaxed (%v) does not beat strong (%v) by at least 5%%", relaxed, strong)
	}
	again, err := orderingPoint(scale, 4, "relaxed")
	if err != nil {
		t.Fatalf("relaxed rerun: %v", err)
	}
	if again != relaxed {
		t.Fatalf("relaxed point is nondeterministic: %v then %v", relaxed, again)
	}
}
