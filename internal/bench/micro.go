package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/params"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// pageSweep is the x-axis of Figures 4–7.
var pageSweep = []int64{
	16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10,
	1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
}

// reps is how many times each measured configuration runs; cells report
// the mean, mirroring the paper's averaging of 5 executions. SetReps
// adjusts it (the CLI exposes -reps).
var reps = 3

// SetReps sets the number of runs averaged per measured cell.
func SetReps(n int) {
	if n < 1 {
		n = 1
	}
	reps = n
}

// meanMicro averages the elapsed time of n fresh runs and recomputes the
// derived throughput.
func meanMicro(n int, run func() (*workloads.MicroResult, error)) (*workloads.MicroResult, error) {
	var sum simtime.Duration
	var last *workloads.MicroResult
	for i := 0; i < n; i++ {
		res, err := run()
		if err != nil {
			return nil, err
		}
		sum += res.Elapsed
		last = res
	}
	last.Elapsed = sum / simtime.Duration(n)
	if last.Elapsed > 0 {
		last.Throughput = simtime.Rate(float64(last.Bytes) / last.Elapsed.Seconds())
	}
	return last, nil
}

// seqFileBytes returns the Figure 4/5 file size at the given scale: the
// paper's 1.8 GB scaled, rounded up so the largest page size still divides
// the workload sensibly and the file fits the GPU buffer cache we
// provision.
func seqFileBytes(cfg *params.Config) int64 {
	size := cfg.ScaleBytes(1800 << 20)
	const align = 16 << 20
	if size < align {
		size = align
	}
	return (size + align - 1) / align * align
}

// seqSystem builds a System tuned for the sequential-read microbenchmark at
// one page size: the buffer cache is provisioned to hold the whole file, as
// in the paper ("the file data ... fits in the GPU page cache").
func seqSystem(scale float64, pageSize, fileBytes int64) (*gpufs.System, error) {
	cfg := gpufs.ScaledConfig(scale)
	cfg.PageSize = pageSize
	need := fileBytes + 16*pageSize
	if cfg.BufferCacheBytes < need {
		cfg.BufferCacheBytes = need
	}
	// Headroom for the CUDA baselines' device buffers (up to four
	// chunks of the largest page size on the sweep).
	if min := cfg.BufferCacheBytes + fileBytes + 4*(16<<20); cfg.GPUMemBytes < min {
		cfg.GPUMemBytes = min
	}
	return newSystem(cfg)
}

// Fig4 reproduces Figure 4: sequential read throughput versus page size for
// GPUfs (gmmap kernel), the hand-pipelined CUDA implementation using
// same-size chunks, and the whole-file transfer, against the maximum PCIe
// bandwidth reference.
func Fig4(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	fileBytes := seqFileBytes(&base)
	blocks := 2 * base.MPsPerGPU

	t := &Table{
		ID:     "Figure 4",
		Title:  fmt.Sprintf("sequential read throughput vs page size (file %s, %d threadblocks)", sizeLabel(fileBytes), blocks),
		Header: []string{"page", "GPUfs MB/s", "CUDA pipeline MB/s"},
	}

	for _, ps := range pageSweep {
		ps := ps
		gp, err := meanMicro(reps, func() (*workloads.MicroResult, error) {
			sys, err := seqSystem(scale, ps, fileBytes)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/seq.bin", fileBytes, 4); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.SeqReadGPUfs(sys, 0, "/bench/seq.bin", fileBytes, blocks, 256)
		})
		if err != nil {
			return nil, fmt.Errorf("fig4: GPUfs at page %s: %w", sizeLabel(ps), err)
		}
		pipe, err := meanMicro(reps, func() (*workloads.MicroResult, error) {
			sys, err := seqSystem(scale, ps, fileBytes)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/seq.bin", fileBytes, 4); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.SeqReadCUDAPipeline(sys, 1, "/bench/seq.bin", fileBytes, ps)
		})
		if err != nil {
			return nil, fmt.Errorf("fig4: pipeline at chunk %s: %w", sizeLabel(ps), err)
		}
		t.AddRow(sizeLabel(ps), mbps(gp.Throughput), mbps(pipe.Throughput))
	}

	sys, err := seqSystem(scale, 256<<10, fileBytes)
	if err != nil {
		return nil, err
	}
	if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/seq.bin", fileBytes, 4); err != nil {
		return nil, err
	}
	sys.ResetTime()
	whole, err := workloads.SeqReadWholeFile(sys, 0, "/bench/seq.bin", fileBytes)
	if err != nil {
		return nil, err
	}
	t.AddNote("whole file transfer: %s MB/s (paper: 2100 MB/s)", mbps(whole.Throughput))
	t.AddNote("maximum PCIe bandwidth: %s MB/s (paper: 5731 MB/s)", mbps(base.PCIeBandwidth))
	t.AddNote("paper shape: GPUfs overtakes whole-file reads at >=64K pages and lands within ~5%% of the pipeline at large pages")
	return t, nil
}

// Fig5 reproduces Figure 5: the contribution of each cost component to
// sequential-read time, by excluding PCIe DMA, host file I/O, or both. The
// remainder with both excluded is pure GPUfs buffer-cache code, which
// shrinks proportionally to page size.
func Fig5(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	fileBytes := seqFileBytes(&base)
	blocks := 2 * base.MPsPerGPU

	type combo struct {
		name            string
		exclDMA, exclIO bool
	}
	combos := []combo{
		{"total", false, false},
		{"-DMA", true, false},
		{"-fileIO", false, true},
		{"-both", true, true},
	}

	t := &Table{
		ID:     "Figure 5",
		Title:  fmt.Sprintf("sequential read time breakdown vs page size (file %s, ms)", sizeLabel(fileBytes)),
		Header: []string{"page", "total", "CPU DMA excluded", "CPU file I/O excluded", "both excluded"},
	}

	for _, ps := range pageSweep {
		row := []string{sizeLabel(ps)}
		for _, cb := range combos {
			sys, err := seqSystem(scale, ps, fileBytes)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/seq.bin", fileBytes, 4); err != nil {
				return nil, err
			}
			sys.ResetTime()
			sys.Bus().SetExcludeDMA(cb.exclDMA)
			sys.Host().SetTimingFree(cb.exclIO)
			res, err := workloads.SeqReadGPUfs(sys, 0, "/bench/seq.bin", fileBytes, blocks, 256)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s at %s: %w", cb.name, sizeLabel(ps), err)
			}
			row = append(row, msec(res.Elapsed))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: the both-excluded column (pure page-cache code) halves with each doubling of page size (792ms at 16K down to 2ms at 16M, at full scale)")
	return t, nil
}

// Fig6 reproduces Figure 6: random 32 KB greads from a 1 GB file — unique
// pages faulted and effective bandwidth versus page size. Small pages fail
// to amortize transfer costs; large pages fetch data the application never
// reads.
func Fig6(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	// Preserve the paper's payload-to-file ratio (112 MB of reads from a
	// 1 GB file): too small a file would turn random reads into buffer
	// cache hits and hide the unused-data cost of large pages.
	fileBytes := base.ScaleBytes(1 << 30)
	const minFile = 128 << 20
	if fileBytes < minFile {
		fileBytes = minFile
	}
	const align = 16 << 20
	fileBytes = (fileBytes + align - 1) / align * align
	blocks := 8 * base.MPsPerGPU
	const readBytes = 32 << 10
	totalReads := int(float64(fileBytes) / float64(1<<30) * 3584)
	readsPerBlock := totalReads / blocks
	if readsPerBlock < 2 {
		readsPerBlock = 2
	}

	t := &Table{
		ID: "Figure 6",
		Title: fmt.Sprintf("random read: %d blocks x %d reads of %s from a %s file",
			blocks, readsPerBlock, sizeLabel(readBytes), sizeLabel(fileBytes)),
		Header: []string{"page", "unique pages", "effective MB/s"},
	}

	for _, ps := range pageSweep {
		ps := ps
		res, err := meanMicro(reps, func() (*workloads.MicroResult, error) {
			sys, err := seqSystem(scale, ps, fileBytes)
			if err != nil {
				return nil, err
			}
			if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/rand.bin", fileBytes, 5); err != nil {
				return nil, err
			}
			sys.ResetTime()
			return workloads.RandReadGPUfs(sys, 0, "/bench/rand.bin", fileBytes, blocks, 128, readsPerBlock, readBytes)
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 at page %s: %w", sizeLabel(ps), err)
		}
		t.AddRow(sizeLabel(ps), fmt.Sprintf("%d", res.UniquePages), mbps(res.Throughput))
	}
	t.AddNote("paper shape: throughput peaks at a mid page size (64K on their testbed) — small pages fail to amortize transfers, large pages move unread data")
	return t, nil
}

// Fig7 reproduces Figure 7: in-buffer-cache gread bandwidth relative to raw
// device-memory access, with the default lock-free radix traversal and with
// traversal forced to take the tree lock.
func Fig7(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	blocks := 8 * base.MPsPerGPU
	perBlock := base.ScaleBytes(64 << 20)
	const chunk = 16 << 10
	perBlock = (perBlock + chunk - 1) / chunk * chunk

	// The file must be fully cache-resident.
	fileBytes := base.BufferCacheBytes / 2
	const align = 4 << 20
	fileBytes = fileBytes / align * align
	if fileBytes < align {
		fileBytes = align
	}

	t := &Table{
		ID: "Figure 7",
		Title: fmt.Sprintf("buffer cache hit bandwidth, normalized to raw memory access (%d blocks x %s in %s chunks)",
			blocks, sizeLabel(perBlock), sizeLabel(chunk)),
		Header: []string{"page", "lock-free (frac of raw)", "locked (frac of raw)"},
	}

	run := func(ps int64, forceLocked bool) (*workloads.MicroResult, error) {
		cfg := gpufs.ScaledConfig(scale)
		cfg.PageSize = ps
		cfg.ForceLockedTraversal = forceLocked
		if cfg.BufferCacheBytes < fileBytes+16*ps {
			cfg.BufferCacheBytes = fileBytes + 16*ps
		}
		if cfg.GPUMemBytes < cfg.BufferCacheBytes+fileBytes {
			cfg.GPUMemBytes = cfg.BufferCacheBytes + fileBytes
		}
		sys, err := newSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := workloads.MakeDataFile(sys.Host(), sys.HostClock(), "/bench/hit.bin", fileBytes, 6); err != nil {
			return nil, err
		}
		if _, err := workloads.PrefetchGPUfs(sys, 0, "/bench/hit.bin", fileBytes, blocks, 128); err != nil {
			return nil, err
		}
		sys.ResetTime()
		return workloads.CacheHitGPUfs(sys, 0, "/bench/hit.bin", fileBytes, blocks, 128, perBlock, chunk)
	}

	// Raw baseline is independent of page size.
	raw, err := meanMicro(reps, func() (*workloads.MicroResult, error) {
		rawSys, err := newSystem(params.Scaled(scale))
		if err != nil {
			return nil, err
		}
		return workloads.CacheHitRaw(rawSys, 0, fileBytes, blocks, 128, perBlock, chunk)
	})
	if err != nil {
		return nil, err
	}

	for _, ps := range pageSweep {
		ps := ps
		free, err := meanMicro(reps, func() (*workloads.MicroResult, error) { return run(ps, false) })
		if err != nil {
			return nil, fmt.Errorf("fig7 lock-free at %s: %w", sizeLabel(ps), err)
		}
		locked, err := meanMicro(reps, func() (*workloads.MicroResult, error) { return run(ps, true) })
		if err != nil {
			return nil, fmt.Errorf("fig7 locked at %s: %w", sizeLabel(ps), err)
		}
		t.AddRow(sizeLabel(ps),
			fmt.Sprintf("%.2f", float64(raw.Elapsed)/float64(free.Elapsed)),
			fmt.Sprintf("%.2f", float64(raw.Elapsed)/float64(locked.Elapsed)))
	}
	t.AddNote("raw memory access time: %v for %s per block", simtime.Duration(raw.Elapsed), sizeLabel(perBlock))
	t.AddNote("paper shape: lock-free achieves 85-88%% of raw bandwidth at >=128K pages and runs ~3x faster than the locked protocol")
	return t, nil
}
