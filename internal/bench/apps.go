package bench

import (
	"fmt"

	"gpufs"
	"gpufs/internal/params"
	"gpufs/internal/simtime"
	"gpufs/internal/workloads"
)

// Fig8 reproduces Figure 8: matrix–vector product throughput for inputs
// from 280 MB up to 11.2 GB (scaled), comparing the GPUfs kernel against
// the naïve (4-chunk) and optimized (fixed-chunk) CUDA double-buffering
// implementations. The largest input exceeds the GPU buffer cache and
// approaches CPU RAM, exposing the disk-bound regime in which GPUfs wins
// by ~4x.
func Fig8(scale float64) (*Table, error) {
	base := params.Scaled(scale)
	blocks := 2 * base.MPsPerGPU

	// Column count fixed at the paper's 128K elements, rows scaled.
	const cols = 128 << 10
	rowBytes := int64(cols) * 4
	paperSizes := []int64{280 << 20, 560 << 20, 2800 << 20, 5600 << 20, 11200 << 20}

	t := &Table{
		ID:     "Figure 8",
		Title:  fmt.Sprintf("matrix-vector product throughput (MB/s), vector %dK elements", cols>>10),
		Header: []string{"matrix", "GPUfs MB/s", "CUDA naive MB/s", "CUDA optimized MB/s"},
	}

	for _, paperSize := range paperSizes {
		size := base.ScaleBytes(paperSize)
		rows := int(size / rowBytes)
		if rows < 2*blocks {
			rows = 2 * blocks
		}

		run := func(kind string) (*workloads.MatVecResult, error) {
			cfg := gpufs.ScaledConfig(scale)
			// The paper uses 2 MB pages; when scaling shrinks them we
			// floor at 512 KB, below which per-page overheads would
			// dominate (Figure 4's left half) and misrepresent the
			// experiment.
			cfg.PageSize = cfg.ScaleBytes(2 << 20)
			if cfg.PageSize < 512<<10 {
				cfg.PageSize = 512 << 10
			}
			if cfg.PageSize < rowBytes {
				cfg.PageSize = rowBytes
			}
			// Page size must stay a power of two.
			for p := int64(1); ; p <<= 1 {
				if p >= cfg.PageSize {
					cfg.PageSize = p
					break
				}
			}
			// Every block pins a matrix mapping plus output and
			// vector pages concurrently; the cache must hold them
			// all or the kernel livelocks on reclamation.
			if min := int64(blocks+8) * cfg.PageSize * 2; cfg.BufferCacheBytes < min {
				cfg.BufferCacheBytes = min
			}
			if cfg.GPUMemBytes < 2*cfg.BufferCacheBytes {
				cfg.GPUMemBytes = 2 * cfg.BufferCacheBytes
			}
			// The CUDA baselines run standalone: the GPUfs buffer cache
			// would not occupy their card, so give the device enough
			// memory for the staging buffers the baseline allocates.
			var chunk int64
			switch kind {
			case "naive":
				chunk = (int64(rows)*rowBytes + 3) / 4
			case "opt":
				chunk = cfg.ScaleBytes(70 << 20)
			}
			if chunk > 0 {
				need := cfg.BufferCacheBytes + 17*chunk + int64(rows)*4 + 2*rowBytes + (64 << 20)
				if cfg.GPUMemBytes < need {
					cfg.GPUMemBytes = need
				}
			}
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			f, err := workloads.MakeMatVec(sys.Host(), sys.HostClock(), "/bench/mv", rows, cols, 8)
			if err != nil {
				return nil, err
			}
			sys.ResetTime()
			switch kind {
			case "gpufs":
				return workloads.MatVecGPUfs(sys, 0, f, blocks, 256)
			case "naive":
				return workloads.MatVecCUDA(sys, 0, f, f.MatrixBytes/4, 2, blocks, 256)
			default:
				// 16 fixed-size chunks in flight (§5.1.4).
				return workloads.MatVecCUDA(sys, 0, f, cfg.ScaleBytes(70<<20), 16, blocks, 256)
			}
		}

		gp, err := run("gpufs")
		if err != nil {
			return nil, fmt.Errorf("fig8 gpufs at %s: %w", sizeLabel(paperSize), err)
		}
		nv, err := run("naive")
		if err != nil {
			return nil, fmt.Errorf("fig8 naive at %s: %w", sizeLabel(paperSize), err)
		}
		opt, err := run("opt")
		if err != nil {
			return nil, fmt.Errorf("fig8 optimized at %s: %w", sizeLabel(paperSize), err)
		}
		t.AddRow(sizeLabel(paperSize)+" (paper scale)", mbps(gp.Throughput), mbps(nv.Throughput), mbps(opt.Throughput))
	}
	t.AddNote("paper shape: GPUfs tracks peak file-to-GPU bandwidth, beats the naive pipeline by 5%%-4x, and wins ~4x once the input exceeds CPU RAM (last row)")
	return t, nil
}

// imageSpecFor builds the §5.2.1 workload at scale: three databases of
// 383/357/400 MB (~25,000 images each) and 2,016 query images. The
// databases scale; the query count does NOT, because the work is
// queries x images while the I/O is only proportional to images — scaling
// both would shrink compute 1024x against 32x I/O and destroy the paper's
// compute-bound regime.
func imageSpecFor(cfg *params.Config, dir string, plan workloads.MatchPlan, seed int64) workloads.ImageSpec {
	return workloads.ImageSpec{
		Dir: dir,
		DBImages: []int{
			int(cfg.ScaleBytes(383<<20) / workloads.ImageBytes),
			int(cfg.ScaleBytes(357<<20) / workloads.ImageBytes),
			int(cfg.ScaleBytes(400<<20) / workloads.ImageBytes),
		},
		Queries: 2016,
		Plan:    plan,
		Seed:    seed,
	}
}

// Table2 reproduces Table 2: the impact of the GPU buffer cache size (2 GB,
// 1 GB, 0.5 GB at paper scale) on image-search running time, pages
// reclaimed, and the ratio of lock-free to locked radix-tree accesses.
func Table2(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Table 2",
		Title:  "image search vs buffer cache size (no-match queries, OS page cache flushed)",
		Header: []string{"cache", "time (s)", "pages reclaimed", "lock-free accesses", "locked accesses"},
	}

	for _, paperCache := range []int64{2 << 30, 1 << 30, 512 << 20} {
		cfg := gpufs.ScaledConfig(scale)
		cfg.BufferCacheBytes = cfg.ScaleBytes(paperCache)
		// Scale the page size with the cache so the page COUNT matches
		// the paper's regime; a full-size page in a scaled cache would
		// leave too few pages for the running blocks and distort the
		// reclamation behaviour this table measures.
		cfg.PageSize = pow2AtMost(cfg.ScaleBytes(cfg.PageSize))
		if cfg.PageSize < 4<<10 {
			cfg.PageSize = 4 << 10
		}
		if cfg.BufferCacheBytes < 4*cfg.PageSize {
			cfg.BufferCacheBytes = 4 * cfg.PageSize
		}
		sys, err := newSystem(cfg)
		if err != nil {
			return nil, err
		}
		w, err := workloads.MakeImageWorkload(sys.Host(), sys.HostClock(), imageSpecFor(&cfg, "/bench/img", workloads.MatchNone, 12))
		if err != nil {
			return nil, err
		}
		sys.DropHostCaches()
		sys.ResetTime()

		blocks := 2 * cfg.MPsPerGPU
		res, err := workloads.ImageSearchGPUfs(sys, w, 1, blocks, 512, "/bench/img/out.bin")
		if err != nil {
			return nil, fmt.Errorf("table2 at cache %s: %w", sizeLabel(paperCache), err)
		}
		st := sys.GPU(0).Stats()
		t.AddRow(sizeLabel(paperCache)+" (paper scale)", secs(res.Elapsed),
			fmt.Sprintf("%d", st.PagesReclaimed),
			fmt.Sprintf("%d", st.LockFreeAccesses),
			fmt.Sprintf("%d", st.LockedAccesses))
	}
	t.AddNote("paper shape: shrinking the cache forces reclamation and shifts accesses from lock-free to locked (2G: 0 reclaimed; 0.5G: tens of thousands)")
	return t, nil
}

// Table3 reproduces Table 3: image-matching time on the 8-core CPU and on
// 1–4 GPUs, for no-match and exact-match query sets, with the CPU page
// cache warmed (the paper's multi-GPU scaling configuration).
func Table3(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Table 3",
		Title:  "approximate image matching: 8-core CPU vs 1-4 GPUs (warm CPU page cache)",
		Header: []string{"input", "CPUx8 (s)", "1 GPU (s)", "2 GPUs (s)", "3 GPUs (s)", "4 GPUs (s)"},
	}

	plans := []struct {
		name string
		plan workloads.MatchPlan
	}{
		{"No match", workloads.MatchNone},
		{"Exact match", workloads.MatchRandom},
	}

	for _, pl := range plans {
		row := []string{pl.name}

		// CPU baseline.
		cfg := gpufs.ScaledConfig(scale)
		sysCPU, err := newSystem(cfg)
		if err != nil {
			return nil, err
		}
		w, err := workloads.MakeImageWorkload(sysCPU.Host(), sysCPU.HostClock(), imageSpecFor(&cfg, "/bench/img3", pl.plan, 13))
		if err != nil {
			return nil, err
		}
		sysCPU.ResetTime()
		cres, err := workloads.ImageSearchCPU(sysCPU.Host(), w, cfg.NumCPUCores, cfg.CPUFlops)
		if err != nil {
			return nil, err
		}
		row = append(row, secs(cres.Elapsed))

		var oneGPU simtime.Duration
		for n := 1; n <= 4; n++ {
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := workloads.MakeImageWorkload(sys.Host(), sys.HostClock(), imageSpecFor(&cfg, "/bench/img3", pl.plan, 13)); err != nil {
				return nil, err
			}
			sys.ResetTime()
			res, err := workloads.ImageSearchGPUfs(sys, w, n, 2*cfg.MPsPerGPU, 512, "/bench/img3/out.bin")
			if err != nil {
				return nil, fmt.Errorf("table3 %s with %d GPUs: %w", pl.name, n, err)
			}
			if n == 1 {
				oneGPU = res.Elapsed
				row = append(row, secs(res.Elapsed))
			} else {
				row = append(row, fmt.Sprintf("%s (%.1fx)", secs(res.Elapsed),
					float64(oneGPU)/float64(res.Elapsed)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: near-linear GPU scaling (2.0x/2.9x/4.1x for no-match), ~9x for 4 GPUs over the 8-core CPU; exact-match scales slightly worse (static partitioning imbalance)")

	// §5.2.1's degenerate case: every query matches within the first page
	// of the first database, so the dynamic loading the file system
	// enables skips nearly all data — the paper measures a 400x drop
	// (53 s to 130 ms).
	cfg := gpufs.ScaledConfig(scale)
	sysNo, err := newSystem(cfg)
	if err != nil {
		return nil, err
	}
	wNo, err := workloads.MakeImageWorkload(sysNo.Host(), sysNo.HostClock(), imageSpecFor(&cfg, "/bench/img4", workloads.MatchNone, 17))
	if err != nil {
		return nil, err
	}
	sysNo.ResetTime()
	resNo, err := workloads.ImageSearchGPUfs(sysNo, wNo, 1, 2*cfg.MPsPerGPU, 512, "/bench/img4/out.bin")
	if err != nil {
		return nil, err
	}
	sysFirst, err := newSystem(cfg)
	if err != nil {
		return nil, err
	}
	wFirst, err := workloads.MakeImageWorkload(sysFirst.Host(), sysFirst.HostClock(), imageSpecFor(&cfg, "/bench/img4", workloads.MatchFirstPage, 17))
	if err != nil {
		return nil, err
	}
	sysFirst.ResetTime()
	resFirst, err := workloads.ImageSearchGPUfs(sysFirst, wFirst, 1, 2*cfg.MPsPerGPU, 512, "/bench/img4/out.bin")
	if err != nil {
		return nil, err
	}
	t.AddNote("degenerate first-page match: %s vs %s for no-match — a %.0fx drop from dynamic database loading (paper: 400x, 53s to 130ms)",
		resFirst.Elapsed, resNo.Elapsed, float64(resNo.Elapsed)/float64(resFirst.Elapsed))
	return t, nil
}

// Table4 reproduces Table 4: exact string match ("grep -w") over a
// Linux-source-like tree (~33,000 files, 524 MB) and a Shakespeare-like
// single 6 MB file, comparing the 8-core CPU, the GPUfs kernel, and the
// vanilla prefetch-everything GPU implementation.
func Table4(scale float64) (*Table, error) {
	t := &Table{
		ID:     "Table 4",
		Title:  "GPU exact string match (grep -w), 58,000-word dictionary (scaled)",
		Header: []string{"input", "CPUx8", "GPU-GPUfs", "GPU-vanilla"},
	}

	type input struct {
		name     string
		files    int
		bytes    int64
		singular bool
	}
	inputs := []input{
		{"Linux source", 33000, 524 << 20, false},
		{"Shakespeare", 1, 6 << 20, true},
	}

	for _, in := range inputs {
		cfg := gpufs.ScaledConfig(scale)
		// The vanilla baseline runs standalone in reality: its text and
		// output buffers would not share the card with a GPUfs buffer
		// cache, so provision device memory for both.
		vanillaNeed := cfg.BufferCacheBytes + 2*cfg.ScaleBytes(in.bytes) + cfg.ScaleBytes(5<<30) + (64 << 20)
		if cfg.GPUMemBytes < vanillaNeed {
			cfg.GPUMemBytes = vanillaNeed
		}
		sys, err := newSystem(cfg)
		if err != nil {
			return nil, err
		}
		// The dictionary does not scale: grep's work is dictionary x
		// text, so scaling both factors would shrink compute 1024x
		// against 32x of I/O and hide the compute-bound regime that
		// gives the GPU its ~7x advantage.
		dict := workloads.MakeDictionary(58000)
		if err := sys.WriteHostFile("/bench/grep/dict.txt", dict.Encode()); err != nil {
			return nil, err
		}
		tree, err := workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
			Dir:        "/bench/grep/src",
			NumFiles:   max(cfg.ScaleCount(in.files), 1),
			TotalBytes: cfg.ScaleBytes(in.bytes),
			Text:       workloads.TextSpec{Dict: dict, DictFraction: 0.35, Seed: 14},
		})
		if err != nil {
			return nil, err
		}
		if in.singular {
			// One big file: regenerate as a single-file tree.
			tree, err = workloads.MakeTree(sys.Host(), sys.HostClock(), workloads.TreeSpec{
				Dir:        "/bench/grep/single",
				NumFiles:   1,
				TotalBytes: cfg.ScaleBytes(in.bytes),
				Text:       workloads.TextSpec{Dict: dict, DictFraction: 0.35, Seed: 15},
			})
			if err != nil {
				return nil, err
			}
		}
		// No warmup: the paper reports these numbers cold.
		sys.DropHostCaches()
		sys.ResetTime()

		blocks := 8 * cfg.MPsPerGPU
		gres, err := workloads.GrepGPUfs(sys, 0, "/bench/grep/dict.txt", tree.ListPath, "/bench/grep/out.txt",
			cfg.GrepGPURate, blocks, 512, 0)
		if err != nil {
			return nil, fmt.Errorf("table4 GPUfs on %s: %w", in.name, err)
		}

		sys.DropHostCaches()
		sys.ResetTime()
		vres, err := workloads.GrepVanillaGPU(sys, 1, dict, tree.Files, cfg.GrepGPURate, blocks, 512,
			cfg.ScaleBytes(5<<30))
		if err != nil {
			return nil, fmt.Errorf("table4 vanilla on %s: %w", in.name, err)
		}

		sys.DropHostCaches()
		sys.ResetTime()
		cres, err := workloads.GrepCPU(sys.Host(), dict, tree.Files, cfg.NumCPUCores, cfg.GrepCPURate)
		if err != nil {
			return nil, fmt.Errorf("table4 CPU on %s: %w", in.name, err)
		}

		t.AddRow(in.name+" (scaled)",
			secs(cres.Elapsed),
			fmt.Sprintf("%s (%.1fx)", secs(gres.Elapsed), float64(cres.Elapsed)/float64(gres.Elapsed)),
			fmt.Sprintf("%s (%.1fx)", secs(vres.Elapsed), float64(cres.Elapsed)/float64(vres.Elapsed)))
	}
	t.AddNote("paper: Linux source 6.07h CPU / 53m GPUfs (6.8x) / 50m vanilla (7.2x); Shakespeare 292s / 40s (7.3x) / 40s")
	t.AddNote("paper LOC (semicolons): CPU 80, GPUfs 140 (incl. 52 lines of string helpers), vanilla 178")
	return t, nil
}

// All runs every experiment at the given scale.
func All(scale float64) ([]*Table, error) {
	runners := []func(float64) (*Table, error){Fig4, Fig5, Fig6, Fig7, Fig8, Table2, Table3, Table4, Readahead, Serve, DaemonScaling, Ordering, Contention, Saturation}
	var out []*Table
	for _, r := range runners {
		tb, err := r(scale)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pow2AtMost rounds n down to a power of two (minimum 1).
func pow2AtMost(n int64) int64 {
	p := int64(1)
	for p<<1 <= n {
		p <<= 1
	}
	return p
}
