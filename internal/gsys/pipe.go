package gsys

import (
	"errors"
	"fmt"
	"sync"

	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

// gpipe: bounded in-memory pipes between concurrently running kernels,
// brokered by the host daemon. A pipe lives in host memory (the kernels
// may be on different GPUs); records written by a producer kernel ride
// the request frame's inline payload and are DMA'd device-to-host, reads
// DMA host-to-device into the consumer's buffer.
//
// Blocking semantics are on VIRTUAL time, with the would-block protocol
// of a polling client: a write into a full pipe (or a read from an empty
// one) fails with ErrPipeFull/ErrPipeEmpty at the daemon, and the client
// re-polls — waiting in real time on the pipe's condition variable so the
// simulation makes progress, then advancing its block's virtual clock to
// the time the condition actually cleared (space freed at the freeing
// read's completion; data available at the filling write's DMA
// completion) before re-issuing. A consumer therefore never observes a
// byte before the virtual time its producer finished writing it, and a
// blocked producer resumes no earlier than the virtual time the consumer
// freed space.
//
// The create-before-use race on writer count is closed by declaration:
// every open of a pipe declares the same expected writer count, and EOF
// is "declared writers have all closed AND the buffer is drained" — a
// reader that arrives before any writer has attached blocks rather than
// seeing a premature EOF.

// Would-block and terminal pipe errors.
var (
	// ErrPipeFull is the would-block failure of a write into a pipe
	// without room for the whole record (writes are atomic, PIPE_BUF
	// style: a record is never split).
	ErrPipeFull = errors.New("gsys: pipe full (EAGAIN)")
	// ErrPipeEmpty is the would-block failure of a read from an empty
	// pipe that still has live writers.
	ErrPipeEmpty = errors.New("gsys: pipe empty (EAGAIN)")
	// ErrPipeClosed reports a write to a pipe whose declared writers
	// have all closed.
	ErrPipeClosed = errors.New("gsys: pipe closed for writing")
	// ErrPipeBroken reports a write to a pipe whose reader has closed:
	// the bytes can never be consumed (EPIPE).
	ErrPipeBroken = errors.New("gsys: broken pipe (EPIPE)")
)

// PipeMode selects the end of the pipe an open or close refers to.
type PipeMode uint8

// Pipe ends.
const (
	PipeReader PipeMode = iota
	PipeWriter
)

// pipeChunk is one atomically written record (or its unread tail), with
// the virtual time its bytes became available in host memory.
type pipeChunk struct {
	data    []byte
	availAt simtime.Time
}

// pipe is one named bounded pipe.
type pipe struct {
	mu   sync.Mutex
	cond *sync.Cond

	name string
	cap  int

	chunks   []pipeChunk
	buffered int

	writersDeclared int
	writersAttached int
	writersClosed   int

	// readerClosed marks the read side gone: further writes fail with
	// ErrPipeBroken instead of blocking on space that will never free.
	// broken is a terminal error forced on BOTH ends (BreakPipe) so a
	// stage that dies cannot strand its blocked peer.
	readerClosed bool
	broken       error

	// spaceAt is the virtual completion time of the last read that freed
	// space; closedAt that of the last writer close. They are the wake
	// hints a re-polling client advances its clock to.
	spaceAt  simtime.Time
	closedAt simtime.Time

	bytesIn  int64
	bytesOut int64
}

// pipeTable names and numbers the pipes of one Service.
type pipeTable struct {
	mu     sync.Mutex
	byName map[string]*pipe
	byID   map[int64]*pipe
	nextID int64
}

func (t *pipeTable) init() {
	t.byName = make(map[string]*pipe)
	t.byID = make(map[int64]*pipe)
	t.nextID = 1
}

func (t *pipeTable) open(name string, capBytes, writers int) (int64, *pipe, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.byName[name]; ok {
		if p.cap != capBytes || p.writersDeclared != writers {
			return 0, nil, fmt.Errorf("gsys: pipe %q exists with cap=%d writers=%d (asked cap=%d writers=%d)",
				name, p.cap, p.writersDeclared, capBytes, writers)
		}
		for id, q := range t.byID {
			if q == p {
				return id, p, nil
			}
		}
	}
	p := &pipe{name: name, cap: capBytes, writersDeclared: writers}
	p.cond = sync.NewCond(&p.mu)
	id := t.nextID
	t.nextID++
	t.byName[name] = p
	t.byID[id] = p
	return id, p, nil
}

func (t *pipeTable) get(id int64) (*pipe, error) {
	t.mu.Lock()
	p := t.byID[id]
	t.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("gsys: unknown pipe id %d", id)
	}
	return p, nil
}

// waitWritable blocks in REAL time until the pipe has room for an n-byte
// record, returning the virtual time the space was freed.
func (p *pipe) waitWritable(n int) simtime.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.cap-p.buffered < n && !p.readerClosed && p.broken == nil {
		p.cond.Wait()
	}
	return p.spaceAt
}

// waitReadable blocks in REAL time until the pipe has data or has hit
// EOF, returning the virtual time the condition cleared.
func (p *pipe) waitReadable() simtime.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.buffered == 0 && p.writersClosed < p.writersDeclared && p.broken == nil {
		p.cond.Wait()
	}
	if p.buffered > 0 {
		return p.chunks[0].availAt
	}
	return p.closedAt
}

func (s *Service) sysPipeOpen(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	mode, capBytes, writers := PipeMode(c.fr.Args[0]), int(c.fr.Args[1]), int(c.fr.Args[2])
	if capBytes <= 0 {
		return 0, fmt.Errorf("gsys: pipe capacity must be positive, got %d", capBytes)
	}
	if writers < 0 {
		return 0, fmt.Errorf("gsys: negative declared writer count %d", writers)
	}
	id, p, err := s.pipes.open(c.fr.Path, capBytes, writers)
	if err != nil {
		return 0, err
	}
	if mode == PipeWriter {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.writersAttached >= p.writersDeclared {
			return 0, fmt.Errorf("gsys: pipe %q already has its %d declared writer(s)", p.name, p.writersDeclared)
		}
		p.writersAttached++
	}
	c.reply.FD = id
	return 0, nil
}

func (s *Service) sysPipeWrite(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	p, err := s.pipes.get(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	n := len(c.fr.Data)
	if n == 0 {
		return 0, nil
	}
	if n > p.cap {
		return 0, fmt.Errorf("gsys: %d-byte record exceeds pipe %q capacity %d", n, p.name, p.cap)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return 0, p.broken
	}
	if p.readerClosed {
		return 0, ErrPipeBroken
	}
	if p.writersClosed >= p.writersDeclared {
		return 0, ErrPipeClosed
	}
	if p.cap-p.buffered < n {
		c.reply.WaitAt = p.spaceAt
		return 0, ErrPipeFull
	}
	// The record's bytes land in host memory when the D2H transfer of the
	// frame payload completes; a reader consuming this chunk can finish
	// no earlier.
	done := c.cli.rpc.Link().Charge(cclk.Now(), pcie.DeviceToHost, int64(n))
	p.chunks = append(p.chunks, pipeChunk{data: append([]byte(nil), c.fr.Data...), availAt: done})
	p.buffered += n
	p.bytesIn += int64(n)
	p.cond.Broadcast()
	c.reply.N = n
	return done, nil
}

func (s *Service) sysPipeRead(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	p, err := s.pipes.get(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	if len(c.dst) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return 0, p.broken
	}
	if p.buffered == 0 {
		if p.writersClosed >= p.writersDeclared {
			c.reply.EOF = true
			done := p.closedAt
			if now := cclk.Now(); now > done {
				done = now
			}
			return done, nil
		}
		return 0, ErrPipeEmpty
	}
	n := 0
	var avail simtime.Time
	for n < len(c.dst) && len(p.chunks) > 0 {
		ch := &p.chunks[0]
		take := len(ch.data)
		if take > len(c.dst)-n {
			take = len(c.dst) - n
		}
		copy(c.dst[n:n+take], ch.data[:take])
		n += take
		if ch.availAt > avail {
			avail = ch.availAt
		}
		if take == len(ch.data) {
			p.chunks = p.chunks[1:]
		} else {
			ch.data = ch.data[take:]
		}
	}
	p.buffered -= n
	p.bytesOut += int64(n)
	start := cclk.Now()
	if avail > start {
		start = avail // cannot consume bytes before their write landed
	}
	done := c.cli.rpc.Link().Charge(start, pcie.HostToDevice, int64(n))
	if done > p.spaceAt {
		p.spaceAt = done // space frees when the consuming DMA drained it
	}
	p.cond.Broadcast()
	c.reply.N = n
	return done, nil
}

func (s *Service) sysPipeClose(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	p, err := s.pipes.get(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if PipeMode(c.fr.Args[1]) == PipeWriter {
		if p.writersClosed >= p.writersDeclared {
			return 0, ErrPipeClosed
		}
		p.writersClosed++
		if now := cclk.Now(); now > p.closedAt {
			p.closedAt = now
		}
	} else {
		p.readerClosed = true
	}
	p.cond.Broadcast()
	return 0, nil
}

// BreakPipe forces a terminal error on the named pipe, waking and
// failing every blocked or future operation on either end. Harnesses
// call it when one stage of a pipeline dies, so the surviving stage
// unblocks with the stage's error instead of hanging on virtual-time
// backpressure forever.
func (s *Service) BreakPipe(name string, err error) {
	s.pipes.mu.Lock()
	p := s.pipes.byName[name]
	s.pipes.mu.Unlock()
	if p == nil {
		return
	}
	if err == nil {
		err = ErrPipeBroken
	}
	p.mu.Lock()
	p.broken = err
	p.cond.Broadcast()
	p.mu.Unlock()
}
