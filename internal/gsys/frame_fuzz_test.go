package gsys

import (
	"bytes"
	"testing"
)

// FuzzSyscallFrame drives DecodeFrame with arbitrary bytes (it must never
// panic, and must reject anything violating the framing bounds) and, when
// the input does decode, checks the re-encode/re-decode round trip is
// exact — the decoder and encoder must agree on one canonical wire form.
func FuzzSyscallFrame(f *testing.F) {
	seeds := []Frame{
		{Desc: Desc{SysOpen, GranBlock, OrderStrong, CallBlocking}, Lane: 1, Seq: 1, Path: "/seed"},
		{Desc: Desc{SysRead, GranWarp, OrderRelaxed, CallNonBlocking}, Lane: -2, Seq: 99, Args: []uint64{4, 0, 1 << 18}},
		{Desc: Desc{SysPipeWrite, GranBlock, OrderStrong, CallBlocking}, Seq: 3, Args: []uint64{7}, Data: []byte("payload")},
		{Desc: Desc{SysReaddir, GranBlock, OrderStrong, CallBlocking}, Seq: 5, Args: []uint64{0, 16}, Path: "/d"},
	}
	for i := range seeds {
		f.Add(seeds[i].Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x47, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, wire []byte) {
		fr, err := DecodeFrame(wire)
		if err != nil {
			return
		}
		again := fr.Encode()
		if !bytes.Equal(again, wire) {
			t.Fatalf("re-encode diverged:\n in %x\nout %x", wire, again)
		}
		fr2, err := DecodeFrame(again)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if fr2.Desc != fr.Desc || fr2.Lane != fr.Lane || fr2.Seq != fr.Seq || fr2.Path != fr.Path ||
			len(fr2.Args) != len(fr.Args) || !bytes.Equal(fr2.Data, fr.Data) {
			t.Fatalf("round trip changed frame: %+v vs %+v", fr, fr2)
		}
	})
}
