package gsys

import (
	"fmt"

	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
)

// The host side of the syscall subsystem: a table of registered handlers
// indexed by Sysno, replacing the protocol layer's hard-coded typed
// operations. A handler runs on a daemon worker's clock with the decoded
// request frame and the call's out-of-band device buffers, and returns
// the completion time of any asynchronous DMA it started. The file-op
// handler bodies mirror the rpc protocol layer's exactly — same staging
// copies, same link charges, same host-fs calls on the same clocks — so
// routing the existing file API through the table is timing-identical.
// Both layers consult the server's ZeroCopyRead flag the same way, so the
// zero-copy read path (pread into pinned frames, ChargePinned) stays
// mirrored too.

// Reply carries a syscall's typed results back to the issuing client.
// Result scalars ride the response slot; bulk data never does (it is
// DMA'd straight to the device buffers referenced by the call).
type Reply struct {
	FD      int64
	Info    hostfs.FileInfo
	N       int
	Ns      []int
	Valid   bool
	Dirents []hostfs.FileInfo
	Next    int64
	EOF     bool
	// WaitAt is a would-block hint: the virtual time at which the
	// blocking condition was last known to clear (pipe space freed).
	WaitAt simtime.Time
}

// call is one in-flight syscall: the client view that issued it, the
// frame as decoded from the wire, the out-of-band device buffers, and the
// reply under construction.
type call struct {
	cli   *Client
	fr    *Frame
	dst   []byte   // read destination (device memory)
	dsts  [][]byte // vectored read destinations
	src   []byte   // write source (device memory)
	reply Reply
}

// handlerFunc is one syscall-table entry.
type handlerFunc func(s *Service, c *call, cclk *simtime.Clock) (simtime.Time, error)

// Service is the host-side syscall service shared by every GPU of a
// system: the syscall table plus subsystem state that is not per-file
// (the pipe table). It layers over the rpc daemon, which keeps the
// descriptor table, worker pool, and consistency layer.
type Service struct {
	srv   *rpc.Server
	table [numSysno]handlerFunc
	pipes pipeTable
}

// NewService builds the syscall table over the given rpc daemon.
func NewService(srv *rpc.Server) *Service {
	s := &Service{srv: srv}
	s.pipes.init()
	s.table = [numSysno]handlerFunc{
		SysOpen:      (*Service).sysOpen,
		SysClose:     (*Service).sysClose,
		SysRead:      (*Service).sysRead,
		SysReadVec:   (*Service).sysReadVec,
		SysWrite:     (*Service).sysWrite,
		SysTruncate:  (*Service).sysTruncate,
		SysUnlink:    (*Service).sysUnlink,
		SysStat:      (*Service).sysStat,
		SysFsync:     (*Service).sysFsync,
		SysValidate:  (*Service).sysValidate,
		SysReaddir:   (*Service).sysReaddir,
		SysPipeOpen:  (*Service).sysPipeOpen,
		SysPipeRead:  (*Service).sysPipeRead,
		SysPipeWrite: (*Service).sysPipeWrite,
		SysPipeClose: (*Service).sysPipeClose,
	}
	return s
}

// Server returns the rpc daemon under the syscall table.
func (s *Service) Server() *rpc.Server { return s.srv }

// dispatch routes a decoded frame to its table entry.
func (s *Service) dispatch(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	h := s.table[c.fr.Desc.Sysno]
	if h == nil {
		return 0, fmt.Errorf("gsys: no handler registered for %v", c.fr.Desc.Sysno)
	}
	return h(s, c, cclk)
}

func (s *Service) sysOpen(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.Layer().FS().Open(cclk, c.fr.Path, int(c.fr.Args[0]), hostfs.Mode(c.fr.Args[1]))
	if err != nil {
		return 0, err
	}
	fi, err := f.Fstat(cclk)
	if err != nil {
		f.Close()
		return 0, err
	}
	c.reply.FD, c.reply.Info = s.srv.AllocFD(f), fi
	return 0, nil
}

func (s *Service) sysClose(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f := s.srv.ReleaseFD(int64(c.fr.Args[0]))
	if f == nil {
		return 0, fmt.Errorf("gsys: unknown host fd %d", int64(c.fr.Args[0]))
	}
	return 0, f.Close()
}

func (s *Service) sysRead(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	if s.srv.ZeroCopyRead() {
		// Zero-copy (ISSUE 8): the daemon preads straight into the pinned
		// page frame the GPU supplied, so the DMA charge skips the staging
		// pass on the host memory bus.
		n, err := c.cli.rpc.ReadFull(cclk, f, c.dst, int64(c.fr.Args[1]))
		if err != nil {
			return 0, err
		}
		c.reply.N = n
		return c.cli.rpc.Link().ChargePinned(cclk.Now(), pcie.HostToDevice, int64(n)), nil
	}
	staging := make([]byte, len(c.dst)) // pinned staging buffer
	n, err := c.cli.rpc.ReadFull(cclk, f, staging, int64(c.fr.Args[1]))
	if err != nil {
		return 0, err
	}
	copy(c.dst[:n], staging[:n])
	c.reply.N = n
	return c.cli.rpc.Link().Charge(cclk.Now(), pcie.HostToDevice, int64(n)), nil
}

func (s *Service) sysReadVec(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	total := 0
	for _, d := range c.dsts {
		total += len(d)
	}
	staging := make([]byte, total)
	n, err := c.cli.rpc.ReadFull(cclk, f, staging, int64(c.fr.Args[1]))
	if err != nil {
		return 0, err
	}
	ns := make([]int, len(c.dsts))
	got := 0
	for i, d := range c.dsts {
		take := n - got
		if take > len(d) {
			take = len(d)
		}
		if take < 0 {
			take = 0
		}
		copy(d[:take], staging[got:got+take])
		ns[i] = take
		got += take
	}
	c.reply.Ns = ns
	if s.srv.ZeroCopyRead() {
		// Zero-copy: the host read is a preadv over an iovec of pinned
		// frames (the staging slice above is only this simulation's
		// scattering mechanism, not a modelled copy), so the vectored DMA
		// skips the staging pass.
		return c.cli.rpc.Link().ChargeScatterPinned(cclk.Now(), pcie.HostToDevice, int64(n), len(c.dsts)), nil
	}
	return c.cli.rpc.Link().ChargeScatter(cclk.Now(), pcie.HostToDevice, int64(n), len(c.dsts)), nil
}

func (s *Service) sysWrite(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	staging := make([]byte, len(c.src))
	copy(staging, c.src)
	done := c.cli.rpc.Link().Charge(cclk.Now(), pcie.DeviceToHost, int64(len(c.src)))
	cclk.AdvanceTo(done)
	n, err := f.Pwrite(cclk, staging, int64(c.fr.Args[1]))
	c.reply.N = n
	return 0, err
}

func (s *Service) sysTruncate(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	return 0, f.Ftruncate(cclk, int64(c.fr.Args[1]))
}

func (s *Service) sysUnlink(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	return 0, s.srv.Layer().FS().Unlink(c.fr.Path)
}

func (s *Service) sysStat(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	fi, err := f.Fstat(cclk)
	c.reply.Info = fi
	return 0, err
}

func (s *Service) sysFsync(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	f, err := s.srv.FileByFD(int64(c.fr.Args[0]))
	if err != nil {
		return 0, err
	}
	return 0, f.Fsync(cclk)
}

func (s *Service) sysValidate(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	c.reply.Valid = s.srv.Layer().Validate(c.cli.rpc.GPUID(), int64(c.fr.Args[0]), int64(c.fr.Args[1]))
	return 0, nil
}

// direntWireBytes is the marshaled size of one directory entry in the
// response stream: the fixed scalar fields plus the name.
func direntWireBytes(fi *hostfs.FileInfo) int64 { return 48 + int64(len(fi.Name)) }

func (s *Service) sysReaddir(c *call, cclk *simtime.Clock) (simtime.Time, error) {
	infos, err := s.srv.Layer().FS().ReadDir(c.fr.Path)
	if err != nil {
		return 0, err
	}
	cookie, max := int64(c.fr.Args[0]), int(c.fr.Args[1])
	if cookie < 0 || cookie > int64(len(infos)) {
		return 0, fmt.Errorf("gsys: readdir cookie %d out of range [0,%d]", cookie, len(infos))
	}
	window := infos[cookie:]
	if max > 0 && len(window) > max {
		window = window[:max]
	}
	c.reply.Dirents = window
	c.reply.Next = cookie + int64(len(window))
	if c.reply.Next >= int64(len(infos)) {
		c.reply.Next = -1 // enumeration complete
	}
	var total int64
	for i := range window {
		total += direntWireBytes(&window[i])
	}
	if total == 0 {
		return 0, nil
	}
	return c.cli.rpc.Link().Charge(cclk.Now(), pcie.HostToDevice, total), nil
}
