// Package gsys is the generic GPU system-call subsystem (ROADMAP item 3,
// after "GPU System Calls", Veselý et al.). It generalizes the file-only
// RPC protocol of internal/rpc into an arbitrary syscall surface: every
// call carries a typed descriptor — operation, issue granularity (thread,
// warp, or block), ordering class (strong or relaxed), and blocking mode —
// and is framed into a wire format before a host-side handler registered
// in a syscall table executes it on a daemon worker's clock.
//
// The split of responsibilities with internal/rpc is deliberate: rpc keeps
// the transport (sharded rings, retry/timeout/dedup, completion queue) and
// the timing model; gsys owns the call semantics. Strong-ordered calls are
// routed through a per-lane FIFO fence — each strong call on a lane is
// ordered after the previous strong call's completion — while relaxed
// calls ride the out-of-order completion queue unfenced and are joined
// explicitly (Future.Wait or Client.Fence). The strong-ordered path is
// bit-identical in virtual time to the pre-gsys protocol: the fence is
// structurally idle for the collective block-granularity API (a blocking
// call already occupies its lane until completion), so strong ordering
// costs nothing, and relaxation is where the new semantics show up.
package gsys

import "fmt"

// Sysno identifies a system call in the generic syscall table.
type Sysno uint8

// System calls. The first ten subsume the file operations the rpc
// protocol layer exposed; the rest are new surface (ISSUE 7).
const (
	SysOpen Sysno = iota
	SysClose
	SysRead
	SysReadVec
	SysWrite
	SysTruncate
	SysUnlink
	SysStat
	SysFsync
	SysValidate
	SysReaddir
	SysPipeOpen
	SysPipeRead
	SysPipeWrite
	SysPipeClose
	numSysno
)

// knownSysno is the compile-time drift guard companion of numSysno:
// adding a Sysno without extending String() (and this constant) fails the
// array-length assignment below instead of rendering as "sys(15)" at
// runtime.
const knownSysno = 15

var _ [knownSysno]struct{} = [numSysno]struct{}{}

// String names the system call. The switch is exhaustive over the enum;
// the drift guard above forces an update when a Sysno is added.
func (s Sysno) String() string {
	switch s {
	case SysOpen:
		return "gopen"
	case SysClose:
		return "gclose"
	case SysRead:
		return "gread"
	case SysReadVec:
		return "gread_vec"
	case SysWrite:
		return "gwrite"
	case SysTruncate:
		return "gtruncate"
	case SysUnlink:
		return "gunlink"
	case SysStat:
		return "gstat"
	case SysFsync:
		return "gfsync"
	case SysValidate:
		return "gvalidate"
	case SysReaddir:
		return "greaddir"
	case SysPipeOpen:
		return "gpipe_open"
	case SysPipeRead:
		return "gpipe_read"
	case SysPipeWrite:
		return "gpipe_write"
	case SysPipeClose:
		return "gpipe_close"
	}
	return fmt.Sprintf("sys(%d)", uint8(s))
}

// Granularity is the issue granularity of a call: how many data-parallel
// threads collaborated to issue this one descriptor. The warp-level
// parallelism literature motivates warp as the natural unit for divergent
// I/O; GPUfs's own API is block-collective.
type Granularity uint8

// Issue granularities.
const (
	GranThread Granularity = iota
	GranWarp
	GranBlock
	numGran
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case GranThread:
		return "thread"
	case GranWarp:
		return "warp"
	case GranBlock:
		return "block"
	}
	return fmt.Sprintf("gran(%d)", uint8(g))
}

// ParseGranularity parses a granularity knob string as used by the cmd
// flags ("thread", "warp", "block").
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "thread":
		return GranThread, nil
	case "warp":
		return GranWarp, nil
	case "block":
		return GranBlock, nil
	}
	return 0, fmt.Errorf("unknown granularity %q (want thread, warp, or block)", s)
}

// Ordering is the memory-ordering class of a call with respect to other
// calls on the same lane.
type Ordering uint8

// Ordering classes.
const (
	// OrderStrong calls are FIFO-fenced per lane: a strong call is
	// ordered after every earlier strong call on its lane has completed.
	OrderStrong Ordering = iota
	// OrderRelaxed calls bypass the lane fence: they complete out of
	// order on the completion queue and are joined explicitly.
	OrderRelaxed
	numOrdering
)

// String names the ordering class.
func (o Ordering) String() string {
	switch o {
	case OrderStrong:
		return "strong"
	case OrderRelaxed:
		return "relaxed"
	}
	return fmt.Sprintf("ordering(%d)", uint8(o))
}

// ParseOrdering parses an ordering knob string as used by the cmd flags
// and params.Config.SyscallOrdering ("strong", "relaxed"; "" defaults to
// strong).
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "", "strong":
		return OrderStrong, nil
	case "relaxed":
		return OrderRelaxed, nil
	}
	return 0, fmt.Errorf("unknown ordering %q (want strong or relaxed)", s)
}

// Blocking is the completion-wait mode of a call.
type Blocking uint8

// Blocking modes.
const (
	// CallBlocking calls advance the issuing block's clock to the call's
	// completion before returning.
	CallBlocking Blocking = iota
	// CallNonBlocking calls leave the block's clock untouched; the
	// completion time is reported through a Future (or discarded for
	// detached speculation such as prefetch).
	CallNonBlocking
	numBlocking
)

// String names the blocking mode.
func (b Blocking) String() string {
	switch b {
	case CallBlocking:
		return "blocking"
	case CallNonBlocking:
		return "nonblocking"
	}
	return fmt.Sprintf("blocking(%d)", uint8(b))
}

// Desc is the typed syscall descriptor every call carries on the wire.
type Desc struct {
	Sysno Sysno
	Gran  Granularity
	Order Ordering
	Block Blocking
}

// Valid reports whether every enum field is in range (used by frame
// decoding to reject corrupt descriptors).
func (d Desc) Valid() bool {
	return d.Sysno < numSysno && d.Gran < numGran && d.Order < numOrdering && d.Block < numBlocking
}

// String renders the descriptor for traces and errors.
func (d Desc) String() string {
	return fmt.Sprintf("%v/%v/%v/%v", d.Sysno, d.Gran, d.Order, d.Block)
}
