package gsys

import (
	"errors"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"gpufs/internal/hostfs"
	"gpufs/internal/metrics"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
)

// The GPU side of the syscall subsystem: the dispatcher. Every call is
// framed (descriptor + scalars + path + inline payload), encoded to the
// wire form, and submitted on the issuing lane's ring shard; the daemon
// decodes the frame and dispatches through the syscall table.
//
// Ordering classes route differently:
//
//   - OrderStrong calls go through the per-lane FIFO fence: each strong
//     call on a lane is ordered after the previous strong call's
//     completion. For the block-collective API the fence is structurally
//     satisfied — a blocking call already holds its lane's clock until
//     completion, so the fence never stalls and the strong path's virtual
//     timing is bit-identical to the pre-gsys protocol. A lane clock that
//     jumps backwards (a harness timing reset) restarts the fence.
//   - OrderRelaxed calls bypass the fence and ride the out-of-order
//     completion queue: the block's clock is untouched, results are
//     available through a Future, and the caller joins explicitly with
//     Future.Wait or Client.Fence. Detached speculation (prefetch) is
//     relaxed traffic that is intentionally never joined.

// rpcOp maps a syscall to the ring-transport op it rides, keeping the
// daemon's per-op accounting identical for the subsumed file operations
// (SysRead and SysReadVec are both "read" transactions, as before).
func rpcOp(s Sysno) rpc.Op {
	switch s {
	case SysOpen:
		return rpc.OpOpen
	case SysClose:
		return rpc.OpClose
	case SysRead, SysReadVec:
		return rpc.OpReadPages
	case SysWrite:
		return rpc.OpWritePages
	case SysTruncate:
		return rpc.OpTruncate
	case SysUnlink:
		return rpc.OpUnlink
	case SysStat:
		return rpc.OpStat
	case SysFsync:
		return rpc.OpFsync
	case SysValidate:
		return rpc.OpValidate
	case SysReaddir:
		return rpc.OpReaddir
	case SysPipeOpen:
		return rpc.OpPipeOpen
	case SysPipeRead:
		return rpc.OpPipeRead
	case SysPipeWrite:
		return rpc.OpPipeWrite
	case SysPipeClose:
		return rpc.OpPipeClose
	}
	panic("gsys: no transport op for " + s.String())
}

// laneState is the dispatcher's per-lane ordering state.
type laneState struct {
	// fence is the completion time of the lane's last strong call; the
	// next strong call is ordered after it.
	fence simtime.Time
	// pending are the lane's un-joined relaxed futures.
	pending []*Future
}

// clientRoot is the state shared by every Bind/Gran view of one GPU's
// syscall client.
type clientRoot struct {
	seq atomic.Uint64

	mu    sync.Mutex
	lanes map[int]*laneState

	// latency holds per-op per-ordering-class issue-to-completion
	// histograms; the array stays nil without a metrics registry.
	latency [numSysno][numOrdering]*metrics.Histogram
	strong  atomic.Int64
	relaxed atomic.Int64
}

// Future is the join handle of a relaxed call. The handler has already
// run when the Future is returned — results are available immediately in
// real time — but the call completes at Done() in virtual time, and Wait
// advances the joining block's clock there.
type Future struct {
	call *call
	done simtime.Time
	err  error
}

// Done reports the call's virtual completion time.
func (f *Future) Done() simtime.Time { return f.done }

// Err reports the call's error without joining.
func (f *Future) Err() error { return f.err }

// Reply exposes the call's typed results; valid once issued (relaxed
// handlers run inline in real time).
func (f *Future) Reply() *Reply { return &f.call.reply }

// Wait joins the call: the block's clock advances to the completion time
// and the call's error is returned.
func (f *Future) Wait(blk *simtime.Clock) error {
	if f.err == nil && blk.Now() < f.done {
		blk.AdvanceTo(f.done)
	}
	return f.err
}

// Client is one GPU's syscall endpoint: a thin dispatcher over the GPU's
// rpc ring transport. Like rpc.Client, Bind (and Gran) derive cheap
// views; views share the root's sequence space and lane table.
type Client struct {
	svc  *Service
	rpc  *rpc.Client
	root *clientRoot
	gran Granularity
	lane int
}

// NewClient creates the syscall endpoint for one GPU over its rpc
// endpoint.
func NewClient(svc *Service, rc *rpc.Client) *Client {
	c := &Client{svc: svc, rpc: rc, root: &clientRoot{lanes: make(map[int]*laneState)}, gran: GranBlock}
	if reg := svc.srv.Metrics(); reg != nil {
		gpu := strconv.Itoa(rc.GPUID())
		reg.SetHelp(sysLatencyMetric,
			"Virtual issue-to-completion syscall latency per op and ordering class")
		for sys := Sysno(0); sys < numSysno; sys++ {
			for ord := Ordering(0); ord < numOrdering; ord++ {
				c.root.latency[sys][ord] = reg.DurationHistogram(sysLatencyMetric,
					"gpu", gpu, "op", sys.String(), "ordering", ord.String())
			}
		}
	}
	return c
}

const sysLatencyMetric = "gpufs_sys_latency_seconds"

// Bind returns a view of the client whose calls ride the ring shard that
// lane hashes to, with per-lane ordering state.
func (c *Client) Bind(lane int) *Client {
	view := *c
	view.lane = lane
	view.rpc = c.rpc.Bind(lane)
	return &view
}

// Gran returns a view whose descriptors carry the given issue
// granularity.
func (c *Client) Gran(g Granularity) *Client {
	if g == c.gran {
		return c
	}
	view := *c
	view.gran = g
	return &view
}

// RPC returns the underlying transport endpoint of this view.
func (c *Client) RPC() *rpc.Client { return c.rpc }

// Service returns the host syscall service.
func (c *Client) Service() *Service { return c.svc }

// StrongCalls and RelaxedCalls report how many calls each ordering class
// has dispatched on this GPU.
func (c *Client) StrongCalls() int64  { return c.root.strong.Load() }
func (c *Client) RelaxedCalls() int64 { return c.root.relaxed.Load() }

func (c *Client) laneState() *laneState {
	c.root.mu.Lock()
	st := c.root.lanes[c.lane]
	if st == nil {
		st = &laneState{}
		c.root.lanes[c.lane] = st
	}
	c.root.mu.Unlock()
	return st
}

func (c *Client) observe(sys Sysno, ord Ordering, start, end simtime.Time) {
	if h := c.root.latency[sys][ord]; h != nil {
		h.ObserveSpan(start, end)
	}
}

// frame builds and encodes the wire frame of one call.
func (c *Client) frame(d Desc, args []uint64, path string, data []byte) []byte {
	return (&Frame{
		Desc: d, Lane: int32(c.lane), Seq: c.root.seq.Add(1),
		Args: args, Path: path, Data: data,
	}).Encode()
}

// handlerFor wraps a call for the ring transport: the daemon side decodes
// the wire frame (a retry decodes again — the frame is immutable) and
// dispatches through the syscall table.
func (c *Client) handlerFor(wire []byte, cl *call) rpc.Handler {
	return func(cclk *simtime.Clock) (simtime.Time, error) {
		fr, err := DecodeFrame(wire)
		if err != nil {
			return 0, err
		}
		cl.fr = fr
		return c.svc.dispatch(cl, cclk)
	}
}

// do dispatches one strong-ordered blocking call through the lane fence.
func (c *Client) do(blk *simtime.Clock, sys Sysno, args []uint64, path string, data []byte, cl *call) error {
	cl.cli = c
	d := Desc{Sysno: sys, Gran: c.gran, Order: OrderStrong, Block: CallBlocking}
	wire := c.frame(d, args, path, data)
	st := c.laneState()
	c.root.mu.Lock()
	if blk.Now() < st.fence {
		// The lane's clock restarted (timing reset between runs): a new
		// ordering epoch. Within one epoch a strong call is issued from
		// the lane's own clock, which the previous strong call already
		// advanced past the fence, so the fence never stalls the lane.
		st.fence = 0
	}
	c.root.mu.Unlock()
	c.root.strong.Add(1)
	sent := blk.Now()
	err := c.rpc.Do(blk, rpcOp(sys), c.handlerFor(wire, cl))
	c.root.mu.Lock()
	if blk.Now() > st.fence {
		st.fence = blk.Now()
	}
	c.root.mu.Unlock()
	c.observe(sys, OrderStrong, sent, blk.Now())
	return err
}

// doRelaxed dispatches one relaxed non-blocking call past the fence: the
// block's clock is untouched and the returned Future joins it. Detached
// calls (speculation with no waiter) skip the lane's pending set.
func (c *Client) doRelaxed(blk *simtime.Clock, sys Sysno, args []uint64, path string, data []byte, cl *call, detached bool) *Future {
	cl.cli = c
	d := Desc{Sysno: sys, Gran: c.gran, Order: OrderRelaxed, Block: CallNonBlocking}
	wire := c.frame(d, args, path, data)
	c.root.relaxed.Add(1)
	sent := blk.Now()
	done, err := c.rpc.DoAsync(blk, rpcOp(sys), c.handlerFor(wire, cl))
	fut := &Future{call: cl, done: done, err: err}
	if err == nil {
		c.observe(sys, OrderRelaxed, sent, done)
	}
	if !detached {
		st := c.laneState()
		c.root.mu.Lock()
		st.pending = append(st.pending, fut)
		c.root.mu.Unlock()
	}
	return fut
}

// Fence joins every un-joined relaxed call on this view's lane: the
// block's clock advances past all their completions. The first error is
// returned (all futures are still drained).
func (c *Client) Fence(blk *simtime.Clock) error {
	st := c.laneState()
	c.root.mu.Lock()
	pending := st.pending
	st.pending = nil
	c.root.mu.Unlock()
	var firstErr error
	for _, f := range pending {
		if err := f.Wait(blk); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- The file syscalls (subsuming the rpc protocol layer's typed ops) ---

// Open opens the host file, returning a daemon descriptor handle and the
// file's metadata.
func (c *Client) Open(blk *simtime.Clock, path string, flags int, mode hostfs.Mode) (int64, hostfs.FileInfo, error) {
	cl := &call{}
	if err := c.do(blk, SysOpen, []uint64{uint64(flags), uint64(mode)}, path, nil, cl); err != nil {
		return -1, hostfs.FileInfo{}, err
	}
	return cl.reply.FD, cl.reply.Info, nil
}

// OpenRelaxed is the relaxed non-blocking open behind open-ahead: the
// handler runs immediately in real time (the handle and metadata are
// valid on return) while the block's clock is untouched; the returned
// Future completes at the open's virtual completion. Never retried; on a
// transient fault the caller falls back to a strong Open.
func (c *Client) OpenRelaxed(blk *simtime.Clock, path string, flags int, mode hostfs.Mode) *Future {
	cl := &call{}
	return c.doRelaxed(blk, SysOpen, []uint64{uint64(flags), uint64(mode)}, path, nil, cl, true)
}

// Close closes a daemon descriptor handle.
func (c *Client) Close(blk *simtime.Clock, fd int64) error {
	return c.do(blk, SysClose, []uint64{uint64(fd)}, "", nil, &call{})
}

// ReadPages reads len(dst) bytes from the host file at off and DMAs them
// into the device memory slice dst.
func (c *Client) ReadPages(blk *simtime.Clock, fd, off int64, dst []byte) (int, error) {
	cl := &call{dst: dst}
	if err := c.do(blk, SysRead, []uint64{uint64(fd), uint64(off)}, "", nil, cl); err != nil {
		return 0, err
	}
	return cl.reply.N, nil
}

// ReadPagesRelaxed is ReadPages as a joinable relaxed call: issued past
// the fence, joined via the Future (or a lane Fence).
func (c *Client) ReadPagesRelaxed(blk *simtime.Clock, fd, off int64, dst []byte) *Future {
	cl := &call{dst: dst}
	return c.doRelaxed(blk, SysRead, []uint64{uint64(fd), uint64(off)}, "", nil, cl, false)
}

// ReadPagesAsync is detached relaxed speculation (prefetch): the block
// does not wait and nobody joins; the returned time says when the page
// becomes usable. Never retried.
func (c *Client) ReadPagesAsync(blk *simtime.Clock, fd, off int64, dst []byte) (int, simtime.Time, error) {
	cl := &call{dst: dst}
	fut := c.doRelaxed(blk, SysRead, []uint64{uint64(fd), uint64(off)}, "", nil, cl, true)
	if fut.err != nil {
		return 0, 0, fut.err
	}
	return cl.reply.N, fut.done, nil
}

// ReadPagesVecAsync is detached relaxed speculation over several
// CONTIGUOUS pages: one ring transaction, one host read, one scattered
// DMA whose completion every page shares.
func (c *Client) ReadPagesVecAsync(blk *simtime.Clock, fd, off int64, dsts [][]byte) ([]int, simtime.Time, error) {
	cl := &call{dsts: dsts}
	fut := c.doRelaxed(blk, SysReadVec, []uint64{uint64(fd), uint64(off)}, "", nil, cl, true)
	if fut.err != nil {
		return nil, 0, fut.err
	}
	return cl.reply.Ns, fut.done, nil
}

// WritePages DMAs len(src) bytes out of device memory and writes them to
// the host file at off.
func (c *Client) WritePages(blk *simtime.Clock, fd, off int64, src []byte) (int, error) {
	cl := &call{src: src}
	if err := c.do(blk, SysWrite, []uint64{uint64(fd), uint64(off)}, "", nil, cl); err != nil {
		return 0, err
	}
	return cl.reply.N, nil
}

// Truncate truncates the host file behind fd.
func (c *Client) Truncate(blk *simtime.Clock, fd, size int64) error {
	return c.do(blk, SysTruncate, []uint64{uint64(fd), uint64(size)}, "", nil, &call{})
}

// Unlink removes the file at path on the host.
func (c *Client) Unlink(blk *simtime.Clock, path string) error {
	return c.do(blk, SysUnlink, nil, path, nil, &call{})
}

// Stat returns host metadata for fd.
func (c *Client) Stat(blk *simtime.Clock, fd int64) (hostfs.FileInfo, error) {
	cl := &call{}
	if err := c.do(blk, SysStat, []uint64{uint64(fd)}, "", nil, cl); err != nil {
		return hostfs.FileInfo{}, err
	}
	return cl.reply.Info, nil
}

// Fsync forces the host file to stable storage.
func (c *Client) Fsync(blk *simtime.Clock, fd int64) error {
	return c.do(blk, SysFsync, []uint64{uint64(fd)}, "", nil, &call{})
}

// Validate asks the consistency layer whether the GPU's cached copy of
// ino at generation gen is still current. A call that fails (retry budget
// exhausted under faults) reports "not valid" — the conservative answer.
func (c *Client) Validate(blk *simtime.Clock, ino, gen int64) bool {
	cl := &call{}
	err := c.do(blk, SysValidate, []uint64{uint64(ino), uint64(gen)}, "", nil, cl)
	return err == nil && cl.reply.Valid
}

// The consistency-metadata operations below are not ring syscalls (they
// ride write-shared memory or piggyback on other traffic, as in the rpc
// layer) and delegate unchanged.

// PeekValid checks a cached generation through write-shared memory — a
// single PCIe read, no daemon involvement.
func (c *Client) PeekValid(blk *simtime.Clock, ino, gen int64) bool {
	return c.rpc.PeekValid(blk, ino, gen)
}

// RecordCached registers this GPU as caching ino at generation gen.
func (c *Client) RecordCached(ino, gen int64) { c.rpc.RecordCached(ino, gen) }

// Forget drops the consistency layer's record of this GPU caching ino.
func (c *Client) Forget(ino int64) { c.rpc.Forget(ino) }

// BeginWrite registers this GPU as a writer of ino.
func (c *Client) BeginWrite(ino int64, multiWriter bool) error {
	return c.rpc.BeginWrite(ino, multiWriter)
}

// EndWrite releases the writer registration.
func (c *Client) EndWrite(ino int64) { c.rpc.EndWrite(ino) }

// --- The new syscall surface ---

// Readdir enumerates one page of directory entries starting at cookie
// (0 for the first call), returning up to max entries and the next
// cookie (-1 when the enumeration is complete).
func (c *Client) Readdir(blk *simtime.Clock, path string, cookie int64, max int) ([]hostfs.FileInfo, int64, error) {
	cl := &call{}
	if err := c.do(blk, SysReaddir, []uint64{uint64(cookie), uint64(max)}, path, nil, cl); err != nil {
		return nil, 0, err
	}
	return cl.reply.Dirents, cl.reply.Next, nil
}

// PipeOpen opens (creating on first open) the named pipe with the given
// buffer capacity and declared writer count, returning its handle. Every
// opener must declare the same capacity and writer count.
func (c *Client) PipeOpen(blk *simtime.Clock, name string, mode PipeMode, capBytes, writers int) (int64, error) {
	cl := &call{}
	err := c.do(blk, SysPipeOpen, []uint64{uint64(mode), uint64(capBytes), uint64(writers)}, name, nil, cl)
	if err != nil {
		return -1, err
	}
	return cl.reply.FD, nil
}

// PipeWrite writes data as one atomic record, blocking (on virtual time)
// while the pipe lacks room for the whole record.
func (c *Client) PipeWrite(blk *simtime.Clock, pd int64, data []byte) (int, error) {
	for {
		cl := &call{}
		err := c.do(blk, SysPipeWrite, []uint64{uint64(pd)}, "", data, cl)
		if err == nil {
			return cl.reply.N, nil
		}
		if !errors.Is(err, ErrPipeFull) {
			return 0, err
		}
		// Would block: wait in real time for space, advance to the
		// virtual time it freed, and poll again with a fresh request.
		p, perr := c.svc.pipes.get(pd)
		if perr != nil {
			return 0, perr
		}
		if wakeAt := p.waitWritable(len(data)); blk.Now() < wakeAt {
			blk.AdvanceTo(wakeAt)
		}
	}
}

// PipeRead reads up to len(dst) buffered bytes, blocking (on virtual
// time) while the pipe is empty with live writers. At end of stream —
// declared writers all closed, buffer drained — it returns io.EOF.
func (c *Client) PipeRead(blk *simtime.Clock, pd int64, dst []byte) (int, error) {
	for {
		cl := &call{dst: dst}
		err := c.do(blk, SysPipeRead, []uint64{uint64(pd)}, "", nil, cl)
		if err == nil {
			if cl.reply.EOF {
				return 0, io.EOF
			}
			return cl.reply.N, nil
		}
		if !errors.Is(err, ErrPipeEmpty) {
			return 0, err
		}
		p, perr := c.svc.pipes.get(pd)
		if perr != nil {
			return 0, perr
		}
		if wakeAt := p.waitReadable(); blk.Now() < wakeAt {
			blk.AdvanceTo(wakeAt)
		}
	}
}

// PipeClose closes one end of the pipe. Closing the last declared writer
// end releases readers into EOF once the buffer drains.
func (c *Client) PipeClose(blk *simtime.Clock, pd int64, mode PipeMode) error {
	return c.do(blk, SysPipeClose, []uint64{uint64(pd), uint64(mode)}, "", nil, &call{})
}
