package gsys

import (
	"fmt"
	"sort"
	"sync"

	"gpufs/internal/ckpt"
)

// Checkpointing the pipe table (ISSUE 10). Pipes are host-memory state,
// so unlike the buffer cache they need no copy-on-write: each pipe is
// exported atomically under its own lock. The migration contract for a
// pipe is "survive intact or break with a clean EPIPE, never lose or
// duplicate a record":
//
//   - A pipe whose declared writers have ALL closed is self-contained —
//     its buffered records plus the EOF mark are its entire future — so
//     it migrates intact and the restored reader drains it to EOF.
//   - A pipe with live writers at capture cannot be reconstructed: the
//     writers' unwritten tails die with the source host. Restoring its
//     buffered prefix would deliver a silently truncated stream, so the
//     image marks it broken and the restored end observes EPIPE before
//     any data — the declared-writer protocol's loud failure arm.
//   - A pipe whose reader already closed has no future at all; it is not
//     exported.

// ckptSeveredMsg is the broken mark stamped on live-writer pipes.
const ckptSeveredMsg = "checkpoint severed live writer"

// ExportPipes captures the pipe table into image form.
func (s *Service) ExportPipes() []ckpt.PipeImage {
	s.pipes.mu.Lock()
	names := make([]string, 0, len(s.pipes.byName))
	for name := range s.pipes.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	pipes := make([]*pipe, len(names))
	for i, name := range names {
		pipes[i] = s.pipes.byName[name]
	}
	s.pipes.mu.Unlock()

	var out []ckpt.PipeImage
	for _, p := range pipes {
		p.mu.Lock()
		if p.readerClosed {
			p.mu.Unlock()
			continue
		}
		img := ckpt.PipeImage{
			Name:            p.name,
			Cap:             int64(p.cap),
			WritersDeclared: int64(p.writersDeclared),
			WritersAttached: int64(p.writersAttached),
			WritersClosed:   int64(p.writersClosed),
			BytesIn:         p.bytesIn,
			BytesOut:        p.bytesOut,
		}
		switch {
		case p.broken != nil:
			img.Broken = p.broken.Error()
		case p.writersClosed < p.writersDeclared:
			img.Broken = ckptSeveredMsg
		default:
			for _, ch := range p.chunks {
				img.Chunks = append(img.Chunks, append([]byte(nil), ch.data...))
			}
		}
		p.mu.Unlock()
		out = append(out, img)
	}
	return out
}

// RestorePipes materializes exported pipes into this (fresh) service's
// table. Buffered chunks become available at virtual time zero on the
// new host's timeline — their producers' DMAs completed on the source.
// A name that already exists locally is left untouched.
func (s *Service) RestorePipes(imgs []ckpt.PipeImage) {
	for i := range imgs {
		img := &imgs[i]
		p := &pipe{
			name:            img.Name,
			cap:             int(img.Cap),
			writersDeclared: int(img.WritersDeclared),
			writersAttached: int(img.WritersAttached),
			writersClosed:   int(img.WritersClosed),
			bytesIn:         img.BytesIn,
			bytesOut:        img.BytesOut,
		}
		p.cond = sync.NewCond(&p.mu)
		if img.Broken != "" {
			p.broken = fmt.Errorf("%w: %s", ErrPipeBroken, img.Broken)
		}
		for _, c := range img.Chunks {
			data := append([]byte(nil), c...)
			p.chunks = append(p.chunks, pipeChunk{data: data})
			p.buffered += len(data)
		}

		s.pipes.mu.Lock()
		if _, exists := s.pipes.byName[img.Name]; !exists {
			id := s.pipes.nextID
			s.pipes.nextID++
			s.pipes.byName[img.Name] = p
			s.pipes.byID[id] = p
		}
		s.pipes.mu.Unlock()
	}
}
