package gsys

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire framing. A request frame is what a threadblock (or warp)
// writes into its ring slot in write-shared host memory: a fixed header
// carrying the descriptor, lane, and sequence number, followed by a small
// scalar-argument vector, an optional path, and an optional inline data
// payload (gpipe writes ride the frame; bulk page data never does — the
// host DMAs it directly to and from device pointers, as in the paper).
//
// Layout (little-endian):
//
//	magic   u16  frameMagic
//	version u8   frameVersion
//	sysno   u8
//	flags   u8   bits 0-1 granularity, bit 2 ordering, bit 3 blocking
//	argc    u8   <= MaxFrameArgs
//	lane    i32
//	seq     u64
//	args    argc × u64
//	pathLen u16  <= MaxFramePath, then path bytes
//	dataLen u32  <= MaxFrameData, then data bytes

const (
	frameMagic   = 0x4753 // "GS"
	frameVersion = 1

	// MaxFrameArgs bounds the scalar-argument vector.
	MaxFrameArgs = 16
	// MaxFramePath bounds the path length (PATH_MAX-ish).
	MaxFramePath = 4096
	// MaxFrameData bounds the inline data payload (gpipe records).
	MaxFrameData = 1 << 26

	frameHeaderLen = 2 + 1 + 1 + 1 + 1 + 4 + 8
)

// ErrBadFrame is wrapped by every frame-decoding failure.
var ErrBadFrame = errors.New("gsys: malformed syscall frame")

// Frame is one syscall request as it crosses the ring.
type Frame struct {
	Desc Desc
	Lane int32
	Seq  uint64
	Args []uint64
	Path string
	Data []byte
}

func (d Desc) packFlags() uint8 {
	return uint8(d.Gran) | uint8(d.Order)<<2 | uint8(d.Block)<<3
}

func unpackFlags(b uint8) (Desc, error) {
	d := Desc{
		Gran:  Granularity(b & 3),
		Order: Ordering(b >> 2 & 1),
		Block: Blocking(b >> 3 & 1),
	}
	if b>>4 != 0 {
		return d, fmt.Errorf("%w: reserved flag bits %#x set", ErrBadFrame, b)
	}
	return d, nil
}

// Encode marshals the frame into the wire format. It panics if the frame
// violates the framing bounds — those are caller bugs, not wire faults.
func (fr *Frame) Encode() []byte {
	if !fr.Desc.Valid() {
		panic(fmt.Sprintf("gsys: encoding invalid descriptor %+v", fr.Desc))
	}
	if len(fr.Args) > MaxFrameArgs {
		panic(fmt.Sprintf("gsys: %d frame args exceeds %d", len(fr.Args), MaxFrameArgs))
	}
	if len(fr.Path) > MaxFramePath {
		panic(fmt.Sprintf("gsys: %d-byte path exceeds %d", len(fr.Path), MaxFramePath))
	}
	if len(fr.Data) > MaxFrameData {
		panic(fmt.Sprintf("gsys: %d-byte payload exceeds %d", len(fr.Data), MaxFrameData))
	}
	buf := make([]byte, 0, frameHeaderLen+8*len(fr.Args)+2+len(fr.Path)+4+len(fr.Data))
	buf = binary.LittleEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, frameVersion, uint8(fr.Desc.Sysno), fr.Desc.packFlags(), uint8(len(fr.Args)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(fr.Lane))
	buf = binary.LittleEndian.AppendUint64(buf, fr.Seq)
	for _, a := range fr.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fr.Path)))
	buf = append(buf, fr.Path...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fr.Data)))
	buf = append(buf, fr.Data...)
	return buf
}

// DecodeFrame unmarshals a wire frame, validating magic, version, enum
// ranges, bounds, and exact length. The Data slice aliases wire.
func DecodeFrame(wire []byte) (*Frame, error) {
	if len(wire) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadFrame, len(wire), frameHeaderLen)
	}
	if m := binary.LittleEndian.Uint16(wire); m != frameMagic {
		return nil, fmt.Errorf("%w: magic %#04x, want %#04x", ErrBadFrame, m, frameMagic)
	}
	if v := wire[2]; v != frameVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, v, frameVersion)
	}
	fr := &Frame{}
	var err error
	fr.Desc, err = unpackFlags(wire[4])
	if err != nil {
		return nil, err
	}
	fr.Desc.Sysno = Sysno(wire[3])
	if !fr.Desc.Valid() {
		return nil, fmt.Errorf("%w: descriptor %+v out of range", ErrBadFrame, fr.Desc)
	}
	argc := int(wire[5])
	if argc > MaxFrameArgs {
		return nil, fmt.Errorf("%w: argc %d exceeds %d", ErrBadFrame, argc, MaxFrameArgs)
	}
	fr.Lane = int32(binary.LittleEndian.Uint32(wire[6:]))
	fr.Seq = binary.LittleEndian.Uint64(wire[10:])
	p := frameHeaderLen
	if len(wire) < p+8*argc+2 {
		return nil, fmt.Errorf("%w: truncated arg vector", ErrBadFrame)
	}
	if argc > 0 {
		fr.Args = make([]uint64, argc)
		for i := range fr.Args {
			fr.Args[i] = binary.LittleEndian.Uint64(wire[p:])
			p += 8
		}
	}
	pathLen := int(binary.LittleEndian.Uint16(wire[p:]))
	p += 2
	if pathLen > MaxFramePath {
		return nil, fmt.Errorf("%w: path length %d exceeds %d", ErrBadFrame, pathLen, MaxFramePath)
	}
	if len(wire) < p+pathLen+4 {
		return nil, fmt.Errorf("%w: truncated path", ErrBadFrame)
	}
	fr.Path = string(wire[p : p+pathLen])
	p += pathLen
	dataLen := int(binary.LittleEndian.Uint32(wire[p:]))
	p += 4
	if dataLen > MaxFrameData {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, dataLen, MaxFrameData)
	}
	if len(wire) != p+dataLen {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(wire)-p-dataLen)
	}
	if dataLen > 0 {
		fr.Data = wire[p : p+dataLen]
	}
	return fr, nil
}
