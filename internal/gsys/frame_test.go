package gsys

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Desc: Desc{SysOpen, GranBlock, OrderStrong, CallBlocking}, Lane: 0, Seq: 1, Path: "/a/b"},
		{Desc: Desc{SysRead, GranBlock, OrderStrong, CallBlocking}, Lane: 17, Seq: 42, Args: []uint64{3, 1 << 40, 262144}},
		{Desc: Desc{SysRead, GranWarp, OrderRelaxed, CallNonBlocking}, Lane: -9, Seq: 7, Args: []uint64{1, 2, 3, 4}},
		{Desc: Desc{SysPipeWrite, GranBlock, OrderStrong, CallBlocking}, Lane: 3, Seq: 9,
			Args: []uint64{12}, Data: []byte("hello, pipe")},
		{Desc: Desc{SysReaddir, GranBlock, OrderStrong, CallBlocking}, Lane: 1, Seq: 2,
			Args: []uint64{0, 64}, Path: "/dir"},
		{Desc: Desc{SysPipeClose, GranThread, OrderRelaxed, CallNonBlocking}, Lane: 1 << 20, Seq: 1<<64 - 1},
	}
	for i, in := range frames {
		wire := in.Encode()
		out, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if out.Desc != in.Desc || out.Lane != in.Lane || out.Seq != in.Seq || out.Path != in.Path {
			t.Fatalf("frame %d: got %+v, want %+v", i, out, in)
		}
		if len(out.Args) != len(in.Args) {
			t.Fatalf("frame %d: %d args back, want %d", i, len(out.Args), len(in.Args))
		}
		for j := range in.Args {
			if out.Args[j] != in.Args[j] {
				t.Fatalf("frame %d arg %d: %d, want %d", i, j, out.Args[j], in.Args[j])
			}
		}
		if !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("frame %d: data %q, want %q", i, out.Data, in.Data)
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	good := (&Frame{Desc: Desc{SysStat, GranBlock, OrderStrong, CallBlocking}, Args: []uint64{5}}).Encode()
	cases := []struct {
		name string
		wire []byte
	}{
		{"empty", nil},
		{"short header", good[:8]},
		{"bad magic", append([]byte{0xff, 0xff}, good[2:]...)},
		{"bad version", mutate(good, 2, 9)},
		{"bad sysno", mutate(good, 3, uint8(numSysno))},
		{"reserved flags", mutate(good, 4, 0xf0)},
		{"bad gran", mutate(good, 4, 3)},
		{"argc over limit", mutate(good, 5, MaxFrameArgs+1)},
		{"truncated args", good[:len(good)-10]},
		{"trailing garbage", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.wire); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

func TestDescStringsAndParsers(t *testing.T) {
	for s := Sysno(0); s < numSysno; s++ {
		if name := s.String(); name == "" || strings.HasPrefix(name, "sys(") {
			t.Errorf("Sysno %d has no name", s)
		}
	}
	for _, tc := range []struct {
		in   string
		want Ordering
		ok   bool
	}{{"", OrderStrong, true}, {"strong", OrderStrong, true}, {"relaxed", OrderRelaxed, true}, {"Strong", 0, false}, {"weak", 0, false}} {
		got, err := ParseOrdering(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseOrdering(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, tc := range []struct {
		in   string
		want Granularity
		ok   bool
	}{{"thread", GranThread, true}, {"warp", GranWarp, true}, {"block", GranBlock, true}, {"", 0, false}, {"wavefront", 0, false}} {
		got, err := ParseGranularity(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseGranularity(%q) = %v, %v", tc.in, got, err)
		}
	}
}
