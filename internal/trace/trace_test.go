package trace

import (
	"strings"
	"sync"
	"testing"

	"gpufs/internal/simtime"
)

func TestDisabledTracerIsFree(t *testing.T) {
	tr := New(8)
	tr.Record(Event{Op: OpRead})
	if len(tr.Snapshot()) != 0 {
		t.Fatalf("disabled tracer recorded")
	}
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatalf("nil tracer must report disabled")
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	tr := New(16)
	tr.Enable(true)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Op: OpRead, Offset: int64(i)})
	}
	evs := tr.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("events: %d", len(evs))
	}
	for i, e := range evs {
		if e.Offset != int64(i) || e.Seq != uint64(i+1) {
			t.Fatalf("ordering broken at %d: %+v", i, e)
		}
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	tr := New(4)
	tr.Enable(true)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Offset: int64(i)})
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d", len(evs))
	}
	if evs[0].Offset != 6 || evs[3].Offset != 9 {
		t.Fatalf("wrong survivors: %+v", evs)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestSummaryAggregation(t *testing.T) {
	tr := New(16)
	tr.Enable(true)
	tr.Record(Event{Op: OpRead, Bytes: 100, Start: 0, End: 10})
	tr.Record(Event{Op: OpRead, Bytes: 50, Start: 5, End: 25, Err: "boom"})
	tr.Record(Event{Op: OpWrite, Bytes: 10, Start: 0, End: 5})

	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("ops: %d", len(sum))
	}
	if sum[0].Op != OpRead || sum[0].Count != 2 || sum[0].Bytes != 150 ||
		sum[0].Total != 30 || sum[0].Errors != 1 {
		t.Fatalf("read aggregate: %+v", sum[0])
	}
	out := tr.FormatSummary()
	if !strings.Contains(out, "gread") || !strings.Contains(out, "gwrite") {
		t.Fatalf("summary rendering: %q", out)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		GPU: 1, Block: 2, Op: OpRead, Path: "/f",
		Offset: 64, Bytes: 128,
		Start: simtime.Time(simtime.Millisecond), End: simtime.Time(2 * simtime.Millisecond),
		Err: "nope",
	}
	s := e.String()
	for _, want := range []string{"gpu1", "gread", "/f", "off=64", "n=128", "ERR=nope"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string missing %q: %q", want, s)
		}
	}
	if e.Duration() != simtime.Millisecond {
		t.Fatalf("duration")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1 << 12)
	tr.Enable(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(Event{GPU: g, Op: OpWrite})
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 1600 {
		t.Fatalf("events: %d", got)
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestOpString(t *testing.T) {
	if OpOpen.String() != "gopen" || OpEvict.String() != "evict" {
		t.Fatalf("op names")
	}
	if Op(200).String() == "" {
		t.Fatalf("unknown op string")
	}
}
