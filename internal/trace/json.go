package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: WriteJSON renders the retained events in the
// Trace Event Format understood by chrome://tracing and Perfetto, so GPUfs
// timelines — kernels, RPC retries, injected faults, and the serving
// layer's enqueue/batch/dispatch spans — can be inspected visually.
//
// Mapping: one trace "process" per GPU (host-side events, which carry
// GPU == -1, appear under a "host" process), one "thread" per threadblock,
// timestamps and durations in microseconds of virtual time. Events with a
// zero-length span (faults, enqueues) become instant events.

// jsonEvent is one Chrome trace_event record.
type jsonEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// jsonDoc is the JSON Object Format variant of the trace file, which
// Perfetto and chrome://tracing both accept and which leaves room for
// metadata.
type jsonDoc struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// pid maps a GPU index to a trace process id. Chrome disallows negative
// pids, so the host pseudo-process (GPU == -1) maps to 0 and device i to
// i+1.
func pid(gpu int) int {
	if gpu < 0 {
		return 0
	}
	return gpu + 1
}

// shardTIDBase offsets RPC-lane thread ids above any plausible threadblock
// index, so per-shard lanes render as dedicated threads per process
// without colliding with block timelines.
const shardTIDBase = 1 << 10

// tid maps an event to a trace thread id: shard-stamped events (RPC
// retries, shard-attributed faults) land on a per-shard lane; everything
// else stays on its threadblock's timeline.
func tid(e Event) int {
	if e.Shard > 0 {
		return shardTIDBase + e.Shard - 1
	}
	return e.Block
}

// WriteJSON writes the retained events as Chrome trace_event JSON. The
// snapshot is taken once; concurrent recording continues unaffected.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Snapshot()
	doc := jsonDoc{DisplayTimeUnit: "ms", TraceEvents: make([]jsonEvent, 0, len(events)+8)}

	// Process-name metadata rows so the viewer labels timelines usefully.
	seen := make(map[int]bool)
	name := func(gpu int) string {
		if gpu < 0 {
			return "host"
		}
		return fmt.Sprintf("gpu%d", gpu)
	}
	for _, e := range events {
		if seen[e.GPU] {
			continue
		}
		seen[e.GPU] = true
		doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
			Name:  "process_name",
			Cat:   "__metadata",
			Phase: "M",
			PID:   pid(e.GPU),
			Args:  map[string]any{"name": name(e.GPU)},
		})
	}

	// Thread-name metadata for RPC shard lanes, one per (process, shard)
	// that actually carries events.
	seenShard := make(map[[2]int]bool)
	for _, e := range events {
		if e.Shard <= 0 {
			continue
		}
		key := [2]int{e.GPU, e.Shard}
		if seenShard[key] {
			continue
		}
		seenShard[key] = true
		doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
			Name:  "thread_name",
			Cat:   "__metadata",
			Phase: "M",
			PID:   pid(e.GPU),
			TID:   tid(e),
			Args:  map[string]any{"name": fmt.Sprintf("rpc-shard-%d", e.Shard-1)},
		})
	}

	for _, e := range events {
		je := jsonEvent{
			Name: e.Op.String(),
			Cat:  "gpufs",
			TS:   e.Start.Seconds() * 1e6,
			PID:  pid(e.GPU),
			TID:  tid(e),
			Args: map[string]any{"seq": e.Seq},
		}
		if e.Shard > 0 {
			je.Args["shard"] = e.Shard - 1
		}
		if e.Path != "" {
			je.Args["path"] = e.Path
		}
		if e.Bytes > 0 {
			je.Args["offset"] = e.Offset
			je.Args["bytes"] = e.Bytes
		}
		if e.Err != "" {
			je.Args["err"] = e.Err
		}
		if d := e.Duration(); d > 0 {
			je.Phase = "X"
			dur := d.Seconds() * 1e6
			je.Dur = &dur
		} else {
			je.Phase = "i"
			je.Scope = "t" // thread-scoped instant
		}
		doc.TraceEvents = append(doc.TraceEvents, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
