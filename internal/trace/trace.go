// Package trace records GPUfs API operations with their virtual-time
// spans, for debugging kernels and for understanding where a workload's
// time goes (RPC round trips versus buffer-cache hits versus paging).
//
// Tracing is off by default and costs one atomic load per operation when
// disabled. Enabled tracers keep a bounded in-memory ring of events;
// overflow drops the oldest events and counts them, so a runaway kernel
// cannot exhaust memory.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gpufs/internal/simtime"
)

// Op identifies a traced GPUfs call.
type Op uint8

// Traced operations.
const (
	OpOpen Op = iota
	OpClose
	OpRead
	OpWrite
	OpFsync
	OpMmap
	OpMunmap
	OpMsync
	OpUnlink
	OpFstat
	OpFtruncate
	OpEvict
	// OpFault marks an injected fault (internal/faults); Path names the
	// injection site.
	OpFault
	// OpRetry marks an RPC retry attempt after a timeout or transient
	// failure; Path names the retried operation.
	OpRetry
	// OpEnqueue marks a serving-layer job admission (internal/serve);
	// Path names the job's input file and GPU the routed device.
	OpEnqueue
	// OpBatch marks a serving-layer batch assembly; Bytes carries the
	// number of jobs coalesced into the batch.
	OpBatch
	// OpDispatch marks a serving-layer kernel dispatch: the span covers
	// the batched launch from start to completion.
	OpDispatch
	// OpPrefetch marks a speculative read issue (adaptive or greedy
	// read-ahead, ISSUE 4); Bytes is the coalesced extent of the issue.
	OpPrefetch
	// OpPrefetchWaste marks speculative pages reclaimed before any demand
	// access consumed them; Bytes is the wasted extent.
	OpPrefetchWaste
	// OpClean marks one background-cleaner pass (Block is negative: the
	// cleaner runs on its own lane, not a threadblock); Bytes is the
	// extent written back or pre-evicted.
	OpClean
	// OpReaddir marks one greaddir page (generic syscall surface,
	// ISSUE 7); Bytes is the number of entries returned.
	OpReaddir
	// OpReadWarp marks one gpread_warp call; Bytes is the total extent
	// read across the warp's coalesced descriptors.
	OpReadWarp
	// The gpipe operations: Path names the pipe; Bytes the record size.
	OpPipeOpen
	OpPipeRead
	OpPipeWrite
	OpPipeClose
	numOps
)

// knownOps is the compile-time drift guard companion of numOps: adding an
// Op without extending String() below (and this constant) fails the
// array-length assignment instead of rendering as "Op(26)" at runtime.
const knownOps = 26

var _ [knownOps]struct{} = [numOps]struct{}{}

// String names the operation as the paper does (gopen, gread, ...). The
// switch is exhaustive over the enum; the drift guard above forces an
// update when an Op is added.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "gopen"
	case OpClose:
		return "gclose"
	case OpRead:
		return "gread"
	case OpWrite:
		return "gwrite"
	case OpFsync:
		return "gfsync"
	case OpMmap:
		return "gmmap"
	case OpMunmap:
		return "gmunmap"
	case OpMsync:
		return "gmsync"
	case OpUnlink:
		return "gunlink"
	case OpFstat:
		return "gfstat"
	case OpFtruncate:
		return "gftruncate"
	case OpEvict:
		return "evict"
	case OpFault:
		return "fault"
	case OpRetry:
		return "retry"
	case OpEnqueue:
		return "enqueue"
	case OpBatch:
		return "batch"
	case OpDispatch:
		return "dispatch"
	case OpPrefetch:
		return "prefetch"
	case OpPrefetchWaste:
		return "prefetch-waste"
	case OpClean:
		return "clean"
	case OpReaddir:
		return "greaddir"
	case OpReadWarp:
		return "gread_warp"
	case OpPipeOpen:
		return "gpipe_open"
	case OpPipeRead:
		return "gpipe_read"
	case OpPipeWrite:
		return "gpipe_write"
	case OpPipeClose:
		return "gpipe_close"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Event is one traced operation.
type Event struct {
	// Seq is the event's global sequence number.
	Seq uint64
	// GPU and Block locate the caller.
	GPU, Block int
	// Shard is the RPC ring shard the event belongs to, 1-based; zero
	// means the event is not tied to a ring lane. Trace exports render
	// shard-stamped events on dedicated per-shard threads.
	Shard int
	// Op is the operation.
	Op Op
	// Path is the file operated on (empty for ops without one).
	Path string
	// Offset and Bytes describe the data range, where applicable.
	Offset int64
	Bytes  int64
	// Start and End are the operation's virtual-time span.
	Start, End simtime.Time
	// Err is the error message, if the operation failed.
	Err string
}

// Duration is the event's virtual span.
func (e Event) Duration() simtime.Duration { return e.End.Sub(e.Start) }

// String renders the event in one line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fms gpu%d/b%-3d %-10s %s", e.Start.Seconds()*1e3,
		e.GPU, e.Block, e.Op, e.Path)
	if e.Bytes > 0 {
		s += fmt.Sprintf(" off=%d n=%d", e.Offset, e.Bytes)
	}
	s += fmt.Sprintf(" (%v)", e.Duration())
	if e.Err != "" {
		s += " ERR=" + e.Err
	}
	return s
}

// Tracer is a bounded event recorder, safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	dropped uint64
}

// New creates a tracer holding up to capacity events.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Enable turns recording on or off.
func (t *Tracer) Enable(on bool) { t.enabled.Store(on) }

// Enabled reports whether recording is on. Callers use it to skip event
// construction entirely on the fast path.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Record appends an event (assigning its sequence number) if enabled.
func (t *Tracer) Record(e Event) {
	if !t.Enabled() {
		return
	}
	e.Seq = t.seq.Add(1)
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % cap(t.ring)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Dropped reports how many events were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the retained events in sequence order.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if !t.wrapped {
		out = append(out[:0], t.ring...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears the ring.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.wrapped = false
	t.dropped = 0
	t.mu.Unlock()
}

// OpStats summarizes one operation type.
type OpStats struct {
	Op    Op
	Count int
	// Bytes is the total data volume.
	Bytes int64
	// Total is the summed virtual time.
	Total simtime.Duration
	// Errors counts failed calls.
	Errors int
}

// Summary aggregates the retained events per operation, ordered by total
// virtual time descending.
func (t *Tracer) Summary() []OpStats {
	agg := make(map[Op]*OpStats)
	for _, e := range t.Snapshot() {
		st, ok := agg[e.Op]
		if !ok {
			st = &OpStats{Op: e.Op}
			agg[e.Op] = st
		}
		st.Count++
		st.Bytes += e.Bytes
		st.Total += e.Duration()
		if e.Err != "" {
			st.Errors++
		}
	}
	out := make([]OpStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// FormatSummary renders the per-op aggregate as an aligned table.
func (t *Tracer) FormatSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %14s %7s\n", "op", "count", "bytes", "virtual time", "errors")
	for _, st := range t.Summary() {
		fmt.Fprintf(&b, "%-12s %8d %12d %14s %7d\n",
			st.Op, st.Count, st.Bytes, st.Total, st.Errors)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d events dropped from the ring)\n", d)
	}
	return b.String()
}
