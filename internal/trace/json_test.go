package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpufs/internal/simtime"
)

func TestWriteJSONShape(t *testing.T) {
	tr := New(16)
	tr.Enable(true)
	tr.Record(Event{
		GPU: 0, Block: 3, Op: OpRead, Path: "/f", Offset: 4096, Bytes: 128,
		Start: simtime.Time(simtime.Millisecond), End: simtime.Time(3 * simtime.Millisecond),
	})
	tr.Record(Event{GPU: -1, Op: OpFault, Path: "disk-stall", Start: 10, End: 10})
	tr.Record(Event{GPU: 1, Block: 0, Op: OpDispatch, Path: "batch-7",
		Bytes: 16, Start: 0, End: simtime.Time(simtime.Microsecond)})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var meta, complete, instant int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if e["dur"] == nil {
				t.Fatalf("complete event without dur: %v", e)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase: %v", e)
		}
	}
	// Three distinct pids (host, gpu0, gpu1) -> three metadata rows.
	if meta != 3 {
		t.Fatalf("metadata rows = %d, want 3", meta)
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("complete=%d instant=%d, want 2/1", complete, instant)
	}

	// The gread event: ts 1000us, dur 2000us, pid 1 (gpu0), tid 3.
	for _, e := range doc.TraceEvents {
		if e["name"] == "gread" {
			if e["ts"].(float64) != 1000 || e["dur"].(float64) != 2000 {
				t.Fatalf("gread timing: %v", e)
			}
			if e["pid"].(float64) != 1 || e["tid"].(float64) != 3 {
				t.Fatalf("gread identity: %v", e)
			}
			args := e["args"].(map[string]any)
			if args["path"] != "/f" || args["bytes"].(float64) != 128 {
				t.Fatalf("gread args: %v", args)
			}
		}
		if e["name"] == "fault" && e["pid"].(float64) != 0 {
			t.Fatalf("host event pid: %v", e)
		}
	}

	if !strings.Contains(buf.String(), `"displayTimeUnit":"ms"`) {
		t.Fatalf("missing displayTimeUnit: %s", buf.String())
	}
}

func TestServeOpNames(t *testing.T) {
	if OpEnqueue.String() != "enqueue" || OpBatch.String() != "batch" || OpDispatch.String() != "dispatch" {
		t.Fatalf("serve op names: %v %v %v", OpEnqueue, OpBatch, OpDispatch)
	}
}

func TestWriteJSONShardLanes(t *testing.T) {
	// Ring-lane events (Shard > 0) land on their own thread rows, offset
	// well above any block id, with a named "rpc-shard-N" lane and the
	// zero-based shard recorded in args.
	tr := New(16)
	tr.Enable(true)
	tr.Record(Event{GPU: 0, Block: 5, Shard: 2, Op: OpRetry, Path: "read",
		Start: 10, End: 20})
	tr.Record(Event{GPU: 0, Block: 5, Op: OpRead, Path: "/f", Bytes: 64,
		Start: 30, End: 40})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var sawLaneName, sawRetry, sawRead bool
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			if args["name"] == "rpc-shard-1" {
				sawLaneName = true
				if tid := e["tid"].(float64); tid != float64(shardTIDBase+1) {
					t.Fatalf("shard lane tid = %v, want %d", tid, shardTIDBase+1)
				}
			}
		}
		switch e["name"] {
		case "retry":
			sawRetry = true
			if tid := e["tid"].(float64); tid != float64(shardTIDBase+1) {
				t.Fatalf("retry event tid = %v, want shard lane %d", tid, shardTIDBase+1)
			}
			if shard := e["args"].(map[string]any)["shard"].(float64); shard != 1 {
				t.Fatalf("retry args shard = %v, want 1", shard)
			}
		case "gread":
			sawRead = true
			if tid := e["tid"].(float64); tid != 5 {
				t.Fatalf("block event tid = %v, want 5", tid)
			}
		}
	}
	if !sawLaneName || !sawRetry || !sawRead {
		t.Fatalf("missing events: laneName=%v retry=%v read=%v", sawLaneName, sawRetry, sawRead)
	}
}
