// Package pcie models the peripheral interconnect between the host CPU and
// the discrete GPUs: a PCIe 2.0 link per device with full-duplex DMA,
// multiple asynchronous channels per direction (§4.3), a fixed
// per-transaction setup latency, and — critically for the paper's RPC
// design — no atomic operations across the bus, which is why GPU–CPU
// coordination must go through message-passing queues rather than one-sided
// locking.
//
// DMA transfers move real bytes immediately and account virtual time on
// three resources: the link direction's channel pool (PCIe bandwidth), the
// host memory bus (the staging copy through pinned host memory), and the
// device memory bandwidth. Sharing the host memory bus with the file
// system's page-cache copies reproduces the measured gap between raw PCIe
// bandwidth (5731 MB/s) and achieved file-to-GPU throughput (~3100 MB/s).
package pcie

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"gpufs/internal/faults"
	"gpufs/internal/metrics"
	"gpufs/internal/simtime"
)

// Config parameterizes the bus.
type Config struct {
	// Bandwidth is the per-direction PCIe bandwidth.
	Bandwidth simtime.Rate
	// DMALatency is the fixed per-transaction setup cost.
	DMALatency simtime.Duration
	// Channels is the number of concurrent DMA channels per direction.
	Channels int
	// HostMemBandwidth is the host DRAM bandwidth used for the staging
	// pass through pinned memory.
	HostMemBandwidth simtime.Rate
}

// Bus is the host-side interconnect complex. One Link is created per GPU.
type Bus struct {
	cfg     Config
	membus  *simtime.Resource
	exclude atomic.Bool
	links   []*Link
	met     *metrics.Registry

	// inj injects DMA stalls and bandwidth degradation; nil means none.
	inj atomic.Pointer[faults.Injector]
}

// SetFaultInjector installs (or, with nil, removes) the bus's fault
// injector; it governs every link.
func (b *Bus) SetFaultInjector(inj *faults.Injector) { b.inj.Store(inj) }

// SetMetrics attaches a metrics registry to the bus. It must be called
// before NewLink: each link resolves its instrument handles at creation.
// A nil registry (the default) keeps every hook at a single pointer test.
func (b *Bus) SetMetrics(reg *metrics.Registry) { b.met = reg }

// New creates a bus whose staging copies contend on the given host memory
// bus resource (shared with hostfs page-cache copies). membus may be nil,
// in which case staging contention is not modelled.
func New(cfg Config, membus *simtime.Resource) *Bus {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	return &Bus{cfg: cfg, membus: membus}
}

// SetExcludeDMA toggles the Figure 5 cost-exclusion mode: when set, DMA
// transfers still move data but cost zero virtual time.
func (b *Bus) SetExcludeDMA(on bool) { b.exclude.Store(on) }

// NewLink attaches a device and returns its point-to-point link. devMemBW
// is the device's memory-bandwidth resource and devRate its bandwidth
// (transfers land in device memory); devMemBW may be nil to skip that pass.
func (b *Bus) NewLink(deviceID int, devMemBW *simtime.Resource, devRate simtime.Rate) *Link {
	l := &Link{
		bus:     b,
		id:      deviceID,
		h2d:     simtime.NewPool(fmt.Sprintf("pcie%d-h2d", deviceID), b.cfg.Channels),
		d2h:     simtime.NewPool(fmt.Sprintf("pcie%d-d2h", deviceID), b.cfg.Channels),
		devbw:   devMemBW,
		devRate: devRate,
	}
	if reg := b.met; reg != nil {
		gpu := strconv.Itoa(deviceID)
		m := &linkMetrics{scatterSegs: reg.Counter("gpufs_pcie_scatter_segments_total", "gpu", gpu)}
		reg.SetHelp("gpufs_pcie_bytes_total", "Bytes moved over the PCIe link per direction")
		reg.SetHelp("gpufs_pcie_dma_total", "DMA transactions charged on the link")
		reg.SetHelp("gpufs_pcie_latency_seconds", "Virtual end-to-end DMA transaction latency per direction")
		reg.SetHelp("gpufs_pcie_scatter_segments_total", "Scatter-gather descriptors walked by vectored DMAs")
		for dir, ctr := range map[string]*atomic.Int64{"H2D": &l.bytesH2D, "D2H": &l.bytesD2H} {
			ctr := ctr
			reg.CounterFunc("gpufs_pcie_bytes_total", ctr.Load, "gpu", gpu, "dir", dir)
		}
		reg.CounterFunc("gpufs_pcie_dma_total", l.dmas.Load, "gpu", gpu)
		m.lat[HostToDevice] = reg.DurationHistogram("gpufs_pcie_latency_seconds", "gpu", gpu, "dir", "H2D")
		m.lat[DeviceToHost] = reg.DurationHistogram("gpufs_pcie_latency_seconds", "gpu", gpu, "dir", "D2H")
		l.met = m
	}
	b.links = append(b.links, l)
	return l
}

// linkMetrics holds a link's pre-resolved instrument handles; nil when
// metrics are disabled.
type linkMetrics struct {
	lat         [2]*metrics.Histogram
	scatterSegs *metrics.Counter
}

// Link is the PCIe connection of one GPU.
type Link struct {
	bus     *Bus
	id      int
	h2d     *simtime.Pool
	d2h     *simtime.Pool
	devbw   *simtime.Resource
	devRate simtime.Rate

	bytesH2D atomic.Int64
	bytesD2H atomic.Int64
	dmas     atomic.Int64

	met *linkMetrics
}

// Direction of a transfer.
type Direction int

// Transfer directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
)

// String renders the transfer direction (H2D or D2H).
func (dir Direction) String() string {
	if dir == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Copy performs a DMA of len(src) bytes (dst must be at least as long),
// starting no earlier than now, and returns the transfer's virtual
// completion time. The bytes are copied for real. Concurrent transfers in
// the same direction queue on the link's channel pool.
func (l *Link) Copy(now simtime.Time, dir Direction, dst, src []byte) (simtime.Time, error) {
	if len(dst) < len(src) {
		return now, fmt.Errorf("pcie: dst %d bytes < src %d bytes", len(dst), len(src))
	}
	copy(dst, src)
	return l.Charge(now, dir, int64(len(src))), nil
}

// ChargeScatter accounts a DMA of n bytes scattered across segs separate
// destination buffers: one transaction, plus a per-descriptor surcharge
// (an eighth of the transaction setup latency per extra segment) for the
// additional scatter-gather entries the engine walks. Coalesced multi-page
// read-ahead uses this so a vectored transfer amortizes — but does not
// erase — the per-page transfer cost that separates Figure 4's page sizes.
func (l *Link) ChargeScatter(now simtime.Time, dir Direction, n int64, segs int) simtime.Time {
	return l.Charge(l.scatterSetup(now, segs), dir, n)
}

// ChargeScatterPinned is ChargeScatter for zero-copy transfers (see
// ChargePinned): the staging pass through host DRAM is skipped.
func (l *Link) ChargeScatterPinned(now simtime.Time, dir Direction, n int64, segs int) simtime.Time {
	return l.ChargePinned(l.scatterSetup(now, segs), dir, n)
}

// scatterSetup accounts the scatter-gather descriptor surcharge shared by
// both scatter variants.
func (l *Link) scatterSetup(now simtime.Time, segs int) simtime.Time {
	if m := l.met; m != nil {
		m.scatterSegs.Add(int64(segs))
	}
	if segs > 1 && !l.bus.exclude.Load() {
		now = now.Add(l.bus.cfg.DMALatency / 8 * simtime.Duration(segs-1))
	}
	return now
}

// Charge accounts a DMA of n bytes without moving data (for transfers whose
// payload is modelled elsewhere) and returns the completion time.
func (l *Link) Charge(now simtime.Time, dir Direction, n int64) simtime.Time {
	return l.charge(now, dir, n, false)
}

// ChargePinned accounts a DMA whose payload the daemon read or wrote
// DIRECTLY in pinned host memory (the zero-copy read path): the hostfs
// pread's own memory-bus pass already covered the landing copy, so the
// extra staging pass through host DRAM is skipped. The channel-pool,
// PCIe-bandwidth, and device-memory costs are identical to Charge.
func (l *Link) ChargePinned(now simtime.Time, dir Direction, n int64) simtime.Time {
	return l.charge(now, dir, n, true)
}

func (l *Link) charge(now simtime.Time, dir Direction, n int64, pinned bool) simtime.Time {
	if n < 0 {
		n = 0
	}
	reqStart := now
	l.dmas.Add(1)
	if dir == HostToDevice {
		l.bytesH2D.Add(n)
	} else {
		l.bytesD2H.Add(n)
	}
	if l.bus.exclude.Load() {
		if m := l.met; m != nil {
			m.lat[dir].ObserveSpan(reqStart, now)
		}
		return now
	}

	inj := l.bus.inj.Load()
	if inj.Should(faults.DMAStall, now) {
		// The DMA engine stalls before starting the transfer (descriptor
		// fetch delay, engine contention).
		now = now.Add(inj.Delay(faults.DMAStall))
	}

	// Staging pass through pinned host memory (skipped when the payload
	// was produced in pinned memory to begin with).
	start := now
	if l.bus.membus != nil && !pinned {
		_, start = l.bus.membus.Acquire(now, simtime.TransferTime(n, l.bus.cfg.HostMemBandwidth))
	}
	// Bus transfer.
	bw := l.bus.cfg.Bandwidth
	if inj.Should(faults.DMADegrade, start) {
		// Link retraining / replay storms degrade effective bandwidth for
		// this transfer.
		bw = simtime.Rate(float64(bw) * inj.DegradeFactor())
		if bw < 1 {
			bw = 1
		}
	}
	cost := l.bus.cfg.DMALatency + simtime.TransferTime(n, bw)
	var end simtime.Time
	if dir == HostToDevice {
		_, end = l.h2d.Acquire(start, cost)
	} else {
		_, end = l.d2h.Acquire(start, cost)
	}
	// Device memory pass (cheap relative to PCIe, but contends with
	// kernel memory traffic).
	if l.devbw != nil && l.devRate > 0 {
		_, end = l.devbw.Acquire(end, simtime.TransferTime(n, l.devRate))
	}
	if m := l.met; m != nil {
		m.lat[dir].ObserveSpan(reqStart, end)
	}
	return end
}

// Stats reports cumulative transfer counts.
func (l *Link) Stats() (h2d, d2h, transfers int64) {
	return l.bytesH2D.Load(), l.bytesD2H.Load(), l.dmas.Load()
}

// Reset clears the link's timelines and counters.
func (l *Link) Reset() {
	l.h2d.Reset()
	l.d2h.Reset()
	l.bytesH2D.Store(0)
	l.bytesD2H.Store(0)
	l.dmas.Store(0)
}
