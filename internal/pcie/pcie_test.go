package pcie

import (
	"bytes"
	"testing"

	"gpufs/internal/simtime"
)

func testBus(membus *simtime.Resource) *Bus {
	return New(Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, membus)
}

func TestCopyMovesBytes(t *testing.T) {
	l := testBus(nil).NewLink(0, nil, 0)
	src := []byte("dma payload")
	dst := make([]byte, len(src))
	done, err := l.Copy(0, HostToDevice, dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("payload not copied")
	}
	if done <= 0 {
		t.Fatalf("transfer should cost time")
	}
	if len(dst) > 0 {
		if _, err := l.Copy(0, HostToDevice, dst[:1], src); err == nil {
			t.Fatalf("short destination must fail")
		}
	}
}

func TestChargeAccounting(t *testing.T) {
	l := testBus(nil).NewLink(0, nil, 0)
	l.Charge(0, HostToDevice, 1<<20)
	l.Charge(0, DeviceToHost, 2<<20)
	h2d, d2h, dmas := l.Stats()
	if h2d != 1<<20 || d2h != 2<<20 || dmas != 2 {
		t.Fatalf("stats: %d %d %d", h2d, d2h, dmas)
	}
	l.Reset()
	if h2d, _, _ := l.Stats(); h2d != 0 {
		t.Fatalf("reset failed")
	}
}

func TestFullDuplex(t *testing.T) {
	l := testBus(nil).NewLink(0, nil, 0)
	e1 := l.Charge(0, HostToDevice, 64<<20)
	e2 := l.Charge(0, DeviceToHost, 64<<20)
	// Opposite directions overlap (independent pools): both finish at
	// roughly the same virtual instant.
	diff := int64(e1) - int64(e2)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(simtime.Millisecond) {
		t.Fatalf("duplex transfers should overlap: %v vs %v", e1, e2)
	}
}

func TestChannelsParallelize(t *testing.T) {
	l := testBus(nil).NewLink(0, nil, 0)
	const n = 1 << 20
	single := l.Charge(0, HostToDevice, n)
	l.Reset()
	// Four transfers at t=0 ride the four channels in parallel.
	var last simtime.Time
	for i := 0; i < 4; i++ {
		if e := l.Charge(0, HostToDevice, n); e > last {
			last = e
		}
	}
	if last > single+simtime.Time(simtime.Millisecond) {
		t.Fatalf("4 transfers on 4 channels took %v, single took %v", last, single)
	}
}

func TestExcludeDMA(t *testing.T) {
	b := testBus(nil)
	l := b.NewLink(0, nil, 0)
	b.SetExcludeDMA(true)
	src := []byte("still moves data")
	dst := make([]byte, len(src))
	done, err := l.Copy(100, HostToDevice, dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if done != 100 {
		t.Fatalf("excluded DMA should be free: %v", done)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("excluded DMA must still move real bytes")
	}
	b.SetExcludeDMA(false)
	if done := l.Charge(0, HostToDevice, 1<<20); done == 0 {
		t.Fatalf("after re-enable, DMA should cost time")
	}
}

func TestStagingContendsOnHostMemBus(t *testing.T) {
	membus := simtime.NewResource("membus")
	l := testBus(membus).NewLink(0, nil, 0)
	l.Charge(0, HostToDevice, 64<<20)
	if membus.Busy() == 0 {
		t.Fatalf("staging pass must charge the host memory bus")
	}
}

func TestDeviceMemoryPass(t *testing.T) {
	devbw := simtime.NewResource("devbw")
	l := testBus(nil).NewLink(0, devbw, 144_000*simtime.MBps)
	l.Charge(0, HostToDevice, 64<<20)
	if devbw.Busy() == 0 {
		t.Fatalf("device memory landing must be charged")
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Fatalf("direction strings")
	}
}
