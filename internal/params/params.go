// Package params holds the hardware and system constants that drive the
// GPUfs simulation, calibrated to the evaluation platform of the paper
// (§5): a SuperMicro server with two 4-core Xeon L5630 CPUs, four NVIDIA
// TESLA C2075 GPUs, PCIe 2.0, and a 7200RPM WDC disk whose cached and raw
// read bandwidths were measured at 6600 MB/s and 132 MB/s respectively.
//
// All capacities and dataset sizes can be scaled down uniformly by a single
// factor so the full benchmark suite runs in seconds; because every capacity
// scales together, crossover points (GPU buffer cache overflow, CPU RAM
// overflow into the disk-bound regime) are preserved.
package params

import (
	"fmt"

	"gpufs/internal/simtime"
)

// Size helpers (bytes).
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Config captures every tunable of the simulated machine and of the GPUfs
// library itself. The zero value is not valid; start from Default().
type Config struct {
	// ---- Topology ----

	// NumGPUs is the number of discrete GPUs attached to the host.
	NumGPUs int
	// NumCPUCores is the number of host CPU cores (the paper's CPU
	// baselines use 8).
	NumCPUCores int

	// ---- GPU device model (TESLA C2075 / FERMI) ----

	// MPsPerGPU is the number of multiprocessors per GPU. The C2075 has 14.
	MPsPerGPU int
	// BlocksPerMP is how many threadblocks may be resident on one MP.
	BlocksPerMP int
	// WarpSize is the number of threads executed in lockstep (32 on NVIDIA).
	WarpSize int
	// GPUMemBytes is the device memory capacity (6 GB on the C2075).
	GPUMemBytes int64
	// GPUMemBandwidth is aggregate device-memory bandwidth (~144 GB/s).
	GPUMemBandwidth simtime.Rate
	// ScratchpadBytes is the per-block on-die scratchpad (48 KB on FERMI).
	ScratchpadBytes int64
	// KernelLaunchOverhead is the fixed virtual cost of launching a kernel.
	KernelLaunchOverhead simtime.Duration

	// ---- Interconnect (PCIe 2.0 x16) ----

	// PCIeBandwidth is the maximum achievable PCIe bandwidth; the paper
	// measured 5731 MB/s on its hardware.
	PCIeBandwidth simtime.Rate
	// DMALatency is the fixed per-transaction DMA setup latency.
	DMALatency simtime.Duration
	// DMAChannels is the number of concurrent asynchronous DMA channels
	// per GPU per direction (§4.3: "multiple asynchronous CPU-GPU
	// channels to utilize full-duplex DMA").
	DMAChannels int

	// ---- Host memory and file system ----

	// CPUMemBandwidth is the host DRAM copy bandwidth; page-cache-cached
	// file reads were measured at 6600 MB/s.
	CPUMemBandwidth simtime.Rate
	// CPURAMBytes is total host RAM. The OS, the application, and pinned
	// allocations leave roughly 7/8 of it to the page cache, which is
	// why the paper's largest matrix (11 GB on a 12 GB machine) "barely
	// fits into the CPU's RAM" and tips the workload into the disk-bound
	// regime.
	CPURAMBytes int64
	// SyscallOverhead is the fixed cost of a host file-system call.
	SyscallOverhead simtime.Duration

	// ---- Disk (WDC WD5003, 7200RPM) ----

	// DiskBandwidth is sequential disk read bandwidth (132 MB/s measured).
	DiskBandwidth simtime.Rate
	// DiskSeek is the average seek + rotational latency.
	DiskSeek simtime.Duration

	// ---- GPUfs library ----

	// PageSize is the GPU buffer cache page size (the paper explores
	// 16 KB–16 MB and settles on 128 KB–2 MB depending on workload).
	PageSize int64
	// BufferCacheBytes is the per-GPU buffer cache capacity.
	BufferCacheBytes int64
	// APICostPerPage is the GPU-side GPUfs bookkeeping cost charged per
	// page-granularity operation (radix insert, pframe init, and so on).
	// Calibrated from Figure 5's rightmost column: ~1.8 GB in 16 KB pages
	// costs ~792 ms of pure page-cache code, or ~7 µs per page.
	APICostPerPage simtime.Duration
	// RadixLookupLockFree is the memory-bandwidth-visible cost of one
	// lock-free radix-tree page lookup on a cache hit: a few dependent
	// device-memory node reads, mostly hidden by warp multiplexing.
	// Calibrated so in-cache greads reach 85-88% of raw memory bandwidth
	// (Figure 7).
	RadixLookupLockFree simtime.Duration
	// RadixLookupLocked is the serialized per-lookup cost when traversal
	// takes the tree lock; lookups of one file then serialize
	// device-wide, which is why Figure 7's locked protocol runs ~3x
	// slower.
	RadixLookupLocked simtime.Duration
	// RPCPollInterval is the mean delay before the polling CPU daemon
	// notices a new GPU request in write-shared memory (§4.3).
	RPCPollInterval simtime.Duration
	// RPCHandleCost is the CPU-side cost of dequeuing and dispatching one
	// RPC request (excluding file I/O and DMA, which are charged to their
	// own resources).
	RPCHandleCost simtime.Duration
	// RPCShards is the number of RPC request rings per GPU; threadblocks
	// hash to rings. 0 or 1 reproduces the prototype's single ring.
	RPCShards int
	// DaemonWorkers is the number of host daemon threads draining the
	// rings (the paper's multi-threaded daemon, §4.2); ring shard s is
	// pinned to worker s mod DaemonWorkers. 0 or 1 reproduces the
	// single-threaded daemon.
	DaemonWorkers int
	// SyscallOrdering selects the default ordering class of the generic
	// syscall layer (ISSUE 7): "" or "strong" keeps every call on the
	// per-lane FIFO fence (the prototype's semantics, bit-identical
	// timing); "relaxed" lets workloads opt into out-of-order completion
	// (open-ahead pipelining past the fence, joined explicitly).
	SyscallOrdering string
	// ForceLockedTraversal disables lock-free radix-tree reads on every
	// GPU, reproducing Figure 7's locked baseline.
	ForceLockedTraversal bool
	// ReadAheadPages enables greedy GPU-side buffer-cache read-ahead on
	// gread (§3.3 lists read-ahead among the optimizations a GPU buffer
	// cache enables). 0 — the prototype's setting — disables it. Ignored
	// while ReadAheadAdaptive is set.
	ReadAheadPages int
	// ReadAheadAdaptive replaces the fixed greedy read-ahead window with a
	// per-open-file, per-stream pattern detector: sequential and strided
	// access ramp a Linux-style window up on confirmed prefetch hits and
	// shrink it on waste, and adjacent speculative pages coalesce into one
	// multi-page RPC. Random access builds no confidence and triggers no
	// speculation. On by default; false restores the PR-3 behavior
	// bit-identically (ReadAheadPages then governs the greedy window).
	ReadAheadAdaptive bool
	// HistoryPrefetch layers a per-file access-history engine over the
	// adaptive detector: each open records its page-access footprint (the
	// ordered first-touch burst plus confirmed detector strides) into a
	// compact profile kept in a bounded FS-level LRU table, keyed by path
	// and validated against file size and generation. A re-open replays
	// the profile — the burst is pre-warmed through vectored read RPCs
	// before demand reads arrive and detector slots start with their
	// previously confirmed strides — with replay depth feedback-controlled
	// by the used/wasted prefetch counters so a changed access pattern
	// stands the engine down within one open. On by default; false
	// disables recording and replay bit-identically (requires
	// ReadAheadAdaptive to have any effect on stride seeding).
	HistoryPrefetch bool
	// CleanerWorkers is the number of background writeback-cleaner lanes
	// per GPU. When a low watermark on free buffer-cache frames is
	// crossed, the cleaner writes cold dirty pages back and pre-evicts
	// closed-file frames on the host daemon's timeline instead of the
	// faulting threadblock's. 0 disables the cleaner (all write-back
	// happens synchronously inside eviction, the PR-3 behavior).
	CleanerWorkers int
	// DisableFastReopen forces reopens of closed-table files through the
	// full host RPC path (ablation of the §4.1 closed-table
	// optimization).
	DisableFastReopen bool
	// ZeroCopyRead serves buffer-cache hits and lands RPC read completions
	// directly in pinned page frames instead of copying through a staging
	// buffer: a cache-hit gread/gpread_warp charges one device-memory pass
	// (the application's own read of the aliased frame, the gmmap
	// mechanism) rather than a two-pass copy, and the host daemon preads
	// straight into the pinned DMA region, skipping the staging pass on
	// the host memory bus. On by default; false restores the copying read
	// path bit-identically (the PR-7 pinned baselines set it off).
	ZeroCopyRead bool
	// MigrateOnDrain selects migrate-first remediation in the fleet
	// control plane: a cordoned host is checkpointed (buffer caches,
	// file tables, pipes — copy-on-write while its in-flight batches
	// finish) and the image restored onto its replacement, so tenants
	// land on a warm cache instead of a cold one. Checkpoint failure, a
	// budget overrun, or a fatal XID during the snapshot falls back to
	// the plain drain+restart path. Off by default: false is
	// bit-identical to the pre-migration behavior (the capture hook is
	// one nil pointer test on the write path).
	MigrateOnDrain bool
	// CkptMaxBytes bounds the bytes a checkpoint may capture by value
	// (dirty pages plus pipe buffers). A capture that exceeds it fails
	// with ckpt.ErrBudget and the remediator falls back to
	// drain+restart. 0 means unlimited.
	CkptMaxBytes int64
	// FrameShards is the number of free-list shards in the per-GPU frame
	// allocator. Lanes (threadblocks, cleaner workers) allocate from the
	// shard they hash to and steal from neighbors when it is empty. 0
	// (the default) auto-sizes to the GPU's multiprocessor count; 1 is
	// the single-LIFO pre-sharding allocator, preserved bit-identically.
	FrameShards int
	// MetricsEnabled attaches a metrics registry (internal/metrics) to
	// the system: per-op latency histograms and counters across the rpc,
	// pcie, core, and serve subsystems, exportable as Prometheus text or
	// NDJSON. Collection is observation-only — it records virtual
	// timestamps the simulation already computed and never acquires a
	// simulated resource — so enabling it does not change virtual timing
	// at all. Off by default (no registry, hooks compile to one nil
	// check).
	MetricsEnabled bool

	// ---- Compute calibration ----

	// GPUFlops is the achieved application GPU throughput; the image
	// search workload sustains 18 GFLOP/s (§5.2.1).
	GPUFlops float64
	// CPUFlops is the achieved 8-core CPU throughput on the same
	// workload; the paper reports the GPU is 2x an 8-core CPU, i.e.
	// 9 GFLOP/s.
	CPUFlops float64
	// GrepGPURate is the GPU string-match throughput in byte·word
	// comparisons per second (the brute-force cost is dictionary words x
	// text bytes). Calibrated from Table 4: 58,000 words over the 6 MB
	// Shakespeare input in ~40 s gives ~8.7e9; the same rate predicts
	// ~56 min for the 524 MB Linux tree, matching the measured 53 min.
	GrepGPURate float64
	// GrepCPURate is the 8-core CPU rate; Table 4 has the GPU ~7x faster.
	GrepCPURate float64

	// ---- Cost-component toggles (Figure 5) ----

	// ExcludeDMA, when set, makes PCIe DMA transfers free. Used by the
	// Figure 5 breakdown ("CPU DMA excluded").
	ExcludeDMA bool
	// ExcludeCPUFileIO, when set, makes host file reads free ("CPU file
	// I/O excluded").
	ExcludeCPUFileIO bool

	// Scale is the uniform down-scaling factor applied to capacities and
	// (by convention) to workload sizes. 1.0 reproduces paper-scale runs.
	Scale float64
}

// Default returns the configuration matching the paper's testbed at the
// given scale factor in (0, 1]. Capacities (GPU memory, buffer cache, CPU
// RAM) are multiplied by scale; rates, latencies and per-op costs are not,
// so time-per-byte relationships are untouched.
func Default() Config {
	return Config{
		NumGPUs:     4,
		NumCPUCores: 8,

		MPsPerGPU:            14,
		BlocksPerMP:          2,
		WarpSize:             32,
		GPUMemBytes:          6 * GB,
		GPUMemBandwidth:      144_000 * simtime.MBps,
		ScratchpadBytes:      48 * KB,
		KernelLaunchOverhead: 10 * simtime.Microsecond,

		PCIeBandwidth: 5731 * simtime.MBps,
		DMALatency:    15 * simtime.Microsecond,
		DMAChannels:   4,

		CPUMemBandwidth: 6600 * simtime.MBps,
		CPURAMBytes:     12 * GB,
		SyscallOverhead: 4 * simtime.Microsecond,

		DiskBandwidth: 132 * simtime.MBps,
		DiskSeek:      8 * simtime.Millisecond,

		PageSize:            256 * KB,
		BufferCacheBytes:    2 * GB,
		APICostPerPage:      7 * simtime.Microsecond,
		RadixLookupLockFree: 35 * simtime.Nanosecond,
		RadixLookupLocked:   550 * simtime.Nanosecond,
		RPCPollInterval:     10 * simtime.Microsecond,
		RPCHandleCost:       12 * simtime.Microsecond,
		ReadAheadAdaptive:   true,
		HistoryPrefetch:     true,
		CleanerWorkers:      1,
		ZeroCopyRead:        true,
		FrameShards:         0, // auto: one shard per multiprocessor

		GPUFlops: 18e9,
		CPUFlops: 9e9,

		GrepGPURate: 8.7e9,
		GrepCPURate: 1.25e9,

		Scale: 1.0,
	}
}

// Scaled returns Default() scaled down by the given factor.
func Scaled(scale float64) Config {
	c := Default()
	c.ApplyScale(scale)
	return c
}

// ApplyScale rescales the capacity-like fields by factor and records it in
// c.Scale. It panics on a non-positive factor.
func (c *Config) ApplyScale(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("params: non-positive scale %v", factor))
	}
	c.Scale = factor
	c.GPUMemBytes = scaleBytes(c.GPUMemBytes, factor)
	c.CPURAMBytes = scaleBytes(c.CPURAMBytes, factor)
	c.BufferCacheBytes = scaleBytes(c.BufferCacheBytes, factor)
}

// ScaleBytes scales a workload size by the config's scale factor, rounding
// to at least one byte.
func (c *Config) ScaleBytes(n int64) int64 { return scaleBytes(n, c.Scale) }

// ScaleCount scales an item count (for example a number of files) by the
// config's scale factor, rounding to at least one.
func (c *Config) ScaleCount(n int) int {
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

func scaleBytes(n int64, factor float64) int64 {
	s := int64(float64(n) * factor)
	if s < 1 {
		s = 1
	}
	return s
}

// MaxResidentBlocks reports how many threadblocks a single GPU can execute
// concurrently.
func (c *Config) MaxResidentBlocks() int { return c.MPsPerGPU * c.BlocksPerMP }

// Validate checks the configuration for internally inconsistent settings.
func (c *Config) Validate() error {
	switch {
	case c.NumGPUs < 1:
		return fmt.Errorf("params: NumGPUs must be >= 1, got %d", c.NumGPUs)
	case c.MPsPerGPU < 1:
		return fmt.Errorf("params: MPsPerGPU must be >= 1, got %d", c.MPsPerGPU)
	case c.BlocksPerMP < 1:
		return fmt.Errorf("params: BlocksPerMP must be >= 1, got %d", c.BlocksPerMP)
	case c.WarpSize < 1:
		return fmt.Errorf("params: WarpSize must be >= 1, got %d", c.WarpSize)
	case c.PageSize < 512:
		return fmt.Errorf("params: PageSize must be >= 512, got %d", c.PageSize)
	case c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("params: PageSize must be a power of two, got %d", c.PageSize)
	case c.BufferCacheBytes < c.PageSize:
		return fmt.Errorf("params: BufferCacheBytes %d smaller than one page %d",
			c.BufferCacheBytes, c.PageSize)
	case c.GPUMemBytes < c.BufferCacheBytes:
		return fmt.Errorf("params: GPU memory %d smaller than buffer cache %d",
			c.GPUMemBytes, c.BufferCacheBytes)
	case c.PCIeBandwidth <= 0:
		return fmt.Errorf("params: PCIeBandwidth must be positive")
	case c.DiskBandwidth <= 0:
		return fmt.Errorf("params: DiskBandwidth must be positive")
	case c.CPUMemBandwidth <= 0:
		return fmt.Errorf("params: CPUMemBandwidth must be positive")
	case c.RPCShards < 0:
		return fmt.Errorf("params: RPCShards must be >= 0, got %d", c.RPCShards)
	case c.DaemonWorkers < 0:
		return fmt.Errorf("params: DaemonWorkers must be >= 0, got %d", c.DaemonWorkers)
	case c.CleanerWorkers < 0:
		return fmt.Errorf("params: CleanerWorkers must be >= 0, got %d", c.CleanerWorkers)
	case c.FrameShards < 0:
		return fmt.Errorf("params: FrameShards must be >= 0 (0 = auto), got %d", c.FrameShards)
	case c.SyscallOrdering != "" && c.SyscallOrdering != "strong" && c.SyscallOrdering != "relaxed":
		return fmt.Errorf("params: SyscallOrdering must be \"\", \"strong\", or \"relaxed\", got %q", c.SyscallOrdering)
	case c.Scale <= 0:
		return fmt.Errorf("params: Scale must be positive, got %v", c.Scale)
	}
	return nil
}

// NumPages reports how many buffer-cache pages the configuration allows.
func (c *Config) NumPages() int { return int(c.BufferCacheBytes / c.PageSize) }

// PageAlign rounds an offset down to the containing page boundary.
func (c *Config) PageAlign(off int64) int64 { return off &^ (c.PageSize - 1) }

// PageIndex reports the page number containing the given file offset.
func (c *Config) PageIndex(off int64) int64 { return off / c.PageSize }
