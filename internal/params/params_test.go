package params

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.MaxResidentBlocks() != 28 {
		t.Fatalf("C2075: 14 MPs x 2 blocks = 28, got %d", c.MaxResidentBlocks())
	}
}

func TestScalingPreservesRatios(t *testing.T) {
	full := Default()
	s := Scaled(1.0 / 32)
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if s.GPUMemBytes*32 != full.GPUMemBytes {
		t.Fatalf("GPU memory not scaled: %d", s.GPUMemBytes)
	}
	// The crossover-defining ratios survive scaling.
	if full.BufferCacheBytes*s.GPUMemBytes != s.BufferCacheBytes*full.GPUMemBytes {
		t.Fatalf("cache-to-memory ratio changed")
	}
	// Rates and latencies do not scale.
	if s.PCIeBandwidth != full.PCIeBandwidth || s.DMALatency != full.DMALatency {
		t.Fatalf("rates/latencies must not scale")
	}
	if s.ScaleBytes(32<<20) != 1<<20 {
		t.Fatalf("ScaleBytes: %d", s.ScaleBytes(32<<20))
	}
	if s.ScaleCount(64) != 2 {
		t.Fatalf("ScaleCount: %d", s.ScaleCount(64))
	}
	if s.ScaleCount(1) != 1 || s.ScaleBytes(1) != 1 {
		t.Fatalf("scaling must floor at 1")
	}
}

func TestApplyScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on zero scale")
		}
	}()
	c := Default()
	c.ApplyScale(0)
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"gpus", func(c *Config) { c.NumGPUs = 0 }, "NumGPUs"},
		{"mps", func(c *Config) { c.MPsPerGPU = 0 }, "MPsPerGPU"},
		{"blocks", func(c *Config) { c.BlocksPerMP = 0 }, "BlocksPerMP"},
		{"warp", func(c *Config) { c.WarpSize = 0 }, "WarpSize"},
		{"pagesize", func(c *Config) { c.PageSize = 100 }, "PageSize"},
		{"pagepow2", func(c *Config) { c.PageSize = 3000 }, "power of two"},
		{"cache", func(c *Config) { c.BufferCacheBytes = 1024 }, "smaller than one page"},
		{"gpumem", func(c *Config) { c.GPUMemBytes = 1 << 20 }, "smaller than buffer cache"},
		{"pcie", func(c *Config) { c.PCIeBandwidth = 0 }, "PCIeBandwidth"},
		{"disk", func(c *Config) { c.DiskBandwidth = 0 }, "DiskBandwidth"},
		{"mem", func(c *Config) { c.CPUMemBandwidth = 0 }, "CPUMemBandwidth"},
		{"scale", func(c *Config) { c.Scale = 0 }, "Scale"},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: err = %v, want mention of %q", m.name, err, m.want)
		}
	}
}

func TestPageHelpers(t *testing.T) {
	c := Default()
	c.PageSize = 256 * KB
	if c.PageAlign(300*KB) != 256*KB {
		t.Fatalf("PageAlign")
	}
	if c.PageIndex(300*KB) != 1 {
		t.Fatalf("PageIndex")
	}
	if c.NumPages() != int(c.BufferCacheBytes/c.PageSize) {
		t.Fatalf("NumPages")
	}
}
