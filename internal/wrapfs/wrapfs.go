// Package wrapfs is the GPUfs consistency layer: the analogue of the
// modified WRAPFS stackable file system the paper runs on the host (§4.4).
// It interposes on the host file system to track, per inode, which GPUs
// hold cached copies and at which content generation, and answers the one
// question GPUfs's lazy invalidation protocol needs: "is this GPU's cached
// copy still current, or was the file modified (by the CPU or another GPU)
// since it was cached?"
//
// Like the real WRAPFS module, this layer sees only metadata — it provides
// no access to file content, so host file-access policies are not
// compromised. Invalidations are propagated lazily: closing a file on one
// GPU pushes nothing; a stale cache is discovered only when its owner
// re-opens the file (§4.4).
package wrapfs

import (
	"fmt"
	"sync"

	"gpufs/internal/hostfs"
)

// Layer is the consistency interposition layer. One Layer serves all GPUs
// of one host process.
type Layer struct {
	fs *hostfs.FS

	mu    sync.Mutex
	files map[int64]*fileState

	invalidations int64
	validations   int64
}

type fileState struct {
	// cachedGen[gpu] is the host generation the GPU's buffer-cache copy
	// corresponds to.
	cachedGen map[int]int64
	// writer is the GPU currently holding the file open for writing, or
	// -1. The prototype supports a single writer at a time (§4.4); the
	// diff-and-merge extension lifts this via AllowMultiWriter.
	writer  int
	writers map[int]bool // multi-writer mode
}

// New creates a consistency layer over fs.
func New(fs *hostfs.FS) *Layer {
	return &Layer{fs: fs, files: make(map[int64]*fileState)}
}

// FS returns the wrapped host file system.
func (l *Layer) FS() *hostfs.FS { return l.fs }

func (l *Layer) state(ino int64) *fileState {
	st, ok := l.files[ino]
	if !ok {
		st = &fileState{cachedGen: make(map[int]int64), writer: -1, writers: make(map[int]bool)}
		l.files[ino] = st
	}
	return st
}

// RecordCached notes that the given GPU now caches the file's content as of
// generation gen (called when the GPU fetches pages or closes the file with
// its cache retained).
func (l *Layer) RecordCached(gpu int, ino, gen int64) {
	l.mu.Lock()
	l.state(ino).cachedGen[gpu] = gen
	l.mu.Unlock()
}

// Validate reports whether the GPU's cached copy of ino is still current
// with respect to the host generation hostGen. A false result means the
// GPU must discard its cached pages for this file (lazy invalidation at
// re-open).
func (l *Layer) Validate(gpu int, ino, hostGen int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.validations++
	st := l.state(ino)
	cached, ok := st.cachedGen[gpu]
	if !ok {
		return false
	}
	if cached != hostGen {
		l.invalidations++
		delete(st.cachedGen, gpu)
		return false
	}
	return true
}

// PeekValid is the cheap validation path: the consistency module mirrors
// per-inode generations into write-shared memory, so a GPU can check its
// cached copy against the host without a daemon round trip. Unlike
// Validate it does not mutate tracking state on mismatch.
func (l *Layer) PeekValid(gpu int, ino, gen int64) bool {
	hostGen, ok := l.fs.InodeGeneration(ino)
	if !ok || hostGen != gen {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.validations++
	cached, have := l.state(ino).cachedGen[gpu]
	return have && cached == gen
}

// Forget drops the layer's record of the GPU's cache for ino (the GPU
// evicted or invalidated it locally).
func (l *Layer) Forget(gpu int, ino int64) {
	l.mu.Lock()
	if st, ok := l.files[ino]; ok {
		delete(st.cachedGen, gpu)
	}
	l.mu.Unlock()
}

// ErrBusy is returned when a second writer opens a file in single-writer
// mode.
type ErrBusy struct {
	Ino    int64
	Writer int
}

// Error implements the error interface.
func (e *ErrBusy) Error() string {
	return fmt.Sprintf("wrapfs: inode %d already opened for writing by GPU %d", e.Ino, e.Writer)
}

// BeginWrite registers the GPU as a writer of ino. With multiWriter false
// (the prototype's limitation, §4.4) a second concurrent writer fails with
// *ErrBusy; with multiWriter true any number of GPUs may write and the
// diff-and-merge protocol reconciles their updates.
func (l *Layer) BeginWrite(gpu int, ino int64, multiWriter bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(ino)
	if multiWriter {
		st.writers[gpu] = true
		return nil
	}
	if st.writer >= 0 && st.writer != gpu {
		return &ErrBusy{Ino: ino, Writer: st.writer}
	}
	if len(st.writers) > 0 {
		for w := range st.writers {
			if w != gpu {
				return &ErrBusy{Ino: ino, Writer: w}
			}
		}
	}
	st.writer = gpu
	return nil
}

// EndWrite releases the GPU's writer registration for ino.
func (l *Layer) EndWrite(gpu int, ino int64) {
	l.mu.Lock()
	if st, ok := l.files[ino]; ok {
		if st.writer == gpu {
			st.writer = -1
		}
		delete(st.writers, gpu)
	}
	l.mu.Unlock()
}

// Writers reports how many GPUs currently hold ino open for writing.
func (l *Layer) Writers(ino int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.files[ino]
	if !ok {
		return 0
	}
	n := len(st.writers)
	if st.writer >= 0 && !st.writers[st.writer] {
		n++
	}
	return n
}

// Stats reports cumulative validation and invalidation counts.
func (l *Layer) Stats() (validations, invalidations int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.validations, l.invalidations
}
