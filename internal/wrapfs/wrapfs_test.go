package wrapfs

import (
	"errors"
	"testing"

	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

func newLayer(t *testing.T) (*Layer, *hostfs.FS, *simtime.Clock) {
	t.Helper()
	fs := hostfs.New(hostfs.Options{
		DiskBandwidth: 132 * simtime.MBps,
		DiskSeek:      simtime.Millisecond,
		MemBandwidth:  6600 * simtime.MBps,
		CacheBytes:    16 << 20,
	})
	return New(fs), fs, simtime.NewClock(0)
}

func fileInfo(t *testing.T, fs *hostfs.FS, c *simtime.Clock, path string, data []byte) hostfs.FileInfo {
	t.Helper()
	mode := hostfs.ModeRead | hostfs.ModeWrite
	if err := fs.WriteFile(c, path, data, mode); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestValidateLifecycle(t *testing.T) {
	l, fs, c := newLayer(t)
	info := fileInfo(t, fs, c, "/f", []byte("v1"))

	// No record yet: not valid.
	if l.Validate(0, info.Ino, info.Generation) {
		t.Fatalf("unrecorded cache validated")
	}
	l.RecordCached(0, info.Ino, info.Generation)
	if !l.Validate(0, info.Ino, info.Generation) {
		t.Fatalf("fresh cache should validate")
	}

	// Host modifies the file: the recorded generation goes stale.
	f, _ := fs.Open(c, "/f", hostfs.O_WRONLY, 0)
	f.Pwrite(c, []byte("v2"), 0)
	f.Close()
	newInfo, _ := fs.Stat("/f")
	if l.Validate(0, info.Ino, newInfo.Generation) {
		t.Fatalf("stale record must invalidate (and be dropped)")
	}
	// The failed validation dropped the record: re-validate also fails.
	if l.Validate(0, info.Ino, info.Generation) {
		t.Fatalf("record should have been dropped on invalidation")
	}
	_, inv := l.Stats()
	if inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
}

func TestValidatePerGPU(t *testing.T) {
	l, fs, c := newLayer(t)
	info := fileInfo(t, fs, c, "/f", []byte("v1"))
	l.RecordCached(0, info.Ino, info.Generation)
	if l.Validate(1, info.Ino, info.Generation) {
		t.Fatalf("GPU 1 has no cache; must not validate via GPU 0's record")
	}
}

func TestPeekValid(t *testing.T) {
	l, fs, c := newLayer(t)
	info := fileInfo(t, fs, c, "/f", []byte("v1"))
	l.RecordCached(0, info.Ino, info.Generation)

	if !l.PeekValid(0, info.Ino, info.Generation) {
		t.Fatalf("peek should validate a fresh cache")
	}
	// CPU write invalidates.
	f, _ := fs.Open(c, "/f", hostfs.O_WRONLY, 0)
	f.Pwrite(c, []byte("x"), 0)
	f.Close()
	if l.PeekValid(0, info.Ino, info.Generation) {
		t.Fatalf("peek should fail after host write")
	}
	// Unlink: the inode disappears entirely.
	fs.Unlink("/f")
	if l.PeekValid(0, info.Ino, info.Generation) {
		t.Fatalf("peek should fail after unlink")
	}
}

func TestForget(t *testing.T) {
	l, fs, c := newLayer(t)
	info := fileInfo(t, fs, c, "/f", nil)
	l.RecordCached(2, info.Ino, info.Generation)
	l.Forget(2, info.Ino)
	if l.Validate(2, info.Ino, info.Generation) {
		t.Fatalf("forgotten cache validated")
	}
}

func TestSingleWriterEnforcement(t *testing.T) {
	l, _, _ := newLayer(t)
	if err := l.BeginWrite(0, 7, false); err != nil {
		t.Fatal(err)
	}
	// Same GPU re-registers fine.
	if err := l.BeginWrite(0, 7, false); err != nil {
		t.Fatal(err)
	}
	err := l.BeginWrite(1, 7, false)
	var busy *ErrBusy
	if !errors.As(err, &busy) || busy.Writer != 0 || busy.Ino != 7 {
		t.Fatalf("second writer: %v", err)
	}
	l.EndWrite(0, 7)
	if err := l.BeginWrite(1, 7, false); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestMultiWriterMode(t *testing.T) {
	l, _, _ := newLayer(t)
	if err := l.BeginWrite(0, 9, true); err != nil {
		t.Fatal(err)
	}
	if err := l.BeginWrite(1, 9, true); err != nil {
		t.Fatalf("multi-writer: %v", err)
	}
	if got := l.Writers(9); got != 2 {
		t.Fatalf("writers = %d, want 2", got)
	}
	// A single-writer open must now fail: others are writing.
	if err := l.BeginWrite(2, 9, false); err == nil {
		t.Fatalf("exclusive open over shared writers should fail")
	}
	l.EndWrite(0, 9)
	l.EndWrite(1, 9)
	if got := l.Writers(9); got != 0 {
		t.Fatalf("writers = %d after release", got)
	}
	if got := l.Writers(12345); got != 0 {
		t.Fatalf("unknown inode writers = %d", got)
	}
}
