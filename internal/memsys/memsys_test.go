package memsys

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	a := NewArena("t", DeviceMemory, 1024)
	b, err := a.Alloc(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 512 || a.Used() != 512 || a.Free() != 512 {
		t.Fatalf("size/used/free wrong: %d %d %d", b.Size(), a.Used(), a.Free())
	}
	b.Data[0] = 0xAA
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 0 || a.LiveAllocs() != 0 {
		t.Fatalf("free did not release")
	}
	// Double free is a no-op (block cleared).
	if err := b.Free(); err != nil {
		t.Fatalf("freeing a freed block should be nil, got %v", err)
	}
}

func TestAllocAlignment(t *testing.T) {
	a := NewArena("t", DeviceMemory, 4096)
	if _, err := a.Alloc(10, 0); err != nil {
		t.Fatal(err)
	}
	b, err := a.Alloc(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if b.Offset%256 != 0 {
		t.Fatalf("offset %d not 256-aligned", b.Offset)
	}
	if _, err := a.Alloc(8, 3); err == nil {
		t.Fatalf("non-power-of-two alignment must fail")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewArena("t", DeviceMemory, 100)
	if _, err := a.Alloc(80, 0); err != nil {
		t.Fatal(err)
	}
	_, err := a.Alloc(40, 0)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if _, err := a.Alloc(0, 0); err == nil {
		t.Fatalf("zero-size alloc must fail")
	}
	if _, err := a.Alloc(-1, 0); err == nil {
		t.Fatalf("negative alloc must fail")
	}
}

func TestFreeCoalescing(t *testing.T) {
	a := NewArena("t", DeviceMemory, 300)
	b1, _ := a.Alloc(100, 0)
	b2, _ := a.Alloc(100, 0)
	b3, _ := a.Alloc(100, 0)
	// Free the middle, then the first: spans must coalesce so a 200-byte
	// allocation fits again.
	if err := b2.Free(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(200, 0); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
	b3.Free()
}

func TestBlocksDisjoint(t *testing.T) {
	// Property: live allocations never overlap, and used-byte accounting
	// stays exact under random alloc/free traffic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena("p", PinnedHost, 1<<16)
		var live []*Block
		var used int64
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := int64(rng.Intn(2000) + 1)
				b, err := a.Alloc(size, 1<<uint(rng.Intn(6)))
				if err != nil {
					continue
				}
				live = append(live, b)
				used += size
			} else {
				i := rng.Intn(len(live))
				used -= live[i].Size()
				if live[i].Free() != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if a.Used() != used {
			return false
		}
		// Overlap check.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				aS, aE := live[i].Offset, live[i].Offset+live[i].Size()
				bS, bE := live[j].Offset, live[j].Offset+live[j].Size()
				if aS < bE && bS < aE {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakTracking(t *testing.T) {
	a := NewArena("t", DeviceMemory, 1000)
	b1, _ := a.Alloc(400, 0)
	b2, _ := a.Alloc(500, 0)
	b1.Free()
	b2.Free()
	if a.Peak() != 900 {
		t.Fatalf("peak = %d, want 900", a.Peak())
	}
}

func TestKindString(t *testing.T) {
	if DeviceMemory.String() != "device" || PinnedHost.String() != "pinned-host" || SharedHost.String() != "shared-host" {
		t.Fatalf("kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("unknown kind string wrong")
	}
}

func TestDataAliasing(t *testing.T) {
	// Two views of the same offsets share bytes — DMA into a buffer-cache
	// page must be visible through the page's own slice.
	a := NewArena("t", DeviceMemory, 128)
	b, _ := a.Alloc(128, 0)
	b.Data[5] = 42
	b.Free()
	b2, _ := a.Alloc(128, 0)
	if b2.Data[5] != 42 {
		t.Fatalf("arena backing store should persist across alloc cycles")
	}
}
