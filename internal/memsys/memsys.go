// Package memsys models the physical memories of the simulated machine:
// per-GPU device memory, pinned (page-locked) host memory used as DMA
// staging, and the write-shared host region through which the GPU and CPU
// exchange RPC messages (§4.3 of the paper).
//
// Memory is modelled as real Go byte slices carved out of fixed-capacity
// arenas, so capacity limits are enforced exactly: a kernel that tries to
// allocate more device memory than the simulated card has fails just like
// cudaMalloc would.
package memsys

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOutOfMemory is returned when an arena cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("memsys: out of memory")

// ErrBadFree is returned when freeing a block the arena does not own.
var ErrBadFree = errors.New("memsys: free of unallocated block")

// Kind identifies which physical memory an arena models.
type Kind int

// Memory kinds.
const (
	DeviceMemory Kind = iota // GPU-local GDDR
	PinnedHost               // page-locked host memory (DMA staging)
	SharedHost               // write-shared host memory (RPC rings)
)

// String names the memory kind.
func (k Kind) String() string {
	switch k {
	case DeviceMemory:
		return "device"
	case PinnedHost:
		return "pinned-host"
	case SharedHost:
		return "shared-host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Block is an allocation from an Arena. Data aliases the arena's backing
// store, so writes through Block.Data are visible to anyone else holding the
// same offsets — which is exactly how DMA into buffer-cache pages behaves.
type Block struct {
	// Data is the allocated byte range.
	Data []byte
	// Offset is the block's position within its arena, usable as a
	// simulated device pointer.
	Offset int64

	arena *Arena
}

// Size reports the block's length in bytes.
func (b *Block) Size() int64 { return int64(len(b.Data)) }

// Free returns the block to its arena. Freeing a zero Block is a no-op.
func (b *Block) Free() error {
	if b == nil || b.arena == nil {
		return nil
	}
	err := b.arena.release(b)
	b.arena = nil
	b.Data = nil
	return err
}

// Arena is a fixed-capacity memory with a first-fit free-list allocator.
// It is safe for concurrent use.
type Arena struct {
	name string
	kind Kind

	mu       sync.Mutex
	backing  []byte
	freeList []span // sorted by offset, coalesced
	used     int64
	allocs   map[int64]int64 // offset -> length of live allocations
	peak     int64
}

type span struct{ off, len int64 }

// NewArena creates an arena of the given capacity.
func NewArena(name string, kind Kind, capacity int64) *Arena {
	if capacity < 0 {
		capacity = 0
	}
	return &Arena{
		name:     name,
		kind:     kind,
		backing:  make([]byte, capacity),
		freeList: []span{{0, capacity}},
		allocs:   make(map[int64]int64),
	}
}

// Name reports the arena's name.
func (a *Arena) Name() string { return a.name }

// Kind reports which physical memory the arena models.
func (a *Arena) Kind() Kind { return a.kind }

// Capacity reports the arena's total size in bytes.
func (a *Arena) Capacity() int64 { return int64(len(a.backing)) }

// Used reports the currently allocated byte count.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak reports the high-water mark of allocated bytes.
func (a *Arena) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Free reports the number of unallocated bytes (possibly fragmented).
func (a *Arena) Free() int64 { return a.Capacity() - a.Used() }

// Alloc carves size bytes out of the arena, aligned to align (which must be
// a power of two; 0 or 1 means unaligned).
func (a *Arena) Alloc(size, align int64) (*Block, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memsys: invalid allocation size %d", size)
	}
	if align <= 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return nil, fmt.Errorf("memsys: alignment %d not a power of two", align)
	}

	a.mu.Lock()
	defer a.mu.Unlock()

	for i, s := range a.freeList {
		start := (s.off + align - 1) &^ (align - 1)
		pad := start - s.off
		if s.len < pad+size {
			continue
		}
		// Split the free span into [pre-pad][block][remainder].
		var repl []span
		if pad > 0 {
			repl = append(repl, span{s.off, pad})
		}
		if rem := s.len - pad - size; rem > 0 {
			repl = append(repl, span{start + size, rem})
		}
		a.freeList = append(a.freeList[:i], append(repl, a.freeList[i+1:]...)...)
		a.allocs[start] = size
		a.used += size
		if a.used > a.peak {
			a.peak = a.used
		}
		return &Block{
			Data:   a.backing[start : start+size : start+size],
			Offset: start,
			arena:  a,
		}, nil
	}
	return nil, fmt.Errorf("%w: %s arena %q: need %d, free %d (fragmented)",
		ErrOutOfMemory, a.kind, a.name, size, a.Capacity()-a.used)
}

func (a *Arena) release(b *Block) error {
	a.mu.Lock()
	defer a.mu.Unlock()

	size, ok := a.allocs[b.Offset]
	if !ok || size != b.Size() {
		return fmt.Errorf("%w: offset %d size %d in arena %q",
			ErrBadFree, b.Offset, b.Size(), a.name)
	}
	delete(a.allocs, b.Offset)
	a.used -= size

	a.freeList = append(a.freeList, span{b.Offset, size})
	sort.Slice(a.freeList, func(i, j int) bool { return a.freeList[i].off < a.freeList[j].off })
	// Coalesce adjacent spans.
	out := a.freeList[:0]
	for _, s := range a.freeList {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].len == s.off {
			out[n-1].len += s.len
		} else {
			out = append(out, s)
		}
	}
	a.freeList = out
	return nil
}

// LiveAllocs reports the number of outstanding allocations.
func (a *Arena) LiveAllocs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.allocs)
}
