package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict parser for the Prometheus text exposition format
// (version 0.0.4), used by the test suite to validate WritePrometheus
// output the way a real scraper would — plus consistency checks a scraper
// only performs implicitly (TYPE before samples, histogram bucket
// monotonicity, _count/_sum agreement, no duplicate series).

// ParsedSample is one exposition line's sample.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family: its declared TYPE and samples in
// file order. For histograms, Samples holds the raw _bucket/_sum/_count
// series.
type ParsedFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ParsedSample
}

// ParsePrometheus parses and validates Prometheus text format strictly:
// every error a conforming scraper could object to — malformed names or
// escapes, samples before their TYPE, duplicate series, histogram
// buckets that are non-cumulative, unordered, or disagree with _count —
// fails the parse. Returns families keyed by name.
func ParsePrometheus(r io.Reader) (map[string]*ParsedFamily, error) {
	families := map[string]*ParsedFamily{}
	seen := map[string]bool{} // duplicate full-series detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(s.Name, families)
		fam := families[famName]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s before any TYPE declaration", lineNo, s.Name)
		}
		sig := s.Name + "|" + signature(s.Labels)
		if seen[sig] {
			return nil, fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, s.Name, signature(s.Labels))
		}
		seen[sig] = true
		if err := checkSuffix(fam, s.Name); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("family %s: %w", fam.Name, err)
			}
		}
	}
	return families, nil
}

// familyOf maps a sample name to its family, peeling histogram suffixes
// when the base family is a declared histogram.
func familyOf(name string, families map[string]*ParsedFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// checkSuffix rejects sample names that do not belong to the family.
func checkSuffix(fam *ParsedFamily, sampleName string) error {
	if fam.Type == "histogram" {
		switch {
		case sampleName == fam.Name+"_bucket",
			sampleName == fam.Name+"_sum",
			sampleName == fam.Name+"_count":
			return nil
		}
		return fmt.Errorf("histogram family %s has non-histogram sample %s", fam.Name, sampleName)
	}
	if sampleName != fam.Name {
		return fmt.Errorf("sample %s does not match family %s", sampleName, fam.Name)
	}
	return nil
}

func parseComment(line string, families map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid TYPE %q", typ)
		}
		if f := families[name]; f != nil {
			if len(f.Samples) > 0 || f.Type != "" {
				return fmt.Errorf("second TYPE line for %s", name)
			}
			f.Type = typ
			return nil
		}
		families[name] = &ParsedFamily{Name: name, Type: typ}
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if f := families[name]; f != nil {
			f.Help = help
		} else {
			families[name] = &ParsedFamily{Name: name, Help: help}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseSampleLine parses `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabelSet(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parsePromValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", f)
	}
	return v, nil
}

// parseLabelSet parses a {k="v",...} block starting at s[0]=='{',
// returning the index just past the closing brace.
func parseLabelSet(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set %q", s)
		}
		name := s[start:i]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: expected quoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: invalid escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
	}
}

// signature canonicalizes a label map for duplicate detection.
func signature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

// validateHistogram checks the invariants of one histogram family: per
// label signature (excluding le), buckets have strictly increasing le,
// non-decreasing cumulative counts, a +Inf bucket, and a _count sample
// equal to the +Inf bucket; _sum must be present.
func validateHistogram(fam *ParsedFamily) error {
	type hist struct {
		les      []float64
		counts   []float64
		hasInf   bool
		infCount float64
		count    *float64
		sum      *float64
	}
	hists := map[string]*hist{}
	get := func(labels map[string]string) *hist {
		base := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				base[k] = v
			}
		}
		sig := signature(base)
		h := hists[sig]
		if h == nil {
			h = &hist{}
			hists[sig] = h
		}
		return h
	}
	for _, s := range fam.Samples {
		h := get(s.Labels)
		switch s.Name {
		case fam.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("bad le %q", leStr)
			}
			if math.IsInf(le, 1) {
				h.hasInf = true
				h.infCount = s.Value
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case fam.Name + "_count":
			v := s.Value
			h.count = &v
		case fam.Name + "_sum":
			v := s.Value
			h.sum = &v
		}
	}
	for sig, h := range hists {
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("series {%s}: le not strictly increasing (%v after %v)", sig, h.les[i], h.les[i-1])
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("series {%s}: cumulative count decreases at le=%v", sig, h.les[i])
			}
		}
		if !h.hasInf {
			return fmt.Errorf("series {%s}: missing +Inf bucket", sig)
		}
		if h.count == nil {
			return fmt.Errorf("series {%s}: missing _count", sig)
		}
		if h.sum == nil {
			return fmt.Errorf("series {%s}: missing _sum", sig)
		}
		if *h.count != h.infCount {
			return fmt.Errorf("series {%s}: _count %v != +Inf bucket %v", sig, *h.count, h.infCount)
		}
	}
	return nil
}
