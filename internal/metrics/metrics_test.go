package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"gpufs/internal/simtime"
)

// TestBucketBoundaries pins the log-linear geometry: exact buckets below
// histSubCount, then four linear sub-buckets per power of two, and every
// value landing in a bucket whose bounds contain it.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 3},
		{4, 4}, {5, 5}, {6, 6}, {7, 7},
		{8, 8}, {9, 8}, {10, 9}, {11, 9}, {12, 10}, {14, 11}, {15, 11},
		{16, 12}, {19, 12}, {20, 13}, {24, 14}, {28, 15}, {31, 15},
		{32, 16},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket bounds partition the space: bucketUpper(i)+1 is the smallest
	// value of bucket i+1, and every value maps into its own bounds. The
	// largest reachable bucket is 247 (major 62 of an int64); indices past
	// it are padding.
	const maxReachable = (62-histSubBits)*histSubCount + histSubCount + histSubCount - 1
	if got := bucketIndex(math.MaxInt64); got != maxReachable {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, maxReachable)
	}
	for i := 0; i < maxReachable; i++ {
		up := bucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, i, got)
		}
		if up+1 > 0 {
			if got := bucketIndex(up + 1); got != i+1 {
				t.Fatalf("value %d (past bucket %d) maps to bucket %d, want %d", up+1, i, got, i+1)
			}
		}
	}
	// Relative bucket width stays ≤ 25% beyond the exact range.
	for i := histSubCount; i < 40; i++ {
		lo := bucketUpper(i-1) + 1
		width := bucketUpper(i) - lo + 1
		if float64(width)/float64(lo) > 0.25+1e-9 {
			t.Errorf("bucket %d [%d,%d] wider than 25%% of its lower bound", i, lo, bucketUpper(i))
		}
	}
}

// TestHistogramObserve checks count/sum and negative clamping.
func TestHistogramObserve(t *testing.T) {
	r := New()
	h := r.DurationHistogram("gpufs_test_latency_seconds", "op", "read")
	h.ObserveDuration(1500 * simtime.Nanosecond)
	h.ObserveSpan(simtime.Time(100), simtime.Time(1100))
	h.Observe(-5) // clamps to 0
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1", len(snap))
	}
	s := snap[0]
	if s.Count != 3 {
		t.Fatalf("sample count = %d", s.Count)
	}
	if want := 2500e-9; math.Abs(s.Sum-want) > 1e-15 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// Cumulative buckets end at the full count.
	if n := len(s.Buckets); n == 0 || s.Buckets[n-1].Count != 3 {
		t.Fatalf("buckets %+v do not accumulate to 3", s.Buckets)
	}
}

// TestCounterMonotonicityConcurrent hammers one counter, one gauge, and
// one histogram from many goroutines (the -race hot loop) and checks the
// totals are exact — no lost updates, no torn snapshot reads.
func TestCounterMonotonicityConcurrent(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 10000
	c := r.Counter("gpufs_test_ops_total", "gpu", "0")
	h := r.Histogram("gpufs_test_occupancy")
	var wg sync.WaitGroup
	var sawDecrease sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := int64(-1)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 64))
				if v := c.Value(); v < last {
					sawDecrease.Store(w, v)
				} else {
					last = v
				}
			}
		}(w)
	}
	wg.Wait()
	sawDecrease.Range(func(k, v any) bool {
		t.Errorf("worker %v observed counter decrease to %v", k, v)
		return true
	})
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilSafety exercises every nil-receiver path the hot-path gates rely
// on.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.Max(9)
	h.Observe(1)
	h.ObserveDuration(simtime.Microsecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry must export nothing")
	}
}

// TestFuncCollectorsSum checks that several collectors registered on one
// identity are summed at snapshot time (the shared-registry idiom).
func TestFuncCollectorsSum(t *testing.T) {
	r := New()
	r.CounterFunc("gpufs_core_cache_hits_total", func() int64 { return 7 }, "gpu", "0")
	r.CounterFunc("gpufs_core_cache_hits_total", func() int64 { return 5 }, "gpu", "0")
	r.CounterFunc("gpufs_core_cache_hits_total", func() int64 { return 100 }, "gpu", "1")
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d samples, want 2", len(snap))
	}
	if snap[0].Value != 7+5 || snap[1].Value != 100 {
		t.Fatalf("collector sums wrong: %+v", snap)
	}
}

// TestKindConflictPanics pins the one-kind-per-family invariant.
func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("gpufs_test_x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("gpufs_test_x_total")
}

// TestPrometheusRoundTrip exports a representative registry and validates
// it with the strict parser: families, labels (including characters that
// need escaping), and histogram invariants must all survive.
func TestPrometheusRoundTrip(t *testing.T) {
	r := New()
	r.SetHelp("gpufs_rpc_requests_total", "RPC requests issued per ring shard")
	r.Counter("gpufs_rpc_requests_total", "gpu", "0", "shard", "0").Add(12)
	r.Counter("gpufs_rpc_requests_total", "gpu", "0", "shard", "1").Add(34)
	r.Gauge("gpufs_serve_queue_depth", "gpu", "0").Set(3)
	r.Counter("gpufs_test_weird_total", "path", "/a\"b\\c\nd").Inc()
	h := r.DurationHistogram("gpufs_core_op_latency_seconds", "gpu", "0", "op", "gread")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 317)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse failed: %v\n%s", err, buf.String())
	}
	rf := fams["gpufs_rpc_requests_total"]
	if rf == nil || rf.Type != "counter" || len(rf.Samples) != 2 {
		t.Fatalf("rpc family wrong: %+v", rf)
	}
	if rf.Help == "" {
		t.Fatal("HELP text lost")
	}
	if rf.Samples[0].Value+rf.Samples[1].Value != 46 {
		t.Fatalf("counter values wrong: %+v", rf.Samples)
	}
	wf := fams["gpufs_test_weird_total"]
	if wf == nil || wf.Samples[0].Labels["path"] != "/a\"b\\c\nd" {
		t.Fatalf("label escaping broken: %+v", wf)
	}
	hf := fams["gpufs_core_op_latency_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	var count, inf float64
	for _, s := range hf.Samples {
		if s.Name == "gpufs_core_op_latency_seconds_count" {
			count = s.Value
		}
		if s.Name == "gpufs_core_op_latency_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if count != 100 || inf != 100 {
		t.Fatalf("histogram count %v / +Inf %v, want 100/100", count, inf)
	}
}

// TestStrictParserRejects feeds the parser malformed expositions a loose
// parser would wave through.
func TestStrictParserRejects(t *testing.T) {
	bad := map[string]string{
		"sample before TYPE":  "gpufs_x_total 1\n",
		"bad name":            "# TYPE 0bad counter\n0bad 1\n",
		"bad value":           "# TYPE gpufs_x_total counter\ngpufs_x_total one\n",
		"duplicate series":    "# TYPE gpufs_x_total counter\ngpufs_x_total 1\ngpufs_x_total 2\n",
		"bad escape":          "# TYPE gpufs_x_total counter\ngpufs_x_total{a=\"\\q\"} 1\n",
		"unterminated labels": "# TYPE gpufs_x_total counter\ngpufs_x_total{a=\"v\" 1\n",
		"bad type":            "# TYPE gpufs_x_total banana\n",
		"duplicate label":     "# TYPE gpufs_x_total counter\ngpufs_x_total{a=\"1\",a=\"2\"} 1\n",
		"histogram no inf": "# TYPE gpufs_h histogram\n" +
			"gpufs_h_bucket{le=\"1\"} 1\ngpufs_h_sum 1\ngpufs_h_count 1\n",
		"histogram count mismatch": "# TYPE gpufs_h histogram\n" +
			"gpufs_h_bucket{le=\"1\"} 1\ngpufs_h_bucket{le=\"+Inf\"} 1\ngpufs_h_sum 1\ngpufs_h_count 2\n",
		"histogram non-cumulative": "# TYPE gpufs_h histogram\n" +
			"gpufs_h_bucket{le=\"1\"} 5\ngpufs_h_bucket{le=\"2\"} 3\n" +
			"gpufs_h_bucket{le=\"+Inf\"} 5\ngpufs_h_sum 1\ngpufs_h_count 5\n",
		"histogram le out of order": "# TYPE gpufs_h histogram\n" +
			"gpufs_h_bucket{le=\"2\"} 1\ngpufs_h_bucket{le=\"1\"} 2\n" +
			"gpufs_h_bucket{le=\"+Inf\"} 2\ngpufs_h_sum 1\ngpufs_h_count 2\n",
	}
	for name, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted malformed input:\n%s", name, text)
		}
	}
	// And a well-formed exposition with timestamps parses.
	good := "# HELP gpufs_x_total ok\n# TYPE gpufs_x_total counter\ngpufs_x_total{a=\"b\"} 1 1712000000\n"
	if _, err := ParsePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("rejected well-formed input: %v", err)
	}
}

// TestNDJSONExport checks every line is valid JSON with the documented
// fields.
func TestNDJSONExport(t *testing.T) {
	r := New()
	r.Counter("gpufs_pcie_bytes_total", "gpu", "0", "dir", "H2D").Add(4096)
	r.DurationHistogram("gpufs_pcie_latency_seconds", "gpu", "0", "dir", "H2D").Observe(1000)
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	for _, line := range lines {
		var s Sample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if !strings.HasPrefix(s.Name, "gpufs_pcie_") || s.Kind == "" {
			t.Fatalf("NDJSON sample missing fields: %q", line)
		}
	}
}

// TestSummaryTable smoke-checks the end-of-run renderer.
func TestSummaryTable(t *testing.T) {
	r := New()
	r.Counter("gpufs_core_cache_hits_total", "gpu", "0").Add(10)
	r.Counter("gpufs_core_cache_hits_total", "gpu", "1").Add(20)
	h := r.DurationHistogram("gpufs_rpc_service_time_seconds", "gpu", "0", "op", "read", "shard", "0")
	for i := 0; i < 100; i++ {
		h.Observe(int64(1000 + i))
	}
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gpufs_core_cache_hits_total") || !strings.Contains(out, "30") {
		t.Errorf("summary missing summed counter:\n%s", out)
	}
	if !strings.Contains(out, "n=100") || !strings.Contains(out, "p50=") {
		t.Errorf("summary missing histogram stats:\n%s", out)
	}
}

// TestQuantileMerge pins the quantile estimate and multi-series merge.
func TestQuantileMerge(t *testing.T) {
	r := New()
	a := r.Histogram("gpufs_test_vals", "gpu", "0")
	b := r.Histogram("gpufs_test_vals", "gpu", "1")
	for i := int64(0); i < 50; i++ {
		a.Observe(1) // 50 low observations
		b.Observe(64)
	}
	snap := r.Snapshot()
	merged := Sample{Count: snap[0].Count + snap[1].Count, Buckets: mergeCumulative(snap)}
	if q := quantile(merged, 0.25); q != 1 {
		t.Errorf("p25 = %v, want 1", q)
	}
	if q := quantile(merged, 0.99); q < 64 {
		t.Errorf("p99 = %v, want ≥ 64", q)
	}
}
