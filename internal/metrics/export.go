package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promQuote renders a label value with Prometheus escaping and quotes.
func promQuote(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// promLabels renders {k="v",...} for base labels plus optional extras
// (used for the le label of histogram buckets). Empty when no labels.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + "=" + promQuote(l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation, with +Inf spelled that way.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one TYPE line per
// family, HELP lines where set, histograms expanded into cumulative
// _bucket{le=...} series plus _sum and _count. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	samples := r.Snapshot()
	var lastFamily string
	for _, s := range samples {
		if s.Name != lastFamily {
			if help := r.helpFor(s.Name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, strings.ReplaceAll(help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		if err := writePromSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, s Sample) error {
	if s.Kind != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels), s.Value)
		return err
	}
	for _, b := range s.Buckets {
		le := Label{Key: "le", Value: formatFloat(b.LE)}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, le), b.Count); err != nil {
			return err
		}
	}
	inf := Label{Key: "le", Value: "+Inf"}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, inf), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count)
	return err
}

// WriteNDJSON writes one JSON object per series, newline-delimited, in
// snapshot order. Histogram buckets are cumulative, bounds in the export
// unit (seconds for duration histograms). Nil-safe.
func (r *Registry) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range r.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// quantile estimates the q-th quantile (0 < q ≤ 1) of a histogram sample
// from its cumulative buckets (upper-bound attribution), 0 when empty.
func quantile(s Sample, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= rank {
			return b.LE
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].LE
	}
	return 0
}

// Quantile estimates the q-th quantile of the named histogram family,
// merged across every label set, in the family's export unit (seconds for
// duration histograms). The second return is the merged sample count.
// (0, 0) when the registry is nil or the family is absent or empty —
// callers distinguish "no data" by the count. Estimation is upper-bound
// attribution over the log-linear buckets, like the end-of-run summary.
func (r *Registry) Quantile(name string, q float64) (float64, int64) {
	if r == nil {
		return 0, 0
	}
	var fam []Sample
	var count int64
	for _, s := range r.Snapshot() {
		if s.Name == name && s.Kind == "histogram" {
			fam = append(fam, s)
			count += s.Count
		}
	}
	if len(fam) == 0 || count == 0 {
		return 0, 0
	}
	merged := Sample{Kind: "histogram", Count: count, Buckets: mergeCumulative(fam)}
	return quantile(merged, q), count
}

// subsystemOf extracts the subsystem token from a metric name of the
// documented gpufs_<subsystem>_... schema ("" otherwise).
func subsystemOf(name string) string {
	rest, ok := strings.CutPrefix(name, "gpufs_")
	if !ok {
		return ""
	}
	sub, _, ok := strings.Cut(rest, "_")
	if !ok {
		return ""
	}
	return sub
}

// WriteSummary renders the top-line, human-readable end-of-run table:
// one row per metric family, grouped by subsystem, counters and gauges
// summed across label sets, histograms shown as count/p50/p99. Nil-safe.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	samples := r.Snapshot()

	type row struct {
		subsystem, metric, value string
	}
	var rows []row
	for i := 0; i < len(samples); {
		j := i
		var total int64
		var count int64
		merged := Sample{Kind: samples[i].Kind}
		for ; j < len(samples) && samples[j].Name == samples[i].Name; j++ {
			total += samples[j].Value
			count += samples[j].Count
			merged.Sum += samples[j].Sum
			merged.Buckets = append(merged.Buckets, samples[j].Buckets...)
		}
		s := samples[i]
		rw := row{subsystem: subsystemOf(s.Name), metric: s.Name}
		if s.Kind == "histogram" {
			// Re-accumulate the concatenated per-series cumulative
			// buckets into one merged cumulative distribution.
			merged.Count = count
			merged.Buckets = mergeCumulative(samples[i:j])
			unit := ""
			scale := 1.0
			if strings.HasSuffix(s.Name, "_seconds") {
				unit, scale = "µs", 1e6
			}
			rw.value = fmt.Sprintf("n=%d p50=%.4g%s p99=%.4g%s mean=%.4g%s",
				count,
				quantile(merged, 0.50)*scale, unit,
				quantile(merged, 0.99)*scale, unit,
				safeDiv(merged.Sum, float64(count))*scale, unit)
		} else {
			rw.value = fmt.Sprintf("%d", total)
		}
		rows = append(rows, rw)
		i = j
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].subsystem != rows[b].subsystem {
			return rows[a].subsystem < rows[b].subsystem
		}
		return rows[a].metric < rows[b].metric
	})

	wMetric := len("metric")
	for _, rw := range rows {
		if len(rw.metric) > wMetric {
			wMetric = len(rw.metric)
		}
	}
	if _, err := fmt.Fprintf(w, "%-10s %-*s %s\n", "subsystem", wMetric, "metric", "value"); err != nil {
		return err
	}
	for _, rw := range rows {
		sub := rw.subsystem
		if sub == "" {
			sub = "-"
		}
		if _, err := fmt.Fprintf(w, "%-10s %-*s %s\n", sub, wMetric, rw.metric, rw.value); err != nil {
			return err
		}
	}
	return nil
}

// mergeCumulative merges the cumulative bucket lists of several samples
// of one histogram family into a single cumulative list over the union
// of bounds.
func mergeCumulative(samples []Sample) []Bucket {
	// Convert each to per-bucket deltas keyed by bound, sum, re-accumulate.
	deltas := map[float64]int64{}
	for _, s := range samples {
		prev := int64(0)
		for _, b := range s.Buckets {
			deltas[b.LE] += b.Count - prev
			prev = b.Count
		}
	}
	bounds := make([]float64, 0, len(deltas))
	for le := range deltas {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	out := make([]Bucket, 0, len(bounds))
	cum := int64(0)
	for _, le := range bounds {
		cum += deltas[le]
		out = append(out, Bucket{LE: le, Count: cum})
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
