// Package metrics is a virtual-time-aware metrics registry for the GPUfs
// simulation: counters, gauges, and log-linear latency histograms keyed by
// subsystem/op labels, exportable as Prometheus text format and NDJSON.
//
// Two properties shape the design:
//
//   - Observation-only. Every instrument records values the simulation
//     already computed (virtual timestamps read off simtime clocks, byte
//     counts, queue depths). Nothing here acquires a simtime.Resource or
//     advances a clock, so enabling metrics NEVER perturbs virtual timing:
//     a run with metrics on is bit-identical in virtual time to the same
//     run with metrics off.
//   - Near-zero cost when disabled. Subsystems hold a nil instrument
//     struct when metrics are off and guard every hook with one pointer
//     test — the same idiom as trace.Tracer. The registry itself is only
//     touched at attach time and at snapshot time, never per-operation.
//
// Instruments are identified by (name, label pairs); GetOrCreate semantics
// make it safe to share one Registry across several gpufs.Systems (the
// bench driver aggregates a whole experiment sweep into one registry) and
// to re-resolve the same handle from multiple goroutines. Existing atomic
// counters elsewhere in the tree (core.CacheStats, rpc transport counters,
// pcie byte counters) are surfaced through CounterFunc/GaugeFunc
// collectors read at snapshot time, so those hot paths pay nothing new.
//
// Histograms are log-linear over non-negative int64 observations: buckets
// 0..3 are exact, then each power-of-two major is split into 4 linear
// sub-buckets (2 significant bits everywhere, ≤ 25% relative bucket
// width). Duration histograms observe virtual nanoseconds and export in
// seconds; value histograms (batch occupancy, scatter segments) export
// raw. See DESIGN.md §10 for the label schema.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gpufs/internal/simtime"
)

// Counter is a monotonically increasing int64 instrument. All methods are
// safe on a nil receiver (no-ops), so callers may hold optional handles.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 instrument. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Max raises the gauge to v if v is larger (monotone high-water mark).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Log-linear histogram geometry: histSubBits significant bits beyond the
// leading one, i.e. each power-of-two range [2^m, 2^(m+1)) is split into
// histSubCount equal sub-buckets. 256 buckets cover the full non-negative
// int64 range ((62-2)*4 + 4 + 4 = 248 indices used).
const (
	histSubBits  = 2
	histSubCount = 1 << histSubBits
	histBuckets  = 256
)

// bucketIndex maps a non-negative observation to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	major := 63 - bits.LeadingZeros64(uint64(v))
	idx := (major-histSubBits)*histSubCount + histSubCount +
		int((uint64(v)>>(uint(major)-histSubBits))&(histSubCount-1))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i: the largest
// observation that lands in it. Exact for every bucket except the
// catch-all last one.
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	major := (i-histSubCount)/histSubCount + histSubBits
	sub := (i - histSubCount) % histSubCount
	lower := int64(1)<<uint(major) | int64(sub)<<uint(major-histSubBits)
	return lower + int64(1)<<uint(major-histSubBits) - 1
}

// Histogram is a lock-free log-linear histogram of non-negative int64
// observations. Duration histograms observe virtual nanoseconds (scale
// 1e-9: bounds and sum export in seconds); value histograms export raw.
// Nil-safe like Counter.
type Histogram struct {
	scale   float64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a virtual duration (in nanoseconds).
func (h *Histogram) ObserveDuration(d simtime.Duration) { h.Observe(int64(d)) }

// ObserveSpan records the virtual span end−start, as read off a clock the
// simulation already advanced — the observation-only histogram hook.
func (h *Histogram) ObserveSpan(start, end simtime.Time) { h.Observe(int64(end.Sub(start))) }

// Count reads the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// instrument kinds for conflict checks and export.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// Label is one key/value pair of a series' identity.
type Label struct{ Key, Value string }

// series is one (name, labels) instrument. Exactly one of c/g/h/fns is
// populated; fns collectors of the same identity are summed at snapshot.
type series struct {
	name   string
	labels []Label
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fns    []func() int64
}

// Registry owns a set of instruments. The zero value is not usable; call
// New. A nil *Registry is safe to snapshot (empty) and to test with
// Enabled (false); instrument lookup methods require a non-nil receiver —
// subsystems gate attachment on the registry pointer itself.
type Registry struct {
	enabled atomic.Bool

	mu     sync.Mutex
	series map[string]*series
	kinds  map[string]kind // family name → kind (one kind per name)
	help   map[string]string
}

// New returns an enabled, empty registry.
func New() *Registry {
	r := &Registry{
		series: make(map[string]*series),
		kinds:  make(map[string]kind),
		help:   make(map[string]string),
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether the registry collects; nil-safe.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles collection-side gates that consult Enabled.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// SetHelp records the HELP text exported for the metric family name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// seriesKey canonicalizes (name, sorted labels) into a map key.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// parseLabels turns a variadic k1,v1,k2,v2 list into sorted Labels.
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %q", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// get resolves-or-creates the series, enforcing one kind per family name.
func (r *Registry) get(name string, k kind, kv []string) *series {
	labels := parseLabels(name, kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.kinds[name]; ok && have != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, have, k))
	}
	r.kinds[name] = k
	s := r.series[key]
	if s == nil {
		s = &series{name: name, labels: labels, kind: k}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{scale: 1}
		}
		r.series[key] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, kindCounter, labels).c
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, kindGauge, labels).g
}

// Histogram returns the raw-value histogram for (name, labels).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.get(name, kindHistogram, labels).h
}

// DurationHistogram returns the histogram for (name, labels) whose
// observations are virtual nanoseconds and whose export unit is seconds.
func (r *Registry) DurationHistogram(name string, labels ...string) *Histogram {
	h := r.get(name, kindHistogram, labels).h
	h.scale = 1e-9
	return h
}

// CounterFunc registers fn as a counter collector for (name, labels),
// read at snapshot time. Several collectors on one identity are summed —
// the idiom for surfacing pre-existing atomic counters (CacheStats, rpc
// transport counters) without adding hot-path work, and for aggregating
// across Systems sharing a registry. fn must be safe to call from any
// goroutine and must not call back into the registry.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	s := r.get(name, kindCounter, labels)
	r.mu.Lock()
	s.c = nil
	s.fns = append(s.fns, fn)
	r.mu.Unlock()
}

// GaugeFunc registers fn as a gauge collector for (name, labels); like
// CounterFunc, several collectors on one identity are summed.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	s := r.get(name, kindGauge, labels)
	r.mu.Lock()
	s.g = nil
	s.fns = append(s.fns, fn)
	r.mu.Unlock()
}

// Bucket is one cumulative histogram bucket: Count observations ≤ LE (in
// the histogram's export unit).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Sample is one series' state at snapshot time.
type Sample struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	// Value carries counters and gauges.
	Value int64 `json:"value,omitempty"`
	// Count, Sum, Buckets carry histograms; Sum is in the export unit.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// LabelString renders the sample's labels as k="v" pairs (empty when
// unlabeled), the Prometheus inner form.
func (s Sample) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = l.Key + "=" + promQuote(l.Value)
	}
	return strings.Join(parts, ",")
}

// Snapshot reads every series into a stable, sorted sample list. Nil-safe
// (returns nil). Collectors run with the registry lock held; they must
// not re-enter the registry.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.series))
	for _, s := range r.series {
		sm := Sample{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch {
		case len(s.fns) > 0:
			for _, fn := range s.fns {
				sm.Value += fn()
			}
		case s.c != nil:
			sm.Value = s.c.Value()
		case s.g != nil:
			sm.Value = s.g.Value()
		case s.h != nil:
			sm.Count = s.h.count.Load()
			sm.Sum = float64(s.h.sum.Load()) * s.h.scale
			cum := int64(0)
			for i := 0; i < histBuckets; i++ {
				n := s.h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				sm.Buckets = append(sm.Buckets, Bucket{
					LE:    float64(bucketUpper(i)) * s.h.scale,
					Count: cum,
				})
			}
		}
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelString() < out[j].LabelString()
	})
	return out
}

// helpFor returns the HELP text for name ("" when unset).
func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}
