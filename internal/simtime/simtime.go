// Package simtime provides the virtual-time accounting layer used by the
// GPUfs hardware simulation.
//
// The simulator mixes two kinds of concurrency. Correctness-relevant
// concurrency (the lock-free buffer cache, RPC queues, eviction races) is
// real: threadblocks are goroutines and contend on real atomics. Performance,
// on the other hand, is accounted in virtual nanoseconds so that benchmark
// results are deterministic in shape and calibrated to the hardware constants
// reported in the GPUfs paper (PCIe bandwidth, disk bandwidth, and so on).
//
// The core abstraction is the Resource: a serialized timeline such as a DMA
// channel, a disk, or a GPU multiprocessor. An execution context (threadblock,
// CPU daemon) carries its own local virtual clock and advances it by reserving
// time on resources:
//
//	start = max(localNow, resource.nextFree)
//	end   = start + duration
//
// This gives queueing and contention effects — two blocks transferring over
// the same PCIe direction serialize, overlapped disk reads and DMA pipelines
// overlap — without a full discrete-event core.
package simtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t advanced by d. Negative durations are clamped to zero so a
// mis-specified cost can never move a clock backwards.
func (t Time) Add(d Duration) Time {
	if d < 0 {
		return t
	}
	return t + Time(d)
}

// Sub returns the duration from u to t (t - u), clamped at zero.
func (t Time) Sub(u Time) Duration {
	if t < u {
		return 0
	}
	return Duration(t - u)
}

// Seconds reports the duration in floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration in floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the timestamp in floating-point seconds since simulation
// start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Rate is a transfer or processing rate in bytes per virtual second.
type Rate float64

// Common rates.
const (
	KBps Rate = 1e3
	MBps Rate = 1e6
	GBps Rate = 1e9
)

// TransferTime returns how long moving n bytes takes at rate r. A zero or
// negative rate means "infinitely fast" and costs nothing; this is used by
// the benchmark harness to exclude individual cost components (Figure 5).
func TransferTime(n int64, r Rate) Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / float64(r) * float64(Second))
}

// Resource is a serialized virtual-time resource: at most one reservation
// occupies it at any virtual instant. Reservations are calendar-based:
// Acquire books the earliest free interval at or after the caller's time,
// including gaps left between earlier bookings. Backfilling matters because
// execution contexts are real goroutines whose *call* order is unrelated to
// their *virtual* order — a context that is virtually early must not queue
// behind one that merely called first. Resources are safe for concurrent
// use.
type Resource struct {
	name string

	mu   sync.Mutex
	cal  []ival // sorted, disjoint busy intervals
	busy Duration
	ops  int64
}

type ival struct{ start, end Time }

// NewResource returns a named, idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves d of exclusive time on r, starting no earlier than now,
// and returns the reservation's start and end timestamps. The caller's
// local clock should advance to end.
func (r *Resource) Acquire(now Time, d Duration) (start, end Time) {
	if now < 0 {
		now = 0
	}
	if d <= 0 {
		return now, now
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops++
	r.busy += d

	// First interval that ends after now; earlier intervals are
	// irrelevant.
	i := sort.Search(len(r.cal), func(i int) bool { return r.cal[i].end > now })
	start = now
	for ; i < len(r.cal); i++ {
		if start.Add(d) <= r.cal[i].start {
			break // fits in the gap before interval i
		}
		if r.cal[i].end > start {
			start = r.cal[i].end
		}
	}
	end = start.Add(d)
	r.insertLocked(ival{start, end}, i)
	return start, end
}

// insertLocked places iv at index i, merging with touching neighbours.
func (r *Resource) insertLocked(iv ival, i int) {
	// Merge with predecessor.
	if i > 0 && r.cal[i-1].end == iv.start {
		r.cal[i-1].end = iv.end
		// Merge with successor too?
		if i < len(r.cal) && r.cal[i].start == iv.end {
			r.cal[i-1].end = r.cal[i].end
			r.cal = append(r.cal[:i], r.cal[i+1:]...)
		}
		return
	}
	// Merge with successor.
	if i < len(r.cal) && r.cal[i].start == iv.end {
		r.cal[i].start = iv.start
		return
	}
	r.cal = append(r.cal, ival{})
	copy(r.cal[i+1:], r.cal[i:])
	r.cal[i] = iv
}

// Occupy books the half-open interval [from, to) regardless of existing
// reservations (merging overlaps). It models work whose duration is known
// only after the fact, such as the RPC daemon staying busy through a host
// file operation.
func (r *Resource) Occupy(from, to Time) {
	if to <= from {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.busy += to.Sub(from)

	i := sort.Search(len(r.cal), func(i int) bool { return r.cal[i].end >= from })
	j := i
	start, end := from, to
	for j < len(r.cal) && r.cal[j].start <= end {
		if r.cal[j].start < start {
			start = r.cal[j].start
		}
		if r.cal[j].end > end {
			end = r.cal[j].end
		}
		j++
	}
	merged := ival{start, end}
	r.cal = append(r.cal[:i], append([]ival{merged}, r.cal[j:]...)...)
}

// AcquireAt is like Acquire but also returns the queueing delay the caller
// experienced before its reservation began.
func (r *Resource) AcquireAt(now Time, d Duration) (start, end Time, queued Duration) {
	start, end = r.Acquire(now, d)
	return start, end, start.Sub(now)
}

// Probe reports when a reservation of d starting no earlier than now could
// begin, without booking it.
func (r *Resource) Probe(now Time, d Duration) Time {
	if now < 0 {
		now = 0
	}
	if d <= 0 {
		return now
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.cal), func(i int) bool { return r.cal[i].end > now })
	start := now
	for ; i < len(r.cal); i++ {
		if start.Add(d) <= r.cal[i].start {
			break
		}
		if r.cal[i].end > start {
			start = r.cal[i].end
		}
	}
	return start
}

// NextFree reports the first instant after every existing reservation.
func (r *Resource) NextFree() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.cal) == 0 {
		return 0
	}
	return r.cal[len(r.cal)-1].end
}

// Busy reports the total reserved (busy) time accumulated on the resource.
func (r *Resource) Busy() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Ops reports the number of reservations made on the resource.
func (r *Resource) Ops() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.cal, r.busy, r.ops = nil, 0, 0
	r.mu.Unlock()
}

// Pool is a set of interchangeable parallel resources (for example the
// multiple asynchronous CPU–GPU DMA channels of §4.3). Acquire picks the
// channel that can start the earliest.
type Pool struct {
	name string
	res  []*Resource
	mu   sync.Mutex
}

// NewPool creates a pool of n parallel resources.
func NewPool(name string, n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{name: name}
	for i := 0; i < n; i++ {
		p.res = append(p.res, NewResource(fmt.Sprintf("%s[%d]", name, i)))
	}
	return p
}

// Size reports the number of parallel channels in the pool.
func (p *Pool) Size() int { return len(p.res) }

// Acquire reserves d on the pool member that can start the earliest.
func (p *Pool) Acquire(now Time, d Duration) (start, end Time) {
	// The selection and reservation must be atomic with respect to other
	// acquirers, otherwise two callers could pick the same "least loaded"
	// channel and serialize needlessly.
	p.mu.Lock()
	best := p.res[0]
	bestStart := best.Probe(now, d)
	for _, r := range p.res[1:] {
		if s := r.Probe(now, d); s < bestStart {
			best, bestStart = r, s
		}
	}
	start, end = best.Acquire(now, d)
	p.mu.Unlock()
	return start, end
}

// Busy reports the total busy time summed across all channels.
func (p *Pool) Busy() Duration {
	var total Duration
	for _, r := range p.res {
		total += r.Busy()
	}
	return total
}

// Reset returns every channel to idle.
func (p *Pool) Reset() {
	for _, r := range p.res {
		r.Reset()
	}
}

// WorkerPool is a set of parallel serialized workers addressed by index.
// Unlike Pool, the CALLER picks the member — for example by ring-shard
// affinity — so work pinned to one worker keeps FIFO order on that worker's
// timeline while distinct workers overlap in virtual time. The RPC host
// service uses it to model the paper's parallel daemon threads (§4.2).
type WorkerPool struct {
	res []*Resource
}

// NewWorkerPool creates a pool of n indexed workers.
func NewWorkerPool(name string, n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{}
	for i := 0; i < n; i++ {
		p.res = append(p.res, NewResource(fmt.Sprintf("%s[%d]", name, i)))
	}
	return p
}

// Size reports the number of workers.
func (p *WorkerPool) Size() int { return len(p.res) }

// Worker returns member i mod Size, so any non-negative affinity key is a
// valid index.
func (p *WorkerPool) Worker(i int) *Resource {
	return p.res[i%len(p.res)]
}

// Busy reports the total busy time summed across all workers.
func (p *WorkerPool) Busy() Duration {
	var total Duration
	for _, r := range p.res {
		total += r.Busy()
	}
	return total
}

// Reset returns every worker to idle.
func (p *WorkerPool) Reset() {
	for _, r := range p.res {
		r.Reset()
	}
}

// Meter tracks the maximum timestamp observed across many execution contexts;
// the final value is the makespan of a simulated run.
type Meter struct {
	max atomic.Int64
}

// Observe folds a context's final timestamp into the meter.
func (m *Meter) Observe(t Time) {
	for {
		cur := m.max.Load()
		if int64(t) <= cur || m.max.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Max reports the largest observed timestamp.
func (m *Meter) Max() Time { return Time(m.max.Load()) }

// Reset clears the meter.
func (m *Meter) Reset() { m.max.Store(0) }

// Clock is a monotone local clock for one execution context. It is not safe
// for concurrent use; each context owns its clock.
type Clock struct {
	now Time
}

// NewClock returns a clock set to the given start time.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d Duration) Time {
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Use reserves d on resource r starting at the clock's current time and
// advances the clock to the reservation's end.
func (c *Clock) Use(r *Resource, d Duration) Time {
	_, end := r.Acquire(c.now, d)
	c.now = end
	return end
}

// UsePool reserves d on the earliest-available member of pool p and advances
// the clock to the reservation's end.
func (c *Clock) UsePool(p *Pool, d Duration) Time {
	_, end := p.Acquire(c.now, d)
	c.now = end
	return end
}
