package simtime

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestTransferTime(t *testing.T) {
	cases := []struct {
		n    int64
		r    Rate
		want Duration
	}{
		{1e6, MBps, Second},
		{5e5, MBps, Second / 2},
		{0, MBps, 0},
		{-5, MBps, 0},
		{1e9, 0, 0},  // zero rate = free (Figure 5 exclusions)
		{1e9, -1, 0}, // negative rate = free
		{1e9, GBps, Second},
	}
	for _, c := range cases {
		if got := TransferTime(c.n, c.r); got != c.want {
			t.Errorf("TransferTime(%d, %v) = %v, want %v", c.n, c.r, got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	if got := Time(100).Add(-5); got != 100 {
		t.Errorf("negative durations must not move clocks backwards: got %v", got)
	}
	if got := Time(100).Add(5); got != 105 {
		t.Errorf("Add: got %v", got)
	}
	if got := Time(50).Sub(100); got != 0 {
		t.Errorf("Sub clamps at zero: got %v", got)
	}
	if got := Time(100).Sub(40); got != 60 {
		t.Errorf("Sub: got %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		2 * Second:         "2.000s",
		3 * Millisecond:    "3.000ms",
		7 * Microsecond:    "7.000µs",
		42 * Nanosecond:    "42ns",
		1500 * Millisecond: "1.500s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("x")
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first acquire [%d,%d], want [0,100]", s1, e1)
	}
	s2, e2 := r.Acquire(0, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second acquire [%d,%d], want [100,200]", s2, e2)
	}
	if r.Busy() != 200 {
		t.Fatalf("busy = %v, want 200", r.Busy())
	}
	if r.Ops() != 2 {
		t.Fatalf("ops = %d, want 2", r.Ops())
	}
}

func TestResourceBackfill(t *testing.T) {
	r := NewResource("x")
	// A caller far in the future reserves [1000, 1100].
	r.Acquire(1000, 100)
	// A virtually-earlier caller must NOT queue behind it.
	s, e := r.Acquire(0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("backfill failed: got [%d,%d], want [0,100]", s, e)
	}
	// A reservation that does not fit in the remaining gap goes after.
	s, e = r.Acquire(50, 950)
	if s != 1100 {
		t.Fatalf("oversized reservation should go after [1000,1100]: start %d", s)
	}
	_ = e
}

func TestResourceGapFilling(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 10)   // [0,10]
	r.Acquire(100, 10) // [100,110]
	// Fits exactly in the gap.
	s, e := r.Acquire(10, 90)
	if s != 10 || e != 100 {
		t.Fatalf("gap fill: got [%d,%d], want [10,100]", s, e)
	}
	// Calendar is now one merged interval; NextFree reflects the last end.
	if nf := r.NextFree(); nf != 110 {
		t.Fatalf("NextFree = %v, want 110", nf)
	}
}

func TestResourceZeroDuration(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	s, e := r.Acquire(50, 0)
	if s != 50 || e != 50 {
		t.Fatalf("zero-duration acquire should be free: [%d,%d]", s, e)
	}
	if r.Ops() != 1 {
		t.Fatalf("zero acquires should not count as ops: %d", r.Ops())
	}
}

func TestResourceOccupy(t *testing.T) {
	r := NewResource("x")
	r.Occupy(100, 200)
	s, _ := r.Acquire(150, 10)
	if s != 200 {
		t.Fatalf("acquire inside occupied range: start %d, want 200", s)
	}
	// Overlapping occupy merges.
	r.Occupy(150, 300)
	s, _ = r.Acquire(120, 10)
	if s != 300 {
		t.Fatalf("after merged occupy, start %d, want 300", s)
	}
	// Inverted/empty occupy is a no-op.
	before := r.Busy()
	r.Occupy(500, 500)
	r.Occupy(500, 400)
	if r.Busy() != before {
		t.Fatalf("empty occupy changed busy time")
	}
}

func TestResourceProbe(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	if got := r.Probe(0, 50); got != 100 {
		t.Fatalf("probe: %v, want 100", got)
	}
	// Probe must not reserve.
	s, _ := r.Acquire(0, 50)
	if s != 100 {
		t.Fatalf("after probe, acquire start %d, want 100", s)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	r.Reset()
	if r.Busy() != 0 || r.Ops() != 0 || r.NextFree() != 0 {
		t.Fatalf("reset did not clear state")
	}
	s, _ := r.Acquire(0, 10)
	if s != 0 {
		t.Fatalf("after reset, acquire start %d", s)
	}
}

// TestResourceCalendarInvariants property-checks that any sequence of
// acquires yields disjoint reservations whose total equals the busy
// counter.
func TestResourceCalendarInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("prop")
		type ival struct{ s, e Time }
		var got []ival
		var total Duration
		for i := 0; i < 200; i++ {
			now := Time(rng.Int63n(10_000))
			d := Duration(rng.Int63n(500) + 1)
			s, e := r.Acquire(now, d)
			if s < now || e != s.Add(d) {
				return false
			}
			got = append(got, ival{s, e})
			total += d
		}
		if r.Busy() != total {
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i].s < got[j].s })
		for i := 1; i < len(got); i++ {
			if got[i].s < got[i-1].e {
				return false // overlap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceConcurrent(t *testing.T) {
	r := NewResource("x")
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := Time(0)
			for i := 0; i < perG; i++ {
				_, end := r.Acquire(now, 7)
				now = end
			}
		}(g)
	}
	wg.Wait()
	if want := Duration(goroutines * perG * 7); r.Busy() != want {
		t.Fatalf("busy = %v, want %v", r.Busy(), want)
	}
	// Perfect packing: the calendar should be exactly as long as the work.
	if nf := r.NextFree(); nf != Time(goroutines*perG*7) {
		t.Fatalf("NextFree = %v, want %v (no holes for saturating load)", nf, goroutines*perG*7)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool("dma", 4)
	// Four simultaneous transfers proceed in parallel.
	for i := 0; i < 4; i++ {
		s, _ := p.Acquire(0, 100)
		if s != 0 {
			t.Fatalf("channel %d: start %v, want 0", i, s)
		}
	}
	// The fifth queues.
	s, _ := p.Acquire(0, 100)
	if s != 100 {
		t.Fatalf("fifth acquire start %v, want 100", s)
	}
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	if p.Busy() != 500 {
		t.Fatalf("busy = %v", p.Busy())
	}
	p.Reset()
	if p.Busy() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Observe(Time(i * 10))
		}(i)
	}
	wg.Wait()
	if m.Max() != 310 {
		t.Fatalf("max = %v, want 310", m.Max())
	}
	m.Reset()
	if m.Max() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(5)
	if c.Now() != 5 {
		t.Fatalf("start")
	}
	c.Advance(10)
	if c.Now() != 15 {
		t.Fatalf("advance")
	}
	c.AdvanceTo(10) // backwards: no-op
	if c.Now() != 15 {
		t.Fatalf("AdvanceTo must be monotone")
	}
	c.AdvanceTo(20)
	if c.Now() != 20 {
		t.Fatalf("AdvanceTo forward")
	}
	r := NewResource("x")
	r.Acquire(0, 100)
	c.Use(r, 10)
	if c.Now() != 110 {
		t.Fatalf("Use should advance through the queue: %v", c.Now())
	}
	p := NewPool("y", 2)
	c.UsePool(p, 10)
	if c.Now() != 120 {
		t.Fatalf("UsePool: %v", c.Now())
	}
}
