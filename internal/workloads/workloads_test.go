package workloads

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"gpufs"
)

const testScale = 1.0 / 256

func newSystem(t *testing.T) *gpufs.System {
	t.Helper()
	cfg := gpufs.ScaledConfig(testScale)
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := MakeDictionary(500)
	got := DecodeDictionary(d.Encode())
	if !reflect.DeepEqual(d.Words, got.Words) {
		t.Fatalf("dictionary round trip mismatch: %d words in, %d out", len(d.Words), len(got.Words))
	}
	seen := make(map[string]bool)
	for _, w := range d.Words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) >= WordAlign {
			t.Fatalf("word %q exceeds alignment", w)
		}
	}
}

func TestGrepAgreement(t *testing.T) {
	sys := newSystem(t)
	dict := MakeDictionary(200)
	if err := sys.WriteHostFile("/grep/dict.txt", dict.Encode()); err != nil {
		t.Fatal(err)
	}
	tree, err := MakeTree(sys.Host(), sys.HostClock(), TreeSpec{
		Dir:        "/grep/src",
		NumFiles:   40,
		TotalBytes: 1 << 20,
		Text:       TextSpec{Dict: dict, DictFraction: 0.5, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := sys.Config()
	gres, err := GrepGPUfs(sys, 0, "/grep/dict.txt", tree.ListPath, "/grep/out.txt", cfg.GrepGPURate, 8, 128, 0)
	if err != nil {
		t.Fatalf("GrepGPUfs: %v", err)
	}
	cres, err := GrepCPU(sys.Host(), dict, tree.Files, cfg.NumCPUCores, cfg.GrepCPURate)
	if err != nil {
		t.Fatalf("GrepCPU: %v", err)
	}
	vres, err := GrepVanillaGPU(sys, 1, dict, tree.Files, cfg.GrepGPURate, 8, 128, 1<<20)
	if err != nil {
		t.Fatalf("GrepVanillaGPU: %v", err)
	}

	if !reflect.DeepEqual(gres.Counts, cres.Counts) {
		t.Errorf("GPUfs and CPU grep disagree: %d vs %d entries", len(gres.Counts), len(cres.Counts))
	}
	if !reflect.DeepEqual(gres.Counts, vres.Counts) {
		t.Errorf("GPUfs and vanilla grep disagree: %d vs %d entries", len(gres.Counts), len(vres.Counts))
	}
	if len(gres.Counts) == 0 {
		t.Errorf("no matches found; generator should inject dictionary words")
	}
	if gres.Elapsed <= 0 || cres.Elapsed <= 0 || vres.Elapsed <= 0 {
		t.Errorf("non-positive elapsed times: %v %v %v", gres.Elapsed, cres.Elapsed, vres.Elapsed)
	}
	// Shape check: the GPU should beat the 8-core CPU clearly.
	if cres.Elapsed < gres.Elapsed {
		t.Errorf("CPU grep (%v) should be slower than GPU grep (%v)", cres.Elapsed, gres.Elapsed)
	}
}

func TestImageSearchAgainstTruth(t *testing.T) {
	sys := newSystem(t)
	w, err := MakeImageWorkload(sys.Host(), sys.HostClock(), ImageSpec{
		Dir:      "/img",
		DBImages: []int{120, 100, 130},
		Queries:  24,
		Plan:     MatchRandom,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}

	gres, err := ImageSearchGPUfs(sys, w, 1, 8, 128, "/img/out.bin")
	if err != nil {
		t.Fatalf("ImageSearchGPUfs: %v", err)
	}
	if !reflect.DeepEqual(gres.Matches, w.Truth) {
		t.Errorf("GPUfs matches disagree with ground truth\n got: %v\nwant: %v", gres.Matches, w.Truth)
	}

	cres, err := ImageSearchCPU(sys.Host(), w, 8, sys.Config().CPUFlops)
	if err != nil {
		t.Fatalf("ImageSearchCPU: %v", err)
	}
	if !reflect.DeepEqual(cres.Matches, w.Truth) {
		t.Errorf("CPU matches disagree with ground truth")
	}
	if cres.Elapsed < gres.Elapsed {
		t.Errorf("CPU (%v) should be slower than one GPU (%v)", cres.Elapsed, gres.Elapsed)
	}
}

func TestImageSearchNoMatchScansEverything(t *testing.T) {
	sys := newSystem(t)
	w, err := MakeImageWorkload(sys.Host(), sys.HostClock(), ImageSpec{
		Dir:      "/img2",
		DBImages: []int{60, 60},
		Queries:  8,
		Plan:     MatchNone,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ImageSearchGPUfs(sys, w, 1, 4, 128, "/img2/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	for q, m := range res.Matches {
		if m != NoMatch {
			t.Errorf("query %d unexpectedly matched %v", q, m)
		}
	}
}

func TestImageSearchMultiGPUFasterAndConsistent(t *testing.T) {
	sys := newSystem(t)
	// Enough queries that comparison arithmetic dominates the fixed
	// per-GPU database transfer, as in the paper's configuration.
	spec := ImageSpec{
		Dir:      "/img3",
		DBImages: []int{160, 160},
		Queries:  512,
		Plan:     MatchNone,
		Seed:     11,
	}
	w, err := MakeImageWorkload(sys.Host(), sys.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ImageSearchGPUfs(sys, w, 1, 8, 128, "/img3/out1.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Fresh system so buffer caches start cold for the multi-GPU run too.
	sys2 := newSystem(t)
	if _, err := MakeImageWorkload(sys2.Host(), sys2.HostClock(), spec); err != nil {
		t.Fatal(err)
	}
	four, err := ImageSearchGPUfs(sys2, w, 4, 8, 128, "/img3/out4.bin")
	if err != nil {
		t.Fatal(err)
	}
	if four.Elapsed >= one.Elapsed {
		t.Errorf("4 GPUs (%v) should beat 1 GPU (%v)", four.Elapsed, one.Elapsed)
	}
	if !reflect.DeepEqual(one.Matches, four.Matches) {
		t.Errorf("single- and multi-GPU results disagree")
	}
}

func TestMatVecAgreement(t *testing.T) {
	sys := newSystem(t)
	const rows, cols = 48, 2048
	f, err := MakeMatVec(sys.Host(), sys.HostClock(), "/mv", rows, cols, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatVecCPUReference(sys.Host(), sys.HostClock(), f)
	if err != nil {
		t.Fatal(err)
	}

	gres, err := MatVecGPUfs(sys, 0, f, 8, 256)
	if err != nil {
		t.Fatalf("MatVecGPUfs: %v", err)
	}
	for r := range want {
		if math.Abs(float64(gres.Y[r]-want[r])) > 1e-3 {
			t.Fatalf("GPUfs row %d: got %v want %v", r, gres.Y[r], want[r])
		}
	}
	// The GPUfs version also persisted the result file.
	out, err := sys.ReadHostFile(f.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != rows*4 {
		t.Fatalf("output file %d bytes, want %d", len(out), rows*4)
	}

	cres, err := MatVecCUDA(sys, 1, f, f.MatrixBytes/4, 2, 8, 256)
	if err != nil {
		t.Fatalf("MatVecCUDA: %v", err)
	}
	for r := range want {
		if math.Abs(float64(cres.Y[r]-want[r])) > 1e-3 {
			t.Fatalf("CUDA row %d: got %v want %v", r, cres.Y[r], want[r])
		}
	}
}

func TestMicroSequentialShapes(t *testing.T) {
	sys := newSystem(t)
	cfgv := sys.Config()
	size := cfgv.ScaleBytes(1800 << 20)
	if err := MakeDataFile(sys.Host(), sys.HostClock(), "/micro/seq.bin", size, 1); err != nil {
		t.Fatal(err)
	}

	gp, err := SeqReadGPUfs(sys, 0, "/micro/seq.bin", size, 8, 128)
	if err != nil {
		t.Fatalf("SeqReadGPUfs: %v", err)
	}
	pipe, err := SeqReadCUDAPipeline(sys, 1, "/micro/seq.bin", size, 256<<10)
	if err != nil {
		t.Fatalf("SeqReadCUDAPipeline: %v", err)
	}
	whole, err := SeqReadWholeFile(sys, 2, "/micro/seq.bin", size)
	if err != nil {
		t.Fatalf("SeqReadWholeFile: %v", err)
	}

	if gp.Throughput <= 0 || pipe.Throughput <= 0 || whole.Throughput <= 0 {
		t.Fatalf("non-positive throughputs: %v %v %v", gp.Throughput, pipe.Throughput, whole.Throughput)
	}
	// Figure 4 shape: pipelining beats the whole-file transfer; GPUfs at a
	// healthy page size lands near the pipeline.
	if pipe.Throughput <= whole.Throughput {
		t.Errorf("pipeline (%v) should beat whole-file (%v)", pipe.Throughput, whole.Throughput)
	}
	if gp.Throughput < whole.Throughput {
		t.Errorf("GPUfs (%v) should beat whole-file (%v) at default page size", gp.Throughput, whole.Throughput)
	}
}

func TestCacheHitLockFreeBeatsLocked(t *testing.T) {
	size := int64(8 << 20)
	run := func(forceLocked bool) *MicroResult {
		cfg := gpufs.ScaledConfig(testScale)
		cfg.ForceLockedTraversal = forceLocked
		sys, err := gpufs.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := MakeDataFile(sys.Host(), sys.HostClock(), "/micro/hit.bin", size, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := PrefetchGPUfs(sys, 0, "/micro/hit.bin", size, 8, 128); err != nil {
			t.Fatal(err)
		}
		res, err := CacheHitGPUfs(sys, 0, "/micro/hit.bin", size, 16, 128, 1<<20, 16<<10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(false)
	locked := run(true)
	if free.Elapsed >= locked.Elapsed {
		t.Errorf("lock-free (%v) should beat locked traversal (%v)", free.Elapsed, locked.Elapsed)
	}
}

func TestCorpusDeterminism(t *testing.T) {
	// Same spec, same bytes — experiments must be reproducible.
	a := newSystem(t)
	b := newSystem(t)
	spec := TreeSpec{
		Dir: "/det", NumFiles: 12, TotalBytes: 64 << 10,
		Text: TextSpec{Dict: MakeDictionary(50), DictFraction: 0.5, Seed: 99},
	}
	ta, err := MakeTree(a.Host(), a.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := MakeTree(b.Host(), b.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Files) != len(tb.Files) || ta.Bytes != tb.Bytes {
		t.Fatalf("non-deterministic tree shape")
	}
	for i := range ta.Files {
		ca, _ := a.ReadHostFile(ta.Files[i])
		cb, _ := b.ReadHostFile(tb.Files[i])
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("file %d differs between identical generations", i)
		}
	}
	// The list file exists and names every file.
	list, err := a.ReadHostFile(ta.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(parseFileList(list)); got != len(ta.Files) {
		t.Fatalf("list has %d entries, tree %d", got, len(ta.Files))
	}
}

func TestCorpusSeedByteIdenticalAcrossSystems(t *testing.T) {
	// Every generator must produce byte-identical inputs on two
	// independently built Systems from the same seed — the property the
	// serving soaks and bench comparisons lean on.
	a := newSystem(t)
	b := newSystem(t)

	da, db := MakeDictionary(120), MakeDictionary(120)
	if !reflect.DeepEqual(da.Encode(), db.Encode()) {
		t.Fatalf("MakeDictionary not deterministic")
	}
	spec := TextSpec{Dict: da, DictFraction: 0.6, Seed: 42}
	if !reflect.DeepEqual(MakeText(16<<10, spec), MakeText(16<<10, TextSpec{Dict: db, DictFraction: 0.6, Seed: 42})) {
		t.Fatalf("MakeText not deterministic")
	}

	for _, sys := range []*gpufs.System{a, b} {
		if err := MakeDataFile(sys.Host(), sys.HostClock(), "/det/data.bin", 32<<10, 7); err != nil {
			t.Fatal(err)
		}
		if err := sys.WriteHostFile("/det/text.txt", MakeText(8<<10, spec)); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"/det/data.bin", "/det/text.txt"} {
		ca, err := a.ReadHostFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.ReadHostFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("%s differs between identically seeded systems", path)
		}
	}
}

func TestImageWorkloadDeterminism(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t)
	spec := ImageSpec{Dir: "/det", DBImages: []int{40, 40}, Queries: 10, Plan: MatchRandom, Seed: 5}
	wa, err := MakeImageWorkload(a.Host(), a.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := MakeImageWorkload(b.Host(), b.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wa.Truth, wb.Truth) || !reflect.DeepEqual(wa.Queries, wb.Queries) {
		t.Fatalf("image workload not deterministic")
	}
}

func TestFirstPagePlanTerminatesEarly(t *testing.T) {
	sys := newSystem(t)
	spec := ImageSpec{Dir: "/fp", DBImages: []int{200, 200}, Queries: 64, Plan: MatchFirstPage, Seed: 7}
	w, err := MakeImageWorkload(sys.Host(), sys.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTime()
	first, err := ImageSearchGPUfs(sys, w, 1, 8, 128, "/fp/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	for q, m := range first.Matches {
		if m != (ImageMatch{DB: 0, Index: 0}) {
			t.Fatalf("query %d matched %v, want db0[0]", q, m)
		}
	}

	sys2 := newSystem(t)
	spec.Plan = MatchNone
	w2, err := MakeImageWorkload(sys2.Host(), sys2.HostClock(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sys2.ResetTime()
	full, err := ImageSearchGPUfs(sys2, w2, 1, 8, 128, "/fp/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	if first.Elapsed*4 > full.Elapsed {
		t.Fatalf("first-page matches (%v) should terminate far earlier than a full scan (%v)",
			first.Elapsed, full.Elapsed)
	}
}

func TestSeqReadGreadMatchesGmmapShape(t *testing.T) {
	sys := newSystem(t)
	cfgv := sys.Config()
	size := cfgv.ScaleBytes(512 << 20)
	if err := MakeDataFile(sys.Host(), sys.HostClock(), "/sg.bin", size, 4); err != nil {
		t.Fatal(err)
	}
	sys.ResetTime()
	gr, err := SeqReadGPUfsGread(sys, 0, "/sg.bin", size, 8, 128, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Throughput <= 0 {
		t.Fatalf("no throughput")
	}
}

func TestReopenStormCounts(t *testing.T) {
	sys := newSystem(t)
	files := make([]string, 8)
	for i := range files {
		files[i] = fmt.Sprintf("/storm/f%d", i)
		if err := MakeDataFile(sys.Host(), sys.HostClock(), files[i], 8<<10, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sys.ResetTime()
	res, err := ReopenStorm(sys, 0, files, 4, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed")
	}
	st := sys.GPU(0).Stats()
	if st.Opens != 8*3 {
		t.Fatalf("opens = %d, want 24", st.Opens)
	}
	// Rounds after the first are served without host opens.
	if st.HostOpens != 8 {
		t.Fatalf("host opens = %d, want 8", st.HostOpens)
	}
}

func TestGrepShardingCoversDictionary(t *testing.T) {
	// Every (file, shard) unit is owned by exactly one worker, so no
	// match is counted twice or dropped.
	for _, workers := range []int{3, 8, 64, 112} {
		for fi := 0; fi < 5; fi++ {
			owned := make([]int, GrepShards)
			for w := 0; w < workers; w++ {
				for _, s := range shardsOf(fi, w, workers) {
					owned[s]++
				}
			}
			for s, n := range owned {
				if n != 1 {
					t.Fatalf("workers=%d file=%d shard %d owned %d times", workers, fi, s, n)
				}
			}
		}
	}
}

func TestShardWork(t *testing.T) {
	if got := shardWork(1000, 640, GrepShards); got != 640000 {
		t.Fatalf("full dictionary: %d", got)
	}
	if got := shardWork(1000, 640, 1); got != 10000 {
		t.Fatalf("one shard: %d", got)
	}
}

func TestVanillaGrepOutputOverflowCrashes(t *testing.T) {
	// The vanilla version pre-allocates its output buffer and the kernel
	// crashes on overflow (§5.2.2) — the fragility GPUfs removes.
	sys := newSystem(t)
	dict := MakeDictionary(100)
	tree, err := MakeTree(sys.Host(), sys.HostClock(), TreeSpec{
		Dir: "/ovf", NumFiles: 10, TotalBytes: 256 << 10,
		Text: TextSpec{Dict: dict, DictFraction: 0.9, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = GrepVanillaGPU(sys, 0, dict, tree.Files, 1e9, 8, 128, 64 /* absurdly small */)
	if err == nil {
		t.Fatalf("overflowing the vanilla output buffer must crash the kernel")
	}
}

func TestMatVecPageRowAlignmentGuard(t *testing.T) {
	sys := newSystem(t) // page 256K
	// 3000 floats per row = 12000 bytes: neither divides nor is divided
	// by the page size.
	f, err := MakeMatVec(sys.Host(), sys.HostClock(), "/mvbad", 4, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MatVecGPUfs(sys, 0, f, 2, 64); err == nil {
		t.Fatalf("misaligned row size must be rejected")
	}
}

func TestMakeTextUsesDictionary(t *testing.T) {
	dict := MakeDictionary(20)
	text := MakeText(32<<10, TextSpec{Dict: dict, DictFraction: 1.0, Seed: 1})
	set := dictSet(dict.Words)
	inDict, total := 0, 0
	tokenize(text, func(w []byte) {
		total++
		if _, ok := set[string(w)]; ok {
			inDict++
		}
	})
	if total == 0 || inDict*10 < total*9 {
		t.Fatalf("DictFraction=1 text should be ~all dictionary words: %d/%d", inDict, total)
	}
	// And a fraction of 0 should produce ~none.
	text = MakeText(32<<10, TextSpec{Dict: dict, DictFraction: 0, Seed: 1})
	inDict, total = 0, 0
	tokenize(text, func(w []byte) {
		total++
		if _, ok := set[string(w)]; ok {
			inDict++
		}
	})
	if inDict*10 > total {
		t.Fatalf("DictFraction=0 text too rich in dictionary words: %d/%d", inDict, total)
	}
}

func TestTreeSpecValidation(t *testing.T) {
	sys := newSystem(t)
	_, err := MakeTree(sys.Host(), sys.HostClock(), TreeSpec{Dir: "/bad", NumFiles: 0})
	if err == nil {
		t.Fatalf("zero-file tree accepted")
	}
}

func TestImageSpecValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := MakeImageWorkload(sys.Host(), sys.HostClock(), ImageSpec{Dir: "/x"}); err == nil {
		t.Fatalf("empty image spec accepted")
	}
}
