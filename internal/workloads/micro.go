package workloads

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"gpufs"
	"gpufs/internal/cudart"
	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

// Microbenchmark kernels of §5.1: sequential read (Figures 4 and 5), random
// read (Figure 6), and in-cache read with lock-free versus locked buffer
// cache traversal (Figure 7), plus their non-GPUfs baselines.

// MicroResult is a microbenchmark outcome.
type MicroResult struct {
	// Elapsed is the virtual makespan and Bytes the payload volume;
	// Throughput = Bytes / Elapsed.
	Elapsed    simtime.Duration
	Bytes      int64
	Throughput simtime.Rate
	// UniquePages is the number of distinct buffer-cache pages faulted
	// (Figure 6's second series).
	UniquePages int64
}

func finishMicro(res *MicroResult) {
	if res.Elapsed > 0 {
		res.Throughput = simtime.Rate(float64(res.Bytes) / res.Elapsed.Seconds())
	}
}

// MakeDataFile writes size bytes of deterministic data at path.
func MakeDataFile(fs *hostfs.FS, clock *simtime.Clock, path string, size int64, seed int64) error {
	mode := hostfs.ModeRead | hostfs.ModeWrite
	if err := fs.MkdirAll(dirname(path), hostfs.ModeDir|mode); err != nil {
		return err
	}
	f, err := fs.Open(clock, path, hostfs.O_WRONLY|hostfs.O_CREATE|hostfs.O_TRUNC, mode)
	if err != nil {
		return err
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(seed))
	const batch = 1 << 20
	buf := make([]byte, batch)
	for off := int64(0); off < size; off += batch {
		n := int64(batch)
		if off+n > size {
			n = size - off
		}
		for i := int64(0); i < n; i += 8 {
			v := rng.Uint64()
			for j := int64(0); j < 8 && i+j < n; j++ {
				buf[i+j] = byte(v >> (8 * uint(j)))
			}
		}
		if _, err := f.Pwrite(clock, buf[:n], off); err != nil {
			return err
		}
	}
	return nil
}

func dirname(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

// SeqReadGPUfs is Figure 4's "GPU File I/O" kernel — 16 lines of GPU code
// in the paper: each threadblock maps the pages of a contiguous file range
// one page at a time (gmmap/gmunmap) until its share is mapped, then closes
// the file and exits. The data is not touched; the cost measured is moving
// file content into the GPU buffer cache.
func SeqReadGPUfs(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads int) (*MicroResult, error) {
	res := &MicroResult{Bytes: fileBytes}
	perBlock := (fileBytes + int64(blocks) - 1) / int64(blocks)
	ps := sys.GPU(gpuID).FS().PageSize()
	perBlock = (perBlock + ps - 1) / ps * ps

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		base := int64(c.Idx) * perBlock
		for off := base; off < base+perBlock && off < fileBytes; off += ps {
			want := ps
			if off+want > fileBytes {
				want = fileBytes - off
			}
			m, err := c.Gmmap(fd, off, want)
			if err != nil {
				return err
			}
			if err := c.Gmunmap(m); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	res.UniquePages = sys.GPU(gpuID).FS().Cache().Allocs()
	finishMicro(res)
	return res, nil
}

// SeqReadCUDAPipeline is Figure 4's hand-optimized baseline: the CPU preads
// each chunk into pinned memory and enqueues an asynchronous DMA, so file
// access latency overlaps the PCIe transfer.
func SeqReadCUDAPipeline(sys *gpufs.System, gpuID int, path string, fileBytes, chunkBytes int64) (*MicroResult, error) {
	g := sys.GPU(gpuID)
	rt := cudart.New(sys.Host(), g.Link(), g.Device(), 0)
	defer rt.Close()

	const nbuf = 4
	pinned := make([][]byte, nbuf)
	for i := range pinned {
		pinned[i] = rt.HostMalloc(chunkBytes)
	}
	defer rt.HostFree(int64(nbuf) * chunkBytes)
	dev, err := rt.Malloc(chunkBytes * nbuf)
	if err != nil {
		return nil, err
	}
	defer dev.Free()

	f, err := sys.Host().Open(rt.Clock(), path, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	streams := make([]*cudart.Stream, nbuf)
	for i := range streams {
		streams[i] = rt.NewStream()
	}
	for ci, off := 0, int64(0); off < fileBytes; ci, off = ci+1, off+chunkBytes {
		slot := ci % nbuf
		n := chunkBytes
		if off+n > fileBytes {
			n = fileBytes - off
		}
		streams[slot].Synchronize() // pinned buffer reuse
		if _, err := rt.Pread(f, pinned[slot][:n], off); err != nil {
			return nil, err
		}
		dst := dev.Data[int64(slot)*chunkBytes : int64(slot)*chunkBytes+n]
		if err := streams[slot].MemcpyAsync(dst, pinned[slot][:n], pcie.HostToDevice); err != nil {
			return nil, err
		}
	}
	for _, s := range streams {
		s.Synchronize()
	}

	res := &MicroResult{Bytes: fileBytes, Elapsed: simtime.Duration(rt.Clock().Now())}
	finishMicro(res)
	return res, nil
}

// SeqReadWholeFile is Figure 4's "whole file transfer" baseline: one pread
// of the entire file, then one synchronous cudaMemcpy — the common GPU
// practice of maximizing transfer size, which in fact loses to chunked
// pipelining because nothing overlaps.
func SeqReadWholeFile(sys *gpufs.System, gpuID int, path string, fileBytes int64) (*MicroResult, error) {
	g := sys.GPU(gpuID)
	rt := cudart.New(sys.Host(), g.Link(), g.Device(), 0)
	defer rt.Close()

	pinned := rt.HostMalloc(fileBytes)
	defer rt.HostFree(fileBytes)
	dev, err := rt.Malloc(fileBytes)
	if err != nil {
		return nil, err
	}
	defer dev.Free()

	f, err := sys.Host().Open(rt.Clock(), path, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := rt.Pread(f, pinned, 0); err != nil {
		return nil, err
	}
	if err := rt.Memcpy(dev.Data, pinned, pcie.HostToDevice); err != nil {
		return nil, err
	}

	res := &MicroResult{Bytes: fileBytes, Elapsed: simtime.Duration(rt.Clock().Now())}
	finishMicro(res)
	return res, nil
}

// RandReadGPUfs is Figure 6's kernel: each of the blocks reads readsPerBlock
// blocks of readBytes from random offsets of the file via gread into on-die
// scratchpad memory. gread is not constrained to one cache page, making it
// the natural call for random access (§5.1.2).
func RandReadGPUfs(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads, readsPerBlock int, readBytes int64) (*MicroResult, error) {
	res := &MicroResult{Bytes: int64(blocks) * int64(readsPerBlock) * readBytes}

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		if int64(len(c.Scratch)) < readBytes {
			return fmt.Errorf("randread: scratchpad %d < read size %d", len(c.Scratch), readBytes)
		}
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		span := fileBytes - readBytes
		for i := 0; i < readsPerBlock; i++ {
			off := c.Rand.Int63n(span/readBytes) * readBytes
			if _, err := c.Gread(fd, c.Scratch[:readBytes], off); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	res.UniquePages = sys.GPU(gpuID).FS().Cache().Allocs()
	finishMicro(res)
	return res, nil
}

// StrideReadGPUfs reads readBytes from the head of every stridePages-th
// page of each block's contiguous file range — a fixed-stride pattern that
// a pattern detector should recognize (and speculate along) while greedy
// sequential read-ahead mostly fetches the skipped pages for nothing.
func StrideReadGPUfs(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads int, stridePages, readBytes int64) (*MicroResult, error) {
	res := &MicroResult{}
	ps := sys.GPU(gpuID).FS().PageSize()
	perBlock := (fileBytes + int64(blocks) - 1) / int64(blocks)
	perBlock = (perBlock + ps - 1) / ps * ps
	var bytes atomic.Int64

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		if int64(len(c.Scratch)) < readBytes {
			return fmt.Errorf("strideread: scratchpad %d < read size %d", len(c.Scratch), readBytes)
		}
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		base := int64(c.Idx) * perBlock
		for off := base; off < base+perBlock && off < fileBytes; off += ps * stridePages {
			want := readBytes
			if off+want > fileBytes {
				want = fileBytes - off
			}
			n, err := c.Gread(fd, c.Scratch[:want], off)
			if err != nil {
				return err
			}
			bytes.Add(int64(n))
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return nil, err
	}
	res.Bytes = bytes.Load()
	res.Elapsed = simtime.Duration(end)
	res.UniquePages = sys.GPU(gpuID).FS().Cache().Allocs()
	finishMicro(res)
	return res, nil
}

// PrefetchGPUfs warms the GPU buffer cache by reading the whole file once
// from a separate kernel — the cross-kernel data reuse of §5.1.3. Returns
// the prefetch kernel's own elapsed time.
func PrefetchGPUfs(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads int) (simtime.Duration, error) {
	ps := sys.GPU(gpuID).FS().PageSize()
	perBlock := ((fileBytes+int64(blocks)-1)/int64(blocks) + ps - 1) / ps * ps
	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		base := int64(c.Idx) * perBlock
		for off := base; off < base+perBlock && off < fileBytes; off += ps {
			want := ps
			if off+want > fileBytes {
				want = fileBytes - off
			}
			m, err := c.Gmmap(fd, off, want)
			if err != nil {
				return err
			}
			if err := c.Gmunmap(m); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return 0, err
	}
	return simtime.Duration(end), nil
}

// CacheHitGPUfs is Figure 7's measurement kernel: with the file fully
// resident in the GPU buffer cache (run PrefetchGPUfs first), each block
// greads perBlockBytes in chunkBytes pieces from randomized page-aligned
// offsets into scratchpad memory — the access pattern of tiled linear
// algebra kernels. No PCI transfers occur; the cost is buffer-cache lookup
// plus the copy.
func CacheHitGPUfs(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads int, perBlockBytes, chunkBytes int64) (*MicroResult, error) {
	res := &MicroResult{Bytes: int64(blocks) * perBlockBytes}

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		nChunks := fileBytes / chunkBytes
		for done := int64(0); done < perBlockBytes; done += chunkBytes {
			off := c.Rand.Int63n(nChunks) * chunkBytes
			if _, err := c.Gread(fd, c.Scratch[:chunkBytes], off); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	finishMicro(res)
	return res, nil
}

// CacheHitRaw is Figure 7's baseline: the identical access pattern reading
// directly from a device-memory buffer, without the GPUfs API.
func CacheHitRaw(sys *gpufs.System, gpuID int, fileBytes int64, blocks, threads int, perBlockBytes, chunkBytes int64) (*MicroResult, error) {
	g := sys.GPU(gpuID)
	dev, err := g.Device().Mem.Alloc(fileBytes, 256)
	if err != nil {
		return nil, err
	}
	defer dev.Free()

	res := &MicroResult{Bytes: int64(blocks) * perBlockBytes}
	end, err := g.Device().Launch(0, blocks, threads, func(b *gpu.Block) error {
		nChunks := fileBytes / chunkBytes
		for done := int64(0); done < perBlockBytes; done += chunkBytes {
			off := b.Rand.Int63n(nChunks) * chunkBytes
			b.CopyBytes(b.Scratch[:chunkBytes], dev.Data[off:off+chunkBytes])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	finishMicro(res)
	return res, nil
}

// SeqReadGPUfsGread is a gread-based sequential reader: each block streams
// its contiguous stripe of the file in chunkBytes pieces through gread
// into block-local memory. Unlike the gmmap kernel of Figure 4 it copies
// the data, which is what lets GPU-side read-ahead (§3.3) overlap fetches
// with the copies — the ablation benchmark compares the two settings.
func SeqReadGPUfsGread(sys *gpufs.System, gpuID int, path string, fileBytes int64, blocks, threads int, chunkBytes int64) (*MicroResult, error) {
	res := &MicroResult{Bytes: fileBytes}
	perBlock := (fileBytes + int64(blocks) - 1) / int64(blocks)
	perBlock = (perBlock + chunkBytes - 1) / chunkBytes * chunkBytes

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen(path, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, chunkBytes)
		base := int64(c.Idx) * perBlock
		for off := base; off < base+perBlock && off < fileBytes; off += chunkBytes {
			if _, err := c.Gread(fd, buf, off); err != nil {
				return err
			}
		}
		return c.Gclose(fd)
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	finishMicro(res)
	return res, nil
}

// ReopenStorm opens, reads a little from, and closes each of the given
// files once per block — the gopen/gclose-heavy pattern of the grep
// workload (§5.2.2), used by the ablation benchmark to price the closed
// file table's fast-reopen path.
func ReopenStorm(sys *gpufs.System, gpuID int, files []string, blocks, threads, rounds int) (*MicroResult, error) {
	res := &MicroResult{}
	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		buf := make([]byte, 4096)
		for r := 0; r < rounds; r++ {
			for fi := c.Idx; fi < len(files); fi += c.Blocks {
				fd, err := c.Gopen(files[fi], gpufs.O_RDONLY)
				if err != nil {
					return err
				}
				if _, err := c.Gread(fd, buf, 0); err != nil {
					return err
				}
				if err := c.Gclose(fd); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	return res, nil
}
