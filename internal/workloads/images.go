package workloads

import (
	"fmt"
	"math/rand"

	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

// ImageBytes is the size of one image: a 4K-element feature vector
// (§5.2.1; 2,016 input images amount to 31.5 MB).
const ImageBytes = 16 << 10

// ImageFlops is the arithmetic cost of one image-to-image comparison
// (Euclidean distance over 4K elements: one subtract and one
// multiply-accumulate per element).
const ImageFlops = 2 * 4096

// MatchPlan places query images inside the databases.
type MatchPlan int

// Match plans for the Table 3 and §5.2.1 experiments.
const (
	// MatchNone: queries match nothing; all databases are scanned fully
	// (the raw-performance configuration).
	MatchNone MatchPlan = iota
	// MatchRandom: every query is injected at a random location in a
	// random database ("Exact match").
	MatchRandom
	// MatchFirstPage: every query matches the first entry of the first
	// database — the paper's degenerate best case, where searches
	// terminate after one page and runtime drops ~400x (§5.2.1).
	MatchFirstPage
)

// ImageSpec describes an image-search workload.
type ImageSpec struct {
	// Dir is the host directory for the generated files.
	Dir string
	// DBImages is the image count of each database file (the paper uses
	// three databases of ~25,000 images each).
	DBImages []int
	// Queries is the number of query images.
	Queries int
	// Plan controls match placement.
	Plan MatchPlan
	// Seed makes generation deterministic.
	Seed int64
}

// ImageWorkload is a generated image-search input.
type ImageWorkload struct {
	// DBPaths are the database files, to be scanned in this priority
	// order.
	DBPaths []string
	// QueryPath is the query-set file.
	QueryPath string
	// Queries is the raw query blob (Queries x ImageBytes).
	Queries []byte
	// Truth[q] is the expected first match of query q: database index
	// and image index, or (-1, -1).
	Truth []ImageMatch
	// DBBytes is the total database volume.
	DBBytes int64
}

// ImageMatch locates a match.
type ImageMatch struct {
	DB, Index int
}

// NoMatch is the Truth entry for an unmatched query.
var NoMatch = ImageMatch{DB: -1, Index: -1}

// makeImage renders a deterministic pseudo-random image.
func makeImage(seed int64, out []byte) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < len(out); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < len(out); j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
}

// MakeImageWorkload generates the databases and query set in fs.
func MakeImageWorkload(fs *hostfs.FS, clock *simtime.Clock, spec ImageSpec) (*ImageWorkload, error) {
	if spec.Queries <= 0 || len(spec.DBImages) == 0 {
		return nil, fmt.Errorf("workloads: image spec needs queries and databases")
	}
	mode := hostfs.ModeRead | hostfs.ModeWrite
	if err := fs.MkdirAll(spec.Dir, hostfs.ModeDir|mode); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	w := &ImageWorkload{Truth: make([]ImageMatch, spec.Queries)}

	// Queries: seeds disjoint from database seeds. In the degenerate
	// first-page plan, every query is a copy of the first database
	// entry, so all searches terminate after one page.
	w.Queries = make([]byte, spec.Queries*ImageBytes)
	if spec.Plan == MatchFirstPage {
		first := make([]byte, ImageBytes)
		makeImage(spec.Seed, first)
		for q := 0; q < spec.Queries; q++ {
			copy(w.Queries[q*ImageBytes:], first)
			w.Truth[q] = ImageMatch{DB: 0, Index: 0}
		}
	} else {
		for q := 0; q < spec.Queries; q++ {
			makeImage(spec.Seed+1_000_000+int64(q), w.Queries[q*ImageBytes:(q+1)*ImageBytes])
			w.Truth[q] = NoMatch
		}
	}

	// Decide injection sites.
	type site struct{ db, idx, query int }
	var sites []site
	switch spec.Plan {
	case MatchNone, MatchFirstPage:
		// No injection sites: first-page queries already duplicate the
		// natural first entry of database 0.
	case MatchRandom:
		for q := 0; q < spec.Queries; q++ {
			db := rng.Intn(len(spec.DBImages))
			idx := rng.Intn(spec.DBImages[db])
			sites = append(sites, site{db, idx, q})
		}
	}
	// First injection at a slot wins (earlier query keeps the site).
	taken := make(map[[2]int]int)
	for _, s := range sites {
		key := [2]int{s.db, s.idx}
		if _, dup := taken[key]; !dup {
			taken[key] = s.query
		}
	}

	// Write databases.
	for db, count := range spec.DBImages {
		blob := make([]byte, count*ImageBytes)
		for i := 0; i < count; i++ {
			img := blob[i*ImageBytes : (i+1)*ImageBytes]
			switch {
			case spec.Plan == MatchFirstPage && db == 0 && i == 0:
				makeImage(spec.Seed, img) // the image every query copies
			default:
				if q, hit := taken[[2]int{db, i}]; hit {
					copy(img, w.Queries[q*ImageBytes:(q+1)*ImageBytes])
				} else {
					makeImage(spec.Seed+int64(db)*1_000_000_000+int64(i), img)
				}
			}
		}
		path := fmt.Sprintf("%s/db%d.img", spec.Dir, db)
		if err := fs.WriteFile(clock, path, blob, mode); err != nil {
			return nil, err
		}
		w.DBPaths = append(w.DBPaths, path)
		w.DBBytes += int64(len(blob))
	}

	// Ground truth: the FIRST database (in priority order) containing
	// each query, lowest index within it. (First-page plans set truth
	// during query generation.)
	for key, q := range taken {
		cur := w.Truth[q]
		cand := ImageMatch{DB: key[0], Index: key[1]}
		if cur == NoMatch || cand.DB < cur.DB || (cand.DB == cur.DB && cand.Index < cur.Index) {
			w.Truth[q] = cand
		}
	}

	w.QueryPath = spec.Dir + "/queries.img"
	if err := fs.WriteFile(clock, w.QueryPath, w.Queries, mode); err != nil {
		return nil, err
	}
	return w, nil
}
