package workloads

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"gpufs"
	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

// The approximate image matching application of §5.2.1: given query images
// and several databases, find for each query the first database (in a fixed
// priority order) containing a match, scanning later databases only when
// needed. Matching here is exact byte equality — the degenerate threshold
// of the paper's Euclidean metric — which preserves the experiment's
// data-dependent control flow while keeping real compute trivial; the full
// metric's arithmetic cost is charged in virtual time (ImageFlops per
// comparison).

// imgChunkImages is how many database images one gread fetches.
const imgChunkImages = 16

// ImageSearchResult is one run's outcome.
type ImageSearchResult struct {
	// Matches[q] is query q's first match (NoMatch if none).
	Matches []ImageMatch
	// Elapsed is the virtual makespan.
	Elapsed simtime.Duration
}

// ImageSearchGPUfs runs the GPUfs implementation across the first numGPUs
// devices of the system, splitting the query list equally (the Table 3
// scaling experiment). blocks and threads shape each GPU's kernel; the
// paper uses 28 blocks of 512 threads.
//
// The entire application is GPU-kernel code: queries are read with gread,
// databases are scanned with gread, and results are written to outPath with
// gwrite under O_GWRONCE — the associated CPU code is just the kernel
// launch.
func ImageSearchGPUfs(sys *gpufs.System, w *ImageWorkload, numGPUs, blocks, threads int, outPath string) (*ImageSearchResult, error) {
	nq := len(w.Queries) / ImageBytes
	res := &ImageSearchResult{Matches: make([]ImageMatch, nq)}
	for i := range res.Matches {
		res.Matches[i] = NoMatch
	}
	var resMu sync.Mutex

	var wg sync.WaitGroup
	var meter simtime.Meter
	errs := make([]error, numGPUs)

	perGPU := (nq + numGPUs - 1) / numGPUs
	for g := 0; g < numGPUs; g++ {
		qLo := g * perGPU
		qHi := qLo + perGPU
		if qHi > nq {
			qHi = nq
		}
		if qLo >= qHi {
			continue
		}
		wg.Add(1)
		go func(g, qLo, qHi int) {
			defer wg.Done()
			end, err := sys.GPU(g).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
				m, err := imageSearchBlock(c, w, qLo, qHi, outPath)
				if err != nil {
					return err
				}
				resMu.Lock()
				for q, match := range m {
					res.Matches[q] = match
				}
				resMu.Unlock()
				return nil
			})
			if err != nil {
				errs[g] = err
				return
			}
			meter.Observe(end)
		}(g, qLo, qHi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Elapsed = simtime.Duration(meter.Max())
	return res, nil
}

// imageSearchBlock is the threadblock body: it owns an interleaved slice of
// the GPU's query range and scans the databases in priority order,
// dropping queries as they match.
func imageSearchBlock(c *gpufs.BlockCtx, w *ImageWorkload, qLo, qHi int, outPath string) (map[int]ImageMatch, error) {
	// Load this block's queries.
	qfd, err := c.Gopen(w.QueryPath, gpufs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	var mine []int
	for q := qLo + c.Idx; q < qHi; q += c.Blocks {
		mine = append(mine, q)
	}
	queries := make(map[int][]byte, len(mine))
	for _, q := range mine {
		buf := make([]byte, ImageBytes)
		if _, err := c.Gread(qfd, buf, int64(q)*ImageBytes); err != nil {
			return nil, err
		}
		queries[q] = buf
	}
	if err := c.Gclose(qfd); err != nil {
		return nil, err
	}

	matches := make(map[int]ImageMatch)
	active := mine

	chunk := make([]byte, imgChunkImages*ImageBytes)
	for db := 0; db < len(w.DBPaths) && len(active) > 0; db++ {
		fd, err := c.Gopen(w.DBPaths[db], gpufs.O_RDONLY)
		if err != nil {
			return nil, err
		}
		info, err := c.Gfstat(fd)
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < info.Size && len(active) > 0; off += int64(len(chunk)) {
			n, err := c.Gread(fd, chunk, off)
			if err != nil {
				return nil, err
			}
			images := n / ImageBytes
			// Charge the full comparison arithmetic for this chunk.
			c.Compute(float64(ImageFlops * images * len(active)))
			for i := 0; i < images; i++ {
				img := chunk[i*ImageBytes : (i+1)*ImageBytes]
				keep := active[:0]
				for _, q := range active {
					if bytes.Equal(queries[q], img) {
						matches[q] = ImageMatch{DB: db, Index: int(off/ImageBytes) + i}
					} else {
						keep = append(keep, q)
					}
				}
				active = keep
			}
		}
		if err := c.Gclose(fd); err != nil {
			return nil, err
		}
	}

	// Emit results: 8 bytes per query (db, index), written once each —
	// the O_GWRONCE pattern.
	ofd, err := c.Gopen(outPath, gpufs.O_GWRONCE)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, 8)
	for _, q := range mine {
		m, ok := matches[q]
		if !ok {
			m = NoMatch
		}
		binary.LittleEndian.PutUint32(rec[0:], uint32(int32(m.DB)+2))
		binary.LittleEndian.PutUint32(rec[4:], uint32(int32(m.Index)+2))
		if _, err := c.Gwrite(ofd, rec, int64(q)*8); err != nil {
			return nil, err
		}
	}
	if err := c.Gfsync(ofd); err != nil {
		return nil, err
	}
	if err := c.Gclose(ofd); err != nil {
		return nil, err
	}
	return matches, nil
}

// ImageSearchCPU runs the 8-core OpenMP-style CPU baseline: workers split
// the query list, each scanning the databases through the host file system.
// Arithmetic is charged at the calibrated CPU rate (the paper's GPU
// sustains 2x this 8-core throughput).
func ImageSearchCPU(host *hostfs.FS, w *ImageWorkload, cores int, flops float64) (*ImageSearchResult, error) {
	nq := len(w.Queries) / ImageBytes
	res := &ImageSearchResult{Matches: make([]ImageMatch, nq)}
	perCore := flops / float64(cores)

	var wg sync.WaitGroup
	var meter simtime.Meter
	errs := make([]error, cores)

	per := (nq + cores - 1) / cores
	for cpu := 0; cpu < cores; cpu++ {
		lo, hi := cpu*per, (cpu+1)*per
		if hi > nq {
			hi = nq
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(cpu, lo, hi int) {
			defer wg.Done()
			clock := simtime.NewClock(0)
			core := simtime.NewResource(fmt.Sprintf("cpu-core-%d", cpu))
			err := imageSearchCPUWorker(host, w, clock, core, perCore, lo, hi, res)
			if err != nil {
				errs[cpu] = err
				return
			}
			meter.Observe(clock.Now())
		}(cpu, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Elapsed = simtime.Duration(meter.Max())
	return res, nil
}

func imageSearchCPUWorker(host *hostfs.FS, w *ImageWorkload, clock *simtime.Clock, core *simtime.Resource, perCore float64, lo, hi int, res *ImageSearchResult) error {
	active := make([]int, 0, hi-lo)
	for q := lo; q < hi; q++ {
		active = append(active, q)
		res.Matches[q] = NoMatch
	}
	chunk := make([]byte, imgChunkImages*ImageBytes)
	for db := 0; db < len(w.DBPaths) && len(active) > 0; db++ {
		f, err := host.Open(clock, w.DBPaths[db], hostfs.O_RDONLY, 0)
		if err != nil {
			return err
		}
		for off := int64(0); len(active) > 0; off += int64(len(chunk)) {
			n, err := f.Pread(clock, chunk, off)
			if err != nil {
				f.Close()
				return err
			}
			if n == 0 {
				break
			}
			images := n / ImageBytes
			cost := float64(ImageFlops*images*len(active)) / perCore
			clock.Use(core, simtime.Duration(cost*float64(simtime.Second)))
			for i := 0; i < images; i++ {
				img := chunk[i*ImageBytes : (i+1)*ImageBytes]
				keep := active[:0]
				for _, q := range active {
					qimg := w.Queries[q*ImageBytes : (q+1)*ImageBytes]
					if bytes.Equal(qimg, img) {
						res.Matches[q] = ImageMatch{DB: db, Index: int(off/ImageBytes) + i}
					} else {
						keep = append(keep, q)
					}
				}
				active = keep
			}
		}
		f.Close()
	}
	return nil
}
