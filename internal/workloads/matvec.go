package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"gpufs"
	"gpufs/internal/cudart"
	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/memsys"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

// The single-precision matrix–vector product of §5.1.4: y = M·v with M too
// large for GPU (and possibly CPU) memory. The GPUfs version is a
// self-contained kernel — gmmap for the matrix, gread for the vector,
// gwrite + gfsync for the result — while the CUDA baselines hand-code the
// chunked double-buffering pipeline GPU programmers write today.

// MatVecFiles locates a generated workload.
type MatVecFiles struct {
	MatrixPath, VectorPath, OutPath string
	Rows, Cols                      int
	MatrixBytes                     int64
}

// MatVecResult is one run's outcome.
type MatVecResult struct {
	// Y is the computed product.
	Y []float32
	// Elapsed is the virtual makespan, and Throughput the matrix volume
	// over it (the metric of Figure 8).
	Elapsed    simtime.Duration
	Throughput simtime.Rate
}

// MakeMatVec writes a rows x cols float32 matrix and a cols-long vector.
// The paper fixes cols = 128K elements and varies the matrix from 280 MB
// to 11 GB.
func MakeMatVec(fs *hostfs.FS, clock *simtime.Clock, dir string, rows, cols int, seed int64) (*MatVecFiles, error) {
	mode := hostfs.ModeRead | hostfs.ModeWrite
	if err := fs.MkdirAll(dir, hostfs.ModeDir|mode); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	vec := make([]byte, cols*4)
	for i := 0; i < cols; i++ {
		binary.LittleEndian.PutUint32(vec[i*4:], math.Float32bits(rng.Float32()-0.5))
	}
	f := &MatVecFiles{
		MatrixPath:  dir + "/matrix.f32",
		VectorPath:  dir + "/vector.f32",
		OutPath:     dir + "/result.f32",
		Rows:        rows,
		Cols:        cols,
		MatrixBytes: int64(rows) * int64(cols) * 4,
	}
	if err := fs.WriteFile(clock, f.VectorPath, vec, mode); err != nil {
		return nil, err
	}

	// Stream the matrix in row batches to bound peak allocation.
	mf, err := fs.Open(clock, f.MatrixPath, hostfs.O_WRONLY|hostfs.O_CREATE|hostfs.O_TRUNC, mode)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	rowBytes := int64(cols) * 4
	batch := make([]byte, rowBytes)
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			binary.LittleEndian.PutUint32(batch[i*4:], math.Float32bits(rng.Float32()-0.5))
		}
		if _, err := mf.Pwrite(clock, batch, int64(r)*rowBytes); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// dotRow computes one row's inner product against the vector, both in
// little-endian float32 wire format.
func dotRow(row, vec []byte) float32 {
	var acc float32
	for i := 0; i+4 <= len(row) && i+4 <= len(vec); i += 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(row[i:]))
		b := math.Float32frombits(binary.LittleEndian.Uint32(vec[i:]))
		acc += a * b
	}
	return acc
}

// MatVecCPUReference computes y on the host (correctness oracle only; no
// timing claims).
func MatVecCPUReference(host *hostfs.FS, clock *simtime.Clock, f *MatVecFiles) ([]float32, error) {
	vec, err := host.ReadFile(clock, f.VectorPath)
	if err != nil {
		return nil, err
	}
	mf, err := host.Open(clock, f.MatrixPath, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	rowBytes := int64(f.Cols) * 4
	row := make([]byte, rowBytes)
	y := make([]float32, f.Rows)
	for r := 0; r < f.Rows; r++ {
		if _, err := mf.Pread(clock, row, int64(r)*rowBytes); err != nil {
			return nil, err
		}
		y[r] = dotRow(row, vec)
	}
	return y, nil
}

// MatVecGPUfs is the self-contained GPUfs kernel: it requires no CUDA
// host-side code at all, and no special treatment when the matrix exceeds
// GPU — or CPU — memory. Matrix pages stream through the buffer cache
// (gmmap), and the FIFO replacement policy handles the overflow (§5.1.4).
func MatVecGPUfs(sys *gpufs.System, gpuID int, f *MatVecFiles, blocks, threads int) (*MatVecResult, error) {
	res := &MatVecResult{Y: make([]float32, f.Rows)}
	rowBytes := int64(f.Cols) * 4
	ps := sys.GPU(gpuID).FS().PageSize()
	if ps%rowBytes != 0 && rowBytes%ps != 0 {
		return nil, fmt.Errorf("matvec: page size %d and row size %d misaligned", ps, rowBytes)
	}

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		vfd, err := c.Gopen(f.VectorPath, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		vec := make([]byte, rowBytes)
		if _, err := c.Gread(vfd, vec, 0); err != nil {
			return err
		}
		if err := c.Gclose(vfd); err != nil {
			return err
		}

		mfd, err := c.Gopen(f.MatrixPath, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		// The output is produced write-once; O_TRUNC makes the single
		// coalesced host open truncate it (the paper calls gftruncate
		// up front).
		ofd, err := c.Gopen(f.OutPath, gpufs.O_GWRONCE|gpufs.O_TRUNC)
		if err != nil {
			return err
		}

		// Stripe the matrix across blocks in page-sized spans so each
		// block maps whole pages.
		span := ps
		if rowBytes > ps {
			span = rowBytes
		}
		outRec := make([]byte, 4)
		for off := int64(c.Idx) * span; off < f.MatrixBytes; off += span * int64(c.Blocks) {
			spanEnd := off + span
			if spanEnd > f.MatrixBytes {
				spanEnd = f.MatrixBytes
			}
			base := off
			for base < spanEnd {
				m, err := c.Gmmap(mfd, base, spanEnd-base)
				if err != nil {
					return err
				}
				// Rows fully inside this mapping.
				firstRow := int(base / rowBytes)
				nRows := len(m.Data) / int(rowBytes)
				for r := 0; r < nRows; r++ {
					row := m.Data[int64(r)*rowBytes : int64(r+1)*rowBytes]
					y := dotRow(row, vec)
					c.Compute(float64(2 * f.Cols))
					c.TouchBytes(rowBytes)
					binary.LittleEndian.PutUint32(outRec, math.Float32bits(y))
					if _, err := c.Gwrite(ofd, outRec, int64(firstRow+r)*4); err != nil {
						m.Munmap(c.Block)
						return err
					}
					res.Y[firstRow+r] = y
				}
				if err := c.Gmunmap(m); err != nil {
					return err
				}
				if nRows == 0 {
					return fmt.Errorf("matvec: mapping made no progress at %d", base)
				}
				base += int64(nRows) * rowBytes
			}
		}

		if err := c.Gfsync(ofd); err != nil {
			return err
		}
		if err := c.Gclose(ofd); err != nil {
			return err
		}
		return c.Gclose(mfd)
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	if res.Elapsed > 0 {
		res.Throughput = simtime.Rate(float64(f.MatrixBytes) / res.Elapsed.Seconds())
	}
	return res, nil
}

// MatVecCUDA is the hand-coded double-buffering baseline. The "naïve"
// configuration of Figure 8 splits the input into four chunks whose size
// depends on the input; the "optimized" configuration uses fixed 70 MB
// chunks. Pinned staging buffers (two per configuration) are allocated at
// chunk size, so the naïve version's buffers balloon with the input and
// compete with the CPU page cache — the effect that collapses it in the
// disk-bound regime.
func MatVecCUDA(sys *gpufs.System, gpuID int, f *MatVecFiles, chunkBytes int64, nbuf, blocks, threads int) (*MatVecResult, error) {
	if nbuf < 2 {
		nbuf = 2
	}
	g := sys.GPU(gpuID)
	rt := cudart.New(sys.Host(), g.Link(), g.Device(), 0)
	defer rt.Close()

	rowBytes := int64(f.Cols) * 4
	chunkBytes -= chunkBytes % rowBytes
	if chunkBytes < rowBytes {
		chunkBytes = rowBytes
	}

	// Host staging: one pinned buffer per in-flight chunk. The paper's
	// naive version double-buffers input-dependent giant chunks; the
	// optimized version keeps 16 fixed-size chunks in flight. Either
	// way, this pinned memory competes with the OS page cache (§5.1.4).
	pinned := make([][]byte, nbuf)
	for i := range pinned {
		pinned[i] = rt.HostMalloc(chunkBytes)
	}
	defer rt.HostFree(int64(nbuf) * chunkBytes)

	// Device: one chunk buffer per in-flight chunk, the vector, and the
	// result.
	dev := make([]*memsys.Block, nbuf)
	for i := range dev {
		b, err := rt.Malloc(chunkBytes)
		if err != nil {
			return nil, err
		}
		defer b.Free()
		dev[i] = b
	}
	devVec, err := rt.Malloc(rowBytes)
	if err != nil {
		return nil, err
	}
	defer devVec.Free()
	devY, err := rt.Malloc(int64(f.Rows) * 4)
	if err != nil {
		return nil, err
	}
	defer devY.Free()

	// Load the vector.
	vf, err := sys.Host().Open(rt.Clock(), f.VectorPath, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	vecPin := rt.HostMalloc(rowBytes)
	defer rt.HostFree(rowBytes)
	if _, err := rt.Pread(vf, vecPin, 0); err != nil {
		vf.Close()
		return nil, err
	}
	vf.Close()
	if err := rt.Memcpy(devVec.Data, vecPin, pcie.HostToDevice); err != nil {
		return nil, err
	}

	mf, err := sys.Host().Open(rt.Clock(), f.MatrixPath, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer mf.Close()

	res := &MatVecResult{Y: make([]float32, f.Rows)}
	streams := make([]*cudart.Stream, nbuf)
	for i := range streams {
		streams[i] = rt.NewStream()
	}

	for ci, off := 0, int64(0); off < f.MatrixBytes; ci, off = ci+1, off+chunkBytes {
		slot := ci % nbuf
		n := chunkBytes
		if off+n > f.MatrixBytes {
			n = f.MatrixBytes - off
		}
		// Reusing the slot's pinned buffer and device buffer requires
		// its previous chunk's pipeline to have drained.
		streams[slot].Synchronize()

		if _, err := rt.Pread(mf, pinned[slot][:n], off); err != nil {
			return nil, err
		}
		if err := streams[slot].MemcpyAsync(dev[slot].Data[:n], pinned[slot][:n], pcie.HostToDevice); err != nil {
			return nil, err
		}

		firstRow := int(off / rowBytes)
		nRows := int(n / rowBytes)
		data := dev[slot].Data
		err := streams[slot].Launch(blocks, threads, func(b *gpu.Block) error {
			for r := b.Idx; r < nRows; r += b.Blocks {
				row := data[int64(r)*rowBytes : int64(r+1)*rowBytes]
				y := dotRow(row, devVec.Data)
				b.Compute(float64(2 * f.Cols))
				b.TouchBytes(rowBytes)
				binary.LittleEndian.PutUint32(devY.Data[(firstRow+r)*4:], math.Float32bits(y))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, st := range streams {
		st.Synchronize()
	}

	// Retrieve y and write the output file.
	yPin := rt.HostMalloc(int64(f.Rows) * 4)
	defer rt.HostFree(int64(f.Rows) * 4)
	if err := rt.Memcpy(yPin, devY.Data, pcie.DeviceToHost); err != nil {
		return nil, err
	}
	mode := hostfs.ModeRead | hostfs.ModeWrite
	if err := sys.Host().WriteFile(rt.Clock(), f.OutPath, yPin, mode); err != nil {
		return nil, err
	}
	for r := 0; r < f.Rows; r++ {
		res.Y[r] = math.Float32frombits(binary.LittleEndian.Uint32(yPin[r*4:]))
	}

	res.Elapsed = simtime.Duration(rt.Clock().Now())
	if res.Elapsed > 0 {
		res.Throughput = simtime.Rate(float64(f.MatrixBytes) / res.Elapsed.Seconds())
	}
	return res, nil
}
