package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gpufs"
	"gpufs/internal/cudart"
	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/simtime"
)

// The exact string matching application of §5.2.2: a constrained "grep -w"
// that, for every word of a dictionary, reports how many times and in which
// files it appears.
//
// Parallelization follows the paper: "each GPU thread is assigned one word"
// — the dictionary is sharded across the machine, so even a single large
// input file (the Shakespeare case) spreads over every multiprocessor. A
// work unit is a (file, dictionary shard) pair, striped across
// threadblocks; a block greads each file it has shards for and matches its
// words against it.
//
// The brute-force GPU cost is dictionary-size x text-size. Real Go code
// computes the same answer with one tokenizing pass per file (bucketing
// counts by shard, shared across blocks), and charges the brute-force cost
// in virtual time at the calibrated rate.

// GrepShards is the number of dictionary shards work is split into.
const GrepShards = 64

// GrepResult is one run's outcome.
type GrepResult struct {
	// Counts maps "word\tfile" to occurrences.
	Counts map[string]int
	// Elapsed is the virtual makespan.
	Elapsed simtime.Duration
	// BytesScanned is the total text volume processed.
	BytesScanned int64
}

// DefaultGrepOutRegion is the default per-threadblock reservation in the
// shared output file (written write-once at disjoint offsets).
const DefaultGrepOutRegion = 4 << 20

// tokenize invokes fn for every maximal [a-z] run in data.
func tokenize(data []byte, fn func(word []byte)) {
	i := 0
	n := len(data)
	for i < n {
		for i < n && (data[i] < 'a' || data[i] > 'z') {
			i++
		}
		start := i
		for i < n && data[i] >= 'a' && data[i] <= 'z' {
			i++
		}
		if i > start {
			fn(data[start:i])
		}
	}
}

// CountWord reports how many times word occurs in data as a whole token
// (a maximal [a-z] run), the matching rule of the grep workload (§5.2.2).
// The serving layer's grep jobs and their host-side oracle both use it, so
// batching correctness is checked against the exact same matcher.
func CountWord(data []byte, word string) int {
	n := 0
	tokenize(data, func(w []byte) {
		if string(w) == word {
			n++
		}
	})
	return n
}

func dictSet(words []string) map[string]struct{} {
	s := make(map[string]struct{}, len(words))
	for _, w := range words {
		s[w] = struct{}{}
	}
	return s
}

// parseFileList splits the newline-separated list file.
func parseFileList(data []byte) []string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out
}

// shardCounts holds one file's dictionary-word occurrence counts, bucketed
// by shard so a block owning shard s grabs its matches in O(matches).
type shardCounts [GrepShards]map[string]int

// grepShared is the cross-block real-computation cache: the parsed
// dictionary (word -> index) and per-file bucketed counts. Every block
// still performs its greads, so virtual I/O is charged faithfully; only
// the redundant real tokenization is shared.
type grepShared struct {
	dict    *Dictionary
	wordIdx map[string]int

	mu    sync.Mutex
	files map[string]*shardCounts
}

func newGrepShared(dict *Dictionary) *grepShared {
	g := &grepShared{
		dict:    dict,
		wordIdx: make(map[string]int, len(dict.Words)),
		files:   make(map[string]*shardCounts),
	}
	for i, w := range dict.Words {
		g.wordIdx[w] = i
	}
	return g
}

// countsFor returns the bucketed counts for path, computing them from data
// on first use.
func (g *grepShared) countsFor(path string, data []byte) *shardCounts {
	g.mu.Lock()
	sc, ok := g.files[path]
	g.mu.Unlock()
	if ok {
		return sc
	}
	sc = &shardCounts{}
	tokenize(data, func(w []byte) {
		if i, ok := g.wordIdx[string(w)]; ok {
			s := i % GrepShards
			if sc[s] == nil {
				sc[s] = make(map[string]int)
			}
			sc[s][string(w)]++
		}
	})
	g.mu.Lock()
	if prev, ok := g.files[path]; ok {
		sc = prev // another block beat us; results are identical
	} else {
		g.files[path] = sc
	}
	g.mu.Unlock()
	return sc
}

// shardsOf returns the shards of file fi owned by worker idx when units
// (fi*GrepShards + s) are striped over workers.
func shardsOf(fi, idx, workers int) []int {
	var out []int
	for s := 0; s < GrepShards; s++ {
		if (fi*GrepShards+s)%workers == idx {
			out = append(out, s)
		}
	}
	return out
}

// shardWork is the virtual brute-force cost (in byte-word comparisons) of
// matching nShards of the dictionary against size bytes of text.
func shardWork(size int64, words, nShards int) int64 {
	return size * int64(words) * int64(nShards) / GrepShards
}

// GrepGPUfs runs the GPUfs implementation on one GPU: the kernel reads the
// dictionary, the file list, and every input file through the GPUfs API,
// and flushes its per-block output buffer into a shared output file with
// write-once semantics. This workload stresses gopen/gclose: the number of
// concurrently open files climbs toward the number of running threadblocks.
func GrepGPUfs(sys *gpufs.System, gpuID int, dictPath, listPath, outPath string, rate float64, blocks, threads int, outRegion int64) (*GrepResult, error) {
	if outRegion <= 0 {
		outRegion = DefaultGrepOutRegion
	}
	res := &GrepResult{Counts: make(map[string]int)}
	var mu sync.Mutex

	var dictOnce sync.Once
	var shared *grepShared

	end, err := sys.GPU(gpuID).Launch(0, blocks, threads, func(c *gpufs.BlockCtx) error {
		// Parse the dictionary (the text-parsing helpers of §5.2.2).
		// Every block reads it through GPUfs; the decode is shared.
		dfd, err := c.Gopen(dictPath, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		dinfo, err := c.Gfstat(dfd)
		if err != nil {
			return err
		}
		draw := make([]byte, dinfo.Size)
		if _, err := c.Gread(dfd, draw, 0); err != nil {
			return err
		}
		if err := c.Gclose(dfd); err != nil {
			return err
		}
		dictOnce.Do(func() { shared = newGrepShared(DecodeDictionary(draw)) })

		// Parse the input file list.
		lfd, err := c.Gopen(listPath, gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		linfo, err := c.Gfstat(lfd)
		if err != nil {
			return err
		}
		lraw := make([]byte, linfo.Size)
		if _, err := c.Gread(lfd, lraw, 0); err != nil {
			return err
		}
		if err := c.Gclose(lfd); err != nil {
			return err
		}
		files := parseFileList(lraw)

		ofd, err := c.Gopen(outPath, gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		outBase := int64(c.Idx) * outRegion
		outEnd := outBase + outRegion
		var outBuf []byte
		flush := func() error {
			if len(outBuf) == 0 {
				return nil
			}
			if outBase+int64(len(outBuf)) > outEnd {
				return fmt.Errorf("grep: block %d output region overflow", c.Idx)
			}
			if _, err := c.Gwrite(ofd, outBuf, outBase); err != nil {
				return err
			}
			outBase += int64(len(outBuf))
			outBuf = outBuf[:0]
			return nil
		}

		// With the syscall layer in relaxed mode, the block pipelines the
		// opens of its next few input files past the lane fence
		// (GopenAhead): the host round trips overlap this file's reads
		// and matching compute instead of serializing before each file.
		// Strong mode leaves the loop exactly as the prototype: one
		// blocking gopen per file.
		relaxed := sys.Config().SyscallOrdering == "relaxed"
		const openAheadWindow = 4
		var mine []int // indices of files this block owns shards for
		for fi := range files {
			if len(shardsOf(fi, c.Idx, c.Blocks)) > 0 {
				mine = append(mine, fi)
			}
		}
		pending := make(map[int]*gpufs.OpenFuture)

		local := make(map[string]int)
		var scanned int64
		var buf []byte
		for mi, fi := range mine {
			path := files[fi]
			myShards := shardsOf(fi, c.Idx, c.Blocks)
			if relaxed {
				for j := mi; j < len(mine) && j < mi+openAheadWindow; j++ {
					if pending[j] == nil {
						pending[j] = c.GopenAhead(files[mine[j]], gpufs.O_RDONLY)
					}
				}
			}
			// One file at a time: gopen (joining the open-ahead future if
			// one is in flight), gread the content, gclose.
			var fd int
			var err error
			if of := pending[mi]; of != nil {
				delete(pending, mi)
				fd, err = c.Gwait(of)
			} else {
				fd, err = c.Gopen(path, gpufs.O_RDONLY)
			}
			if err != nil {
				return err
			}
			info, err := c.Gfstat(fd)
			if err != nil {
				return err
			}
			if int64(len(buf)) < info.Size {
				buf = make([]byte, info.Size)
			}
			if _, err := c.Gread(fd, buf[:info.Size], 0); err != nil {
				return err
			}
			if err := c.Gclose(fd); err != nil {
				return err
			}
			scanned += info.Size

			// Each thread scans the text for its assigned words; the
			// block covers its dictionary shards.
			c.ComputeBytes(shardWork(info.Size, len(shared.dict.Words), len(myShards)), simtime.Rate(rate))
			sc := shared.countsFor(path, buf[:info.Size])
			for _, s := range myShards {
				for w, n := range sc[s] {
					local[w+"\t"+path] += n
					outBuf = append(outBuf, fmt.Sprintf("%s %s %d\n", w, path, n)...)
					if int64(len(outBuf)) >= outRegion/8 {
						if err := flush(); err != nil {
							return err
						}
					}
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
		if err := c.Gfsync(ofd); err != nil {
			return err
		}
		if err := c.Gclose(ofd); err != nil {
			return err
		}

		mu.Lock()
		for k, v := range local {
			res.Counts[k] += v
		}
		res.BytesScanned += scanned
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = simtime.Duration(end)
	return res, nil
}

// GrepVanillaGPU is the non-GPUfs baseline of Table 4: the CPU prefetches
// every input file into a large pinned buffer, transfers everything to the
// GPU in one piece, runs the matching kernel against in-memory text, and
// retrieves a pre-allocated output buffer (which makes the kernel crash if
// the output overflows — the fragility GPUfs removes). String parsing and
// formatted output run on the CPU as a post-processing phase.
func GrepVanillaGPU(sys *gpufs.System, gpuID int, dict *Dictionary, files []string, rate float64, blocks, threads int, outBufBytes int64) (*GrepResult, error) {
	g := sys.GPU(gpuID)
	rt := cudart.New(sys.Host(), g.Link(), g.Device(), 0)
	defer rt.Close()

	// Phase 1: CPU prefetch of all inputs into pinned memory.
	var total int64
	sizes := make([]int64, len(files))
	for i, p := range files {
		info, err := sys.Host().Stat(p)
		if err != nil {
			return nil, err
		}
		sizes[i] = info.Size
		total += info.Size
	}
	pinned := rt.HostMalloc(total)
	defer rt.HostFree(total)
	var off int64
	bounds := make([]int64, len(files)+1)
	for i, p := range files {
		f, err := sys.Host().Open(rt.Clock(), p, hostfs.O_RDONLY, 0)
		if err != nil {
			return nil, err
		}
		if _, err := rt.Pread(f, pinned[off:off+sizes[i]], 0); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
		bounds[i] = off
		off += sizes[i]
	}
	bounds[len(files)] = off

	// Phase 2: one bulk transfer of the text (conservatively assuming it
	// fits in device memory — the vanilla version's limitation).
	devText, err := rt.Malloc(total)
	if err != nil {
		return nil, err
	}
	defer devText.Free()
	if err := rt.Memcpy(devText.Data, pinned, pcie.HostToDevice); err != nil {
		return nil, err
	}
	devOut, err := rt.Malloc(outBufBytes)
	if err != nil {
		return nil, err
	}
	defer devOut.Free()

	// Phase 3: the matching kernel, with the same word-per-thread
	// sharding as the GPUfs version.
	res := &GrepResult{Counts: make(map[string]int), BytesScanned: total}
	shared := newGrepShared(dict)
	var mu sync.Mutex
	var outUsed int64
	stream := rt.NewStream()
	err = stream.Launch(blocks, threads, func(b *gpu.Block) error {
		for fi := range files {
			myShards := shardsOf(fi, b.Idx, b.Blocks)
			if len(myShards) == 0 {
				continue
			}
			data := devText.Data[bounds[fi]:bounds[fi+1]]
			b.TouchBytes(int64(len(data)))
			b.ComputeBytes(shardWork(int64(len(data)), len(dict.Words), len(myShards)), simtime.Rate(rate))
			sc := shared.countsFor(files[fi], data)
			mu.Lock()
			for _, s := range myShards {
				for w, n := range sc[s] {
					rec := int64(len(w) + len(files[fi]) + 16)
					if outUsed+rec > outBufBytes {
						mu.Unlock()
						// Out of output space: the vanilla kernel
						// crashes (§5.2.2).
						return fmt.Errorf("vanilla grep: output buffer overflow at %d bytes", outUsed)
					}
					outUsed += rec
					res.Counts[w+"\t"+files[fi]] += n
				}
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 4: retrieve the output buffer.
	stream.Synchronize()
	host := make([]byte, outUsed)
	if err := rt.Memcpy(host, devOut.Data[:outUsed], pcie.DeviceToHost); err != nil {
		return nil, err
	}

	res.Elapsed = simtime.Duration(rt.Clock().Now())
	return res, nil
}

// GrepCPU is the 8-core CPU reference: workers stripe the same (file,
// dictionary shard) units, prefetch content through the host file system,
// and match at the calibrated aggregate CPU rate.
func GrepCPU(host *hostfs.FS, dict *Dictionary, files []string, cores int, rate float64) (*GrepResult, error) {
	res := &GrepResult{Counts: make(map[string]int)}
	shared := newGrepShared(dict)
	perCore := rate / float64(cores)

	var mu sync.Mutex
	var wg sync.WaitGroup
	var meter simtime.Meter
	errs := make([]error, cores)

	for cpu := 0; cpu < cores; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			clock := simtime.NewClock(0)
			core := simtime.NewResource(fmt.Sprintf("grep-core-%d", cpu))
			local := make(map[string]int)
			var scanned int64
			for fi, path := range files {
				myShards := shardsOf(fi, cpu, cores)
				if len(myShards) == 0 {
					continue
				}
				data, err := readWith(host, clock, path)
				if err != nil {
					errs[cpu] = err
					return
				}
				sc := shared.countsFor(path, data)
				for _, s := range myShards {
					for w, n := range sc[s] {
						local[w+"\t"+path] += n
					}
				}
				scanned += int64(len(data))
				work := float64(shardWork(int64(len(data)), len(dict.Words), len(myShards)))
				clock.Use(core, simtime.Duration(work/perCore*float64(simtime.Second)))
			}
			mu.Lock()
			for k, v := range local {
				res.Counts[k] += v
			}
			res.BytesScanned += scanned
			mu.Unlock()
			meter.Observe(clock.Now())
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Elapsed = simtime.Duration(meter.Max())
	return res, nil
}

func readWith(host *hostfs.FS, clock *simtime.Clock, path string) ([]byte, error) {
	f, err := host.Open(clock, path, hostfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	n, err := f.Pread(clock, buf, 0)
	return buf[:n], err
}

// SortedCounts renders a GrepResult deterministically (tests, examples).
func (r *GrepResult) SortedCounts() []string {
	out := make([]string, 0, len(r.Counts))
	for k, v := range r.Counts {
		out = append(out, fmt.Sprintf("%s %d", k, v))
	}
	sort.Strings(out)
	return out
}
