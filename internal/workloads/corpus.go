// Package workloads provides the datasets, applications, and baseline
// implementations of the GPUfs evaluation (§5):
//
//   - deterministic synthetic corpora standing in for the paper's inputs
//     (the Linux 3.3.1 source tree, the complete works of Shakespeare, a
//     58,000-word modern-English dictionary, and randomly generated image
//     databases);
//   - the two applications — approximate image matching and exact string
//     matching ("grep -w") — each in a GPUfs version, a vanilla-GPU
//     version, and an 8-core CPU version;
//   - the microbenchmark kernels (sequential read, random read, cache-hit
//     read, matrix–vector product) and their hand-coded CUDA baselines.
//
// Real data flows through every path (matches are found by real byte
// comparison); virtual time is charged at rates calibrated to the paper's
// measurements, so benchmark *shapes* reproduce while Go-side compute stays
// cheap.
package workloads

import (
	"fmt"
	"math/rand"

	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
)

// letters used to synthesize word-like tokens.
const letters = "abcdefghijklmnopqrstuvwxyz"

// WordAlign is the dictionary entry alignment: the paper reformats the
// dictionary so every word sits on a 32-byte boundary (§5.2.2); no word
// exceeds that length.
const WordAlign = 32

// MakeWord deterministically generates the i'th synthetic word: 3-12
// lowercase letters, unique per index.
func MakeWord(i int) string {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 12345))
	n := 3 + rng.Intn(10)
	b := make([]byte, n)
	for j := range b {
		b[j] = letters[rng.Intn(len(letters))]
	}
	// Suffix with a base-26 encoding of i to guarantee uniqueness.
	for v := i; ; v /= 26 {
		b = append(b, letters[v%26])
		if v < 26 {
			break
		}
	}
	if len(b) >= WordAlign {
		b = b[:WordAlign-1]
	}
	return string(b)
}

// Dictionary is a word list in the paper's aligned on-disk format.
type Dictionary struct {
	Words []string
}

// MakeDictionary generates n unique words.
func MakeDictionary(n int) *Dictionary {
	d := &Dictionary{Words: make([]string, n)}
	for i := 0; i < n; i++ {
		d.Words[i] = MakeWord(i)
	}
	return d
}

// Encode renders the dictionary with every word zero-padded to a 32-byte
// boundary, the format the GPU parses (§5.2.2).
func (d *Dictionary) Encode() []byte {
	out := make([]byte, len(d.Words)*WordAlign)
	for i, w := range d.Words {
		copy(out[i*WordAlign:], w)
	}
	return out
}

// DecodeDictionary parses the aligned format back into words.
func DecodeDictionary(data []byte) *Dictionary {
	d := &Dictionary{}
	for off := 0; off+WordAlign <= len(data); off += WordAlign {
		end := off
		for end < off+WordAlign && data[end] != 0 {
			end++
		}
		if end > off {
			d.Words = append(d.Words, string(data[off:end]))
		}
	}
	return d
}

// TextSpec controls synthetic text generation.
type TextSpec struct {
	// Dict supplies the vocabulary; tokens are drawn from its words
	// (plus filler symbols) with a Zipf-flavoured skew, so realistic
	// match-count distributions emerge.
	Dict *Dictionary
	// DictFraction is the fraction of tokens drawn from the dictionary;
	// the rest are out-of-vocabulary tokens.
	DictFraction float64
	// Seed makes the text deterministic.
	Seed int64
}

// MakeText generates approximately size bytes of word text.
func MakeText(size int64, spec TextSpec) []byte {
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(len(spec.Dict.Words)-1))
	out := make([]byte, 0, size+16)
	for int64(len(out)) < size {
		if rng.Float64() < spec.DictFraction {
			out = append(out, spec.Dict.Words[zipf.Uint64()]...)
		} else {
			out = append(out, MakeWord(1_000_000+rng.Intn(1_000_000))...)
		}
		if rng.Intn(12) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:size]
}

// TreeSpec controls synthetic source-tree generation, shaped like the
// paper's Linux 3.3.1 checkout: ~33,000 mostly-small files totalling
// 524 MB ("few kilobytes on average").
type TreeSpec struct {
	Dir        string
	NumFiles   int
	TotalBytes int64
	Text       TextSpec
	// DirFanout is how many files share a directory.
	DirFanout int
}

// Tree is a generated corpus: the file list in generation order plus the
// path of the list file (the paper specifies the input file list in a
// file, §5.2.2).
type Tree struct {
	Files    []string
	ListPath string
	Bytes    int64
}

// MakeTree writes a synthetic source tree into fs. File sizes follow a
// skewed distribution (most small, a few large) normalized to TotalBytes.
func MakeTree(fs *hostfs.FS, clock *simtime.Clock, spec TreeSpec) (*Tree, error) {
	if spec.DirFanout <= 0 {
		spec.DirFanout = 64
	}
	if spec.NumFiles <= 0 {
		return nil, fmt.Errorf("workloads: tree needs at least one file")
	}
	rng := rand.New(rand.NewSource(spec.Text.Seed + 7))

	// Draw raw sizes from a lognormal-ish skew, then normalize.
	raw := make([]float64, spec.NumFiles)
	var sum float64
	for i := range raw {
		v := rng.ExpFloat64()*rng.ExpFloat64() + 0.05
		raw[i] = v
		sum += v
	}

	t := &Tree{}
	mode := hostfs.ModeRead | hostfs.ModeWrite
	var list []byte
	for i := range raw {
		size := int64(raw[i] / sum * float64(spec.TotalBytes))
		if size < 64 {
			size = 64
		}
		dir := fmt.Sprintf("%s/d%03d", spec.Dir, i/spec.DirFanout)
		if i%spec.DirFanout == 0 {
			if err := fs.MkdirAll(dir, hostfs.ModeDir|mode); err != nil {
				return nil, err
			}
		}
		path := fmt.Sprintf("%s/f%05d.c", dir, i)
		sub := spec.Text
		sub.Seed = spec.Text.Seed ^ int64(i)*0x9e3779b9
		data := MakeText(size, sub)
		if err := fs.WriteFile(clock, path, data, mode); err != nil {
			return nil, err
		}
		t.Files = append(t.Files, path)
		t.Bytes += size
		list = append(list, path...)
		list = append(list, '\n')
	}

	t.ListPath = spec.Dir + "/filelist.txt"
	if err := fs.WriteFile(clock, t.ListPath, list, mode); err != nil {
		return nil, err
	}
	return t, nil
}
