package hostfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gpufs/internal/simtime"
)

func newFS() *FS {
	return New(Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        8 * simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      64 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
}

func clk() *simtime.Clock { return simtime.NewClock(0) }

const rw = ModeRead | ModeWrite

func TestCreateWriteRead(t *testing.T) {
	fs := newFS()
	c := clk()
	if err := fs.MkdirAll("/a/b/c", ModeDir|rw); err != nil {
		t.Fatal(err)
	}
	want := []byte("hello gpufs")
	if err := fs.WriteFile(c, "/a/b/c/f.txt", want, rw); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(c, "/a/b/c/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if c.Now() == 0 {
		t.Fatalf("operations should cost virtual time")
	}
}

func TestPathResolutionErrors(t *testing.T) {
	fs := newFS()
	c := clk()
	if _, err := fs.Open(c, "/missing", O_RDONLY, 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if err := fs.Mkdir("/x/y", ModeDir|rw); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mkdir without parent: %v", err)
	}
	fs.Mkdir("/d", ModeDir|rw)
	if err := fs.Mkdir("/d", ModeDir|rw); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if _, err := fs.Open(c, "/d", O_RDONLY, 0); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
	fs.WriteFile(c, "/plain", nil, rw)
	if err := fs.Mkdir("/plain/sub", ModeDir|rw); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mkdir under file: %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", []byte("data"), rw)

	if _, err := fs.Open(c, "/f", O_WRONLY|O_CREATE|O_EXCL, rw); !errors.Is(err, ErrExist) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	f, err := fs.Open(c, "/f", O_WRONLY|O_TRUNC, rw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("O_TRUNC did not truncate")
	}
	f.Close()
}

func TestAccessModeEnforcement(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", []byte("data"), rw)

	ro, _ := fs.Open(c, "/f", O_RDONLY, 0)
	if _, err := ro.Pwrite(c, []byte("x"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write through O_RDONLY: %v", err)
	}
	wo, _ := fs.Open(c, "/f", O_WRONLY, 0)
	buf := make([]byte, 4)
	if _, err := wo.Pread(c, buf, 0); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("read through O_WRONLY: %v", err)
	}
	ro.Close()
	wo.Close()
}

func TestPermissionBits(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/noread", nil, ModeWrite)
	if _, err := fs.Open(c, "/noread", O_RDONLY, 0); !errors.Is(err, ErrPerm) {
		t.Fatalf("unreadable file opened: %v", err)
	}
	fs.WriteFile(c, "/nowrite", nil, rw)
	// Strip write permission by creating a fresh read-only file.
	fs2 := newFS()
	f, err := fs2.Open(clk(), "/ro", O_WRONLY|O_CREATE, ModeRead)
	if err == nil {
		f.Close()
	}
	if _, err := fs2.Open(clk(), "/ro", O_WRONLY, 0); err == nil {
		t.Skip("creation path grants writability; enforcement covered above")
	}
}

func TestPwriteExtendsAndGenerationBumps(t *testing.T) {
	fs := newFS()
	c := clk()
	f, err := fs.Open(c, "/f", O_RDWR|O_CREATE, rw)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g0, _ := fs.InodeGeneration(f.Ino())
	if _, err := f.Pwrite(c, []byte("abc"), 10); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Fstat(c)
	if info.Size != 13 {
		t.Fatalf("size = %d, want 13", info.Size)
	}
	g1, _ := fs.InodeGeneration(f.Ino())
	if g1 <= g0 {
		t.Fatalf("generation must advance on write: %d -> %d", g0, g1)
	}
	// The gap reads as zeros.
	buf := make([]byte, 13)
	f.Pread(c, buf, 0)
	for i := 0; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole not zero at %d", i)
		}
	}
}

func TestFtruncate(t *testing.T) {
	fs := newFS()
	c := clk()
	f, _ := fs.Open(c, "/f", O_RDWR|O_CREATE, rw)
	defer f.Close()
	f.Pwrite(c, []byte("0123456789"), 0)

	if err := f.Ftruncate(c, 4); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("shrink failed: %d", f.Size())
	}
	if err := f.Ftruncate(c, 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	f.Pread(c, buf, 0)
	if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("grow should zero-fill: %q", buf)
	}
	if err := f.Ftruncate(c, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative truncate: %v", err)
	}
}

func TestUnlinkSemantics(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", []byte("data"), rw)
	f, _ := fs.Open(c, "/f", O_RDONLY, 0)

	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after unlink: %v", err)
	}
	// POSIX: the open descriptor still reads.
	buf := make([]byte, 4)
	n, err := f.Pread(c, buf, 0)
	if err != nil || n != 4 {
		t.Fatalf("read after unlink: n=%d err=%v", n, err)
	}
	f.Close()
	if _, ok := fs.InodeGeneration(f.Ino()); ok {
		t.Fatalf("inode should be gone after last close")
	}
	if err := fs.Unlink("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double unlink: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.MkdirAll("/d/e", ModeDir|rw)
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Rmdir("/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	_ = c
}

func TestReadDir(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.MkdirAll("/d", ModeDir|rw)
	fs.WriteFile(c, "/d/b", nil, rw)
	fs.WriteFile(c, "/d/a", nil, rw)
	fs.MkdirAll("/d/z", ModeDir|rw)
	infos, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Name != "a" || infos[1].Name != "b" || infos[2].Name != "z" {
		t.Fatalf("readdir order wrong: %+v", infos)
	}
	if !infos[2].IsDir {
		t.Fatalf("z should be a dir")
	}
}

func TestClosedDescriptorRejected(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", []byte("x"), rw)
	f, _ := fs.Open(c, "/f", O_RDONLY, 0)
	f.Close()
	if _, err := f.Pread(c, make([]byte, 1), 0); !errors.Is(err, ErrBadFd) {
		t.Fatalf("read after close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrBadFd) {
		t.Fatalf("double close: %v", err)
	}
}

func TestCachedVsDiskTiming(t *testing.T) {
	fs := newFS()
	c := clk()
	data := make([]byte, 8<<20)
	fs.WriteFile(c, "/big", data, rw)

	f, _ := fs.Open(c, "/big", O_RDONLY, 0)
	defer f.Close()
	buf := make([]byte, len(data))

	// Warm (just written): cached read at memory bandwidth.
	t0 := c.Now()
	f.Pread(c, buf, 0)
	warm := c.Now() - t0

	fs.DropCaches()
	t0 = c.Now()
	f.Pread(c, buf, 0)
	cold := c.Now() - t0

	if cold < 10*warm {
		t.Fatalf("cold read (%v) should be much slower than warm (%v)", simtime.Duration(cold), simtime.Duration(warm))
	}
	// The second cold read hits again.
	t0 = c.Now()
	f.Pread(c, buf, 0)
	rewarm := c.Now() - t0
	if rewarm > cold/5 {
		t.Fatalf("re-read should be cached: %v vs %v", simtime.Duration(rewarm), simtime.Duration(cold))
	}
}

func TestReadaheadStopsAtEOF(t *testing.T) {
	fs := newFS()
	c := clk()
	// A tiny file: a cold read must not charge a full readahead window.
	fs.WriteFile(c, "/tiny", make([]byte, 1000), rw)
	fs.DropCaches()
	fs.Disk().Reset()

	f, _ := fs.Open(c, "/tiny", O_RDONLY, 0)
	defer f.Close()
	f.Pread(c, make([]byte, 1000), 0)
	read, _, _ := fs.Disk().Stats()
	if read > 64<<10 {
		t.Fatalf("readahead overshot a 1000-byte file: read %d bytes from disk", read)
	}
}

func TestReservePinnedShrinksCache(t *testing.T) {
	fs := New(Options{
		DiskBandwidth: 132 * simtime.MBps,
		DiskSeek:      simtime.Millisecond,
		MemBandwidth:  6600 * simtime.MBps,
		CacheBytes:    4 << 20,
	})
	c := clk()
	data := make([]byte, 3<<20)
	fs.WriteFile(c, "/f", data, rw)
	if fs.CacheResident() == 0 {
		t.Fatalf("write should populate the cache")
	}
	// Pin most of RAM: the resident set must shrink on the next charge.
	fs.ReservePinned(3 << 20)
	f, _ := fs.Open(c, "/f", O_RDONLY, 0)
	defer f.Close()
	f.Pread(c, make([]byte, 1<<20), 0)
	if fs.CacheResident() > 1<<20+64<<10 {
		t.Fatalf("pinned reservation not honored: resident %d", fs.CacheResident())
	}
	fs.ReservePinned(-3 << 20)
}

func TestTimingFree(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", make([]byte, 1<<20), rw)
	fs.SetTimingFree(true)
	defer fs.SetTimingFree(false)
	before := c.Now()
	f, _ := fs.Open(c, "/f", O_RDONLY, 0)
	f.Pread(c, make([]byte, 1<<20), 0)
	f.Close()
	if c.Now() != before {
		t.Fatalf("timing-free mode charged %v", simtime.Duration(c.Now()-before))
	}
}

func TestFsyncWritesToDisk(t *testing.T) {
	fs := newFS()
	c := clk()
	f, _ := fs.Open(c, "/f", O_RDWR|O_CREATE, rw)
	defer f.Close()
	f.Pwrite(c, make([]byte, 1<<20), 0)
	fs.Disk().Reset()
	if err := f.Fsync(c); err != nil {
		t.Fatal(err)
	}
	if _, written, _ := fs.Disk().Stats(); written == 0 {
		t.Fatalf("fsync should write dirty data to disk")
	}
	// Second fsync: nothing dirty.
	fs.Disk().Reset()
	f.Fsync(c)
	if _, written, _ := fs.Disk().Stats(); written != 0 {
		t.Fatalf("fsync of clean file wrote %d bytes", written)
	}
}

func TestGenerationPeek(t *testing.T) {
	fs := newFS()
	c := clk()
	fs.WriteFile(c, "/f", []byte("v1"), rw)
	info, _ := fs.Stat("/f")
	g, ok := fs.InodeGeneration(info.Ino)
	if !ok || g != info.Generation {
		t.Fatalf("InodeGeneration mismatch: %d/%v vs %d", g, ok, info.Generation)
	}
	if _, ok := fs.InodeGeneration(99999); ok {
		t.Fatalf("unknown inode should not resolve")
	}
}

func TestTruncateThenExtendReadsZeros(t *testing.T) {
	// Regression: shrinking a file and then extending it with a write
	// must expose zeros in the gap, not pre-truncation bytes that
	// survived in the backing array's capacity.
	fs := newFS()
	c := clk()
	f, _ := fs.Open(c, "/f", O_RDWR|O_CREATE, rw)
	defer f.Close()

	f.Pwrite(c, bytes.Repeat([]byte{0xE6}, 1000), 0)
	if err := f.Ftruncate(c, 100); err != nil {
		t.Fatal(err)
	}
	// Extend past the old end with a distant write.
	f.Pwrite(c, []byte{0xAB}, 900)

	buf := make([]byte, 901)
	f.Pread(c, buf, 0)
	for i := 100; i < 900; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %#x at %d resurrected after truncate+extend", buf[i], i)
		}
	}
	if buf[900] != 0xAB {
		t.Fatalf("extending write lost")
	}
}

func TestPathEdgeCases(t *testing.T) {
	fs := newFS()
	c := clk()
	// Paths are cleaned: ., .., duplicate slashes.
	fs.MkdirAll("/a/b", ModeDir|rw)
	if err := fs.WriteFile(c, "/a//b/../b/./f", []byte("x"), rw); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a/b/f"); err != nil {
		t.Fatalf("cleaned path not equivalent: %v", err)
	}
	// Relative paths are rooted.
	if _, err := fs.Stat("a/b/f"); err != nil {
		t.Fatalf("relative path: %v", err)
	}
	// Root stat.
	info, err := fs.Stat("/")
	if err != nil || !info.IsDir {
		t.Fatalf("root stat: %+v %v", info, err)
	}
	// Overlong component.
	long := strings.Repeat("x", 300)
	if _, err := fs.Open(c, "/"+long, O_CREATE|O_WRONLY, rw); !errors.Is(err, ErrNameTooBig) {
		t.Fatalf("overlong name: %v", err)
	}
}

func TestConcurrentFilesIndependent(t *testing.T) {
	fs := newFS()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clk()
			path := fmt.Sprintf("/c%d", i)
			want := bytes.Repeat([]byte{byte(i)}, 4096)
			if err := fs.WriteFile(c, path, want, rw); err != nil {
				errs[i] = err
				return
			}
			got, err := fs.ReadFile(c, path)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, want) {
				errs[i] = errors.New("content mismatch")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}
