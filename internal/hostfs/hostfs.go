// Package hostfs implements the host operating system's file system — the
// substrate underneath GPUfs. It provides a POSIX-flavoured API (Open,
// Pread, Pwrite, Fsync, Ftruncate, Unlink, Stat, Mkdir, ReadDir) over an
// in-memory inode store, with a CPU buffer (page) cache in front of a
// simulated rotational disk.
//
// File *contents* are real bytes; *timing* is virtual. Reads of ranges that
// are resident in the CPU page cache are charged at CPU memory bandwidth
// (6600 MB/s on the paper's testbed); non-resident ranges are charged to the
// disk model (132 MB/s plus seeks) and brought into the cache, evicting
// least-recently-used pages when RAM is exhausted. This reproduces the two
// performance regimes the paper's evaluation straddles: page-cache-bound
// sequential reads (Figures 4-5) and the disk-bound tail of Figure 8.
package hostfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gpufs/internal/disk"
	"gpufs/internal/faults"
	"gpufs/internal/simtime"
)

// Open flags, mirroring the POSIX subset GPUfs forwards to the host (§3.2).
const (
	O_RDONLY int = 0x0
	O_WRONLY int = 0x1
	O_RDWR   int = 0x2
	O_CREATE int = 0x40
	O_TRUNC  int = 0x200
	O_EXCL   int = 0x80

	accessMask = 0x3
)

// Mode is a simplified permission mode.
type Mode uint32

// Permission bits.
const (
	ModeRead  Mode = 0x4
	ModeWrite Mode = 0x2
	ModeDir   Mode = 0x4000
)

// Errors returned by file-system operations.
var (
	ErrNotExist   = errors.New("hostfs: no such file or directory")
	ErrExist      = errors.New("hostfs: file exists")
	ErrIsDir      = errors.New("hostfs: is a directory")
	ErrNotDir     = errors.New("hostfs: not a directory")
	ErrPerm       = errors.New("hostfs: permission denied")
	ErrBadFd      = errors.New("hostfs: file descriptor closed")
	ErrReadOnly   = errors.New("hostfs: file opened read-only")
	ErrWriteOnly  = errors.New("hostfs: file opened write-only")
	ErrInvalid    = errors.New("hostfs: invalid argument")
	ErrNotEmpty   = errors.New("hostfs: directory not empty")
	ErrNameTooBig = errors.New("hostfs: path component too long")
	// ErrIO is the EIO class: a media or device error. Never retried
	// successfully by the RPC layer — it is a valid (failed) reply, not a
	// lost one.
	ErrIO = errors.New("hostfs: input/output error (EIO)")
)

const maxNameLen = 255

// sectorSize is the granularity of persistent (bad-sector) read failures;
// it matches the injector's hashing granularity.
const sectorSize = 4096

// FileInfo describes a file, as returned by Stat and Fstat.
type FileInfo struct {
	Name string
	Ino  int64
	Size int64
	Mode Mode
	// Generation counts content-modifying operations (writes, truncates)
	// committed to this inode. The wrapfs consistency layer compares
	// generations to decide whether a GPU's cached copy is stale.
	Generation int64
	IsDir      bool
}

type inode struct {
	ino  int64
	mode Mode

	mu       sync.Mutex
	isDir    bool
	children map[string]*inode // directories only
	data     []byte            // regular files only
	gen      int64
	nlink    int
	opens    int
}

func (n *inode) size() int64 { return int64(len(n.data)) }

// FS is the host file system. All operations are safe for concurrent use.
type FS struct {
	disk    *disk.Disk
	membus  *simtime.Resource
	cache   *pageCache
	memRate simtime.Rate

	syscall simtime.Duration

	// timingFree, when set, makes all operations cost zero virtual time
	// while still moving real data. The Figure 5 benchmark uses it to
	// isolate the "CPU file I/O excluded" cost component.
	timingFree atomic.Bool

	// inj injects host-side I/O faults (EIO, short reads, bad sectors,
	// fsync failures); nil means no injection.
	inj atomic.Pointer[faults.Injector]

	mu      sync.Mutex
	root    *inode
	nextIno int64
	byIno   map[int64]*inode
}

// SetTimingFree toggles zero-cost mode (see the field comment).
func (fs *FS) SetTimingFree(on bool) { fs.timingFree.Store(on) }

// SetFaultInjector installs (or, with nil, removes) the fault injector for
// host I/O and propagates it to the backing disk's latency model.
func (fs *FS) SetFaultInjector(inj *faults.Injector) {
	fs.inj.Store(inj)
	fs.disk.SetFaultInjector(inj)
}

// chargeSyscall advances the clock by the syscall overhead unless timing is
// disabled.
func (fs *FS) chargeSyscall(c *simtime.Clock) {
	if !fs.timingFree.Load() {
		c.Advance(fs.syscall)
	}
}

// Options configures a host file system.
type Options struct {
	// DiskBandwidth and DiskSeek parameterize the backing disk.
	DiskBandwidth simtime.Rate
	DiskSeek      simtime.Duration
	// MemBandwidth is the CPU memory copy bandwidth for cached reads.
	MemBandwidth simtime.Rate
	// CacheBytes is the CPU page cache capacity (host RAM).
	CacheBytes int64
	// SyscallOverhead is the fixed per-call cost.
	SyscallOverhead simtime.Duration
}

// New creates an empty host file system with a root directory.
func New(opt Options) *FS {
	fs := &FS{
		disk:    disk.New(opt.DiskBandwidth, opt.DiskSeek),
		membus:  simtime.NewResource("cpu-membus"),
		syscall: opt.SyscallOverhead,
		nextIno: 2, // 1 is the root
	}
	fs.cache = newPageCache(opt.CacheBytes, fs.disk)
	fs.byIno = make(map[int64]*inode)
	fs.root = &inode{
		ino:      1,
		mode:     ModeDir | ModeRead | ModeWrite,
		isDir:    true,
		children: make(map[string]*inode),
		nlink:    1,
	}
	fs.byIno[fs.root.ino] = fs.root
	fs.memRate = opt.MemBandwidth
	return fs
}

// InodeGeneration reports the current content generation of inode ino, or
// false if no such live inode exists. The wrapfs consistency layer exposes
// this through write-shared memory so GPUs can validate cached files
// without a daemon round trip.
func (fs *FS) InodeGeneration(ino int64) (int64, bool) {
	fs.mu.Lock()
	n, ok := fs.byIno[ino]
	fs.mu.Unlock()
	if !ok {
		return 0, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.nlink == 0 {
		return 0, false
	}
	return n.gen, true
}

// Disk exposes the underlying disk model (for statistics).
func (fs *FS) Disk() *disk.Disk { return fs.disk }

// MemBus exposes the CPU memory-bus resource so other components (the DMA
// engine staging through pinned host memory) can contend with file reads on
// the same physical bandwidth.
func (fs *FS) MemBus() *simtime.Resource { return fs.membus }

// DropCaches empties the CPU page cache, like `echo 3 >
// /proc/sys/vm/drop_caches`. The paper flushes the OS page cache before the
// image-search experiments.
func (fs *FS) DropCaches() { fs.cache.drop() }

// CacheResident reports the number of bytes currently resident in the CPU
// page cache.
func (fs *FS) CacheResident() int64 { return fs.cache.resident() }

// ResetTime returns the host's virtual-time resources (memory bus, disk)
// to idle without touching file contents or page-cache residency. The
// benchmark harness calls it after workload generation so setup I/O does
// not pollute measured timelines.
func (fs *FS) ResetTime() {
	fs.membus.Reset()
	fs.disk.Reset()
}

// ReservePinned adjusts the amount of host RAM pinned by applications
// (page-locked DMA buffers), which shrinks the page cache's effective
// capacity — pinned memory "competes with the CPU buffer cache" (§5.1.4).
// Pass a negative delta to release.
func (fs *FS) ReservePinned(delta int64) { fs.cache.reserve(delta) }

// ---- Path resolution ----

// lookup walks an absolute slash-separated path and returns the inode, or
// ErrNotExist. The FS lock must be held.
func (fs *FS) lookupLocked(p string) (*inode, error) {
	n, _, _, err := fs.walkLocked(p)
	return n, err
}

// walkLocked resolves p, returning the target (nil if absent), its parent
// directory, and the final path component.
func (fs *FS) walkLocked(p string) (n, parent *inode, base string, err error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return fs.root, nil, "/", nil
	}
	parts := strings.Split(clean[1:], "/")
	cur := fs.root
	for i, part := range parts {
		if len(part) > maxNameLen {
			return nil, nil, "", fmt.Errorf("%w: %q", ErrNameTooBig, part)
		}
		if !cur.isDir {
			return nil, nil, "", fmt.Errorf("%w: %q", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		next := cur.children[part]
		if i == len(parts)-1 {
			return next, cur, part, nil
		}
		if next == nil {
			return nil, nil, "", fmt.Errorf("%w: %q", ErrNotExist, clean)
		}
		cur = next
	}
	return nil, nil, "", fmt.Errorf("%w: %q", ErrNotExist, clean)
}

// Mkdir creates a directory. Parent directories must exist.
func (fs *FS) Mkdir(p string, mode Mode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, parent, base, err := fs.walkLocked(p)
	if err != nil {
		return err
	}
	if n != nil {
		return fmt.Errorf("%w: %q", ErrExist, p)
	}
	if parent == nil {
		return fmt.Errorf("%w: %q", ErrInvalid, p)
	}
	child := &inode{
		ino:      fs.nextIno,
		mode:     mode | ModeDir,
		isDir:    true,
		children: make(map[string]*inode),
		nlink:    1,
	}
	fs.nextIno++
	parent.children[base] = child
	fs.byIno[child.ino] = child
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string, mode Mode) error {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil
	}
	parts := strings.Split(clean[1:], "/")
	for i := range parts {
		prefix := "/" + strings.Join(parts[:i+1], "/")
		if err := fs.Mkdir(prefix, mode); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Stat returns metadata for the file at p.
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupLocked(p)
	if err != nil {
		return FileInfo{}, err
	}
	if n == nil {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	return fs.infoLocked(path.Base(path.Clean("/"+p)), n), nil
}

func (fs *FS) infoLocked(name string, n *inode) FileInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return FileInfo{
		Name:       name,
		Ino:        n.ino,
		Size:       n.size(),
		Mode:       n.mode,
		Generation: n.gen,
		IsDir:      n.isDir,
	}
}

// ReadDir lists the entries of directory p in lexical order.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupLocked(p)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if !n.isDir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]FileInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, fs.infoLocked(name, n.children[name]))
	}
	return infos, nil
}

// Unlink removes the file at p. Open descriptors remain usable (POSIX
// semantics); the content is dropped when the last descriptor closes.
func (fs *FS) Unlink(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, parent, base, err := fs.walkLocked(p)
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.isDir {
		return fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	delete(parent.children, base)
	n.mu.Lock()
	n.nlink--
	drop := n.nlink == 0 && n.opens == 0
	n.mu.Unlock()
	delete(fs.byIno, n.ino)
	if drop {
		fs.cache.forget(n.ino)
	}
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, parent, base, err := fs.walkLocked(p)
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if !n.isDir {
		return fmt.Errorf("%w: %q", ErrNotDir, p)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, p)
	}
	delete(parent.children, base)
	delete(fs.byIno, n.ino)
	return nil
}

// ---- Open files ----

// File is an open file description with an access mode, analogous to a
// POSIX file descriptor. Reads and writes are positional only (pread and
// pwrite); there is no seek pointer, matching what GPUfs needs from the
// host (§3.2).
type File struct {
	fs    *FS
	node  *inode
	name  string
	flags int

	mu     sync.Mutex
	closed bool
}

// Open opens the file at p. The clock is charged the syscall overhead plus
// any disk time needed (none for open itself). O_CREATE creates missing
// files; O_TRUNC truncates on open; O_EXCL with O_CREATE fails on existing
// files.
func (fs *FS) Open(c *simtime.Clock, p string, flags int, mode Mode) (*File, error) {
	fs.chargeSyscall(c)

	fs.mu.Lock()
	n, parent, base, err := fs.walkLocked(p)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	switch {
	case n == nil && flags&O_CREATE == 0:
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	case n == nil:
		if parent == nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrInvalid, p)
		}
		n = &inode{
			ino:   fs.nextIno,
			mode:  mode,
			nlink: 1,
		}
		fs.nextIno++
		parent.children[base] = n
		fs.byIno[n.ino] = n
	case flags&(O_CREATE|O_EXCL) == O_CREATE|O_EXCL:
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExist, p)
	case n.isDir:
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	fs.mu.Unlock()

	n.mu.Lock()
	acc := flags & accessMask
	if (acc == O_RDONLY || acc == O_RDWR) && n.mode&ModeRead == 0 {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q not readable", ErrPerm, p)
	}
	if (acc == O_WRONLY || acc == O_RDWR) && n.mode&ModeWrite == 0 {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q not writable", ErrPerm, p)
	}
	if flags&O_TRUNC != 0 && acc != O_RDONLY {
		n.data = nil
		n.gen++
		fs.cache.forget(n.ino)
	}
	n.opens++
	n.mu.Unlock()

	return &File{fs: fs, node: n, name: path.Clean("/" + p), flags: flags}, nil
}

// Name reports the path the file was opened with.
func (f *File) Name() string { return f.name }

// Ino reports the file's inode number.
func (f *File) Ino() int64 { return f.node.ino }

// Close releases the descriptor.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrBadFd
	}
	f.closed = true
	f.mu.Unlock()

	n := f.node
	n.mu.Lock()
	n.opens--
	drop := n.nlink == 0 && n.opens == 0
	n.mu.Unlock()
	if drop {
		f.fs.cache.forget(n.ino)
	}
	return nil
}

func (f *File) check(write bool) error {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrBadFd
	}
	acc := f.flags & accessMask
	if write && acc == O_RDONLY {
		return fmt.Errorf("%w: %q", ErrReadOnly, f.name)
	}
	if !write && acc == O_WRONLY {
		return fmt.Errorf("%w: %q", ErrWriteOnly, f.name)
	}
	return nil
}

// Pread reads len(p) bytes at offset off, charging page-cache or disk time
// as appropriate, and returns the byte count (short at EOF).
func (f *File) Pread(c *simtime.Clock, p []byte, off int64) (int, error) {
	if err := f.check(false); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	f.fs.chargeSyscall(c)

	n := f.node
	n.mu.Lock()
	if off >= n.size() {
		n.mu.Unlock()
		return 0, nil
	}
	cnt := copy(p, n.data[off:])
	size := n.size()
	n.mu.Unlock()

	if inj := f.fs.inj.Load(); inj.Enabled() {
		if inj.Should(faults.HostReadEIO, c.Now()) {
			return 0, fmt.Errorf("%w: read %q at %d", ErrIO, f.name, off)
		}
		for so := off - off%sectorSize; so < off+int64(cnt); so += sectorSize {
			if inj.BadSector(n.ino, so, c.Now()) {
				return 0, fmt.Errorf("%w: %q sector at %d unreadable", ErrIO, f.name, so)
			}
		}
		if cnt > 1 && inj.Should(faults.HostShortRead, c.Now()) {
			// Short read: at least 1 byte, strictly fewer than asked.
			cnt = 1 + int(inj.Fraction(faults.HostShortRead)*float64(cnt-1))
		}
	}

	// Timing: bring missing units in from disk, then copy over the memory
	// bus.
	if !f.fs.timingFree.Load() {
		end := f.fs.cache.charge(c.Now(), n.ino, off, int64(cnt), size, false)
		c.AdvanceTo(end)
		c.Use(f.fs.membus, simtime.TransferTime(int64(cnt), f.fs.memRate))
	}
	return cnt, nil
}

// Pwrite writes len(p) bytes at offset off, extending the file if needed.
// Data lands in the page cache (dirty); it reaches the disk on Fsync or
// under cache pressure.
func (f *File) Pwrite(c *simtime.Clock, p []byte, off int64) (int, error) {
	if err := f.check(true); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	f.fs.chargeSyscall(c)

	if inj := f.fs.inj.Load(); inj.Should(faults.HostWriteEIO, c.Now()) {
		return 0, fmt.Errorf("%w: write %q at %d", ErrIO, f.name, off)
	}

	n := f.node
	n.mu.Lock()
	need := off + int64(len(p))
	if need > n.size() {
		old := n.size()
		if need > int64(cap(n.data)) {
			grown := make([]byte, need, grow(cap(n.data), need))
			copy(grown, n.data)
			n.data = grown
		} else {
			// Reslicing within capacity exposes bytes from before a
			// truncation; the gap must read as zeros (POSIX holes).
			n.data = n.data[:need]
			for i := old; i < need; i++ {
				n.data[i] = 0
			}
		}
	}
	copy(n.data[off:], p)
	n.gen++
	n.mu.Unlock()

	if !f.fs.timingFree.Load() {
		end := f.fs.cache.charge(c.Now(), n.ino, off, int64(len(p)), need, true)
		c.AdvanceTo(end)
		c.Use(f.fs.membus, simtime.TransferTime(int64(len(p)), f.fs.memRate))
	}
	return len(p), nil
}

func grow(cur int, need int64) int64 {
	g := int64(cur) * 2
	if g < need {
		g = need
	}
	return g
}

// Fsync flushes the file's dirty page-cache units to disk, charging disk
// write time.
func (f *File) Fsync(c *simtime.Clock) error {
	if err := f.check(false); err != nil && !errors.Is(err, ErrWriteOnly) {
		return err
	}
	f.fs.chargeSyscall(c)
	if inj := f.fs.inj.Load(); inj.Should(faults.HostFsyncEIO, c.Now()) {
		return fmt.Errorf("%w: fsync %q", ErrIO, f.name)
	}
	if !f.fs.timingFree.Load() {
		end := f.fs.cache.sync(c.Now(), f.node.ino)
		c.AdvanceTo(end)
	}
	return nil
}

// Ftruncate sets the file size, discarding data and cached units beyond it.
func (f *File) Ftruncate(c *simtime.Clock, size int64) error {
	if err := f.check(true); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalid, size)
	}
	f.fs.chargeSyscall(c)

	n := f.node
	n.mu.Lock()
	switch {
	case size < n.size():
		n.data = n.data[:size]
	case size > n.size():
		if size > int64(cap(n.data)) {
			grown := make([]byte, size)
			copy(grown, n.data)
			n.data = grown
		} else {
			zero := n.data[n.size():size]
			for i := range zero {
				zero[i] = 0
			}
			n.data = n.data[:size]
		}
	}
	n.gen++
	n.mu.Unlock()
	f.fs.cache.truncate(n.ino, size)
	return nil
}

// Fstat returns the file's metadata.
func (f *File) Fstat(c *simtime.Clock) (FileInfo, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return FileInfo{}, ErrBadFd
	}
	f.fs.chargeSyscall(c)
	return f.fs.infoLocked(path.Base(f.name), f.node), nil
}

// Size reports the file's current size without charging any time (used by
// internal bookkeeping, not by simulated programs).
func (f *File) Size() int64 {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	return f.node.size()
}

// WriteFile is a convenience that creates (or truncates) the file at p with
// the given content, charging time to c. Parent directories must exist.
func (fs *FS) WriteFile(c *simtime.Clock, p string, data []byte, mode Mode) error {
	f, err := fs.Open(c, p, O_WRONLY|O_CREATE|O_TRUNC, mode)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Pwrite(c, data, 0); err != nil {
		return err
	}
	return nil
}

// ReadFile is a convenience that reads the whole file at p.
func (fs *FS) ReadFile(c *simtime.Clock, p string) ([]byte, error) {
	f, err := fs.Open(c, p, O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Fstat(c)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	total := 0
	for total < len(buf) {
		n, err := f.Pread(c, buf[total:], int64(total))
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break // EOF
		}
		total += n
	}
	return buf[:total], nil
}
