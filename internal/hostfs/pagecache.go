package hostfs

import (
	"container/list"
	"sync"

	"gpufs/internal/disk"
	"gpufs/internal/simtime"
)

// cacheUnit is the granularity at which CPU page-cache residency is tracked.
// Linux tracks 4 KB pages; we coarsen to 64 KB to bound metadata while
// preserving the cached-vs-disk distinction that drives the benchmarks.
const cacheUnit int64 = 64 << 10

// readaheadUnits is the OS readahead window (in cache units) pulled in on a
// read miss. Without readahead, interleaved sequential streams from many
// GPU threadblocks would degenerate into one disk seek per request —
// which Linux's readahead (128 KB-2 MB windows) prevents.
const readaheadUnits = 16 // 1 MB

// pageCache is the residency/timing model of the host OS buffer cache. It
// holds no data (inodes own the real bytes); it tracks which (inode, unit)
// ranges are in RAM, evicts LRU units under pressure, and charges disk time
// for misses and dirty write-back.
type pageCache struct {
	capacity int64
	d        *disk.Disk

	// reserved is RAM pinned by applications (cudaHostMalloc buffers),
	// which competes with the page cache — the effect that slows the
	// CUDA double-buffering baselines in the disk-bound regime of the
	// paper's Figure 8.
	reserved int64

	mu    sync.Mutex
	lru   *list.List // of *cacheEntry, front = most recent
	index map[unitKey]*list.Element
	bytes int64

	hits, misses int64
}

type unitKey struct {
	ino  int64
	unit int64
}

type cacheEntry struct {
	key   unitKey
	dirty bool
}

func newPageCache(capacity int64, d *disk.Disk) *pageCache {
	if capacity < cacheUnit {
		capacity = cacheUnit
	}
	return &pageCache{
		capacity: capacity,
		d:        d,
		lru:      list.New(),
		index:    make(map[unitKey]*list.Element),
	}
}

// charge makes the byte range [off, off+n) of inode ino resident and returns
// the virtual completion time. Read misses cost disk reads; write "misses"
// cost nothing beyond residency (the data is new). Dirty units displaced by
// the insertions are written back to disk.
func (pc *pageCache) charge(now simtime.Time, ino, off, n, fileSize int64, write bool) simtime.Time {
	if n <= 0 {
		return now
	}
	first := off / cacheUnit
	last := (off + n - 1) / cacheUnit
	// Readahead never runs past end of file.
	eofUnit := (fileSize + cacheUnit - 1) / cacheUnit
	if eofUnit <= last {
		eofUnit = last + 1
	}

	end := now
	pc.mu.Lock()
	for u := first; u <= last; u++ {
		key := unitKey{ino, u}
		if el, ok := pc.index[key]; ok {
			pc.hits++
			pc.lru.MoveToFront(el)
			if write {
				el.Value.(*cacheEntry).dirty = true
			}
			continue
		}
		pc.misses++
		if write {
			// Write miss: the data is new; no disk read needed.
			el := pc.lru.PushFront(&cacheEntry{key: key, dirty: true})
			pc.index[key] = el
			pc.bytes += cacheUnit
			continue
		}
		// Read miss: bring in a readahead window in one contiguous
		// disk read, so interleaved sequential streams pay one seek
		// per window rather than one per unit.
		wEnd := u + readaheadUnits
		if demand := last + 1; demand > wEnd {
			wEnd = demand
		}
		if wEnd > eofUnit {
			wEnd = eofUnit
		}
		var bytes int64
		for w := u; w < wEnd; w++ {
			wkey := unitKey{ino, w}
			if _, ok := pc.index[wkey]; ok {
				break // already resident: keep the read contiguous
			}
			el := pc.lru.PushFront(&cacheEntry{key: wkey, dirty: false})
			pc.index[wkey] = el
			pc.bytes += cacheUnit
			bytes += cacheUnit
		}
		if t := pc.d.Read(now, ino, u*cacheUnit, bytes); t > end {
			end = t
		}
		u += bytes/cacheUnit - 1
	}

	// Evict under pressure; dirty victims are written back.
	for pc.bytes > pc.capacity-pc.reserved {
		el := pc.lru.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		if ent.dirty {
			t := pc.d.Write(now, ent.key.ino, ent.key.unit*cacheUnit, cacheUnit)
			if t > end {
				end = t
			}
		}
		pc.lru.Remove(el)
		delete(pc.index, ent.key)
		pc.bytes -= cacheUnit
	}
	pc.mu.Unlock()
	return end
}

// sync writes back all dirty units of ino and returns the completion time.
func (pc *pageCache) sync(now simtime.Time, ino int64) simtime.Time {
	end := now
	pc.mu.Lock()
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.key.ino == ino && ent.dirty {
			t := pc.d.Write(now, ino, ent.key.unit*cacheUnit, cacheUnit)
			if t > end {
				end = t
			}
			ent.dirty = false
		}
	}
	pc.mu.Unlock()
	return end
}

// forget drops all units of ino without write-back (unlink of an inode with
// no remaining links).
func (pc *pageCache) forget(ino int64) {
	pc.mu.Lock()
	var next *list.Element
	for el := pc.lru.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.ino == ino {
			pc.lru.Remove(el)
			delete(pc.index, ent.key)
			pc.bytes -= cacheUnit
		}
	}
	pc.mu.Unlock()
}

// truncate drops units entirely beyond the new size.
func (pc *pageCache) truncate(ino, size int64) {
	keep := (size + cacheUnit - 1) / cacheUnit
	pc.mu.Lock()
	var next *list.Element
	for el := pc.lru.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.ino == ino && ent.key.unit >= keep {
			pc.lru.Remove(el)
			delete(pc.index, ent.key)
			pc.bytes -= cacheUnit
		}
	}
	pc.mu.Unlock()
}

// drop empties the cache without write-back (drop_caches semantics; dirty
// data is not lost because inodes own the real bytes — only timing state is
// discarded).
func (pc *pageCache) drop() {
	pc.mu.Lock()
	pc.lru.Init()
	pc.index = make(map[unitKey]*list.Element)
	pc.bytes = 0
	pc.mu.Unlock()
}

// reserve adjusts the pinned-memory reservation by delta bytes.
func (pc *pageCache) reserve(delta int64) {
	pc.mu.Lock()
	pc.reserved += delta
	if pc.reserved < 0 {
		pc.reserved = 0
	}
	if max := pc.capacity - cacheUnit; pc.reserved > max {
		pc.reserved = max
	}
	pc.mu.Unlock()
}

// resident reports the number of resident bytes.
func (pc *pageCache) resident() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.bytes
}

// stats reports cumulative hit/miss unit counts.
func (pc *pageCache) stats() (hits, misses int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}
