package hostfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpufs/internal/simtime"
)

// TestHostfsOracle drives the host file system through random operation
// sequences and validates every observation against a map-based model —
// the substrate must be trustworthy before GPUfs semantics are layered on
// top of it.
func TestHostfsOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runHostfsOracle(t, seed)
		})
	}
}

func runHostfsOracle(t *testing.T, seed int64) {
	fs := New(Options{
		DiskBandwidth: 132 * simtime.MBps,
		DiskSeek:      simtime.Millisecond,
		MemBandwidth:  6600 * simtime.MBps,
		CacheBytes:    2 << 20, // small: eviction traffic too
	})
	c := simtime.NewClock(0)
	rng := rand.New(rand.NewSource(seed))

	paths := []string{"/a", "/b", "/d/c", "/d/e"}
	fs.MkdirAll("/d", ModeDir|rw)
	model := map[string][]byte{} // existing files only

	const maxLen = 96 << 10
	for step := 0; step < 400; step++ {
		p := paths[rng.Intn(len(paths))]
		cur, exists := model[p]
		switch op := rng.Intn(100); {
		case op < 35: // pwrite (creating if needed)
			f, err := fs.Open(c, p, O_RDWR|O_CREATE, rw)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			off := rng.Intn(maxLen / 2)
			n := rng.Intn(8<<10) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := f.Pwrite(c, data, int64(off)); err != nil {
				t.Fatalf("step %d pwrite: %v", step, err)
			}
			f.Close()
			if off+n > len(cur) {
				grown := make([]byte, off+n)
				copy(grown, cur)
				cur = grown
			}
			copy(cur[off:], data)
			model[p] = cur

		case op < 70: // pread
			if !exists {
				if _, err := fs.Open(c, p, O_RDONLY, 0); err == nil {
					t.Fatalf("step %d: opened a file the model says is absent", step)
				}
				continue
			}
			f, err := fs.Open(c, p, O_RDONLY, 0)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			off := rng.Intn(len(cur) + 10)
			buf := make([]byte, rng.Intn(8<<10)+1)
			n, err := f.Pread(c, buf, int64(off))
			f.Close()
			if err != nil {
				t.Fatalf("step %d pread: %v", step, err)
			}
			want := len(cur) - off
			if want < 0 {
				want = 0
			}
			if want > len(buf) {
				want = len(buf)
			}
			if n != want {
				t.Fatalf("step %d pread length %d, want %d", step, n, want)
			}
			if !bytes.Equal(buf[:n], cur[off:off+n]) {
				t.Fatalf("step %d pread content mismatch at %d", step, off)
			}

		case op < 82: // truncate
			if !exists {
				continue
			}
			f, err := fs.Open(c, p, O_RDWR, 0)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			size := rng.Intn(maxLen)
			if err := f.Ftruncate(c, int64(size)); err != nil {
				t.Fatalf("step %d truncate: %v", step, err)
			}
			f.Close()
			if size < len(cur) {
				cur = cur[:size]
			} else {
				grown := make([]byte, size)
				copy(grown, cur)
				cur = grown
			}
			model[p] = append([]byte(nil), cur...)

		case op < 90: // unlink
			err := fs.Unlink(p)
			if exists && err != nil {
				t.Fatalf("step %d unlink existing: %v", step, err)
			}
			if !exists && err == nil {
				t.Fatalf("step %d unlink of absent file succeeded", step)
			}
			delete(model, p)

		case op < 95: // stat agreement
			info, err := fs.Stat(p)
			if exists != (err == nil) {
				t.Fatalf("step %d stat existence mismatch: %v vs %v", step, exists, err)
			}
			if exists && info.Size != int64(len(cur)) {
				t.Fatalf("step %d stat size %d, want %d", step, info.Size, len(cur))
			}

		default: // drop caches: timing state only, content intact
			fs.DropCaches()
		}
	}

	// Final sweep: every modelled file reads back exactly.
	for p, want := range model {
		got, err := fs.ReadFile(c, p)
		if err != nil {
			t.Fatalf("final read %s: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final content mismatch for %s: %d vs %d bytes", p, len(got), len(want))
		}
	}
}
