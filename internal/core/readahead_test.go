package core

import (
	"bytes"
	"testing"

	"gpufs/internal/core/pcache"
	"gpufs/internal/faults"
	"gpufs/internal/gpu"
)

// TestEvictFromFileLargeTargetSingleCall is the regression test for the
// leaf-traversal bound in evictFromFileOn: with the old fixed bound a
// single call could never reclaim more than ~128 pages from one file (two
// full leaves plus slack), so large targets silently under-delivered and
// the caller spun. The bound now scales with the target.
func TestEvictFromFileLargeTargetSingleCall(t *testing.T) {
	opt := defaultOpt()
	opt.PageSize = 4 << 10
	opt.CacheBytes = 192 * opt.PageSize
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	const pages = 144 // needs three radix leaves
	h.write(t, "/big", pattern(pages*4<<10, 1))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/big", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 4<<10)
		for i := int64(0); i < pages; i++ {
			if _, err := fs.Read(b, fd, buf, i*int64(len(buf))); err != nil {
				return err
			}
		}
		if err := fs.Close(b, fd); err != nil {
			return err
		}
		victims := fs.pickVictims()
		if len(victims) != 1 || victims[0].class != 0 {
			t.Fatalf("victims = %+v", victims)
		}
		if n := fs.evictFromFile(b, victims[0], pages); n != pages {
			t.Errorf("one evictFromFile call reclaimed %d of %d pages", n, pages)
		}
		return nil
	})
	if free := fs.cache.FreeFrames(); free != 192 {
		t.Errorf("free frames after eviction = %d, want 192", free)
	}
}

// TestReadAheadChargesProbeCost pins the satellite accounting fix: a
// read-ahead pass over already-resident pages is not free — each skipped
// page charges the probing block probeCost (a few metadata loads), where
// it used to cost nothing.
func TestReadAheadChargesProbeCost(t *testing.T) {
	opt := defaultOpt()
	opt.ReadAheadPages = 8
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/f", pattern(16*16<<10, 2))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		buf := make([]byte, 16<<10)
		for i := int64(0); i < 16; i++ {
			if _, err := fs.Read(b, fd, buf, i*int64(len(buf))); err != nil {
				return err
			}
		}
		f := fs.fds[fd]
		before := b.Clock.Now()
		fs.readAhead(b, f, 0) // all 8 pages resident: 8 skips
		got := b.Clock.Now().Sub(before)
		if want := 8 * fs.probeCost(); got != want {
			t.Errorf("8 resident-page probes cost %v, want %v", got, want)
		}
		return nil
	})
}

// TestFetchBudgetScaling covers the multi-page gread pipelining budget:
// the full cap with a healthy pool, half the free frames when nearly
// drained, zero when empty (demand faults keep absolute priority).
func TestFetchBudgetScaling(t *testing.T) {
	opt := defaultOpt() // 64 frames
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	if got := fs.fetchBudget(); got != maxBatchFetch {
		t.Fatalf("full pool budget = %d, want %d", got, maxBatchFetch)
	}
	// Drain to 20 free: below the 2*cap threshold, budget = free/2.
	for i := 0; i < 44; i++ {
		if fs.cache.TryAlloc(99, int64(i)*opt.PageSize) == nil {
			t.Fatal("TryAlloc failed with free frames available")
		}
	}
	if got := fs.fetchBudget(); got != 10 {
		t.Fatalf("near-drained budget = %d, want 10", got)
	}
	// Drain to 1 and then 0: budget hits zero before the pool does.
	for i := 44; i < 63; i++ {
		fs.cache.TryAlloc(99, int64(i)*opt.PageSize)
	}
	if got := fs.fetchBudget(); got != 0 {
		t.Fatalf("1-free budget = %d, want 0", got)
	}
	fs.cache.TryAlloc(99, 63*opt.PageSize)
	if got := fs.fetchBudget(); got != 0 {
		t.Fatalf("drained budget = %d, want 0", got)
	}
}

// TestPrefetchNeverEvictsFullCache: speculation aborts rather than paging
// out resident data — with the pool 100% occupied, prefetchPage and
// prefetchSpan must allocate nothing and evict nothing.
func TestPrefetchNeverEvictsFullCache(t *testing.T) {
	opt := defaultOpt() // 64 frames of 16K
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/a", pattern(int(opt.CacheBytes), 3)) // exactly fills the pool
	h.write(t, "/b", pattern(4*16<<10, 4))

	h.run(t, 0, func(b *gpu.Block) error {
		fdA, err := fs.Open(b, "/a", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fdA)
		buf := make([]byte, opt.CacheBytes)
		if _, err := fs.Read(b, fdA, buf, 0); err != nil {
			return err
		}
		if free := fs.cache.FreeFrames(); free != 0 {
			t.Fatalf("pool not full: %d free", free)
		}
		fdB, err := fs.Open(b, "/b", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fdB)
		fB := fs.fds[fdB]
		allocs := fs.cache.Allocs()
		if fs.prefetchPage(b, fB, 0, pcache.SpecPending) {
			t.Error("prefetchPage launched a fetch with a full pool")
		}
		fs.prefetchSpan(b, fB, 0, 4)
		if got := fs.cache.Allocs(); got != allocs {
			t.Errorf("speculation allocated %d frames from a full pool", got-allocs)
		}
		if free := fs.cache.FreeFrames(); free != 0 {
			t.Errorf("speculation evicted: %d frames freed", free)
		}
		return nil
	})
	if cs := fs.CacheStats(); cs.PrefetchIssued != 0 {
		t.Errorf("PrefetchIssued = %d under a full cache", cs.PrefetchIssued)
	}
}

// TestAdaptiveSequentialSpeculates: a sequential page-by-page scan must
// trip the detector, and — with a cache large enough that nothing is
// reclaimed — every speculated page is later consumed by the scan, so
// used equals issued and nothing is wasted.
func TestAdaptiveSequentialSpeculates(t *testing.T) {
	opt := defaultOpt()
	opt.ReadAheadAdaptive = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	const pages = 48
	want := pattern(pages*16<<10, 5)
	h.write(t, "/seq", want)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/seq", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		buf := make([]byte, 16<<10)
		for i := int64(0); i < pages; i++ {
			if _, err := fs.Read(b, fd, buf, i*int64(len(buf))); err != nil {
				return err
			}
			if !bytes.Equal(buf, want[i*int64(len(buf)):(i+1)*int64(len(buf))]) {
				t.Fatalf("page %d content mismatch through speculation", i)
			}
		}
		return nil
	})
	cs := fs.CacheStats()
	if cs.PrefetchIssued < 20 {
		t.Errorf("sequential scan speculated only %d pages", cs.PrefetchIssued)
	}
	if cs.PrefetchUsed != cs.PrefetchIssued {
		t.Errorf("used %d of %d issued (expected all: nothing was evicted)",
			cs.PrefetchUsed, cs.PrefetchIssued)
	}
	if cs.PrefetchWasted != 0 {
		t.Errorf("PrefetchWasted = %d with an unpressured cache", cs.PrefetchWasted)
	}
}

// TestAdaptiveRandomStaysQuiet: accesses with no repeated stride never
// clear the detector's confidence gate, so nothing is speculated — the
// waste the greedy window would have paid.
func TestAdaptiveRandomStaysQuiet(t *testing.T) {
	opt := defaultOpt()
	opt.ReadAheadAdaptive = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/rand", pattern(64*16<<10, 6))

	// No two consecutive page deltas are equal.
	pages := []int64{0, 5, 2, 11, 4, 17, 8, 27, 10, 33, 1, 40, 3, 50, 7, 62}
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/rand", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		buf := make([]byte, 16<<10)
		for _, p := range pages {
			if _, err := fs.Read(b, fd, buf, p*16<<10); err != nil {
				return err
			}
		}
		return nil
	})
	if cs := fs.CacheStats(); cs.PrefetchIssued != 0 {
		t.Errorf("random access speculated %d pages", cs.PrefetchIssued)
	}
}

// TestCleanerCleansOpenDirtyInPlace: a low-watermark kick writes an open
// file's cold dirty pages back on the cleaner's own clock, leaving them
// resident and clean, and the counters record the pass.
func TestCleanerCleansOpenDirtyInPlace(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	opt.CleanerWorkers = 1
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	dirty := pattern(4*16<<10, 7)
	h.write(t, "/w", make([]byte, len(dirty)))
	h.write(t, "/fill", pattern(3*16<<10, 8))

	var fd int
	h.run(t, 0, func(b *gpu.Block) error {
		var err error
		fd, err = fs.Open(b, "/w", O_RDWR)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, dirty, 0); err != nil {
			return err
		}
		fill, err := fs.Open(b, "/fill", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 3*16<<10)
		_, err = fs.Read(b, fill, buf, 0)
		return err
	})
	if free := fs.cache.FreeFrames(); free >= fs.cleaner.low {
		t.Fatalf("setup left %d free frames, want < low watermark %d", free, fs.cleaner.low)
	}

	fs.maybeClean(0)

	cs := fs.CacheStats()
	if cs.CleanerKicks == 0 {
		t.Error("low watermark did not kick the cleaner")
	}
	if cs.CleanedPages != 4 {
		t.Errorf("CleanedPages = %d, want 4", cs.CleanedPages)
	}
	if got := h.read(t, "/w"); !bytes.Equal(got, dirty) {
		t.Error("cleaner write-back did not reach the host")
	}
	// Cleaning is in place: the pages stay resident for the open file.
	if free := fs.cache.FreeFrames(); free != 1 {
		t.Errorf("in-place cleaning changed the pool: %d free", free)
	}
	h.run(t, 0, func(b *gpu.Block) error {
		// The pages are clean now: gfsync has nothing to flush and no
		// deferred error to report.
		return fs.Fsync(b, fd)
	})
}

// TestCleanerPreEvictsClosedDirty: closed files are the cleaner's
// cheapest victims, but only their DIRTY pages are pre-evicted — clean
// frames stay resident for a future reopen.
func TestCleanerPreEvictsClosedDirty(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	opt.CleanerWorkers = 1
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	dirty := pattern(4*16<<10, 9)
	h.write(t, "/c", make([]byte, len(dirty)))
	h.write(t, "/fill", pattern(3*16<<10, 10))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/c", O_RDWR)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, dirty, 0); err != nil {
			return err
		}
		if err := fs.Close(b, fd); err != nil { // deferred write-back: stays dirty
			return err
		}
		fill, err := fs.Open(b, "/fill", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 3*16<<10)
		_, err = fs.Read(b, fill, buf, 0)
		return err
	})

	fs.maybeClean(0)

	// free was 1, high is 4: the pass pre-evicts 3 dirty closed-file
	// pages (write-back + release) and stops at the high watermark.
	cs := fs.CacheStats()
	if cs.CleanedPages != 3 {
		t.Errorf("CleanedPages = %d, want 3", cs.CleanedPages)
	}
	if free := fs.cache.FreeFrames(); free != fs.cleaner.high {
		t.Errorf("pool recovered to %d free, want high watermark %d", free, fs.cleaner.high)
	}
	// The data must round-trip regardless of which pages were evicted.
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/c", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		got := make([]byte, len(dirty))
		if _, err := fs.Read(b, fd, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, dirty) {
			t.Error("closed-file data corrupted by pre-eviction")
		}
		return nil
	})
}

// TestCleanerDeferredWriteError: a cleaner write-back failure must follow
// POSIX deferred-error semantics — recorded sticky on the file, surfaced
// at the next gfsync, page left dirty and resident so no data is lost.
func TestCleanerDeferredWriteError(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	opt.CleanerWorkers = 1
	h := newFaultHarness(t, opt, faults.Config{Seed: 1, HostWriteEIOProb: 1.0}, 1, 1)
	fs := h.fss[0]
	h.inj.SetEnabled(false)

	dirty := pattern(4*16<<10, 11)
	h.write(t, "/w", make([]byte, len(dirty)))
	h.write(t, "/fill", pattern(3*16<<10, 12))

	var fd int
	h.run(t, 0, func(b *gpu.Block) error {
		var err error
		fd, err = fs.Open(b, "/w", O_RDWR)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, dirty, 0); err != nil {
			return err
		}
		fill, err := fs.Open(b, "/fill", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 3*16<<10)
		_, err = fs.Read(b, fill, buf, 0)
		return err
	})

	h.inj.SetEnabled(true)
	fs.maybeClean(0) // every write-back fails with EIO
	h.inj.SetEnabled(false)

	if cs := fs.CacheStats(); cs.CleanedPages != 0 {
		t.Errorf("CleanedPages = %d after all-EIO pass", cs.CleanedPages)
	}
	h.run(t, 0, func(b *gpu.Block) error {
		if err := fs.Fsync(b, fd); err == nil {
			t.Error("gfsync after failed cleaner write-back returned nil")
		}
		// errseq: reported once, then cleared; the data itself was never
		// lost, so a retried sync succeeds cleanly.
		if err := fs.Fsync(b, fd); err != nil {
			t.Errorf("second gfsync: %v", err)
		}
		return nil
	})
	if got := h.read(t, "/w"); !bytes.Equal(got, dirty) {
		t.Error("dirty data lost after failed cleaner write-back")
	}
}
