package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gpufs/internal/core/pcache"
	"gpufs/internal/gpu"
)

// History-based prefetching (ISSUE 9): the adaptive detector of ISSUE 4
// speculates only on LIVE strides — it goes blind on re-opens (the window
// re-earns confidence from zero), on block schedules that look random page
// to page but repeat run to run, and on the first-touch burst before any
// stride exists. This engine closes that gap the way Dimitsas &
// Silberstein's readahead prefetcher does: record what each open actually
// touched, and on the next open of the same (unchanged) file replay it —
// pre-warm the recorded first-touch burst through the vectored read path
// before demand reads arrive, and seed the detector slots with their
// previously confirmed strides so the window ramp starts hot.
//
// Profiles are only ever a hint: replayed pages are fetched through the
// file's current host descriptor, so a stale profile can waste transfers
// but never serve dead bytes. Staleness is bounded twice over — the
// profile is validated against the file's host generation and size at
// attach time (host-side mutation drops it), and replay depth is
// feedback-controlled by the same used/wasted counters the adaptive
// window consults, so a changed access pattern stands the engine down
// within one open.

const (
	// histMaxFiles bounds the FS-level profile table (LRU eviction).
	histMaxFiles = 128
	// histMaxBurst bounds one profile's recorded first-touch burst: the
	// head of the access footprint is what replay can usefully pre-warm;
	// beyond it the live detector has long taken over.
	histMaxBurst = 64
	// histReplayChunk is how many burst pages one replay step issues; the
	// attach-time pre-warm issues a double chunk so transfers are in
	// flight before the first demand read.
	histReplayChunk = 8
	// histMinOutcome is the minimum used+wasted sample before the
	// feedback controller may stand replay down (same idea as the
	// adaptive window's stand-down threshold, scaled to one open).
	histMinOutcome = 16
)

// histStride is one detector slot's confirmed pattern at close time.
type histStride struct {
	slot   int   // detector slot index (block-hash position)
	stride int64 // confirmed page stride
	window int   // window depth the ramp had reached
}

// histProfile is one file's recorded access footprint. Immutable once
// stored; replay only reads it.
type histProfile struct {
	size    int64 // file size the profile was recorded against
	gen     int64 // host generation the profile was recorded against
	burst   []int64
	strides []histStride
}

// histEntry is one LRU cell of the history table.
type histEntry struct {
	path string
	prof *histProfile
}

// historyTable is the FS-level bounded profile store, keyed by pathname.
type historyTable struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

func newHistoryTable(max int) *historyTable {
	return &historyTable{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// lookup returns the profile recorded for path (and refreshes its LRU
// position), or nil.
func (h *historyTable) lookup(path string) *histProfile {
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.entries[path]
	if !ok {
		return nil
	}
	h.lru.MoveToFront(el)
	return el.Value.(*histEntry).prof
}

// store inserts or replaces the profile for path, evicting the least
// recently used entry past the bound.
func (h *historyTable) store(path string, prof *histProfile) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[path]; ok {
		el.Value.(*histEntry).prof = prof
		h.lru.MoveToFront(el)
		return
	}
	h.entries[path] = h.lru.PushFront(&histEntry{path: path, prof: prof})
	for h.lru.Len() > h.max {
		last := h.lru.Back()
		h.lru.Remove(last)
		delete(h.entries, last.Value.(*histEntry).path)
	}
}

// remove drops path's profile (attach-time invalidation).
func (h *historyTable) remove(path string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[path]; ok {
		h.lru.Remove(el)
		delete(h.entries, path)
	}
}

// clear empties the table (GPU restart: profiles describe caches that no
// longer exist, and the next open re-records from scratch).
func (h *historyTable) clear() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = make(map[string]*list.Element)
	h.lru.Init()
}

// len reports the entry count (tests).
func (h *historyTable) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lru.Len()
}

// histRecorder accumulates one open's first-touch burst.
type histRecorder struct {
	mu    sync.Mutex
	burst []int64
	seen  map[int64]struct{}
	full  bool
}

// replayState drives one open's profile replay.
type replayState struct {
	done atomic.Bool // fast-path gate for the per-read hook

	mu         sync.Mutex
	burst      []int64
	pos        int
	baseUsed   int64 // fc.prefetchUsed at attach (feedback baseline)
	baseWasted int64
}

// historyAttach wires the engine into a freshly opened file: always a
// recorder (so this open's footprint is captured for the next one), and —
// when a profile recorded against the same host generation and size
// exists — detector-slot seeding plus a replay of the first-touch burst.
// Called once per open-table entry, by the opener or the fast-reopen
// path, never by coalesced waiters.
func (fs *FS) historyAttach(b *gpu.Block, f *file) {
	if fs.history == nil || !f.readable || f.writeOnce {
		return
	}
	f.rec = &histRecorder{seen: make(map[int64]struct{})}

	prof := fs.history.lookup(f.path)
	if prof == nil {
		return
	}
	fc := f.fc
	if prof.gen != fc.gen.Load() || prof.size != fc.size.Load() {
		// The host copy moved on (or the file was resized) since the
		// profile was recorded: drop it and fall back to the cold
		// detector. Replay would only prefetch dead bytes' worth of
		// transfers — never dead bytes themselves, since fetches go
		// through the live descriptor — but even the waste is pointless.
		fs.history.remove(f.path)
		fs.historyInvalidations.Add(1)
		return
	}

	// Seed detector slots with their previously confirmed strides: the
	// slot starts confident (streak at the ramp threshold) with its old
	// window, so the second access of a re-run pattern speculates a full
	// window instead of re-earning confidence access by access. A stream
	// that changed its pattern overwrites the seed on its first
	// non-matching delta, exactly like a broken streak.
	for _, hs := range prof.strides {
		if hs.slot < 0 || hs.slot >= raStreams {
			continue
		}
		st := &f.ra[hs.slot]
		st.mu.Lock()
		if !st.seen {
			st.stride = hs.stride
			st.streak = raRampStreak
			if st.window = hs.window; st.window < raInitWindow {
				st.window = raInitWindow
			}
		}
		st.mu.Unlock()
	}

	if len(prof.burst) == 0 {
		return
	}
	// The same dead-zone economics as the adaptive engine: at page sizes
	// where speculated pages neither coalesce nor dwarf their own issue
	// cost, replay would net a loss too.
	if ps := fs.opt.PageSize; 2*ps > raMaxSpanBytes && ps < 2*raMaxSpanBytes {
		return
	}
	// A closed-table fast reopen usually finds the pages still resident;
	// probing a fully warm cache page by page is pure cost. Skip replay
	// when the cache already holds at least the burst's worth of this
	// file's frames.
	if fc.frames.Load() >= int64(len(prof.burst)) {
		return
	}
	f.replay = &replayState{
		burst:      prof.burst,
		baseUsed:   fc.prefetchUsed.Load(),
		baseWasted: fc.prefetchWasted.Load(),
	}
	fs.historyReplays.Add(1)
	// Pre-warm: put the head of the burst in flight before the first
	// demand read arrives (a double chunk; the per-read hook trickles the
	// rest as the feedback counters confirm the pattern still holds).
	fs.replayIssue(b, f, 2*histReplayChunk)
}

// historyObserve is the per-gread hook: record the access into this open's
// burst and advance the replay by one chunk. Costs two atomic loads when
// recording is complete and replay is done (or absent).
func (fs *FS) historyObserve(b *gpu.Block, f *file, first, last int64) {
	if rec := f.rec; rec != nil && !rec.full {
		rec.mu.Lock()
		for p := first; p <= last && !rec.full; p++ {
			if _, ok := rec.seen[p]; ok {
				continue
			}
			rec.seen[p] = struct{}{}
			rec.burst = append(rec.burst, p)
			if len(rec.burst) >= histMaxBurst {
				rec.full = true
			}
		}
		rec.mu.Unlock()
	}
	if rp := f.replay; rp != nil && !rp.done.Load() {
		fs.replayIssue(b, f, histReplayChunk)
	}
}

// replayIssue issues up to chunk pages of the replay burst as SpecReplay
// prefetches, coalescing consecutive runs into vectored RPCs via
// spanFetch. It honors the frame-pool fetch budget and the global
// speculation cap, and stands the replay down permanently once this
// open's wasted prefetch overtakes its used prefetch — the recorded
// pattern no longer matches reality, and the live detector is a better
// guide than history.
func (fs *FS) replayIssue(b *gpu.Block, f *file, chunk int) {
	rp := f.replay
	fc := f.fc

	rp.mu.Lock()
	if rp.done.Load() || rp.pos >= len(rp.burst) {
		rp.done.Store(true)
		rp.mu.Unlock()
		return
	}
	used := fc.prefetchUsed.Load() - rp.baseUsed
	wasted := fc.prefetchWasted.Load() - rp.baseWasted
	if wasted > used && used+wasted >= histMinOutcome {
		rp.done.Store(true)
		rp.mu.Unlock()
		return
	}
	n := chunk
	if budget := fs.fetchBudget(); n > budget {
		n = budget
	}
	if room := int64(fs.cache.NumFrames()/4) - fs.specPending.Load(); int64(n) > room {
		n = int(room)
	}
	if n <= 0 {
		rp.mu.Unlock()
		return
	}
	// Hysteresis, same reasoning as the adaptive engine's async mark: a
	// pre-warm at the cap leaves room for only a page or two until demand
	// consumes it, and issuing those dribbles one RPC per page —
	// forfeiting the coalescing that makes replay cheap. Hold the
	// position until a whole chunk (or the final tail) fits.
	if remaining := len(rp.burst) - rp.pos; n < chunk && n < remaining {
		rp.mu.Unlock()
		return
	}
	pages := rp.burst[rp.pos:]
	if len(pages) > n {
		pages = pages[:n]
	}
	rp.pos += len(pages)
	if rp.pos >= len(rp.burst) {
		rp.done.Store(true)
	}
	rp.mu.Unlock()

	lastFile := (fc.size.Load() - 1) / fs.opt.PageSize
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		start, count := pages[i], int64(j-i)
		i = j
		if start < 0 || start > lastFile {
			continue
		}
		if start+count-1 > lastFile {
			count = lastFile - start + 1
		}
		fs.spanFetch(b, f, start, count, pcache.SpecReplay, fs.lane(b))
	}
}

// historyRecord snapshots a closing open's footprint into the table: the
// first-touch burst from the recorder, plus every detector slot holding a
// confirmed stride. Called at the final gclose; O_NOSYNC and unlinked
// files record nothing (their content dies with the close).
func (fs *FS) historyRecord(f *file) {
	rec := f.rec
	if fs.history == nil || rec == nil || f.noSync || f.unlinked {
		return
	}
	rec.mu.Lock()
	burst := append([]int64(nil), rec.burst...)
	rec.mu.Unlock()

	var strides []histStride
	for i := range f.ra {
		st := &f.ra[i]
		st.mu.Lock()
		if st.seen && st.streak >= 2 && st.stride != 0 &&
			st.stride <= maxRAStride && st.stride >= -maxRAStride {
			strides = append(strides, histStride{slot: i, stride: st.stride, window: st.window})
		}
		st.mu.Unlock()
	}
	if len(burst) == 0 && len(strides) == 0 {
		return
	}
	fc := f.fc
	fs.history.store(f.path, &histProfile{
		size:    fc.size.Load(),
		gen:     fc.gen.Load(),
		burst:   burst,
		strides: strides,
	})
}
