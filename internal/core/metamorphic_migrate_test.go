package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpufs/internal/gpu"
)

// Metamorphic migrate-equality (ISSUE 10): for any read shape and any
// read-ahead policy, a warm host that is checkpointed and restored onto a
// fresh machine must be indistinguishable from one that never moved. The
// metamorphic relation runs the same two-pass workload down both arms —
//
//	control:  pass 1 ─────────────────▶ pass 2   (one harness)
//	migrated: pass 1 ─▶ ckpt ─▶ restore ─▶ pass 2 (second harness)
//
// and compares the second pass: the bytes must be identical, and the
// CacheStats delta attributable to pass 2 must match, spec-adjusted — the
// speculative consumption counters (used/wasted splits) are zeroed because
// they depend on fetch-completion timing that a restore legitimately
// compresses, while issuance and replay decisions must agree exactly.

// migrateShape reads the whole file into dst through one access pattern.
type migrateShape struct {
	name string
	read func(fs *FS, b *gpu.Block, fd int, dst []byte, pageSize int) error
}

func migrateShapes() []migrateShape {
	return []migrateShape{
		{"whole", func(fs *FS, b *gpu.Block, fd int, dst []byte, pageSize int) error {
			return chunkedRead(fs, b, fd, dst, len(dst))
		}},
		{"strided", func(fs *FS, b *gpu.Block, fd int, dst []byte, pageSize int) error {
			// Even pages first, then odd: a deterministic non-sequential
			// sweep that still covers every byte.
			for _, parity := range []int{0, 1} {
				for off := parity * pageSize; off < len(dst); off += 2 * pageSize {
					n := pageSize
					if off+n > len(dst) {
						n = len(dst) - off
					}
					got, err := fs.Read(b, fd, dst[off:off+n], int64(off))
					if err != nil {
						return err
					}
					if got != n {
						return fmt.Errorf("short read at %d: %d of %d", off, got, n)
					}
				}
			}
			return nil
		}},
		{"random", func(fs *FS, b *gpu.Block, fd int, dst []byte, pageSize int) error {
			// Page-sized chunks in a seeded shuffle: same permutation on
			// every run, so both arms issue the identical access stream.
			var offs []int
			for off := 0; off < len(dst); off += pageSize {
				offs = append(offs, off)
			}
			rng := rand.New(rand.NewSource(42))
			rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
			for _, off := range offs {
				n := pageSize
				if off+n > len(dst) {
					n = len(dst) - off
				}
				got, err := fs.Read(b, fd, dst[off:off+n], int64(off))
				if err != nil {
					return err
				}
				if got != n {
					return fmt.Errorf("short read at %d: %d of %d", off, got, n)
				}
			}
			return nil
		}},
	}
}

// runMigratePass opens, reads via shape, and closes — one pass.
func runMigratePass(t *testing.T, h *harness, shape migrateShape, pageSize int, want []byte) []byte {
	t.Helper()
	got := make([]byte, len(want))
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/meta-mig", O_RDONLY)
		if err != nil {
			return err
		}
		if err := shape.read(fs, b, fd, got, pageSize); err != nil {
			return fmt.Errorf("shape %s: %w", shape.name, err)
		}
		return fs.Close(b, fd)
	})
	return got
}

// csSub returns b − a field-wise.
func csSub(a, b CacheStats) CacheStats {
	return CacheStats{
		PrefetchIssued:       b.PrefetchIssued - a.PrefetchIssued,
		PrefetchUsed:         b.PrefetchUsed - a.PrefetchUsed,
		PrefetchWasted:       b.PrefetchWasted - a.PrefetchWasted,
		CleanedPages:         b.CleanedPages - a.CleanedPages,
		CleanerKicks:         b.CleanerKicks - a.CleanerKicks,
		ReplayIssued:         b.ReplayIssued - a.ReplayIssued,
		ReplayUsed:           b.ReplayUsed - a.ReplayUsed,
		ReplayWasted:         b.ReplayWasted - a.ReplayWasted,
		HistoryReplays:       b.HistoryReplays - a.HistoryReplays,
		HistoryInvalidations: b.HistoryInvalidations - a.HistoryInvalidations,
	}
}

// specAdjust zeroes the speculation-consumption counters whose values
// depend on fetch-completion timing relative to the consuming access — the
// one latitude a restore is allowed (restored pages are all "already
// arrived"). Issuance counts and replay decisions are NOT adjusted.
func specAdjust(cs CacheStats) CacheStats {
	cs.PrefetchUsed, cs.PrefetchWasted = 0, 0
	cs.ReplayUsed, cs.ReplayWasted = 0, 0
	return cs
}

func TestMetamorphicMigrateEquality(t *testing.T) {
	baseOpt := defaultOpt()
	pageSize := int(baseOpt.PageSize)
	want := pattern(7*pageSize+1234, 11) // ~7.08 pages

	for _, pol := range readPolicies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			for _, shape := range migrateShapes() {
				shape := shape
				t.Run(shape.name, func(t *testing.T) {
					opt := defaultOpt()
					pol.apply(&opt)

					// Control arm: two passes on one harness.
					hc := newHarness(t, 1, opt)
					hc.write(t, "/meta-mig", want)
					if got := runMigratePass(t, hc, shape, pageSize, want); !bytes.Equal(got, want) {
						t.Fatal("control pass 1: bytes diverge")
					}
					mark := hc.fss[0].CacheStats()
					gotC := runMigratePass(t, hc, shape, pageSize, want)
					deltaC := csSub(mark, hc.fss[0].CacheStats())

					// Migrated arm: pass 1, checkpoint, restore onto a
					// fresh host with the same corpus, pass 2 there.
					ha := newHarness(t, 1, opt)
					ha.write(t, "/meta-mig", want)
					if got := runMigratePass(t, ha, shape, pageSize, want); !bytes.Equal(got, want) {
						t.Fatal("migrated pass 1: bytes diverge")
					}
					img, _, err := ha.fss[0].CheckpointImage(0)
					if err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
					hb := newHarness(t, 1, opt)
					hb.write(t, "/meta-mig", want)
					hb.run(t, 0, func(b *gpu.Block) error {
						return hb.fss[0].RestoreImage(b, img)
					})
					mark = hb.fss[0].CacheStats()
					gotM := runMigratePass(t, hb, shape, pageSize, want)
					deltaM := csSub(mark, hb.fss[0].CacheStats())

					if !bytes.Equal(gotM, want) {
						t.Errorf("migrated pass 2: bytes diverge from the corpus")
					}
					if !bytes.Equal(gotM, gotC) {
						t.Errorf("migrated and control second passes disagree")
					}
					ac, am := specAdjust(deltaC), specAdjust(deltaM)
					if ac != am {
						t.Errorf("pass-2 CacheStats diverge across migration:\n  control  %+v\n  migrated %+v", ac, am)
					}
					if pol.specFree && (deltaC != ac || deltaM != am) {
						t.Errorf("speculation counters moved under the %q policy: control %+v migrated %+v",
							pol.name, deltaC, deltaM)
					}
				})
			}
		})
	}
}
