package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// A retired object must not be freed while any guard that predates its
// retirement is still active.
func TestGracePeriodBlocksReclaim(t *testing.T) {
	var d Domain
	g := d.Enter()

	freed := false
	d.Retire(func() { freed = true })
	for i := 0; i < 10; i++ {
		d.TryAdvance()
	}
	// The guard entered at the retire epoch (or earlier), so at most one
	// advance can happen; the retired object stays in limbo.
	if freed {
		t.Fatal("object freed while a pre-retirement guard was active")
	}
	g.Exit()
	if !d.Quiesce() {
		t.Fatalf("quiesce incomplete: retired=%d freed=%d", d.Retired(), d.Freed())
	}
	if !freed {
		t.Fatal("object not freed after quiescence")
	}
}

// Guards entered strictly after an advance must not block reclamation of
// older limbo bins (readers in the current epoch are irrelevant).
func TestCurrentEpochReadersDoNotBlock(t *testing.T) {
	var d Domain
	d.Retire(func() {})
	d.TryAdvance() // retiree now sits one epoch behind
	g := d.Enter() // current-epoch reader
	defer g.Exit()
	for i := 0; i < bins; i++ {
		d.TryAdvance()
	}
	if d.Freed() != 1 {
		t.Fatalf("current-epoch guard blocked reclamation: freed=%d", d.Freed())
	}
}

// Hammer Enter/Exit/Retire from many goroutines under -race and check the
// two invariants that matter: no callback runs while a guard from its
// epoch-or-earlier is live (checked via a per-object "visible" flag), and
// everything retires cleanly at the end.
func TestConcurrentRetireStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	var d Domain
	var live atomic.Int64 // objects published and not yet retired-and-freed
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (seed + i) % 3 {
				case 0: // reader
					g := d.Enter()
					_ = d.Epoch()
					g.Exit()
				case 1: // writer: publish + retire
					live.Add(1)
					d.Retire(func() { live.Add(-1) })
				case 2:
					d.TryAdvance()
				}
			}
		}(w)
	}
	wg.Wait()
	if !d.Quiesce() {
		t.Fatalf("quiesce incomplete: retired=%d freed=%d", d.Retired(), d.Freed())
	}
	if n := live.Load(); n != 0 {
		t.Fatalf("%d retired objects never freed", n)
	}
	if d.Retired() != d.Freed() {
		t.Fatalf("retired=%d freed=%d", d.Retired(), d.Freed())
	}
}

func BenchmarkEnterExit(b *testing.B) {
	var d Domain
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Enter().Exit()
		}
	})
}
