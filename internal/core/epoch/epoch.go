// Package epoch implements epoch-based memory reclamation (EBR) for the
// buffer cache's lock-free radix tree.
//
// The problem it solves is the classic one: a lock-free reader may hold a
// pointer to a node that a writer has just unlinked. Under a garbage
// collector that is merely a memory-safety question, but GPUfs *recycles*
// radix leaves through a free pool (a detached leaf is re-published later
// with a different base offset and different page identities), so a stale
// reader dereferencing a recycled node would observe a valid-looking leaf
// for the WRONG file region — not a crash, a silent wrong answer. EBR
// guarantees a retired node is not handed back to the pool until every
// reader that could have seen it has left its read-side critical section.
//
// The scheme is the standard three-bin design (Fraser 2004; Harris's
// lock-free lists use the same structure):
//
//   - A global epoch counter G advances monotonically. Readers Enter() by
//     registering in bin G%3 and Exit() by deregistering; the guard is a
//     few atomic ops, no locks, no syscalls — cheap enough for the
//     per-page lookup hot path.
//   - Retire(fn) queues fn on the CURRENT epoch's limbo list.
//   - The epoch can advance from e to e+1 only when bins (e+1)%3 and
//     (e+2)%3 are empty — i.e. every active reader entered at epoch e.
//     At that instant nodes retired at epoch e-2 (sitting in bin (e+1)%3,
//     about to be reused for e+1) are unreachable by every live reader:
//     a reader in bin e%3 performed its epoch load after the advance to
//     e, which happened after the retire, which happened after the
//     unlink was published. Those callbacks run and the bin is recycled.
//
// Advancement is purely opportunistic (TryAdvance never blocks and is
// piggybacked on Retire), so a stalled reader delays reclamation but
// never progress — retired nodes simply accumulate in limbo, which is
// the documented EBR trade-off.
package epoch

import (
	"sync"
	"sync/atomic"
)

// bins is the number of limbo generations. Three is the minimum that
// distinguishes "current", "previous" (may still have readers), and
// "reclaimable" (provably quiescent).
const bins = 3

// Domain is one independent reclamation domain. Each radix tree owns one,
// so trees quiesce independently and a stalled scan of one file cannot
// stall reclamation in another.
type Domain struct {
	// global is the current epoch. It only increases.
	global atomic.Uint64
	// readers[e%bins] counts the guards that entered at epoch e and have
	// not exited. Entries for epochs older than global-1 being zero is
	// exactly the grace-period condition.
	readers [bins]atomic.Int64

	// mu serializes writers to the limbo lists and epoch advancement.
	// Readers never take it.
	mu    sync.Mutex
	limbo [bins][]func()

	retired atomic.Int64
	freed   atomic.Int64
}

// Guard is an active read-side critical section. The zero Guard is
// invalid; obtain one from Enter and release it with Exit exactly once.
type Guard struct {
	d *Domain
	e uint64
}

// Enter opens a read-side critical section and pins the current epoch.
// Hold the guard across any traversal that dereferences nodes reachable
// from the tree and across any use of node pointers obtained under it.
func (d *Domain) Enter() Guard {
	for {
		e := d.global.Load()
		d.readers[e%bins].Add(1)
		// Re-validate: if the epoch advanced between the load and the
		// registration we may have signed into a bin the advancer already
		// inspected. Back out and re-register under the new epoch. The
		// epoch advances at most once while any reader is mid-Enter (the
		// next advance needs OUR bin empty), so this loop is bounded in
		// practice to two iterations.
		if d.global.Load() == e {
			return Guard{d: d, e: e}
		}
		d.readers[e%bins].Add(-1)
	}
}

// Exit closes the critical section. Node pointers obtained under the
// guard must not be dereferenced after Exit.
func (g Guard) Exit() {
	g.d.readers[g.e%bins].Add(-1)
}

// Retire queues free to run once every reader that could hold a reference
// to the retired object has exited. The caller must have already
// unlinked the object (made it unreachable from the published structure)
// BEFORE calling Retire — that store/Retire order is what the grace
// period argument rests on.
//
// free runs with d.mu released but possibly with arbitrary caller locks
// held (Retire is often called under a tree mutex); it must not acquire
// locks that order before those.
func (d *Domain) Retire(free func()) {
	d.retired.Add(1)
	d.mu.Lock()
	e := d.global.Load()
	d.limbo[e%bins] = append(d.limbo[e%bins], free)
	d.mu.Unlock()
	d.TryAdvance()
}

// TryAdvance attempts one epoch advancement, running the callbacks that
// became safe. It never blocks on readers: if any non-current bin is
// occupied it returns false immediately.
func (d *Domain) TryAdvance() bool {
	var batch []func()
	d.mu.Lock()
	e := d.global.Load()
	if d.readers[(e+1)%bins].Load() != 0 || d.readers[(e+2)%bins].Load() != 0 {
		d.mu.Unlock()
		return false
	}
	// Bins e+1 and e+2 are empty, so every active reader entered at epoch
	// e — after every retirement recorded in bin (e+1)%bins (epoch e-2)
	// was unlinked. Reclaim that bin and reuse it for epoch e+1.
	batch = d.limbo[(e+1)%bins]
	d.limbo[(e+1)%bins] = nil
	d.global.Store(e + 1)
	d.mu.Unlock()

	for _, free := range batch {
		free()
	}
	d.freed.Add(int64(len(batch)))
	return true
}

// Quiesce drives reclamation to completion while no readers are active:
// it advances the epoch enough times to drain every limbo bin and
// reports whether everything retired has been freed. With concurrent
// readers present it may return false; tests call it after joining all
// goroutines.
func (d *Domain) Quiesce() bool {
	for i := 0; i < bins; i++ {
		d.TryAdvance()
	}
	return d.retired.Load() == d.freed.Load()
}

// Epoch reports the current global epoch (diagnostics and tests).
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// Retired reports how many objects have ever been passed to Retire.
func (d *Domain) Retired() int64 { return d.retired.Load() }

// Freed reports how many retired objects have had their callbacks run.
func (d *Domain) Freed() int64 { return d.freed.Load() }
