package core

import (
	"bytes"
	"errors"
	"testing"

	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

// harness wires a minimal machine: host FS + consistency layer + RPC daemon
// + one or more GPUs each with a GPUfs instance.
type harness struct {
	host   *hostfs.FS
	layer  *wrapfs.Layer
	server *rpc.Server
	devs   []*gpu.Device
	fss    []*FS
}

func newHarness(t *testing.T, gpus int, opt Options) *harness {
	t.Helper()
	host := hostfs.New(hostfs.Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      256 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
	layer := wrapfs.New(host)
	bus := pcie.New(pcie.Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, host.MemBus())
	server := rpc.NewServer(rpc.Config{
		PollInterval:  10 * simtime.Microsecond,
		HandleCost:    12 * simtime.Microsecond,
		ReturnLatency: 2 * simtime.Microsecond,
	}, layer)

	h := &harness{host: host, layer: layer, server: server}
	for i := 0; i < gpus; i++ {
		dev := gpu.New(gpu.Config{
			ID: i, MPs: 4, BlocksPerMP: 2, WarpSize: 32,
			MemBytes:     opt.CacheBytes * 2,
			MemBandwidth: 144_000 * simtime.MBps,
			Flops:        1e9, ScratchpadBytes: 48 << 10,
		})
		link := bus.NewLink(i, dev.MemBandwidthResource(), 144_000*simtime.MBps)
		fs, err := New(i, opt, server.NewClient(i, link), dev.Mem)
		if err != nil {
			t.Fatal(err)
		}
		h.devs = append(h.devs, dev)
		h.fss = append(h.fss, fs)
	}
	return h
}

func defaultOpt() Options {
	return Options{
		PageSize:            16 << 10,
		CacheBytes:          1 << 20, // 64 pages
		APICostPerPage:      7 * simtime.Microsecond,
		RadixLookupLockFree: 35,
		RadixLookupLocked:   550,
	}
}

const hostRW = hostfs.ModeRead | hostfs.ModeWrite

func (h *harness) write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := h.host.WriteFile(simtime.NewClock(0), path, data, hostRW); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) read(t *testing.T, path string) []byte {
	t.Helper()
	data, err := h.host.ReadFile(simtime.NewClock(0), path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// run executes fn as a single threadblock on GPU g.
func (h *harness) run(t *testing.T, g int, fn func(b *gpu.Block) error) {
	t.Helper()
	if _, err := h.devs[g].Launch(0, 1, 64, fn); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

// runBlocks executes fn as n threadblocks on GPU g.
func (h *harness) runBlocks(t *testing.T, g, n int, fn func(b *gpu.Block) error) {
	t.Helper()
	if _, err := h.devs[g].Launch(0, n, 64, fn); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*7 + seed
	}
	return out
}

func TestReadCrossingPages(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	want := pattern(100<<10, 3) // ~6 pages
	h.write(t, "/f", want)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		// Straddle page boundaries at an odd offset.
		got := make([]byte, 40<<10)
		n, err := fs.Read(b, fd, got, 12345)
		if err != nil {
			return err
		}
		if n != len(got) || !bytes.Equal(got, want[12345:12345+n]) {
			t.Errorf("cross-page read mismatch (n=%d)", n)
		}
		// Read past EOF is short.
		n, err = fs.Read(b, fd, got, int64(len(want))-10)
		if err != nil || n != 10 {
			t.Errorf("EOF read: n=%d err=%v", n, err)
		}
		// Read at EOF returns 0.
		n, err = fs.Read(b, fd, got, int64(len(want)))
		if err != nil || n != 0 {
			t.Errorf("read at EOF: n=%d err=%v", n, err)
		}
		return nil
	})
}

func TestOpenCoalescingAndRefcounts(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(1024, 0))

	fds := make([]int, 16)
	h.runBlocks(t, 0, 16, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		fds[b.Idx] = fd
		buf := make([]byte, 64)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
	// Every block must have received the same descriptor (descriptors
	// denote files, not opens).
	for _, fd := range fds[1:] {
		if fd != fds[0] {
			t.Fatalf("blocks got distinct descriptors: %v", fds)
		}
	}
	st := fs.Snapshot()
	if st.Opens != 16 {
		t.Fatalf("opens = %d", st.Opens)
	}
	// However the 16 opens interleave (coalescing on a live descriptor,
	// or fast reuse from the closed table between waves), exactly ONE
	// must have reached the host.
	if st.HostOpens != 1 {
		t.Fatalf("host opens = %d, want 1 (reuses %d)", st.HostOpens, st.ClosedTableReuses)
	}
}

func TestClosedTableReuseIsFree(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(64<<10, 1))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		buf := make([]byte, 64<<10)
		fs.Read(b, fd, buf, 0)
		return fs.Close(b, fd)
	})
	reads := h.server.Requests(rpc.OpReadPages)
	opens := h.server.Requests(rpc.OpOpen)

	// Re-open and re-read: all pages still cached, no host traffic.
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 64<<10)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(64<<10, 1)) {
			t.Errorf("cached content wrong")
		}
		return fs.Close(b, fd)
	})
	if got := h.server.Requests(rpc.OpReadPages); got != reads {
		t.Fatalf("re-open re-read went to the host: %d new reads", got-reads)
	}
	if got := h.server.Requests(rpc.OpOpen); got != opens {
		t.Fatalf("re-open of closed-table file hit the host: %d new opens", got-opens)
	}
	if fs.Snapshot().ClosedTableReuses == 0 {
		t.Fatalf("closed-table reuse not counted")
	}
}

func TestLazyInvalidationOnHostWrite(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(16<<10, 1))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		buf := make([]byte, 16)
		fs.Read(b, fd, buf, 0)
		return fs.Close(b, fd)
	})

	// CPU overwrites the file while the GPU holds it in its closed table.
	h.write(t, "/f", pattern(16<<10, 99))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		buf := make([]byte, 16)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(16<<10, 99)[:16]) {
			t.Errorf("stale cache served after host modification")
		}
		return nil
	})
}

func TestWriteReadBackAndFsync(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	want := pattern(50<<10, 7)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/out", O_RDWR|O_CREATE)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, want, 0); err != nil {
			return err
		}
		// Local read-back before any sync.
		got := make([]byte, len(want))
		if _, err := fs.Read(b, fd, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("local read-back mismatch")
		}
		// Not yet on the host (gclose does not sync; neither does gwrite).
		if len(h.read(t, "/out")) != 0 {
			t.Errorf("data reached host before gfsync")
		}
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		if !bytes.Equal(h.read(t, "/out"), want) {
			t.Errorf("host content wrong after gfsync")
		}
		return fs.Close(b, fd)
	})
}

func TestWriteOnceSemantics(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	// Pre-existing host content: O_GWRONCE never fetches it, and
	// diff-against-zeros merges GPU bytes over whatever the host has.
	pre := bytes.Repeat([]byte{0xEE}, 32<<10)
	h.write(t, "/merge", pre)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/merge", O_GWRONCE)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, []byte("GPU"), 1000); err != nil {
			return err
		}
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
	if h.server.Requests(rpc.OpReadPages) != 0 {
		t.Fatalf("O_GWRONCE fetched file content from the CPU")
	}
	got := h.read(t, "/merge")
	if string(got[1000:1003]) != "GPU" {
		t.Fatalf("written bytes missing")
	}
	if got[999] != 0xEE || got[1003] != 0xEE {
		t.Fatalf("diff-against-zeros reverted concurrent host bytes: %x %x", got[999], got[1003])
	}
}

func TestWriteOnceReadRejected(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/wo", O_GWRONCE)
		if err != nil {
			return err
		}
		if _, err := fs.Read(b, fd, make([]byte, 8), 0); !errors.Is(err, ErrWriteOnly) {
			t.Errorf("read from O_GWRONCE: %v", err)
		}
		return fs.Close(b, fd)
	})
}

func TestNoSyncTempFile(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/tmp-scratch", O_RDWR|O_NOSYNC)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, pattern(8<<10, 5), 0); err != nil {
			return err
		}
		got := make([]byte, 8<<10)
		if _, err := fs.Read(b, fd, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, pattern(8<<10, 5)) {
			t.Errorf("temp file read-back")
		}
		return fs.Close(b, fd)
	})
	// The temp file is unlinked from the host at final close.
	if _, err := h.host.Stat("/tmp-scratch"); err == nil {
		t.Fatalf("O_NOSYNC file survived on the host")
	}
}

func TestDiffMergeAcrossGPUs(t *testing.T) {
	// The general diff-and-merge protocol (the paper's future work):
	// two GPUs write disjoint halves of the same file — including within
	// a falsely-shared page — and both updates survive.
	h := newHarness(t, 2, defaultOpt())
	half := int64(24 << 10) // 1.5 pages: the middle page is falsely shared
	pre := make([]byte, 2*half)
	h.write(t, "/shared", pre)

	writer := func(g int, off int64, seed byte) func(b *gpu.Block) error {
		return func(b *gpu.Block) error {
			fs := h.fss[g]
			fd, err := fs.Open(b, "/shared", O_RDWR|O_GWRSHARED)
			if err != nil {
				return err
			}
			if _, err := fs.Write(b, fd, pattern(int(half), seed), off); err != nil {
				return err
			}
			if err := fs.Fsync(b, fd); err != nil {
				return err
			}
			return fs.Close(b, fd)
		}
	}
	h.run(t, 0, writer(0, 0, 1))
	h.run(t, 1, writer(1, half, 2))

	got := h.read(t, "/shared")
	if !bytes.Equal(got[:half], pattern(int(half), 1)) {
		t.Fatalf("GPU 0's half corrupted")
	}
	if !bytes.Equal(got[half:], pattern(int(half), 2)) {
		t.Fatalf("GPU 1's half corrupted (false sharing reverted it)")
	}
}

func TestSingleWriterEnforcedAcrossGPUs(t *testing.T) {
	h := newHarness(t, 2, defaultOpt())
	h.write(t, "/excl", pattern(1024, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		_, err := h.fss[0].Open(b, "/excl", O_RDWR)
		return err
	})
	// GPU 0 closed its open at block end? No: the open is still retired
	// to GPU 0's closed table, but EndWrite ran at close. Hold it open
	// instead:
	errCh := make(chan error, 1)
	h.run(t, 0, func(b *gpu.Block) error {
		_, err := h.fss[0].Open(b, "/excl", O_RDWR)
		if err != nil {
			return err
		}
		// While GPU 0 holds the write open, GPU 1 must be rejected.
		h.run(t, 1, func(b2 *gpu.Block) error {
			_, err2 := h.fss[1].Open(b2, "/excl", O_RDWR)
			errCh <- err2
			return nil
		})
		return nil
	})
	var busy *wrapfs.ErrBusy
	if err := <-errCh; !errors.As(err, &busy) {
		t.Fatalf("second GPU writer: %v", err)
	}
}

func TestFstatSemantics(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(12345, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDWR)
		info, err := fs.Fstat(b, fd)
		if err != nil {
			return err
		}
		if info.Size != 12345 || info.Path != "/f" || info.Ino == 0 {
			t.Errorf("fstat: %+v", info)
		}
		// gfstat is served from GPU state: no host RPC.
		before := h.server.Requests(rpc.OpStat)
		fs.Fstat(b, fd)
		// (refreshGeneration also stats; only count the direct call path)
		if h.server.Requests(rpc.OpStat) != before {
			t.Errorf("gfstat went to the host")
		}
		// Local writes extend the visible size.
		fs.Write(b, fd, []byte("xyz"), 20000)
		info, _ = fs.Fstat(b, fd)
		if info.Size != 20003 {
			t.Errorf("size after write: %d", info.Size)
		}
		return fs.Close(b, fd)
	})
}

func TestFtruncateReclaims(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(64<<10, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDWR)
		buf := make([]byte, 64<<10)
		fs.Read(b, fd, buf, 0)
		framesBefore := fs.Cache().FreeFrames()
		if err := fs.Ftruncate(b, fd, 20<<10); err != nil {
			return err
		}
		if fs.Cache().FreeFrames() <= framesBefore {
			t.Errorf("truncate reclaimed no pages")
		}
		info, _ := fs.Fstat(b, fd)
		if info.Size != 20<<10 {
			t.Errorf("size after truncate: %d", info.Size)
		}
		// Reads past the new end return 0.
		n, _ := fs.Read(b, fd, buf, 30<<10)
		if n != 0 {
			t.Errorf("read past truncation returned %d", n)
		}
		return fs.Close(b, fd)
	})
	if got := h.read(t, "/f"); len(got) != 20<<10 {
		t.Fatalf("host size after gftruncate: %d", len(got))
	}
}

func TestUnlinkReclaimsImmediately(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(32<<10, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		buf := make([]byte, 32<<10)
		fs.Read(b, fd, buf, 0)
		fs.Close(b, fd)
		free := fs.Cache().FreeFrames()
		if err := fs.Unlink(b, "/f"); err != nil {
			return err
		}
		if fs.Cache().FreeFrames() <= free {
			t.Errorf("unlink did not reclaim buffer space")
		}
		return nil
	})
	if _, err := h.host.Stat("/f"); err == nil {
		t.Fatalf("file survived gunlink")
	}
}

func TestUnlinkWhileOpenDefersDiscard(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(1<<10, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		if err := fs.Unlink(b, "/f"); err != nil {
			return err
		}
		// The open descriptor still reads.
		buf := make([]byte, 16)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			t.Errorf("read after unlink: %v", err)
		}
		return fs.Close(b, fd)
	})
	if _, err := h.host.Stat("/f"); err == nil {
		t.Fatalf("host file survived")
	}
}

func TestMmapSemantics(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	want := pattern(40<<10, 9)
	h.write(t, "/f", want)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		defer fs.Close(b, fd)

		// Request more than a page: get a prefix only.
		m, err := fs.Mmap(b, fd, 1000, 100<<10)
		if err != nil {
			return err
		}
		if int64(len(m.Data)) != opt.PageSize-1000 {
			t.Errorf("mapping length %d, want prefix to page end %d", len(m.Data), opt.PageSize-1000)
		}
		if !bytes.Equal(m.Data, want[1000:1000+len(m.Data)]) {
			t.Errorf("mapped bytes wrong")
		}
		// The mapping pins its page: it cannot be evicted.
		if m.Munmap(b) != nil {
			t.Errorf("munmap")
		}
		if err := m.Munmap(b); !errors.Is(err, ErrBadMapping) {
			t.Errorf("double munmap: %v", err)
		}

		// Beyond EOF fails.
		if _, err := fs.Mmap(b, fd, int64(len(want)), 10); !errors.Is(err, ErrInvalid) {
			t.Errorf("mmap beyond EOF: %v", err)
		}
		// Clamped at EOF.
		m2, err := fs.Mmap(b, fd, int64(len(want))-100, 1<<20)
		if err != nil {
			return err
		}
		if len(m2.Data) != 100 {
			t.Errorf("EOF clamp: %d", len(m2.Data))
		}
		return m2.Munmap(b)
	})
}

func TestMmapWriteAndMsync(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(16<<10, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDWR)
		defer fs.Close(b, fd)
		m, err := fs.Mmap(b, fd, 0, 16<<10)
		if err != nil {
			return err
		}
		if _, err := m.Write(b, 100, []byte("mapped write")); err != nil {
			return err
		}
		if err := m.Msync(b); err != nil {
			return err
		}
		return m.Munmap(b)
	})
	got := h.read(t, "/f")
	if string(got[100:112]) != "mapped write" {
		t.Fatalf("gmsync did not propagate: %q", got[100:112])
	}
}

func TestQuasiReadOnlyMappingNeverPropagates(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	orig := pattern(16<<10, 4)
	h.write(t, "/f", orig)

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		defer fs.Close(b, fd)
		m, _ := fs.Mmap(b, fd, 0, 4096)
		// "Improper" write through a read-only mapping: GPUfs returns
		// writable memory but never propagates the update.
		m.Data[0] = 0xFF
		m.MarkDirty()
		if err := m.Msync(b); err != nil {
			return err
		}
		fs.Fsync(b, fd)
		return m.Munmap(b)
	})
	if got := h.read(t, "/f"); got[0] != orig[0] {
		t.Fatalf("quasi-read-only update reached the host")
	}
}

func TestGfsyncSkipsMappedPages(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", make([]byte, 32<<10))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDWR)
		defer fs.Close(b, fd)
		// Page 0: mapped (referenced) and dirtied; page 1: dirtied via
		// gwrite. gfsync must flush page 1 but skip the mapped page 0.
		m, err := fs.Mmap(b, fd, 0, 4096)
		if err != nil {
			return err
		}
		if _, err := m.Write(b, 0, []byte("MAPPED")); err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, []byte("PLAIN"), 16<<10); err != nil {
			return err
		}
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		host := h.read(t, "/f")
		if string(host[16<<10:16<<10+5]) != "PLAIN" {
			t.Errorf("unmapped dirty page not flushed")
		}
		if string(host[:6]) == "MAPPED" {
			t.Errorf("gfsync flushed a memory-mapped page")
		}
		return m.Munmap(b)
	})
}

func TestEvictionWriteBackAndRefetch(t *testing.T) {
	// Working set twice the cache: pages are written, evicted (with
	// write-back), and transparently refetched.
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	total := 32 * opt.PageSize
	h.write(t, "/big", make([]byte, total))

	want := pattern(int(total), 6)
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/big", O_RDWR)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, want, 0); err != nil {
			return err
		}
		got := make([]byte, total)
		if _, err := fs.Read(b, fd, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("read-back through eviction mismatch")
		}
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
	if fs.Cache().Reclaimed() == 0 {
		t.Fatalf("no pages were reclaimed despite cache pressure")
	}
	if !bytes.Equal(h.read(t, "/big"), want) {
		t.Fatalf("host content wrong after eviction-driven write-back + gfsync")
	}
}

func TestFlagConflict(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(1024, 0))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/f", O_RDONLY)
		if err != nil {
			return err
		}
		if _, err := fs.Open(b, "/f", O_RDWR); !errors.Is(err, ErrFlagConflict) {
			t.Errorf("conflicting flags: %v", err)
		}
		return fs.Close(b, fd)
	})
}

func TestBadFlagCombos(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		if _, err := fs.Open(b, "/x", O_GWRONCE|O_GWRSHARED); !errors.Is(err, ErrBadFlags) {
			t.Errorf("GWRONCE|GWRSHARED: %v", err)
		}
		if _, err := fs.Open(b, "/x", O_RDONLY|O_GWRSHARED); !errors.Is(err, ErrBadFlags) {
			t.Errorf("read-only GWRSHARED: %v", err)
		}
		return nil
	})
}

func TestBadDescriptorOps(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		buf := make([]byte, 8)
		if _, err := fs.Read(b, 99, buf, 0); !errors.Is(err, ErrBadFD) {
			t.Errorf("read bad fd: %v", err)
		}
		if _, err := fs.Write(b, 99, buf, 0); !errors.Is(err, ErrBadFD) {
			t.Errorf("write bad fd: %v", err)
		}
		if err := fs.Close(b, 99); !errors.Is(err, ErrBadFD) {
			t.Errorf("close bad fd: %v", err)
		}
		if _, err := fs.Read(b, -1, buf, -5); !errors.Is(err, ErrInvalid) {
			t.Errorf("negative offset: %v", err)
		}
		return nil
	})
}

func TestReadOnlyWriteRejected(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(64, 0))
	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		defer fs.Close(b, fd)
		if _, err := fs.Write(b, fd, []byte("x"), 0); !errors.Is(err, ErrReadOnly) {
			t.Errorf("write through read-only: %v", err)
		}
		if err := fs.Ftruncate(b, fd, 0); !errors.Is(err, ErrReadOnly) {
			t.Errorf("truncate through read-only: %v", err)
		}
		return nil
	})
}

func TestOpenMissingFile(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		if _, err := fs.Open(b, "/nope", O_RDONLY); err == nil {
			t.Errorf("open of missing file succeeded")
		}
		// The failure must not poison the table: creating it then works.
		fd, err := fs.Open(b, "/nope", O_RDWR|O_CREATE)
		if err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
}

func TestStatsSnapshot(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(32<<10, 0))
	h.runBlocks(t, 0, 4, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDONLY)
		buf := make([]byte, 16<<10)
		fs.Read(b, fd, buf, 0)
		return fs.Close(b, fd)
	})
	st := fs.Snapshot()
	if st.LockFreeAccesses == 0 {
		t.Fatalf("no lock-free accesses recorded")
	}
	if st.Opens != 4 {
		t.Fatalf("opens = %d", st.Opens)
	}
}

func TestReadAheadCorrectAndFaster(t *testing.T) {
	want := pattern(512<<10, 8) // 32 pages of 16K
	run := func(ra int) simtime.Duration {
		opt := defaultOpt()
		opt.CacheBytes = 64 * opt.PageSize
		opt.ReadAheadPages = ra
		h := newHarness(t, 1, opt)
		fs := h.fss[0]
		h.write(t, "/ra", want)
		var end simtime.Time
		h.run(t, 0, func(b *gpu.Block) error {
			fd, err := fs.Open(b, "/ra", O_RDONLY)
			if err != nil {
				return err
			}
			defer fs.Close(b, fd)
			got := make([]byte, 8<<10)
			for off := int64(0); off < int64(len(want)); off += int64(len(got)) {
				if _, err := fs.Read(b, fd, got, off); err != nil {
					return err
				}
				if !bytes.Equal(got, want[off:off+int64(len(got))]) {
					t.Errorf("read-ahead corrupted data at %d", off)
				}
			}
			end = b.Clock.Now()
			return nil
		})
		return simtime.Duration(end)
	}
	noRA := run(0)
	withRA := run(4)
	if withRA >= noRA {
		t.Fatalf("sequential gread with read-ahead (%v) should beat without (%v)", withRA, noRA)
	}
}

func TestReadAheadNeverEvicts(t *testing.T) {
	// A full cache must abort speculation rather than evict real data.
	opt := defaultOpt()
	opt.CacheBytes = 4 * opt.PageSize
	opt.ReadAheadPages = 8
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/ra2", pattern(int(32*opt.PageSize), 9))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/ra2", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		buf := make([]byte, 4<<10)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		return nil
	})
	if got := fs.Cache().Reclaimed(); got != 0 {
		t.Fatalf("read-ahead evicted %d pages from a full cache", got)
	}
}

func TestDisableFastReopenForcesHostPath(t *testing.T) {
	opt := defaultOpt()
	opt.DisableFastReopen = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/f", pattern(1024, 0))

	reopen := func() {
		h.run(t, 0, func(b *gpu.Block) error {
			fd, err := fs.Open(b, "/f", O_RDONLY)
			if err != nil {
				return err
			}
			return fs.Close(b, fd)
		})
	}
	reopen()
	reopen()
	if got := h.server.Requests(rpc.OpOpen); got != 2 {
		t.Fatalf("with fast reopen disabled, host opens = %d, want 2", got)
	}
	// Cached pages are still validated and reused through the slow path.
	if fs.Snapshot().HostOpens != 2 {
		t.Fatalf("host opens stat: %d", fs.Snapshot().HostOpens)
	}
}

func TestNoSyncSpillsOnlyUnderPressure(t *testing.T) {
	// O_NOSYNC files write to the host only to reclaim buffer space
	// (Table 1). With room in the cache, nothing leaves the GPU; under
	// pressure, spilled pages must still read back correctly.
	opt := defaultOpt()
	opt.CacheBytes = 4 * opt.PageSize
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	want := pattern(int(16*opt.PageSize), 3)
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/scratch", O_RDWR|O_NOSYNC)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, want, 0); err != nil {
			return err
		}
		got := make([]byte, len(want))
		if _, err := fs.Read(b, fd, got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("temp file corrupted through spill")
		}
		return fs.Close(b, fd)
	})
	if h.server.Requests(rpc.OpWritePages) == 0 {
		t.Fatalf("pressure should have spilled temp pages to the host")
	}
	if _, err := h.host.Stat("/scratch"); err == nil {
		t.Fatalf("temp file must vanish at final close")
	}
}

func TestWriteOnceManyBlocksDisjoint(t *testing.T) {
	// 32 blocks write disjoint slices of one O_GWRONCE output under
	// eviction pressure; the merged host file must be exact.
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	const blocks = 32
	chunk := int(opt.PageSize) * 3 / 4 // misaligned: false sharing guaranteed
	want := pattern(blocks*chunk, 5)

	h.runBlocks(t, 0, blocks, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/merged", O_GWRONCE)
		if err != nil {
			return err
		}
		off := b.Idx * chunk
		if _, err := fs.Write(b, fd, want[off:off+chunk], int64(off)); err != nil {
			return err
		}
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})

	got := h.read(t, "/merged")
	if len(got) != len(want) {
		t.Fatalf("merged size %d, want %d", len(got), len(want))
	}
	// Zero bytes written by a block are indistinguishable from holes
	// under diff-against-zeros, so compare only non-zero positions —
	// exactly the guarantee O_GWRONCE documents.
	for i := range want {
		if want[i] != 0 && got[i] != want[i] {
			t.Fatalf("byte %d: got %x want %x", i, got[i], want[i])
		}
	}
}

func TestMsyncViaFrameForData(t *testing.T) {
	// gmunmap/gmsync translate a raw-data-array pointer back to its
	// pframe by index arithmetic (§4.2); exercise the translation.
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/f", pattern(16<<10, 2))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/f", O_RDWR)
		defer fs.Close(b, fd)
		m, err := fs.Mmap(b, fd, 0, 4096)
		if err != nil {
			return err
		}
		defer m.Munmap(b)

		fr := fs.Cache().Frame(m.FrameIndex())
		if fs.Cache().FrameForData(fs.Cache().RawOffset(fr.Index)) != fr {
			t.Errorf("pointer-to-pframe translation broken")
		}
		return nil
	})
}

func TestFsyncDiskForcesStableStorage(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/persist", O_RDWR|O_CREATE)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		if _, err := fs.Write(b, fd, pattern(64<<10, 4), 0); err != nil {
			return err
		}
		h.host.Disk().Reset()
		if err := fs.FsyncDisk(b, fd); err != nil {
			return err
		}
		if _, written, _ := h.host.Disk().Stats(); written == 0 {
			t.Errorf("GfsyncDisk must reach the disk, not just the host page cache")
		}
		return nil
	})
}

func TestMappingReadHelper(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	want := pattern(8<<10, 6)
	h.write(t, "/mr", want)
	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/mr", O_RDONLY)
		defer fs.Close(b, fd)
		m, err := fs.Mmap(b, fd, 0, 8<<10)
		if err != nil {
			return err
		}
		defer m.Munmap(b)
		dst := make([]byte, 100)
		n, err := m.Read(b, 50, dst)
		if err != nil || n != 100 {
			t.Errorf("mapping read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(dst, want[50:150]) {
			t.Errorf("mapping read content")
		}
		if _, err := m.Read(b, -1, dst); !errors.Is(err, ErrInvalid) {
			t.Errorf("negative mapping read: %v", err)
		}
		if _, err := m.Write(b, int64(len(m.Data))+5, dst); !errors.Is(err, ErrInvalid) {
			t.Errorf("out-of-range mapping write: %v", err)
		}
		return nil
	})
}

func TestAccessors(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	if fs.GPUID() != 0 || fs.PageSize() != defaultOpt().PageSize || fs.Client() == nil {
		t.Fatalf("accessors broken")
	}
}

func TestEvictionDrainsWholeLeaves(t *testing.T) {
	// A read-only streaming pass over a file much larger than the cache
	// must fully drain and detach old leaves (FIFO reclamation removes
	// last-level radix nodes, §4.2).
	opt := defaultOpt()
	opt.CacheBytes = 4 * opt.PageSize
	opt.EvictBatch = 64 // drain eagerly so whole leaves empty out
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	// 80 pages -> at least two leaves (64 slots per leaf).
	total := 80 * opt.PageSize
	h.write(t, "/stream", pattern(int(total), 7))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/stream", O_RDONLY)
		defer fs.Close(b, fd)
		buf := make([]byte, opt.PageSize)
		for off := int64(0); off < total; off += opt.PageSize {
			if _, err := fs.Read(b, fd, buf, off); err != nil {
				return err
			}
		}
		return nil
	})
	if fs.Cache().Reclaimed() == 0 {
		t.Fatalf("no reclamation")
	}
}

func TestEvictionPolicyOrdering(t *testing.T) {
	// §4.2: reclaim from closed files first (no write-back needed, not
	// in use), then read-only opens, and writable opens last.
	opt := defaultOpt()
	opt.CacheBytes = 12 * opt.PageSize
	opt.EvictBatch = 2 // reclaim only what the two-page demand needs
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	pageBytes := int(opt.PageSize)
	h.write(t, "/closed", pattern(4*pageBytes, 1))
	h.write(t, "/ro", pattern(4*pageBytes, 2))
	h.write(t, "/rw", pattern(4*pageBytes, 3))
	h.write(t, "/pressure", pattern(12*pageBytes, 4))

	h.run(t, 0, func(b *gpu.Block) error {
		buf := make([]byte, 4*pageBytes)

		// Populate: /closed read then closed; /ro and /rw stay open.
		cfd, _ := fs.Open(b, "/closed", O_RDONLY)
		fs.Read(b, cfd, buf, 0)
		fs.Close(b, cfd)

		rofd, _ := fs.Open(b, "/ro", O_RDONLY)
		fs.Read(b, rofd, buf, 0)
		rwfd, _ := fs.Open(b, "/rw", O_RDWR)
		fs.Read(b, rwfd, buf, 0)

		// All 12 frames in use. Touch 2 fresh pages: the victims must
		// come from the closed file, leaving /ro and /rw intact.
		pfd, _ := fs.Open(b, "/pressure", O_RDONLY)
		if _, err := fs.Read(b, pfd, buf[:2*pageBytes], 0); err != nil {
			return err
		}
		return nil
	})

	frames := func(path string) int64 {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fd, ok := fs.byPath[path]; ok {
			return fs.fds[fd].fc.frames.Load()
		}
		if ino, ok := fs.closedByPath[path]; ok {
			return fs.closed[ino].frames.Load()
		}
		return -1
	}
	if got := frames("/closed"); got > 2 {
		t.Fatalf("closed file kept %d frames; should be first victim", got)
	}
	if got := frames("/ro"); got != 4 {
		t.Fatalf("read-only open lost frames (%d) before the closed file was drained", got)
	}
	if got := frames("/rw"); got != 4 {
		t.Fatalf("writable open lost frames (%d) before higher-priority victims", got)
	}
}

func TestOracleConcurrentDisjoint(t *testing.T) {
	// 16 blocks each own a disjoint region of one shared O_RDWR file and
	// run random write/read/verify loops concurrently under eviction
	// pressure; every read must observe only the block's own writes.
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	const blocks = 16
	region := 3 * int(opt.PageSize) / 2 // misaligned: pages falsely shared
	h.write(t, "/conc", make([]byte, blocks*region))

	h.runBlocks(t, 0, blocks, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/conc", O_RDWR|O_GWRSHARED)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		base := int64(b.Idx) * int64(region)
		model := make([]byte, region)
		buf := make([]byte, region)
		for step := 0; step < 40; step++ {
			off := b.Rand.Intn(region - 1)
			n := b.Rand.Intn(region-off) + 1
			for i := 0; i < n; i++ {
				model[off+i] = byte(b.Rand.Intn(256))
			}
			if _, err := fs.Write(b, fd, model[off:off+n], base+int64(off)); err != nil {
				return err
			}
			if _, err := fs.Read(b, fd, buf, base); err != nil {
				return err
			}
			if !bytes.Equal(buf, model) {
				return errors.New("block observed foreign or stale bytes in its own region")
			}
			if step%13 == 0 {
				if err := fs.Fsync(b, fd); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func TestFsyncRange(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	total := 6 * int(opt.PageSize)
	h.write(t, "/rng", make([]byte, total))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/rng", O_RDWR)
		defer fs.Close(b, fd)
		// Dirty every page.
		if _, err := fs.Write(b, fd, pattern(total, 9), 0); err != nil {
			return err
		}
		// Sync only pages 2-3.
		if err := fs.FsyncRange(b, fd, 2*opt.PageSize, 2*opt.PageSize); err != nil {
			return err
		}
		host := h.read(t, "/rng")
		want := pattern(total, 9)
		lo, hi := int(2*opt.PageSize), int(4*opt.PageSize)
		if !bytes.Equal(host[lo:hi], want[lo:hi]) {
			t.Errorf("ranged sync did not flush the requested pages")
		}
		clean := true
		for i := 0; i < lo; i++ {
			if host[i] != 0 {
				clean = false
				break
			}
		}
		if !clean {
			t.Errorf("ranged sync flushed pages outside the range")
		}
		if err := fs.FsyncRange(b, fd, -1, 5); !errors.Is(err, ErrInvalid) {
			t.Errorf("negative range: %v", err)
		}
		// Full sync afterwards flushes the rest.
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		if !bytes.Equal(h.read(t, "/rng"), want) {
			t.Errorf("full sync incomplete")
		}
		return nil
	})
}

func TestHostPermissionEnforcedForGPU(t *testing.T) {
	// §4.5: "The host OS prevents a GPUfs application from opening host
	// files the application doesn't have permission to access."
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	if err := h.host.WriteFile(simtime.NewClock(0), "/secret", []byte("x"), hostfs.ModeWrite); err != nil {
		t.Fatal(err)
	}
	h.run(t, 0, func(b *gpu.Block) error {
		if _, err := fs.Open(b, "/secret", O_RDONLY); !errors.Is(err, hostfs.ErrPerm) {
			t.Errorf("unreadable host file opened from the GPU: %v", err)
		}
		return nil
	})
}

func TestGfstatServedLocallyAfterReopen(t *testing.T) {
	// "File size reflects file size at the time of the first gopen"
	// (Table 1) — including across close/reopen round trips through the
	// closed file table, extended by local writes.
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	h.write(t, "/sz", pattern(1000, 1))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, _ := fs.Open(b, "/sz", O_RDWR)
		fs.Write(b, fd, []byte("xx"), 5000) // extend locally
		fs.Close(b, fd)

		fd, err := fs.Open(b, "/sz", O_RDWR)
		if err != nil {
			return err
		}
		defer fs.Close(b, fd)
		info, _ := fs.Fstat(b, fd)
		if info.Size != 5002 {
			t.Errorf("size after reopen: %d, want 5002", info.Size)
		}
		return nil
	})
}
