package core

import "errors"

// Errors returned by the GPUfs API.
var (
	// ErrBadFD is returned for operations on an unknown or closed file
	// descriptor.
	ErrBadFD = errors.New("gpufs: bad file descriptor")
	// ErrReadOnly is returned when writing through a read-only open.
	ErrReadOnly = errors.New("gpufs: file opened read-only")
	// ErrWriteOnly is returned when reading a write-only open.
	ErrWriteOnly = errors.New("gpufs: file opened write-only")
	// ErrBadFlags is returned for inconsistent open flags.
	ErrBadFlags = errors.New("gpufs: invalid open flags")
	// ErrCacheFull is returned when the paging algorithm cannot reclaim
	// any page — every frame is referenced by running threadblocks.
	ErrCacheFull = errors.New("gpufs: buffer cache exhausted and unreclaimable")
	// ErrFlagConflict is returned when a file is opened with flags
	// incompatible with an existing open of the same file.
	ErrFlagConflict = errors.New("gpufs: open flags conflict with existing open")
	// ErrBadMapping is returned for gmunmap/gmsync of an unknown mapping.
	ErrBadMapping = errors.New("gpufs: not a mapped region")
	// ErrInvalid is returned for malformed arguments (negative offsets
	// and the like).
	ErrInvalid = errors.New("gpufs: invalid argument")
)
