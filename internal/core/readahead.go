package core

import (
	"sync"

	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// Read-ahead comes in two flavors (§3.3 lists read-ahead among the
// optimizations a GPU buffer cache enables):
//
//   - readAhead is the original greedy window: Options.ReadAheadPages
//     pages past every gread, unconditionally. Sequential greads gain;
//     random greads pay for unused transfers (the ablation bench
//     quantifies the trade). The paper's justification for greed — GPU
//     access patterns look chaotic because of non-deterministic block
//     scheduling — is what the adaptive engine below works around.
//   - adaptiveReadAhead (ISSUE 4) hashes threadblocks onto per-open-file
//     detector slots, so each slot observes one block's access stream in
//     isolation. A slot speculates only after two accesses confirm a
//     stride, ramps its window up Linux-style while the streak holds,
//     shrinks it when the file's wasted-prefetch counter overtakes its
//     used counter, and — for stride-1 runs — coalesces the whole window
//     into multi-page RPCs, amortizing per-transaction PCIe latency at
//     small page sizes.

// Adaptive read-ahead parameters.
const (
	// raStreams is the number of detector slots per open file;
	// threadblocks hash onto slots by index. A power of two.
	raStreams = 32
	// raInitWindow is the speculation depth (in strides) granted when a
	// pattern is first confirmed; raMaxWindow is the ramp-up ceiling.
	raInitWindow = 4
	raMaxWindow  = 32
	// raRampStreak is the streak length at which the window starts
	// doubling toward raMaxWindow.
	raRampStreak = 4
	// maxRAStride is the largest page stride treated as a pattern;
	// beyond it the stream is considered random and nothing is
	// speculated.
	maxRAStride = 64
	// probeCostShift scales the per-page cost of probing a speculative
	// candidate that turns out to be resident (or claimed):
	// APICostPerPage >> probeCostShift. The skip path is a few metadata
	// loads, far cheaper than frame initialization.
	probeCostShift = 3
	// raMaxSpanBytes bounds one coalesced vectored RPC (the daemon stages
	// the whole span contiguously, so unbounded spans would model
	// arbitrarily large single transfers and erase the per-transaction
	// cost that separates Figure 4's page sizes). Linux similarly clamps a
	// single read-ahead I/O; the window can still be deeper than one span
	// — it just pipelines as several in-flight RPCs.
	raMaxSpanBytes = 32 << 10
	// raMaxWindowBytes caps the window in BYTES, like Linux's read-ahead
	// (which ramps toward a byte budget, not a page count). Small pages
	// coalesce, so a deep window is nearly free and the full raMaxWindow
	// applies; at page sizes past raMaxSpanBytes every speculated page is
	// its own RPC and a deep window just burns the block's API time —
	// 512K of in-flight speculation is already plenty to hide the host
	// round trip.
	raMaxWindowBytes = 512 << 10
)

// raStream is one adaptive read-ahead detector slot: the access history
// and speculation window of (approximately) one threadblock's stream over
// one open file.
type raStream struct {
	mu       sync.Mutex
	seen     bool  // lastPage is meaningful
	lastPage int64 // last page index this stream accessed
	stride   int64 // page delta of the current run
	streak   int   // consecutive accesses matching stride
	window   int   // speculation depth, in strides
	// nextPf is the speculation frontier — the first page of the pattern
	// not yet issued — valid when frontierOK. It keeps overlapping
	// windows from re-probing pages already in flight.
	nextPf     int64
	frontierOK bool
}

// probeCost is the virtual cost of one resident-page probe in a
// read-ahead loop (satellite: skips are charged too, not just launches).
func (fs *FS) probeCost() simtime.Duration {
	return fs.opt.APICostPerPage >> probeCostShift
}

// readAhead prefetches up to Options.ReadAheadPages pages starting at
// firstPage, asynchronously: each prefetched page's RPC is enqueued at the
// block's current time but the block does not wait — the page's frame
// records the transfer's virtual completion, which any later consumer
// observes through Frame.ReadyAt.
func (fs *FS) readAhead(b *gpu.Block, f *file, firstPage int64) {
	if f.writeOnce || !f.readable {
		return
	}
	ps := fs.opt.PageSize
	lastPage := (f.fc.size.Load() - 1) / ps

	for i := 0; i < fs.opt.ReadAheadPages; i++ {
		pageIdx := firstPage + int64(i)
		if pageIdx > lastPage {
			return
		}
		if !fs.prefetchPage(b, f, pageIdx, pcache.SpecPending) {
			b.Busy(fs.probeCost())
		}
	}
}

// adaptiveReadAhead is the per-access hook of the adaptive engine: the
// calling block just accessed pages [first, last] of f. It updates the
// block's detector slot and, when the slot is confident, issues the
// speculation window beyond the access — stride-1 windows as coalesced
// multi-page RPCs, larger strides page by page.
func (fs *FS) adaptiveReadAhead(b *gpu.Block, f *file, first, last int64) {
	if f.writeOnce || !f.readable {
		return
	}
	// Dead-zone gate: speculation pays its fixed issue cost (API call +
	// probe on the block's clock) back in one of two ways — coalescing
	// several pages into one RPC (needs 2*PageSize <= raMaxSpanBytes), or
	// hiding a transfer long enough to dwarf the issue itself (one page
	// already spans 2*raMaxSpanBytes). Between the two, every speculated
	// page is its own RPC and too small to amortize it: measured at 32K
	// pages, a 100% hit rate still nets a small throughput LOSS. Such
	// streams speculate nothing.
	if ps := fs.opt.PageSize; 2*ps > raMaxSpanBytes && ps < 2*raMaxSpanBytes {
		return
	}
	fc := f.fc
	st := &f.ra[b.Idx&(raStreams-1)]

	st.mu.Lock()
	if !st.seen {
		st.seen = true
		st.lastPage = last
		st.mu.Unlock()
		return
	}
	delta := first - st.lastPage
	if delta == 0 {
		// Re-access of the same page: no new direction information.
		st.mu.Unlock()
		return
	}
	if st.streak > 0 && delta == st.stride {
		st.streak++
	} else {
		st.stride = delta
		st.streak = 1
		st.window = raInitWindow
		st.frontierOK = false
	}
	st.lastPage = last
	stride := st.stride
	if st.streak < 2 || stride > maxRAStride || stride < -maxRAStride {
		// Not confident: random-looking streams speculate nothing —
		// exactly the waste the greedy window pays on Figure 6.
		st.mu.Unlock()
		return
	}

	// Window feedback: wasted prefetch overtaking used prefetch shrinks
	// the window back toward the initial size; a sustained streak doubles
	// it toward the ceiling. When waste has outright overtaken use (a
	// cache too tight for the working set — speculative pages are being
	// evicted before their consumer returns), the file stands down from
	// speculation entirely: a prefetch that will be reclaimed unconsumed
	// costs a daemon round trip, a DMA, and an eviction, and hides
	// nothing.
	used, wasted := fc.prefetchUsed.Load(), fc.prefetchWasted.Load()
	if wasted > used && used+wasted >= 64 {
		st.mu.Unlock()
		return
	}
	maxWindow := raMaxWindow
	if byBytes := int(raMaxWindowBytes / fs.opt.PageSize); byBytes < maxWindow {
		maxWindow = byBytes
	}
	if maxWindow < raInitWindow {
		maxWindow = raInitWindow
	}
	switch {
	case wasted > used/2+4:
		if st.window > raInitWindow {
			st.window /= 2
		}
	case st.streak >= raRampStreak && st.window < maxWindow &&
		(stride == 1 || stride == -1):
		// Only unit strides ramp: they coalesce into vectored RPCs, so a
		// deep window is cheap, and sequential streams are long. A strided
		// window pays one RPC per page and covers window*stride pages of
		// file distance — ramping it overshoots the scan's end for little
		// gain.
		st.window *= 2
	}
	if st.window > maxWindow {
		st.window = maxWindow
	}

	// The window starts at the predicted next access; skip the part
	// already issued by previous calls (the frontier).
	base := last + stride
	start := base
	if st.frontierOK {
		if (stride > 0 && st.nextPf > start) || (stride < 0 && st.nextPf < start) {
			start = st.nextPf
		}
	}
	ahead := (start - base) / stride
	// Hysteresis (Linux's async mark): while more than half the window is
	// still in flight there is runway, and topping up now would issue a
	// 1-page span per access — forfeiting coalescing. Wait until the
	// consumer has eaten through half the window, then refill it whole, so
	// steady state issues window/2-page vectored RPCs. Only worth it when
	// pages actually coalesce (ps < raMaxSpanBytes): past that, a span is
	// one RPC per page regardless, and deferred refills just dump the
	// whole window's API cost on the block in a burst — continuous 1-page
	// top-up spreads it evenly instead.
	if st.frontierOK && ahead > int64(st.window)/2 && fs.opt.PageSize < raMaxSpanBytes {
		st.mu.Unlock()
		return
	}
	n := int64(st.window) - ahead
	// Clamp to the file and to the frame-pool budget (speculation never
	// evicts, so a tight pool shrinks the issue, not resident data).
	if lastFile := (fc.size.Load() - 1) / fs.opt.PageSize; stride > 0 {
		if start > lastFile {
			n = 0
		} else if maxN := (lastFile-start)/stride + 1; n > maxN {
			n = maxN
		}
	} else {
		if start < 0 {
			n = 0
		} else if maxN := start/(-stride) + 1; n > maxN {
			n = maxN
		}
	}
	if budget := int64(fs.fetchBudget()); n > budget {
		n = budget
	}
	// Global speculation cap: at most a quarter of the frame pool may
	// hold unconsumed speculative pages at once. Without it, dozens of
	// confident streams sharing a tight cache prefetch each other's
	// demand data out of residence — the waste feedback would notice,
	// but only after the damage.
	if room := int64(fs.cache.NumFrames()/4) - fs.specPending.Load(); n > room {
		n = room
	}
	if n <= 0 {
		st.mu.Unlock()
		return
	}
	st.nextPf = start + n*stride
	st.frontierOK = true
	st.mu.Unlock()

	if stride == 1 {
		fs.prefetchSpan(b, f, start, n)
		return
	}
	for i := int64(0); i < n; i++ {
		if !fs.prefetchPage(b, f, start+i*stride, pcache.SpecPending) {
			b.Busy(fs.probeCost())
		}
	}
}

// prefetchPage faults one page in without blocking the caller. Pages that
// are already resident (or being faulted by someone else) are skipped; a
// full buffer cache aborts rather than evicting on behalf of speculative
// data. Reports whether a fetch was actually launched — skips are the
// caller's to account (a cheap probe), so the synchronous batched-fetch
// path in gread, which calls this directly, stays cost-identical.
//
// spec is the speculation state stamped on the fetched frame:
// pcache.SpecPending (adaptive read-ahead) and pcache.SpecReplay (history
// replay) join the prefetch-issued/used/wasted accounting and the global
// in-flight cap; pcache.SpecNone is the batched-fetch path — those pages
// are known-needed pipelining of the current gread, not a guess, and
// counting them would report a flattering hit rate the engine didn't earn.
func (fs *FS) prefetchPage(b *gpu.Block, f *file, pageIdx int64, spec int32) bool {
	fc := f.fc
	g := fc.tree.Pin()
	fp, leaf := fc.tree.LookupLeaf(uint64(pageIdx))
	if fp == nil {
		fp, leaf = fc.tree.Insert(uint64(pageIdx))
	}
	if !fp.TryBeginInit() {
		g.Exit()
		return false // resident, in flight, or evicting: nothing to do
	}
	if leaf.Detached() {
		// Claim/detach race (see radix.RemoveLeaf): a frame initialized
		// on a detached leaf is unreachable by eviction and by Restart's
		// cache drop — it would leak until process exit. Speculative
		// reads just give up.
		fp.AbortInit()
		g.Exit()
		return false
	}
	g.Exit() // the Init claim pins the leaf (see getPage)

	fr := fs.cache.TryAllocOn(b.Idx, fc.tree.ID(), pageIdx*fs.opt.PageSize)
	if fr == nil {
		// No free frame: speculative reads never trigger eviction.
		fp.AbortInit()
		return false
	}
	fc.frames.Add(1)

	start := b.Clock.Now()
	n, done, err := fs.lane(b).ReadPagesAsync(b.Clock, f.hostFd, pageIdx*fs.opt.PageSize, fr.Data)
	if err != nil {
		fs.cache.Release(fr, false)
		fc.frames.Add(-1)
		fp.AbortInit()
		return false
	}
	if n < len(fr.Data) {
		b.ZeroBytes(fr.Data[n:])
	}
	fr.ValidBytes.Store(int64(n))
	fr.ReadyAt.Store(int64(done))
	fr.Prefetched.Store(true)
	if spec != pcache.SpecNone {
		fr.Spec.Store(spec)
	}
	if f.writeShrd {
		fr.SetPristine(fr.Data[:n])
	}
	b.Busy(fs.opt.APICostPerPage)
	fp.FinishInit(fr.Index)
	fp.Unref()
	if spec != pcache.SpecNone {
		fs.prefetchIssued.Add(1)
		fs.specPending.Add(1)
		if spec == pcache.SpecReplay {
			fs.replayIssued.Add(1)
		}
		fs.record(b, trace.OpPrefetch, f.path, pageIdx*fs.opt.PageSize, fs.opt.PageSize, start, nil)
	}
	return true
}

// prefetchSpan speculates count consecutive pages starting at start,
// coalescing adjacent claimable pages into single multi-page RPCs
// (rpc.ReadPagesVecAsync): one ring transaction and one DMA per run
// instead of one per page, which is what closes the per-transaction
// latency gap at small page sizes. Pages that cannot be claimed (already
// resident or in flight) split the run; a dry frame pool stops the span —
// speculation never evicts.
func (fs *FS) prefetchSpan(b *gpu.Block, f *file, start, count int64) {
	fs.spanFetch(b, f, start, count, pcache.SpecPending, fs.lane(b))
}

// spanFetch is the engine behind prefetchSpan, parameterized so the
// warp-read and history-replay paths can reuse it: spec selects the
// speculation state (prefetch counters, the Spec flag, the OpPrefetch
// trace — pcache.SpecNone for known-needed warp reads), and cli is the
// syscall view the vectored RPCs ride — gpread_warp passes a
// warp-granularity view so its coalesced descriptors are stamped GranWarp
// on the wire.
func (fs *FS) spanFetch(b *gpu.Block, f *file, start, count int64, spec int32, cli *gsys.Client) {
	fc := f.fc
	ps := fs.opt.PageSize

	type claimed struct {
		fp *radix.FPage
		fr *pcache.Frame
	}
	maxRun := int(raMaxSpanBytes / ps)
	if maxRun < 1 {
		maxRun = 1
	}
	var run []claimed
	var runFirst int64
	flush := func() {
		if len(run) == 0 {
			return
		}
		issueStart := b.Clock.Now()
		dsts := make([][]byte, len(run))
		for i, cl := range run {
			dsts[i] = cl.fr.Data
		}
		ns, done, err := cli.ReadPagesVecAsync(b.Clock, f.hostFd, runFirst*ps, dsts)
		if err != nil {
			for _, cl := range run {
				fs.cache.Release(cl.fr, false)
				fc.frames.Add(-1)
				cl.fp.AbortInit()
			}
			run = run[:0]
			return
		}
		for i, cl := range run {
			n := ns[i]
			if n < len(cl.fr.Data) {
				b.ZeroBytes(cl.fr.Data[n:])
			}
			cl.fr.ValidBytes.Store(int64(n))
			cl.fr.ReadyAt.Store(int64(done))
			cl.fr.Prefetched.Store(true)
			if spec != pcache.SpecNone {
				cl.fr.Spec.Store(spec)
			}
			if f.writeShrd {
				cl.fr.SetPristine(cl.fr.Data[:n])
			}
			// Per-page cost is only the claim bookkeeping; the API-call
			// overhead is paid once per vectored RPC below — that
			// amortization is the point of coalescing.
			b.Busy(fs.probeCost())
			cl.fp.FinishInit(cl.fr.Index)
			cl.fp.Unref()
		}
		b.Busy(fs.opt.APICostPerPage)
		if spec != pcache.SpecNone {
			fs.prefetchIssued.Add(int64(len(run)))
			fs.specPending.Add(int64(len(run)))
			if spec == pcache.SpecReplay {
				fs.replayIssued.Add(int64(len(run)))
			}
			fs.record(b, trace.OpPrefetch, f.path, runFirst*ps, int64(len(run))*ps, issueStart, nil)
		}
		run = run[:0]
	}

	for i := int64(0); i < count; i++ {
		idx := start + i
		g := fc.tree.Pin()
		fp, leaf := fc.tree.LookupLeaf(uint64(idx))
		if fp == nil {
			fp, leaf = fc.tree.Insert(uint64(idx))
		}
		if !fp.TryBeginInit() {
			g.Exit()
			b.Busy(fs.probeCost())
			flush()
			continue
		}
		if leaf.Detached() {
			fp.AbortInit()
			g.Exit()
			b.Busy(fs.probeCost())
			flush()
			continue
		}
		g.Exit() // the Init claim pins the leaf (see getPage)
		fr := fs.cache.TryAllocOn(b.Idx, fc.tree.ID(), idx*ps)
		if fr == nil {
			fp.AbortInit()
			flush()
			return // pool dry: stop speculating entirely
		}
		fc.frames.Add(1)
		if len(run) == 0 {
			runFirst = idx
		}
		run = append(run, claimed{fp: fp, fr: fr})
		if len(run) >= maxRun {
			flush()
		}
	}
	flush()
}
