package core

import (
	"gpufs/internal/gpu"
)

// readAhead prefetches up to Options.ReadAheadPages pages starting at
// firstPage, asynchronously: each prefetched page's RPC is enqueued at the
// block's current time but the block does not wait — the page's frame
// records the transfer's virtual completion, which any later consumer
// observes through Frame.ReadyAt. This is the buffer-cache read-ahead the
// paper lists among the optimizations a GPU buffer cache enables (§3.3).
//
// Read-ahead is greedy (no sequentiality detector): the paper observes
// that GPU access patterns look chaotic even for logically sequential
// workloads because of non-deterministic block scheduling, so per-file
// stride detection would rarely trigger. The ablation benchmark shows the
// resulting trade: sequential greads gain, random greads pay for unused
// transfers.
func (fs *FS) readAhead(b *gpu.Block, f *file, firstPage int64) {
	if f.writeOnce || !f.readable {
		return
	}
	ps := fs.opt.PageSize
	lastPage := (f.fc.size.Load() - 1) / ps

	for i := 0; i < fs.opt.ReadAheadPages; i++ {
		pageIdx := firstPage + int64(i)
		if pageIdx > lastPage {
			return
		}
		fs.prefetchPage(b, f, pageIdx)
	}
}

// prefetchPage faults one page in without blocking the caller. Pages that
// are already resident (or being faulted by someone else) are skipped; a
// full buffer cache aborts the whole read-ahead rather than evicting on
// behalf of speculative data.
func (fs *FS) prefetchPage(b *gpu.Block, f *file, pageIdx int64) {
	fc := f.fc
	fp, leaf := fc.tree.LookupLeaf(uint64(pageIdx))
	if fp == nil {
		fp, leaf = fc.tree.Insert(uint64(pageIdx))
	}
	if !fp.TryBeginInit() {
		return // resident, in flight, or evicting: nothing to do
	}
	if leaf.Detached() {
		// Claim/detach race (see radix.RemoveLeaf): a frame initialized
		// on a detached leaf is unreachable by eviction and by Restart's
		// cache drop — it would leak until process exit. Speculative
		// reads just give up.
		fp.AbortInit()
		return
	}

	fr := fs.cache.TryAlloc(fc.tree.ID(), pageIdx*fs.opt.PageSize)
	if fr == nil {
		// No free frame: speculative reads never trigger eviction.
		fp.AbortInit()
		return
	}
	fc.frames.Add(1)

	n, done, err := fs.lane(b).ReadPagesAsync(b.Clock, f.hostFd, pageIdx*fs.opt.PageSize, fr.Data)
	if err != nil {
		fs.cache.Release(fr, false)
		fc.frames.Add(-1)
		fp.AbortInit()
		return
	}
	if n < len(fr.Data) {
		b.ZeroBytes(fr.Data[n:])
	}
	fr.ValidBytes.Store(int64(n))
	fr.ReadyAt.Store(int64(done))
	fr.Prefetched.Store(true)
	if f.writeShrd {
		fr.SetPristine(fr.Data[:n])
	}
	b.Busy(fs.opt.APICostPerPage)
	fp.FinishInit(fr.Index)
	fp.Unref()
}
