package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpufs/internal/ckpt"
	"gpufs/internal/gpu"
	"gpufs/internal/simtime"
)

// TestModelConformance is the model-based POSIX-conformance suite: it
// drives several GPUs through randomized schedules of gopen / gread /
// gwrite / gmmap / gfsync / gclose (plus external host writes) and checks
// every observation byte-for-byte against a plain in-memory model of the
// paper's consistency contract:
//
//   - a descriptor denotes a file; each GPU's reads see its local view —
//     the host content adopted at the last (in)validating open, overlaid
//     with the GPU's own writes since;
//   - gclose propagates nothing; the dirty view survives in the closed
//     file table and a matching reopen resumes it;
//   - gfsync makes the host equal to the writer's view and refreshes its
//     generation, so the writer's cache stays valid while every other
//     GPU's cached copy is invalidated (close-to-open consistency through
//     the wrapfs generation table);
//   - a reopen keeps the cached view iff its generation is still current,
//     and otherwise adopts the host content — silently discarding any
//     never-synced dirty data (the documented weak semantics);
//   - an external host write invalidates every GPU's cache.
//
// The model is only sound while nothing leaves the cache behind the
// schedule's back, so the cache is sized to never evict (asserted at the
// end) and the background cleaner is off.
func TestModelConformance(t *testing.T) {
	const schedules = 200
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runModelSchedule(t, int64(seed), false, false)
		})
	}
}

// TestModelConformanceMigrated reruns the model suite with a live
// migration interposed mid-schedule (ISSUE 10): every GPU's FS is
// checkpointed, the host corpus is copied to a brand-new machine, the
// images are restored there, and the schedule FINISHES on the new
// machine. The model is untouched — a migration must be semantically
// invisible, byte for byte, including the close-to-open and weak
// discard-on-stale rules the suite already pins.
func TestModelConformanceMigrated(t *testing.T) {
	const schedules = 100
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runModelSchedule(t, int64(seed), false, true)
		})
	}
}

// TestModelConformanceZeroCopy reruns the model suite with the ISSUE 8
// hot path on (zero-copy hit reads, sharded frame allocator): the knobs
// change how bytes are served and which free list frames come from, never
// the close-to-open semantics the model checks.
func TestModelConformanceZeroCopy(t *testing.T) {
	const schedules = 100
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runModelSchedule(t, int64(seed), true, false)
		})
	}
}

const (
	modelSteps   = 40
	modelMaxFile = 16 << 10 // 4 pages of 4 KiB
)

// modelView is one GPU's modelled state for one file.
type modelView struct {
	view  []byte // local view: host-as-adopted + local writes
	valid bool   // recorded generation still matches the host's
	dirty bool   // local writes not yet propagated
	open  bool
	wr    bool
	fd    int
}

// modelFile is one file's modelled state.
type modelFile struct {
	path string
	host []byte // host content
	gpus []modelView
}

// writer returns the GPU holding the file open writable, or -1.
func (mf *modelFile) writer() int {
	for g := range mf.gpus {
		if mf.gpus[g].open && mf.gpus[g].wr {
			return g
		}
	}
	return -1
}

// openAnywhere reports whether any GPU holds the file open.
func (mf *modelFile) openAnywhere() bool {
	for g := range mf.gpus {
		if mf.gpus[g].open {
			return true
		}
	}
	return false
}

func runModelSchedule(t *testing.T, seed int64, zeroCopy, migrate bool) {
	rng := rand.New(rand.NewSource(seed*7919 + 1))
	numGPUs := 2 + int(seed%2)
	numFiles := 2 + rng.Intn(2)

	opt := Options{
		PageSize: 4 << 10,
		// 32 frames per GPU against at most 12 resident pages: the model
		// assumes no eviction (asserted below).
		CacheBytes:          128 << 10,
		APICostPerPage:      7 * simtime.Microsecond,
		RadixLookupLockFree: 35,
		RadixLookupLocked:   550,
	}
	if zeroCopy {
		opt.ZeroCopyRead = true
		opt.FrameShards = 4
	}
	h := newHarness(t, numGPUs, opt)

	files := make([]*modelFile, numFiles)
	for i := range files {
		content := make([]byte, 1+rng.Intn(modelMaxFile))
		rng.Read(content)
		mf := &modelFile{
			path: fmt.Sprintf("/model-f%d", i),
			host: content,
			gpus: make([]modelView, numGPUs),
		}
		h.write(t, mf.path, content)
		files[i] = mf
	}

	// doOpen opens mf on GPU g (keeping or adopting the view per the
	// model) and records the descriptor.
	doOpen := func(g int, mf *modelFile, flags int, wr bool) {
		st := &mf.gpus[g]
		h.run(t, g, func(b *gpu.Block) error {
			fd, err := h.fss[g].Open(b, mf.path, flags)
			if err != nil {
				return fmt.Errorf("gpu%d open %s: %w", g, mf.path, err)
			}
			st.fd = fd
			return nil
		})
		if !st.valid {
			st.view = append([]byte(nil), mf.host...)
			st.dirty = false
			st.valid = true
		}
		st.open, st.wr = true, wr
	}

	// readCheck reads [off, off+n) on GPU g and compares against the view.
	readCheck := func(step, g int, mf *modelFile, off, n int) {
		st := &mf.gpus[g]
		want := 0
		if off < len(st.view) {
			want = min(n, len(st.view)-off)
		}
		h.run(t, g, func(b *gpu.Block) error {
			buf := make([]byte, n)
			got, err := h.fss[g].Read(b, st.fd, buf, int64(off))
			if err != nil {
				return fmt.Errorf("step %d gpu%d read %s at %d: %w", step, g, mf.path, off, err)
			}
			if got != want {
				return fmt.Errorf("step %d gpu%d read %s at %d: got %d bytes, model says %d",
					step, g, mf.path, off, got, want)
			}
			if got > 0 && !bytes.Equal(buf[:got], st.view[off:off+got]) {
				return fmt.Errorf("step %d gpu%d read %s at %d+%d: content diverges from model",
					step, g, mf.path, off, got)
			}
			return nil
		})
	}

	for step := 0; step < modelSteps; step++ {
		if migrate && step == modelSteps/2 {
			// Live-migrate mid-schedule: the remaining steps (and every
			// closure above — they capture h by reference) run on the new
			// machine, against the unchanged model.
			h = migrateModelHarness(t, h, files, numGPUs, opt)
		}
		g := rng.Intn(numGPUs)
		mf := files[rng.Intn(numFiles)]
		st := &mf.gpus[g]

		switch op := rng.Intn(100); {
		case op < 22: // gopen
			// The model gives every resident page snapshot-at-open
			// semantics, but the implementation faults untouched pages
			// lazily from the CURRENT host content — so a reader that
			// stays open across another GPU's gfsync observes a mix the
			// model cannot predict. The generator therefore makes writers
			// exclusive: a writable open requires the file closed
			// everywhere, and nobody opens while a writer is active.
			// Concurrent readers remain fair game.
			if st.open || mf.writer() >= 0 {
				continue
			}
			flags, wr := O_RDONLY, false
			if !mf.openAnywhere() && rng.Intn(2) == 0 {
				flags, wr = O_RDWR, true
			}
			doOpen(g, mf, flags, wr)

		case op < 47: // gread
			if !st.open {
				continue
			}
			readCheck(step, g, mf, rng.Intn(modelMaxFile), 1+rng.Intn(6<<10))

		case op < 57: // gmmap + read through the mapping
			if !st.open || len(st.view) == 0 {
				continue
			}
			off := rng.Intn(len(st.view))
			length := 1 + rng.Intn(8<<10)
			ps := int(opt.PageSize)
			want := min(length, (off/ps+1)*ps-off) // page-prefix semantics
			want = min(want, len(st.view)-off)     // EOF clamp
			h.run(t, g, func(b *gpu.Block) error {
				m, err := h.fss[g].Mmap(b, st.fd, int64(off), int64(length))
				if err != nil {
					return fmt.Errorf("step %d gpu%d mmap %s at %d+%d: %w", step, g, mf.path, off, length, err)
				}
				if len(m.Data) != want {
					m.Munmap(b)
					return fmt.Errorf("step %d gpu%d mmap %s at %d: mapped %d bytes, model says %d",
						step, g, mf.path, off, len(m.Data), want)
				}
				if !bytes.Equal(m.Data, st.view[off:off+want]) {
					m.Munmap(b)
					return fmt.Errorf("step %d gpu%d mmap %s at %d+%d: content diverges from model",
						step, g, mf.path, off, want)
				}
				return m.Munmap(b)
			})

		case op < 79: // gwrite
			if !st.open || !st.wr {
				continue
			}
			off := rng.Intn(modelMaxFile - 1)
			n := 1 + rng.Intn(min(4<<10, modelMaxFile-off))
			data := make([]byte, n)
			rng.Read(data)
			h.run(t, g, func(b *gpu.Block) error {
				got, err := h.fss[g].Write(b, st.fd, data, int64(off))
				if err != nil {
					return fmt.Errorf("step %d gpu%d write %s at %d: %w", step, g, mf.path, off, err)
				}
				if got != n {
					return fmt.Errorf("step %d gpu%d write %s at %d: wrote %d of %d", step, g, mf.path, off, got, n)
				}
				return nil
			})
			if off+n > len(st.view) {
				grown := make([]byte, off+n)
				copy(grown, st.view)
				st.view = grown
			}
			copy(st.view[off:], data)
			st.dirty = true

		case op < 89: // gfsync
			if !st.open || !st.wr {
				continue
			}
			h.run(t, g, func(b *gpu.Block) error {
				if err := h.fss[g].Fsync(b, st.fd); err != nil {
					return fmt.Errorf("step %d gpu%d fsync %s: %w", step, g, mf.path, err)
				}
				return nil
			})
			if st.dirty {
				mf.host = append([]byte(nil), st.view...)
				for gi := range mf.gpus {
					if gi != g {
						mf.gpus[gi].valid = false
					}
				}
				st.dirty = false
			}

		case op < 94: // gclose (view survives in the closed file table)
			if !st.open {
				continue
			}
			h.run(t, g, func(b *gpu.Block) error {
				return h.fss[g].Close(b, st.fd)
			})
			st.open, st.wr = false, false

		default: // external host write while the file is closed everywhere
			if mf.openAnywhere() {
				continue
			}
			data := make([]byte, 1+rng.Intn(modelMaxFile))
			rng.Read(data)
			h.write(t, mf.path, data)
			mf.host = append([]byte(nil), data...)
			for gi := range mf.gpus {
				mf.gpus[gi].valid = false
			}
		}
	}

	// Tear down: sync writers (so their views reach the host), close all.
	for _, mf := range files {
		for g := range mf.gpus {
			st := &mf.gpus[g]
			if !st.open {
				continue
			}
			if st.wr {
				h.run(t, g, func(b *gpu.Block) error {
					return h.fss[g].Fsync(b, st.fd)
				})
				if st.dirty {
					mf.host = append([]byte(nil), st.view...)
					for gi := range mf.gpus {
						if gi != g {
							mf.gpus[gi].valid = false
						}
					}
					st.dirty = false
				}
			}
			h.run(t, g, func(b *gpu.Block) error {
				return h.fss[g].Close(b, st.fd)
			})
			st.open, st.wr = false, false
		}
	}

	// Close-to-open pass: every GPU reopens every file and must observe
	// either its still-valid cached view or the current host content.
	for _, mf := range files {
		for g := 0; g < numGPUs; g++ {
			doOpen(g, mf, O_RDONLY, false)
			readCheck(modelSteps, g, mf, 0, modelMaxFile)
			st := &mf.gpus[g]
			h.run(t, g, func(b *gpu.Block) error {
				return h.fss[g].Close(b, st.fd)
			})
			st.open = false
		}
	}

	// The host itself must match the model.
	for _, mf := range files {
		if got := h.read(t, mf.path); !bytes.Equal(got, mf.host) {
			t.Errorf("host content of %s diverges from model: %d vs %d bytes", mf.path, len(got), len(mf.host))
		}
	}

	// The model is only sound if nothing was evicted behind its back.
	for g, fs := range h.fss {
		if n := fs.Cache().Reclaimed(); n != 0 {
			t.Fatalf("gpu%d evicted %d pages; the model assumes none (grow the cache)", g, n)
		}
	}
}

// migrateModelHarness checkpoints every GPU mid-schedule, builds a whole
// new machine, copies the host corpus across, and restores the images
// onto it. Open descriptors do not survive a migration (the serving layer
// quiesces between jobs), so files are closed through the normal gclose
// path first — which the model already gives view-survives-close
// semantics — and the schedule reopens them on the other side.
func migrateModelHarness(t *testing.T, h *harness, files []*modelFile, numGPUs int, opt Options) *harness {
	t.Helper()
	for _, mf := range files {
		for g := range mf.gpus {
			st := &mf.gpus[g]
			if !st.open {
				continue
			}
			h.run(t, g, func(b *gpu.Block) error {
				return h.fss[g].Close(b, st.fd)
			})
			st.open, st.wr = false, false
		}
	}
	imgs := make([]*ckpt.FSImage, numGPUs)
	for g := 0; g < numGPUs; g++ {
		img, _, err := h.fss[g].CheckpointImage(0)
		if err != nil {
			t.Fatalf("gpu%d checkpoint: %v", g, err)
		}
		imgs[g] = img
	}
	h2 := newHarness(t, numGPUs, opt)
	for _, mf := range files {
		h2.write(t, mf.path, h.read(t, mf.path))
	}
	for g := 0; g < numGPUs; g++ {
		h2.run(t, g, func(b *gpu.Block) error {
			return h2.fss[g].RestoreImage(b, imgs[g])
		})
	}
	return h2
}
