// Package pcache implements the physical side of the GPU buffer cache
// (§4.2): the raw data array of pre-allocated pages in device memory, and
// the array of pframe structures holding per-page metadata. The i'th pframe
// describes the i'th page of the raw data array, so translating between a
// page pointer and its metadata is pure index arithmetic — as needed by
// gmunmap and gmsync.
//
// Unlike Linux pframes, GPUfs pframes also carry file-related identity (the
// owning radix tree's unique id and the page's file offset) because every
// GPUfs page is backed by a host file; this identity is what lock-free
// radix-tree readers validate after reaching a frame through a possibly
// stale path.
package pcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpufs/internal/memsys"
)

// Speculation states for Frame.Spec.
const (
	SpecNone    int32 = iota // demand-faulted (or free) frame
	SpecPending              // prefetched, no consumer has claimed it yet
	SpecUsed                 // prefetched and consumed by a demand access
	SpecReplay               // prefetched by a history-profile replay, unclaimed
)

// Frame is a pframe: metadata for one buffer-cache page.
type Frame struct {
	// Index is the frame's position in the raw data array.
	Index int32

	// Data is the frame's page in the raw data array.
	Data []byte

	// FileID is the unique radix-tree id of the owning file cache, used
	// for lock-free traversal validation; 0 means the frame is free.
	FileID atomic.Uint64
	// Offset is the page-aligned file offset the frame caches.
	Offset atomic.Int64
	// ValidBytes is the number of meaningful bytes in the page (a page
	// covering EOF is partially valid).
	ValidBytes atomic.Int64
	// Dirty reports whether the page holds local writes not yet
	// propagated to the host.
	Dirty atomic.Bool
	// WriteOnce marks pages of O_GWRONCE files, whose pristine copy is
	// implicitly all zeros (diff-against-zeros write-back, §3.1).
	WriteOnce atomic.Bool
	// ReadyAt is the virtual instant the page's content transfer
	// completed. Prefetched is set when the transfer was an asynchronous
	// read-ahead: only then do consumers wait for ReadyAt — a page
	// faulted synchronously by a racing block is charged to that block,
	// and a virtually-earlier consumer would have faulted it itself (the
	// same virtual-order idealization the block scheduler uses).
	ReadyAt    atomic.Int64
	Prefetched atomic.Bool
	// Spec tracks speculative-read accounting separately from Prefetched
	// (which must survive consumption so every later consumer still waits
	// for ReadyAt): SpecNone for demand-faulted frames, SpecPending from
	// prefetch issue until the first consumer claims the transfer as a
	// hit, SpecUsed after. A frame reclaimed while still SpecPending was
	// wasted speculation.
	Spec atomic.Int32

	// mu guards pristine and serializes data-plane access to the page
	// (writers versus the write-back differ), so concurrent gwrite and
	// gfsync never race on the same bytes.
	mu       sync.Mutex
	pristine []byte
}

// Lock serializes data access to the frame's page.
func (f *Frame) Lock() { f.mu.Lock() }

// Unlock releases Lock.
func (f *Frame) Unlock() { f.mu.Unlock() }

// Snapshot returns consistent copies of the page's valid content and of
// the pristine copy (nil if none), for race-free diffing during write-back.
func (f *Frame) Snapshot() (data, pristine []byte, valid int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	valid = f.ValidBytes.Load()
	data = append([]byte(nil), f.Data[:valid]...)
	if f.pristine != nil {
		pristine = append([]byte(nil), f.pristine...)
	}
	return data, pristine, valid
}

// Matches validates the frame's identity: owning tree id and file offset.
// A lock-free reader calls this after locating a frame to reject frames
// that were reclaimed and reused behind its back.
func (f *Frame) Matches(fileID uint64, offset int64) bool {
	return f.FileID.Load() == fileID && f.Offset.Load() == offset
}

// SetPristine stores a pristine copy of the page's initial content for
// later diffing. The slice is copied.
func (f *Frame) SetPristine(data []byte) {
	f.mu.Lock()
	f.pristine = append(f.pristine[:0], data...)
	f.mu.Unlock()
}

// Pristine returns the pristine copy, or nil.
func (f *Frame) Pristine() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pristine
}

// ClearPristine releases the pristine copy.
func (f *Frame) ClearPristine() {
	f.mu.Lock()
	f.pristine = nil
	f.mu.Unlock()
}

// Cache is the global frame pool of one GPU: the raw data array plus the
// pframe array. For efficiency, pages are pre-allocated in one large
// contiguous device-memory allocation.
//
// The free list is SHARDED (ISSUE 8): frame i's home shard is i mod
// nshards, allocators are steered to a shard by their lane (MP) so demand
// paging, read-ahead, and the cleaner stop serializing on one freelist
// mutex, and an empty shard steals from its neighbors before reporting
// exhaustion — so sharding changes contention, never capacity.
type Cache struct {
	pageSize int64
	raw      *memsys.Block
	frames   []Frame

	shards []frameShard

	allocs    atomic.Int64
	reclaimed atomic.Int64
	steals    atomic.Int64
}

// frameShard is one free-list shard: a LIFO of frame indexes under its own
// mutex.
type frameShard struct {
	mu   sync.Mutex
	free []int32
}

// New carves a single-shard cache of totalBytes (rounded down to whole
// pages) out of the given device-memory arena. With one shard the
// allocator is ONE LIFO free list handing out frame 0 first — the exact
// pre-sharding behavior, which the pinned virtual-time baselines rely on.
func New(mem *memsys.Arena, totalBytes, pageSize int64) (*Cache, error) {
	return NewSharded(mem, totalBytes, pageSize, 1)
}

// NewSharded is New with the free list split across nshards shards
// (values < 1 select 1). Frames are distributed round-robin by index, and
// each shard's list is built in reverse so its lowest frame index is
// handed out first.
func NewSharded(mem *memsys.Arena, totalBytes, pageSize int64, nshards int) (*Cache, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("pcache: invalid page size %d", pageSize)
	}
	n := totalBytes / pageSize
	if n < 1 {
		return nil, fmt.Errorf("pcache: cache of %d bytes holds no %d-byte pages", totalBytes, pageSize)
	}
	if nshards < 1 {
		nshards = 1
	}
	if int64(nshards) > n {
		nshards = int(n)
	}
	raw, err := mem.Alloc(n*pageSize, pageSize)
	if err != nil {
		return nil, fmt.Errorf("pcache: allocating raw data array: %w", err)
	}
	c := &Cache{
		pageSize: pageSize,
		raw:      raw,
		frames:   make([]Frame, n),
		shards:   make([]frameShard, nshards),
	}
	for i := int64(0); i < n; i++ {
		f := &c.frames[i]
		f.Index = int32(i)
		f.Data = raw.Data[i*pageSize : (i+1)*pageSize : (i+1)*pageSize]
		f.Offset.Store(-1)
	}
	// Each shard's free list in reverse so its lowest frame index is on
	// top (with one shard: frame 0 is handed out first, as before).
	for i := int32(n) - 1; i >= 0; i-- {
		s := &c.shards[int(i)%nshards]
		s.free = append(s.free, i)
	}
	return c, nil
}

// Close releases the raw data array back to the device arena.
func (c *Cache) Close() error { return c.raw.Free() }

// PageSize reports the cache's page size.
func (c *Cache) PageSize() int64 { return c.pageSize }

// NumFrames reports the total frame count.
func (c *Cache) NumFrames() int { return len(c.frames) }

// FreeFrames reports how many frames are currently unallocated, summed
// across shards.
func (c *Cache) FreeFrames() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.free)
		s.mu.Unlock()
	}
	return total
}

// Shards reports the number of free-list shards.
func (c *Cache) Shards() int { return len(c.shards) }

// Steals reports how many allocations were satisfied by stealing from a
// non-home shard (contention diagnostics).
func (c *Cache) Steals() int64 { return c.steals.Load() }

// Allocs reports the cumulative number of frame allocations.
func (c *Cache) Allocs() int64 { return c.allocs.Load() }

// Reclaimed reports the cumulative number of frames reclaimed by paging
// (Table 2's "Pages reclaimed" column).
func (c *Cache) Reclaimed() int64 { return c.reclaimed.Load() }

// Frame returns the pframe at index i.
func (c *Cache) Frame(i int32) *Frame {
	return &c.frames[i]
}

// FrameForData translates a pointer into the raw data array (expressed as
// the page's first-byte offset within the raw array) back to its pframe, as
// gmunmap/gmsync must do. Returns nil if off is not page-aligned or out of
// range.
func (c *Cache) FrameForData(off int64) *Frame {
	if off < 0 || off%c.pageSize != 0 {
		return nil
	}
	i := off / c.pageSize
	if i >= int64(len(c.frames)) {
		return nil
	}
	return &c.frames[i]
}

// RawOffset reports the offset of frame i's page within the raw data array.
func (c *Cache) RawOffset(i int32) int64 { return int64(i) * c.pageSize }

// TryAlloc pops a free frame and stamps it with the owner's identity.
// It returns nil if no frame is free — the caller must then run the paging
// algorithm (eviction is performed by the calling thread; GPUfs has no
// daemon threads, §4.2). Unhinted callers allocate from shard 0.
func (c *Cache) TryAlloc(fileID uint64, offset int64) *Frame {
	return c.TryAllocOn(0, fileID, offset)
}

// TryAllocOn is TryAlloc steered by a lane hint: the allocation is served
// from the shard the lane hashes to, falling back to stealing from the
// other shards in ring order when the home shard is empty. Returns nil
// only when EVERY shard is empty — a pinned-up home shard alone never
// produces a spurious cache-full.
func (c *Cache) TryAllocOn(lane int, fileID uint64, offset int64) *Frame {
	n := len(c.shards)
	if lane < 0 {
		lane = -lane
	}
	home := lane % n
	var idx int32 = -1
	for d := 0; d < n; d++ {
		s := &c.shards[(home+d)%n]
		s.mu.Lock()
		if k := len(s.free); k > 0 {
			idx = s.free[k-1]
			s.free = s.free[:k-1]
			s.mu.Unlock()
			if d > 0 {
				c.steals.Add(1)
			}
			break
		}
		s.mu.Unlock()
	}
	if idx < 0 {
		return nil
	}

	f := &c.frames[idx]
	f.FileID.Store(fileID)
	f.Offset.Store(offset)
	f.ValidBytes.Store(0)
	f.Dirty.Store(false)
	f.WriteOnce.Store(false)
	f.ReadyAt.Store(0)
	f.Prefetched.Store(false)
	f.Spec.Store(SpecNone)
	f.ClearPristine()
	c.allocs.Add(1)
	return f
}

// ResetTimes clears every frame's transfer-completion timestamp; the
// benchmark harness calls it when rewinding virtual time, since a ReadyAt
// from before the rewind would otherwise throw consumers into the old
// timeline.
func (c *Cache) ResetTimes() {
	for i := range c.frames {
		c.frames[i].ReadyAt.Store(0)
		c.frames[i].Prefetched.Store(false)
		c.frames[i].Spec.Store(SpecNone)
	}
}

// Release returns a frame to its HOME shard's free list (index mod shard
// count — keeping each shard's frame population stable under churn),
// clearing its identity so any stale lock-free reader fails validation.
// reclaimedByPaging distinguishes eviction-driven releases (counted in
// Reclaimed) from releases on unlink or truncate.
func (c *Cache) Release(f *Frame, reclaimedByPaging bool) {
	f.FileID.Store(0)
	f.Offset.Store(-1)
	f.Dirty.Store(false)
	f.WriteOnce.Store(false)
	f.ClearPristine()
	if reclaimedByPaging {
		c.reclaimed.Add(1)
	}
	s := &c.shards[int(f.Index)%len(c.shards)]
	s.mu.Lock()
	s.free = append(s.free, f.Index)
	s.mu.Unlock()
}
