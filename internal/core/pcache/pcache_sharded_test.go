package pcache

import (
	"testing"

	"gpufs/internal/memsys"
)

func newShardedCache(t *testing.T, frames, nshards int) *Cache {
	t.Helper()
	mem := memsys.NewArena("gpu", memsys.DeviceMemory, int64(frames)*4096*2)
	c, err := NewSharded(mem, int64(frames)*4096, 4096, nshards)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedStealOnEmpty releases frames into one shard only and checks a
// lane homed elsewhere steals them rather than reporting exhaustion.
func TestShardedStealOnEmpty(t *testing.T) {
	c := newShardedCache(t, 16, 4)
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}

	// Drain the pool completely.
	var all []*Frame
	for {
		f := c.TryAllocOn(0, 1, int64(len(all))*4096)
		if f == nil {
			break
		}
		all = append(all, f)
	}
	if len(all) != 16 {
		t.Fatalf("allocated %d frames, want 16", len(all))
	}

	// Release only the frames homed on shard 2.
	freed := 0
	for _, f := range all {
		if int(f.Index)%4 == 2 {
			c.Release(f, false)
			freed++
		}
	}
	if freed != 4 {
		t.Fatalf("freed %d shard-2 frames, want 4", freed)
	}

	// A lane homed on shard 1 must steal all of them.
	before := c.Steals()
	for i := 0; i < freed; i++ {
		f := c.TryAllocOn(1, 2, int64(i)*4096)
		if f == nil {
			t.Fatalf("alloc %d: spurious exhaustion with %d frames free elsewhere", i, freed-i)
		}
		if int(f.Index)%4 != 2 {
			t.Fatalf("alloc %d: got frame %d from shard %d, want shard 2", i, f.Index, int(f.Index)%4)
		}
	}
	if got := c.Steals() - before; got != int64(freed) {
		t.Errorf("Steals() advanced by %d, want %d", got, freed)
	}
	if c.TryAllocOn(1, 2, 0) != nil {
		t.Error("allocation succeeded from an empty pool")
	}
}

// TestSingleShardMatchesLIFO checks nshards=1 reproduces the original
// allocator's LIFO order exactly (the bit-identical baseline contract).
func TestSingleShardMatchesLIFO(t *testing.T) {
	a := newShardedCache(t, 8, 1)
	b := newShardedCache(t, 8, 1)
	for i := 0; i < 8; i++ {
		fa := a.TryAlloc(1, int64(i)*4096)
		fb := b.TryAllocOn(int(3+i), 1, int64(i)*4096) // lane must be irrelevant at 1 shard
		if fa == nil || fb == nil || fa.Index != fb.Index {
			t.Fatalf("alloc %d: order diverges (%v vs %v)", i, fa, fb)
		}
	}
}

// TestReleaseReturnsToHomeShard checks frames go back to the shard their
// index hashes to, keeping shard occupancy stable under churn.
func TestReleaseReturnsToHomeShard(t *testing.T) {
	c := newShardedCache(t, 8, 2)
	f := c.TryAllocOn(0, 1, 0)
	if f == nil {
		t.Fatal("alloc failed")
	}
	home := int(f.Index) % 2
	c.Release(f, false)
	// Draining the OTHER shard must leave f's home shard holding f.
	other := 1 - home
	var held []*Frame
	for {
		g := c.TryAllocOn(other, 2, 0)
		if g == nil || int(g.Index)%2 != other {
			if g != nil {
				c.Release(g, false)
			}
			break
		}
		held = append(held, g)
	}
	got := c.TryAllocOn(home, 3, 4096)
	if got == nil {
		t.Fatal("home shard empty after release")
	}
	if int(got.Index)%2 != home {
		t.Errorf("frame %d came from shard %d, want home shard %d", got.Index, int(got.Index)%2, home)
	}
	_ = held
}
