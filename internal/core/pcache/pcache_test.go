package pcache

import (
	"bytes"
	"testing"

	"gpufs/internal/memsys"
)

func newCache(t *testing.T, total, page int64) *Cache {
	t.Helper()
	mem := memsys.NewArena("gpu", memsys.DeviceMemory, total*2)
	c, err := New(mem, total, page)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	mem := memsys.NewArena("gpu", memsys.DeviceMemory, 1<<20)
	if _, err := New(mem, 1<<20, 0); err == nil {
		t.Fatalf("zero page size accepted")
	}
	if _, err := New(mem, 100, 4096); err == nil {
		t.Fatalf("cache smaller than one page accepted")
	}
	if _, err := New(mem, 1<<30, 4096); err == nil {
		t.Fatalf("cache bigger than arena accepted")
	}
}

func TestAllocReleaseCycle(t *testing.T) {
	c := newCache(t, 16<<10, 4<<10)
	if c.NumFrames() != 4 || c.FreeFrames() != 4 {
		t.Fatalf("frames: %d/%d", c.NumFrames(), c.FreeFrames())
	}
	f := c.TryAlloc(42, 8192)
	if f == nil {
		t.Fatal("alloc failed")
	}
	if !f.Matches(42, 8192) {
		t.Fatalf("identity not stamped")
	}
	if c.FreeFrames() != 3 || c.Allocs() != 1 {
		t.Fatalf("accounting: free=%d allocs=%d", c.FreeFrames(), c.Allocs())
	}
	c.Release(f, true)
	if f.Matches(42, 8192) {
		t.Fatalf("released frame retains identity: stale readers would validate")
	}
	if c.FreeFrames() != 4 || c.Reclaimed() != 1 {
		t.Fatalf("release accounting: free=%d reclaimed=%d", c.FreeFrames(), c.Reclaimed())
	}
}

func TestExhaustion(t *testing.T) {
	c := newCache(t, 8<<10, 4<<10)
	a := c.TryAlloc(1, 0)
	b := c.TryAlloc(1, 4096)
	if a == nil || b == nil {
		t.Fatal("allocs failed")
	}
	if c.TryAlloc(1, 8192) != nil {
		t.Fatalf("alloc beyond capacity succeeded")
	}
	c.Release(a, false)
	if c.TryAlloc(1, 8192) == nil {
		t.Fatalf("alloc after release failed")
	}
}

func TestFrameForData(t *testing.T) {
	c := newCache(t, 16<<10, 4<<10)
	f := c.Frame(2)
	if got := c.FrameForData(c.RawOffset(2)); got != f {
		t.Fatalf("FrameForData(RawOffset(2)) != Frame(2)")
	}
	if c.FrameForData(1) != nil {
		t.Fatalf("unaligned offset resolved")
	}
	if c.FrameForData(1<<30) != nil {
		t.Fatalf("out-of-range offset resolved")
	}
	if c.FrameForData(-4096) != nil {
		t.Fatalf("negative offset resolved")
	}
}

func TestFramePagesDisjoint(t *testing.T) {
	c := newCache(t, 16<<10, 4<<10)
	for i := 0; i < 4; i++ {
		for j := range c.Frame(int32(i)).Data {
			c.Frame(int32(i)).Data[j] = byte(i)
		}
	}
	for i := 0; i < 4; i++ {
		for _, v := range c.Frame(int32(i)).Data {
			if v != byte(i) {
				t.Fatalf("frame pages overlap")
			}
		}
	}
}

func TestPristineLifecycle(t *testing.T) {
	c := newCache(t, 8<<10, 4<<10)
	f := c.TryAlloc(1, 0)
	if f.Pristine() != nil {
		t.Fatalf("fresh frame has pristine")
	}
	f.SetPristine([]byte{1, 2, 3})
	if !bytes.Equal(f.Pristine(), []byte{1, 2, 3}) {
		t.Fatalf("pristine round trip")
	}
	// Pristine is a copy: mutating the source must not leak in.
	src := []byte{9, 9}
	f.SetPristine(src)
	src[0] = 0
	if f.Pristine()[0] != 9 {
		t.Fatalf("pristine aliases caller slice")
	}
	c.Release(f, false)
	if f.Pristine() != nil {
		t.Fatalf("release must clear pristine")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	c := newCache(t, 8<<10, 4<<10)
	f := c.TryAlloc(1, 0)
	copy(f.Data, []byte("hello"))
	f.ValidBytes.Store(5)
	f.SetPristine([]byte("help!"))
	data, pristine, valid := f.Snapshot()
	if valid != 5 || string(data) != "hello" || string(pristine) != "help!" {
		t.Fatalf("snapshot: %q %q %d", data, pristine, valid)
	}
	// Snapshot is a copy.
	f.Data[0] = 'X'
	if data[0] != 'h' {
		t.Fatalf("snapshot aliases frame data")
	}
}

func TestReleaseResetsFlags(t *testing.T) {
	c := newCache(t, 8<<10, 4<<10)
	f := c.TryAlloc(1, 0)
	f.Dirty.Store(true)
	f.WriteOnce.Store(true)
	f.ValidBytes.Store(100)
	c.Release(f, false)
	f2 := c.TryAlloc(2, 4096)
	if f2.Dirty.Load() || f2.WriteOnce.Load() || f2.ValidBytes.Load() != 0 {
		t.Fatalf("recycled frame carries stale flags")
	}
}

func TestResetTimesClearsReadyAt(t *testing.T) {
	c := newCache(t, 8<<10, 4<<10)
	f := c.TryAlloc(1, 0)
	f.ReadyAt.Store(12345)
	c.ResetTimes()
	if f.ReadyAt.Load() != 0 {
		t.Fatalf("ReadyAt survived ResetTimes")
	}
}
