package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"gpufs/internal/faults"
	"gpufs/internal/gpu"
	"gpufs/internal/hostfs"
	"gpufs/internal/pcie"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
	"gpufs/internal/wrapfs"
)

// faultHarness is newHarness plus an injector wired into every layer and a
// deeper RPC retry budget: with per-attempt failure odds capped at ~0.24
// (drop + transient), 12 attempts drive per-op give-up below 1e-7, so the
// workload's must-succeed ops (open, truncate) effectively never exhaust.
type faultHarness struct {
	*harness
	inj *faults.Injector
}

func newFaultHarness(t *testing.T, opt Options, fcfg faults.Config, shards, workers int) *faultHarness {
	t.Helper()
	host := hostfs.New(hostfs.Options{
		DiskBandwidth:   132 * simtime.MBps,
		DiskSeek:        simtime.Millisecond,
		MemBandwidth:    6600 * simtime.MBps,
		CacheBytes:      256 << 20,
		SyscallOverhead: 4 * simtime.Microsecond,
	})
	layer := wrapfs.New(host)
	bus := pcie.New(pcie.Config{
		Bandwidth:        5731 * simtime.MBps,
		DMALatency:       15 * simtime.Microsecond,
		Channels:         4,
		HostMemBandwidth: 6600 * simtime.MBps,
	}, host.MemBus())
	server := rpc.NewServer(rpc.Config{
		PollInterval:  10 * simtime.Microsecond,
		HandleCost:    12 * simtime.Microsecond,
		ReturnLatency: 2 * simtime.Microsecond,
		MaxAttempts:   12,
		Shards:        shards,
		Workers:       workers,
	}, layer)

	inj := faults.New(fcfg)
	server.SetFaultInjector(inj)
	host.SetFaultInjector(inj)
	bus.SetFaultInjector(inj)

	h := &harness{host: host, layer: layer, server: server}
	dev := gpu.New(gpu.Config{
		ID: 0, MPs: 4, BlocksPerMP: 2, WarpSize: 32,
		MemBytes:     opt.CacheBytes * 2,
		MemBandwidth: 144_000 * simtime.MBps,
		Flops:        1e9, ScratchpadBytes: 48 << 10,
	})
	link := bus.NewLink(0, dev.MemBandwidthResource(), 144_000*simtime.MBps)
	fs, err := New(0, opt, server.NewClient(0, link), dev.Mem)
	if err != nil {
		t.Fatal(err)
	}
	h.devs = append(h.devs, dev)
	h.fss = append(h.fss, fs)
	return &faultHarness{harness: h, inj: inj}
}

// TestFaultStressOracle is the oracle test run under randomized fault
// schedules. Each seed derives both the fault probabilities and the op
// sequence, so every run is reproducible bit-for-bit. The contract under
// faults is weaker than the fault-free oracle's — individual reads, writes
// and fsyncs may fail — but never silently wrong:
//
//   - whatever byte count an op DOES report must be truthful: a read's
//     returned prefix matches the model, a failed write applied exactly
//     its returned prefix;
//   - a gfsync that reports success really made the host identical to the
//     local view;
//   - once faults stop, one gfsync round drains all damage (deferred
//     write-back errors surface at most once) and the host converges to
//     the model byte-for-byte.
//
// Invalidation is part of the contract, not noise: a lost generation
// refresh or a timed-out Validate legitimately discards the cache at the
// next gopen (close-to-open consistency forfeits unsynced writes), which
// the model detects via the closed-table-reuse counter and mirrors by
// resetting to host content.
func TestFaultStressOracle(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 50
	}
	var totalInjected atomic.Int64
	t.Cleanup(func() {
		if !t.Failed() && totalInjected.Load() == 0 {
			t.Errorf("no faults fired across %d seeds; the stress test is vacuous", seeds)
		}
	})
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runFaultStress(t, seed, 1, 1, &totalInjected)
		})
	}
}

// TestFaultStressOracleSharded reruns the full oracle on a sharded
// transport with a parallel host service. Every retry, dedup and timeout
// decision now happens per ring, so this pins the layered stack to the
// same correctness contract as the single-ring prototype: a fault burst on
// one shard must never corrupt state reached through another.
func TestFaultStressOracleSharded(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 50
	}
	var totalInjected atomic.Int64
	t.Cleanup(func() {
		if !t.Failed() && totalInjected.Load() == 0 {
			t.Errorf("no faults fired across %d seeds; the stress test is vacuous", seeds)
		}
	})
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runFaultStress(t, seed, 4, 4, &totalInjected)
		})
	}
}

func runFaultStress(t *testing.T, seed int64, shards, workers int, totalInjected *atomic.Int64) {
	rng := rand.New(rand.NewSource(seed))
	fcfg := faults.Config{
		Seed:                seed,
		RPCPollDelayProb:    rng.Float64() * 0.30,
		RPCDropResponseProb: rng.Float64() * 0.12,
		RPCDupResponseProb:  rng.Float64() * 0.15,
		RPCTransientProb:    rng.Float64() * 0.12,
		HostShortReadProb:   rng.Float64() * 0.40,
		HostReadEIOProb:     rng.Float64() * 0.05,
		HostWriteEIOProb:    rng.Float64() * 0.05,
		HostFsyncEIOProb:    rng.Float64() * 0.10,
		DiskStallProb:       rng.Float64() * 0.10,
		DMAStallProb:        rng.Float64() * 0.10,
		DMADegradeProb:      rng.Float64() * 0.10,
		// BadSectorRate stays 0: persistent sectors would make
		// convergence impossible by design, not by bug.
	}

	opt := defaultOpt()
	opt.CacheBytes = 6 * opt.PageSize // constant eviction pressure
	// The adaptive read-ahead engine and the background cleaner run hot in
	// this suite on purpose: speculation racing demand faults through a
	// 6-frame pool, and cleaner write-backs racing injected write errors,
	// are exactly the interleavings that bend the claim/detach and
	// deferred-error protocols.
	opt.ReadAheadAdaptive = true
	opt.CleanerWorkers = 1
	// History prefetch rides along (ISSUE 9): profile replay on reopen
	// races demand faults and injected read errors through the same
	// 6-frame pool, and the open/close cycles below keep recording and
	// replaying profiles whose pages the tiny cache immediately evicts.
	opt.HistoryPrefetch = true
	// GPUFS_FAULT_ZEROCOPY=1 (the nightly CI variant) reruns the whole
	// oracle with the ISSUE 8 hot path on: zero-copy completions landing in
	// pinned frames and a sharded allocator, under the same fault schedules.
	if os.Getenv("GPUFS_FAULT_ZEROCOPY") != "" {
		opt.ZeroCopyRead = true
		opt.FrameShards = 4
	}
	h := newFaultHarness(t, opt, fcfg, shards, workers)
	fs := h.fss[0]
	defer func() { totalInjected.Add(h.inj.TotalInjected()) }()

	const maxFile = 200 << 10 // ~12 pages, double the cache
	noise := make([]byte, 96<<10)
	rand.New(rand.NewSource(seed ^ 0x6e015e)).Read(noise)
	h.inj.SetEnabled(false)
	h.write(t, "/stress", nil)
	if shards > 1 {
		h.write(t, "/noise", noise)
	}
	h.inj.SetEnabled(true)

	model := []byte{} // expected host view after a full sync
	var gpuSize int64 // expected fc.size: partial writes do NOT extend it
	open := false
	var fd int

	var log []string
	logf := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}
	defer func() {
		if t.Failed() {
			t.Logf("fault mix: %s", h.inj.FormatCounts())
			start := len(log) - 60
			if start < 0 {
				start = 0
			}
			for _, l := range log[start:] {
				t.Log(l)
			}
		}
	}()

	// ensureOpen reopens the file and reconciles the model with whatever
	// the consistency layer decided. If the reopen was NOT served from the
	// closed file table (first open, external modification, or a
	// fault-starved validation), the cache was discarded and the local
	// view legally reset to host content.
	ensureOpen := func(b *gpu.Block) error {
		if open {
			return nil
		}
		reuses := fs.closedReuses.Load()
		var err error
		fd, err = fs.Open(b, "/stress", O_RDWR)
		if err != nil {
			return fmt.Errorf("open: %w", err)
		}
		open = true
		if fs.closedReuses.Load() == reuses {
			h.inj.SetEnabled(false)
			model = append([]byte(nil), h.read(t, "/stress")...)
			gpuSize = int64(len(model))
			h.inj.SetEnabled(true)
			logf("   (cache invalidated: model reset to %d host bytes)", len(model))
		}
		return nil
	}

	// noiseReader is block 1's body on sharded runs: a read-only workload
	// against an immutable file, riding a different ring shard (lane 1)
	// than the oracle block (lane 0). It shares the page cache, the ring
	// seq/dedup spaces, and the fault schedule with block 0, so any
	// cross-shard leakage — a dedup hit against another ring's sequence
	// numbers, a completion matched to the wrong frame — shows up as a
	// content mismatch here or as model divergence in the oracle.
	//
	// The two blocks are serialized in REAL time (block 0 waits for the
	// noise phase): the oracle asserts host == model immediately after a
	// successful gfsync, which only holds while block 0 is the sole
	// concurrent evictor of its dirty pages — gfsync legitimately skips
	// pages mid-eviction by another block (Table 1 exempts concurrently
	// accessed pages). Their VIRTUAL-time windows still overlap fully, so
	// both rings and daemon workers interleave on the calendar.
	noiseReader := func(b *gpu.Block) error {
		nrng := rand.New(rand.NewSource(seed ^ 0x5eed))
		fd, err := fs.Open(b, "/noise", O_RDONLY)
		if err != nil {
			return fmt.Errorf("noise open: %w", err)
		}
		for i := 0; i < 80; i++ {
			off := nrng.Intn(len(noise))
			n := nrng.Intn(12<<10) + 1
			buf := make([]byte, n)
			got, gerr := fs.Read(b, fd, buf, int64(off))
			if got > len(noise)-off {
				return fmt.Errorf("noise read %d: %d bytes at %d runs past EOF %d", i, got, off, len(noise))
			}
			if !bytes.Equal(buf[:got], noise[off:off+got]) {
				return fmt.Errorf("noise read %d: content mismatch at %d+%d (err=%v)", i, off, got, gerr)
			}
		}
		// An injected give-up on close is tolerated; the file is read-only
		// so nothing is lost.
		_ = fs.Close(b, fd)
		return nil
	}

	blocks := 1
	if shards > 1 {
		blocks = 2
	}
	noiseDone := make(chan struct{})
	h.runBlocks(t, 0, blocks, func(b *gpu.Block) error {
		if b.Idx == 1 {
			defer close(noiseDone)
			return noiseReader(b)
		}
		if blocks > 1 {
			<-noiseDone
		}
		for step := 0; step < 140; step++ {
			switch op := rng.Intn(100); {
			case op < 35: // gwrite: tolerated; applies exactly its returned prefix
				if err := ensureOpen(b); err != nil {
					return err
				}
				off := rng.Intn(maxFile - 1)
				n := rng.Intn(min(8<<10, maxFile-off)) + 1
				data := make([]byte, n)
				rng.Read(data)
				got, err := fs.Write(b, fd, data, int64(off))
				logf("%d: write off=%d n=%d -> got=%d err=%v", step, off, n, got, err)
				if err != nil && got > n {
					return fmt.Errorf("step %d: failed write reported %d of %d bytes", step, got, n)
				}
				if err == nil && got != n {
					return fmt.Errorf("step %d: successful write reported %d of %d bytes", step, got, n)
				}
				if got > 0 {
					if off+got > len(model) {
						grown := make([]byte, off+got)
						copy(grown, model)
						model = grown
					}
					copy(model[off:], data[:got])
				}
				if err == nil && int64(off+n) > gpuSize {
					gpuSize = int64(off + n)
				}

			case op < 70: // gread: tolerated; any returned prefix must be truthful
				if err := ensureOpen(b); err != nil {
					return err
				}
				if len(model) == 0 {
					continue
				}
				off := rng.Intn(len(model))
				n := rng.Intn(16<<10) + 1
				buf := make([]byte, n)
				got, err := fs.Read(b, fd, buf, int64(off))
				logf("%d: read off=%d n=%d -> got=%d err=%v", step, off, n, got, err)
				want := int(gpuSize) - off
				if want > n {
					want = n
				}
				if want < 0 {
					want = 0
				}
				if err == nil && got != want {
					return fmt.Errorf("step %d: read length %d, want %d (off %d, gpuSize %d)",
						step, got, want, off, gpuSize)
				}
				if err != nil && got > want {
					return fmt.Errorf("step %d: failed read reported %d > reachable %d", step, got, want)
				}
				if !bytes.Equal(buf[:got], model[off:off+got]) {
					return fmt.Errorf("step %d: read content mismatch at %d+%d", step, off, got)
				}

			case op < 78: // gfsync: success must mean host == local view
				if err := ensureOpen(b); err != nil {
					return err
				}
				err := fs.Fsync(b, fd)
				logf("%d: fsync err=%v", step, err)
				if err != nil {
					continue // deferred write-back or injected failure: retry later
				}
				h.inj.SetEnabled(false)
				host := h.read(t, "/stress")
				h.inj.SetEnabled(true)
				if !bytes.Equal(host, model) {
					i := 0
					for i < len(host) && i < len(model) && host[i] == model[i] {
						i++
					}
					return fmt.Errorf("step %d: host diverges after successful gfsync at byte %d (sizes %d/%d)",
						step, i, len(host), len(model))
				}

			case op < 82: // gfsync_disk: stable-storage flush, failure tolerated
				if err := ensureOpen(b); err != nil {
					return err
				}
				err := fs.FsyncDisk(b, fd)
				logf("%d: fsyncDisk err=%v", step, err)

			case op < 88: // gclose: only a deferred write-back error may surface
				if open {
					err := fs.Close(b, fd)
					logf("%d: close err=%v", step, err)
					open = false
				}

			case op < 94: // gftruncate: must-succeed (retry budget absorbs faults)
				if err := ensureOpen(b); err != nil {
					return err
				}
				size := rng.Intn(maxFile)
				logf("%d: truncate size=%d", step, size)
				if err := fs.Ftruncate(b, fd, int64(size)); err != nil {
					return fmt.Errorf("step %d truncate: %w", step, err)
				}
				if size < len(model) {
					model = model[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, model)
					model = grown
				}
				gpuSize = int64(size)

			default: // external host write while closed on the GPU
				if open {
					continue
				}
				n := rng.Intn(maxFile/2) + 1
				data := make([]byte, n)
				rng.Read(data)
				logf("%d: external write n=%d", step, n)
				h.inj.SetEnabled(false)
				h.write(t, "/stress", data)
				h.inj.SetEnabled(true)
				// The next gopen sees a new generation and invalidates;
				// ensureOpen's reuse check resets the model to match.
			}
		}

		// Recovery phase: faults stop, and the system must converge.
		h.inj.SetEnabled(false)
		if err := ensureOpen(b); err != nil {
			return err
		}
		// The first clean gfsync may surface one deferred write-back error
		// from an earlier failed eviction — POSIX errno semantics — but it
		// still flushes everything, so the second must be silent.
		if err := fs.Fsync(b, fd); err != nil {
			logf("recovery: first fsync drained deferred error: %v", err)
			if err := fs.Fsync(b, fd); err != nil {
				return fmt.Errorf("recovery: deferred error surfaced twice: %w", err)
			}
		}
		if err := fs.Fsync(b, fd); err != nil {
			return fmt.Errorf("recovery: clean fsync failed: %w", err)
		}
		if err := fs.Close(b, fd); err != nil {
			return fmt.Errorf("recovery: clean close failed: %w", err)
		}
		return nil
	})

	host := h.read(t, "/stress")
	if !bytes.Equal(host, model) {
		i := 0
		for i < len(host) && i < len(model) && host[i] == model[i] {
			i++
		}
		t.Fatalf("final host content diverges from model at byte %d: %d vs %d bytes", i, len(host), len(model))
	}
	if fs.Cache().Reclaimed() == 0 {
		t.Fatalf("stress run exerted no eviction pressure; shrink the cache")
	}
}
